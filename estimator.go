package pqe

import (
	"math/big"

	"pqe/internal/core"
)

// Estimator is a reusable evaluation session for one query–database
// pair. The one-shot functions (Probability, Estimate, SampleWorld, …)
// rebuild the hypertree decomposition and the automata on every call;
// an Estimator builds each of these stages at most once and reuses them
// across calls, so repeated evaluations — an ε-sweep, many SampleWorld
// draws, a posterior computation — pay the construction cost once.
//
// SetProbabilities rebinds the session to a database with the same
// facts but different probabilities; only the probability-dependent
// multiplier weighting is rebuilt, the decomposition and base automata
// survive. Passing a database whose fact set or ordering differs
// rebuilds the database-keyed stages instead — results always match a
// fresh estimator. ApplyDelta mutates the database through the session
// and maintains the caches incrementally: reweights rebuild only the
// weighting, inserts and deletes re-derive only the automaton parts
// over the changed relations. BuildStats exposes the construction
// counters so callers can observe the cache behaviour.
//
// An Estimator is not safe for concurrent use.
type Estimator struct {
	est  *core.Estimator
	q    *Query
	d    *Database
	opts *Options
}

// NewEstimator prepares an evaluation session for Q over the database.
// opts may be nil; it supplies both the construction knobs (MaxWidth)
// and the default counting knobs for calls that pass nil options.
// Nothing is built until the first call that needs it.
func NewEstimator(q *Query, d *Database, opts *Options) *Estimator {
	return &Estimator{
		est:  core.NewEstimator(q.q, d.h, opts.core()),
		q:    q,
		d:    d,
		opts: opts,
	}
}

func (e *Estimator) callOpts(opts *Options) core.Options {
	if opts == nil {
		opts = e.opts
	}
	return opts.core()
}

// BuildStats counts how many times each construction stage has run on
// this session. Repeated evaluations leave the probability-independent
// counters unchanged; SetProbabilities grows only Weightings.
type BuildStats struct {
	// Decompositions counts hypertree decomposition searches.
	Decompositions int
	// URReductions counts tree-automaton (Proposition 1) constructions.
	URReductions int
	// PathAutomata counts string-automaton (Section 3) constructions.
	PathAutomata int
	// Weightings counts probability-multiplier expansions — the only
	// stage that reruns after SetProbabilities.
	Weightings int
	// IncrementalUR and IncrementalPath count the constructions (subsets
	// of URReductions and PathAutomata) that were served incrementally
	// after an ApplyDelta: only the automaton parts over the mutated
	// relations were re-derived.
	IncrementalUR   int
	IncrementalPath int
}

// BuildStats returns the construction counters accumulated so far.
func (e *Estimator) BuildStats() BuildStats {
	s := e.est.BuildStats()
	return BuildStats{
		Decompositions:  s.Decompositions,
		URReductions:    s.URReductions,
		PathAutomata:    s.PathAutomata,
		Weightings:      s.Weightings,
		IncrementalUR:   s.IncrementalUR,
		IncrementalPath: s.IncrementalPath,
	}
}

// SetProbabilities rebinds the session to a database with the same
// facts but (possibly) different probabilities. When the fact sequence
// is unchanged, the decomposition and the base automata survive and
// only the multiplier weighting is rebuilt on the next probability
// query; a changed (or reordered) fact sequence rebuilds the
// database-keyed stages too, since the automata encode the fact
// ordering. Either way the session behaves exactly like a fresh
// estimator on the new database.
func (e *Estimator) SetProbabilities(d *Database) error {
	if err := e.est.SetProbabilities(d.h); err != nil {
		return err
	}
	e.d = d
	return nil
}

// Probability computes Pr_H(Q) like the package-level Probability,
// over the session's caches. opts may be nil (the constructor's options
// apply).
func (e *Estimator) Probability(opts *Options) (Result, error) {
	res, err := e.est.Evaluate(e.callOpts(opts))
	if err != nil {
		return Result{}, err
	}
	return Result{
		Probability:  res.Probability,
		Exact:        res.Exact,
		Method:       string(res.Method),
		Reason:       res.Reason,
		Width:        res.Class.Width,
		Safe:         res.Class.Safe,
		SelfJoinFree: res.Class.SelfJoinFree,
	}, nil
}

// Estimate always runs the Theorem 1 FPRAS over the session's caches
// (no safe-plan routing). opts may be nil.
func (e *Estimator) Estimate(opts *Options) (float64, error) {
	return e.est.PQEEstimate(e.callOpts(opts))
}

// UniformReliability approximates UR(Q, D) over the session's caches,
// routing path queries through the string pipeline like the
// package-level UniformReliability. opts may be nil.
func (e *Estimator) UniformReliability(opts *Options) (*big.Float, error) {
	copts := e.callOpts(opts)
	if e.q.q.IsPath() && e.q.q.SelfJoinFree() && binaryOnly(e.d.h.DB(), e.q.q) {
		c, err := e.est.PathEstimate(copts)
		if err != nil {
			return nil, err
		}
		return c.BigFloat(), nil
	}
	c, err := e.est.UREstimate(copts)
	if err != nil {
		return nil, err
	}
	return c.BigFloat(), nil
}

// SampleWorld draws a possible world conditioned on Q over the
// session's caches; unlike the package-level SampleWorld, repeated
// draws (with distinct Seeds in opts) reuse the weighted automaton.
// It returns nil with no error when Pr_H(Q) = 0.
func (e *Estimator) SampleWorld(opts *Options) (*World, error) {
	mask, err := e.est.SampleWorld(e.callOpts(opts))
	if err != nil {
		return nil, err
	}
	if mask == nil {
		return nil, nil
	}
	return &World{Present: mask, facts: e.d.h.DB().Facts()}, nil
}

// SampleSatisfyingSubinstance draws a near-uniform satisfying
// subinstance over the session's caches. It returns nil with no error
// when the query is unsatisfiable over the database.
func (e *Estimator) SampleSatisfyingSubinstance(opts *Options) (*World, error) {
	mask, err := e.est.SampleSatisfying(e.callOpts(opts))
	if err != nil {
		return nil, err
	}
	if mask == nil {
		return nil, nil
	}
	return &World{Present: mask, facts: e.d.h.DB().Facts()}, nil
}

// Explain returns the evaluation plan for the session's query, built
// over (and warming) the same caches later evaluations use.
func (e *Estimator) Explain(opts *Options) (string, error) {
	r, err := e.est.Explain(e.callOpts(opts))
	if err != nil {
		return "", err
	}
	return r.String(), nil
}
