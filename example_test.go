package pqe_test

import (
	"fmt"
	"math/big"

	"pqe"
)

// The probability of a #P-hard chain query, approximated by the
// combined-complexity FPRAS and cross-checked exactly.
func ExampleProbability() {
	q := pqe.MustParseQuery("R1(x1,x2), R2(x2,x3), R3(x3,x4)")
	db := pqe.NewDatabase()
	_ = db.AddFact("R1", big.NewRat(1, 2), "a", "b")
	_ = db.AddFact("R2", big.NewRat(2, 3), "b", "c")
	_ = db.AddFact("R3", big.NewRat(3, 4), "c", "d")

	exact, _ := pqe.BruteForceProbability(q, db)
	fmt.Println("exact:", exact.RatString())

	res, _ := pqe.Probability(q, db, &pqe.Options{Epsilon: 0.01, Seed: 1})
	fmt.Printf("estimate within 1%%: %v\n", res.Probability > 0.2 && res.Probability < 0.3)
	// Output:
	// exact: 1/4
	// estimate within 1%: true
}

// Safe (hierarchical) queries are answered exactly by a safe plan.
func ExampleExactProbability() {
	q := pqe.MustParseQuery("HighTemp(x), HighHumidity(x)")
	db := pqe.NewDatabase()
	_ = db.AddFact("HighTemp", big.NewRat(1, 2), "s1")
	_ = db.AddFact("HighHumidity", big.NewRat(1, 3), "s1")

	p, _ := pqe.ExactProbability(q, db)
	fmt.Println(p.RatString())
	// Output:
	// 1/6
}

// Classify reports the query's position in the paper's Table 1
// landscape.
func ExampleClassify() {
	sjf, bounded, safe, width := pqe.Classify(pqe.PathQuery("R", 3))
	fmt.Printf("self-join-free=%v bounded=%v safe=%v width=%d\n", sjf, bounded, safe, width)
	// Output:
	// self-join-free=true bounded=true safe=false width=1
}

// Lineage sizes grow exponentially with query length — the reason the
// intensional approach fails and this library exists.
func ExampleLineage() {
	q := pqe.MustParseQuery("R1(x,y), R2(y,z)")
	db := pqe.NewDatabase()
	for _, a := range []string{"p", "q"} {
		for _, b := range []string{"u", "v"} {
			_ = db.AddFact("R1", nil, a, b)
			_ = db.AddFact("R2", nil, b, a)
		}
	}
	info, _ := pqe.Lineage(q, db, 0)
	fmt.Printf("clauses=%d literals=%d\n", info.Clauses, info.Literals)
	// Output:
	// clauses=8 literals=16
}

// SampleWorld draws possible worlds conditioned on the query holding.
func ExampleSampleWorld() {
	q := pqe.MustParseQuery("R1(x,y), R2(y,z)")
	db := pqe.NewDatabase()
	_ = db.AddFact("R1", big.NewRat(1, 2), "a", "b")
	_ = db.AddFact("R2", big.NewRat(1, 2), "b", "c")

	w, _ := pqe.SampleWorld(q, db, &pqe.Options{Seed: 7})
	fmt.Println(w.Facts())
	// Output:
	// [R1(a,b) R2(b,c)]
}
