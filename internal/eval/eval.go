// Package eval implements deterministic Boolean conjunctive-query
// evaluation driven by a hypertree decomposition — the Yannakakis-style
// plan the paper alludes to when it notes that a decomposition
// "intuitively gives us an efficient evaluation plan for Q on any
// database D" (Section 1.1, Key Ideas). For a width-k decomposition
// the evaluation runs in time polynomial in |Q| and |D|^k, in contrast
// to generic backtracking joins, which can be exponential in |Q| even
// on acyclic queries.
//
// The algorithm: materialize one relation per decomposition vertex (the
// join of its ξ atoms projected onto χ), then semijoin bottom-up — a
// bag tuple survives iff every child bag has a compatible surviving
// tuple. The query holds iff the root bag retains a tuple.
package eval

import (
	"pqe/internal/cq"
	"pqe/internal/hypertree"
	"pqe/internal/pdb"
)

// Satisfies reports whether D ⊨ Q using the decomposition-driven plan.
// The decomposition must be a valid decomposition of q.
func Satisfies(d *pdb.Database, q *cq.Query, dec *hypertree.Decomposition) bool {
	e := &evaluator{d: d, q: q}
	bags := make([][]cq.Assignment, dec.Size())
	// Bottom-up over the BFS order reversed: children come after
	// parents in BFS order, so iterate backwards.
	nodes := dec.Nodes()
	for i := len(nodes) - 1; i >= 0; i-- {
		p := nodes[i]
		bag := e.bagTuples(p)
		// Semijoin with every child: keep tuples with a compatible
		// tuple in each child bag.
		var kept []cq.Assignment
		for _, tup := range bag {
			ok := true
			for _, c := range p.Children {
				if !hasCompatible(bags[c.ID], tup) {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, tup)
			}
		}
		bags[p.ID] = kept
		if p == dec.Root {
			return len(kept) > 0
		}
	}
	return len(bags[dec.Root.ID]) > 0
}

type evaluator struct {
	d *pdb.Database
	q *cq.Query
}

// bagTuples materializes the vertex relation: all consistent joint
// assignments of the ξ(p) atoms to facts, projected onto χ(p).
func (e *evaluator) bagTuples(p *hypertree.Node) []cq.Assignment {
	chi := make(map[string]bool, len(p.Chi))
	for _, v := range p.Chi {
		chi[v] = true
	}
	var out []cq.Assignment
	seen := make(map[string]bool)
	asg := make(cq.Assignment)
	var rec func(i int)
	rec = func(i int) {
		if i == len(p.Xi) {
			proj := make(cq.Assignment, len(p.Chi))
			for v := range chi {
				if c, ok := asg[v]; ok {
					proj[v] = c
				}
			}
			k := proj.Key()
			if !seen[k] {
				seen[k] = true
				out = append(out, proj)
			}
			return
		}
		atom := e.q.Atoms[p.Xi[i]]
		for _, f := range e.d.FactsOf(atom.Relation) {
			if f.Arity() != atom.Arity() {
				continue
			}
			added, ok := bindAtom(atom, f, asg)
			if !ok {
				continue
			}
			rec(i + 1)
			for _, v := range added {
				delete(asg, v)
			}
		}
	}
	rec(0)
	return out
}

func bindAtom(atom cq.Atom, f pdb.Fact, asg cq.Assignment) ([]string, bool) {
	var added []string
	for i, v := range atom.Vars {
		if c, ok := asg[v]; ok {
			if c != f.Args[i] {
				for _, w := range added {
					delete(asg, w)
				}
				return nil, false
			}
			continue
		}
		asg[v] = f.Args[i]
		added = append(added, v)
	}
	return added, true
}

// hasCompatible reports whether some tuple in the bag agrees with the
// given tuple on all shared variables.
func hasCompatible(bag []cq.Assignment, tup cq.Assignment) bool {
	for _, b := range bag {
		if b.Consistent(tup) {
			return true
		}
	}
	return false
}
