package eval

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pqe/internal/cq"
	"pqe/internal/hypertree"
	"pqe/internal/pdb"
)

func decompose(t testing.TB, q *cq.Query) *hypertree.Decomposition {
	t.Helper()
	dec, err := hypertree.Decompose(q)
	if err != nil {
		t.Fatal(err)
	}
	return dec
}

func TestSatisfiesSimple(t *testing.T) {
	q := cq.PathQuery("R", 2)
	dec := decompose(t, q)
	d := pdb.FromFacts(
		pdb.NewFact("R1", "a", "b"),
		pdb.NewFact("R2", "b", "c"),
	)
	if !Satisfies(d, q, dec) {
		t.Error("satisfiable chain reported unsatisfied")
	}
	d2 := pdb.FromFacts(
		pdb.NewFact("R1", "a", "b"),
		pdb.NewFact("R2", "x", "c"), // no join
	)
	if Satisfies(d2, q, dec) {
		t.Error("non-joining facts reported satisfied")
	}
	if Satisfies(pdb.NewDatabase(), q, dec) {
		t.Error("empty database satisfied")
	}
}

func TestSatisfiesCyclic(t *testing.T) {
	q := cq.CycleQuery("C", 3)
	dec := decompose(t, q)
	d := pdb.FromFacts(
		pdb.NewFact("C1", "a", "b"),
		pdb.NewFact("C2", "b", "c"),
		pdb.NewFact("C3", "c", "a"),
	)
	if !Satisfies(d, q, dec) {
		t.Error("triangle reported unsatisfied")
	}
	// Break the cycle.
	d2 := pdb.FromFacts(
		pdb.NewFact("C1", "a", "b"),
		pdb.NewFact("C2", "b", "c"),
		pdb.NewFact("C3", "c", "x"),
	)
	if Satisfies(d2, q, dec) {
		t.Error("broken triangle reported satisfied")
	}
}

// Property: the decomposition-driven evaluation agrees with the
// backtracking evaluator on random instances across query shapes.
func TestQuickAgreesWithBacktracking(t *testing.T) {
	queries := []*cq.Query{
		cq.PathQuery("R", 2),
		cq.PathQuery("R", 3),
		cq.PathQuery("R", 4),
		cq.StarQuery("S", 3),
		cq.CycleQuery("C", 3),
		cq.CycleQuery("C", 4),
		cq.MustParse("R1(x,y), R2(y,z), R3(y,w)"),
	}
	decs := make([]*hypertree.Decomposition, len(queries))
	for i, q := range queries {
		decs[i] = decompose(t, q)
	}
	consts := []string{"a", "b", "c"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		qi := rng.Intn(len(queries))
		q, dec := queries[qi], decs[qi]
		d := pdb.NewDatabase()
		for _, atom := range q.Atoms {
			for j := 0; j < rng.Intn(4); j++ {
				args := make([]string, atom.Arity())
				for k := range args {
					args[k] = consts[rng.Intn(len(consts))]
				}
				d.Add(pdb.Fact{Relation: atom.Relation, Args: args})
			}
		}
		return Satisfies(d, q, dec) == cq.Satisfies(d, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSatisfiesIgnoresWrongArityFacts(t *testing.T) {
	q := cq.PathQuery("R", 2)
	dec := decompose(t, q)
	d := pdb.FromFacts(
		pdb.NewFact("R1", "a", "b"),
		pdb.NewFact("R2", "b"), // wrong arity: cannot witness
	)
	if Satisfies(d, q, dec) {
		t.Error("wrong-arity fact used as witness")
	}
}

func BenchmarkSatisfiesDecomposedVsBacktracking(b *testing.B) {
	// A long path over a layered database: decomposition-driven
	// semijoins visit each bag once, while naive backtracking explores
	// witness combinations.
	q := cq.PathQuery("R", 8)
	dec := decompose(b, q)
	d := pdb.NewDatabase()
	for l, atom := range q.Atoms {
		for a := 0; a < 4; a++ {
			for c := 0; c < 4; c++ {
				d.Add(pdb.NewFact(atom.Relation,
					node(l, a), node(l+1, c)))
			}
		}
	}
	b.Run("decomposed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !Satisfies(d, q, dec) {
				b.Fatal("unsatisfied")
			}
		}
	})
	b.Run("backtracking", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !cq.Satisfies(d, q) {
				b.Fatal("unsatisfied")
			}
		}
	})
}

func node(l, i int) string {
	return string(rune('a'+l)) + string(rune('0'+i))
}
