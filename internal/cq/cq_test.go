package cq

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"pqe/internal/pdb"
)

func TestParse(t *testing.T) {
	q, err := Parse("R(x,y), S(y,z), T(z)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d", q.Len())
	}
	if q.String() != "R(x,y), S(y,z), T(z)" {
		t.Errorf("String = %q", q.String())
	}
	if got := q.Vars(); !reflect.DeepEqual(got, []string{"x", "y", "z"}) {
		t.Errorf("Vars = %v", got)
	}
	if got := q.Relations(); !reflect.DeepEqual(got, []string{"R", "S", "T"}) {
		t.Errorf("Relations = %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"R(x",
		"R(x),",
		"R(x) S(y)",
		"R(x,,y)",
		"1R(x)",
		"R(x), R(x,y)", // inconsistent arity
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestSelfJoinFree(t *testing.T) {
	if !MustParse("R(x,y), S(y,z)").SelfJoinFree() {
		t.Error("SJF query reported as having self-joins")
	}
	if MustParse("R(x,y), R(y,z)").SelfJoinFree() {
		t.Error("self-join query reported as SJF")
	}
}

func TestIsPath(t *testing.T) {
	cases := []struct {
		q    string
		want bool
	}{
		{"R(x,y)", true},
		{"R1(x1,x2), R2(x2,x3)", true},
		{"R1(x1,x2), R2(x2,x3), R3(x3,x4)", true},
		{"R(x,y), S(z,w)", false},         // not chained
		{"R(x,y), S(y,x)", false},         // revisits x
		{"R(x,x)", false},                 // self-loop variable
		{"R(x,y,z)", false},               // not binary
		{"R(x,y), S(y,z), T(z,x)", false}, // cycle
		{"R(x,y), S(y,z), T(y,w)", false}, // branches
	}
	for _, c := range cases {
		if got := MustParse(c.q).IsPath(); got != c.want {
			t.Errorf("IsPath(%s) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestPathStarCycleBuilders(t *testing.T) {
	p := PathQuery("R", 3)
	if p.String() != "R1(x1,x2), R2(x2,x3), R3(x3,x4)" {
		t.Errorf("PathQuery = %s", p)
	}
	if !p.IsPath() || !p.SelfJoinFree() {
		t.Error("PathQuery not a SJF path")
	}
	s := StarQuery("S", 3)
	if !s.Hierarchical() {
		t.Errorf("StarQuery %s not hierarchical", s)
	}
	c := CycleQuery("C", 3)
	if c.String() != "C1(x1,x2), C2(x2,x3), C3(x3,x1)" {
		t.Errorf("CycleQuery = %s", c)
	}
	if c.IsPath() {
		t.Error("cycle reported as path")
	}
}

func TestHierarchical(t *testing.T) {
	cases := []struct {
		q    string
		want bool
	}{
		// Every query in 3Path is non-hierarchical (paper §1.1), but
		// paths of length < 3 are hierarchical.
		{"R1(x1,x2)", true},
		{"R1(x1,x2), R2(x2,x3)", true},
		{"R1(x1,x2), R2(x2,x3), R3(x3,x4)", false},
		{"R(x,y), S(x,z)", true},      // star
		{"R(x,y), S(y)", true},        // nested
		{"R(x), S(x,y), T(y)", false}, // the classic unsafe H₀ shape
	}
	for _, c := range cases {
		if got := MustParse(c.q).Hierarchical(); got != c.want {
			t.Errorf("Hierarchical(%s) = %v, want %v", c.q, got, c.want)
		}
	}
}

func Test3PathFamilyNonHierarchical(t *testing.T) {
	// Corollary 1 requires every Q_i with i ≥ 3 to be non-hierarchical.
	for i := 3; i <= 10; i++ {
		if PathQuery("R", i).Hierarchical() {
			t.Errorf("Q_%d reported hierarchical", i)
		}
	}
}

func TestComponents(t *testing.T) {
	q := MustParse("R(x,y), S(y,z), T(u,v), U(w)")
	got := q.Components()
	want := [][]int{{0, 1}, {2}, {3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Components = %v, want %v", got, want)
	}
	sub := q.SubQuery(got[0])
	if sub.String() != "R(x,y), S(y,z)" {
		t.Errorf("SubQuery = %s", sub)
	}
}

func db(facts ...pdb.Fact) *pdb.Database { return pdb.FromFacts(facts...) }

func TestSatisfies(t *testing.T) {
	d := db(
		pdb.NewFact("R", "a", "b"),
		pdb.NewFact("S", "b", "c"),
		pdb.NewFact("S", "x", "y"),
	)
	if !Satisfies(d, MustParse("R(x,y), S(y,z)")) {
		t.Error("satisfiable query reported unsatisfied")
	}
	if Satisfies(d, MustParse("S(x,y), R(y,z)")) {
		t.Error("unsatisfiable join reported satisfied")
	}
	if Satisfies(d, MustParse("R(x,y), T(y)")) {
		t.Error("query over missing relation reported satisfied")
	}
	// Repeated variable within an atom must bind consistently.
	if Satisfies(d, MustParse("R(x,x)")) {
		t.Error("R(x,x) reported satisfied with no loop fact")
	}
	d2 := db(pdb.NewFact("R", "a", "a"))
	if !Satisfies(d2, MustParse("R(x,x)")) {
		t.Error("R(x,x) unsatisfied despite loop fact")
	}
}

func TestFindWitness(t *testing.T) {
	d := db(
		pdb.NewFact("R", "a", "b"),
		pdb.NewFact("S", "b", "c"),
	)
	q := MustParse("R(x,y), S(y,z)")
	w := FindWitness(d, q)
	if w == nil {
		t.Fatal("no witness found")
	}
	if w["x"] != "a" || w["y"] != "b" || w["z"] != "c" {
		t.Errorf("witness = %v", w)
	}
	facts := WitnessFacts(q, w)
	if facts[0].Key() != "R(a,b)" || facts[1].Key() != "S(b,c)" {
		t.Errorf("WitnessFacts = %v", facts)
	}
}

func TestEnumerateWitnesses(t *testing.T) {
	d := db(
		pdb.NewFact("R", "a", "b"),
		pdb.NewFact("R", "a", "c"),
		pdb.NewFact("S", "b", "d"),
		pdb.NewFact("S", "c", "d"),
		pdb.NewFact("S", "z", "w"),
	)
	q := MustParse("R(x,y), S(y,z)")
	seen := make(map[string]bool)
	EnumerateWitnesses(d, q, func(a Assignment) bool {
		seen[a.Key()] = true
		return true
	})
	if len(seen) != 2 {
		t.Errorf("found %d witnesses, want 2: %v", len(seen), seen)
	}
	if got := CountWitnesses(d, q, 0); got != 2 {
		t.Errorf("CountWitnesses = %d", got)
	}
	if got := CountWitnesses(d, q, 1); got != 1 {
		t.Errorf("CountWitnesses with limit = %d", got)
	}
}

func TestWitnessCountCrossProduct(t *testing.T) {
	// Disconnected query: witness count is the product of per-component
	// counts (|R| × |S|). This is the Θ(|D|^i) lineage growth seed.
	d := pdb.NewDatabase()
	for _, c := range []string{"a", "b", "c"} {
		d.Add(pdb.NewFact("R", c))
		d.Add(pdb.NewFact("S", c))
	}
	q := MustParse("R(x), S(y)")
	if got := CountWitnesses(d, q, 0); got != 9 {
		t.Errorf("CountWitnesses = %d, want 9", got)
	}
}

func TestAssignmentHelpers(t *testing.T) {
	a := Assignment{"x": "1", "y": "2"}
	b := Assignment{"y": "2", "z": "3"}
	c := Assignment{"y": "9"}
	if !a.Consistent(b) {
		t.Error("consistent assignments reported inconsistent")
	}
	if a.Consistent(c) {
		t.Error("inconsistent assignments reported consistent")
	}
	clone := a.Clone()
	clone["x"] = "changed"
	if a["x"] != "1" {
		t.Error("Clone aliases original")
	}
	r := a.Restrict([]string{"x", "missing"})
	if len(r) != 1 || r["x"] != "1" {
		t.Errorf("Restrict = %v", r)
	}
	if a.Key() != "x=1;y=2;" {
		t.Errorf("Key = %q", a.Key())
	}
}

func TestValidate(t *testing.T) {
	if err := New().Validate(); err == nil {
		t.Error("empty query validated")
	}
	ok := New(NewAtom("R", "x"), NewAtom("S", "x", "y"))
	if err := ok.Validate(); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
}

// Property: Satisfies agrees with brute-force assignment enumeration on
// random small instances.
func TestQuickSatisfiesAgainstBruteForce(t *testing.T) {
	queries := []*Query{
		MustParse("R(x,y), S(y,z)"),
		MustParse("R(x,y), S(y,x)"),
		MustParse("R(x,x)"),
		MustParse("R(x,y), S(y,z), T(z,x)"),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := pdb.NewDatabase()
		consts := []string{"a", "b", "c"}
		for _, rel := range []string{"R", "S", "T"} {
			for i := 0; i < rng.Intn(4); i++ {
				d.Add(pdb.NewFact(rel, consts[rng.Intn(3)], consts[rng.Intn(3)]))
			}
		}
		for _, q := range queries {
			if Satisfies(d, q) != bruteForceSatisfies(d, q, consts) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// bruteForceSatisfies tries every assignment of vars(Q) to the constant
// pool.
func bruteForceSatisfies(d *pdb.Database, q *Query, consts []string) bool {
	vars := q.Vars()
	asg := make(Assignment)
	var try func(int) bool
	try = func(i int) bool {
		if i == len(vars) {
			for _, a := range q.Atoms {
				args := make([]string, len(a.Vars))
				for j, v := range a.Vars {
					args[j] = asg[v]
				}
				if !d.Contains(pdb.Fact{Relation: a.Relation, Args: args}) {
					return false
				}
			}
			return true
		}
		for _, c := range consts {
			asg[vars[i]] = c
			if try(i + 1) {
				return true
			}
		}
		delete(asg, vars[i])
		return false
	}
	return try(0)
}

// Property: witness enumeration yields exactly the assignments that
// satisfy the query, without duplicates.
func TestQuickWitnessesDistinctAndValid(t *testing.T) {
	q := MustParse("R(x,y), S(y,z)")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := pdb.NewDatabase()
		consts := []string{"a", "b", "c", "d"}
		for i := 0; i < rng.Intn(8); i++ {
			d.Add(pdb.NewFact("R", consts[rng.Intn(4)], consts[rng.Intn(4)]))
		}
		for i := 0; i < rng.Intn(8); i++ {
			d.Add(pdb.NewFact("S", consts[rng.Intn(4)], consts[rng.Intn(4)]))
		}
		seen := make(map[string]bool)
		valid := true
		EnumerateWitnesses(d, q, func(a Assignment) bool {
			k := a.Key()
			if seen[k] {
				valid = false
			}
			seen[k] = true
			for _, fct := range WitnessFacts(q, a) {
				if !d.Contains(fct) {
					valid = false
				}
			}
			return true
		})
		return valid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestSnowflakeQuery(t *testing.T) {
	q := SnowflakeQuery("S", 3, 2)
	if q.Len() != 1+3*2 {
		t.Fatalf("Len = %d", q.Len())
	}
	if !q.SelfJoinFree() {
		t.Error("snowflake has self-joins")
	}
	if q.Hierarchical() {
		t.Error("snowflake with depth 2 reported hierarchical")
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}
