package cq

import (
	"fmt"
	"strings"
)

// Parse parses a conjunctive query written as a comma-separated atom
// list, e.g. "R(x,y), S(y,z), T(z)". Arguments are variable names
// (queries are constant-free, per the paper).
func Parse(s string) (*Query, error) {
	var atoms []Atom
	rest := strings.TrimSpace(s)
	if rest == "" {
		return nil, fmt.Errorf("cq: empty query string")
	}
	for len(rest) > 0 {
		open := strings.IndexByte(rest, '(')
		if open < 0 {
			return nil, fmt.Errorf("cq: expected '(' in %q", rest)
		}
		closing := strings.IndexByte(rest, ')')
		if closing < open {
			return nil, fmt.Errorf("cq: unbalanced parentheses in %q", rest)
		}
		rel := strings.TrimSpace(rest[:open])
		if !validIdent(rel) {
			return nil, fmt.Errorf("cq: invalid relation name %q", rel)
		}
		inner := strings.TrimSpace(rest[open+1 : closing])
		var vars []string
		if inner != "" {
			for _, part := range strings.Split(inner, ",") {
				v := strings.TrimSpace(part)
				if !validIdent(v) {
					return nil, fmt.Errorf("cq: invalid variable %q in atom %s", v, rel)
				}
				vars = append(vars, v)
			}
		}
		atoms = append(atoms, Atom{Relation: rel, Vars: vars})
		rest = strings.TrimSpace(rest[closing+1:])
		if rest == "" {
			break
		}
		if !strings.HasPrefix(rest, ",") {
			return nil, fmt.Errorf("cq: expected ',' between atoms near %q", rest)
		}
		rest = strings.TrimSpace(rest[1:])
		if rest == "" {
			return nil, fmt.Errorf("cq: trailing comma")
		}
	}
	q := New(atoms...)
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse that panics on error, for tests and examples.
func MustParse(s string) *Query {
	q, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return q
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// PathQuery builds the self-join-free path query
// Q_n = R₁(x₁,x₂), …, R_n(x_n,x_{n+1}) from Section 1.1's 3Path family,
// with relation names prefix+"1", …, prefix+"n".
func PathQuery(prefix string, n int) *Query {
	atoms := make([]Atom, n)
	for i := 0; i < n; i++ {
		atoms[i] = Atom{
			Relation: fmt.Sprintf("%s%d", prefix, i+1),
			Vars:     []string{fmt.Sprintf("x%d", i+1), fmt.Sprintf("x%d", i+2)},
		}
	}
	return New(atoms...)
}

// StarQuery builds the hierarchical (safe) star query
// R₁(x,y₁), …, R_n(x,y_n): every atom shares the hub variable x.
func StarQuery(prefix string, n int) *Query {
	atoms := make([]Atom, n)
	for i := 0; i < n; i++ {
		atoms[i] = Atom{
			Relation: fmt.Sprintf("%s%d", prefix, i+1),
			Vars:     []string{"x", fmt.Sprintf("y%d", i+1)},
		}
	}
	return New(atoms...)
}

// SnowflakeQuery builds an acyclic star-of-chains query in the shape of
// a snowflake schema: a central fact atom C(h₁,…,h_arms) with one
// dimension chain of the given depth hanging off each position:
//
//	C(h1,…,hk), D1_1(h1,v1_1), D1_2(v1_1,v1_2), …, Dk_depth(…)
//
// Snowflakes are the textbook low-hypertree-width analytics queries the
// paper's motivation cites ([17]: real-world benchmark queries have
// width ≤ 3); they are acyclic (width 1), self-join-free, and
// non-hierarchical once depth ≥ 1 and arms ≥ 2.
func SnowflakeQuery(prefix string, arms, depth int) *Query {
	hub := make([]string, arms)
	for i := range hub {
		hub[i] = fmt.Sprintf("h%d", i+1)
	}
	atoms := []Atom{{Relation: prefix + "C", Vars: hub}}
	for i := 1; i <= arms; i++ {
		prev := fmt.Sprintf("h%d", i)
		for j := 1; j <= depth; j++ {
			v := fmt.Sprintf("v%d_%d", i, j)
			atoms = append(atoms, Atom{
				Relation: fmt.Sprintf("%sD%d_%d", prefix, i, j),
				Vars:     []string{prev, v},
			})
			prev = v
		}
	}
	return New(atoms...)
}

// CycleQuery builds the cyclic query R₁(x₁,x₂), …, R_n(x_n,x₁), which is
// not acyclic and has (generalized) hypertree width 2 for n ≥ 3.
func CycleQuery(prefix string, n int) *Query {
	atoms := make([]Atom, n)
	for i := 0; i < n; i++ {
		atoms[i] = Atom{
			Relation: fmt.Sprintf("%s%d", prefix, i+1),
			Vars:     []string{fmt.Sprintf("x%d", i+1), fmt.Sprintf("x%d", (i+1)%n+1)},
		}
	}
	return New(atoms...)
}
