package cq

import (
	"sort"

	"pqe/internal/pdb"
)

// EnumerateWitnesses calls yield once for every satisfying assignment
// (homomorphism) of Q into D, in a deterministic order. Enumeration
// stops early if yield returns false. The number of witnesses can be as
// large as |D|^|Q| — this combinatorial explosion is precisely the
// lineage blow-up the paper's FPRAS avoids — so callers should bound
// their use.
//
// The yielded assignment is reused between calls; yield must copy it if
// it needs to retain it.
func EnumerateWitnesses(db *pdb.Database, q *Query, yield func(Assignment) bool) {
	byRel := make(map[string][]pdb.Fact)
	for _, r := range q.Relations() {
		byRel[r] = db.FactsOf(r)
		if len(byRel[r]) == 0 {
			return
		}
	}
	order := joinOrder(q)
	asg := make(Assignment)
	enumerate(byRel, q, order, 0, asg, yield)
}

func enumerate(byRel map[string][]pdb.Fact, q *Query, order []int, pos int, asg Assignment, yield func(Assignment) bool) bool {
	if pos == len(order) {
		return yield(asg)
	}
	atom := q.Atoms[order[pos]]
	for _, f := range byRel[atom.Relation] {
		added, ok := bind(atom, f, asg)
		if !ok {
			continue
		}
		cont := enumerate(byRel, q, order, pos+1, asg, yield)
		for _, v := range added {
			delete(asg, v)
		}
		if !cont {
			return false
		}
	}
	return true
}

// CountWitnesses returns the number of satisfying assignments of Q in D,
// stopping at limit if limit > 0.
func CountWitnesses(db *pdb.Database, q *Query, limit int) int {
	n := 0
	EnumerateWitnesses(db, q, func(Assignment) bool {
		n++
		return limit <= 0 || n < limit
	})
	return n
}

// WitnessFacts maps an assignment back to the multiset of facts it uses:
// one fact per atom, in atom order.
func WitnessFacts(q *Query, asg Assignment) []pdb.Fact {
	facts := make([]pdb.Fact, len(q.Atoms))
	for i, a := range q.Atoms {
		args := make([]string, len(a.Vars))
		for j, v := range a.Vars {
			args[j] = asg[v]
		}
		facts[i] = pdb.Fact{Relation: a.Relation, Args: args}
	}
	return facts
}

// Clone returns a copy of the assignment.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// Consistent reports whether two assignments agree on every shared
// variable (the paper's consistency notion for tuple assignments).
func (a Assignment) Consistent(b Assignment) bool {
	small, large := a, b
	if len(b) < len(a) {
		small, large = b, a
	}
	for k, v := range small {
		if w, ok := large[k]; ok && w != v {
			return false
		}
	}
	return true
}

// Restrict returns the assignment restricted to the given variables.
func (a Assignment) Restrict(vars []string) Assignment {
	out := make(Assignment, len(vars))
	for _, v := range vars {
		if c, ok := a[v]; ok {
			out[v] = c
		}
	}
	return out
}

// Key returns a canonical string for the assignment, usable as a map key.
func (a Assignment) Key() string {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b []byte
	for _, k := range keys {
		b = append(b, k...)
		b = append(b, '=')
		b = append(b, a[k]...)
		b = append(b, ';')
	}
	return string(b)
}
