package cq

import (
	"strings"
	"testing"
)

// FuzzParse checks that the query parser never panics and that
// accepted queries render and re-parse to an equal query.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"R(x,y)",
		"R(x,y), S(y,z)",
		"R1(x1,x2), R2(x2,x3), R3(x3,x4)",
		"A(), B(x)",
		"R(x,,y)",
		"R(x",
		"",
		" R ( x , y ) , S ( y ) ",
		"R(x)),(",
		strings.Repeat("R(x),", 50) + "S(y)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		q, err := Parse(s)
		if err != nil {
			return
		}
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("rendered query %q does not re-parse: %v", q.String(), err)
		}
		if q.String() != q2.String() {
			t.Fatalf("round trip changed query: %q -> %q", q.String(), q2.String())
		}
		// Exercise the analyzers; none may panic.
		_ = q.SelfJoinFree()
		_ = q.IsPath()
		_ = q.Hierarchical()
		_ = q.Components()
		_ = q.Vars()
	})
}
