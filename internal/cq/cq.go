// Package cq implements Boolean conjunctive queries (Section 2 of the
// paper): existentially quantified, constant-free first-order sentences
// Q = R₁(x̄₁), …, R_n(x̄_n), together with the syntactic properties the
// paper's results hinge on (self-join-freeness, path shape, the
// hierarchical property characterizing safety for SJF CQs) and
// deterministic query evaluation D ⊨ Q.
package cq

import (
	"fmt"
	"sort"
	"strings"

	"pqe/internal/pdb"
)

// Atom is a query atom R(x₁,…,x_k) whose arguments are variables.
// The paper's queries are constant-free, so arguments are always
// variable names.
type Atom struct {
	Relation string
	Vars     []string
}

// NewAtom constructs an atom.
func NewAtom(relation string, vars ...string) Atom {
	return Atom{Relation: relation, Vars: vars}
}

// Arity returns the number of arguments.
func (a Atom) Arity() int { return len(a.Vars) }

// String renders the atom as R(x,y).
func (a Atom) String() string {
	return a.Relation + "(" + strings.Join(a.Vars, ",") + ")"
}

// VarSet returns the set of variables occurring in the atom.
func (a Atom) VarSet() map[string]bool {
	s := make(map[string]bool, len(a.Vars))
	for _, v := range a.Vars {
		s[v] = true
	}
	return s
}

// HasVar reports whether the variable occurs in the atom.
func (a Atom) HasVar(v string) bool {
	for _, w := range a.Vars {
		if w == v {
			return true
		}
	}
	return false
}

// Query is a Boolean conjunctive query: a conjunction of atoms. The
// length of the query |Q| is the number of atoms.
type Query struct {
	Atoms []Atom
}

// New constructs a query from atoms.
func New(atoms ...Atom) *Query {
	return &Query{Atoms: atoms}
}

// Len returns |Q|, the number of atoms.
func (q *Query) Len() int { return len(q.Atoms) }

// String renders the query as a comma-separated atom list.
func (q *Query) String() string {
	parts := make([]string, len(q.Atoms))
	for i, a := range q.Atoms {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}

// Vars returns vars(Q), sorted for determinism.
func (q *Query) Vars() []string {
	seen := make(map[string]bool)
	for _, a := range q.Atoms {
		for _, v := range a.Vars {
			seen[v] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// VarSet returns vars(Q) as a set.
func (q *Query) VarSet() map[string]bool {
	s := make(map[string]bool)
	for _, a := range q.Atoms {
		for _, v := range a.Vars {
			s[v] = true
		}
	}
	return s
}

// Relations returns the multiset-free list of relation names in Q,
// sorted.
func (q *Query) Relations() []string {
	seen := make(map[string]bool)
	for _, a := range q.Atoms {
		seen[a.Relation] = true
	}
	out := make([]string, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// RelationSet returns the relation names of Q as a set.
func (q *Query) RelationSet() map[string]bool {
	s := make(map[string]bool)
	for _, a := range q.Atoms {
		s[a.Relation] = true
	}
	return s
}

// SelfJoinFree reports whether no relation name repeats across atoms.
func (q *Query) SelfJoinFree() bool {
	seen := make(map[string]bool)
	for _, a := range q.Atoms {
		if seen[a.Relation] {
			return false
		}
		seen[a.Relation] = true
	}
	return true
}

// AtomsWithVar returns the indices of the atoms containing the variable.
func (q *Query) AtomsWithVar(v string) []int {
	var out []int
	for i, a := range q.Atoms {
		if a.HasVar(v) {
			out = append(out, i)
		}
	}
	return out
}

// IsPath reports whether Q is a path query in the paper's sense:
// binary atoms R₁(x₁,x₂), R₂(x₂,x₃), …, R_n(x_n,x_{n+1}) with all chain
// variables distinct. The atoms must appear in chain order.
func (q *Query) IsPath() bool {
	if len(q.Atoms) == 0 {
		return false
	}
	seen := make(map[string]bool)
	for i, a := range q.Atoms {
		if a.Arity() != 2 {
			return false
		}
		if a.Vars[0] == a.Vars[1] {
			return false
		}
		if i > 0 && a.Vars[0] != q.Atoms[i-1].Vars[1] {
			return false
		}
		if seen[a.Vars[1]] {
			return false
		}
		if i == 0 {
			if seen[a.Vars[0]] {
				return false
			}
			seen[a.Vars[0]] = true
		}
		seen[a.Vars[1]] = true
	}
	return true
}

// Hierarchical reports whether Q is hierarchical: for every pair of
// variables x, y, the atom sets at(x) and at(y) are either disjoint or
// comparable under inclusion. For self-join-free conjunctive queries,
// non-hierarchicality is equivalent to #P-hardness of PQE in data
// complexity (Dalvi–Suciu), i.e. hierarchical ⇔ safe.
func (q *Query) Hierarchical() bool {
	vars := q.Vars()
	at := make(map[string]map[int]bool, len(vars))
	for _, v := range vars {
		set := make(map[int]bool)
		for _, i := range q.AtomsWithVar(v) {
			set[i] = true
		}
		at[v] = set
	}
	for i, x := range vars {
		for _, y := range vars[i+1:] {
			ax, ay := at[x], at[y]
			if !disjoint(ax, ay) && !subset(ax, ay) && !subset(ay, ax) {
				return false
			}
		}
	}
	return true
}

func disjoint(a, b map[int]bool) bool {
	for k := range a {
		if b[k] {
			return false
		}
	}
	return true
}

func subset(a, b map[int]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// Components partitions the atoms of Q into connected components of the
// variable-sharing graph: two atoms are connected if they share a
// variable. Each component is returned as a sorted slice of atom indices.
// Atoms with no variables form singleton components.
func (q *Query) Components() [][]int {
	n := len(q.Atoms)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(x, y int) { parent[find(x)] = find(y) }

	byVar := make(map[string]int)
	for i, a := range q.Atoms {
		for _, v := range a.Vars {
			if j, ok := byVar[v]; ok {
				union(i, j)
			} else {
				byVar[v] = i
			}
		}
	}
	groups := make(map[int][]int)
	for i := range q.Atoms {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(groups))
	for _, r := range roots {
		sort.Ints(groups[r])
		out = append(out, groups[r])
	}
	return out
}

// SubQuery returns the query restricted to the given atom indices.
func (q *Query) SubQuery(idx []int) *Query {
	atoms := make([]Atom, len(idx))
	for i, j := range idx {
		atoms[i] = q.Atoms[j]
	}
	return New(atoms...)
}

// Validate checks well-formedness: at least one atom, consistent arities
// per relation name, and valid identifiers.
func (q *Query) Validate() error {
	if len(q.Atoms) == 0 {
		return fmt.Errorf("cq: empty query")
	}
	arity := make(map[string]int)
	for _, a := range q.Atoms {
		if a.Relation == "" {
			return fmt.Errorf("cq: atom with empty relation name")
		}
		if prev, ok := arity[a.Relation]; ok && prev != a.Arity() {
			return fmt.Errorf("cq: relation %s used with arities %d and %d", a.Relation, prev, a.Arity())
		}
		arity[a.Relation] = a.Arity()
		for _, v := range a.Vars {
			if v == "" {
				return fmt.Errorf("cq: atom %s has an empty variable", a)
			}
		}
	}
	return nil
}

// Assignment maps query variables to constants.
type Assignment map[string]string

// Satisfies reports whether D ⊨ Q under the usual semantics: there is an
// assignment of vars(Q) to constants such that every atom maps to a fact
// of D. It uses backtracking over atoms ordered to maximize join
// connectivity.
func Satisfies(db *pdb.Database, q *Query) bool {
	return FindWitness(db, q) != nil
}

// FindWitness returns one satisfying assignment, or nil if D ⊭ Q.
func FindWitness(db *pdb.Database, q *Query) Assignment {
	byRel := make(map[string][]pdb.Fact)
	for _, r := range q.Relations() {
		byRel[r] = db.FactsOf(r)
		if len(byRel[r]) == 0 {
			return nil
		}
	}
	order := joinOrder(q)
	asg := make(Assignment)
	if satisfy(byRel, q, order, 0, asg) {
		return asg
	}
	return nil
}

// joinOrder orders atom indices so each atom (after the first) shares a
// variable with an earlier one when possible, which prunes the
// backtracking search.
func joinOrder(q *Query) []int {
	n := len(q.Atoms)
	used := make([]bool, n)
	bound := make(map[string]bool)
	order := make([]int, 0, n)
	for len(order) < n {
		best := -1
		bestShared := -1
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			shared := 0
			for _, v := range q.Atoms[i].Vars {
				if bound[v] {
					shared++
				}
			}
			if shared > bestShared {
				best, bestShared = i, shared
			}
		}
		used[best] = true
		order = append(order, best)
		for _, v := range q.Atoms[best].Vars {
			bound[v] = true
		}
	}
	return order
}

func satisfy(byRel map[string][]pdb.Fact, q *Query, order []int, pos int, asg Assignment) bool {
	if pos == len(order) {
		return true
	}
	atom := q.Atoms[order[pos]]
	for _, f := range byRel[atom.Relation] {
		added, ok := bind(atom, f, asg)
		if !ok {
			continue
		}
		if satisfy(byRel, q, order, pos+1, asg) {
			return true
		}
		for _, v := range added {
			delete(asg, v)
		}
	}
	return false
}

// bind extends asg so atom maps to fact f. It returns the variables it
// newly bound and whether the binding succeeded; on failure asg is left
// untouched.
func bind(atom Atom, f pdb.Fact, asg Assignment) ([]string, bool) {
	if len(atom.Vars) != len(f.Args) {
		return nil, false
	}
	var added []string
	for i, v := range atom.Vars {
		if c, ok := asg[v]; ok {
			if c != f.Args[i] {
				for _, w := range added {
					delete(asg, w)
				}
				return nil, false
			}
			continue
		}
		asg[v] = f.Args[i]
		added = append(added, v)
	}
	return added, true
}
