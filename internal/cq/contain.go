package cq

import "pqe/internal/pdb"

// CanonicalDatabase returns the canonical (frozen) database of the
// query: one fact per atom, with each variable frozen to a constant
// named after it. By the Chandra–Merlin theorem, D ⊨ Q' for the
// canonical database of Q iff there is a homomorphism Q' → Q.
//
// The paper's "Key Ideas" section traces its approach to the
// Kolaitis–Vardi connection between conjunctive-query containment and
// constraint satisfaction; this is the classical object underlying
// that connection, provided here both for completeness of the CQ
// substrate and for query-minimization utilities.
func (q *Query) CanonicalDatabase() *pdb.Database {
	d := pdb.NewDatabase()
	for _, a := range q.Atoms {
		args := make([]string, len(a.Vars))
		for i, v := range a.Vars {
			args[i] = "⟨" + v + "⟩"
		}
		d.Add(pdb.Fact{Relation: a.Relation, Args: args})
	}
	return d
}

// ContainedIn reports whether q ⊆ q2: every database satisfying q also
// satisfies q2. By Chandra–Merlin this holds iff q2 maps
// homomorphically into the canonical database of q. NP-complete in
// general; fine for the short queries this library targets.
func (q *Query) ContainedIn(q2 *Query) bool {
	return Satisfies(q.CanonicalDatabase(), q2)
}

// Equivalent reports whether the two queries are logically equivalent
// (mutual containment).
func (q *Query) Equivalent(q2 *Query) bool {
	return q.ContainedIn(q2) && q2.ContainedIn(q)
}

// Minimize returns the core of the query: a minimal subset of atoms
// equivalent to the original (unique up to isomorphism). Redundant
// atoms are those whose removal leaves an equivalent query; evaluating
// a minimized query is never harder, and for self-join-free queries
// minimization is the identity (no atom is redundant when every
// relation occurs once, unless two atoms are syntactically forced).
func (q *Query) Minimize() *Query {
	atoms := append([]Atom(nil), q.Atoms...)
	for i := 0; i < len(atoms); {
		if len(atoms) == 1 {
			break
		}
		reduced := make([]Atom, 0, len(atoms)-1)
		reduced = append(reduced, atoms[:i]...)
		reduced = append(reduced, atoms[i+1:]...)
		candidate := New(reduced...)
		if candidate.Equivalent(q) {
			atoms = reduced
		} else {
			i++
		}
	}
	return New(atoms...)
}
