package cq

import "testing"

func TestCanonicalDatabase(t *testing.T) {
	q := MustParse("R(x,y), S(y,z)")
	d := q.CanonicalDatabase()
	if d.Size() != 2 {
		t.Fatalf("Size = %d", d.Size())
	}
	if !Satisfies(d, q) {
		t.Error("query does not hold on its own canonical database")
	}
}

func TestContainedIn(t *testing.T) {
	cases := []struct {
		q1, q2 string
		want   bool
	}{
		// Fewer atoms are weaker: R(x,y),S(y,z) ⊆ R(x,y).
		{"R(x,y), S(y,z)", "R(x,y)", true},
		{"R(x,y)", "R(x,y), S(y,z)", false},
		// Variable renaming preserves equivalence.
		{"R(x,y)", "R(u,v)", true},
		// A more specific pattern is contained in a more general one.
		{"R(x,x)", "R(x,y)", true},
		{"R(x,y)", "R(x,x)", false},
		// Self-join chains: R(x,y),R(y,z) ⊆ R(u,v).
		{"R(x,y), R(y,z)", "R(u,v)", true},
		{"R(u,v)", "R(x,y), R(y,z)", false},
	}
	for _, c := range cases {
		q1, q2 := MustParse(c.q1), MustParse(c.q2)
		if got := q1.ContainedIn(q2); got != c.want {
			t.Errorf("(%s) ⊆ (%s) = %v, want %v", c.q1, c.q2, got, c.want)
		}
	}
}

func TestEquivalent(t *testing.T) {
	a := MustParse("R(x,y), S(y,z)")
	b := MustParse("S(v,w), R(u,v)")
	if !a.Equivalent(b) {
		t.Error("renamed/reordered query not equivalent")
	}
	c := MustParse("R(x,y), S(z,w)")
	if a.Equivalent(c) {
		t.Error("decoupled query reported equivalent")
	}
}

func TestMinimize(t *testing.T) {
	// R(x,y), R(u,v): the second atom is subsumed by the first.
	q := MustParse("R(x,y), R(u,v)")
	m := q.Minimize()
	if m.Len() != 1 {
		t.Errorf("Minimize left %d atoms: %s", m.Len(), m)
	}
	if !m.Equivalent(q) {
		t.Error("minimized query not equivalent")
	}
	// A self-join-free path query is already a core.
	p := PathQuery("R", 3)
	if got := p.Minimize(); got.Len() != 3 {
		t.Errorf("SJF path minimized to %d atoms", got.Len())
	}
	// R(x,y), R(y,z), R(u,v): the third atom is redundant, the chain is
	// not.
	q2 := MustParse("R(x,y), R(y,z), R(u,v)")
	m2 := q2.Minimize()
	if m2.Len() != 2 {
		t.Errorf("Minimize(%s) = %s", q2, m2)
	}
}
