package reduction

import (
	"fmt"
	"math/big"

	"pqe/internal/alphabet"
	"pqe/internal/cq"
	"pqe/internal/hypertree"
	"pqe/internal/nfta"
	"pqe/internal/pdb"
)

// PQEReduction is the output of the Theorem 1 (Section 5.2)
// construction: starting from the uniform-reliability automaton, every
// positive fact transition receives multiplier wᵢ and every negated one
// dᵢ−wᵢ (with π(fᵢ) = wᵢ/dᵢ), so that
//
//	|L_TreeSize(Auto)| = Σ_{D' ⊨ Q} ∏_{f∈D'} wᵢ ∏_{f∉D'} (dᵢ−wᵢ)
//
// and hence Pr_H(Q) = |L_TreeSize(Auto)| / DenProduct.
type PQEReduction struct {
	UR         *URReduction
	Mult       *nfta.MultNFTA
	Auto       *nfta.NFTA // translation of Mult, digit gadgets expanded
	TreeSize   int        // |D| + Σᵢ Kᵢ
	DenProduct *big.Int   // d = ∏ᵢ dᵢ
	// DigitBudget[i] is Kᵢ = max(u(wᵢ), u(dᵢ−wᵢ)) for the i-th fact: the
	// comparator width shared by the fact's positive and negated
	// transitions so all accepted trees have equal size. (With
	// asymmetric widths u(wᵢ) and u(dᵢ−wᵢ), as in a literal reading of
	// the paper, trees for different subinstances would have different
	// sizes and a single fixed-size count could not see them all.)
	DigitBudget []int
}

// BuildPQE runs the full Theorem 1 reduction for a self-join-free query
// of bounded hypertree width and a probabilistic database defined only
// over the query's relations.
func BuildPQE(q *cq.Query, h *pdb.Probabilistic, dec *hypertree.Decomposition) (*PQEReduction, error) {
	ur, err := BuildUR(q, h.DB(), dec)
	if err != nil {
		return nil, err
	}
	return WeightUR(ur, h)
}

// WeightUR attaches probability multipliers to an existing
// uniform-reliability reduction.
func WeightUR(ur *URReduction, h *pdb.Probabilistic) (*PQEReduction, error) {
	d := ur.DB
	if h.DB() != d {
		// Allow a different instance as long as it has the same facts.
		if h.Size() != d.Size() {
			return nil, fmt.Errorf("reduction: probabilistic instance has %d facts, automaton built for %d", h.Size(), d.Size())
		}
		for _, f := range d.Facts() {
			if h.DB().IndexOf(f) < 0 {
				return nil, fmt.Errorf("reduction: fact %v missing from probabilistic instance", f)
			}
		}
	}

	budgets := make([]int, d.Size())
	posMult := make([]*big.Int, d.Size())
	negMult := make([]*big.Int, d.Size())
	denProduct := big.NewInt(1)
	extra := 0
	for i, f := range d.Facts() {
		p := h.Prob(f)
		w := p.Num()
		den := p.Den()
		posMult[i] = w
		negMult[i] = new(big.Int).Sub(den, w)
		budgets[i] = maxInt(nfta.DigitsFor(posMult[i]), nfta.DigitsFor(negMult[i]))
		denProduct.Mul(denProduct, den)
		extra += budgets[i]
	}

	mult := nfta.NewMult(ur.Symbols)
	for i := 0; i < ur.Auto.NumStates(); i++ {
		mult.AddState()
	}
	mult.SetInitial(ur.Auto.Initial())
	resolved := resolveFactSymbols(ur.Symbols, d)
	for _, tr := range ur.Auto.Transitions() {
		r := resolved[tr.Sym]
		if r < 0 {
			return nil, factSymbolError(ur.Symbols, tr.Sym)
		}
		idx := int(r >> 1)
		m := posMult[idx]
		if r&1 == 1 {
			m = negMult[idx]
		}
		if err := mult.AddTransition(tr.From, tr.Sym, m, budgets[idx], tr.Children...); err != nil {
			return nil, err
		}
	}
	auto, err := mult.Translate()
	if err != nil {
		return nil, err
	}
	// The comparator gadgets leave dead free-track heads behind;
	// zero-multiplier transitions may also strand whole branches.
	auto = auto.Trim()
	return &PQEReduction{
		UR:          ur,
		Mult:        mult,
		Auto:        auto,
		TreeSize:    d.Size() + extra,
		DenProduct:  denProduct,
		DigitBudget: budgets,
	}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// resolveFactSymbols maps every interned symbol to its fact's database
// position: resolved[sym] = 2·index | neg, or -1 when the symbol does
// not name a fact of d (digit symbols from an earlier weighting over
// the same interner, or a genuinely missing fact — the caller tells the
// two apart with factSymbolError on use). Symbol names produced by the
// reductions are canonical fact keys, so resolution is one map lookup
// per symbol instead of a fact-literal parse per transition.
func resolveFactSymbols(symbols *alphabet.Interner, d *pdb.Database) []int32 {
	names := symbols.Names()
	resolved := make([]int32, len(names))
	for id, name := range names {
		factName := name
		var neg int32
		if base, ok := nfta.IsNegName(name); ok {
			factName, neg = base, 1
		}
		if i := d.IndexOfKey(factName); i >= 0 {
			resolved[id] = int32(i)<<1 | neg
		} else {
			resolved[id] = -1
		}
	}
	return resolved
}

// factSymbolError reconstructs the precise failure for a transition
// symbol that resolveFactSymbols could not map to a database fact.
func factSymbolError(symbols *alphabet.Interner, sym int) error {
	name := symbols.Name(sym)
	factName := name
	if base, ok := nfta.IsNegName(name); ok {
		factName = base
	}
	fact, err := pdb.ParseFact(factName)
	if err != nil {
		return fmt.Errorf("reduction: transition symbol %q is not a fact literal: %v", name, err)
	}
	return fmt.Errorf("reduction: transition fact %v not in database", fact)
}
