package reduction

import (
	"fmt"
	"math/big"

	"pqe/internal/cq"
	"pqe/internal/hypertree"
	"pqe/internal/nfta"
	"pqe/internal/pdb"
)

// PQEReduction is the output of the Theorem 1 (Section 5.2)
// construction: starting from the uniform-reliability automaton, every
// positive fact transition receives multiplier wᵢ and every negated one
// dᵢ−wᵢ (with π(fᵢ) = wᵢ/dᵢ), so that
//
//	|L_TreeSize(Auto)| = Σ_{D' ⊨ Q} ∏_{f∈D'} wᵢ ∏_{f∉D'} (dᵢ−wᵢ)
//
// and hence Pr_H(Q) = |L_TreeSize(Auto)| / DenProduct.
type PQEReduction struct {
	UR         *URReduction
	Mult       *nfta.MultNFTA
	Auto       *nfta.NFTA // translation of Mult, digit gadgets expanded
	TreeSize   int        // |D| + Σᵢ Kᵢ
	DenProduct *big.Int   // d = ∏ᵢ dᵢ
	// DigitBudget[i] is Kᵢ = max(u(wᵢ), u(dᵢ−wᵢ)) for the i-th fact: the
	// comparator width shared by the fact's positive and negated
	// transitions so all accepted trees have equal size. (With
	// asymmetric widths u(wᵢ) and u(dᵢ−wᵢ), as in a literal reading of
	// the paper, trees for different subinstances would have different
	// sizes and a single fixed-size count could not see them all.)
	DigitBudget []int
}

// BuildPQE runs the full Theorem 1 reduction for a self-join-free query
// of bounded hypertree width and a probabilistic database defined only
// over the query's relations.
func BuildPQE(q *cq.Query, h *pdb.Probabilistic, dec *hypertree.Decomposition) (*PQEReduction, error) {
	ur, err := BuildUR(q, h.DB(), dec)
	if err != nil {
		return nil, err
	}
	return WeightUR(ur, h)
}

// WeightUR attaches probability multipliers to an existing
// uniform-reliability reduction.
func WeightUR(ur *URReduction, h *pdb.Probabilistic) (*PQEReduction, error) {
	d := ur.DB
	if h.DB() != d {
		// Allow a different instance as long as it has the same facts.
		if h.Size() != d.Size() {
			return nil, fmt.Errorf("reduction: probabilistic instance has %d facts, automaton built for %d", h.Size(), d.Size())
		}
		for _, f := range d.Facts() {
			if h.DB().IndexOf(f) < 0 {
				return nil, fmt.Errorf("reduction: fact %v missing from probabilistic instance", f)
			}
		}
	}

	budgets := make([]int, d.Size())
	posMult := make([]*big.Int, d.Size())
	negMult := make([]*big.Int, d.Size())
	denProduct := big.NewInt(1)
	extra := 0
	for i, f := range d.Facts() {
		p := h.Prob(f)
		w := p.Num()
		den := p.Den()
		posMult[i] = w
		negMult[i] = new(big.Int).Sub(den, w)
		budgets[i] = maxInt(nfta.DigitsFor(posMult[i]), nfta.DigitsFor(negMult[i]))
		denProduct.Mul(denProduct, den)
		extra += budgets[i]
	}

	mult := nfta.NewMult(ur.Symbols)
	for i := 0; i < ur.Auto.NumStates(); i++ {
		mult.AddState()
	}
	mult.SetInitial(ur.Auto.Initial())
	for _, tr := range ur.Auto.Transitions() {
		name := ur.Symbols.Name(tr.Sym)
		base, negated := nfta.IsNegName(name)
		factName := name
		if negated {
			factName = base
		}
		fact, err := pdb.ParseFact(factName)
		if err != nil {
			return nil, fmt.Errorf("reduction: transition symbol %q is not a fact literal: %v", name, err)
		}
		idx := d.IndexOf(fact)
		if idx < 0 {
			return nil, fmt.Errorf("reduction: transition fact %v not in database", fact)
		}
		m := posMult[idx]
		if negated {
			m = negMult[idx]
		}
		if err := mult.AddTransition(tr.From, tr.Sym, m, budgets[idx], tr.Children...); err != nil {
			return nil, err
		}
	}
	auto, err := mult.Translate()
	if err != nil {
		return nil, err
	}
	// The comparator gadgets leave dead free-track heads behind;
	// zero-multiplier transitions may also strand whole branches.
	auto = auto.Trim()
	return &PQEReduction{
		UR:          ur,
		Mult:        mult,
		Auto:        auto,
		TreeSize:    d.Size() + extra,
		DenProduct:  denProduct,
		DigitBudget: budgets,
	}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
