package reduction

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pqe/internal/count"
	"pqe/internal/cq"
	"pqe/internal/hypertree"
	"pqe/internal/nfta"
	"pqe/internal/pdb"
)

func TestDecodeTreeInvertsEncode(t *testing.T) {
	q := cq.PathQuery("R", 3)
	d := pdb.FromFacts(
		pdb.NewFact("R1", "a", "b"),
		pdb.NewFact("R2", "b", "c"),
		pdb.NewFact("R2", "b", "x"),
		pdb.NewFact("R3", "c", "d"),
	)
	ur := buildURFor(t, q, d)
	n := d.Size()
	mask := make([]bool, n)
	for m := 0; m < 1<<uint(n); m++ {
		for i := range mask {
			mask[i] = m&(1<<uint(i)) != 0
		}
		tree, err := ur.EncodeSubinstance(mask)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ur.DecodeTree(tree)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		for i := range mask {
			if got[i] != mask[i] {
				t.Fatalf("round trip failed at mask %v: got %v", mask, got)
			}
		}
	}
}

func TestDecodeTreeSkipsDigits(t *testing.T) {
	// Weighted automaton trees contain digit nodes; decoding must skip
	// them and still recover the subinstance.
	q := cq.PathQuery("R", 2)
	h := pdb.Empty()
	h.Add(pdb.NewFact("R1", "a", "b"), pdb.NewProb(2, 3))
	h.Add(pdb.NewFact("R2", "b", "c"), pdb.NewProb(3, 5))
	ur := buildURFor(t, q, h.DB())
	weighted, err := WeightUR(ur, h)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		tree := count.SampleTree(weighted.Auto, weighted.TreeSize, count.Options{Seed: int64(i + 1)})
		if tree == nil {
			t.Fatal("nil sample")
		}
		mask, err := ur.DecodeTree(tree)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !cq.Satisfies(h.DB().Subinstance(mask), q) {
			t.Errorf("decoded subinstance %v does not satisfy the query", mask)
		}
	}
}

func TestDecodeTreeRejectsMalformed(t *testing.T) {
	q := cq.PathQuery("R", 2)
	d := pdb.FromFacts(
		pdb.NewFact("R1", "a", "b"),
		pdb.NewFact("R2", "b", "c"),
	)
	ur := buildURFor(t, q, d)
	// A tree mentioning only one fact: missing-fact error.
	sym, ok := ur.Symbols.Lookup("R1(a,b)")
	if !ok {
		t.Fatal("symbol missing")
	}
	if _, err := ur.DecodeTree(nfta.Leaf(sym)); err == nil {
		t.Error("tree with missing facts decoded")
	}
	// A tree mentioning a fact twice: duplicate error.
	dup := nfta.Path([]int{sym, sym})
	if _, err := ur.DecodeTree(dup); err == nil {
		t.Error("tree with duplicate facts decoded")
	}
}

// Property: on random small instances, every satisfying mask encodes to
// an accepted tree that decodes back to itself.
func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := cq.PathQuery("R", 2+rng.Intn(2))
		d := randomGraphDB(rng, q.Len(), 1+rng.Intn(2), 3)
		dec, err := decomposeFor(q)
		if err != nil {
			return false
		}
		ur, err := BuildUR(q, d, dec)
		if err != nil {
			return false
		}
		n := d.Size()
		mask := make([]bool, n)
		for m := 0; m < 1<<uint(n); m++ {
			for i := range mask {
				mask[i] = m&(1<<uint(i)) != 0
			}
			tree, err := ur.EncodeSubinstance(mask)
			if err != nil {
				return false
			}
			got, err := ur.DecodeTree(tree)
			if err != nil {
				return false
			}
			for i := range mask {
				if got[i] != mask[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// decomposeFor is a test helper mirroring buildURFor without testing.T.
func decomposeFor(q *cq.Query) (*hypertree.Decomposition, error) {
	return hypertree.Decompose(q)
}
