package reduction

import (
	"fmt"
	"sort"

	"pqe/internal/alphabet"
	"pqe/internal/cq"
	"pqe/internal/hypertree"
	"pqe/internal/nfta"
	"pqe/internal/obs"
	"pqe/internal/pdb"
)

// URReduction is the output of the Proposition 1 construction: an
// augmented NFTA (and its λ-free ordinary translation) whose accepted
// trees of size TreeSize = |D| are in bijection with the subinstances of
// D satisfying Q, so |L_TreeSize(Auto)| = UR(Q, D).
type URReduction struct {
	Query    *cq.Query
	DB       *pdb.Database
	Dec      *hypertree.Decomposition // normalized: complete, re-rooted, binarized
	Aug      *nfta.AugNFTA
	Auto     *nfta.NFTA // translation of Aug, λ-free
	TreeSize int
	Symbols  *alphabet.Interner
}

// bagState is one automaton state of a decomposition vertex: a choice of
// one fact per atom of ξ(p), mutually consistent; asg is the induced
// variable assignment over vars(ξ(p)).
type bagState struct {
	id      int
	witness map[int]pdb.Fact // atom index -> chosen fact
	asg     cq.Assignment
}

// BuildUR constructs the augmented NFTA of Proposition 1 for a
// self-join-free query of bounded hypertree width and a database defined
// only over the query's relations, and translates it to an ordinary
// λ-free NFTA.
//
// The decomposition is normalized first: completed (every atom has a
// covering vertex), re-rooted so the root is a covering vertex
// (footnote 1), and binarized so children tuples have length ≤ 2,
// keeping the transition relation polynomial in |Q| and |D|.
func BuildUR(q *cq.Query, d *pdb.Database, dec *hypertree.Decomposition) (*URReduction, error) {
	return BuildURObs(q, d, dec, nil)
}

// BuildURObs is BuildUR with telemetry: the λ-elimination translation
// and the trim each get a stage span under sc. A nil scope behaves
// exactly like BuildUR.
func BuildURObs(q *cq.Query, d *pdb.Database, dec *hypertree.Decomposition, sc *obs.Scope) (*URReduction, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if !q.SelfJoinFree() {
		return nil, fmt.Errorf("reduction: query %q has self-joins", q)
	}
	rels := q.RelationSet()
	for _, f := range d.Facts() {
		if !rels[f.Relation] {
			return nil, fmt.Errorf("reduction: database fact %v over relation not in query; project first", f)
		}
	}
	if !dec.IsComplete() {
		if err := dec.Complete(); err != nil {
			return nil, err
		}
	}
	dec, err := dec.ReRootAtCoveringVertex()
	if err != nil {
		return nil, err
	}
	dec = dec.Binarize()

	symbols := alphabet.New()
	aug := nfta.NewAugmented(symbols)

	// covering[m] = BFS ID of the ≺vertices-minimal covering vertex of
	// atom m.
	covering := make([]int, q.Len())
	for m := range q.Atoms {
		cv := dec.CoveringVertex(m)
		if cv == nil {
			return nil, fmt.Errorf("reduction: atom %s has no covering vertex", q.Atoms[m])
		}
		covering[m] = cv.ID
	}

	// Enumerate the states S(p) of every vertex.
	states := make([][]*bagState, dec.Size())
	for _, p := range dec.Nodes() {
		sts, err := bagStates(q, d, p)
		if err != nil {
			return nil, err
		}
		for _, s := range sts {
			s.id = aug.AddState()
		}
		states[p.ID] = sts
	}
	initial := aug.AddState()
	aug.SetInitial(initial)
	for _, s := range states[dec.Root.ID] {
		aug.AddTransition(initial, nil, s.id) // unary λ: ε-move to a root state
	}

	// Transitions: for every vertex, every state, every consistent
	// combination of child states.
	for _, p := range dec.Nodes() {
		for _, sp := range states[p.ID] {
			label := annotation(q, d, symbols, p, covering, sp)
			combos := consistentChildCombos(sp, p, states)
			for _, combo := range combos {
				aug.AddTransition(sp.id, label, combo...)
			}
		}
	}

	_, tlspan := sc.Span("reduction.translate")
	auto, err := aug.Translate()
	tlspan.End()
	if err != nil {
		return nil, err
	}
	// Dead bag states (witness combinations whose subtrees can never
	// complete) are common; trimming them shrinks every downstream
	// counting table without changing the language.
	_, tspan := sc.Span("pqe.trim_ur")
	auto = auto.Trim()
	if tspan != nil {
		tspan.SetAttr("states", auto.NumStates())
	}
	tspan.End()
	return &URReduction{
		Query:    q,
		DB:       d,
		Dec:      dec,
		Aug:      aug,
		Auto:     auto,
		TreeSize: d.Size(),
		Symbols:  symbols,
	}, nil
}

// bagStates enumerates the consistent fact assignments for ξ(p).
func bagStates(q *cq.Query, d *pdb.Database, p *hypertree.Node) ([]*bagState, error) {
	atoms := p.Xi
	var out []*bagState
	witness := make(map[int]pdb.Fact, len(atoms))
	asg := make(cq.Assignment)

	var rec func(i int)
	rec = func(i int) {
		if i == len(atoms) {
			w := make(map[int]pdb.Fact, len(witness))
			for k, v := range witness {
				w[k] = v
			}
			out = append(out, &bagState{witness: w, asg: asg.Clone()})
			return
		}
		m := atoms[i]
		atom := q.Atoms[m]
		for _, f := range d.FactsOf(atom.Relation) {
			if f.Arity() != atom.Arity() {
				continue
			}
			added, ok := tryBind(atom, f, asg)
			if !ok {
				continue
			}
			witness[m] = f
			rec(i + 1)
			delete(witness, m)
			for _, v := range added {
				delete(asg, v)
			}
		}
	}
	rec(0)
	return out, nil
}

// tryBind extends asg so atom maps to f, returning the newly bound
// variables; on conflict it restores asg and reports failure.
func tryBind(atom cq.Atom, f pdb.Fact, asg cq.Assignment) ([]string, bool) {
	var added []string
	for i, v := range atom.Vars {
		if c, ok := asg[v]; ok {
			if c != f.Args[i] {
				for _, w := range added {
					delete(asg, w)
				}
				return nil, false
			}
			continue
		}
		asg[v] = f.Args[i]
		added = append(added, v)
	}
	return added, true
}

// annotation builds the label string L for a vertex state: for every
// atom whose ≺vertices-minimal covering vertex is p, in ≺atoms order,
// the full ≺ᵢ-ordered list of facts of the atom's relation, each marked
// optional ("?") except the state's witness for that atom, which must be
// present.
func annotation(q *cq.Query, d *pdb.Database, symbols *alphabet.Interner, p *hypertree.Node, covering []int, sp *bagState) []nfta.AugSymbol {
	var label []nfta.AugSymbol
	atoms := append([]int(nil), p.Xi...)
	sort.Ints(atoms)
	for _, m := range atoms {
		if covering[m] != p.ID {
			continue
		}
		w := sp.witness[m]
		for _, f := range d.FactsOf(q.Atoms[m].Relation) {
			sym := symbols.Intern(f.Key())
			if f.Equal(w) {
				label = append(label, nfta.Plain(sym))
			} else {
				label = append(label, nfta.Opt(sym))
			}
		}
	}
	return label
}

// consistentChildCombos enumerates, for a parent state, the tuples of
// child states (one per child vertex, in child order) that are
// consistent with the parent and pairwise consistent (conditions 2–4 of
// the Proposition 1 construction).
func consistentChildCombos(sp *bagState, p *hypertree.Node, states [][]*bagState) [][]int {
	if len(p.Children) == 0 {
		return [][]int{nil}
	}
	var out [][]int
	combo := make([]*bagState, 0, len(p.Children))
	var rec func(ci int)
	rec = func(ci int) {
		if ci == len(p.Children) {
			ids := make([]int, len(combo))
			for i, s := range combo {
				ids[i] = s.id
			}
			out = append(out, ids)
			return
		}
		child := p.Children[ci]
		for _, sc := range states[child.ID] {
			if !sp.asg.Consistent(sc.asg) {
				continue
			}
			ok := true
			for _, prev := range combo {
				if !prev.asg.Consistent(sc.asg) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			combo = append(combo, sc)
			rec(ci + 1)
			combo = combo[:len(combo)-1]
		}
	}
	rec(0)
	return out
}
