package reduction

import (
	"pqe/internal/alphabet"
	"pqe/internal/cq"
	"pqe/internal/hypertree"
	"pqe/internal/nfta"
	"pqe/internal/obs"
	"pqe/internal/pdb"
)

// URReduction is the output of the Proposition 1 construction: an
// augmented NFTA (and its λ-free ordinary translation) whose accepted
// trees of size TreeSize = |D| are in bijection with the subinstances of
// D satisfying Q, so |L_TreeSize(Auto)| = UR(Q, D).
type URReduction struct {
	Query    *cq.Query
	DB       *pdb.Database
	Dec      *hypertree.Decomposition // normalized: complete, re-rooted, binarized
	Aug      *nfta.AugNFTA
	Auto     *nfta.NFTA // translation of Aug, λ-free
	TreeSize int
	Symbols  *alphabet.Interner
}

// bagState is one automaton state of a decomposition vertex: a choice of
// one fact per atom of ξ(p), mutually consistent; asg is the induced
// variable assignment over vars(ξ(p)).
type bagState struct {
	id      int
	witness map[int]pdb.Fact // atom index -> chosen fact
	asg     cq.Assignment
}

// BuildUR constructs the augmented NFTA of Proposition 1 for a
// self-join-free query of bounded hypertree width and a database defined
// only over the query's relations, and translates it to an ordinary
// λ-free NFTA.
//
// The decomposition is normalized first: completed (every atom has a
// covering vertex), re-rooted so the root is a covering vertex
// (footnote 1), and binarized so children tuples have length ≤ 2,
// keeping the transition relation polynomial in |Q| and |D|.
func BuildUR(q *cq.Query, d *pdb.Database, dec *hypertree.Decomposition) (*URReduction, error) {
	return BuildURObs(q, d, dec, nil)
}

// BuildURObs is BuildUR with telemetry: the λ-elimination translation
// and the trim each get a stage span under sc. A nil scope behaves
// exactly like BuildUR.
//
// It is a from-scratch run of the incremental URBuilder (every relation
// dirty); callers that re-estimate after database deltas should hold a
// URBuilder instead and pay only for the dirty vertices.
func BuildURObs(q *cq.Query, d *pdb.Database, dec *hypertree.Decomposition, sc *obs.Scope) (*URReduction, error) {
	b, err := NewURBuilder(q, d, dec)
	if err != nil {
		return nil, err
	}
	return b.Build(sc)
}

// tryBind extends asg so atom maps to f, returning the newly bound
// variables; on conflict it restores asg and reports failure.
func tryBind(atom cq.Atom, f pdb.Fact, asg cq.Assignment) ([]string, bool) {
	var added []string
	for i, v := range atom.Vars {
		if c, ok := asg[v]; ok {
			if c != f.Args[i] {
				for _, w := range added {
					delete(asg, w)
				}
				return nil, false
			}
			continue
		}
		asg[v] = f.Args[i]
		added = append(added, v)
	}
	return added, true
}
