package reduction

import (
	"testing"

	"pqe/internal/cq"
	"pqe/internal/gen"
	"pqe/internal/hypertree"
	"pqe/internal/pdb"
)

// Construction benchmarks for the incremental builders against their
// from-scratch counterparts. The churn variants mutate the facts of a
// single relation (the middle atom's) between builds — the localized
// workload incremental maintenance targets; cmd/pqebench commits the
// corresponding regression-gated numbers in BENCH_churn.json.

// churnRelStep removes the rotating victim fact of rel and re-inserts
// it with a "~" toggled on its last argument, keeping |D| constant.
func churnRelStep(d *pdb.Database, rel string, ctr int) (del, ins pdb.Fact) {
	facts := d.FactsOf(rel)
	del = facts[ctr%len(facts)]
	args := append([]string(nil), del.Args...)
	last := len(args) - 1
	if n := len(args[last]); n > 0 && args[last][n-1] == '~' {
		args[last] = args[last][:n-1]
	} else {
		args[last] += "~"
	}
	ins = pdb.NewFact(del.Relation, args...)
	d.Remove(del)
	d.Add(ins)
	return del, ins
}

func BenchmarkURBuildFresh(b *testing.B) {
	q := cq.PathQuery("R", 3)
	d := gen.SparsePathInstance(q, 50, 2, gen.ProbHalf, 1).DB()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := hypertree.Decompose(q)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := BuildUR(q, d, dec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkURBuildClean measures a no-delta rebuild: all caches warm,
// the builder only replays the deterministic assembly.
func BenchmarkURBuildClean(b *testing.B) {
	q := cq.PathQuery("R", 3)
	d := gen.SparsePathInstance(q, 50, 2, gen.ProbHalf, 1).DB()
	dec, err := hypertree.Decompose(q)
	if err != nil {
		b.Fatal(err)
	}
	bu, err := NewURBuilder(q, d, dec)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := bu.Build(nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bu.Build(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func benchURChurn(b *testing.B, n int, incr bool) {
	q := cq.PathQuery("R", 6)
	d := gen.SparsePathInstance(q, 26, 2, gen.ProbHalf, 1).DB()
	rel := q.Atoms[q.Len()/2].Relation
	ctr := 0
	if incr {
		dec, err := hypertree.Decompose(q)
		if err != nil {
			b.Fatal(err)
		}
		bu, err := NewURBuilder(q, d, dec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bu.Build(nil); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j++ {
				del, ins := churnRelStep(d, rel, ctr)
				ctr++
				bu.NoteMutation(del.Relation, true)
				bu.NoteMutation(ins.Relation, false)
			}
			if _, err := bu.Build(nil); err != nil {
				b.Fatal(err)
			}
		}
		return
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < n; j++ {
			churnRelStep(d, rel, ctr)
			ctr++
		}
		dec, err := hypertree.Decompose(q)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := BuildUR(q, d, dec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkURChurnN1Incremental(b *testing.B)  { benchURChurn(b, 1, true) }
func BenchmarkURChurnN1Rebuild(b *testing.B)      { benchURChurn(b, 1, false) }
func BenchmarkURChurnN10Incremental(b *testing.B) { benchURChurn(b, 10, true) }
func BenchmarkURChurnN10Rebuild(b *testing.B)     { benchURChurn(b, 10, false) }

func benchPathChurn(b *testing.B, n int, incr bool) {
	q := cq.PathQuery("R", 6)
	d := gen.SparsePathInstance(q, 26, 2, gen.ProbHalf, 1).DB()
	rel := q.Atoms[q.Len()/2].Relation
	ctr := 0
	if incr {
		bu, err := NewPathBuilder(q, d)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bu.Build(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j++ {
				del, ins := churnRelStep(d, rel, ctr)
				ctr++
				bu.NoteMutation(del.Relation, true)
				bu.NoteMutation(ins.Relation, false)
			}
			if _, err := bu.Build(); err != nil {
				b.Fatal(err)
			}
		}
		return
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < n; j++ {
			churnRelStep(d, rel, ctr)
			ctr++
		}
		if _, err := PathNFA(q, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPathChurnN1Incremental(b *testing.B)  { benchPathChurn(b, 1, true) }
func BenchmarkPathChurnN1Rebuild(b *testing.B)      { benchPathChurn(b, 1, false) }
func BenchmarkPathChurnN10Incremental(b *testing.B) { benchPathChurn(b, 10, true) }
func BenchmarkPathChurnN10Rebuild(b *testing.B)     { benchPathChurn(b, 10, false) }
