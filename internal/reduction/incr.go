package reduction

import (
	"fmt"
	"sort"

	"pqe/internal/alphabet"
	"pqe/internal/arena"
	"pqe/internal/cq"
	"pqe/internal/hypertree"
	"pqe/internal/nfa"
	"pqe/internal/nfta"
	"pqe/internal/obs"
	"pqe/internal/pdb"
)

// This file implements incremental automaton construction: builders that
// keep the expensive enumeration state of a reduction (per-relation fact
// lists, bag-state sets, annotation labels, child-combination tuples,
// join lists) across database mutations, and on each Build re-derive
// only the parts touching relations marked dirty since the last build.
//
// The assembly step — numbering states, emitting transitions, the λ-free
// translation and the trim — always replays from the cached parts, in
// exactly the order of a from-scratch build. Estimates are pure
// functions of the automaton structure (state numbering, symbol IDs,
// transition order all feed the per-site RNG derivation), so the
// incremental path must produce a *structurally identical* automaton,
// not merely an equivalent one; replaying the deterministic assembly
// from caches whose content is pinned to equal the fresh enumeration
// achieves that by construction. See DESIGN.md §12.
//
// Symbol canonicalization: every build interns, up front, pos(fᵢ) = 2i
// and neg(fᵢ) = 2i+1 for the i-th fact of the (projected) database.
// Cached labels store these IDs; after an insert old indices are
// unchanged (facts append), and after a delete the surviving indices
// shift, so clean vertices' cached labels are renumbered through a
// remap table instead of being rebuilt.

// urRelCache holds the ≺ᵢ-ordered facts of one query relation together
// with their projected (global) database positions and canonical
// pos/neg symbol names.
type urRelCache struct {
	facts   []pdb.Fact
	pos     []int    // facts[j] is the pos[j]-th fact of the database
	keys    []string // facts[j].Key()
	negKeys []string // NegName(keys[j])

	cur      int  // sync-pass cursor
	dirtyNow bool // sync-pass: relation is being rebuilt
}

// urVertexCache holds the derived state of one decomposition vertex.
type urVertexCache struct {
	covered []int              // atoms labeled at this vertex, ascending
	states  []*bagState        // S(p), in enumeration order
	labels  [][]nfta.AugSymbol // labels[s]: annotation of states[s]
	combos  [][][]int32        // combos[s]: child-state index tuples
}

// URBuilder incrementally maintains the Proposition 1 reduction for a
// fixed (query, database value, decomposition) triple. After mutating
// the database, call NoteMutation for every touched relation, then
// Build; vertices none of whose bag atoms range over a dirty relation
// keep their enumerated states, labels and child combinations.
//
// The builder trusts NoteMutation: mutating a relation's facts without
// reporting it desynchronizes the caches (the sync pass panics when it
// can detect the drift). The database value must remain the one passed
// to NewURBuilder.
type URBuilder struct {
	q        *cq.Query
	d        *pdb.Database
	dec      *hypertree.Decomposition // normalized
	covering []int
	byRel    map[string]*urRelCache
	vertices []urVertexCache

	keys    []string // canonical fact keys, database order (last sync)
	negKeys []string

	dirty     map[string]bool
	hadDelete bool
	built     bool

	children arena.Slab[int] // children tuples; reset at each assembly
}

// NewURBuilder validates the query and normalizes the decomposition
// (complete, re-rooted at a covering vertex, binarized), returning a
// builder with every relation initially dirty.
func NewURBuilder(q *cq.Query, d *pdb.Database, dec *hypertree.Decomposition) (*URBuilder, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if !q.SelfJoinFree() {
		return nil, fmt.Errorf("reduction: query %q has self-joins", q)
	}
	if !dec.IsComplete() {
		if err := dec.Complete(); err != nil {
			return nil, err
		}
	}
	ndec, err := dec.ReRootAtCoveringVertex()
	if err != nil {
		return nil, err
	}
	ndec = ndec.Binarize()
	covering := make([]int, q.Len())
	for m := range q.Atoms {
		cv := ndec.CoveringVertex(m)
		if cv == nil {
			return nil, fmt.Errorf("reduction: atom %s has no covering vertex", q.Atoms[m])
		}
		covering[m] = cv.ID
	}
	b := &URBuilder{
		q:        q,
		d:        d,
		dec:      ndec,
		covering: covering,
		byRel:    make(map[string]*urRelCache),
		vertices: make([]urVertexCache, ndec.Size()),
		dirty:    make(map[string]bool),
	}
	for r := range q.RelationSet() {
		b.byRel[r] = &urRelCache{}
		b.dirty[r] = true
	}
	for _, p := range ndec.Nodes() {
		vc := &b.vertices[p.ID]
		atoms := append([]int(nil), p.Xi...)
		sort.Ints(atoms)
		for _, m := range atoms {
			if covering[m] == p.ID {
				vc.covered = append(vc.covered, m)
			}
		}
	}
	return b, nil
}

// NoteMutation records that the facts of relation rel changed since the
// last Build. withDelete reports whether any fact was removed — removals
// shift the projected positions of later facts, which forces a symbol
// renumbering of the clean vertices' cached labels.
func (b *URBuilder) NoteMutation(rel string, withDelete bool) {
	b.dirty[rel] = true
	if withDelete {
		b.hadDelete = true
	}
}

// Build produces the reduction at the database's current state,
// re-enumerating only vertices over dirty relations and replaying the
// deterministic assembly. The result is structurally identical to a
// from-scratch BuildURObs on the same inputs. The previous Build's
// reduction is invalidated (its automata share tuples with the
// builder's arena, which is recycled here).
func (b *URBuilder) Build(sc *obs.Scope) (*URReduction, error) {
	// Vertex dirtiness: a vertex re-enumerates iff any atom of its bag
	// ranges over a dirty relation; its child-combination tuples also
	// re-enumerate when a child's state list changed.
	vDirty := make([]bool, b.dec.Size())
	for _, p := range b.dec.Nodes() {
		for _, m := range p.Xi {
			if b.dirty[b.q.Atoms[m].Relation] {
				vDirty[p.ID] = true
				break
			}
		}
	}
	cDirty := make([]bool, b.dec.Size())
	for _, p := range b.dec.Nodes() {
		cDirty[p.ID] = vDirty[p.ID]
		for _, c := range p.Children {
			if vDirty[c.ID] {
				cDirty[p.ID] = true
			}
		}
	}
	// remap[old] = new projected index of the fact that held projected
	// index old at the last sync, -1 if since deleted. Only needed when
	// a delete shifted positions AND some clean vertex keeps cached
	// labels to renumber; inserts append and leave old indices
	// unchanged, and an all-dirty build rebuilds every label anyway.
	anyClean := false
	for _, p := range b.dec.Nodes() {
		if !vDirty[p.ID] {
			anyClean = true
			break
		}
	}
	var remap []int32
	if b.built && b.hadDelete && anyClean {
		remap = make([]int32, len(b.keys))
		for i, k := range b.keys {
			remap[i] = int32(b.d.IndexOfKey(k))
		}
	}
	if err := b.syncFacts(); err != nil {
		return nil, err
	}
	if remap != nil {
		for _, p := range b.dec.Nodes() {
			if vDirty[p.ID] {
				continue // rebuilt below with fresh symbols
			}
			for _, lab := range b.vertices[p.ID].labels {
				for x := range lab {
					old := lab[x].Sym
					ni := remap[old>>1]
					if ni < 0 {
						// A deleted fact can only appear in labels of
						// vertices covering its relation, all dirty.
						panic(fmt.Sprintf("reduction: deleted fact %s referenced by a clean vertex label", b.keys[old>>1]))
					}
					lab[x].Sym = int(ni)<<1 | old&1
				}
			}
		}
	}
	for _, p := range b.dec.Nodes() {
		if !vDirty[p.ID] {
			continue
		}
		vc := &b.vertices[p.ID]
		vc.states = b.bagStatesOf(p)
		b.buildLabels(vc)
	}
	for _, p := range b.dec.Nodes() {
		if !cDirty[p.ID] {
			continue
		}
		vc := &b.vertices[p.ID]
		vc.combos = make([][][]int32, len(vc.states))
		for si, sp := range vc.states {
			vc.combos[si] = b.childCombos(sp, p)
		}
	}
	for r := range b.dirty {
		delete(b.dirty, r)
	}
	b.hadDelete = false
	b.built = true
	return b.assemble(sc)
}

// syncFacts brings the per-relation caches in line with the database:
// dirty relations rescan their facts (and canonical key strings), clean
// ones refresh only the projected positions. It also rebuilds the
// global key arrays used to seed the canonical interner. A fact over a
// relation outside the query aborts the sync (caches stay dirty, so the
// next Build rescans).
func (b *URBuilder) syncFacts() error {
	for r, rc := range b.byRel {
		rc.cur = 0
		rc.dirtyNow = b.dirty[r]
		if rc.dirtyNow {
			rc.facts = rc.facts[:0]
			rc.pos = rc.pos[:0]
			rc.keys = rc.keys[:0]
			rc.negKeys = rc.negKeys[:0]
		}
	}
	keys := make([]string, b.d.Size())
	negKeys := make([]string, b.d.Size())
	for i, f := range b.d.Facts() {
		rc := b.byRel[f.Relation]
		if rc == nil {
			return fmt.Errorf("reduction: database fact %v over relation not in query; project first", f)
		}
		j := rc.cur
		rc.cur++
		if rc.dirtyNow {
			k := f.Key()
			rc.facts = append(rc.facts, f)
			rc.pos = append(rc.pos, i)
			rc.keys = append(rc.keys, k)
			rc.negKeys = append(rc.negKeys, nfta.NegName(k))
		} else {
			if j >= len(rc.facts) {
				panic(fmt.Sprintf("reduction: relation %s changed without NoteMutation", f.Relation))
			}
			rc.pos[j] = i
		}
		keys[i] = rc.keys[j]
		negKeys[i] = rc.negKeys[j]
	}
	for r, rc := range b.byRel {
		if !rc.dirtyNow && rc.cur != len(rc.facts) {
			panic(fmt.Sprintf("reduction: relation %s changed without NoteMutation", r))
		}
	}
	b.keys = keys
	b.negKeys = negKeys
	return nil
}

// bagStatesOf enumerates the consistent fact assignments for ξ(p) from
// the cached per-relation fact lists, in the same order as a fresh
// enumeration over the database.
func (b *URBuilder) bagStatesOf(p *hypertree.Node) []*bagState {
	atoms := p.Xi
	var out []*bagState
	witness := make(map[int]pdb.Fact, len(atoms))
	asg := make(cq.Assignment)

	var rec func(i int)
	rec = func(i int) {
		if i == len(atoms) {
			w := make(map[int]pdb.Fact, len(witness))
			for k, v := range witness {
				w[k] = v
			}
			out = append(out, &bagState{witness: w, asg: asg.Clone()})
			return
		}
		m := atoms[i]
		atom := b.q.Atoms[m]
		for _, f := range b.byRel[atom.Relation].facts {
			if f.Arity() != atom.Arity() {
				continue
			}
			added, ok := tryBind(atom, f, asg)
			if !ok {
				continue
			}
			witness[m] = f
			rec(i + 1)
			delete(witness, m)
			for _, v := range added {
				delete(asg, v)
			}
		}
	}
	rec(0)
	return out
}

// buildLabels rebuilds the annotation labels of a vertex: for every
// atom labeled at the vertex, in ≺atoms order, the full ≺ᵢ-ordered fact
// list of its relation, optional except the state's witness. All labels
// of the vertex share one backing array; symbols use the canonical
// pos(fᵢ) = 2·(projected index) numbering.
func (b *URBuilder) buildLabels(vc *urVertexCache) {
	width := 0
	for _, m := range vc.covered {
		width += len(b.byRel[b.q.Atoms[m].Relation].facts)
	}
	vc.labels = make([][]nfta.AugSymbol, len(vc.states))
	if width == 0 {
		return // empty labels stay nil: λ annotations
	}
	backing := make([]nfta.AugSymbol, 0, width*len(vc.states))
	for si, sp := range vc.states {
		start := len(backing)
		for _, m := range vc.covered {
			rc := b.byRel[b.q.Atoms[m].Relation]
			w := sp.witness[m]
			for j, f := range rc.facts {
				sym := rc.pos[j] << 1
				if f.Equal(w) {
					backing = append(backing, nfta.Plain(sym))
				} else {
					backing = append(backing, nfta.Opt(sym))
				}
			}
		}
		vc.labels[si] = backing[start:len(backing):len(backing)]
	}
}

// leafCombo is the single empty child tuple of a leaf vertex.
var leafCombo = [][]int32{nil}

// childCombos enumerates, as tuples of child-state indices, the
// combinations of child states consistent with the parent state and
// pairwise consistent (conditions 2–4 of the Proposition 1
// construction), in the same order as the fresh enumeration.
func (b *URBuilder) childCombos(sp *bagState, p *hypertree.Node) [][]int32 {
	if len(p.Children) == 0 {
		return leafCombo
	}
	var out [][]int32
	combo := make([]*bagState, 0, len(p.Children))
	idx := make([]int32, len(p.Children))
	var rec func(ci int)
	rec = func(ci int) {
		if ci == len(p.Children) {
			out = append(out, append([]int32(nil), idx...))
			return
		}
		child := p.Children[ci]
		for k, cs := range b.vertices[child.ID].states {
			if !sp.asg.Consistent(cs.asg) {
				continue
			}
			ok := true
			for _, prev := range combo {
				if !prev.asg.Consistent(cs.asg) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			combo = append(combo, cs)
			idx[ci] = int32(k)
			rec(ci + 1)
			combo = combo[:len(combo)-1]
		}
	}
	rec(0)
	return out
}

// assemble replays the deterministic automaton assembly from the caches:
// state numbering in vertex order, the initial state's λ-moves to the
// root states, then every vertex's transitions, followed by the λ-free
// translation and the trim. Children tuples come from the builder's
// arena; labels are shared from the vertex caches.
func (b *URBuilder) assemble(sc *obs.Scope) (*URReduction, error) {
	symbols := alphabet.New()
	for i := range b.keys {
		symbols.Intern(b.keys[i])    // 2i
		symbols.Intern(b.negKeys[i]) // 2i+1
	}
	aug := nfta.NewAugmented(symbols)
	b.children.Reset()
	for _, p := range b.dec.Nodes() {
		for _, s := range b.vertices[p.ID].states {
			s.id = aug.AddState()
		}
	}
	initial := aug.AddState()
	aug.SetInitial(initial)
	for _, s := range b.vertices[b.dec.Root.ID].states {
		aug.AddTransitionShared(initial, nil, b.children.Append1(s.id))
	}
	for _, p := range b.dec.Nodes() {
		vc := &b.vertices[p.ID]
		for si, sp := range vc.states {
			label := vc.labels[si]
			for _, combo := range vc.combos[si] {
				ids := b.children.Alloc(len(combo))
				for t, ci := range combo {
					ids[t] = b.vertices[p.Children[t].ID].states[ci].id
				}
				aug.AddTransitionShared(sp.id, label, ids)
			}
		}
	}

	_, tlspan := sc.Span("reduction.translate")
	auto, err := aug.Translate()
	tlspan.End()
	if err != nil {
		return nil, err
	}
	_, tspan := sc.Span("pqe.trim_ur")
	auto = auto.Trim()
	if tspan != nil {
		tspan.SetAttr("states", auto.NumStates())
	}
	tspan.End()
	return &URReduction{
		Query:    b.q,
		DB:       b.d,
		Dec:      b.dec,
		Aug:      aug,
		Auto:     auto,
		TreeSize: b.d.Size(),
		Symbols:  symbols,
	}, nil
}

// pathAtomCache holds the ≺ᵢ-ordered binary facts of one path atom's
// relation with projected positions and canonical symbol names.
type pathAtomCache struct {
	facts   []pdb.Fact
	pos     []int
	keys    []string
	negKeys []string

	cur      int
	dirtyNow bool
}

// PathBuilder incrementally maintains the Section 3 string-automaton
// construction for a fixed (path query, database value) pair. Dirty
// relations rescan their fact lists and rebuild the adjacent join
// lists; everything else is kept. As with URBuilder, Build replays the
// deterministic assembly so the result is structurally identical to a
// fresh PathNFA, and each Build invalidates the previous one's
// automaton (shared target tuples live in the builder's arena).
type PathBuilder struct {
	q      *cq.Query
	d      *pdb.Database
	relIdx map[string]int // relation -> atom index

	atoms   []pathAtomCache
	joins   [][][]int32 // joins[i][k]: witness k of atom i -> joining fact indices of atom i+1, ascending
	joinsOK []bool

	keys    []string
	negKeys []string

	dirty map[string]bool
	built bool

	targets arena.Slab[int] // target tuples; reset at each assembly
}

// NewPathBuilder validates the query shape and returns a builder with
// every relation initially dirty.
func NewPathBuilder(q *cq.Query, d *pdb.Database) (*PathBuilder, error) {
	if !q.IsPath() {
		return nil, fmt.Errorf("reduction: query %q is not a path query", q)
	}
	if !q.SelfJoinFree() {
		return nil, fmt.Errorf("reduction: query %q has self-joins", q)
	}
	n := q.Len()
	b := &PathBuilder{
		q:       q,
		d:       d,
		relIdx:  make(map[string]int, n),
		atoms:   make([]pathAtomCache, n),
		joins:   make([][][]int32, n-1),
		joinsOK: make([]bool, n-1),
		dirty:   make(map[string]bool, n),
	}
	for i, atom := range q.Atoms {
		b.relIdx[atom.Relation] = i
		b.dirty[atom.Relation] = true
	}
	return b, nil
}

// NoteMutation records that the facts of relation rel changed since the
// last Build. The path construction caches no symbol IDs across builds,
// so deletions need no extra handling; the parameter mirrors
// URBuilder.NoteMutation.
func (b *PathBuilder) NoteMutation(rel string, _ bool) {
	b.dirty[rel] = true
}

// Build produces the Section 3 automaton at the database's current
// state, structurally identical to a from-scratch PathNFA on the same
// inputs.
func (b *PathBuilder) Build() (*nfa.NFA, error) {
	n := b.q.Len()
	aDirty := make([]bool, n)
	for i, atom := range b.q.Atoms {
		aDirty[i] = b.dirty[atom.Relation]
	}
	// The fresh path validates arity per atom before the empty-language
	// check, and only then rejects foreign facts; the sync pass tolerates
	// them so the error order matches.
	foreignErr := b.syncFacts()
	for i, atom := range b.q.Atoms {
		if !aDirty[i] {
			continue // validated when last scanned
		}
		for _, f := range b.atoms[i].facts {
			if f.Arity() != 2 {
				return nil, fmt.Errorf("reduction: fact %v of relation %s is not binary", f, atom.Relation)
			}
		}
	}
	empty := false
	for i := range b.atoms {
		if len(b.atoms[i].facts) == 0 {
			empty = true
			break
		}
	}
	for i := 0; i+1 < n; i++ {
		if aDirty[i] || aDirty[i+1] {
			b.joinsOK[i] = false
		}
	}
	if empty {
		// Some atom has no candidate witnesses: the language is empty.
		// Caches are synced; join rebuilds wait until they are needed.
		for r := range b.dirty {
			delete(b.dirty, r)
		}
		b.built = true
		m := nfa.New()
		q0 := m.AddState()
		m.SetInitial(q0)
		return m, nil
	}
	if foreignErr != nil {
		return nil, foreignErr
	}
	for i := 0; i+1 < n; i++ {
		if !b.joinsOK[i] {
			b.buildJoins(i)
			b.joinsOK[i] = true
		}
	}
	for r := range b.dirty {
		delete(b.dirty, r)
	}
	b.built = true
	return b.assemble(), nil
}

// syncFacts is the path analogue of URBuilder.syncFacts. Foreign facts
// are skipped and reported (not fatal here: the fresh path checks them
// only after the empty-language check).
func (b *PathBuilder) syncFacts() error {
	for i := range b.atoms {
		ac := &b.atoms[i]
		ac.cur = 0
		ac.dirtyNow = b.dirty[b.q.Atoms[i].Relation]
		if ac.dirtyNow {
			ac.facts = ac.facts[:0]
			ac.pos = ac.pos[:0]
			ac.keys = ac.keys[:0]
			ac.negKeys = ac.negKeys[:0]
		}
	}
	keys := make([]string, b.d.Size())
	negKeys := make([]string, b.d.Size())
	var foreignErr error
	for i, f := range b.d.Facts() {
		ai, ok := b.relIdx[f.Relation]
		if !ok {
			if foreignErr == nil {
				foreignErr = fmt.Errorf("reduction: database contains fact %v over a relation not in the query; project first", f)
			}
			continue
		}
		ac := &b.atoms[ai]
		j := ac.cur
		ac.cur++
		if ac.dirtyNow {
			k := f.Key()
			ac.facts = append(ac.facts, f)
			ac.pos = append(ac.pos, i)
			ac.keys = append(ac.keys, k)
			ac.negKeys = append(ac.negKeys, nfta.NegName(k))
		} else {
			if j >= len(ac.facts) {
				panic(fmt.Sprintf("reduction: relation %s changed without NoteMutation", f.Relation))
			}
			ac.pos[j] = i
		}
		keys[i] = ac.keys[j]
		negKeys[i] = ac.negKeys[j]
	}
	for i := range b.atoms {
		ac := &b.atoms[i]
		if !ac.dirtyNow && ac.cur != len(ac.facts) {
			panic(fmt.Sprintf("reduction: relation %s changed without NoteMutation", b.q.Atoms[i].Relation))
		}
	}
	b.keys = keys
	b.negKeys = negKeys
	return foreignErr
}

// buildJoins rebuilds the block-end join lists between atoms i and i+1:
// for each witness fact of atom i, the ascending indices of the
// atom-i+1 facts whose first argument equals the witness's second.
func (b *PathBuilder) buildJoins(i int) {
	next := b.atoms[i+1].facts
	groups := make(map[string][]int32)
	for k2, f2 := range next {
		groups[f2.Args[0]] = append(groups[f2.Args[0]], int32(k2))
	}
	cur := b.atoms[i].facts
	joins := make([][]int32, len(cur))
	for k, w := range cur {
		joins[k] = groups[w.Args[1]]
	}
	b.joins[i] = joins
}

// assemble replays the deterministic state numbering and transition
// emission of the fresh construction: states in [atom][position][witness]
// order, block-advance and join transitions with canonically numbered
// pos/neg symbols (2·index / 2·index+1), target tuples from the
// builder's arena.
func (b *PathBuilder) assemble() *nfa.NFA {
	n := b.q.Len()
	m := nfa.New()
	for i := range b.keys {
		m.Symbols.Intern(b.keys[i])    // 2i
		m.Symbols.Intern(b.negKeys[i]) // 2i+1
	}
	base := make([]int, n)
	for i := range b.atoms {
		ci := len(b.atoms[i].facts)
		base[i] = m.AddStates(ci * ci)
	}
	sEnd := m.AddState()
	m.SetFinal(sEnd)
	b.targets.Reset()
	for i := 0; i < n; i++ {
		ac := &b.atoms[i]
		ci := len(ac.facts)
		for k := 0; k < ci; k++ {
			for j := 0; j < ci; j++ {
				// state (i, j, k) = about to emit the presence bit of
				// fact j, witness k.
				s := base[i] + j*ci + k
				var tgts []int
				if j+1 < ci {
					tgts = b.targets.Append1(base[i] + (j+1)*ci + k)
				} else if i+1 < n {
					join := b.joins[i][k]
					tgts = b.targets.Alloc(len(join))
					for t, k2 := range join {
						// state (i+1, 0, k2): ascending in k2.
						tgts[t] = base[i+1] + int(k2)
					}
				} else {
					tgts = b.targets.Append1(sEnd)
				}
				if len(tgts) == 0 {
					continue // no joining witness: dead end
				}
				psym := ac.pos[j] << 1
				m.SetTargetsSym(s, psym, tgts)
				if j != k {
					m.SetTargetsSym(s, psym|1, tgts)
				}
			}
		}
	}
	c0 := len(b.atoms[0].facts)
	initial := make([]int, c0)
	for k := 0; k < c0; k++ {
		initial[k] = base[0] + k // state (0, 0, k)
	}
	m.SetInitial(initial...)
	return m
}
