package reduction

import (
	"fmt"

	"pqe/internal/nfta"
	"pqe/internal/pdb"
)

// DecodeTree inverts EncodeSubinstance: it reads the presence/absence
// literals off an accepted tree and reconstructs the subinstance mask
// (the surjectivity direction of the Proposition 1 bijection). Digit
// symbols introduced by multiplier gadgets are skipped, so the decoder
// works for trees of both the uniform-reliability automaton and the
// weighted (Theorem 1) automaton.
//
// Every database fact must occur exactly once, positively or negated;
// anything else means the tree is not in the automaton's language.
func (r *URReduction) DecodeTree(t *nfta.Tree) ([]bool, error) {
	mask := make([]bool, r.DB.Size())
	seen := make([]bool, r.DB.Size())
	var walk func(n *nfta.Tree) error
	walk = func(n *nfta.Tree) error {
		name := r.Symbols.Name(n.Sym)
		if name != nfta.Digit0 && name != nfta.Digit1 {
			factName := name
			negated := false
			if base, ok := nfta.IsNegName(name); ok {
				factName, negated = base, true
			}
			fact, err := pdb.ParseFact(factName)
			if err != nil {
				return fmt.Errorf("reduction: tree label %q is not a fact literal: %v", name, err)
			}
			idx := r.DB.IndexOf(fact)
			if idx < 0 {
				return fmt.Errorf("reduction: tree mentions unknown fact %v", fact)
			}
			if seen[idx] {
				return fmt.Errorf("reduction: fact %v mentioned twice", fact)
			}
			seen[idx] = true
			mask[idx] = !negated
		}
		for _, c := range n.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t); err != nil {
		return nil, err
	}
	for i, s := range seen {
		if !s {
			return nil, fmt.Errorf("reduction: fact %v missing from tree", r.DB.Fact(i))
		}
	}
	return mask, nil
}
