package reduction

import (
	"fmt"
	"sort"

	"pqe/internal/nfta"
	"pqe/internal/pdb"
)

// EncodeSubinstance builds the canonical labelled tree encoding a
// subinstance (selected by mask over the database's fact ordering),
// following the bijection in the proof of Proposition 1: contract every
// decomposition vertex that is not a ≺vertices-minimal covering vertex,
// then expand each remaining vertex into a path of literal nodes — one
// per fact of each atom it minimally covers, positive or negated
// according to the subinstance — attaching the children below the last
// node of the path.
//
// The encoding is independent of any witness choice; the reduction
// automaton accepts the tree iff the subinstance satisfies the query.
func (r *URReduction) EncodeSubinstance(mask []bool) (*nfta.Tree, error) {
	if len(mask) != r.DB.Size() {
		return nil, fmt.Errorf("reduction: mask length %d != |D| = %d", len(mask), r.DB.Size())
	}
	covering := make([]int, r.Query.Len())
	for m := range r.Query.Atoms {
		cv := r.Dec.CoveringVertex(m)
		if cv == nil {
			return nil, fmt.Errorf("reduction: atom %s has no covering vertex", r.Query.Atoms[m])
		}
		covering[m] = cv.ID
	}

	// literal interns the (possibly negated) fact symbol. A negation the
	// translation never produced (e.g. of a relation's only fact, which
	// is always a forced witness) simply has no transitions, so trees
	// containing it are rejected — exactly the non-satisfying
	// subinstances.
	literal := func(f pdb.Fact) int {
		name := f.Key()
		if !mask[r.DB.IndexOf(f)] {
			name = nfta.NegName(name)
		}
		return r.Symbols.Intern(name)
	}

	var buildForest func(pID int) ([]*nfta.Tree, error)
	nodes := r.Dec.Nodes()
	buildForest = func(pID int) ([]*nfta.Tree, error) {
		p := nodes[pID]
		var childForest []*nfta.Tree
		for _, c := range p.Children {
			sub, err := buildForest(c.ID)
			if err != nil {
				return nil, err
			}
			childForest = append(childForest, sub...)
		}
		// Literal path for the atoms minimally covered at p.
		var syms []int
		atoms := append([]int(nil), p.Xi...)
		sort.Ints(atoms)
		for _, m := range atoms {
			if covering[m] != pID {
				continue
			}
			for _, f := range r.DB.FactsOf(r.Query.Atoms[m].Relation) {
				syms = append(syms, literal(f))
			}
		}
		if len(syms) == 0 {
			// Contracted vertex: pass the children through.
			return childForest, nil
		}
		return []*nfta.Tree{nfta.Path(syms, childForest...)}, nil
	}

	forest, err := buildForest(r.Dec.Root.ID)
	if err != nil {
		return nil, err
	}
	if len(forest) != 1 {
		return nil, fmt.Errorf("reduction: encoding is a forest of %d trees; root is not a covering vertex", len(forest))
	}
	return forest[0], nil
}
