package reduction

import (
	"math/big"
	"math/rand"
	"testing"

	"pqe/internal/count"
	"pqe/internal/cq"
	"pqe/internal/exact"
	"pqe/internal/hypertree"
	"pqe/internal/nfa"
	"pqe/internal/nfta"
	"pqe/internal/pdb"
)

// randomGraphDB builds a database for a path query of length n: each
// relation Rᵢ gets a few random edges over a small constant pool.
func randomGraphDB(rng *rand.Rand, n, perRel, pool int) *pdb.Database {
	d := pdb.NewDatabase()
	consts := make([]string, pool)
	for i := range consts {
		consts[i] = string(rune('a' + i))
	}
	for i := 1; i <= n; i++ {
		rel := "R" + string(rune('0'+i))
		for j := 0; j < perRel; j++ {
			d.Add(pdb.NewFact(rel, consts[rng.Intn(pool)], consts[rng.Intn(pool)]))
		}
	}
	return d
}

func TestPathNFAExactBijection(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(3)
		q := cq.PathQuery("R", n)
		d := randomGraphDB(rng, n, 1+rng.Intn(3), 3)
		m, err := PathNFA(q, d)
		if err != nil {
			t.Fatal(err)
		}
		got := nfa.ExactCount(m, d.Size())
		want := exact.MustUR(q, d)
		if got.Cmp(want) != 0 {
			t.Errorf("trial %d: |L_%d(M)| = %v, UR = %v\nQ = %s\nD = %s",
				trial, d.Size(), got, want, q, d)
		}
	}
}

func TestPathNFAStringsDescribeSubinstances(t *testing.T) {
	// Every accepted string must decode to a satisfying subinstance, and
	// no two strings to the same one.
	q := cq.PathQuery("R", 2)
	d := pdb.FromFacts(
		pdb.NewFact("R1", "a", "b"),
		pdb.NewFact("R1", "a", "c"),
		pdb.NewFact("R2", "b", "d"),
		pdb.NewFact("R2", "c", "d"),
	)
	m, err := PathNFA(q, d)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	nfa.EnumerateWords(m, d.Size(), func(w []int) bool {
		mask := make([]bool, d.Size())
		for _, sym := range w {
			name := m.Symbols.Name(sym)
			if _, negated := nfta.IsNegName(name); negated {
				continue
			}
			f, err := pdb.ParseFact(name)
			if err != nil {
				t.Fatalf("bad literal %q: %v", name, err)
			}
			mask[d.IndexOf(f)] = true
		}
		key := ""
		for _, b := range mask {
			if b {
				key += "1"
			} else {
				key += "0"
			}
		}
		if seen[key] {
			t.Errorf("two accepted strings decode to subinstance %s", key)
		}
		seen[key] = true
		if !cq.Satisfies(d.Subinstance(mask), q) {
			t.Errorf("accepted string decodes to non-satisfying subinstance %s", key)
		}
		return true
	})
	if int64(len(seen)) != exact.MustUR(q, d).Int64() {
		t.Errorf("decoded %d subinstances, UR = %v", len(seen), exact.MustUR(q, d))
	}
}

func TestPathNFAEmptyRelation(t *testing.T) {
	q := cq.PathQuery("R", 2)
	d := pdb.FromFacts(pdb.NewFact("R1", "a", "b")) // R2 empty
	m, err := PathNFA(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if got := nfa.ExactCount(m, d.Size()); got.Sign() != 0 {
		t.Errorf("count = %v, want 0", got)
	}
}

func TestPathNFARejectsNonPath(t *testing.T) {
	if _, err := PathNFA(cq.MustParse("R(x,y), S(z,w)"), pdb.NewDatabase()); err == nil {
		t.Error("non-path query accepted")
	}
}

func TestPathNFARejectsForeignRelations(t *testing.T) {
	d := pdb.FromFacts(pdb.NewFact("R1", "a", "b"), pdb.NewFact("Z", "a", "b"))
	if _, err := PathNFA(cq.PathQuery("R", 1), d); err == nil {
		t.Error("foreign relation accepted")
	}
}

// buildURFor decomposes and reduces, failing the test on error.
func buildURFor(t *testing.T, q *cq.Query, d *pdb.Database) *URReduction {
	t.Helper()
	dec, err := hypertree.Decompose(q)
	if err != nil {
		t.Fatal(err)
	}
	ur, err := BuildUR(q, d, dec)
	if err != nil {
		t.Fatal(err)
	}
	return ur
}

func TestEncodeSubinstanceBijection(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	queries := []*cq.Query{
		cq.PathQuery("R", 2),
		cq.PathQuery("R", 3),
		cq.StarQuery("R", 2),
		cq.MustParse("R1(x,y), R2(y,z), R3(y,w)"), // branching join tree
	}
	for trial := 0; trial < 25; trial++ {
		q := queries[rng.Intn(len(queries))]
		d := randomGraphDB(rng, q.Len(), 1+rng.Intn(2), 3)
		ur := buildURFor(t, q, d)

		keys := make(map[string]bool)
		n := d.Size()
		mask := make([]bool, n)
		for m := 0; m < 1<<uint(n); m++ {
			for i := range mask {
				mask[i] = m&(1<<uint(i)) != 0
			}
			tree, err := ur.EncodeSubinstance(mask)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			if tree.Size() != ur.TreeSize {
				t.Fatalf("encoding size %d != %d", tree.Size(), ur.TreeSize)
			}
			k := tree.Key()
			if keys[k] {
				t.Fatalf("two subinstances share an encoding")
			}
			keys[k] = true
			want := cq.Satisfies(d.Subinstance(mask), q)
			if got := ur.Auto.Accepts(tree); got != want {
				t.Errorf("trial %d: accept=%v satisfies=%v\nQ=%s\nD=%s\nmask=%v",
					trial, got, want, q, d, mask)
			}
		}
	}
}

func TestBuildURCountMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	queries := []*cq.Query{
		cq.PathQuery("R", 2),
		cq.PathQuery("R", 3),
		cq.StarQuery("R", 3),
	}
	for trial := 0; trial < 12; trial++ {
		q := queries[rng.Intn(len(queries))]
		d := randomGraphDB(rng, q.Len(), 1+rng.Intn(2), 3)
		ur := buildURFor(t, q, d)
		want := exact.MustUR(q, d)
		got := count.Trees(ur.Auto, ur.TreeSize, count.Options{Epsilon: 0.1, Trials: 5, Seed: int64(trial + 1)})
		if want.Sign() == 0 {
			if !got.IsZero() {
				t.Errorf("trial %d: UR 0, estimate %v", trial, got)
			}
			continue
		}
		ratio := got.Float() / float64(want.Int64())
		if ratio < 0.75 || ratio > 1.25 {
			t.Errorf("trial %d: estimate %v vs UR %v (ratio %.3f)\nQ=%s D=%s",
				trial, got, want, ratio, q, d)
		}
	}
}

func TestBuildURCyclicQuery(t *testing.T) {
	// Triangle query through a width-2 decomposition.
	q := cq.CycleQuery("C", 3)
	d := pdb.FromFacts(
		pdb.NewFact("C1", "a", "b"),
		pdb.NewFact("C2", "b", "c"),
		pdb.NewFact("C3", "c", "a"),
		pdb.NewFact("C1", "a", "c"),
	)
	ur := buildURFor(t, q, d)
	want := exact.MustUR(q, d)
	got := count.Trees(ur.Auto, ur.TreeSize, count.Options{Epsilon: 0.1, Trials: 5, Seed: 2})
	ratio := got.Float() / float64(want.Int64())
	if ratio < 0.75 || ratio > 1.25 {
		t.Errorf("estimate %v vs UR %v (ratio %.3f)", got, want, ratio)
	}
}

func TestBuildURRejectsSelfJoins(t *testing.T) {
	q := cq.MustParse("R(x,y), R(y,z)")
	dec := &hypertree.Decomposition{}
	_ = dec
	if _, err := hypertree.Decompose(q); err != nil {
		t.Fatalf("decompose: %v", err)
	}
	d, _ := hypertree.Decompose(q)
	if _, err := BuildUR(q, pdb.NewDatabase(), d); err == nil {
		t.Error("self-join query accepted")
	}
}

func TestBuildPQEMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	queries := []*cq.Query{
		cq.PathQuery("R", 2),
		cq.StarQuery("R", 2),
	}
	for trial := 0; trial < 10; trial++ {
		q := queries[rng.Intn(len(queries))]
		d := randomGraphDB(rng, q.Len(), 1+rng.Intn(2), 3)
		h := pdb.Empty()
		for _, f := range d.Facts() {
			den := int64(1 + rng.Intn(4))
			num := int64(rng.Intn(int(den) + 1))
			h.Add(f, pdb.NewProb(num, den))
		}
		dec, err := hypertree.Decompose(q)
		if err != nil {
			t.Fatal(err)
		}
		red, err := BuildPQE(q, h, dec)
		if err != nil {
			t.Fatal(err)
		}
		want := exact.MustPQE(q, h)
		got := count.Trees(red.Auto, red.TreeSize, count.Options{Epsilon: 0.1, Trials: 5, Seed: int64(trial + 1)})
		den := new(big.Float).SetInt(red.DenProduct)
		denF, _ := den.Float64()
		gotProb := got.Float() / denF
		wantF, _ := want.Float64()
		if wantF == 0 {
			if gotProb != 0 {
				t.Errorf("trial %d: exact 0, estimate %v", trial, gotProb)
			}
			continue
		}
		ratio := gotProb / wantF
		if ratio < 0.75 || ratio > 1.25 {
			t.Errorf("trial %d: estimate %v vs exact %v (ratio %.3f)\nQ=%s\nH=%s",
				trial, gotProb, wantF, ratio, q, h)
		}
	}
}

func TestBuildPQEUniformHalfReducesToUR(t *testing.T) {
	// With π ≡ 1/2 every multiplier is 1 and no digits are added: the
	// weighted automaton must count exactly UR.
	q := cq.PathQuery("R", 2)
	d := pdb.FromFacts(
		pdb.NewFact("R1", "a", "b"),
		pdb.NewFact("R2", "b", "c"),
		pdb.NewFact("R2", "b", "d"),
	)
	h := pdb.Uniform(d)
	dec, err := hypertree.Decompose(q)
	if err != nil {
		t.Fatal(err)
	}
	red, err := BuildPQE(q, h, dec)
	if err != nil {
		t.Fatal(err)
	}
	if red.TreeSize != d.Size() {
		t.Errorf("TreeSize = %d, want %d (no digit nodes for π ≡ ½)", red.TreeSize, d.Size())
	}
	if red.DenProduct.Int64() != 8 {
		t.Errorf("DenProduct = %v", red.DenProduct)
	}
	got := count.Trees(red.Auto, red.TreeSize, count.Options{Epsilon: 0.1, Trials: 5, Seed: 4})
	want := exact.MustUR(q, d)
	ratio := got.Float() / float64(want.Int64())
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("estimate %v vs UR %v", got, want)
	}
}

func TestBuildPQEExtremeProbabilities(t *testing.T) {
	// π = 1 forces presence; π = 0 forbids it.
	q := cq.PathQuery("R", 2)
	h := pdb.Empty()
	h.Add(pdb.NewFact("R1", "a", "b"), pdb.ProbOne)
	h.Add(pdb.NewFact("R2", "b", "c"), pdb.NewProb(1, 2))
	h.Add(pdb.NewFact("R2", "b", "d"), pdb.NewProb(0, 1))
	dec, err := hypertree.Decompose(q)
	if err != nil {
		t.Fatal(err)
	}
	red, err := BuildPQE(q, h, dec)
	if err != nil {
		t.Fatal(err)
	}
	want := exact.MustPQE(q, h) // = 1/2
	if want.Cmp(big.NewRat(1, 2)) != 0 {
		t.Fatalf("oracle = %v, want 1/2", want)
	}
	got := count.Trees(red.Auto, red.TreeSize, count.Options{Epsilon: 0.1, Trials: 5, Seed: 6})
	denF, _ := new(big.Float).SetInt(red.DenProduct).Float64()
	gotProb := got.Float() / denF
	if gotProb < 0.4 || gotProb > 0.6 {
		t.Errorf("estimate %v, want ≈ 0.5", gotProb)
	}
}

func TestBuildPathPQEMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(2)
		q := cq.PathQuery("R", n)
		d := randomGraphDB(rng, n, 1+rng.Intn(2), 3)
		h := pdb.Empty()
		for _, f := range d.Facts() {
			den := int64(1 + rng.Intn(4))
			num := int64(rng.Intn(int(den) + 1))
			h.Add(f, pdb.NewProb(num, den))
		}
		red, err := BuildPathPQE(q, h)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := exact.MustPQE(q, h).Float64()
		got := nfa.Count(red.Auto, red.WordSize, nfa.CountOptions{Epsilon: 0.1, Trials: 5, Seed: int64(trial + 1)})
		denF, _ := new(big.Float).SetInt(red.DenProduct).Float64()
		gotProb := got.Float() / denF
		if want == 0 {
			if gotProb != 0 {
				t.Errorf("trial %d: exact 0, estimate %v", trial, gotProb)
			}
			continue
		}
		ratio := gotProb / want
		if ratio < 0.75 || ratio > 1.25 {
			t.Errorf("trial %d: estimate %v vs exact %v (ratio %.3f)\nQ=%s\nH=%s",
				trial, gotProb, want, ratio, q, h)
		}
	}
}

func TestBuildPathPQEExactCountIsWeightedSum(t *testing.T) {
	// With small weights the accepted-word count equals the weighted
	// subinstance sum exactly (no sampling involved in ExactCount).
	q := cq.PathQuery("R", 2)
	h := pdb.Empty()
	h.Add(pdb.NewFact("R1", "a", "b"), pdb.NewProb(2, 3))
	h.Add(pdb.NewFact("R2", "b", "c"), pdb.NewProb(1, 2))
	h.Add(pdb.NewFact("R2", "b", "d"), pdb.NewProb(3, 4))
	red, err := BuildPathPQE(q, h)
	if err != nil {
		t.Fatal(err)
	}
	count := nfa.ExactCount(red.Auto, red.WordSize)
	// Pr = count / denProduct must equal the brute-force value exactly.
	got := new(big.Rat).SetFrac(count, red.DenProduct)
	want := exact.MustPQE(q, h)
	if got.Cmp(want) != 0 {
		t.Errorf("count/den = %v, want %v", got, want)
	}
}

func TestBuildPQEExactCountIdentity(t *testing.T) {
	// The Theorem 1 identity, checked exactly (no sampling):
	// |L_k(T')| / ∏dᵢ = Pr_H(Q), with the count taken by the
	// determinization oracle.
	rng := rand.New(rand.NewSource(101))
	queries := []*cq.Query{
		cq.PathQuery("R", 2),
		cq.StarQuery("S", 2),
	}
	consts := []string{"a", "b"}
	for trial := 0; trial < 6; trial++ {
		q := queries[trial%len(queries)]
		h := pdb.Empty()
		for _, rel := range q.Relations() {
			for i := 0; i < 1+rng.Intn(2); i++ {
				den := int64(1 + rng.Intn(4))
				num := int64(rng.Intn(int(den) + 1))
				h.Add(pdb.NewFact(rel, consts[rng.Intn(2)], consts[rng.Intn(2)]), pdb.NewProb(num, den))
			}
		}
		dec, err := hypertree.Decompose(q)
		if err != nil {
			t.Fatal(err)
		}
		red, err := BuildPQE(q, h, dec)
		if err != nil {
			t.Fatal(err)
		}
		count := nfta.ExactCountDet(red.Auto, red.TreeSize)
		got := new(big.Rat).SetFrac(count, red.DenProduct)
		want := exact.MustPQE(q, h)
		if got.Cmp(want) != 0 {
			t.Errorf("trial %d: count/den = %v, want %v\nQ=%s\nH=%s", trial, got, want, q, h)
		}
	}
}
