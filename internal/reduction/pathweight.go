package reduction

import (
	"math/big"

	"pqe/internal/cq"
	"pqe/internal/nfa"
	"pqe/internal/pdb"
)

// PathPQEReduction is the string-automaton analogue of PQEReduction for
// self-join-free path queries: the Section 3 NFA with the Section 5.1
// multiplier gadget applied to every fact literal (footnote 2 of the
// paper observes the gadget is a string-automaton construction). The
// number of accepted words of length WordSize equals
// Σ_{D' ⊨ Q} ∏_{f∈D'} wᵢ ∏_{f∉D'} (dᵢ−wᵢ), so
// Pr_H(Q) = |L_WordSize(Auto)| / DenProduct.
//
// For path queries this pipeline avoids tree machinery entirely and is
// the basis of the E10 ablation (string vs tree pipeline).
type PathPQEReduction struct {
	Query      *cq.Query
	H          *pdb.Probabilistic
	Base       *nfa.NFA // the unweighted Section 3 automaton
	Auto       *nfa.NFA // with multiplier gadgets expanded
	WordSize   int      // |D| + Σᵢ Kᵢ
	DenProduct *big.Int
}

// BuildPathPQE runs the path-query PQE reduction for a probabilistic
// database defined only over the query's (binary) relations.
func BuildPathPQE(q *cq.Query, h *pdb.Probabilistic) (*PathPQEReduction, error) {
	base, err := PathNFA(q, h.DB())
	if err != nil {
		return nil, err
	}
	return WeightPathNFA(q, h, base)
}

// WeightPathNFA attaches the probability multiplier gadgets to an
// already-built Section 3 base automaton. The base may have been built
// over a different database instance as long as it holds the same facts
// (transition symbols name facts, which are looked up by value), which
// is what lets a cached base be re-weighted when only probabilities
// change.
func WeightPathNFA(q *cq.Query, h *pdb.Probabilistic, base *nfa.NFA) (*PathPQEReduction, error) {
	d := h.DB()
	budgets := make([]int, d.Size())
	posMult := make([]*big.Int, d.Size())
	negMult := make([]*big.Int, d.Size())
	denProduct := big.NewInt(1)
	extra := 0
	for i, f := range d.Facts() {
		p := h.Prob(f)
		posMult[i] = p.Num()
		negMult[i] = new(big.Int).Sub(p.Den(), p.Num())
		budgets[i] = maxInt(digitsForBig(posMult[i]), digitsForBig(negMult[i]))
		denProduct.Mul(denProduct, p.Den())
		extra += budgets[i]
	}

	mult := nfa.NewMultNFA(base.Symbols)
	for i := 0; i < base.NumStates(); i++ {
		mult.AddState()
	}
	mult.SetInitial(base.Initial()...)
	mult.SetFinal(base.Finals()...)
	resolved := resolveFactSymbols(base.Symbols, d)
	var buildErr error
	base.EachTransition(func(from, sym, to int) {
		if buildErr != nil {
			return
		}
		r := resolved[sym]
		if r < 0 {
			buildErr = factSymbolError(base.Symbols, sym)
			return
		}
		idx := int(r >> 1)
		w := posMult[idx]
		if r&1 == 1 {
			w = negMult[idx]
		}
		if err := mult.AddTransition(from, sym, w, budgets[idx], to); err != nil {
			buildErr = err
		}
	})
	if buildErr != nil {
		return nil, buildErr
	}
	return &PathPQEReduction{
		Query:      q,
		H:          h,
		Base:       base,
		Auto:       mult.Translate().Trim(),
		WordSize:   d.Size() + extra,
		DenProduct: denProduct,
	}, nil
}

// digitsForBig mirrors nfta.DigitsFor for the string pipeline.
func digitsForBig(mult *big.Int) int {
	if mult.Cmp(big.NewInt(1)) <= 0 {
		return 0
	}
	return new(big.Int).Sub(mult, big.NewInt(1)).BitLen()
}
