// Package reduction implements the paper's constructions from queries
// and databases to automata:
//
//   - Section 3: self-join-free path query + binary database → NFA whose
//     accepted strings of length |D| are in bijection with the
//     satisfying subinstances (Theorem 2's PathEstimate);
//   - Proposition 1: self-join-free bounded-hypertree-width query +
//     database → augmented NFTA whose accepted trees of size |D| are in
//     bijection with the satisfying subinstances (Theorem 3's
//     UREstimate);
//   - Section 5.2: attaching probability multipliers to the translated
//     NFTA so the number of accepted trees is proportional to each
//     subinstance's weight (Theorem 1's PQEEstimate).
package reduction

import (
	"pqe/internal/cq"
	"pqe/internal/nfa"
	"pqe/internal/pdb"
)

// PathNFA builds the NFA M of Section 3 for a self-join-free path query
// Q = R₁(x₁,x₂),…,R_n(x_n,x_{n+1}) over a database D containing only
// binary facts of the relations R₁,…,R_n. Accepted strings all have
// length exactly |D|; they list, in a fixed order (atoms in query order,
// facts in the database's per-relation order ≺ᵢ), one literal Rᵢ(a,b) or
// ¬Rᵢ(a,b) per fact, and the selected positive literals form a
// subinstance satisfying Q. Strings are in bijection with satisfying
// subinstances of D.
//
// States are triples [atom i, fact position j, witness k]: the automaton
// is about to emit the presence bit of the j-th Rᵢ-fact, having
// committed to the k-th Rᵢ-fact as the witness for atom i. The witness
// position must emit a positive literal; all other positions emit
// either. At the end of a relation block the automaton
// non-deterministically commits to a joining witness for the next atom.
//
// It is a from-scratch run of the incremental PathBuilder (every
// relation dirty); callers that re-estimate after database deltas should
// hold a PathBuilder instead and pay only for the dirty relation blocks.
func PathNFA(q *cq.Query, d *pdb.Database) (*nfa.NFA, error) {
	b, err := NewPathBuilder(q, d)
	if err != nil {
		return nil, err
	}
	return b.Build()
}
