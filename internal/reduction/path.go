// Package reduction implements the paper's constructions from queries
// and databases to automata:
//
//   - Section 3: self-join-free path query + binary database → NFA whose
//     accepted strings of length |D| are in bijection with the
//     satisfying subinstances (Theorem 2's PathEstimate);
//   - Proposition 1: self-join-free bounded-hypertree-width query +
//     database → augmented NFTA whose accepted trees of size |D| are in
//     bijection with the satisfying subinstances (Theorem 3's
//     UREstimate);
//   - Section 5.2: attaching probability multipliers to the translated
//     NFTA so the number of accepted trees is proportional to each
//     subinstance's weight (Theorem 1's PQEEstimate).
package reduction

import (
	"fmt"

	"pqe/internal/cq"
	"pqe/internal/nfa"
	"pqe/internal/nfta"
	"pqe/internal/pdb"
)

// PathNFA builds the NFA M of Section 3 for a self-join-free path query
// Q = R₁(x₁,x₂),…,R_n(x_n,x_{n+1}) over a database D containing only
// binary facts of the relations R₁,…,R_n. Accepted strings all have
// length exactly |D|; they list, in a fixed order (atoms in query order,
// facts in the database's per-relation order ≺ᵢ), one literal Rᵢ(a,b) or
// ¬Rᵢ(a,b) per fact, and the selected positive literals form a
// subinstance satisfying Q. Strings are in bijection with satisfying
// subinstances of D.
//
// States are triples [atom i, fact position j, witness k]: the automaton
// is about to emit the presence bit of the j-th Rᵢ-fact, having
// committed to the k-th Rᵢ-fact as the witness for atom i. The witness
// position must emit a positive literal; all other positions emit
// either. At the end of a relation block the automaton
// non-deterministically commits to a joining witness for the next atom.
func PathNFA(q *cq.Query, d *pdb.Database) (*nfa.NFA, error) {
	if !q.IsPath() {
		return nil, fmt.Errorf("reduction: query %q is not a path query", q)
	}
	if !q.SelfJoinFree() {
		return nil, fmt.Errorf("reduction: query %q has self-joins", q)
	}
	n := q.Len()
	facts := make([][]pdb.Fact, n) // facts[i] = ordered Rᵢ₊₁-facts
	for i, atom := range q.Atoms {
		fs := d.FactsOf(atom.Relation)
		for _, f := range fs {
			if f.Arity() != 2 {
				return nil, fmt.Errorf("reduction: fact %v of relation %s is not binary", f, atom.Relation)
			}
		}
		facts[i] = fs
	}
	for i := range facts {
		if len(facts[i]) == 0 {
			// Some atom has no candidate witnesses: the language is
			// empty. Build a trivially empty automaton.
			m := nfa.New()
			q0 := m.AddState()
			m.SetInitial(q0)
			return m, nil
		}
	}
	for _, f := range d.Facts() {
		found := false
		for _, atom := range q.Atoms {
			if atom.Relation == f.Relation {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("reduction: database contains fact %v over a relation not in the query; project first", f)
		}
	}

	m := nfa.New()
	// state[i][j][k]: atom i, fact position j ∈ [0, len(facts[i])),
	// witness k.
	state := make([][][]int, n)
	for i := range state {
		ci := len(facts[i])
		state[i] = make([][]int, ci)
		for j := range state[i] {
			state[i][j] = make([]int, ci)
			for k := range state[i][j] {
				state[i][j][k] = m.AddState()
			}
		}
	}
	sEnd := m.AddState()
	m.SetFinal(sEnd)

	pos := func(f pdb.Fact) int { return m.Symbols.Intern(f.Key()) }
	neg := func(f pdb.Fact) int { return m.Symbols.Intern(nfta.NegName(f.Key())) }

	for i := 0; i < n; i++ {
		ci := len(facts[i])
		for k := 0; k < ci; k++ {
			witness := facts[i][k]
			for j := 0; j < ci; j++ {
				f := facts[i][j]
				// Successor states after emitting fact j's literal.
				var nexts []int
				if j+1 < ci {
					nexts = []int{state[i][j+1][k]}
				} else if i+1 < n {
					// Block end: commit to a joining witness for atom
					// i+1: facts R_{i+2}... whose first argument equals
					// the witness's second argument.
					for k2, f2 := range facts[i+1] {
						if f2.Args[0] == witness.Args[1] {
							nexts = append(nexts, state[i+1][0][k2])
						}
					}
				} else {
					nexts = []int{sEnd}
				}
				for _, nx := range nexts {
					m.AddTransitionSym(state[i][j][k], pos(f), nx)
					if j != k {
						m.AddTransitionSym(state[i][j][k], neg(f), nx)
					}
				}
			}
		}
	}
	// Initial states: first fact position of atom 1, any witness.
	for k := range facts[0] {
		m.SetInitial(state[0][0][k])
	}
	return m, nil
}
