package reduction

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"pqe/internal/cq"
	"pqe/internal/hypertree"
	"pqe/internal/nfa"
	"pqe/internal/nfta"
	"pqe/internal/pdb"
)

// renderNFTA serializes the full structure of an NFTA — state count,
// initial state, numeric symbol IDs, transition order — so equality of
// renders is structural identity, the invariant the estimators' RNG
// site derivation depends on.
func renderNFTA(a *nfta.NFTA) string {
	var b strings.Builder
	fmt.Fprintf(&b, "states=%d init=%d\n", a.NumStates(), a.Initial())
	for _, tr := range a.Transitions() {
		fmt.Fprintf(&b, "%d %d %v\n", tr.From, tr.Sym, tr.Children)
	}
	return b.String()
}

func renderUR(ur *URReduction) string {
	return strings.Join(ur.Symbols.Names(), "|") + "\n" +
		renderNFTA(ur.Auto) +
		fmt.Sprintf("tree=%d\n", ur.TreeSize)
}

// renderNFA serializes an NFA structurally. Transition lines are sorted
// because EachTransition's order is not part of the structure (targets
// live in per-state maps).
func renderNFA(m *nfa.NFA) string {
	var lines []string
	m.EachTransition(func(from, sym, to int) {
		lines = append(lines, fmt.Sprintf("%06d %06d %06d", from, sym, to))
	})
	sort.Strings(lines)
	return fmt.Sprintf("states=%d init=%v finals=%v syms=%s\n%s",
		m.NumStates(), m.Initial(), m.Finals(),
		strings.Join(m.Symbols.Names(), "|"), strings.Join(lines, "\n"))
}

// flipFact inserts the fact if absent, removes it if present, and
// reports the mutation to the builder via note.
func flipFact(d *pdb.Database, f pdb.Fact, note func(rel string, withDelete bool)) {
	if d.Contains(f) {
		d.Remove(f)
		note(f.Relation, true)
	} else {
		d.Add(f)
		note(f.Relation, false)
	}
}

// TestURBuilderMatchesFresh drives a URBuilder through randomized
// insert/delete sequences and checks after every build that the
// incrementally maintained reduction is structurally identical to a
// from-scratch build at the same database state.
func TestURBuilderMatchesFresh(t *testing.T) {
	queries := []*cq.Query{
		cq.PathQuery("R", 2),
		cq.StarQuery("R", 3),
		cq.MustParse("R1(x,y), R2(y,z), R3(y,w)"),
	}
	consts := []string{"a", "b", "c"}
	for qi, q := range queries {
		rng := rand.New(rand.NewSource(int64(100 + qi)))
		rels := make([]string, 0, q.Len())
		for r := range q.RelationSet() {
			rels = append(rels, r)
		}
		sort.Strings(rels)

		d := pdb.NewDatabase()
		for _, r := range rels {
			for j := 0; j < 3; j++ {
				d.Add(pdb.NewFact(r, consts[rng.Intn(len(consts))], consts[rng.Intn(len(consts))]))
			}
		}
		dec, err := hypertree.Decompose(q)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		b, err := NewURBuilder(q, d, dec)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		check := func(step int) {
			t.Helper()
			inc, err := b.Build(nil)
			if err != nil {
				t.Fatalf("query %d step %d: incremental build: %v", qi, step, err)
			}
			freshDec, err := hypertree.Decompose(q)
			if err != nil {
				t.Fatalf("query %d step %d: %v", qi, step, err)
			}
			fresh, err := BuildUR(q, d, freshDec)
			if err != nil {
				t.Fatalf("query %d step %d: fresh build: %v", qi, step, err)
			}
			if gi, gf := renderUR(inc), renderUR(fresh); gi != gf {
				t.Fatalf("query %d step %d: incremental reduction diverged from fresh\nD = %s\nincremental:\n%s\nfresh:\n%s",
					qi, step, d, gi, gf)
			}
		}
		check(-1)
		for step := 0; step < 30; step++ {
			f := pdb.NewFact(rels[rng.Intn(len(rels))],
				consts[rng.Intn(len(consts))], consts[rng.Intn(len(consts))])
			flipFact(d, f, b.NoteMutation)
			// Occasionally batch two mutations per build.
			if rng.Intn(3) == 0 {
				g := pdb.NewFact(rels[rng.Intn(len(rels))],
					consts[rng.Intn(len(consts))], consts[rng.Intn(len(consts))])
				flipFact(d, g, b.NoteMutation)
			}
			check(step)
		}
	}
}

// TestURBuilderRemapsCleanLabels pins the delete-renumbering path: a
// deletion in R1 shifts the projected positions of every R2 fact, so
// the R2 vertex — clean, never re-enumerated — must have its cached
// label symbols remapped, not rebuilt.
func TestURBuilderRemapsCleanLabels(t *testing.T) {
	q := cq.MustParse("R1(x,y), R2(y,z)")
	d := pdb.FromFacts(
		pdb.NewFact("R1", "a", "b"),
		pdb.NewFact("R1", "a", "c"),
		pdb.NewFact("R2", "b", "d"),
		pdb.NewFact("R2", "c", "d"),
	)
	dec, err := hypertree.Decompose(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewURBuilder(q, d, dec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(nil); err != nil {
		t.Fatal(err)
	}
	// Delete the first R1 fact: every R2 position shifts down by one.
	d.Remove(pdb.NewFact("R1", "a", "b"))
	b.NoteMutation("R1", true)
	inc, err := b.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	freshDec, err := hypertree.Decompose(q)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := BuildUR(q, d, freshDec)
	if err != nil {
		t.Fatal(err)
	}
	if gi, gf := renderUR(inc), renderUR(fresh); gi != gf {
		t.Fatalf("remapped reduction diverged from fresh\nincremental:\n%s\nfresh:\n%s", gi, gf)
	}
}

// TestURBuilderReusesCleanVertices is the white-box incrementality
// check: a vertex whose bag does not touch the mutated relation must
// keep its enumerated state list (same backing objects), not
// re-enumerate it.
func TestURBuilderReusesCleanVertices(t *testing.T) {
	q := cq.MustParse("R1(x,y), R2(y,z)")
	d := pdb.FromFacts(
		pdb.NewFact("R1", "a", "b"),
		pdb.NewFact("R2", "b", "c"),
	)
	dec, err := hypertree.Decompose(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewURBuilder(q, d, dec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(nil); err != nil {
		t.Fatal(err)
	}
	clean := -1
	for _, p := range b.dec.Nodes() {
		onlyR1 := len(p.Xi) > 0
		for _, m := range p.Xi {
			if q.Atoms[m].Relation != "R1" {
				onlyR1 = false
			}
		}
		if onlyR1 && len(b.vertices[p.ID].states) > 0 {
			clean = p.ID
			break
		}
	}
	if clean < 0 {
		t.Fatal("no R1-only vertex in the decomposition")
	}
	before := b.vertices[clean].states[0]

	d.Add(pdb.NewFact("R2", "b", "d"))
	b.NoteMutation("R2", false)
	if _, err := b.Build(nil); err != nil {
		t.Fatal(err)
	}
	if b.vertices[clean].states[0] != before {
		t.Fatal("clean vertex was re-enumerated on a mutation of an unrelated relation")
	}
}

// TestPathBuilderMatchesFresh is the string-automaton analogue of
// TestURBuilderMatchesFresh, including transitions through the
// empty-relation (trivial automaton) regime.
func TestPathBuilderMatchesFresh(t *testing.T) {
	consts := []string{"a", "b", "c"}
	for _, n := range []int{2, 3} {
		q := cq.PathQuery("R", n)
		rng := rand.New(rand.NewSource(int64(200 + n)))
		rels := make([]string, n)
		for i := range rels {
			rels[i] = fmt.Sprintf("R%d", i+1)
		}
		d := pdb.NewDatabase()
		for _, r := range rels {
			for j := 0; j < 2; j++ {
				d.Add(pdb.NewFact(r, consts[rng.Intn(len(consts))], consts[rng.Intn(len(consts))]))
			}
		}
		b, err := NewPathBuilder(q, d)
		if err != nil {
			t.Fatal(err)
		}
		check := func(step int) {
			t.Helper()
			inc, err := b.Build()
			if err != nil {
				t.Fatalf("n=%d step %d: incremental build: %v", n, step, err)
			}
			fresh, err := PathNFA(q, d)
			if err != nil {
				t.Fatalf("n=%d step %d: fresh build: %v", n, step, err)
			}
			if gi, gf := renderNFA(inc), renderNFA(fresh); gi != gf {
				t.Fatalf("n=%d step %d: incremental NFA diverged from fresh\nD = %s\nincremental:\n%s\nfresh:\n%s",
					n, step, d, gi, gf)
			}
		}
		check(-1)
		for step := 0; step < 40; step++ {
			f := pdb.NewFact(rels[rng.Intn(n)],
				consts[rng.Intn(len(consts))], consts[rng.Intn(len(consts))])
			flipFact(d, f, b.NoteMutation)
			check(step)
		}
		// Force the empty-relation regime and the way back out.
		for _, f := range append([]pdb.Fact(nil), d.FactsOf(rels[n-1])...) {
			d.Remove(f)
			b.NoteMutation(rels[n-1], true)
		}
		check(1000)
		d.Add(pdb.NewFact(rels[n-1], "a", "b"))
		b.NoteMutation(rels[n-1], false)
		check(1001)
	}
}

// TestPathBuilderReusesCleanJoins checks that a mutation in the last
// relation leaves the join lists of earlier block boundaries untouched
// (same backing slices).
func TestPathBuilderReusesCleanJoins(t *testing.T) {
	q := cq.PathQuery("R", 3)
	d := pdb.FromFacts(
		pdb.NewFact("R1", "a", "b"),
		pdb.NewFact("R2", "b", "c"),
		pdb.NewFact("R2", "b", "d"),
		pdb.NewFact("R3", "c", "e"),
	)
	b, err := NewPathBuilder(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	before := &b.joins[0][0]

	d.Add(pdb.NewFact("R3", "d", "e"))
	b.NoteMutation("R3", false)
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	if &b.joins[0][0] != before {
		t.Fatal("clean join list was rebuilt on a mutation of an unrelated relation")
	}
}
