package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Snapshot is a point-in-time copy of a registry's metrics, the unit
// the JSON and Prometheus encoders consume.
type Snapshot struct {
	Counters        map[string]int64              `json:"counters,omitempty"`
	Gauges          map[string]float64            `json:"gauges,omitempty"`
	Histograms      map[string]HistSnapshot       `json:"histograms,omitempty"`
	LabeledCounters map[string]LabeledCounterSnap `json:"labeled_counters,omitempty"`
	LabeledHists    map[string]LabeledHistSnap    `json:"labeled_histograms,omitempty"`
	// Help carries the registered HELP strings into the Prometheus
	// encoder; it is not part of the JSON document.
	Help map[string]string `json:"-"`
}

// HistSnapshot is one histogram's state: per-bucket counts (the last
// slot is the +Inf overflow bucket), plus sum and count.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// LabeledCounterSnap is one labeled counter family: the label names and
// every live series, sorted by label values.
type LabeledCounterSnap struct {
	Labels []string            `json:"labels"`
	Series []CounterSeriesSnap `json:"series"`
}

// CounterSeriesSnap is one series of a labeled counter family.
type CounterSeriesSnap struct {
	Values []string `json:"values"`
	Value  int64    `json:"value"`
}

// LabeledHistSnap is one labeled histogram family: the label names and
// every live series, sorted by label values.
type LabeledHistSnap struct {
	Labels []string         `json:"labels"`
	Series []HistSeriesSnap `json:"series"`
}

// HistSeriesSnap is one series of a labeled histogram family.
type HistSeriesSnap struct {
	Values []string     `json:"values"`
	Hist   HistSnapshot `json:"hist"`
}

// Snapshot copies the registry's current metric values. An empty (or
// nil) registry yields a zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = snapHist(h)
		}
	}
	if len(r.counterVecs) > 0 {
		s.LabeledCounters = make(map[string]LabeledCounterSnap, len(r.counterVecs))
		for name, v := range r.counterVecs {
			snap := LabeledCounterSnap{Labels: append([]string(nil), v.labels...)}
			v.mu.RLock()
			for _, ch := range v.series {
				snap.Series = append(snap.Series, CounterSeriesSnap{
					Values: append([]string(nil), ch.values...),
					Value:  ch.c.Value(),
				})
			}
			v.mu.RUnlock()
			sort.Slice(snap.Series, func(i, j int) bool {
				return lessValues(snap.Series[i].Values, snap.Series[j].Values)
			})
			s.LabeledCounters[name] = snap
		}
	}
	if len(r.histVecs) > 0 {
		s.LabeledHists = make(map[string]LabeledHistSnap, len(r.histVecs))
		for name, v := range r.histVecs {
			snap := LabeledHistSnap{Labels: append([]string(nil), v.labels...)}
			v.mu.RLock()
			for _, ch := range v.series {
				snap.Series = append(snap.Series, HistSeriesSnap{
					Values: append([]string(nil), ch.values...),
					Hist:   snapHist(ch.h),
				})
			}
			v.mu.RUnlock()
			sort.Slice(snap.Series, func(i, j int) bool {
				return lessValues(snap.Series[i].Values, snap.Series[j].Values)
			})
			s.LabeledHists[name] = snap
		}
	}
	if len(r.help) > 0 {
		s.Help = make(map[string]string, len(r.help))
		for name, h := range r.help {
			s.Help[name] = h
		}
	}
	return s
}

func snapHist(h *Histogram) HistSnapshot {
	hs := HistSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Sum:    h.Sum(),
		Count:  h.Count(),
	}
	for i := range h.counts {
		hs.Counts[i] = h.counts[i].Load()
	}
	return hs
}

// lessValues orders label-value tuples lexicographically so snapshot
// series (and the Prometheus exposition built from them) are
// deterministic regardless of map iteration order.
func lessValues(a, b []string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// WriteJSON renders the snapshot as indented JSON with sorted keys
// (encoding/json sorts string map keys), so output is deterministic for
// a fixed snapshot.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format: one block per metric family — `# HELP` when
// registered, `# TYPE`, then the samples — with families sorted
// globally by name, label pairs sorted by label name, and label values
// escaped per the exposition spec. Output is byte-deterministic for a
// fixed snapshot.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	type family struct {
		name string // original registry name (HELP lookup key)
		typ  string
		emit func(io.Writer, string) error
	}
	fams := make([]family, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms)+len(s.LabeledCounters)+len(s.LabeledHists))
	for name, v := range s.Counters {
		v := v
		fams = append(fams, family{name, "counter", func(w io.Writer, pn string) error {
			_, err := fmt.Fprintf(w, "%s %d\n", pn, v)
			return err
		}})
	}
	for name, v := range s.Gauges {
		v := v
		fams = append(fams, family{name, "gauge", func(w io.Writer, pn string) error {
			_, err := fmt.Fprintf(w, "%s %s\n", pn, promFloat(v))
			return err
		}})
	}
	for name, h := range s.Histograms {
		h := h
		fams = append(fams, family{name, "histogram", func(w io.Writer, pn string) error {
			return writePromHist(w, pn, "", h)
		}})
	}
	for name, lc := range s.LabeledCounters {
		lc := lc
		fams = append(fams, family{name, "counter", func(w io.Writer, pn string) error {
			for _, series := range lc.Series {
				if _, err := fmt.Fprintf(w, "%s{%s} %d\n", pn, promLabels(lc.Labels, series.Values), series.Value); err != nil {
					return err
				}
			}
			return nil
		}})
	}
	for name, lh := range s.LabeledHists {
		lh := lh
		fams = append(fams, family{name, "histogram", func(w io.Writer, pn string) error {
			for _, series := range lh.Series {
				if err := writePromHist(w, pn, promLabels(lh.Labels, series.Values), series.Hist); err != nil {
					return err
				}
			}
			return nil
		}})
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		pn := promName(f.name)
		if help, ok := s.Help[f.name]; ok {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", pn, escapeHelp(help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", pn, f.typ); err != nil {
			return err
		}
		if err := f.emit(w, pn); err != nil {
			return err
		}
	}
	return nil
}

// writePromHist emits one histogram series: cumulative buckets with the
// `le` label appended after any series labels, then _sum and _count.
func writePromHist(w io.Writer, pn, labels string, h HistSnapshot) error {
	join := func(le string) string {
		if labels == "" {
			return `le="` + le + `"`
		}
		return labels + `,le="` + le + `"`
	}
	cum := int64(0)
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", pn, join(promFloat(b)), cum); err != nil {
			return err
		}
	}
	cum += h.Counts[len(h.Bounds)]
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	_, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n%s_sum%s %s\n%s_count%s %d\n",
		pn, join("+Inf"), cum, pn, suffix, promFloat(h.Sum), pn, suffix, h.Count)
	return err
}

// promLabels renders `name="value"` pairs sorted by label name, with
// values escaped per the exposition spec.
func promLabels(names, values []string) string {
	type pair struct{ name, value string }
	pairs := make([]pair, 0, len(names))
	for i, n := range names {
		v := ""
		if i < len(values) {
			v = values[i]
		}
		pairs = append(pairs, pair{promName(n), v})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].name < pairs[j].name })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue escapes a label value for the text exposition
// format: backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline (quotes are
// legal in HELP text).
func escapeHelp(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// promName maps a metric name onto the Prometheus charset [a-zA-Z0-9_:].
func promName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		default:
			return '_'
		}
	}, name)
}

// promFloat renders a float the way Prometheus expects (no exponent
// for integral values below 1e15).
func promFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// SpanJSON is the exported form of one span.
type SpanJSON struct {
	Name     string         `json:"name"`
	DurNs    int64          `json:"dur_ns"`
	Mallocs  uint64         `json:"mallocs,omitempty"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []SpanJSON     `json:"children,omitempty"`
}

// Export converts a span subtree to its JSON form.
func (s *Span) Export() SpanJSON {
	out := SpanJSON{
		Name:    s.Name(),
		DurNs:   s.Duration().Nanoseconds(),
		Mallocs: s.Mallocs(),
	}
	if attrs := s.Attrs(); len(attrs) > 0 {
		out.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.Children() {
		out.Children = append(out.Children, c.Export())
	}
	return out
}

// finiteOrNull guards the log₂ fields for JSON: a zero estimate is
// log₂ = −Inf and a call mixing zero and nonzero trials has spread
// +Inf, neither of which encoding/json can represent — both become
// null.
func finiteOrNull(v float64) *float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return nil
	}
	return &v
}

type trialRecordJSON struct {
	Engine       string   `json:"engine"`
	Call         int64    `json:"call"`
	Trial        int      `json:"trial"`
	Trials       int      `json:"trials"`
	Epsilon      float64  `json:"epsilon"`
	Log2Estimate *float64 `json:"log2_estimate"` // null = the trial estimated zero
	UnionSamples int      `json:"union_samples"`
	ElapsedNs    int64    `json:"elapsed_ns"`
}

// MarshalJSON renders the record with snake_case keys and a null
// log2_estimate for zero estimates (whose log₂ is −Inf).
func (r TrialRecord) MarshalJSON() ([]byte, error) {
	return json.Marshal(trialRecordJSON{
		Engine:       r.Engine,
		Call:         r.Call,
		Trial:        r.Trial,
		Trials:       r.Trials,
		Epsilon:      r.Epsilon,
		Log2Estimate: finiteOrNull(r.Log2Estimate),
		UnionSamples: r.UnionSamples,
		ElapsedNs:    r.Elapsed.Nanoseconds(),
	})
}

type callProgressJSON struct {
	Engine            string        `json:"engine"`
	Call              int64         `json:"call"`
	Epsilon           float64       `json:"epsilon"`
	Trials            []TrialRecord `json:"trials"`
	RunningLog2Median []*float64    `json:"running_log2_median"`
	Spread            *float64      `json:"spread"` // null = spread is infinite (zero and nonzero trials mixed)
}

// MarshalJSON renders the call progress with snake_case keys, mapping
// the non-finite log₂ values to null.
func (p CallProgress) MarshalJSON() ([]byte, error) {
	out := callProgressJSON{
		Engine:  p.Engine,
		Call:    p.Call,
		Epsilon: p.Epsilon,
		Trials:  p.Trials,
		Spread:  finiteOrNull(p.Spread),
	}
	for _, m := range p.RunningLog2Median {
		out.RunningLog2Median = append(out.RunningLog2Median, finiteOrNull(m))
	}
	return json.Marshal(out)
}

// TraceJSON is the trace-file document: the span forest, the per-trial
// convergence records grouped by Count call, and a metrics snapshot.
type TraceJSON struct {
	Spans       []SpanJSON     `json:"spans"`
	Convergence []CallProgress `json:"convergence,omitempty"`
	Metrics     Snapshot       `json:"metrics"`
}

// WriteTrace renders the full telemetry state of the given sinks (any
// of which may be nil) as one indented-JSON document.
func WriteTrace(w io.Writer, t *Tracer, c *Convergence, r *Registry) error {
	doc := TraceJSON{Metrics: r.Snapshot(), Convergence: c.Calls()}
	for _, root := range t.Roots() {
		doc.Spans = append(doc.Spans, root.Export())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteReport renders a compact human-readable telemetry report — the
// span tree with durations followed by sorted counters and gauges. It
// is what testkit failure reports attach next to the replayable seed.
func WriteReport(w io.Writer, t *Tracer, r *Registry) error {
	for _, root := range t.Roots() {
		if err := writeSpanText(w, root, 0); err != nil {
			return err
		}
	}
	s := r.Snapshot()
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "%-44s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "%-44s %g\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	return nil
}

func writeSpanText(w io.Writer, s *Span, depth int) error {
	if _, err := fmt.Fprintf(w, "%s%-*s %12v", strings.Repeat("  ", depth), 40-2*depth, s.Name(), s.Duration().Round(time.Microsecond)); err != nil {
		return err
	}
	for _, a := range s.Attrs() {
		if _, err := fmt.Fprintf(w, "  %s=%v", a.Key, a.Value); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, c := range s.Children() {
		if err := writeSpanText(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}
