package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Snapshot is a point-in-time copy of a registry's metrics, the unit
// the JSON and Prometheus encoders consume.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// HistSnapshot is one histogram's state: per-bucket counts (the last
// slot is the +Inf overflow bucket), plus sum and count.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Snapshot copies the registry's current metric values. An empty (or
// nil) registry yields a zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistSnapshot, len(r.hists))
		for name, h := range r.hists {
			hs := HistSnapshot{
				Bounds: append([]float64(nil), h.bounds...),
				Counts: make([]int64, len(h.counts)),
				Sum:    h.Sum(),
				Count:  h.Count(),
			}
			for i := range h.counts {
				hs.Counts[i] = h.counts[i].Load()
			}
			s.Histograms[name] = hs
		}
	}
	return s
}

// WriteJSON renders the snapshot as indented JSON with sorted keys
// (encoding/json sorts string map keys), so output is deterministic for
// a fixed snapshot.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format, metrics sorted by name.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", promName(name), promName(name), s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", promName(name), promName(name), promFloat(s.Gauges[name])); err != nil {
			return err
		}
	}
	names := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		cum := int64(0)
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, promFloat(b), cum); err != nil {
				return err
			}
		}
		cum += h.Counts[len(h.Bounds)]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			pn, cum, pn, promFloat(h.Sum), pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// promName maps a metric name onto the Prometheus charset [a-zA-Z0-9_:].
func promName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		default:
			return '_'
		}
	}, name)
}

// promFloat renders a float the way Prometheus expects (no exponent
// for integral values below 1e15).
func promFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// SpanJSON is the exported form of one span.
type SpanJSON struct {
	Name     string         `json:"name"`
	DurNs    int64          `json:"dur_ns"`
	Mallocs  uint64         `json:"mallocs,omitempty"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []SpanJSON     `json:"children,omitempty"`
}

// Export converts a span subtree to its JSON form.
func (s *Span) Export() SpanJSON {
	out := SpanJSON{
		Name:    s.Name(),
		DurNs:   s.Duration().Nanoseconds(),
		Mallocs: s.Mallocs(),
	}
	if attrs := s.Attrs(); len(attrs) > 0 {
		out.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.Children() {
		out.Children = append(out.Children, c.Export())
	}
	return out
}

// finiteOrNull guards the log₂ fields for JSON: a zero estimate is
// log₂ = −Inf and a call mixing zero and nonzero trials has spread
// +Inf, neither of which encoding/json can represent — both become
// null.
func finiteOrNull(v float64) *float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return nil
	}
	return &v
}

type trialRecordJSON struct {
	Engine       string   `json:"engine"`
	Call         int64    `json:"call"`
	Trial        int      `json:"trial"`
	Trials       int      `json:"trials"`
	Epsilon      float64  `json:"epsilon"`
	Log2Estimate *float64 `json:"log2_estimate"` // null = the trial estimated zero
	UnionSamples int      `json:"union_samples"`
	ElapsedNs    int64    `json:"elapsed_ns"`
}

// MarshalJSON renders the record with snake_case keys and a null
// log2_estimate for zero estimates (whose log₂ is −Inf).
func (r TrialRecord) MarshalJSON() ([]byte, error) {
	return json.Marshal(trialRecordJSON{
		Engine:       r.Engine,
		Call:         r.Call,
		Trial:        r.Trial,
		Trials:       r.Trials,
		Epsilon:      r.Epsilon,
		Log2Estimate: finiteOrNull(r.Log2Estimate),
		UnionSamples: r.UnionSamples,
		ElapsedNs:    r.Elapsed.Nanoseconds(),
	})
}

type callProgressJSON struct {
	Engine            string        `json:"engine"`
	Call              int64         `json:"call"`
	Epsilon           float64       `json:"epsilon"`
	Trials            []TrialRecord `json:"trials"`
	RunningLog2Median []*float64    `json:"running_log2_median"`
	Spread            *float64      `json:"spread"` // null = spread is infinite (zero and nonzero trials mixed)
}

// MarshalJSON renders the call progress with snake_case keys, mapping
// the non-finite log₂ values to null.
func (p CallProgress) MarshalJSON() ([]byte, error) {
	out := callProgressJSON{
		Engine:  p.Engine,
		Call:    p.Call,
		Epsilon: p.Epsilon,
		Trials:  p.Trials,
		Spread:  finiteOrNull(p.Spread),
	}
	for _, m := range p.RunningLog2Median {
		out.RunningLog2Median = append(out.RunningLog2Median, finiteOrNull(m))
	}
	return json.Marshal(out)
}

// TraceJSON is the trace-file document: the span forest, the per-trial
// convergence records grouped by Count call, and a metrics snapshot.
type TraceJSON struct {
	Spans       []SpanJSON     `json:"spans"`
	Convergence []CallProgress `json:"convergence,omitempty"`
	Metrics     Snapshot       `json:"metrics"`
}

// WriteTrace renders the full telemetry state of the given sinks (any
// of which may be nil) as one indented-JSON document.
func WriteTrace(w io.Writer, t *Tracer, c *Convergence, r *Registry) error {
	doc := TraceJSON{Metrics: r.Snapshot(), Convergence: c.Calls()}
	for _, root := range t.Roots() {
		doc.Spans = append(doc.Spans, root.Export())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteReport renders a compact human-readable telemetry report — the
// span tree with durations followed by sorted counters and gauges. It
// is what testkit failure reports attach next to the replayable seed.
func WriteReport(w io.Writer, t *Tracer, r *Registry) error {
	for _, root := range t.Roots() {
		if err := writeSpanText(w, root, 0); err != nil {
			return err
		}
	}
	s := r.Snapshot()
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "%-44s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "%-44s %g\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	return nil
}

func writeSpanText(w io.Writer, s *Span, depth int) error {
	if _, err := fmt.Fprintf(w, "%s%-*s %12v", strings.Repeat("  ", depth), 40-2*depth, s.Name(), s.Duration().Round(time.Microsecond)); err != nil {
		return err
	}
	for _, a := range s.Attrs() {
		if _, err := fmt.Fprintf(w, "  %s=%v", a.Key, a.Value); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, c := range s.Children() {
		if err := writeSpanText(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}
