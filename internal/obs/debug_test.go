package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	tr := NewTracer()
	r := NewRegistry()
	c := NewConvergence()
	r.Counter("pqe_build_weightings_total").Add(2)
	tr.Start("pqe.ur_estimate").End()
	c.Record(TrialRecord{Engine: "countnfta", Call: c.NextCall(), Trials: 1, Log2Estimate: 1})

	srv := httptest.NewServer(Handler(tr, r, c))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "pqe_build_weightings_total 2") {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	if code, body := get("/snapshot.json"); code != 200 || !strings.Contains(body, `"pqe_build_weightings_total": 2`) {
		t.Fatalf("/snapshot.json: code=%d body=%q", code, body)
	}
	if code, body := get("/trace.json"); code != 200 ||
		!strings.Contains(body, `"pqe.ur_estimate"`) || !strings.Contains(body, `"convergence"`) {
		t.Fatalf("/trace.json: code=%d body=%q", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/: code=%d", code)
	}
	if code, _ := get("/debug/vars"); code != 200 {
		t.Fatalf("/debug/vars: code=%d", code)
	}
	if code, body := get("/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: code=%d body=%q", code, body)
	}
}

// Handler must tolerate nil sinks: pqebench serves pprof with no
// registry attached.
func TestHandlerNilSinks(t *testing.T) {
	srv := httptest.NewServer(Handler(nil, nil, nil))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/snapshot.json", "/trace.json", "/"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s with nil sinks: code=%d", path, resp.StatusCode)
		}
	}
}
