package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// RequestRecord is one request's post-hoc story: identity, routing
// decision, phase breakdown, and outcome. The flight recorder keeps the
// last N of these in memory so "why was request X slow?" is answerable
// without re-running it.
type RequestRecord struct {
	ID          string             `json:"id"`
	Route       string             `json:"route"`
	Database    string             `json:"database,omitempty"`
	Version     uint64             `json:"version,omitempty"`
	QueryHash   string             `json:"query_hash,omitempty"`
	Strategy    string             `json:"strategy,omitempty"` // Result.Method
	Reason      string             `json:"reason,omitempty"`   // Result.Reason
	Build       string             `json:"build,omitempty"`    // "cached", "incremental" or "full"
	Outcome     int                `json:"outcome"`            // HTTP status
	Err         string             `json:"error,omitempty"`    // shed/error cause
	Trials      int64              `json:"trials,omitempty"`
	TrialsSaved int64              `json:"trials_saved,omitempty"`
	Start       time.Time          `json:"start"`
	Wall        float64            `json:"wall_seconds"`
	Phases      map[string]float64 `json:"phases,omitempty"` // phase → seconds

	seq uint64 // completion order, assigned under the recorder lock
}

// Inflight is a handle to a request the recorder is tracking but that
// has not completed. All methods are nil-safe, so a disabled recorder
// costs callers a pointer test.
type Inflight struct {
	fr *FlightRecorder
	mu sync.Mutex
	r  RequestRecord
}

// Update mutates the in-flight record under its lock. No-op on nil.
func (f *Inflight) Update(fn func(*RequestRecord)) {
	if f == nil {
		return
	}
	f.mu.Lock()
	fn(&f.r)
	f.mu.Unlock()
}

// Complete finalizes the record with its outcome and wall time and
// moves it from the in-flight view into the completed rings. No-op on
// nil; completing twice is a no-op after the first (the SSE shutdown
// path relies on a separate once-guard in serve, but the recorder is
// defensive anyway).
func (f *Inflight) Complete(outcome int, wall time.Duration) {
	if f == nil || f.fr == nil {
		return
	}
	f.mu.Lock()
	f.r.Outcome = outcome
	f.r.Wall = wall.Seconds()
	rec := f.r
	fr := f.fr
	f.fr = nil
	f.mu.Unlock()
	fr.complete(f, rec)
}

// FlightRecorder is a bounded in-memory ring of completed request
// records plus a live set of in-flight ones. Completions take one short
// mutex-guarded append; there is no per-trial or per-phase locking.
// Error outcomes (status ≥ 400: sheds, deadlines, conflicts) land in a
// reserved sub-ring so a flood of fast 200s cannot evict the requests
// an operator actually needs to see.
type FlightRecorder struct {
	mu       sync.Mutex
	ok       []RequestRecord // ring of 2xx/3xx completions
	okNext   int
	okFull   bool
	err      []RequestRecord // reserved ring of ≥400 completions
	errNext  int
	errFull  bool
	inflight map[*Inflight]struct{}
	seq      uint64
	total    uint64
	dropped  uint64
}

// NewFlightRecorder returns a recorder keeping roughly n completed
// records: n main slots for successes plus a reserved error sub-ring of
// max(n/4, 4) slots. n < 4 is raised to 4.
func NewFlightRecorder(n int) *FlightRecorder {
	if n < 4 {
		n = 4
	}
	errN := n / 4
	if errN < 4 {
		errN = 4
	}
	return &FlightRecorder{
		ok:       make([]RequestRecord, n),
		err:      make([]RequestRecord, errN),
		inflight: make(map[*Inflight]struct{}),
	}
}

// Begin registers an in-flight request and returns its handle. A nil
// recorder returns a nil (no-op) handle.
func (fr *FlightRecorder) Begin(id, route string, start time.Time) *Inflight {
	if fr == nil {
		return nil
	}
	f := &Inflight{fr: fr, r: RequestRecord{ID: id, Route: route, Start: start}}
	fr.mu.Lock()
	fr.inflight[f] = struct{}{}
	fr.mu.Unlock()
	return f
}

func (fr *FlightRecorder) complete(f *Inflight, rec RequestRecord) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	delete(fr.inflight, f)
	fr.seq++
	rec.seq = fr.seq
	fr.total++
	if rec.Outcome >= 400 {
		if fr.errFull {
			fr.dropped++
		}
		fr.err[fr.errNext] = rec
		fr.errNext++
		if fr.errNext == len(fr.err) {
			fr.errNext, fr.errFull = 0, true
		}
		return
	}
	if fr.okFull {
		fr.dropped++
	}
	fr.ok[fr.okNext] = rec
	fr.okNext++
	if fr.okNext == len(fr.ok) {
		fr.okNext, fr.okFull = 0, true
	}
}

// RecorderSnapshot is the /debug/requests document.
type RecorderSnapshot struct {
	Inflight []RequestRecord `json:"inflight"`
	// Completed merges both rings, newest completion first.
	Completed      []RequestRecord `json:"completed"`
	TotalCompleted uint64          `json:"total_completed"`
	Dropped        uint64          `json:"dropped"`
}

// Snapshot copies the recorder's current state: the live in-flight
// records (Wall = elapsed so far) and all retained completions merged
// newest-first. Zero-value snapshot on a nil recorder.
func (fr *FlightRecorder) Snapshot(now time.Time) RecorderSnapshot {
	var s RecorderSnapshot
	if fr == nil {
		return s
	}
	fr.mu.Lock()
	for f := range fr.inflight {
		f.mu.Lock()
		r := f.r
		f.mu.Unlock()
		r.Wall = now.Sub(r.Start).Seconds()
		s.Inflight = append(s.Inflight, r)
	}
	collect := func(ring []RequestRecord, next int, full bool) {
		n := next
		if full {
			n = len(ring)
		}
		for i := 0; i < n; i++ {
			s.Completed = append(s.Completed, ring[i])
		}
	}
	collect(fr.ok, fr.okNext, fr.okFull)
	collect(fr.err, fr.errNext, fr.errFull)
	s.TotalCompleted = fr.total
	s.Dropped = fr.dropped
	fr.mu.Unlock()
	sort.Slice(s.Inflight, func(i, j int) bool { return s.Inflight[i].Start.Before(s.Inflight[j].Start) })
	sort.Slice(s.Completed, func(i, j int) bool { return s.Completed[i].seq > s.Completed[j].seq })
	return s
}

// WriteJSON renders the snapshot as indented JSON.
func (s RecorderSnapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText renders the snapshot as a fixed-width human table: the
// in-flight section first, then completions newest-first.
func (s RecorderSnapshot) WriteText(w io.Writer) error {
	const header = "%-18s %-9s %-4s %-10s %-12s %9s %9s %9s %9s %9s  %s\n"
	const row = "%-18s %-9s %-4s %-10s %-12s %9.1f %9.1f %9.1f %9.1f %9.1f  %s\n"
	ms := func(r RequestRecord, p string) float64 { return r.Phases[p] * 1000 }
	writeRows := func(title string, recs []RequestRecord, live bool) error {
		if _, err := fmt.Fprintf(w, "%s (%d)\n", title, len(recs)); err != nil {
			return err
		}
		if len(recs) == 0 {
			return nil
		}
		if _, err := fmt.Fprintf(w, header, "ID", "ROUTE", "CODE", "STRATEGY", "BUILD", "WALL_MS", "QUEUE_MS", "BUILD_MS", "SAMPLE_MS", "SER_MS", "NOTE"); err != nil {
			return err
		}
		for _, r := range recs {
			code := fmt.Sprintf("%d", r.Outcome)
			if live {
				code = "..."
			}
			note := r.Err
			if note == "" && r.Trials > 0 {
				note = fmt.Sprintf("trials=%d", r.Trials)
				if r.TrialsSaved > 0 {
					note += fmt.Sprintf(" saved=%d", r.TrialsSaved)
				}
			}
			if _, err := fmt.Fprintf(w, row,
				r.ID, r.Route, code, r.Strategy, r.Build,
				r.Wall*1000, ms(r, "queue"), ms(r, "build"), ms(r, "sample"), ms(r, "serialize"),
				strings.TrimSpace(note)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeRows("in-flight", s.Inflight, true); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if err := writeRows("completed", s.Completed, false); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\ntotal_completed %d  dropped %d\n", s.TotalCompleted, s.Dropped)
	return err
}
