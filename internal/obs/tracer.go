package obs

import (
	"runtime"
	"sync"
	"time"
)

// Tracer collects hierarchical stage spans. Span creation and mutation
// from any goroutine is safe: all structural updates take the tracer's
// mutex. Spans are coarse — pipeline stages and sampling trials, not
// inner loops — so one mutex is never contended enough to matter.
type Tracer struct {
	mu            sync.Mutex
	roots         []*Span
	captureAllocs bool
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// CaptureAllocs toggles per-span heap-allocation deltas, read from
// runtime.MemStats at span start and end. ReadMemStats is expensive and
// process-global (concurrent spans bleed into each other's deltas), so
// this is off by default and meant for single-threaded investigation
// runs, not benchmarks.
func (t *Tracer) CaptureAllocs(on bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.captureAllocs = on
	t.mu.Unlock()
}

// Start opens a root span. Returns nil on a nil tracer.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	sp := t.newSpan(name)
	t.mu.Lock()
	t.roots = append(t.roots, sp)
	t.mu.Unlock()
	return sp
}

func (t *Tracer) newSpan(name string) *Span {
	sp := &Span{tracer: t, name: name, start: time.Now()}
	if t.captureAllocs {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		sp.mallocs0 = m.Mallocs
		sp.hasAllocs = true
	}
	return sp
}

// Roots returns a snapshot of the tracer's root spans. Returns nil on a
// nil tracer.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// Reset discards all recorded spans.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.roots = nil
	t.mu.Unlock()
}

// Attr is one span attribute. Values are kept as the small set of types
// the JSON exporter renders directly.
type Attr struct {
	Key   string
	Value any
}

// Span is one timed pipeline stage. All methods are nil-safe.
type Span struct {
	tracer    *Tracer
	name      string
	start     time.Time
	dur       time.Duration
	ended     bool
	attrs     []Attr
	children  []*Span
	hasAllocs bool
	mallocs0  uint64
	mallocs   uint64
}

// Start opens a child span. Returns nil on a nil span.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	child := s.tracer.newSpan(name)
	s.tracer.mu.Lock()
	s.children = append(s.children, child)
	s.tracer.mu.Unlock()
	return child
}

// SetAttr attaches (or overwrites) an attribute. No-op on nil.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End closes the span, fixing its wall time (and allocation delta when
// capture is on). Repeated End calls keep the first duration. No-op on
// nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	if s.hasAllocs {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		s.mallocs = m.Mallocs - s.mallocs0
	}
}

// Name returns the span's stage name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's wall time: the final duration after End,
// the running elapsed time before it, 0 on nil.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// Children returns a snapshot of the span's child spans (nil on nil).
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Attrs returns a snapshot of the span's attributes (nil on nil).
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Mallocs returns the span's heap-allocation delta when the tracer
// captured allocations, else 0.
func (s *Span) Mallocs() uint64 {
	if s == nil {
		return 0
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	return s.mallocs
}
