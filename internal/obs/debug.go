package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
)

// Handler returns the debug mux for a running pipeline:
//
//	/metrics        Prometheus text exposition of the registry
//	/snapshot.json  registry snapshot as JSON
//	/trace.json     span forest + convergence records + metrics
//	/debug/vars     expvar (Go runtime memstats et al.)
//	/debug/pprof/*  net/http/pprof (CPU profiles carry the engines'
//	                pprof labels: pqe_engine / pqe_stage)
//
// Any sink may be nil; the corresponding endpoints serve empty
// documents.
func Handler(t *Tracer, r *Registry, c *Convergence) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = r.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteTrace(w, t, c, r)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "pqe debug server\n\n/metrics\n/snapshot.json\n/trace.json\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// Serve starts the debug handler on addr (":0" picks a free port) in a
// background goroutine and returns the bound address. The listener
// lives until the process exits — the server exists to observe one run.
func Serve(addr string, h http.Handler) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() { _ = http.Serve(ln, h) }()
	bound := ln.Addr().String()
	// Rewrite the unspecified host so the printed URL is clickable.
	if host, port, err := net.SplitHostPort(bound); err == nil {
		if host == "::" || host == "0.0.0.0" || strings.TrimSpace(host) == "" {
			bound = net.JoinHostPort("127.0.0.1", port)
		}
	}
	return bound, nil
}
