package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPhasesAccounting(t *testing.T) {
	ph := NewPhases()
	ph.Add(PhaseQueue, 10*time.Millisecond)
	ph.Add(PhaseBuild, 20*time.Millisecond)
	ph.Add(PhaseBuild, 5*time.Millisecond)
	ph.Add(PhaseSample, 40*time.Millisecond)
	ph.Add(PhaseSerialize, time.Millisecond)
	if got := ph.Duration(PhaseBuild); got != 25*time.Millisecond {
		t.Fatalf("build = %v, want 25ms", got)
	}
	if got := ph.Total(); got != 76*time.Millisecond {
		t.Fatalf("total = %v, want 76ms", got)
	}
	secs := ph.Seconds()
	if len(secs) != int(NumPhases) {
		t.Fatalf("Seconds has %d phases, want %d", len(secs), NumPhases)
	}
	if secs["queue"] != 0.01 {
		t.Fatalf("queue seconds = %g, want 0.01", secs["queue"])
	}
	// Nil and out-of-range are silent no-ops.
	var nilPh *Phases
	nilPh.Add(PhaseQueue, time.Second)
	if nilPh.Total() != 0 || nilPh.Seconds() != nil {
		t.Fatal("nil Phases returned data")
	}
	ph.Add(Phase(99), time.Second)
	if ph.Total() != 76*time.Millisecond {
		t.Fatal("out-of-range phase accrued")
	}
	if Phase(99).String() != "unknown" {
		t.Fatal("out-of-range phase name")
	}
}

func TestScopePhasesAndRequestID(t *testing.T) {
	tr := NewTracer()
	ph := NewPhases()
	sc := NewScope(tr, nil, nil).WithPhases(ph).WithRequestID("req-42")
	if sc.PhasesSink() != ph {
		t.Fatal("phase sink not attached")
	}
	if sc.RequestID() != "req-42" {
		t.Fatal("request ID not attached")
	}
	// Derived scopes inherit both.
	child, sp := sc.Span("pqe.ur_estimate")
	if child.PhasesSink() != ph || child.RequestID() != "req-42" {
		t.Fatal("derived scope lost phases/request ID")
	}
	child.AddPhase(PhaseBuild, time.Millisecond)
	sp.End()
	if ph.Duration(PhaseBuild) != time.Millisecond {
		t.Fatal("AddPhase via scope did not accrue")
	}
	// Root spans carry the request ID as an attribute; children don't
	// repeat it.
	roots := tr.Roots()
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	attrs := roots[0].Attrs()
	if len(attrs) != 1 || attrs[0].Key != "request_id" || attrs[0].Value != "req-42" {
		t.Fatalf("root attrs = %v, want request_id=req-42", attrs)
	}
	// Nil scope stays nil through the With* chain.
	var nilSc *Scope
	if nilSc.WithPhases(ph) != nil || nilSc.WithRequestID("x") != nil {
		t.Fatal("nil scope produced a live scope")
	}
	nilSc.AddPhase(PhaseQueue, time.Second)
	if nilSc.PhasesSink() != nil || nilSc.RequestID() != "" {
		t.Fatal("nil scope returned data")
	}
}

func TestFlightRecorderEvictionOrder(t *testing.T) {
	fr := NewFlightRecorder(4) // 4 main slots + 4 reserved error slots
	complete := func(id string, outcome int) {
		f := fr.Begin(id, "estimate", time.Unix(0, 0))
		f.Complete(outcome, time.Millisecond)
	}
	// Two errors early, then a flood of successes.
	complete("e1", 429)
	complete("e2", 504)
	for i := 0; i < 10; i++ {
		complete(fmt.Sprintf("ok%d", i), 200)
	}
	s := fr.Snapshot(time.Unix(1, 0))
	if len(s.Inflight) != 0 {
		t.Fatalf("inflight = %d, want 0", len(s.Inflight))
	}
	// Main ring keeps the newest 4 successes; the error sub-ring still
	// holds both errors — the flood of 200s cannot evict them.
	var ids []string
	for _, r := range s.Completed {
		ids = append(ids, r.ID)
	}
	want := []string{"ok9", "ok8", "ok7", "ok6", "e2", "e1"}
	if strings.Join(ids, ",") != strings.Join(want, ",") {
		t.Fatalf("completed order = %v, want %v", ids, want)
	}
	if s.TotalCompleted != 12 || s.Dropped != 6 {
		t.Fatalf("total = %d dropped = %d, want 12 and 6", s.TotalCompleted, s.Dropped)
	}
	// Errors evict only among themselves, oldest first.
	for i := 0; i < 5; i++ {
		complete(fmt.Sprintf("err%d", i), 504)
	}
	s = fr.Snapshot(time.Unix(1, 0))
	var errs []string
	for _, r := range s.Completed {
		if r.Outcome >= 400 {
			errs = append(errs, r.ID)
		}
	}
	want = []string{"err4", "err3", "err2", "err1"}
	if strings.Join(errs, ",") != strings.Join(want, ",") {
		t.Fatalf("error ring = %v, want %v", errs, want)
	}
}

func TestFlightRecorderInflightView(t *testing.T) {
	fr := NewFlightRecorder(8)
	start := time.Unix(100, 0)
	f := fr.Begin("live-1", "stream", start)
	f.Update(func(r *RequestRecord) {
		r.Database = "default"
		r.Strategy = "fpras_path"
		r.Trials = 17
		r.Phases = map[string]float64{"queue": 0.001}
	})
	s := fr.Snapshot(start.Add(2 * time.Second))
	if len(s.Inflight) != 1 || len(s.Completed) != 0 {
		t.Fatalf("inflight/completed = %d/%d, want 1/0", len(s.Inflight), len(s.Completed))
	}
	r := s.Inflight[0]
	if r.ID != "live-1" || r.Strategy != "fpras_path" || r.Trials != 17 {
		t.Fatalf("inflight record = %+v", r)
	}
	if r.Wall != 2.0 {
		t.Fatalf("inflight wall = %g, want 2 (elapsed so far)", r.Wall)
	}
	f.Complete(200, 2500*time.Millisecond)
	s = fr.Snapshot(start.Add(3 * time.Second))
	if len(s.Inflight) != 0 || len(s.Completed) != 1 {
		t.Fatalf("after complete: inflight/completed = %d/%d", len(s.Inflight), len(s.Completed))
	}
	if got := s.Completed[0].Wall; got != 2.5 {
		t.Fatalf("completed wall = %g, want 2.5", got)
	}
	// Double-complete is a defensive no-op.
	f.Complete(500, time.Second)
	if got := len(fr.Snapshot(start).Completed); got != 1 {
		t.Fatalf("double complete duplicated the record: %d", got)
	}
	// Nil recorder and nil handle are silent.
	var nilFr *FlightRecorder
	nf := nilFr.Begin("x", "estimate", start)
	nf.Update(func(*RequestRecord) { t.Fatal("nil inflight ran update") })
	nf.Complete(200, 0)
	if snap := nilFr.Snapshot(start); len(snap.Inflight)+len(snap.Completed) != 0 {
		t.Fatal("nil recorder returned records")
	}
}

func TestFlightRecorderRendering(t *testing.T) {
	fr := NewFlightRecorder(8)
	f := fr.Begin("abc123", "estimate", time.Unix(0, 0))
	f.Update(func(r *RequestRecord) {
		r.Strategy = "exact_dnnf"
		r.Phases = map[string]float64{"queue": 0.001, "build": 0.002, "sample": 0.003, "serialize": 0.0005}
	})
	f.Complete(200, 7*time.Millisecond)
	fr.Begin("shed-1", "estimate", time.Unix(5, 0)).Complete(429, time.Millisecond)
	s := fr.Snapshot(time.Unix(10, 0))

	var js strings.Builder
	if err := s.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{`"abc123"`, `"exact_dnnf"`, `"outcome": 429`, `"total_completed": 2`} {
		if !strings.Contains(js.String(), needle) {
			t.Fatalf("JSON missing %s:\n%s", needle, js.String())
		}
	}

	var txt strings.Builder
	if err := s.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{"in-flight (0)", "completed (2)", "abc123", "shed-1", "429", "total_completed 2"} {
		if !strings.Contains(txt.String(), needle) {
			t.Fatalf("text table missing %q:\n%s", needle, txt.String())
		}
	}
}

func TestFlightRecorderConcurrency(t *testing.T) {
	fr := NewFlightRecorder(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f := fr.Begin(fmt.Sprintf("w%d-%d", w, i), "estimate", time.Unix(0, 0))
				f.Update(func(r *RequestRecord) { r.Trials = int64(i) })
				outcome := 200
				if i%7 == 0 {
					outcome = 429
				}
				f.Complete(outcome, time.Millisecond)
				_ = fr.Snapshot(time.Unix(1, 0))
			}
		}()
	}
	wg.Wait()
	s := fr.Snapshot(time.Unix(1, 0))
	if s.TotalCompleted != 1600 {
		t.Fatalf("total = %d, want 1600", s.TotalCompleted)
	}
	for i := 1; i < len(s.Completed); i++ {
		if s.Completed[i-1].seq < s.Completed[i].seq {
			t.Fatal("completed not newest-first")
		}
	}
}

func TestRuntimeCollector(t *testing.T) {
	reg := NewRegistry()
	rc := NewRuntimeCollector(reg, time.Hour) // ticker won't fire; Start collects once
	rc.Start()
	defer rc.Stop()
	if g := reg.Gauge("go_goroutines").Value(); g < 1 {
		t.Fatalf("go_goroutines = %g, want ≥ 1", g)
	}
	if g := reg.Gauge("go_memory_total_bytes").Value(); g <= 0 {
		t.Fatalf("go_memory_total_bytes = %g, want > 0", g)
	}
	// Quantile gauges exist (they may be zero on an idle runtime).
	snap := reg.Snapshot()
	for _, name := range []string{"go_gc_pause_seconds_p50", "go_gc_pause_seconds_p99", "go_sched_latency_seconds_p50", "go_sched_latency_seconds_p99"} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Fatalf("gauge %s missing from snapshot", name)
		}
	}
	rc.Stop()
	rc.Stop() // idempotent
	var nilRc *RuntimeCollector
	nilRc.Start()
	nilRc.Collect()
	nilRc.Stop()
	if NewRuntimeCollector(nil, time.Second) != nil {
		t.Fatal("collector over a nil registry should be nil")
	}
}
