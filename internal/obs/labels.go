package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// This file adds labeled metric families ("vecs") to the registry: one
// family name plus a fixed set of label names, with one child metric
// per distinct label-value tuple. Children are created on first use and
// cached, so instrumented code resolves a handle once per event and
// updates it with plain atomics — exactly the flat-metric contract.
// Everything is nil-safe: a nil vec hands out nil children, which
// accept every update as a no-op.

// labelKey joins label values into the cache key. \xff cannot appear in
// the UTF-8 text the callers pass, so the join is unambiguous.
func labelKey(values []string) string { return strings.Join(values, "\xff") }

// normalize pads or truncates values to the family's label arity, so a
// caller passing the wrong count degrades to empty labels instead of
// corrupting the series map.
func normalize(values []string, arity int) []string {
	if len(values) == arity {
		return values
	}
	out := make([]string, arity)
	copy(out, values)
	return out
}

// CounterVec is a labeled counter family.
type CounterVec struct {
	labels []string
	mu     sync.RWMutex
	series map[string]*counterChild
}

type counterChild struct {
	values []string
	c      *Counter
}

// With returns the counter for the given label values (created on first
// use). A nil vec returns a nil (no-op) counter.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	values = normalize(values, len(v.labels))
	key := labelKey(values)
	v.mu.RLock()
	ch := v.series[key]
	v.mu.RUnlock()
	if ch != nil {
		return ch.c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if ch = v.series[key]; ch == nil {
		ch = &counterChild{values: append([]string(nil), values...), c: &Counter{}}
		v.series[key] = ch
	}
	return ch.c
}

// Labels returns the family's label names (nil on a nil vec).
func (v *CounterVec) Labels() []string {
	if v == nil {
		return nil
	}
	return append([]string(nil), v.labels...)
}

// HistogramVec is a labeled histogram family. Every child shares the
// bucket bounds fixed at vec creation.
type HistogramVec struct {
	labels []string
	bounds []float64
	mu     sync.RWMutex
	series map[string]*histChild
}

type histChild struct {
	values []string
	h      *Histogram
}

// With returns the histogram for the given label values (created on
// first use). A nil vec returns a nil (no-op) histogram.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	values = normalize(values, len(v.labels))
	key := labelKey(values)
	v.mu.RLock()
	ch := v.series[key]
	v.mu.RUnlock()
	if ch != nil {
		return ch.h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if ch = v.series[key]; ch == nil {
		ch = &histChild{
			values: append([]string(nil), values...),
			h:      &Histogram{bounds: v.bounds, counts: make([]atomic.Int64, len(v.bounds)+1)},
		}
		v.series[key] = ch
	}
	return ch.h
}

// CounterVec returns the named labeled counter family, creating it with
// the given label names on first use (later calls ignore them). A nil
// registry returns a nil (no-op) vec.
func (r *Registry) CounterVec(name string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	v := r.counterVecs[name]
	r.mu.RUnlock()
	if v != nil {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v = r.counterVecs[name]; v == nil {
		v = &CounterVec{labels: append([]string(nil), labels...), series: make(map[string]*counterChild)}
		r.counterVecs[name] = v
	}
	return v
}

// HistogramVec returns the named labeled histogram family, creating it
// with the given label names and bucket bounds on first use (DefBuckets
// when none are given; later calls ignore both). A nil registry returns
// a nil (no-op) vec.
func (r *Registry) HistogramVec(name string, labels []string, bounds ...float64) *HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	v := r.histVecs[name]
	r.mu.RUnlock()
	if v != nil {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v = r.histVecs[name]; v == nil {
		if len(bounds) == 0 {
			bounds = DefBuckets
		}
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		v = &HistogramVec{
			labels: append([]string(nil), labels...),
			bounds: b,
			series: make(map[string]*histChild),
		}
		r.histVecs[name] = v
	}
	return v
}

// SetHelp registers the HELP text emitted for the named metric family
// in the Prometheus exposition. No-op on a nil registry.
func (r *Registry) SetHelp(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}
