package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a concurrency-safe metrics registry. Metric handles
// (Counter, Gauge, Histogram) are created on first use and cached;
// instrumented code resolves a handle once per call and then updates it
// with plain atomics, so the registry lock is never on a hot path.
type Registry struct {
	mu          sync.RWMutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	hists       map[string]*Histogram
	counterVecs map[string]*CounterVec
	histVecs    map[string]*HistogramVec
	help        map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
		hists:       make(map[string]*Histogram),
		counterVecs: make(map[string]*CounterVec),
		histVecs:    make(map[string]*HistogramVec),
		help:        make(map[string]string),
	}
}

// Counter returns the named monotonic counter, creating it on first
// use. A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// DefBuckets is the default histogram bucketing: exponential, covering
// microseconds through minutes when observations are in seconds.
var DefBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 60}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (DefBuckets when none are given).
// Bounds are fixed at creation; later calls ignore them. A nil registry
// returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		if len(bounds) == 0 {
			bounds = DefBuckets
		}
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 that can be set or adjusted.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge by d with a CAS loop. No-op on a nil gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed cumulative-style
// buckets (counts[i] covers observations ≤ bounds[i]; the final slot is
// the overflow bucket).
type Histogram struct {
	bounds []float64
	counts []atomic.Int64
	sum    Gauge
	n      atomic.Int64
}

// Observe records one observation. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}
