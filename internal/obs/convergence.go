package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TrialRecord is one completed estimator trial: which engine, which
// Count call (calls are numbered per Convergence), which trial of how
// many, and the trial's estimate as log₂ (estimates routinely exceed
// float64 range; -Inf encodes a zero estimate).
type TrialRecord struct {
	Engine       string        // "countnfta" or "countnfa"
	Call         int64         // per-recorder Count-call sequence number
	Trial        int           // trial index within the call, 0-based
	Trials       int           // total trials of the call
	Epsilon      float64       // per-trial relative-error target
	Log2Estimate float64       // log₂ of the trial's estimate, -Inf if 0
	UnionSamples int           // overlap samples this trial drew
	Elapsed      time.Duration // trial wall time
}

// CallProgress is the convergence view of one Count call: its trials in
// index order plus the running median and relative spread after each —
// the signal a caller watches to see the ε/δ estimate stabilize.
type CallProgress struct {
	Engine  string
	Call    int64
	Epsilon float64
	Trials  []TrialRecord
	// RunningLog2Median[i] is the median of trials 0..i (log₂ domain):
	// the value the call would return had it stopped after i+1 trials.
	RunningLog2Median []float64
	// Spread is max−min over the trials' log₂ estimates — 0 means every
	// trial agreed; ≲ log₂(1+ε)−log₂(1−ε) means all trials landed in
	// the ε-band around a common value.
	Spread float64
}

// Converged reports whether the call's trials all landed within the
// relative band (1±slack·ε) of each other, the practical "estimate has
// stabilized" signal.
func (p CallProgress) Converged(slack float64) bool {
	if len(p.Trials) == 0 {
		return false
	}
	band := math.Log2(1+slack*p.Epsilon) - math.Log2(1-slack*p.Epsilon)
	return p.Spread <= band
}

// Convergence collects per-trial estimate records and optionally
// forwards each to a callback as it arrives. All methods are nil-safe.
type Convergence struct {
	mu      sync.Mutex
	records []TrialRecord
	onTrial func(TrialRecord)
	calls   atomic.Int64
}

// NewConvergence returns an empty recorder.
func NewConvergence() *Convergence { return &Convergence{} }

// OnTrial registers a callback invoked synchronously for every recorded
// trial (possibly from the engine's trial goroutines — the callback
// must be safe for concurrent use). No-op on nil.
func (c *Convergence) OnTrial(fn func(TrialRecord)) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.onTrial = fn
	c.mu.Unlock()
}

// NextCall allocates the sequence number for one engine Count call
// (0 on a nil recorder).
func (c *Convergence) NextCall() int64 {
	if c == nil {
		return 0
	}
	return c.calls.Add(1)
}

// Record stores one trial record and fires the callback. No-op on nil.
func (c *Convergence) Record(r TrialRecord) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.records = append(c.records, r)
	fn := c.onTrial
	c.mu.Unlock()
	if fn != nil {
		fn(r)
	}
}

// Snapshot returns a copy of all records in arrival order (nil on nil).
func (c *Convergence) Snapshot() []TrialRecord {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]TrialRecord(nil), c.records...)
}

// Reset discards all records (call numbering continues).
func (c *Convergence) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.records = nil
	c.mu.Unlock()
}

// Calls groups the records by Count call (in call order, trials sorted
// by index) and derives each call's running median and spread.
func (c *Convergence) Calls() []CallProgress {
	if c == nil {
		return nil
	}
	recs := c.Snapshot()
	byCall := make(map[int64][]TrialRecord)
	var order []int64
	for _, r := range recs {
		if _, ok := byCall[r.Call]; !ok {
			order = append(order, r.Call)
		}
		byCall[r.Call] = append(byCall[r.Call], r)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([]CallProgress, 0, len(order))
	for _, id := range order {
		trials := byCall[id]
		sort.Slice(trials, func(i, j int) bool { return trials[i].Trial < trials[j].Trial })
		p := CallProgress{Engine: trials[0].Engine, Call: id, Epsilon: trials[0].Epsilon, Trials: trials}
		lo, hi := math.Inf(1), math.Inf(-1)
		var seen []float64
		for _, tr := range trials {
			v := tr.Log2Estimate
			seen = append(seen, v)
			p.RunningLog2Median = append(p.RunningLog2Median, median(seen))
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		p.Spread = hi - lo
		if math.IsNaN(p.Spread) { // all-(-Inf): every trial estimated zero
			p.Spread = 0
		}
		out = append(out, p)
	}
	return out
}

// median returns the upper median of xs, matching the engines' even-
// count tie-break (they take results[len/2] of the sorted slice).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
