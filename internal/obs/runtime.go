package obs

import (
	"runtime/metrics"
	"sync"
	"time"

	"pqe/internal/splitmix"
)

// runtimeGauges maps runtime/metrics sample names onto registry gauge
// names. Kinds are checked at read time (KindBad samples are skipped)
// so the list degrades gracefully across Go releases.
var runtimeGauges = []struct {
	sample string
	gauge  string
	help   string
}{
	{"/sched/goroutines:goroutines", "go_goroutines", "Live goroutines."},
	{"/gc/cycles/total:gc-cycles", "go_gc_cycles_total", "Completed GC cycles."},
	{"/memory/classes/heap/objects:bytes", "go_heap_objects_bytes", "Bytes of live heap objects."},
	{"/memory/classes/total:bytes", "go_memory_total_bytes", "All memory mapped by the Go runtime."},
}

// runtimeHists maps runtime/metrics histogram samples onto p50/p99
// gauges (full runtime histograms are too wide to export usefully).
var runtimeHists = []struct {
	sample string
	gauge  string
	help   string
}{
	{"/gc/pauses:seconds", "go_gc_pause_seconds", "GC stop-the-world pause quantiles."},
	{"/sched/latencies:seconds", "go_sched_latency_seconds", "Goroutine scheduling latency quantiles."},
}

// RuntimeCollector polls runtime/metrics (GC pauses, heap, goroutines,
// scheduler latency) into a Registry on a jittered ticker so /metrics
// scrapes carry runtime health next to the service counters. The jitter
// comes from a fixed splitmix stream — never wall-clock randomness —
// so the collector cannot perturb any seeded computation (it touches no
// engine state at all; it only reads runtime counters).
type RuntimeCollector struct {
	reg      *Registry
	interval time.Duration
	samples  []metrics.Sample
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// runtimeJitterSalt derives the ticker-jitter stream.
const runtimeJitterSalt = 0x9fb21c651e98df25

// NewRuntimeCollector returns a collector writing into reg every
// interval (±25% jitter). It does not start polling until Start. A nil
// registry yields a nil (no-op) collector; interval ≤ 0 defaults to 10s.
func NewRuntimeCollector(reg *Registry, interval time.Duration) *RuntimeCollector {
	if reg == nil {
		return nil
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	rc := &RuntimeCollector{
		reg:      reg,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, g := range runtimeGauges {
		rc.samples = append(rc.samples, metrics.Sample{Name: g.sample})
		reg.SetHelp(g.gauge, g.help)
	}
	for _, h := range runtimeHists {
		rc.samples = append(rc.samples, metrics.Sample{Name: h.sample})
		reg.SetHelp(h.gauge+"_p50", h.help)
		reg.SetHelp(h.gauge+"_p99", h.help)
	}
	return rc
}

// Collect reads the runtime metrics once into the registry. Exposed so
// tests and smoke runs can force a fresh reading. No-op on nil.
func (rc *RuntimeCollector) Collect() {
	if rc == nil {
		return
	}
	metrics.Read(rc.samples)
	for i, g := range runtimeGauges {
		s := rc.samples[i]
		switch s.Value.Kind() {
		case metrics.KindUint64:
			rc.reg.Gauge(g.gauge).Set(float64(s.Value.Uint64()))
		case metrics.KindFloat64:
			rc.reg.Gauge(g.gauge).Set(s.Value.Float64())
		}
	}
	for i, h := range runtimeHists {
		s := rc.samples[len(runtimeGauges)+i]
		if s.Value.Kind() != metrics.KindFloat64Histogram {
			continue
		}
		fh := s.Value.Float64Histogram()
		rc.reg.Gauge(h.gauge + "_p50").Set(histQuantile(fh, 0.50))
		rc.reg.Gauge(h.gauge + "_p99").Set(histQuantile(fh, 0.99))
	}
}

// histQuantile extracts an approximate quantile from a runtime
// Float64Histogram, using each bucket's upper bound (lower for the
// +Inf overflow bucket).
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > target {
			// Buckets[i+1] is bucket i's upper bound.
			if i+1 < len(h.Buckets) && !isInf(h.Buckets[i+1]) {
				return h.Buckets[i+1]
			}
			return h.Buckets[i]
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

func isInf(v float64) bool { return v > 1e308 || v < -1e308 }

// Start collects once immediately, then polls on a jittered ticker
// until Stop. No-op on nil.
func (rc *RuntimeCollector) Start() {
	if rc == nil {
		return
	}
	rc.Collect()
	go rc.loop()
}

func (rc *RuntimeCollector) loop() {
	defer close(rc.done)
	// Jitter each period to 75%–125% of the nominal interval so a fleet
	// of pqed processes doesn't scrape the runtime in lockstep. The
	// stream seed is fixed: deterministic, and unrelated to any request
	// seed.
	str := splitmix.Derive(0, runtimeJitterSalt, 0)
	timer := time.NewTimer(rc.jittered(&str))
	defer timer.Stop()
	for {
		select {
		case <-rc.stop:
			return
		case <-timer.C:
			rc.Collect()
			timer.Reset(rc.jittered(&str))
		}
	}
}

func (rc *RuntimeCollector) jittered(str *splitmix.Stream) time.Duration {
	f := 0.75 + 0.5*str.Float64()
	return time.Duration(float64(rc.interval) * f)
}

// Stop halts the poller (idempotent; safe before Start — the next
// Start's loop exits immediately). No-op on nil.
func (rc *RuntimeCollector) Stop() {
	if rc == nil {
		return
	}
	rc.stopOnce.Do(func() { close(rc.stop) })
}
