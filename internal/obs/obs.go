// Package obs is the repository's zero-dependency observability layer:
// one Scope bundles the three telemetry sinks threaded through the
// whole FPRAS pipeline — a hierarchical stage Tracer (spans with wall
// time, optional allocation deltas, and attributes), a metrics Registry
// (atomic counters, gauges and histograms unifying the engines' effort
// counters), and a Convergence recorder (per-trial estimate traces so
// callers can watch the median-of-trials estimate stabilize).
//
// Every type in the package is nil-safe: a nil *Scope, *Tracer, *Span,
// *Registry, *Counter, *Gauge, *Histogram or *Convergence accepts every
// method call as a no-op, so instrumented code needs no guards and the
// disabled path costs a pointer test — no locks, no allocations (the
// contract pinned by TestDisabledPathAllocFree). Instrumentation never
// touches the engines' PRNG streams, so seeded runs stay bit-identical
// with tracing on or off.
//
// Exporters (export.go) render registry snapshots as JSON and
// Prometheus text, and span trees plus convergence records as a single
// trace-JSON document; debug.go serves all of it over HTTP next to
// net/http/pprof and expvar for live profiling (cmd/pqe -debug-addr).
package obs

// Scope is the handle instrumented code receives: a sink bundle plus
// the current parent span, so child scopes nest their spans correctly.
// A nil Scope disables everything.
type Scope struct {
	tracer *Tracer
	reg    *Registry
	conv   *Convergence
	parent *Span
	phases *Phases
	reqID  string
}

// NewScope bundles the given sinks. Any of them may be nil to disable
// that facet.
func NewScope(t *Tracer, r *Registry, c *Convergence) *Scope {
	return &Scope{tracer: t, reg: r, conv: c}
}

// Enabled reports whether any instrumentation is attached.
func (s *Scope) Enabled() bool { return s != nil }

// Tracer returns the scope's tracer (nil when disabled).
func (s *Scope) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tracer
}

// Registry returns the scope's metrics registry (nil when disabled).
func (s *Scope) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Convergence returns the scope's convergence recorder (nil when
// disabled).
func (s *Scope) Convergence() *Convergence {
	if s == nil {
		return nil
	}
	return s.conv
}

// Span starts a span named name under the scope's current parent (or as
// a trace root) and returns a derived scope whose future spans nest
// under it, plus the span itself for attributes and End. On a nil scope
// both results are nil.
func (s *Scope) Span(name string) (*Scope, *Span) {
	if s == nil || s.tracer == nil {
		return s, nil
	}
	var sp *Span
	if s.parent != nil {
		sp = s.parent.Start(name)
	} else {
		sp = s.tracer.Start(name)
		if s.reqID != "" {
			sp.SetAttr("request_id", s.reqID)
		}
	}
	child := *s
	child.parent = sp
	return &child, sp
}

// Counter returns the named registry counter, or nil when the scope has
// no registry — either way the result accepts Add/Inc.
func (s *Scope) Counter(name string) *Counter { return s.Registry().Counter(name) }

// Gauge returns the named registry gauge (nil-safe like Counter).
func (s *Scope) Gauge(name string) *Gauge { return s.Registry().Gauge(name) }

// Histogram returns the named registry histogram (nil-safe like
// Counter). The bounds are fixed on first creation.
func (s *Scope) Histogram(name string, bounds ...float64) *Histogram {
	return s.Registry().Histogram(name, bounds...)
}

// RecordTrial forwards a per-trial convergence record to the scope's
// recorder, if any.
func (s *Scope) RecordTrial(r TrialRecord) { s.Convergence().Record(r) }
