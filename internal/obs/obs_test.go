package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilScopeNoOps(t *testing.T) {
	var s *Scope
	if s.Enabled() {
		t.Fatal("nil scope reports enabled")
	}
	if s.Tracer() != nil || s.Registry() != nil || s.Convergence() != nil {
		t.Fatal("nil scope leaked a sink")
	}
	sc, sp := s.Span("x")
	if sc != nil || sp != nil {
		t.Fatalf("nil scope Span = (%v, %v), want (nil, nil)", sc, sp)
	}
	// Every downstream call must be a silent no-op.
	s.Counter("c").Add(3)
	s.Counter("c").Inc()
	s.Gauge("g").Set(1)
	s.Gauge("g").Add(1)
	s.Histogram("h").Observe(1)
	s.RecordTrial(TrialRecord{})
	sp.Start("child").End()
	sp.SetAttr("k", 1)
	sp.End()
	if sp.Name() != "" || sp.Duration() != 0 || sp.Mallocs() != 0 {
		t.Fatal("nil span returned non-zero readings")
	}
	if sp.Children() != nil || sp.Attrs() != nil {
		t.Fatal("nil span returned non-nil snapshots")
	}
	var tr *Tracer
	tr.CaptureAllocs(true)
	tr.Reset()
	if tr.Start("x") != nil || tr.Roots() != nil {
		t.Fatal("nil tracer created spans")
	}
	var c *Convergence
	c.OnTrial(func(TrialRecord) {})
	c.Record(TrialRecord{})
	c.Reset()
	if c.NextCall() != 0 || c.Snapshot() != nil || c.Calls() != nil {
		t.Fatal("nil convergence returned data")
	}
	var reg *Registry
	if reg.Counter("c") != nil || reg.Gauge("g") != nil || reg.Histogram("h") != nil {
		t.Fatal("nil registry returned handles")
	}
	if reg.CounterVec("cv", "l") != nil || reg.HistogramVec("hv", []string{"l"}) != nil {
		t.Fatal("nil registry returned vec handles")
	}
	reg.SetHelp("x", "help")
	var cv *CounterVec
	cv.With("a").Inc()
	if cv.Labels() != nil {
		t.Fatal("nil vec returned labels")
	}
	var hv *HistogramVec
	hv.With("a").Observe(1)
	snap := reg.Snapshot()
	if snap.Counters != nil || snap.Gauges != nil || snap.Histograms != nil {
		t.Fatal("nil registry snapshot non-empty")
	}
}

// TestDisabledPathAllocFree pins the package contract: with no scope
// attached, instrumented code pays a pointer test — zero heap
// allocations on any no-op path.
func TestDisabledPathAllocFree(t *testing.T) {
	var s *Scope
	var sp *Span
	allocs := testing.AllocsPerRun(1000, func() {
		sc, span := s.Span("stage")
		_ = sc
		span.SetAttr("k", 1)
		span.End()
		s.Counter("c").Add(1)
		s.Gauge("g").Set(1)
		s.Histogram("h").Observe(1)
		s.Convergence().Record(TrialRecord{})
		_ = s.Registry()
		sp.Start("child").End()
		s.AddPhase(PhaseBuild, 1)
		_ = s.PhasesSink()
		_ = s.WithPhases(nil)
		_ = s.WithRequestID("id")
		_ = s.RequestID()
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation path allocates: %.1f allocs/op, want 0", allocs)
	}
}

func BenchmarkDisabledScope(b *testing.B) {
	var s *Scope
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, span := s.Span("stage")
		span.End()
		s.Counter("c").Inc()
	}
}

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(2)
	r.Counter("hits").Inc()
	if got := r.Counter("hits").Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	r.Gauge("size").Set(7)
	r.Gauge("size").Add(0.5)
	if got := r.Gauge("size").Value(); got != 7.5 {
		t.Fatalf("gauge = %g, want 7.5", got)
	}
	h := r.Histogram("lat", 0.1, 1, 10)
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("hist count = %d, want 4", h.Count())
	}
	if math.Abs(h.Sum()-55.55) > 1e-9 {
		t.Fatalf("hist sum = %g, want 55.55", h.Sum())
	}
	// Same name returns the same handle; bounds are fixed at creation.
	if r.Histogram("lat", 99) != h {
		t.Fatal("histogram not cached by name")
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(float64(i))
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("g").Value(); got != workers*per {
		t.Fatalf("gauge = %g, want %d", got, workers*per)
	}
	if got := r.Histogram("h").Count(); got != workers*per {
		t.Fatalf("hist count = %d, want %d", got, workers*per)
	}
}

func TestSnapshotJSONGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	r.Gauge("size").Set(3.5)
	h := r.Histogram("secs", 1, 10)
	h.Observe(0.5)
	h.Observe(20)
	var sb strings.Builder
	if err := r.Snapshot().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	want := `{
  "counters": {
    "a_total": 1,
    "b_total": 2
  },
  "gauges": {
    "size": 3.5
  },
  "histograms": {
    "secs": {
      "bounds": [
        1,
        10
      ],
      "counts": [
        1,
        0,
        1
      ],
      "sum": 20.5,
      "count": 2
    }
  }
}
`
	if sb.String() != want {
		t.Fatalf("JSON snapshot mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestSnapshotPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("pqe_hits_total").Add(5)
	r.Gauge("pqe_interned.sets").Set(12) // '.' must be mapped to '_'
	// Dyadic observations keep the float sum exact, so the golden text
	// is stable.
	h := r.Histogram("pqe_call_seconds", 0.1, 1)
	h.Observe(0.0625)
	h.Observe(0.5)
	h.Observe(3)
	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	// Families are sorted globally by name regardless of kind.
	want := strings.Join([]string{
		"# TYPE pqe_call_seconds histogram",
		`pqe_call_seconds_bucket{le="0.1"} 1`,
		`pqe_call_seconds_bucket{le="1"} 2`,
		`pqe_call_seconds_bucket{le="+Inf"} 3`,
		"pqe_call_seconds_sum 3.5625",
		"pqe_call_seconds_count 3",
		"# TYPE pqe_hits_total counter",
		"pqe_hits_total 5",
		"# TYPE pqe_interned_sets gauge",
		"pqe_interned_sets 12",
		"",
	}, "\n")
	if sb.String() != want {
		t.Fatalf("Prometheus snapshot mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// TestLabeledPrometheusGolden pins the spec-clean exposition for
// labeled families: HELP/TYPE lines, label pairs sorted by label name,
// escaped label values, series sorted by value tuple, and the `le`
// bucket label appended after the series labels.
func TestLabeledPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("pqed_requests_total", "route", "outcome")
	v.With("stream", "200").Add(3)
	v.With("estimate", "200").Add(7)
	v.With("estimate", "504").Inc()
	r.SetHelp("pqed_requests_total", "Completed requests by route and outcome.")
	h := r.HistogramVec("pqed_phase_seconds", []string{"phase"}, 0.5, 2)
	h.With("build").Observe(0.25)
	h.With("build").Observe(1)
	r.SetHelp("pqed_phase_seconds", "Per-request phase durations.")
	esc := r.CounterVec("esc_total", "q")
	esc.With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE esc_total counter",
		`esc_total{q="a\"b\\c\nd"} 1`,
		"# HELP pqed_phase_seconds Per-request phase durations.",
		"# TYPE pqed_phase_seconds histogram",
		`pqed_phase_seconds_bucket{phase="build",le="0.5"} 1`,
		`pqed_phase_seconds_bucket{phase="build",le="2"} 2`,
		`pqed_phase_seconds_bucket{phase="build",le="+Inf"} 2`,
		`pqed_phase_seconds_sum{phase="build"} 1.25`,
		`pqed_phase_seconds_count{phase="build"} 2`,
		"# HELP pqed_requests_total Completed requests by route and outcome.",
		"# TYPE pqed_requests_total counter",
		`pqed_requests_total{outcome="200",route="estimate"} 7`,
		`pqed_requests_total{outcome="504",route="estimate"} 1`,
		`pqed_requests_total{outcome="200",route="stream"} 3`,
		"",
	}, "\n")
	if sb.String() != want {
		t.Fatalf("labeled Prometheus snapshot mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestLabeledVecBasics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "route")
	if v.With("a") != v.With("a") {
		t.Fatal("counter child not cached per label tuple")
	}
	if v.With("a") == v.With("b") {
		t.Fatal("distinct label tuples share a child")
	}
	if r.CounterVec("req_total", "ignored") != v {
		t.Fatal("vec not cached by name")
	}
	// Wrong arity degrades to padded/truncated values, not corruption.
	v.With("a", "extra").Inc()
	v.With().Inc()
	snap := r.Snapshot()
	if got := len(snap.LabeledCounters["req_total"].Series); got != 3 {
		t.Fatalf("series = %d, want 3 (a, b, empty)", got)
	}
	h := r.HistogramVec("lat_seconds", []string{"phase"}, 1)
	if h.With("x") != h.With("x") {
		t.Fatal("histogram child not cached per label tuple")
	}
	h.With("x").Observe(0.5)
	if got := h.With("x").Count(); got != 1 {
		t.Fatalf("histogram child count = %d, want 1", got)
	}
}

func TestTracerSpanTree(t *testing.T) {
	tr := NewTracer()
	sc := NewScope(tr, nil, nil)
	root, span := sc.Span("pipeline")
	child, cspan := root.Span("stage")
	cspan.SetAttr("n", 7)
	cspan.SetAttr("n", 8) // overwrite, not append
	_, gspan := child.Span("trial")
	gspan.End()
	cspan.End()
	span.End()
	roots := tr.Roots()
	if len(roots) != 1 || roots[0].Name() != "pipeline" {
		t.Fatalf("roots = %v", roots)
	}
	kids := roots[0].Children()
	if len(kids) != 1 || kids[0].Name() != "stage" {
		t.Fatalf("children = %v", kids)
	}
	attrs := kids[0].Attrs()
	if len(attrs) != 1 || attrs[0].Key != "n" || attrs[0].Value != 8 {
		t.Fatalf("attrs = %v", attrs)
	}
	if len(kids[0].Children()) != 1 || kids[0].Children()[0].Name() != "trial" {
		t.Fatalf("grandchildren = %v", kids[0].Children())
	}
	d := roots[0].Duration()
	if d <= 0 {
		t.Fatalf("duration = %v, want > 0", d)
	}
	if roots[0].Duration() != d {
		t.Fatal("ended span duration not stable")
	}
	tr.Reset()
	if tr.Roots() != nil {
		t.Fatal("Reset left spans behind")
	}
}

func TestSpanExport(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("root")
	sp.SetAttr("k", "v")
	sp.Start("child").End()
	sp.End()
	out := sp.Export()
	if out.Name != "root" || out.Attrs["k"] != "v" || len(out.Children) != 1 || out.Children[0].Name != "child" {
		t.Fatalf("export = %+v", out)
	}
	if out.DurNs <= 0 {
		t.Fatalf("DurNs = %d, want > 0", out.DurNs)
	}
}

func TestConvergenceCalls(t *testing.T) {
	c := NewConvergence()
	var fired []TrialRecord
	c.OnTrial(func(r TrialRecord) { fired = append(fired, r) })
	call := c.NextCall()
	// Trials arrive out of order (parallel trials do).
	recs := []TrialRecord{
		{Engine: "countnfta", Call: call, Trial: 2, Trials: 3, Epsilon: 0.1, Log2Estimate: 10.2},
		{Engine: "countnfta", Call: call, Trial: 0, Trials: 3, Epsilon: 0.1, Log2Estimate: 10.0},
		{Engine: "countnfta", Call: call, Trial: 1, Trials: 3, Epsilon: 0.1, Log2Estimate: 10.1},
	}
	for _, r := range recs {
		c.Record(r)
	}
	if len(fired) != 3 {
		t.Fatalf("callback fired %d times, want 3", len(fired))
	}
	calls := c.Calls()
	if len(calls) != 1 {
		t.Fatalf("calls = %d, want 1", len(calls))
	}
	p := calls[0]
	if p.Engine != "countnfta" || p.Call != call || len(p.Trials) != 3 {
		t.Fatalf("progress = %+v", p)
	}
	for i, tr := range p.Trials {
		if tr.Trial != i {
			t.Fatalf("trials not sorted: %+v", p.Trials)
		}
	}
	// Running upper median in trial-index order:
	// [10.0], [10.0 10.1]→10.1, [10.0 10.1 10.2]→10.1.
	want := []float64{10.0, 10.1, 10.1}
	for i, m := range p.RunningLog2Median {
		if math.Abs(m-want[i]) > 1e-12 {
			t.Fatalf("running median = %v, want %v", p.RunningLog2Median, want)
		}
	}
	if math.Abs(p.Spread-0.2) > 1e-12 {
		t.Fatalf("spread = %g, want 0.2", p.Spread)
	}
	if !p.Converged(2) {
		t.Fatal("trials within band but Converged(2) = false")
	}
	if p.Converged(0.1) {
		t.Fatal("spread 0.2 log₂ cannot converge at slack 0.1, ε 0.1")
	}
}

func TestConvergenceAllZero(t *testing.T) {
	c := NewConvergence()
	call := c.NextCall()
	for i := 0; i < 2; i++ {
		c.Record(TrialRecord{Call: call, Trial: i, Trials: 2, Log2Estimate: math.Inf(-1)})
	}
	p := c.Calls()[0]
	if p.Spread != 0 {
		t.Fatalf("all-zero call spread = %g, want 0", p.Spread)
	}
}

func TestWriteTraceAndReport(t *testing.T) {
	tr := NewTracer()
	r := NewRegistry()
	c := NewConvergence()
	sc := NewScope(tr, r, c)
	_, sp := sc.Span("pqe.ur_estimate")
	_, inner := sc.Span("count.trees")
	inner.End()
	sp.End()
	r.Counter("countnfta_trials_total").Add(5)
	c.Record(TrialRecord{Engine: "countnfta", Call: c.NextCall(), Trials: 1, Log2Estimate: 3})

	var trace strings.Builder
	if err := WriteTrace(&trace, tr, c, r); err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{`"pqe.ur_estimate"`, `"convergence"`, `"countnfta_trials_total": 5`} {
		if !strings.Contains(trace.String(), needle) {
			t.Fatalf("trace JSON missing %s:\n%s", needle, trace.String())
		}
	}

	var report strings.Builder
	if err := WriteReport(&report, tr, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.String(), "pqe.ur_estimate") || !strings.Contains(report.String(), "countnfta_trials_total") {
		t.Fatalf("report missing content:\n%s", report.String())
	}
}

// Zero-estimate trials (log₂ = −Inf) and the infinite spread of a call
// mixing zero and nonzero trials must still produce a valid trace —
// the non-finite values encode as null.
func TestWriteTraceZeroEstimate(t *testing.T) {
	c := NewConvergence()
	call := c.NextCall()
	c.Record(TrialRecord{Engine: "countnfa", Call: call, Trial: 0, Trials: 2, Log2Estimate: math.Inf(-1)})
	c.Record(TrialRecord{Engine: "countnfa", Call: call, Trial: 1, Trials: 2, Log2Estimate: 4})
	var sb strings.Builder
	if err := WriteTrace(&sb, nil, c, nil); err != nil {
		t.Fatalf("trace with a zero-estimate trial failed to marshal: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, `"log2_estimate": null`) {
		t.Errorf("zero estimate not encoded as null:\n%s", out)
	}
	if !strings.Contains(out, `"spread": null`) {
		t.Errorf("infinite spread not encoded as null:\n%s", out)
	}
	if !strings.Contains(out, `"log2_estimate": 4`) {
		t.Errorf("finite estimate missing:\n%s", out)
	}
}

func TestSpanDurationBeforeEnd(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("running")
	time.Sleep(time.Millisecond)
	if sp.Duration() <= 0 {
		t.Fatal("running span duration not positive")
	}
	sp.End()
}
