package obs

import (
	"sync/atomic"
	"time"
)

// Phase identifies one segment of a request's wall time. The service
// layer attributes every completed request to these four segments so an
// operator can tell queue pressure from build cost from sampling cost
// (see DESIGN.md §15).
type Phase int

const (
	// PhaseQueue is time spent waiting for admission: the budget
	// semaphore plus database/session lock waits.
	PhaseQueue Phase = iota
	// PhaseBuild is automaton/session construction (decomposition, UR
	// reduction, path NFA, weighting — incremental or full).
	PhaseBuild
	// PhaseSample is trial sampling: the estimate call minus its builds.
	PhaseSample
	// PhaseSerialize is response encoding and writing (per-event for
	// SSE streams).
	PhaseSerialize
	// NumPhases is the number of phases (array sizing).
	NumPhases
)

// phaseNames is indexed by Phase.
var phaseNames = [NumPhases]string{"queue", "build", "sample", "serialize"}

// String returns the phase's label value ("queue", "build", "sample",
// "serialize").
func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// PhaseNames returns the label values for all phases in order.
func PhaseNames() []string { return append([]string(nil), phaseNames[:]...) }

// Phases is a per-request phase accumulator: four atomic nanosecond
// tallies. It is the sink a request handler hands to the engine scope
// so lazily-triggered builds inside the estimate call are attributed to
// PhaseBuild of the request that paid for them. All methods are
// nil-safe no-ops, preserving the package's disabled-path contract.
type Phases struct {
	ns [NumPhases]atomic.Int64
}

// NewPhases returns an empty accumulator.
func NewPhases() *Phases { return &Phases{} }

// Add accrues d to phase p. No-op on a nil accumulator or an
// out-of-range phase.
func (ph *Phases) Add(p Phase, d time.Duration) {
	if ph == nil || p < 0 || p >= NumPhases {
		return
	}
	ph.ns[p].Add(int64(d))
}

// Duration returns the accrued time for phase p (0 on nil).
func (ph *Phases) Duration(p Phase) time.Duration {
	if ph == nil || p < 0 || p >= NumPhases {
		return 0
	}
	return time.Duration(ph.ns[p].Load())
}

// Total returns the sum over all phases (0 on nil).
func (ph *Phases) Total() time.Duration {
	if ph == nil {
		return 0
	}
	var t int64
	for i := range ph.ns {
		t += ph.ns[i].Load()
	}
	return time.Duration(t)
}

// Seconds returns the phase breakdown as a name→seconds map, the form
// the flight recorder and access log carry. Nil on a nil accumulator.
func (ph *Phases) Seconds() map[string]float64 {
	if ph == nil {
		return nil
	}
	m := make(map[string]float64, NumPhases)
	for i := range ph.ns {
		m[Phase(i).String()] = time.Duration(ph.ns[i].Load()).Seconds()
	}
	return m
}

// WithPhases returns a scope that carries ph as its phase sink; derived
// scopes inherit it. On a nil scope the result is nil (phases are only
// meaningful with instrumentation attached).
func (s *Scope) WithPhases(ph *Phases) *Scope {
	if s == nil {
		return nil
	}
	child := *s
	child.phases = ph
	return &child
}

// PhasesSink returns the scope's phase accumulator (nil when absent).
func (s *Scope) PhasesSink() *Phases {
	if s == nil {
		return nil
	}
	return s.phases
}

// AddPhase accrues d to phase p on the scope's accumulator; a no-op
// when the scope or its sink is nil.
func (s *Scope) AddPhase(p Phase, d time.Duration) { s.PhasesSink().Add(p, d) }

// WithRequestID returns a scope carrying the request correlation ID;
// derived scopes inherit it and root spans started from them record it
// as a "request_id" attribute. On a nil scope the result is nil.
func (s *Scope) WithRequestID(id string) *Scope {
	if s == nil || id == "" {
		return s
	}
	child := *s
	child.reqID = id
	return &child
}

// RequestID returns the scope's request correlation ID ("" when none).
func (s *Scope) RequestID() string {
	if s == nil {
		return ""
	}
	return s.reqID
}
