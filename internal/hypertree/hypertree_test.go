package hypertree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pqe/internal/cq"
)

func TestJoinTreePath(t *testing.T) {
	for n := 1; n <= 8; n++ {
		q := cq.PathQuery("R", n)
		d, err := JoinTree(q)
		if err != nil {
			t.Fatalf("JoinTree(path %d): %v", n, err)
		}
		if d.Width() != 1 {
			t.Errorf("path %d width = %d", n, d.Width())
		}
		if err := d.Validate(); err != nil {
			t.Errorf("path %d invalid: %v", n, err)
		}
		if !d.IsComplete() {
			t.Errorf("path %d join tree not complete", n)
		}
		if d.Size() != n {
			t.Errorf("path %d has %d vertices", n, d.Size())
		}
	}
}

func TestJoinTreeStar(t *testing.T) {
	q := cq.StarQuery("S", 4)
	d, err := JoinTree(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Error(err)
	}
	if d.Width() != 1 {
		t.Errorf("width = %d", d.Width())
	}
}

func TestJoinTreeRejectsCycle(t *testing.T) {
	for n := 3; n <= 6; n++ {
		q := cq.CycleQuery("C", n)
		if _, err := JoinTree(q); err == nil {
			t.Errorf("JoinTree accepted cycle of length %d", n)
		}
		if Acyclic(q) {
			t.Errorf("Acyclic(cycle %d) = true", n)
		}
	}
}

func TestAcyclicExamples(t *testing.T) {
	cases := []struct {
		q    string
		want bool
	}{
		{"R(x,y)", true},
		{"R(x,y), S(y,z)", true},
		{"R(x,y), S(y,z), T(z,x)", false}, // triangle
		{"R(x,y), S(y,z), T(z,w), U(w,y)", false},
		{"R(x,y,z), S(x,y), T(y,z)", true}, // ears into the wide atom
		{"A(x), B(x,y), C(y)", true},
	}
	for _, c := range cases {
		if got := Acyclic(cq.MustParse(c.q)); got != c.want {
			t.Errorf("Acyclic(%s) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestDecomposeWidthTriangle(t *testing.T) {
	q := cq.CycleQuery("C", 3)
	if _, err := DecomposeWidth(q, 1); err == nil {
		t.Error("triangle decomposed at width 1")
	}
	d, err := DecomposeWidth(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Width() > 2 {
		t.Errorf("width = %d", d.Width())
	}
	if err := d.Validate(); err != nil {
		t.Errorf("invalid decomposition: %v\n%s", err, d)
	}
	if !d.IsComplete() {
		t.Errorf("not complete:\n%s", d)
	}
}

func TestDecomposeWidthLongCycles(t *testing.T) {
	for n := 4; n <= 7; n++ {
		q := cq.CycleQuery("C", n)
		d, err := DecomposeWidth(q, 2)
		if err != nil {
			t.Fatalf("cycle %d at width 2: %v", n, err)
		}
		if err := d.Validate(); err != nil {
			t.Errorf("cycle %d invalid: %v\n%s", n, err, d)
		}
		if !d.IsComplete() {
			t.Errorf("cycle %d not complete", n)
		}
	}
}

func TestDecomposePicksMinimalWidth(t *testing.T) {
	d, err := Decompose(cq.PathQuery("R", 4))
	if err != nil {
		t.Fatal(err)
	}
	if d.Width() != 1 {
		t.Errorf("path width = %d", d.Width())
	}
	d, err = Decompose(cq.CycleQuery("C", 5))
	if err != nil {
		t.Fatal(err)
	}
	if d.Width() != 2 {
		t.Errorf("cycle width = %d", d.Width())
	}
}

func TestCoveringVertexMinimality(t *testing.T) {
	q := cq.PathQuery("R", 3)
	d, err := JoinTree(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range q.Atoms {
		cv := d.CoveringVertex(i)
		if cv == nil {
			t.Fatalf("atom %d has no covering vertex", i)
		}
		// Minimality: no vertex with smaller BFS ID also covers atom i.
		for _, n := range d.Nodes() {
			if n.ID < cv.ID && n.Covers(q, i) {
				t.Errorf("vertex %d covers atom %d but CoveringVertex returned %d", n.ID, i, cv.ID)
			}
		}
	}
}

func TestNodesBFSOrderRespectsDepth(t *testing.T) {
	q := cq.MustParse("R(x,y), S(y,z), T(y,w), U(w,v)")
	d, err := JoinTree(q)
	if err != nil {
		t.Fatal(err)
	}
	nodes := d.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i].Depth < nodes[i-1].Depth {
			t.Errorf("BFS order violates depth monotonicity at %d", i)
		}
		if nodes[i].ID != i {
			t.Errorf("node %d has ID %d", i, nodes[i].ID)
		}
	}
	if nodes[0] != d.Root || d.Root.Depth != 0 {
		t.Error("root not first in BFS order")
	}
}

func TestCompleteAddsCoveringVertices(t *testing.T) {
	// Hand-build a valid decomposition of R(x,y), S(y,z), T(y,z) where S
	// appears in no ξ at all: its variables are covered by the child's χ
	// (condition 1 holds), but no vertex is a covering vertex for it.
	q := cq.MustParse("R(x,y), S(y,z), T(y,z)")
	root := &Node{Chi: []string{"x", "y"}, Xi: []int{0}}
	child := &Node{Chi: []string{"y", "z"}, Xi: []int{2}}
	root.Children = []*Node{child}
	d := &Decomposition{Query: q, Root: root}
	d.finalize()
	if err := d.Validate(); err != nil {
		t.Fatalf("setup invalid: %v", err)
	}
	if d.IsComplete() {
		t.Fatal("setup unexpectedly complete")
	}
	if err := d.Complete(); err != nil {
		t.Fatal(err)
	}
	if !d.IsComplete() {
		t.Errorf("still incomplete:\n%s", d)
	}
	if err := d.Validate(); err != nil {
		t.Errorf("completion broke validity: %v", err)
	}
}

func TestValidateCatchesDisconnectedVariable(t *testing.T) {
	q := cq.MustParse("R(x,y), S(y,z), T(z,x)")
	// x appears at the root and a grandchild but not the middle node.
	root := &Node{Chi: []string{"x", "y"}, Xi: []int{0}}
	mid := &Node{Chi: []string{"y", "z"}, Xi: []int{1}}
	leaf := &Node{Chi: []string{"z", "x"}, Xi: []int{2}}
	mid.Children = []*Node{leaf}
	root.Children = []*Node{mid}
	d := &Decomposition{Query: q, Root: root}
	d.finalize()
	if err := d.Validate(); err == nil {
		t.Error("disconnected variable not detected")
	}
}

func TestValidateCatchesChiOutsideXi(t *testing.T) {
	q := cq.MustParse("R(x,y)")
	root := &Node{Chi: []string{"x", "y", "z"}, Xi: []int{0}}
	d := &Decomposition{Query: q, Root: root}
	d.finalize()
	if err := d.Validate(); err == nil {
		t.Error("χ ⊄ vars(ξ) not detected")
	}
}

func TestValidateCatchesUncoveredAtom(t *testing.T) {
	q := cq.MustParse("R(x,y), S(y,z)")
	root := &Node{Chi: []string{"x", "y"}, Xi: []int{0}}
	d := &Decomposition{Query: q, Root: root}
	d.finalize()
	if err := d.Validate(); err == nil {
		t.Error("uncovered atom not detected")
	}
}

// randomQuery builds a random connected SJF query with n binary atoms
// over ≤ n+1 variables.
func randomQuery(rng *rand.Rand, n int) *cq.Query {
	vars := make([]string, n+1)
	for i := range vars {
		vars[i] = string(rune('a' + i))
	}
	atoms := make([]cq.Atom, n)
	for i := 0; i < n; i++ {
		// Connect to a previously used variable to stay connected.
		v1 := vars[rng.Intn(i+1)]
		v2 := vars[rng.Intn(n+1)]
		for v2 == v1 {
			v2 = vars[rng.Intn(n+1)]
		}
		atoms[i] = cq.NewAtom(string(rune('R'))+string(rune('0'+i)), v1, v2)
	}
	return cq.New(atoms...)
}

// Property: Decompose always yields a valid, complete decomposition for
// random connected binary SJF queries, and GYO accepts exactly the
// queries where the width-1 search succeeds.
func TestQuickDecomposeValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQuery(rng, 2+rng.Intn(5))
		d, err := Decompose(q)
		if err != nil {
			return false
		}
		if err := d.Validate(); err != nil {
			t.Logf("invalid decomposition for %s: %v\n%s", q, err, d)
			return false
		}
		return d.IsComplete()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: for acyclic queries the minimal width found is 1.
func TestQuickAcyclicWidthOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		q := cq.PathQuery("R", n)
		d, err := Decompose(q)
		return err == nil && d.Width() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSnowflakeWidthOne(t *testing.T) {
	for _, arms := range []int{2, 3, 4} {
		q := cq.SnowflakeQuery("S", arms, 2)
		d, err := Decompose(q)
		if err != nil {
			t.Fatalf("arms=%d: %v", arms, err)
		}
		if d.Width() != 1 {
			t.Errorf("arms=%d width = %d", arms, d.Width())
		}
		if err := d.Validate(); err != nil {
			t.Errorf("arms=%d invalid: %v", arms, err)
		}
	}
}

func TestDecomposeK4(t *testing.T) {
	// The complete graph K4 as a query: six binary atoms over four
	// variables. Known ghw(K4) = 2; the search must find it and
	// validate.
	q := cq.MustParse("E1(a,b), E2(a,c), E3(a,d), E4(b,c), E5(b,d), E6(c,d)")
	d, err := Decompose(q)
	if err != nil {
		t.Fatal(err)
	}
	if d.Width() > 2 {
		t.Errorf("K4 width = %d, want ≤ 2", d.Width())
	}
	if err := d.Validate(); err != nil {
		t.Errorf("invalid: %v\n%s", err, d)
	}
	if !d.IsComplete() {
		t.Error("not complete")
	}
}

func TestDecomposeTwoTriangles(t *testing.T) {
	// Two triangles sharing a vertex: width 2, with branching structure.
	q := cq.MustParse("A1(x,y), A2(y,z), A3(z,x), B1(x,u), B2(u,v), B3(v,x)")
	d, err := Decompose(q)
	if err != nil {
		t.Fatal(err)
	}
	if d.Width() > 2 {
		t.Errorf("width = %d", d.Width())
	}
	if err := d.Validate(); err != nil {
		t.Errorf("invalid: %v\n%s", err, d)
	}
}
