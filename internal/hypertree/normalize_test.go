package hypertree

import (
	"testing"

	"pqe/internal/cq"
)

func TestBinarizeBoundsFanOut(t *testing.T) {
	q := cq.StarQuery("S", 6)
	d, err := JoinTree(q)
	if err != nil {
		t.Fatal(err)
	}
	b := d.Binarize()
	for _, n := range b.Nodes() {
		if len(n.Children) > 2 {
			t.Errorf("vertex %d has %d children", n.ID, len(n.Children))
		}
	}
	if err := b.Validate(); err != nil {
		t.Errorf("binarized decomposition invalid: %v\n%s", err, b)
	}
	if !b.IsComplete() {
		t.Error("binarized decomposition incomplete")
	}
	if b.Width() != d.Width() {
		t.Errorf("width changed: %d -> %d", d.Width(), b.Width())
	}
	// Every atom's minimal covering vertex must carry the same ξ as
	// before binarization (the duplicates sit deeper).
	for i := range q.Atoms {
		cv := b.CoveringVertex(i)
		if cv == nil {
			t.Fatalf("atom %d lost its covering vertex", i)
		}
	}
}

func TestBinarizeIdempotentOnBinaryTrees(t *testing.T) {
	q := cq.PathQuery("R", 4)
	d, err := JoinTree(q)
	if err != nil {
		t.Fatal(err)
	}
	b := d.Binarize()
	if b.Size() != d.Size() {
		t.Errorf("binarize changed size %d -> %d on a path decomposition", d.Size(), b.Size())
	}
}

func TestReRootAtCoveringVertex(t *testing.T) {
	// Build a decomposition whose root covers nothing: root χ={y},
	// ξ={R}, children cover R and S. Query R(x,y), S(y,z).
	q := cq.MustParse("R(x,y), S(y,z)")
	root := &Node{Chi: []string{"y"}, Xi: []int{0}}
	c1 := &Node{Chi: []string{"x", "y"}, Xi: []int{0}}
	c2 := &Node{Chi: []string{"y", "z"}, Xi: []int{1}}
	root.Children = []*Node{c1, c2}
	d := &Decomposition{Query: q, Root: root}
	d.finalize()
	if err := d.Validate(); err != nil {
		t.Fatalf("setup invalid: %v", err)
	}
	covers := func(n *Node) bool {
		for i := range q.Atoms {
			if n.Covers(q, i) {
				return true
			}
		}
		return false
	}
	if covers(d.Root) {
		t.Fatal("setup: root already covers an atom")
	}
	r, err := d.ReRootAtCoveringVertex()
	if err != nil {
		t.Fatal(err)
	}
	if !covers(r.Root) {
		t.Errorf("new root covers nothing:\n%s", r)
	}
	if err := r.Validate(); err != nil {
		t.Errorf("re-rooted decomposition invalid: %v\n%s", err, r)
	}
	if r.Size() != d.Size() {
		t.Errorf("re-rooting changed size %d -> %d", d.Size(), r.Size())
	}
	if !r.IsComplete() {
		t.Error("re-rooted decomposition incomplete")
	}
}

func TestReRootNoOpWhenRootCovers(t *testing.T) {
	q := cq.PathQuery("R", 3)
	d, err := JoinTree(q)
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.ReRootAtCoveringVertex()
	if err != nil {
		t.Fatal(err)
	}
	if r != d {
		t.Error("re-rooting was not a no-op for a covering root")
	}
}
