package hypertree

import (
	"fmt"
	"sort"
	"strings"

	"pqe/internal/cq"
)

// DecomposeWidth searches for a generalized hypertree decomposition of Q
// of width at most k, in the style of det-k-decomp (Gottlob and Samer):
// recursively guess a separator λ of at most k atoms, split the remaining
// atoms into components connected outside vars(λ), and decompose each
// component under the connector variables it shares with the separator.
// Memoization over (component, connector) keeps re-exploration down.
//
// The search is exponential in |Q| in the worst case (deciding ghw ≤ k is
// NP-hard for k ≥ 3), but queries in real workloads are short and of
// width ≤ 3, per the paper's motivation (§1).
func DecomposeWidth(q *cq.Query, k int) (*Decomposition, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("hypertree: width bound %d < 1", k)
	}
	s := &detkSearch{q: q, k: k, memo: make(map[string]*Node)}
	all := make([]int, len(q.Atoms))
	for i := range all {
		all[i] = i
	}
	root := s.decompose(all, nil)
	if root == nil {
		return nil, fmt.Errorf("hypertree: query %q has generalized hypertree width > %d", q, k)
	}
	d := &Decomposition{Query: q, Root: root}
	d.finalize()
	if err := d.Complete(); err != nil {
		return nil, err
	}
	return d, nil
}

type detkSearch struct {
	q    *cq.Query
	k    int
	memo map[string]*Node // (component, connector) -> solved subtree (nil means failure is NOT cached here; see failed)
	fail map[string]bool
}

func (s *detkSearch) key(comp []int, conn []string) string {
	var b strings.Builder
	for _, c := range comp {
		fmt.Fprintf(&b, "%d,", c)
	}
	b.WriteByte('|')
	for _, v := range conn {
		b.WriteString(v)
		b.WriteByte(',')
	}
	return b.String()
}

// decompose returns the root of a decomposition subtree covering the
// atoms of comp, whose root bag's χ contains every connector variable,
// or nil if none exists within width k.
func (s *detkSearch) decompose(comp []int, conn []string) *Node {
	sort.Ints(comp)
	sort.Strings(conn)
	key := s.key(comp, conn)
	if n, ok := s.memo[key]; ok {
		return cloneTree(n)
	}
	if s.fail == nil {
		s.fail = make(map[string]bool)
	}
	if s.fail[key] {
		return nil
	}

	compSet := make(map[int]bool, len(comp))
	for _, c := range comp {
		compSet[c] = true
	}

	// Enumerate candidate separators λ: subsets of atoms of size ≤ k,
	// smallest first so narrow bags are preferred.
	n := len(s.q.Atoms)
	var result *Node
	s.forEachSubset(n, func(lambda []int) bool {
		node := s.trySeparator(lambda, comp, compSet, conn)
		if node != nil {
			result = node
			return false
		}
		return true
	})
	if result != nil {
		s.memo[key] = cloneTree(result)
	} else {
		s.fail[key] = true
	}
	return result
}

// forEachSubset enumerates non-empty subsets of {0..n-1} of size ≤ k, in
// increasing size so narrow separators are preferred; it stops when f
// returns false.
func (s *detkSearch) forEachSubset(n int, f func([]int) bool) {
	for size := 1; size <= s.k && size <= n; size++ {
		stop := false
		var rec func(start int, cur []int)
		rec = func(start int, cur []int) {
			if stop {
				return
			}
			if len(cur) == size {
				tmp := make([]int, len(cur))
				copy(tmp, cur)
				if !f(tmp) {
					stop = true
				}
				return
			}
			for i := start; i < n; i++ {
				rec(i+1, append(cur, i))
				if stop {
					return
				}
			}
		}
		rec(0, nil)
		if stop {
			return
		}
	}
}

// trySeparator checks whether λ works as the root bag for (comp, conn)
// and, if so, recursively decomposes the sub-components.
func (s *detkSearch) trySeparator(lambda []int, comp []int, compSet map[int]bool, conn []string) *Node {
	lambdaVars := make(map[string]bool)
	for _, i := range lambda {
		for _, v := range s.q.Atoms[i].Vars {
			lambdaVars[v] = true
		}
	}
	// The bag must cover the connector to the parent.
	for _, v := range conn {
		if !lambdaVars[v] {
			return nil
		}
	}
	// χ(p) = vars(λ) ∩ (conn ∪ vars(comp)) keeps variable subtrees
	// connected.
	compVars := make(map[string]bool)
	for _, c := range comp {
		for _, v := range s.q.Atoms[c].Vars {
			compVars[v] = true
		}
	}
	connSet := make(map[string]bool, len(conn))
	for _, v := range conn {
		connSet[v] = true
	}
	var chi []string
	for v := range lambdaVars {
		if compVars[v] || connSet[v] {
			chi = append(chi, v)
		}
	}
	chiSet := make(map[string]bool, len(chi))
	for _, v := range chi {
		chiSet[v] = true
	}

	// Atoms of the component fully covered by χ are settled at this bag;
	// the rest split into components connected through variables ∉ χ.
	var rest []int
	for _, c := range comp {
		covered := true
		for _, v := range s.q.Atoms[c].Vars {
			if !chiSet[v] {
				covered = false
				break
			}
		}
		if !covered {
			rest = append(rest, c)
		}
	}
	subComps := components(s.q, rest, chiSet)
	// Progress check: every sub-component must be strictly smaller than
	// comp, otherwise the recursion could loop.
	for _, sc := range subComps {
		if len(sc) == len(comp) {
			return nil
		}
	}

	node := &Node{Chi: sortedUnique(chi), Xi: sortedCopy(lambda)}
	for _, sc := range subComps {
		// Connector: variables of the sub-component that appear in χ(p).
		scVars := make(map[string]bool)
		for _, c := range sc {
			for _, v := range s.q.Atoms[c].Vars {
				scVars[v] = true
			}
		}
		var subConn []string
		for v := range scVars {
			if chiSet[v] {
				subConn = append(subConn, v)
			}
		}
		child := s.decompose(sc, subConn)
		if child == nil {
			return nil
		}
		node.Children = append(node.Children, child)
	}
	return node
}

// components splits the atom set into connected components, where two
// atoms are adjacent if they share a variable not in the excluded set.
func components(q *cq.Query, atoms []int, excluded map[string]bool) [][]int {
	idx := make(map[int]int, len(atoms)) // atom -> position
	for pos, a := range atoms {
		idx[a] = pos
	}
	parent := make([]int, len(atoms))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	byVar := make(map[string]int)
	for pos, a := range atoms {
		for _, v := range q.Atoms[a].Vars {
			if excluded[v] {
				continue
			}
			if prev, ok := byVar[v]; ok {
				parent[find(pos)] = find(prev)
			} else {
				byVar[v] = pos
			}
		}
	}
	groups := make(map[int][]int)
	for pos, a := range atoms {
		r := find(pos)
		groups[r] = append(groups[r], a)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(groups))
	for _, r := range roots {
		sort.Ints(groups[r])
		out = append(out, groups[r])
	}
	return out
}

func cloneTree(n *Node) *Node {
	if n == nil {
		return nil
	}
	out := &Node{
		Chi: append([]string(nil), n.Chi...),
		Xi:  append([]int(nil), n.Xi...),
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, cloneTree(c))
	}
	return out
}

func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}

// Decompose finds a minimal-width decomposition: it first attempts a GYO
// join tree (width 1), then searches widths 2, 3, … up to |Q|. The
// result is always complete (every atom has a covering vertex).
func Decompose(q *cq.Query) (*Decomposition, error) {
	if d, err := JoinTree(q); err == nil {
		return d, nil
	}
	for k := 2; k <= len(q.Atoms); k++ {
		if d, err := DecomposeWidth(q, k); err == nil {
			return d, nil
		}
	}
	return nil, fmt.Errorf("hypertree: no decomposition found for %q", q)
}
