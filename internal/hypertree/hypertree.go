// Package hypertree implements (generalized) hypertree decompositions of
// conjunctive queries (Section 2 of the paper, after Gottlob, Leone and
// Scarcello). A hypertree for Q is a tree whose vertices p carry a
// variable label χ(p) ⊆ vars(Q) and an atom label ξ(p) ⊆ atoms(Q); a
// decomposition additionally satisfies the coverage, connectedness and
// χ ⊆ vars(ξ) conditions. The width is max_p |ξ(p)|.
//
// Two constructions are provided:
//
//   - GYO ear removal, producing width-1 join trees for α-acyclic queries
//     (every path query is acyclic, hence width 1 — §1.1);
//   - a det-k-decomp-style search producing width-k generalized hypertree
//     decompositions for cyclic queries. The paper notes (§2, end) that
//     its results apply equally to bounded *generalized* hypertree width,
//     and ghtw ≤ htw, so building GHDs only widens the class we handle.
//
// Decompositions can be completed (every atom gets a covering vertex, as
// the reduction in Proposition 1 requires) and validated.
package hypertree

import (
	"fmt"
	"sort"
	"strings"

	"pqe/internal/cq"
)

// Node is a vertex of a hypertree decomposition.
type Node struct {
	ID       int      // position in BFS order; assigned by finalize
	Chi      []string // χ(p): variables, sorted
	Xi       []int    // ξ(p): atom indices into the query, sorted
	Children []*Node
	Parent   *Node // nil at the root
	Depth    int   // distance from the root
}

// chiSet returns χ(p) as a set.
func (n *Node) chiSet() map[string]bool {
	s := make(map[string]bool, len(n.Chi))
	for _, v := range n.Chi {
		s[v] = true
	}
	return s
}

// Covers reports whether n is a covering vertex for the atom: the atom is
// in ξ(n) and all its variables are in χ(n).
func (n *Node) Covers(q *cq.Query, atomIdx int) bool {
	inXi := false
	for _, i := range n.Xi {
		if i == atomIdx {
			inXi = true
			break
		}
	}
	if !inXi {
		return false
	}
	chi := n.chiSet()
	for _, v := range q.Atoms[atomIdx].Vars {
		if !chi[v] {
			return false
		}
	}
	return true
}

// Decomposition is a hypertree decomposition of a query.
type Decomposition struct {
	Query *cq.Query
	Root  *Node
	nodes []*Node // BFS order; nodes[i].ID == i
}

// finalize assigns IDs and depths in BFS order. BFS order satisfies the
// paper's requirement on ≺vertices: p ≺ q whenever depth(p) ≤ depth(q)
// (within equal depth, the order is by discovery, which is fixed).
func (d *Decomposition) finalize() {
	d.nodes = d.nodes[:0]
	queue := []*Node{d.Root}
	d.Root.Parent = nil
	d.Root.Depth = 0
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		n.ID = len(d.nodes)
		d.nodes = append(d.nodes, n)
		for _, c := range n.Children {
			c.Parent = n
			c.Depth = n.Depth + 1
			queue = append(queue, c)
		}
	}
}

// Nodes returns the vertices in BFS order (the total order ≺vertices used
// by the reduction: non-decreasing depth).
func (d *Decomposition) Nodes() []*Node { return d.nodes }

// Size returns the number of vertices.
func (d *Decomposition) Size() int { return len(d.nodes) }

// Width returns max_p |ξ(p)|.
func (d *Decomposition) Width() int {
	w := 0
	for _, n := range d.nodes {
		if len(n.Xi) > w {
			w = len(n.Xi)
		}
	}
	return w
}

// CoveringVertex returns the ≺vertices-minimal covering vertex for the
// atom, or nil if none exists.
func (d *Decomposition) CoveringVertex(atomIdx int) *Node {
	for _, n := range d.nodes {
		if n.Covers(d.Query, atomIdx) {
			return n
		}
	}
	return nil
}

// IsComplete reports whether every atom has a covering vertex.
func (d *Decomposition) IsComplete() bool {
	for i := range d.Query.Atoms {
		if d.CoveringVertex(i) == nil {
			return false
		}
	}
	return true
}

// Complete ensures every atom has a covering vertex, using the paper's
// transformation: for an uncovered atom A, create a fresh vertex p_A with
// χ(p_A) = vars(A) and ξ(p_A) = {A}, attached as a child of a vertex p
// with vars(A) ⊆ χ(p) (which exists by the coverage condition).
func (d *Decomposition) Complete() error {
	for i, atom := range d.Query.Atoms {
		if d.CoveringVertex(i) != nil {
			continue
		}
		host := d.vertexCoveringVars(atom.Vars)
		if host == nil {
			return fmt.Errorf("hypertree: no vertex covers vars of atom %s; not a decomposition", atom)
		}
		child := &Node{
			Chi: sortedUnique(atom.Vars),
			Xi:  []int{i},
		}
		host.Children = append(host.Children, child)
	}
	d.finalize()
	return nil
}

func (d *Decomposition) vertexCoveringVars(vars []string) *Node {
	for _, n := range d.nodes {
		chi := n.chiSet()
		ok := true
		for _, v := range vars {
			if !chi[v] {
				ok = false
				break
			}
		}
		if ok {
			return n
		}
	}
	return nil
}

// Validate checks the generalized hypertree decomposition conditions:
//
//  1. every atom's variables are contained in some χ(p);
//  2. for every variable x, {p : x ∈ χ(p)} induces a connected subtree;
//  3. χ(p) ⊆ vars(ξ(p)) for every vertex p.
//
// (The paper's condition 4 distinguishes hypertree decompositions from
// generalized ones; the results hold for bounded ghw as well, which is
// what the constructions here produce.)
func (d *Decomposition) Validate() error {
	q := d.Query
	// Condition 1.
	for i, atom := range q.Atoms {
		if d.vertexCoveringVars(atom.Vars) == nil {
			return fmt.Errorf("hypertree: atom %s not covered by any vertex", atom)
		}
		_ = i
	}
	// Condition 2: connectedness per variable.
	for _, v := range q.Vars() {
		var with []*Node
		for _, n := range d.nodes {
			if n.chiSet()[v] {
				with = append(with, n)
			}
		}
		if len(with) == 0 {
			continue
		}
		// The set is connected iff every node in it except the
		// minimal-depth one has its parent in the set... not quite: the
		// induced subgraph is connected iff exactly one node of the set
		// has a parent outside the set (or is the root).
		inSet := make(map[*Node]bool, len(with))
		for _, n := range with {
			inSet[n] = true
		}
		tops := 0
		for _, n := range with {
			if n.Parent == nil || !inSet[n.Parent] {
				tops++
			}
		}
		if tops != 1 {
			return fmt.Errorf("hypertree: variable %s induces a disconnected subtree", v)
		}
	}
	// Condition 3.
	for _, n := range d.nodes {
		allowed := make(map[string]bool)
		for _, i := range n.Xi {
			for _, v := range q.Atoms[i].Vars {
				allowed[v] = true
			}
		}
		for _, v := range n.Chi {
			if !allowed[v] {
				return fmt.Errorf("hypertree: vertex %d has χ variable %s outside vars(ξ)", n.ID, v)
			}
		}
	}
	return nil
}

// String renders the decomposition as an indented tree.
func (d *Decomposition) String() string {
	var b strings.Builder
	var walk func(n *Node, indent string)
	walk = func(n *Node, indent string) {
		atoms := make([]string, len(n.Xi))
		for i, idx := range n.Xi {
			atoms[i] = d.Query.Atoms[idx].String()
		}
		fmt.Fprintf(&b, "%s[%d] χ={%s} ξ={%s}\n", indent, n.ID,
			strings.Join(n.Chi, ","), strings.Join(atoms, " "))
		for _, c := range n.Children {
			walk(c, indent+"  ")
		}
	}
	walk(d.Root, "")
	return b.String()
}

func sortedUnique(xs []string) []string {
	seen := make(map[string]bool, len(xs))
	out := make([]string, 0, len(xs))
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Strings(out)
	return out
}
