package hypertree

import (
	"fmt"

	"pqe/internal/cq"
)

// JoinTree builds a width-1 decomposition (a join tree) for an α-acyclic
// query using GYO ear removal: repeatedly remove an atom A (an "ear")
// whose variables shared with the rest of the query are all contained in
// some witness atom B, attaching A's vertex beneath B's. It returns an
// error if the query is cyclic.
//
// Every vertex has ξ(p) = {A} and χ(p) = vars(A), so the result is
// automatically complete: each atom is covered by its own vertex.
func JoinTree(q *cq.Query) (*Decomposition, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	n := len(q.Atoms)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	remaining := n

	varSets := make([]map[string]bool, n)
	for i, a := range q.Atoms {
		varSets[i] = a.VarSet()
	}

	for remaining > 1 {
		removed := false
		for i := 0; i < n && !removed; i++ {
			if !alive[i] {
				continue
			}
			// Shared variables of atom i with the other alive atoms.
			shared := make(map[string]bool)
			for v := range varSets[i] {
				for j := 0; j < n; j++ {
					if j != i && alive[j] && varSets[j][v] {
						shared[v] = true
						break
					}
				}
			}
			// Find a witness atom containing all shared variables.
			for j := 0; j < n; j++ {
				if j == i || !alive[j] {
					continue
				}
				if containsAll(varSets[j], shared) {
					alive[i] = false
					parent[i] = j
					remaining--
					removed = true
					break
				}
			}
		}
		if !removed {
			return nil, fmt.Errorf("hypertree: query %q is cyclic (GYO reduction stalled)", q)
		}
	}

	// The last alive atom is the root; build nodes along parent pointers.
	rootIdx := -1
	for i := 0; i < n; i++ {
		if alive[i] {
			rootIdx = i
			break
		}
	}
	nodes := make([]*Node, n)
	for i, a := range q.Atoms {
		nodes[i] = &Node{Chi: sortedUnique(a.Vars), Xi: []int{i}}
	}
	for i := 0; i < n; i++ {
		if i == rootIdx {
			continue
		}
		p := parent[i]
		nodes[p].Children = append(nodes[p].Children, nodes[i])
	}
	d := &Decomposition{Query: q, Root: nodes[rootIdx]}
	d.finalize()
	return d, nil
}

func containsAll(set, subset map[string]bool) bool {
	for v := range subset {
		if !set[v] {
			return false
		}
	}
	return true
}

// Acyclic reports whether the query is α-acyclic, i.e. admits a width-1
// join tree.
func Acyclic(q *cq.Query) bool {
	_, err := JoinTree(q)
	return err == nil
}
