package hypertree

import "fmt"

// ReRootAtCoveringVertex re-roots the decomposition at a vertex that is
// a covering vertex of some atom, and returns the rewritten
// decomposition. After re-rooting, that vertex has BFS ID 0 and is
// therefore the ≺vertices-minimal covering vertex of the atoms it
// covers, which the Proposition 1 construction relies on (footnote 1 of
// the paper: the tree root must be a covering vertex, or the contracted
// encoding tree would be a forest).
//
// All decomposition conditions are properties of the undirected tree, so
// re-rooting preserves validity. The decomposition must be complete.
func (d *Decomposition) ReRootAtCoveringVertex() (*Decomposition, error) {
	var pivot *Node
	for _, n := range d.nodes {
		for i := range d.Query.Atoms {
			if n.Covers(d.Query, i) {
				pivot = n
				break
			}
		}
		if pivot != nil {
			break
		}
	}
	if pivot == nil {
		return nil, fmt.Errorf("hypertree: no covering vertex found; decomposition incomplete")
	}
	if pivot == d.Root {
		return d, nil
	}

	// Build the undirected adjacency, then orient away from the pivot.
	adj := make(map[*Node][]*Node)
	for _, n := range d.nodes {
		for _, c := range n.Children {
			adj[n] = append(adj[n], c)
			adj[c] = append(adj[c], n)
		}
	}
	cloneOf := make(map[*Node]*Node, len(d.nodes))
	for _, n := range d.nodes {
		cloneOf[n] = &Node{
			Chi: append([]string(nil), n.Chi...),
			Xi:  append([]int(nil), n.Xi...),
		}
	}
	visited := map[*Node]bool{pivot: true}
	queue := []*Node{pivot}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, nb := range adj[n] {
			if visited[nb] {
				continue
			}
			visited[nb] = true
			cloneOf[n].Children = append(cloneOf[n].Children, cloneOf[nb])
			queue = append(queue, nb)
		}
	}
	out := &Decomposition{Query: d.Query, Root: cloneOf[pivot]}
	out.finalize()
	return out, nil
}

// Binarize rewrites the decomposition so every vertex has at most two
// children, by threading surplus children through fresh intermediate
// vertices that duplicate the parent's χ and ξ. Width is unchanged and
// all conditions are preserved; duplicated vertices sit strictly deeper
// than their originals, so ≺vertices-minimal covering vertices are
// unchanged.
//
// Bounding the fan-out bounds the children-tuple length of the automaton
// transitions in the Proposition 1 construction, keeping the transition
// relation polynomial in |Q| and |D| (each transition combines the
// parent state with at most two child states).
func (d *Decomposition) Binarize() *Decomposition {
	var build func(n *Node) *Node
	build = func(n *Node) *Node {
		out := &Node{
			Chi: append([]string(nil), n.Chi...),
			Xi:  append([]int(nil), n.Xi...),
		}
		children := make([]*Node, len(n.Children))
		for i, c := range n.Children {
			children[i] = build(c)
		}
		cur := out
		for len(children) > 2 {
			mid := &Node{
				Chi: append([]string(nil), n.Chi...),
				Xi:  append([]int(nil), n.Xi...),
			}
			cur.Children = []*Node{children[0], mid}
			children = children[1:]
			cur = mid
		}
		cur.Children = children
		return out
	}
	out := &Decomposition{Query: d.Query, Root: build(d.Root)}
	out.finalize()
	return out
}
