package splitmix

import (
	"math"
	"testing"
)

// The determinism contract of both counting engines rests on these
// exact output sequences: a change here silently reshuffles every
// sampling site, so the golden values below pin the generator across
// versions. New(0) is the canonical splitmix64 reference sequence.
func TestGoldenSequences(t *testing.T) {
	cases := []struct {
		name string
		s    Stream
		want []uint64
	}{
		{"New(0)", New(0), []uint64{
			0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f, 0xf88bb8a8724c81ec,
		}},
		{"New(0x12345678)", New(0x12345678), []uint64{
			0x38f1dc39d1906b6f, 0xdfe4142236dd9517, 0x30c0356884c4f31f, 0x3e293305663e57f9,
		}},
		{"Derive(1,2,3)", Derive(1, 2, 3), []uint64{
			0xb07dd5b410ba7db5, 0x9805f7c0970479cb, 0xbfaa7c4c7e1a7b2d,
		}},
		{"Derive(-7,0xdeadbeef,41)", Derive(-7, 0xdeadbeef, 41), []uint64{
			0x953c5c2b4754427d, 0x4070b25d6801e410, 0xea5a0ae079e68f26,
		}},
	}
	for _, c := range cases {
		for i, want := range c.want {
			if got := c.s.Uint64(); got != want {
				t.Errorf("%s output %d = %#016x, want %#016x", c.name, i, got, want)
			}
		}
	}
}

// Derive is a pure function of (seed, site, idx): re-deriving yields an
// identical stream, which is what makes per-sample streams independent
// of goroutine scheduling.
func TestDeriveIsReproducible(t *testing.T) {
	a := Derive(42, 7, 1000)
	b := Derive(42, 7, 1000)
	for i := 0; i < 16; i++ {
		x, y := a.Uint64(), b.Uint64()
		if x != y {
			t.Fatalf("re-derived stream diverged at output %d: %#x vs %#x", i, x, y)
		}
	}
}

// Neighbouring coordinates must give decorrelated streams: across a
// grid of (seed, site, idx) perturbations, all first outputs are
// pairwise distinct. A collision here means two sampling sites share a
// random stream — exactly the bug class the testkit mutation table
// exercises.
func TestDeriveStreamsAreDistinct(t *testing.T) {
	seen := make(map[uint64][3]int64)
	emit := func(seed int64, site uint64, idx int) {
		s := Derive(seed, site, idx)
		v := s.Uint64()
		key := [3]int64{seed, int64(site), int64(idx)}
		if prev, ok := seen[v]; ok {
			t.Fatalf("streams %v and %v collide on first output %#x", prev, key, v)
		}
		seen[v] = key
	}
	for seed := int64(0); seed < 8; seed++ {
		for site := uint64(0); site < 8; site++ {
			for idx := 0; idx < 64; idx++ {
				emit(seed, site, idx)
			}
		}
	}
	// The top-sampler salt must not alias any per-site stream.
	emit(1, TopSamplerSalt, 0)
}

// Uniformity smoke test: per-stream means over [0,1) concentrate around
// 1/2, and adjacent Derive streams are (empirically) uncorrelated.
func TestDeriveStreamStatistics(t *testing.T) {
	const streams, draws = 64, 512
	for s := 0; s < streams; s++ {
		r := Derive(9, 1, s)
		sum := 0.0
		for i := 0; i < draws; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				t.Fatalf("Float64 out of range: %v", f)
			}
			sum += f
		}
		mean := sum / draws
		// σ of the mean is 1/√(12·draws) ≈ 0.0128; allow 5σ.
		if math.Abs(mean-0.5) > 0.064 {
			t.Errorf("stream %d mean = %v, want ≈ 0.5", s, mean)
		}
	}
	// Cross-stream correlation between consecutive sample indices.
	a, b := Derive(9, 2, 0), Derive(9, 2, 1)
	var sx, sy, sxy float64
	for i := 0; i < 4096; i++ {
		x, y := a.Float64()-0.5, b.Float64()-0.5
		sx += x * x
		sy += y * y
		sxy += x * y
	}
	if r := sxy / math.Sqrt(sx*sy); math.Abs(r) > 0.08 {
		t.Errorf("adjacent streams correlate: r = %v", r)
	}
}

func TestFloat64HalfOpenRange(t *testing.T) {
	// The max representable output maps strictly below 1.
	s := Stream{}
	_ = s
	f := float64((uint64(1)<<53)-1) / (1 << 53)
	if f >= 1 {
		t.Fatal("Float64 scaling admits 1.0")
	}
}

// TestDeriveGoldenByIndex pins the first word of Derive(42, 0x10, idx)
// for idx 0..7. Trial sharding partitions schedules into contiguous
// index ranges and rests on derivation depending only on (seed, site,
// idx) — a change to these values would silently break the
// distributed/local bit-identity contract, not just reshuffle
// statistics. The split check makes the range-independence explicit:
// generating [0,3) and [3,8) on "different workers" yields exactly the
// full sequence.
func TestDeriveGoldenByIndex(t *testing.T) {
	want := []uint64{
		0x54356cc557847cb8,
		0x1d52f5f097eaffb7,
		0xdc7f001ca7681805,
		0xf3bbb78172156b76,
		0xab8babb0561bbdd9,
		0xe1f8025d80310e2b,
		0xd8ef5e2e46acd932,
		0x779a37ff30d1d1d1,
	}
	for idx, w := range want {
		s := Derive(42, 0x10, idx)
		if got := s.Uint64(); got != w {
			t.Errorf("Derive(42, 0x10, %d).Uint64() = %#x, want %#x", idx, got, w)
		}
	}
	var joined []uint64
	for _, r := range [][2]int{{0, 3}, {3, 8}} {
		for idx := r[0]; idx < r[1]; idx++ {
			s := Derive(42, 0x10, idx)
			joined = append(joined, s.Uint64())
		}
	}
	for i := range want {
		if joined[i] != want[i] {
			t.Fatalf("partitioned generation diverges at index %d: %#x != %#x", i, joined[i], want[i])
		}
	}
}

// TestDeriveShardIndependence checks the streams backing disjoint trial
// ranges of one schedule — same (seed, site), disjoint index ranges as
// assigned to different shard workers — are mutually independent in
// the ways the estimator relies on: no colliding streams, and no bit
// bias across each range's outputs.
func TestDeriveShardIndependence(t *testing.T) {
	const seed, site = 7, 0x22
	const perRange, ranges, words = 256, 4, 4
	seen := make(map[uint64][2]int, perRange*ranges)
	for r := 0; r < ranges; r++ {
		var ones int
		for i := 0; i < perRange; i++ {
			idx := r*perRange + i
			s := Derive(seed, site, idx)
			for w := 0; w < words; w++ {
				v := s.Uint64()
				if w == 0 {
					if prev, dup := seen[v]; dup {
						t.Fatalf("first word collision between idx %d and range %d idx %d", idx, prev[0], prev[1])
					}
					seen[v] = [2]int{r, idx}
				}
				ones += popcount(v)
			}
		}
		// Each range's pooled output must be bit-balanced: 256·4·64 =
		// 65536 bits, so a fair coin stays within ±4σ = ±512 of 32768.
		total := perRange * words * 64
		if d := ones - total/2; d < -512 || d > 512 {
			t.Errorf("range %d bit bias: %d ones of %d bits", r, ones, total)
		}
	}
	// Cross-range correlation: XOR of corresponding outputs across two
	// ranges must itself look uniform (a correlated pair would bias it).
	var ones int
	for i := 0; i < perRange; i++ {
		a := Derive(seed, site, i)
		b := Derive(seed, site, perRange+i)
		ones += popcount(a.Uint64() ^ b.Uint64())
	}
	total := perRange * 64
	if d := ones - total/2; d < -256 || d > 256 {
		t.Errorf("cross-range XOR bias: %d ones of %d bits", ones, total)
	}
}

func popcount(v uint64) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}
