// Package splitmix provides the splitmix64 PRNG the counting engines
// (internal/count for trees, internal/nfa for strings) use to derive
// one statistically independent random stream per overlap sample.
//
// A Stream is a value type with one word of state, so a fresh stream
// can be materialized per sample without allocation. The determinism
// contract of both engines rests on this: each sample's stream depends
// only on (trial seed, sampling site, sample index), never on which
// goroutine runs it, so estimates are bit-identical at every Workers
// setting for a fixed seed.
package splitmix

// Stream is a splitmix64 PRNG.
type Stream struct{ state uint64 }

// New returns a stream seeded with the raw state word.
func New(state uint64) Stream { return Stream{state: state} }

// Uint64 returns the next 64 uniform bits.
func (r *Stream) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Derive builds the PRNG for one overlap sample from the trial seed,
// the per-estimator sampling-site sequence number and the sample
// index. Distinct odd multipliers decorrelate the coordinates; the
// splitmix64 output finalizer does the rest.
func Derive(seed int64, site uint64, idx int) Stream {
	x := uint64(seed)*0x9e3779b97f4a7c15 ^ site*0xbf58476d1ce4e5b9 ^ uint64(idx)*0x94d049bb133111eb
	return Stream{state: x}
}

// TopSamplerSalt separates an estimator's persistent top-level sampling
// stream (tree/word sampling APIs) from the per-site overlap streams.
const TopSamplerSalt = 0xd1b54a32d192ed03
