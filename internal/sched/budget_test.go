package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBudgetTryAcquire(t *testing.T) {
	b := NewBudget(4)
	if got := b.TryAcquire(3); got != 3 {
		t.Fatalf("TryAcquire(3) = %d, want 3", got)
	}
	if got := b.TryAcquire(2); got != 0 {
		t.Fatalf("TryAcquire(2) over capacity = %d, want 0", got)
	}
	if got := b.InUse(); got != 3 {
		t.Fatalf("InUse = %d, want 3", got)
	}
	b.Release(3)
	// Requests clamp to capacity instead of deadlocking.
	if got := b.TryAcquire(99); got != 4 {
		t.Fatalf("TryAcquire(99) = %d, want clamp to 4", got)
	}
	b.Release(4)
	if got := b.TryAcquire(0); got != 1 {
		t.Fatalf("TryAcquire(0) = %d, want clamp to 1", got)
	}
	b.Release(1)
}

func TestBudgetFIFO(t *testing.T) {
	b := NewBudget(4)
	if _, err := b.Acquire(context.Background(), 4); err != nil {
		t.Fatal(err)
	}

	// Full-capacity requests so grants serialize: waiter i+1 can only
	// be granted after waiter i releases, making the grant order
	// exactly the queue order. Each waiter is launched only after the
	// previous one is observably enqueued, so the queue order is
	// deterministic too.
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 1; i <= 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			n, err := b.Acquire(context.Background(), 4)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			b.Release(n)
		}()
		for b.Waiting() != i {
			time.Sleep(time.Millisecond)
		}
	}
	b.Release(4)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("grant order = %v, want [1 2 3]", order)
	}
}

// TestBudgetNoOvertake: with a waiter queued, a non-blocking acquire
// is refused even when enough tokens are free for it — narrow requests
// must not starve a wide waiter.
func TestBudgetNoOvertake(t *testing.T) {
	b := NewBudget(4)
	if _, err := b.Acquire(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		n, err := b.Acquire(context.Background(), 2) // needs 2, only 1 free
		if err != nil {
			t.Errorf("wide waiter: %v", err)
			return
		}
		b.Release(n)
	}()
	for b.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	if got := b.TryAcquire(1); got != 0 {
		t.Errorf("TryAcquire(1) = %d with a queued waiter, want 0 (no overtaking)", got)
	}
	b.Release(3)
	<-done
}

func TestBudgetAcquireCancel(t *testing.T) {
	b := NewBudget(2)
	if _, err := b.Acquire(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := b.Acquire(ctx, 1)
		errc <- err
	}()
	for b.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("Acquire after cancel: err = %v, want context.Canceled", err)
	}
	if got := b.Waiting(); got != 0 {
		t.Fatalf("Waiting after cancel = %d, want 0", got)
	}
	// The abandoned waiter must not wedge the queue: a later waiter
	// still gets granted on release.
	go func() {
		n, err := b.Acquire(context.Background(), 2)
		if err == nil {
			b.Release(n)
		}
		errc <- err
	}()
	for b.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	b.Release(2)
	if err := <-errc; err != nil {
		t.Fatalf("post-cancel Acquire: %v", err)
	}
}

func TestBudgetCancelledBeforeAcquire(t *testing.T) {
	b := NewBudget(2)
	if _, err := b.Acquire(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if n, err := b.Acquire(ctx, 1); n != 0 || !errors.Is(err, context.Canceled) {
		t.Fatalf("Acquire(cancelled) = (%d, %v), want (0, context.Canceled)", n, err)
	}
	b.Release(2)
}

// TestBudgetStress hammers the budget from many goroutines and checks
// the capacity invariant is never violated. Run under -race for the
// concurrency guarantees.
func TestBudgetStress(t *testing.T) {
	const cap = 6
	b := NewBudget(cap)
	var inUse, peak atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 24; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				want := 1 + (g+i)%cap
				ctx := context.Background()
				var cancel context.CancelFunc
				if (g+i)%7 == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Microsecond)
				}
				n, err := b.Acquire(ctx, want)
				if cancel != nil {
					cancel()
				}
				if err != nil {
					continue
				}
				cur := inUse.Add(int64(n))
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				if cur > cap {
					t.Errorf("in-use %d exceeds capacity %d", cur, cap)
				}
				inUse.Add(-int64(n))
				b.Release(n)
			}
		}()
	}
	wg.Wait()
	if b.InUse() != 0 {
		t.Errorf("InUse after drain = %d, want 0", b.InUse())
	}
	if b.Waiting() != 0 {
		t.Errorf("Waiting after drain = %d, want 0", b.Waiting())
	}
	if peak.Load() == 0 {
		t.Error("no acquisition ever succeeded")
	}
}

func TestBudgetObserverEvents(t *testing.T) {
	b := NewBudget(2)
	var mu sync.Mutex
	var events []BudgetEvent
	b.SetObserver(func(ev BudgetEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})

	// Immediate admit: one "admitted" event with zero wait.
	n, err := b.AcquireTagged(context.Background(), 2, "req-a")
	if err != nil || n != 2 {
		t.Fatalf("AcquireTagged = (%d, %v)", n, err)
	}
	mu.Lock()
	if len(events) != 1 || events[0].Kind != "admitted" || events[0].Tag != "req-a" ||
		events[0].Waited != 0 || events[0].InUse != 2 || events[0].Capacity != 2 {
		t.Fatalf("immediate admit events = %+v", events)
	}
	mu.Unlock()

	// Full budget: the next caller queues, then admits once released.
	done := make(chan struct{})
	go func() {
		defer close(done)
		n, err := b.AcquireTagged(context.Background(), 1, "req-b")
		if err != nil || n != 1 {
			t.Errorf("queued AcquireTagged = (%d, %v)", n, err)
			return
		}
		b.Release(1)
	}()
	for b.Waiting() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	b.Release(2)
	<-done
	mu.Lock()
	kinds := make(map[string]int)
	var admittedWait time.Duration
	for _, ev := range events {
		if ev.Tag == "req-b" {
			kinds[ev.Kind]++
			if ev.Kind == "admitted" {
				admittedWait = ev.Waited
			}
		}
	}
	mu.Unlock()
	if kinds["queued"] != 1 || kinds["admitted"] != 1 || kinds["shed"] != 0 {
		t.Fatalf("queued-request event kinds = %v, want one queued + one admitted", kinds)
	}
	if admittedWait <= 0 {
		t.Fatalf("admitted-after-queue Waited = %v, want > 0", admittedWait)
	}

	// Cancellation while queued: a "shed" event.
	n, _ = b.AcquireTagged(context.Background(), 2, "req-c")
	if n != 2 {
		t.Fatal("setup acquire failed")
	}
	ctx, cancel := context.WithCancel(context.Background())
	shedDone := make(chan struct{})
	go func() {
		defer close(shedDone)
		if n, err := b.AcquireTagged(ctx, 1, "req-d"); err == nil {
			t.Errorf("cancelled acquire succeeded with %d tokens", n)
		}
	}()
	for b.Waiting() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	<-shedDone
	b.Release(2)
	mu.Lock()
	shed := 0
	for _, ev := range events {
		if ev.Tag == "req-d" && ev.Kind == "shed" {
			shed++
		}
	}
	mu.Unlock()
	if shed != 1 {
		t.Fatalf("shed events for cancelled waiter = %d, want 1", shed)
	}

	// Removing the observer silences events.
	b.SetObserver(nil)
	before := len(events)
	b.Acquire(context.Background(), 1)
	b.Release(1)
	if len(events) != before {
		t.Fatal("events after observer removal")
	}
}
