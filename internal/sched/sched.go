// Package sched implements the work-stealing scheduler shared by the
// approximate counting engines (internal/count for trees, internal/nfa
// for strings). One call spawns one bounded pool of workers; work items
// are whole trials (independent median-boosted estimates) and, inside a
// trial, contiguous chunks of an overlap-sampling loop. A worker first
// claims trials; when none remain it steals sample chunks from any
// in-flight trial, so a straggler trial never leaves workers idle — the
// failure mode of the previous per-trial goroutine × per-site worker
// pool split.
//
// Determinism is the caller's contract, not the scheduler's: both
// engines derive one PRNG per sample from (trial seed, site, sample
// index) and combine chunk results by integer addition, so any
// partition of the sample range across any number of workers yields
// bit-identical estimates. The scheduler only ever changes *who* runs a
// chunk, never what the chunk computes.
package sched

import (
	"context"
	"runtime/pprof"
	"sync"
	"time"
)

// Config configures one Run call.
type Config struct {
	// Procs is the worker count (the caller's goroutine is worker 0;
	// Procs−1 more are spawned). Values ≤ 1 run everything inline on the
	// caller with no locking.
	Procs int
	// Trials is the number of trial work items, dispatched to body in
	// index order.
	Trials int
	// Timed enables per-chunk busy-time measurement (Stats.BusyNs).
	Timed bool
	// Labels are pprof label key/value pairs applied to spawned workers.
	Labels []string
}

// Stats reports what one Run did, for the engines' telemetry registry.
type Stats struct {
	Procs    int
	Spawns   int64 // goroutines spawned (Procs−1; 0 inline)
	Batches  int64 // Sum calls that went through the shared queue
	Chunks   int64 // chunks executed through the queue
	Steals   int64 // chunks executed by a worker other than the batch owner
	MaxQueue int   // peak number of unclaimed chunks
	BusyNs   int64 // summed chunk execution time (Timed only)
}

// Accumulate folds another Run's statistics into s (keeping the larger
// MaxQueue) — the anytime engines run one scheduler pool per trial
// batch and report the batches' combined effort.
func (s *Stats) Accumulate(o Stats) {
	if o.Procs > s.Procs {
		s.Procs = o.Procs
	}
	s.Spawns += o.Spawns
	s.Batches += o.Batches
	s.Chunks += o.Chunks
	s.Steals += o.Steals
	s.BusyNs += o.BusyNs
	if o.MaxQueue > s.MaxQueue {
		s.MaxQueue = o.MaxQueue
	}
}

// Worker is the execution context handed to trial bodies and chunk
// functions. Its ID is a dense index in [0, Procs), stable for the
// worker's lifetime, so callers can maintain worker-local scratch
// (samplers) in a flat slice.
type Worker struct {
	p      *pool
	id     int
	steals int64
	chunks int64
	busyNs int64
}

// ID returns the worker's dense index in [0, Procs).
func (w *Worker) ID() int { return w.id }

// batch is one Sum call's chunk queue: the half-open range [0, n) cut
// into ⌈n/grain⌉ chunks, claimed in order. Chunk i covers
// [i·grain, min((i+1)·grain, n)). All fields are guarded by the pool
// mutex except fn, owner, n, grain and nchunks, which are frozen before
// the batch is published.
type batch struct {
	owner   int
	fn      func(w *Worker, start, end int) int
	n       int
	grain   int
	nchunks int
	next    int   // next unclaimed chunk index
	running int   // claimed but unfinished chunks
	total   int64 // accumulated chunk results
}

type pool struct {
	mu   sync.Mutex
	cond *sync.Cond
	cfg  Config
	body func(w *Worker, trial int)

	nextTrial  int
	doneTrials int
	batches    []*batch
	queued     int // unclaimed chunks across all batches
	maxQueue   int
	nbatches   int64
}

// chunksPerWorker targets this many chunks per worker and batch: enough
// slack that an early-finishing worker finds something to steal, few
// enough that queue traffic stays negligible next to the sampling work.
const chunksPerWorker = 4

// minGrain is the smallest chunk worth a trip through the queue: below
// this, mutex traffic would rival the sampling work itself.
const minGrain = 32

// Run executes body for every trial index in [0, Trials) across a pool
// of cfg.Procs workers and returns the scheduling statistics. The
// caller's goroutine participates as worker 0; Run returns when every
// trial (and every chunk its body fanned out) has completed.
func Run(cfg Config, body func(w *Worker, trial int)) Stats {
	if cfg.Trials <= 0 {
		return Stats{Procs: 1}
	}
	if cfg.Procs <= 1 {
		w := &Worker{}
		for t := 0; t < cfg.Trials; t++ {
			body(w, t)
		}
		return Stats{Procs: 1}
	}
	p := &pool{cfg: cfg, body: body}
	p.cond = sync.NewCond(&p.mu)
	workers := make([]*Worker, cfg.Procs)
	for i := range workers {
		workers[i] = &Worker{p: p, id: i}
	}
	var wg sync.WaitGroup
	for i := 1; i < cfg.Procs; i++ {
		wg.Add(1)
		go func(w *Worker) {
			defer wg.Done()
			if len(cfg.Labels) > 0 {
				pprof.Do(context.Background(), pprof.Labels(cfg.Labels...), func(context.Context) {
					p.loop(w)
				})
			} else {
				p.loop(w)
			}
		}(workers[i])
	}
	p.loop(workers[0])
	wg.Wait()
	st := Stats{
		Procs:    cfg.Procs,
		Spawns:   int64(cfg.Procs - 1),
		Batches:  p.nbatches,
		MaxQueue: p.maxQueue,
	}
	for _, w := range workers {
		st.Steals += w.steals
		st.Chunks += w.chunks
		st.BusyNs += w.busyNs
	}
	return st
}

// loop is one worker's scheduling loop: claim trials while any remain,
// then steal chunks, then sleep until new work or completion.
func (p *pool) loop(w *Worker) {
	p.mu.Lock()
	for {
		if p.nextTrial < p.cfg.Trials {
			t := p.nextTrial
			p.nextTrial++
			p.mu.Unlock()
			p.body(w, t)
			p.mu.Lock()
			p.doneTrials++
			if p.doneTrials == p.cfg.Trials {
				p.cond.Broadcast()
			}
			continue
		}
		if b, lo, hi := p.claimLocked(); b != nil {
			if b.owner != w.id {
				w.steals++
			}
			p.runChunkLocked(w, b, lo, hi)
			continue
		}
		if p.doneTrials == p.cfg.Trials {
			break
		}
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// claimLocked pops the next unclaimed chunk of any in-flight batch.
func (p *pool) claimLocked() (*batch, int, int) {
	for _, b := range p.batches {
		if b.next < b.nchunks {
			i := b.next
			b.next++
			b.running++
			p.queued--
			lo := i * b.grain
			hi := lo + b.grain
			if hi > b.n {
				hi = b.n
			}
			return b, lo, hi
		}
	}
	return nil, 0, 0
}

// runChunkLocked executes one claimed chunk (dropping the pool lock for
// the duration), folds its result into the batch, and wakes the owner
// in case this was the batch's last outstanding chunk. Called with the
// lock held; returns with it held.
func (p *pool) runChunkLocked(w *Worker, b *batch, lo, hi int) {
	w.chunks++
	p.mu.Unlock()
	var t0 time.Time
	if p.cfg.Timed {
		t0 = time.Now()
	}
	r := b.fn(w, lo, hi)
	if p.cfg.Timed {
		w.busyNs += time.Since(t0).Nanoseconds()
	}
	p.mu.Lock()
	b.total += int64(r)
	b.running--
	if b.running == 0 && b.next == b.nchunks {
		p.cond.Broadcast()
	}
}

// Sum evaluates Σ fn(w, lo, hi) over a partition of [0, n) into
// contiguous chunks and returns the total. On a single-proc pool (or
// for ranges too small to cut) it is one inline call. Otherwise the
// chunks are published to the pool: idle workers steal them while the
// submitting worker processes its own share, helps other batches, and
// blocks until its last chunk drains. fn must not call Sum (chunks
// never fan out again) and must be safe to run on any worker — the
// engines bind worker-local samplers by w.ID().
//
// Because integer addition is commutative and associative and the
// engines give every sample index its own derived PRNG, the total is
// independent of the partition and of which worker runs which chunk.
func (w *Worker) Sum(n int, fn func(w *Worker, start, end int) int) int {
	p := w.p
	if p == nil || n <= 0 {
		if n <= 0 {
			return 0
		}
		return fn(w, 0, n)
	}
	grain := (n + p.cfg.Procs*chunksPerWorker - 1) / (p.cfg.Procs * chunksPerWorker)
	if grain < minGrain {
		grain = minGrain
	}
	if grain >= n {
		return fn(w, 0, n)
	}
	b := &batch{owner: w.id, fn: fn, n: n, grain: grain, nchunks: (n + grain - 1) / grain}
	p.mu.Lock()
	p.batches = append(p.batches, b)
	p.queued += b.nchunks
	p.nbatches++
	if p.queued > p.maxQueue {
		p.maxQueue = p.queued
	}
	p.cond.Broadcast()
	for {
		if b.next < b.nchunks {
			i := b.next
			b.next++
			b.running++
			p.queued--
			lo := i * b.grain
			hi := lo + b.grain
			if hi > b.n {
				hi = b.n
			}
			p.runChunkLocked(w, b, lo, hi)
			continue
		}
		if b.running == 0 {
			break
		}
		// All of this batch's chunks are claimed but some are still
		// running elsewhere: help other batches rather than idling.
		if ob, lo, hi := p.claimLocked(); ob != nil {
			if ob.owner != w.id {
				w.steals++
			}
			p.runChunkLocked(w, ob, lo, hi)
			continue
		}
		p.cond.Wait()
	}
	for i, x := range p.batches {
		if x == b {
			p.batches = append(p.batches[:i], p.batches[i+1:]...)
			break
		}
	}
	total := b.total
	p.mu.Unlock()
	return int(total)
}

// Range is a half-open contiguous index range [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// Len returns the number of indices the range covers.
func (r Range) Len() int { return r.Hi - r.Lo }

// Partition cuts [lo, hi) into at most k contiguous ranges of
// near-equal length (the first (hi−lo) mod k ranges are one longer).
// Empty ranges are never emitted, so fewer than k come back when the
// span is shorter than k. A pure function of its arguments — the shard
// coordinator relies on that to keep batch boundaries deterministic.
func Partition(lo, hi, k int) []Range {
	n := hi - lo
	if n <= 0 || k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	out := make([]Range, 0, k)
	base, extra := n/k, n%k
	start := lo
	for i := 0; i < k; i++ {
		size := base
		if i < extra {
			size++
		}
		out = append(out, Range{Lo: start, Hi: start + size})
		start += size
	}
	return out
}

// Resolve maps the engines' knobs to a worker count: MaxProcs wins when
// positive; otherwise the deprecated Workers/Parallel pair maps to the
// concurrency it used to buy (Workers goroutines inside a trial,
// Parallel = all trials at once). The mapping affects scheduling only —
// results are bit-identical at every worker count.
func Resolve(maxProcs, workers int, parallel bool, trials int) int {
	if maxProcs > 0 {
		return maxProcs
	}
	procs := 1
	if workers > 1 {
		procs = workers
	}
	if parallel && trials > procs {
		procs = trials
	}
	return procs
}
