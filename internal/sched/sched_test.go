package sched

import (
	"sync/atomic"
	"testing"
)

// The scheduler must hand every trial index to the body exactly once
// and Sum must cover [0, n) exactly, at every proc count.
func TestRunCoversTrialsAndChunks(t *testing.T) {
	const trials, n = 7, 1000
	for _, procs := range []int{1, 2, 3, 8} {
		var trialHits [trials]int32
		var sampleHits [n]int32
		totals := make([]int64, trials)
		st := Run(Config{Procs: procs, Trials: trials}, func(w *Worker, trial int) {
			atomic.AddInt32(&trialHits[trial], 1)
			got := w.Sum(n, func(w *Worker, lo, hi int) int {
				c := 0
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&sampleHits[i], 1)
					c += i
				}
				return c
			})
			atomic.AddInt64(&totals[trial], int64(got))
		})
		for i, h := range trialHits {
			if h != 1 {
				t.Fatalf("procs=%d: trial %d ran %d times", procs, i, h)
			}
		}
		for i, h := range sampleHits {
			if h != int32(trials) {
				t.Fatalf("procs=%d: sample %d covered %d times, want %d", procs, i, h, trials)
			}
		}
		want := int64(trials) * int64(n*(n-1)/2)
		var sum int64
		for _, v := range totals {
			sum += v
		}
		if sum != want {
			t.Fatalf("procs=%d: Sum total %d, want %d", procs, sum, want)
		}
		if st.Procs != procs {
			t.Fatalf("procs=%d: stats report %d procs", procs, st.Procs)
		}
	}
}

// A single straggler trial must have its chunks executed by the idle
// workers: with procs > trials, steals are the only way the extra
// workers contribute. The batch owner always claims its chunk 0 first;
// blocking it there until another worker has finished a chunk forces at
// least one steal even on a single-CPU machine.
func TestStealsDrainStraggler(t *testing.T) {
	const n = 100000
	var ran int64
	var othersRan int32
	gate := make(chan struct{})
	st := Run(Config{Procs: 4, Trials: 1}, func(w *Worker, trial int) {
		got := w.Sum(n, func(w *Worker, lo, hi int) int {
			if lo == 0 {
				<-gate
			} else if atomic.AddInt32(&othersRan, 1) == 1 {
				close(gate)
			}
			atomic.AddInt64(&ran, int64(hi-lo))
			return hi - lo
		})
		if got != n {
			t.Errorf("Sum returned %d, want %d", got, n)
		}
	})
	if ran != n {
		t.Fatalf("executed %d samples, want %d", ran, n)
	}
	if st.Steals == 0 {
		t.Fatalf("no steals recorded with 4 procs and 1 trial: %+v", st)
	}
	if st.Chunks == 0 || st.Batches == 0 || st.MaxQueue == 0 {
		t.Fatalf("queue statistics not recorded: %+v", st)
	}
}

// Workers hand out dense IDs in [0, Procs) so callers can keep
// worker-local scratch in a flat slice.
func TestWorkerIDsDense(t *testing.T) {
	const procs = 5
	var seen [procs]int32
	Run(Config{Procs: procs, Trials: 3}, func(w *Worker, trial int) {
		w.Sum(10000, func(w *Worker, lo, hi int) int {
			if w.ID() < 0 || w.ID() >= procs {
				t.Errorf("worker ID %d out of range [0,%d)", w.ID(), procs)
			}
			atomic.AddInt32(&seen[w.ID()], 1)
			return 0
		})
	})
}

// The inline path (procs ≤ 1) must run trials in order on the caller
// with no chunk machinery, and tiny ranges must not be cut at all.
func TestInlineSequential(t *testing.T) {
	var order []int
	st := Run(Config{Procs: 1, Trials: 4}, func(w *Worker, trial int) {
		order = append(order, trial)
		if got := w.Sum(5, func(w *Worker, lo, hi int) int { return hi - lo }); got != 5 {
			t.Errorf("inline Sum returned %d, want 5", got)
		}
	})
	for i, tr := range order {
		if tr != i {
			t.Fatalf("inline trials out of order: %v", order)
		}
	}
	if st.Spawns != 0 || st.Steals != 0 {
		t.Fatalf("inline run recorded pool activity: %+v", st)
	}
}

// Sum with n ≤ 0 and Run with no trials are no-ops.
func TestEmptyWork(t *testing.T) {
	st := Run(Config{Procs: 4, Trials: 0}, func(w *Worker, trial int) {
		t.Error("body called with zero trials")
	})
	if st.Spawns != 0 {
		t.Fatalf("zero-trial run spawned workers: %+v", st)
	}
	Run(Config{Procs: 2, Trials: 1}, func(w *Worker, trial int) {
		if got := w.Sum(0, func(w *Worker, lo, hi int) int { return 1 }); got != 0 {
			t.Errorf("Sum(0) returned %d", got)
		}
	})
}

// Resolve maps the deprecated knobs onto the unified one.
func TestResolve(t *testing.T) {
	cases := []struct {
		maxProcs, workers int
		parallel          bool
		trials, want      int
	}{
		{0, 0, false, 5, 1},
		{0, 1, false, 5, 1},
		{0, 4, false, 5, 4},
		{0, 0, true, 5, 5},
		{0, 8, true, 5, 8},
		{0, 3, true, 5, 5},
		{2, 8, true, 5, 2},
		{6, 0, false, 5, 6},
	}
	for _, c := range cases {
		if got := Resolve(c.maxProcs, c.workers, c.parallel, c.trials); got != c.want {
			t.Errorf("Resolve(%d, %d, %v, %d) = %d, want %d",
				c.maxProcs, c.workers, c.parallel, c.trials, got, c.want)
		}
	}
}

func TestPartition(t *testing.T) {
	for _, tc := range []struct {
		lo, hi, k int
		want      []Range
	}{
		{0, 10, 2, []Range{{0, 5}, {5, 10}}},
		{0, 10, 3, []Range{{0, 4}, {4, 7}, {7, 10}}},
		{3, 8, 2, []Range{{3, 6}, {6, 8}}},
		{0, 2, 5, []Range{{0, 1}, {1, 2}}}, // more workers than trials: no empty ranges
		{0, 1, 1, []Range{{0, 1}}},
		{5, 5, 3, nil}, // empty schedule
		{0, 4, 0, nil}, // no workers
	} {
		got := Partition(tc.lo, tc.hi, tc.k)
		if len(got) != len(tc.want) {
			t.Errorf("Partition(%d,%d,%d) = %v, want %v", tc.lo, tc.hi, tc.k, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("Partition(%d,%d,%d)[%d] = %v, want %v", tc.lo, tc.hi, tc.k, i, got[i], tc.want[i])
			}
		}
	}
}

// Partition must tile [lo, hi) exactly: contiguous, non-empty, in order.
func TestPartitionTiles(t *testing.T) {
	for lo := 0; lo < 4; lo++ {
		for hi := lo; hi < lo+20; hi++ {
			for k := 1; k <= 6; k++ {
				next := lo
				for _, r := range Partition(lo, hi, k) {
					if r.Lo != next || r.Len() <= 0 {
						t.Fatalf("Partition(%d,%d,%d) broken at %v", lo, hi, k, r)
					}
					next = r.Hi
				}
				if next != hi {
					t.Fatalf("Partition(%d,%d,%d) covers [%d,%d), want [%d,%d)", lo, hi, k, lo, next, lo, hi)
				}
			}
		}
	}
}
