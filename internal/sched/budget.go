package sched

import (
	"context"
	"sync"
	"time"
)

// Budget is a weighted FIFO admission semaphore over scheduler slots.
// It sits in front of the work-stealing scheduler: a caller that wants
// to run a counting call with MaxProcs = n first acquires n tokens, so
// the sum of concurrently admitted calls' worker counts never exceeds
// the process-wide budget. Waiters are granted strictly in arrival
// order — a wide request at the head of the queue blocks narrower
// later arrivals instead of being starved by them.
//
// All methods are safe for concurrent use.
type Budget struct {
	mu       sync.Mutex
	cap      int
	used     int
	waiters  []*budgetWaiter // FIFO; nil entries are abandoned slots
	observer func(BudgetEvent)
}

// BudgetEvent describes one admission decision: a request (identified
// by the caller's tag, typically the request ID) was admitted, queued,
// or shed, with the semaphore's state at that moment. Events let the
// service layer attribute queue-wait to requests without the budget
// knowing anything about HTTP.
type BudgetEvent struct {
	Tag      string        // caller's correlation tag ("" when untagged)
	Kind     string        // "admitted", "queued" or "shed"
	Tokens   int           // clamped token count requested
	Waited   time.Duration // queue time (0 for immediate admits and fresh queues)
	InUse    int           // tokens in use after the decision
	Capacity int
	Waiting  int // live queued waiters after the decision
}

// SetObserver installs fn to receive admission events. The observer is
// called outside the budget lock and must be safe for concurrent use;
// nil removes it.
func (b *Budget) SetObserver(fn func(BudgetEvent)) {
	b.mu.Lock()
	b.observer = fn
	b.mu.Unlock()
}

// eventLocked builds an event from state the caller already holds the
// lock for.
func (b *Budget) eventLocked(kind, tag string, n int, waited time.Duration) BudgetEvent {
	k := 0
	for _, w := range b.waiters {
		if w != nil {
			k++
		}
	}
	return BudgetEvent{Tag: tag, Kind: kind, Tokens: n, Waited: waited, InUse: b.used, Capacity: b.cap, Waiting: k}
}

type budgetWaiter struct {
	n     int
	ready chan struct{} // closed when granted
}

// NewBudget returns a budget of the given capacity (minimum 1).
func NewBudget(capacity int) *Budget {
	if capacity < 1 {
		capacity = 1
	}
	return &Budget{cap: capacity}
}

// Capacity returns the total token count.
func (b *Budget) Capacity() int { return b.cap }

// InUse returns the currently acquired token count.
func (b *Budget) InUse() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Waiting returns the number of queued waiters.
func (b *Budget) Waiting() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	k := 0
	for _, w := range b.waiters {
		if w != nil {
			k++
		}
	}
	return k
}

// clamp bounds a request to something grantable: at least one token,
// at most the whole budget (a wider request would deadlock).
func (b *Budget) clamp(n int) int {
	if n < 1 {
		n = 1
	}
	if n > b.cap {
		n = b.cap
	}
	return n
}

// TryAcquire acquires n tokens (clamped to [1, Capacity]) without
// blocking. It returns the granted count, or 0 when the tokens are not
// immediately available or waiters are already queued (FIFO: a
// non-blocking caller must not overtake the queue).
func (b *Budget) TryAcquire(n int) int {
	n = b.clamp(n)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.queuedLocked() || b.used+n > b.cap {
		return 0
	}
	b.used += n
	return n
}

// Acquire acquires n tokens (clamped to [1, Capacity]), blocking in
// FIFO order until they are available or ctx is done. It returns the
// granted count; the caller must Release exactly that count. On
// cancellation it returns 0 and ctx.Err(), and no tokens are held.
func (b *Budget) Acquire(ctx context.Context, n int) (int, error) {
	return b.AcquireTagged(ctx, n, "")
}

// AcquireTagged is Acquire with a correlation tag threaded into the
// admission observer's events, so queue decisions are attributable to
// the request that made them.
func (b *Budget) AcquireTagged(ctx context.Context, n int, tag string) (int, error) {
	n = b.clamp(n)
	b.mu.Lock()
	obs := b.observer
	if !b.queuedLocked() && b.used+n <= b.cap {
		b.used += n
		ev := b.eventLocked("admitted", tag, n, 0)
		b.mu.Unlock()
		if obs != nil {
			obs(ev)
		}
		return n, nil
	}
	if ctx != nil && ctx.Err() != nil {
		ev := b.eventLocked("shed", tag, n, 0)
		b.mu.Unlock()
		if obs != nil {
			obs(ev)
		}
		return 0, ctx.Err()
	}
	w := &budgetWaiter{n: n, ready: make(chan struct{})}
	b.waiters = append(b.waiters, w)
	ev := b.eventLocked("queued", tag, n, 0)
	b.mu.Unlock()
	if obs != nil {
		obs(ev)
	}
	start := time.Now()

	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case <-w.ready:
		if obs != nil {
			b.mu.Lock()
			ev := b.eventLocked("admitted", tag, n, time.Since(start))
			b.mu.Unlock()
			obs(ev)
		}
		return n, nil
	case <-done:
		b.mu.Lock()
		select {
		case <-w.ready:
			// Granted concurrently with cancellation: hand the tokens
			// back rather than racing the caller's error path.
			b.used -= w.n
			b.grantLocked()
			ev := b.eventLocked("shed", tag, n, time.Since(start))
			b.mu.Unlock()
			if obs != nil {
				obs(ev)
			}
			return 0, ctx.Err()
		default:
		}
		for i, q := range b.waiters {
			if q == w {
				b.waiters[i] = nil
				break
			}
		}
		// Abandoning the head may unblock the next waiter.
		b.grantLocked()
		ev = b.eventLocked("shed", tag, n, time.Since(start))
		b.mu.Unlock()
		if obs != nil {
			obs(ev)
		}
		return 0, ctx.Err()
	}
}

// Release returns n tokens and wakes queued waiters in order.
func (b *Budget) Release(n int) {
	b.mu.Lock()
	b.used -= n
	if b.used < 0 {
		b.mu.Unlock()
		panic("sched: Budget.Release of unacquired tokens")
	}
	b.grantLocked()
	b.mu.Unlock()
}

// queuedLocked reports whether any live waiter is queued.
func (b *Budget) queuedLocked() bool {
	for _, w := range b.waiters {
		if w != nil {
			return true
		}
	}
	return false
}

// grantLocked grants queued waiters from the head while they fit,
// compacting abandoned entries as it goes. FIFO: it stops at the first
// live waiter that does not fit.
func (b *Budget) grantLocked() {
	i := 0
	for ; i < len(b.waiters); i++ {
		w := b.waiters[i]
		if w == nil {
			continue
		}
		if b.used+w.n > b.cap {
			break
		}
		b.used += w.n
		close(w.ready)
		b.waiters[i] = nil
	}
	// Drop the fully consumed prefix so the queue does not grow without
	// bound across bursts.
	j := 0
	for ; j < len(b.waiters) && b.waiters[j] == nil; j++ {
	}
	if j > 0 {
		b.waiters = append(b.waiters[:0], b.waiters[j:]...)
	}
}
