package sched

import (
	"context"
	"sync"
)

// Budget is a weighted FIFO admission semaphore over scheduler slots.
// It sits in front of the work-stealing scheduler: a caller that wants
// to run a counting call with MaxProcs = n first acquires n tokens, so
// the sum of concurrently admitted calls' worker counts never exceeds
// the process-wide budget. Waiters are granted strictly in arrival
// order — a wide request at the head of the queue blocks narrower
// later arrivals instead of being starved by them.
//
// All methods are safe for concurrent use.
type Budget struct {
	mu      sync.Mutex
	cap     int
	used    int
	waiters []*budgetWaiter // FIFO; nil entries are abandoned slots
}

type budgetWaiter struct {
	n     int
	ready chan struct{} // closed when granted
}

// NewBudget returns a budget of the given capacity (minimum 1).
func NewBudget(capacity int) *Budget {
	if capacity < 1 {
		capacity = 1
	}
	return &Budget{cap: capacity}
}

// Capacity returns the total token count.
func (b *Budget) Capacity() int { return b.cap }

// InUse returns the currently acquired token count.
func (b *Budget) InUse() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Waiting returns the number of queued waiters.
func (b *Budget) Waiting() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	k := 0
	for _, w := range b.waiters {
		if w != nil {
			k++
		}
	}
	return k
}

// clamp bounds a request to something grantable: at least one token,
// at most the whole budget (a wider request would deadlock).
func (b *Budget) clamp(n int) int {
	if n < 1 {
		n = 1
	}
	if n > b.cap {
		n = b.cap
	}
	return n
}

// TryAcquire acquires n tokens (clamped to [1, Capacity]) without
// blocking. It returns the granted count, or 0 when the tokens are not
// immediately available or waiters are already queued (FIFO: a
// non-blocking caller must not overtake the queue).
func (b *Budget) TryAcquire(n int) int {
	n = b.clamp(n)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.queuedLocked() || b.used+n > b.cap {
		return 0
	}
	b.used += n
	return n
}

// Acquire acquires n tokens (clamped to [1, Capacity]), blocking in
// FIFO order until they are available or ctx is done. It returns the
// granted count; the caller must Release exactly that count. On
// cancellation it returns 0 and ctx.Err(), and no tokens are held.
func (b *Budget) Acquire(ctx context.Context, n int) (int, error) {
	n = b.clamp(n)
	b.mu.Lock()
	if !b.queuedLocked() && b.used+n <= b.cap {
		b.used += n
		b.mu.Unlock()
		return n, nil
	}
	if ctx != nil && ctx.Err() != nil {
		b.mu.Unlock()
		return 0, ctx.Err()
	}
	w := &budgetWaiter{n: n, ready: make(chan struct{})}
	b.waiters = append(b.waiters, w)
	b.mu.Unlock()

	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case <-w.ready:
		return n, nil
	case <-done:
		b.mu.Lock()
		select {
		case <-w.ready:
			// Granted concurrently with cancellation: hand the tokens
			// back rather than racing the caller's error path.
			b.used -= w.n
			b.grantLocked()
			b.mu.Unlock()
			return 0, ctx.Err()
		default:
		}
		for i, q := range b.waiters {
			if q == w {
				b.waiters[i] = nil
				break
			}
		}
		// Abandoning the head may unblock the next waiter.
		b.grantLocked()
		b.mu.Unlock()
		return 0, ctx.Err()
	}
}

// Release returns n tokens and wakes queued waiters in order.
func (b *Budget) Release(n int) {
	b.mu.Lock()
	b.used -= n
	if b.used < 0 {
		b.mu.Unlock()
		panic("sched: Budget.Release of unacquired tokens")
	}
	b.grantLocked()
	b.mu.Unlock()
}

// queuedLocked reports whether any live waiter is queued.
func (b *Budget) queuedLocked() bool {
	for _, w := range b.waiters {
		if w != nil {
			return true
		}
	}
	return false
}

// grantLocked grants queued waiters from the head while they fit,
// compacting abandoned entries as it goes. FIFO: it stops at the first
// live waiter that does not fit.
func (b *Budget) grantLocked() {
	i := 0
	for ; i < len(b.waiters); i++ {
		w := b.waiters[i]
		if w == nil {
			continue
		}
		if b.used+w.n > b.cap {
			break
		}
		b.used += w.n
		close(w.ready)
		b.waiters[i] = nil
	}
	// Drop the fully consumed prefix so the queue does not grow without
	// bound across bursts.
	j := 0
	for ; j < len(b.waiters) && b.waiters[j] == nil; j++ {
	}
	if j > 0 {
		b.waiters = append(b.waiters[:0], b.waiters[j:]...)
	}
}
