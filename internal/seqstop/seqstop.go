// Package seqstop implements the deterministic anytime trial schedule
// shared by the approximate counting engines (internal/count,
// internal/nfa): sequential stopping for the median-of-trials
// confidence-boosting loop, so each counting call spends only the
// trials its (ε, δ) target needs instead of a fixed worst-case count.
//
// The statistics follow the sequential-estimation idea behind the
// union-of-CQ FPRAS of Arenas et al. ("When is Approximate Counting for
// Conjunctive Queries Tractable?"): each engine trial lands within
// (1±ε) of the true count with probability ≥ 3/4 (the per-trial
// Chebyshev guarantee the fixed median schedule amplifies). The anytime
// schedule watches the empirical spread of the per-trial log₂
// estimates:
//
//   - If all executed trials agree within the ε-band
//     band = log₂(1+ε) − log₂(1−ε), the upper median can only miss a
//     (1±ε)-consistent value if *every* trial missed simultaneously —
//     probability ≤ (1/4)^k after k trials. The conservative floor
//     therefore runs at least k ≥ log₄(1/δ) trials (and never fewer
//     than 3, nor an even count) before the certificate may fire, so
//     an early stop carries failure probability ≤ δ.
//   - If the trials disagree, batches keep running up to the fixed
//     trial count (the hard cap), which is exactly the schedule the
//     engines ran before sequential stopping existed: the guarantee is
//     never weaker than the fixed count's.
//
// Determinism: the schedule is a pure function of (ε, δ, cap) and the
// per-trial estimates, which are themselves pure functions of the trial
// seeds. Batch boundaries never depend on wall-clock time or the
// scheduler's worker count, so an anytime call returns bit-identical
// results at every MaxProcs setting.
package seqstop

import (
	"math"

	"pqe/internal/efloat"
)

// DefaultDelta is the failure-probability target used when a caller
// enables anytime stopping without choosing δ. It roughly matches the
// amplification the engines' default 5-trial median provides
// (P[Binomial(5, 1/4) ≥ 3] ≈ 0.104).
const DefaultDelta = 0.1

// batchStep is how many extra trials each post-floor batch adds before
// the spread is re-examined.
const batchStep = 2

// Plan is the deterministic trial schedule of one anytime counting
// call. Construct it with New; the zero value stops immediately.
type Plan struct {
	// Cap is the hard cap: the fixed trial count the caller would have
	// run without sequential stopping. The schedule never exceeds it.
	Cap int
	// Floor is the conservative minimum number of trials executed
	// before the spread certificate may stop the call.
	Floor int
	// Band is the log₂ spread within which all trials must agree for
	// the certificate to fire: log₂(1+ε) − log₂(1−ε).
	Band float64
	// Delta is the resolved failure-probability target.
	Delta float64
}

// New derives the schedule for one counting call. epsilon is the
// per-trial relative-error target in (0,1); delta ≤ 0 uses
// DefaultDelta; cap is the fixed trial count (the hard cap); minTrials
// > 0 overrides the derived floor (still clamped to [1, cap]).
func New(epsilon, delta float64, cap, minTrials int) Plan {
	if delta <= 0 || delta >= 1 {
		delta = DefaultDelta
	}
	if cap < 1 {
		cap = 1
	}
	floor := minTrials
	if floor <= 0 {
		// k trials all missing (1±ε) at once has probability ≤ (1/4)^k;
		// k ≥ log₄(1/δ) drives that below δ. Never fewer than 3, and
		// keep the count odd so the upper median is a single trial.
		floor = int(math.Ceil(math.Log(1/delta) / math.Log(4)))
		if floor < 3 {
			floor = 3
		}
		if floor%2 == 0 {
			floor++
		}
	}
	if floor > cap {
		floor = cap
	}
	if floor < 1 {
		floor = 1
	}
	return Plan{
		Cap:   cap,
		Floor: floor,
		Band:  math.Log2(1+epsilon) - math.Log2(1-epsilon),
		Delta: delta,
	}
}

// NextBatch returns the trial count after the next batch given that
// executed trials have already run: the floor first, then batchStep
// more per batch, clamped to the cap. A pure function of the plan and
// executed — never of wall-clock time or worker count.
func (p Plan) NextBatch(executed int) int {
	next := p.Floor
	if executed >= p.Floor {
		next = executed + batchStep
	}
	if next > p.Cap {
		next = p.Cap
	}
	if next <= executed { // degenerate plans (cap ≤ executed)
		next = executed
	}
	return next
}

// Stop reports whether the executed trials' log₂ estimates satisfy the
// empirical accuracy certificate: at least Floor trials ran and their
// spread (max − min) is within Band. A zero estimate is encoded as
// -Inf; all-zero trials have spread 0 (they agree the count is zero),
// while a mix of zero and nonzero estimates never stops early.
func (p Plan) Stop(log2Estimates []float64) bool {
	if len(log2Estimates) < p.Floor {
		return false
	}
	return Spread(log2Estimates) <= p.Band
}

// Log2 maps one trial estimate to the log₂ value the spread
// certificate inspects, encoding a zero estimate as -Inf. Both engines
// and the shard coordinator share this mapping, so the anytime schedule
// sees identical inputs wherever the trials ran.
func Log2(e efloat.E) float64 {
	if e.IsZero() {
		return math.Inf(-1)
	}
	return e.Log2()
}

// Spread returns max − min over the log₂ estimates, treating the
// all-(-Inf) case (every trial estimated zero) as 0 agreement, and any
// zero/nonzero mix as +Inf disagreement.
func Spread(log2Estimates []float64) float64 {
	if len(log2Estimates) == 0 {
		return math.Inf(1)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range log2Estimates {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	spread := hi - lo
	if math.IsNaN(spread) { // (-Inf) − (-Inf): all trials estimated zero
		return 0
	}
	return spread
}
