package seqstop

import (
	"math"
	"testing"
)

func TestFloorDerivation(t *testing.T) {
	cases := []struct {
		delta float64
		cap   int
		floor int
	}{
		{0.1, 5, 3},    // log₄(10) ≈ 1.66 → 2 → min 3
		{0.25, 5, 3},   // log₄(4) = 1 → min 3
		{0.01, 9, 5},   // log₄(100) ≈ 3.32 → 4 → odd 5
		{0.001, 11, 5}, // log₄(1000) ≈ 4.98 → 5
		{1e-6, 11, 11}, // log₄(1e6) ≈ 9.97 → 10 → odd 11
		{1e-9, 11, 11}, // floor clamps to cap
		{0, 5, 3},      // default δ
	}
	for _, c := range cases {
		p := New(0.1, c.delta, c.cap, 0)
		if p.Floor != c.floor {
			t.Errorf("New(δ=%v, cap=%d): floor %d, want %d", c.delta, c.cap, p.Floor, c.floor)
		}
		if p.Floor > p.Cap {
			t.Errorf("New(δ=%v, cap=%d): floor %d exceeds cap", c.delta, c.cap, p.Floor)
		}
	}
}

func TestMinTrialsOverride(t *testing.T) {
	p := New(0.1, 0.1, 9, 7)
	if p.Floor != 7 {
		t.Errorf("minTrials override: floor %d, want 7", p.Floor)
	}
	if p := New(0.1, 0.1, 5, 100); p.Floor != 5 {
		t.Errorf("minTrials beyond cap: floor %d, want 5", p.Floor)
	}
}

func TestNextBatchSchedule(t *testing.T) {
	p := New(0.1, 0.1, 11, 0) // floor 3
	var got []int
	executed := 0
	for executed < p.Cap {
		executed = p.NextBatch(executed)
		got = append(got, executed)
	}
	want := []int{3, 5, 7, 9, 11}
	if len(got) != len(want) {
		t.Fatalf("schedule %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("schedule %v, want %v", got, want)
		}
	}
	// Cap smaller than the derived floor: one batch of cap trials.
	p = New(0.1, 0.1, 2, 0)
	if n := p.NextBatch(0); n != 2 {
		t.Errorf("cap<floor first batch = %d, want 2", n)
	}
}

func TestStopCertificate(t *testing.T) {
	p := New(0.1, 0.1, 9, 0) // floor 3, band = log2(1.1)-log2(0.9)
	if p.Stop([]float64{10, 10}) {
		t.Error("stopped below the floor")
	}
	if !p.Stop([]float64{10, 10.01, 9.99}) {
		t.Error("agreeing trials past the floor should stop")
	}
	if p.Stop([]float64{10, 12, 10}) {
		t.Error("spread beyond the band should not stop")
	}
	// All-zero estimates agree (spread 0).
	inf := math.Inf(-1)
	if !p.Stop([]float64{inf, inf, inf}) {
		t.Error("all-zero trials should stop")
	}
	// Zero/nonzero mix never stops.
	if p.Stop([]float64{inf, 10, 10}) {
		t.Error("zero/nonzero mix must not stop")
	}
}

func TestSpread(t *testing.T) {
	inf := math.Inf(-1)
	if s := Spread(nil); !math.IsInf(s, 1) {
		t.Errorf("Spread(nil) = %v, want +Inf", s)
	}
	if s := Spread([]float64{inf, inf}); s != 0 {
		t.Errorf("Spread(all -Inf) = %v, want 0", s)
	}
	if s := Spread([]float64{inf, 3}); !math.IsInf(s, 1) {
		t.Errorf("Spread(mixed) = %v, want +Inf", s)
	}
	if s := Spread([]float64{1, 4, 2}); s != 3 {
		t.Errorf("Spread = %v, want 3", s)
	}
}

func TestBandMatchesEpsilon(t *testing.T) {
	p := New(0.2, 0.1, 5, 0)
	want := math.Log2(1.2) - math.Log2(0.8)
	if math.Abs(p.Band-want) > 1e-15 {
		t.Errorf("band %v, want %v", p.Band, want)
	}
}
