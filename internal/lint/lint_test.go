// Package lint holds repo-wide source hygiene checks that run as
// ordinary tests (the CI lint lane is `go vet` plus this package).
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// forbiddenCalls are selector calls library code must not make:
// ad-hoc printing bypasses the structured logger (and the service's
// request correlation), and direct process exits bypass error returns.
// Only cmd/ binaries talk to stdio directly.
var forbiddenCalls = map[string]string{
	"fmt.Print":   "use the slog logger (or return an error) instead of printing",
	"fmt.Println": "use the slog logger (or return an error) instead of printing",
	"fmt.Printf":  "use the slog logger (or return an error) instead of printing",
	"log.Print":   "use log/slog via the configured logger, not the global log package",
	"log.Println": "use log/slog via the configured logger, not the global log package",
	"log.Printf":  "use log/slog via the configured logger, not the global log package",
	"log.Fatal":   "library code must return errors, not exit the process",
	"log.Fatalf":  "library code must return errors, not exit the process",
	"log.Fatalln": "library code must return errors, not exit the process",
}

// TestNoStrayPrinting parses every non-test Go file outside cmd/ and
// fails on any forbidden call. Test files may print (the testing
// package owns their output), and cmd/ binaries own their stdio.
func TestNoStrayPrinting(t *testing.T) {
	root := repoRoot(t)
	var violations []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			// cmd/ and examples/ are binaries that own their stdio.
			if name == "cmd" || name == "examples" || name == "testdata" ||
				(strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, perr := parser.ParseFile(fset, path, nil, 0)
		if perr != nil {
			return fmt.Errorf("parsing %s: %w", path, perr)
		}
		// Resolve which forbidden package names this file actually
		// imports under which local name, so aliased imports are caught
		// and same-named locals are not.
		names := map[string]string{} // local name -> import path
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p != "fmt" && p != "log" {
				continue
			}
			local := p
			if imp.Name != nil {
				local = imp.Name.Name
			}
			names[local] = p
		}
		if len(names) == 0 {
			return nil
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkg, imported := names[id.Name]
			if !imported {
				return true
			}
			key := pkg + "." + sel.Sel.Name
			if why, bad := forbiddenCalls[key]; bad {
				rel, _ := filepath.Rel(root, path)
				violations = append(violations,
					fmt.Sprintf("%s:%d: %s — %s", rel, fset.Position(call.Pos()).Line, key, why))
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range violations {
		t.Error(v)
	}
}

// repoRoot walks up from the test's working directory to the module
// root (the directory holding go.mod).
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above the lint package")
		}
		dir = parent
	}
}
