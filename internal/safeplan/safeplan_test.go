package safeplan

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"pqe/internal/cq"
	"pqe/internal/exact"
	"pqe/internal/pdb"
)

func TestIsSafe(t *testing.T) {
	cases := []struct {
		q    string
		want bool
	}{
		{"R(x,y)", true},
		{"R(x,y), S(x,z)", true},                   // star: hierarchical
		{"R(x), S(x,y), T(y)", false},              // H₀: unsafe
		{"R1(x1,x2), R2(x2,x3), R3(x3,x4)", false}, // 3-path
		{"R(x,y), R(y,z)", false},                  // self-join: out of scope
	}
	for _, c := range cases {
		if got := IsSafe(cq.MustParse(c.q)); got != c.want {
			t.Errorf("IsSafe(%s) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestEvaluateSingleAtom(t *testing.T) {
	h := pdb.Empty()
	h.Add(pdb.NewFact("R", "a"), pdb.NewProb(1, 2))
	h.Add(pdb.NewFact("R", "b"), pdb.NewProb(1, 3))
	got, err := Evaluate(cq.MustParse("R(x)"), h)
	if err != nil {
		t.Fatal(err)
	}
	// 1 − (1−1/2)(1−1/3) = 1 − 1/3 = 2/3.
	if got.Cmp(big.NewRat(2, 3)) != 0 {
		t.Errorf("Pr = %v, want 2/3", got)
	}
}

func TestEvaluateIndependentJoin(t *testing.T) {
	h := pdb.Empty()
	h.Add(pdb.NewFact("R", "a"), pdb.NewProb(1, 2))
	h.Add(pdb.NewFact("S", "b"), pdb.NewProb(1, 3))
	got, err := Evaluate(cq.MustParse("R(x), S(y)"), h)
	if err != nil {
		t.Fatal(err)
	}
	// (1/2)·(1/3) = 1/6.
	if got.Cmp(big.NewRat(1, 6)) != 0 {
		t.Errorf("Pr = %v, want 1/6", got)
	}
}

func TestEvaluateUnsafe(t *testing.T) {
	h := pdb.Empty()
	h.Add(pdb.NewFact("R", "a"), pdb.ProbHalf)
	h.Add(pdb.NewFact("S", "a", "b"), pdb.ProbHalf)
	h.Add(pdb.NewFact("T", "b"), pdb.ProbHalf)
	_, err := Evaluate(cq.MustParse("R(x), S(x,y), T(y)"), h)
	if !errors.Is(err, ErrUnsafe) {
		t.Errorf("err = %v, want ErrUnsafe", err)
	}
}

func TestEvaluateRejectsSelfJoin(t *testing.T) {
	h := pdb.Empty()
	h.Add(pdb.NewFact("R", "a", "b"), pdb.ProbHalf)
	if _, err := Evaluate(cq.MustParse("R(x,y), R(y,z)"), h); err == nil {
		t.Error("self-join accepted")
	}
}

func randomInstance(rng *rand.Rand, q *cq.Query, arity map[string]int) *pdb.Probabilistic {
	h := pdb.Empty()
	consts := []string{"a", "b", "c"}
	for _, rel := range q.Relations() {
		for i := 0; i < 1+rng.Intn(3); i++ {
			args := make([]string, arity[rel])
			for j := range args {
				args[j] = consts[rng.Intn(3)]
			}
			den := int64(1 + rng.Intn(4))
			num := int64(rng.Intn(int(den) + 1))
			h.Add(pdb.Fact{Relation: rel, Args: args}, pdb.NewProb(num, den))
		}
	}
	return h
}

func arities(q *cq.Query) map[string]int {
	m := make(map[string]int)
	for _, a := range q.Atoms {
		m[a.Relation] = a.Arity()
	}
	return m
}

func TestEvaluateMatchesBruteForceOnSafeQueries(t *testing.T) {
	queries := []*cq.Query{
		cq.MustParse("R(x)"),
		cq.MustParse("R(x,y)"),
		cq.MustParse("R(x,y), S(x,z)"),
		cq.MustParse("R(x,y), S(x)"),
		cq.StarQuery("R", 3),
		cq.MustParse("R(x), S(y)"),
		cq.MustParse("R(x,y), S(y)"), // y in both? R has x,y; S has y: at(x)={R} at(y)={R,S}: hierarchical
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		q := queries[rng.Intn(len(queries))]
		if !IsSafe(q) {
			t.Fatalf("test query %s is not safe", q)
		}
		h := randomInstance(rng, q, arities(q))
		got, err := Evaluate(q, h)
		if err != nil {
			t.Fatalf("Evaluate(%s): %v", q, err)
		}
		want := exact.MustPQE(q, h)
		if got.Cmp(want) != 0 {
			t.Errorf("trial %d: %s: got %v, want %v\nH=%s", trial, q, got, want, h)
		}
	}
}

// Property: on random safe star queries the safe plan is exact.
func TestQuickSafePlanExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := cq.StarQuery("R", 1+rng.Intn(3))
		h := randomInstance(rng, q, arities(q))
		got, err := Evaluate(q, h)
		if err != nil {
			return false
		}
		return got.Cmp(exact.MustPQE(q, h)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEvaluateDeepHierarchy(t *testing.T) {
	// R(x), S(x,y), T(x,y,z): at(x) ⊇ at(y) ⊇ at(z) — a three-level
	// hierarchy requiring nested independent projects.
	q := cq.MustParse("R(x), S(x,y), T(x,y,z)")
	if !IsSafe(q) {
		t.Fatal("deep hierarchy not safe")
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		h := randomInstance(rng, q, arities(q))
		got, err := Evaluate(q, h)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := exact.MustPQE(q, h)
		if got.Cmp(want) != 0 {
			t.Errorf("trial %d: got %v, want %v\nH=%s", trial, got, want, h)
		}
	}
}

func TestEvaluateDisconnectedWithSharedConstantsOnly(t *testing.T) {
	// Components connected only through constants (not variables) stay
	// independent.
	q := cq.MustParse("A(x,y), B(z)")
	h := pdb.Empty()
	h.Add(pdb.NewFact("A", "c", "c"), pdb.NewProb(1, 2))
	h.Add(pdb.NewFact("B", "c"), pdb.NewProb(1, 3))
	got, err := Evaluate(q, h)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewRat(1, 6)) != 0 {
		t.Errorf("Pr = %v, want 1/6", got)
	}
}
