// Package safeplan implements the Dalvi–Suciu extensional (safe-plan)
// algorithm for exact PQE of safe self-join-free conjunctive queries,
// the PTIME side of the data-complexity dichotomy referenced throughout
// Table 1 of the paper. For SJF CQs, safety coincides with the
// syntactic hierarchical property: for every pair of variables, their
// atom sets are disjoint or comparable.
//
// The algorithm applies two rules recursively:
//
//	independent join:    Q = Q₁ ∧ Q₂ with disjoint atoms/variables
//	                     ⇒ Pr(Q) = Pr(Q₁) · Pr(Q₂)
//	independent project: a root variable x occurs in every atom
//	                     ⇒ Pr(Q) = 1 − ∏_c (1 − Pr(Q[x→c]))
//
// ground atoms reduce to their fact's probability. A connected query
// with no root variable is unsafe and reported as such.
package safeplan

import (
	"errors"
	"fmt"
	"math/big"
	"sort"

	"pqe/internal/cq"
	"pqe/internal/pdb"
)

// ErrUnsafe is returned when the query has no safe plan (for SJF CQs:
// it is non-hierarchical, hence #P-hard in data complexity).
var ErrUnsafe = errors.New("safeplan: query is unsafe (non-hierarchical)")

// Evaluate computes Pr_H(Q) exactly for a safe self-join-free
// conjunctive query. It returns ErrUnsafe for unsafe queries.
func Evaluate(q *cq.Query, h *pdb.Probabilistic) (*big.Rat, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if !q.SelfJoinFree() {
		return nil, fmt.Errorf("safeplan: query %q has self-joins; the safe-plan rules here assume self-join-freeness", q)
	}
	e := &evaluator{h: h, memo: make(map[string]*big.Rat)}
	return e.eval(groundQuery{q: q, binding: cq.Assignment{}})
}

// IsSafe reports whether the query admits a safe plan (hierarchical,
// for SJF CQs).
func IsSafe(q *cq.Query) bool {
	return q.SelfJoinFree() && q.Hierarchical()
}

// groundQuery is a query together with a partial assignment of
// variables fixed by enclosing independent projects.
type groundQuery struct {
	q       *cq.Query
	binding cq.Assignment
}

func (g groundQuery) key() string {
	return g.q.String() + "@" + g.binding.Key()
}

type evaluator struct {
	h    *pdb.Probabilistic
	memo map[string]*big.Rat
}

func (e *evaluator) eval(g groundQuery) (*big.Rat, error) {
	if v, ok := e.memo[g.key()]; ok {
		return new(big.Rat).Set(v), nil
	}
	v, err := e.evalUncached(g)
	if err != nil {
		return nil, err
	}
	e.memo[g.key()] = new(big.Rat).Set(v)
	return v, nil
}

func (e *evaluator) evalUncached(g groundQuery) (*big.Rat, error) {
	// Fully ground atoms become fact probabilities and multiply in
	// independently (self-join-freeness makes their fact variables
	// distinct from everything else).
	var groundProb *big.Rat
	var open []cq.Atom
	for _, a := range g.q.Atoms {
		if isGround(a, g.binding) {
			f := groundFact(a, g.binding)
			p := new(big.Rat)
			if e.h.DB().Contains(f) {
				p = e.h.Prob(f).Rat()
			}
			if groundProb == nil {
				groundProb = big.NewRat(1, 1)
			}
			groundProb.Mul(groundProb, p)
			if p.Sign() == 0 {
				return new(big.Rat), nil
			}
		} else {
			open = append(open, a)
		}
	}
	if len(open) == 0 {
		return groundProb, nil
	}

	rest := cq.New(open...)
	// Independent join over connected components (with respect to the
	// unbound variables).
	comps := componentsUnbound(rest, g.binding)
	if len(comps) > 1 {
		total := big.NewRat(1, 1)
		for _, comp := range comps {
			sub, err := e.eval(groundQuery{q: rest.SubQuery(comp), binding: g.binding})
			if err != nil {
				return nil, err
			}
			total.Mul(total, sub)
		}
		if groundProb != nil {
			total.Mul(total, groundProb)
		}
		return total, nil
	}

	// Independent project on a root variable: an unbound variable
	// occurring in every open atom.
	root := rootVariable(rest, g.binding)
	if root == "" {
		return nil, ErrUnsafe
	}
	// Pr(∃x Q) = 1 − ∏_{c ∈ adom} (1 − Pr(Q[x→c])): values outside the
	// active domain contribute probability 0.
	miss := big.NewRat(1, 1)
	one := big.NewRat(1, 1)
	for _, c := range e.activeDomain(rest, root) {
		b := g.binding.Clone()
		b[root] = c
		sub, err := e.eval(groundQuery{q: rest, binding: b})
		if err != nil {
			return nil, err
		}
		miss.Mul(miss, new(big.Rat).Sub(one, sub))
	}
	total := new(big.Rat).Sub(one, miss)
	if groundProb != nil {
		total.Mul(total, groundProb)
	}
	return total, nil
}

// activeDomain returns the constants that can instantiate the variable:
// the union over atoms containing it of the values in the corresponding
// fact positions.
func (e *evaluator) activeDomain(q *cq.Query, v string) []string {
	seen := make(map[string]bool)
	for _, a := range q.Atoms {
		for pos, w := range a.Vars {
			if w != v {
				continue
			}
			for _, f := range e.h.DB().FactsOf(a.Relation) {
				if len(f.Args) == len(a.Vars) {
					seen[f.Args[pos]] = true
				}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

func isGround(a cq.Atom, binding cq.Assignment) bool {
	for _, v := range a.Vars {
		if _, ok := binding[v]; !ok {
			return false
		}
	}
	return true
}

func groundFact(a cq.Atom, binding cq.Assignment) pdb.Fact {
	args := make([]string, len(a.Vars))
	for i, v := range a.Vars {
		args[i] = binding[v]
	}
	return pdb.Fact{Relation: a.Relation, Args: args}
}

// componentsUnbound computes connected components of the atoms where
// adjacency is sharing an *unbound* variable.
func componentsUnbound(q *cq.Query, binding cq.Assignment) [][]int {
	n := len(q.Atoms)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	byVar := make(map[string]int)
	for i, a := range q.Atoms {
		for _, v := range a.Vars {
			if _, bound := binding[v]; bound {
				continue
			}
			if j, ok := byVar[v]; ok {
				parent[find(i)] = find(j)
			} else {
				byVar[v] = i
			}
		}
	}
	groups := make(map[int][]int)
	for i := range q.Atoms {
		groups[find(i)] = append(groups[find(i)], i)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(groups))
	for _, r := range roots {
		sort.Ints(groups[r])
		out = append(out, groups[r])
	}
	return out
}

// rootVariable returns an unbound variable occurring in every atom, or
// "".
func rootVariable(q *cq.Query, binding cq.Assignment) string {
	if len(q.Atoms) == 0 {
		return ""
	}
	var candidates []string
	for _, v := range q.Atoms[0].Vars {
		if _, bound := binding[v]; !bound {
			candidates = append(candidates, v)
		}
	}
	sort.Strings(candidates)
	for _, v := range candidates {
		inAll := true
		for _, a := range q.Atoms[1:] {
			if !a.HasVar(v) {
				inAll = false
				break
			}
		}
		if inAll {
			return v
		}
	}
	return ""
}
