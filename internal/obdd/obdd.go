// Package obdd implements ordered binary decision diagrams over fact
// variables, the knowledge-compilation backend that practical
// probabilistic-database systems (the intensional approach of §1 of the
// paper) use to make lineage tractable when they can: compile the
// lineage DNF into an OBDD once, then weighted model counting is linear
// in the diagram.
//
// The catch — and the reason the paper's FPRAS matters — is the
// diagram's size: for hierarchical (safe) queries good variable orders
// give polynomial OBDDs, but for #P-hard queries the diagram can grow
// exponentially in the database size. The experiment harness measures
// exactly this growth against the reduction automaton's polynomial
// size.
package obdd

import (
	"fmt"
	"math/big"

	"pqe/internal/lineage"
	"pqe/internal/pdb"
)

// OBDD is a reduced ordered BDD over variables 0..NumVars−1 (tested in
// ascending order along every path). Nodes are interned: equal
// (variable, low, high) triples share an ID, and nodes with low == high
// are elided, so the diagram is canonical for the variable order.
type OBDD struct {
	NumVars int
	// nodes[i] for i ≥ 2 is the i-th internal node; IDs 0 and 1 are the
	// terminals false and true.
	nodes []node
	// Root is the entry node ID.
	Root int

	unique map[node]int
}

type node struct {
	varIdx    int
	low, high int
}

const (
	// False and True are the terminal node IDs.
	False = 0
	True  = 1
)

func newOBDD(numVars int) *OBDD {
	return &OBDD{
		NumVars: numVars,
		nodes:   make([]node, 2), // dummies for the terminals
		unique:  make(map[node]int),
	}
}

// mk returns the interned node (v, low, high), applying the elision and
// uniqueness reductions.
func (o *OBDD) mk(v, low, high int) int {
	if low == high {
		return low
	}
	n := node{v, low, high}
	if id, ok := o.unique[n]; ok {
		return id
	}
	id := len(o.nodes)
	o.nodes = append(o.nodes, n)
	o.unique[n] = id
	return id
}

// Size returns the number of internal nodes (excluding terminals), the
// standard OBDD size measure.
func (o *OBDD) Size() int { return len(o.nodes) - 2 }

// CompileDNF compiles a monotone DNF (the lineage representation of
// package lineage) into an OBDD under the ascending variable order,
// via recursive Shannon expansion with memoization on residual clause
// sets. maxNodes > 0 aborts compilation once the diagram exceeds that
// many nodes — the harness uses this to detect exponential blow-up
// without melting the machine.
func CompileDNF(f *lineage.DNF, maxNodes int) (*OBDD, error) {
	o := newOBDD(f.NumVars)
	c := &compiler{o: o, memo: make(map[string]int), maxNodes: maxNodes}
	root, err := c.compile(f.Clauses, 0)
	if err != nil {
		return nil, err
	}
	o.Root = root
	return o, nil
}

// ErrTooLarge is wrapped by compilation aborts.
var ErrTooLarge = fmt.Errorf("obdd: diagram exceeds the node budget")

type compiler struct {
	o        *OBDD
	memo     map[string]int
	maxNodes int
	ops      int
}

func (c *compiler) compile(clauses [][]int, v int) (int, error) {
	o := c.o
	if len(clauses) == 0 {
		return False, nil
	}
	for _, cl := range clauses {
		if len(cl) == 0 {
			return True, nil
		}
	}
	if v == o.NumVars {
		// No variables left but no empty clause: unsatisfied.
		return False, nil
	}
	key := fmt.Sprintf("%d|%v", v, clauses)
	if id, ok := c.memo[key]; ok {
		return id, nil
	}
	// The budget bounds total work and memory, not just created nodes:
	// the Shannon recursion can visit exponentially many distinct
	// residual clause sets before any node materializes.
	c.ops++
	if c.maxNodes > 0 && (o.Size() > c.maxNodes || c.ops > 4*c.maxNodes || len(c.memo) > 4*c.maxNodes) {
		return 0, fmt.Errorf("%w (> %d nodes)", ErrTooLarge, c.maxNodes)
	}
	// Cofactors with respect to variable v (clauses are sorted, monotone).
	var pos, neg [][]int
	for _, cl := range clauses {
		has := false
		for _, w := range cl {
			if w == v {
				has = true
				break
			}
		}
		if has {
			rest := make([]int, 0, len(cl)-1)
			for _, w := range cl {
				if w != v {
					rest = append(rest, w)
				}
			}
			pos = append(pos, rest)
		} else {
			pos = append(pos, cl)
			neg = append(neg, cl)
		}
	}
	high, err := c.compile(pos, v+1)
	if err != nil {
		return 0, err
	}
	low, err := c.compile(neg, v+1)
	if err != nil {
		return 0, err
	}
	id := o.mk(v, low, high)
	c.memo[key] = id
	return id, nil
}

// Eval evaluates the diagram under a presence mask.
func (o *OBDD) Eval(mask []bool) bool {
	id := o.Root
	for id > True {
		n := o.nodes[id]
		if mask[n.varIdx] {
			id = n.high
		} else {
			id = n.low
		}
	}
	return id == True
}

// WMC computes the weighted model count under the fact probabilities of
// H — Pr_H(lineage) — in one bottom-up pass, exactly over rationals.
// Skipped variables between a node and its children contribute factor 1
// (both branches are summed implicitly).
func (o *OBDD) WMC(h *pdb.Probabilistic) *big.Rat {
	if h.Size() != o.NumVars {
		panic("obdd: variable/database size mismatch")
	}
	probs := make([]*big.Rat, o.NumVars)
	for i := range probs {
		probs[i] = h.ProbAt(i).Rat()
	}
	one := big.NewRat(1, 1)
	memo := make(map[int]*big.Rat, len(o.nodes))
	memo[False] = new(big.Rat)
	memo[True] = big.NewRat(1, 1)
	var rec func(id int) *big.Rat
	rec = func(id int) *big.Rat {
		if v, ok := memo[id]; ok {
			return v
		}
		n := o.nodes[id]
		p := probs[n.varIdx]
		q := new(big.Rat).Sub(one, p)
		total := new(big.Rat).Mul(p, rec(n.high))
		total.Add(total, new(big.Rat).Mul(q, rec(n.low)))
		memo[id] = total
		return total
	}
	return rec(o.Root)
}

// CountModels returns the number of satisfying assignments over all
// NumVars variables.
func (o *OBDD) CountModels() *big.Int {
	// Model count = 2^NumVars · WMC under uniform ½ probabilities; do it
	// directly with per-level scaling instead.
	memo := make(map[int]*big.Rat, len(o.nodes))
	memo[False] = new(big.Rat)
	memo[True] = big.NewRat(1, 1)
	half := big.NewRat(1, 2)
	var rec func(id int) *big.Rat
	rec = func(id int) *big.Rat {
		if v, ok := memo[id]; ok {
			return v
		}
		n := o.nodes[id]
		total := new(big.Rat).Add(rec(n.high), rec(n.low))
		total.Mul(total, half)
		memo[id] = total
		return total
	}
	frac := rec(o.Root) // fraction of satisfying assignments
	scale := new(big.Int).Lsh(big.NewInt(1), uint(o.NumVars))
	out := new(big.Rat).Mul(frac, new(big.Rat).SetInt(scale))
	if !out.IsInt() {
		panic("obdd: non-integral model count")
	}
	return out.Num()
}
