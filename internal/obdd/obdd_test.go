package obdd

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"pqe/internal/cq"
	"pqe/internal/exact"
	"pqe/internal/gen"
	"pqe/internal/lineage"
	"pqe/internal/pdb"
)

func compileFor(t *testing.T, q *cq.Query, d *pdb.Database) (*lineage.DNF, *OBDD) {
	t.Helper()
	f, err := lineage.Compute(q, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	o, err := CompileDNF(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	return f, o
}

func TestEvalAgreesWithDNF(t *testing.T) {
	q := cq.PathQuery("R", 2)
	d := pdb.FromFacts(
		pdb.NewFact("R1", "a", "b"),
		pdb.NewFact("R1", "a", "c"),
		pdb.NewFact("R2", "b", "d"),
		pdb.NewFact("R2", "c", "d"),
	)
	f, o := compileFor(t, q, d)
	mask := make([]bool, d.Size())
	for m := 0; m < 1<<uint(d.Size()); m++ {
		for i := range mask {
			mask[i] = m&(1<<uint(i)) != 0
		}
		if o.Eval(mask) != f.Eval(mask) {
			t.Fatalf("Eval disagrees on %v", mask)
		}
	}
}

func TestWMCAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		q := cq.PathQuery("R", 2+rng.Intn(2))
		h := gen.Instance(q, gen.Config{
			FactsPerRelation: 2, DomainSize: 3,
			Model: gen.ProbRandomRational, Seed: int64(trial + 1),
		})
		f, err := lineage.Compute(q, h.DB(), 0)
		if err != nil {
			t.Fatal(err)
		}
		o, err := CompileDNF(f, 0)
		if err != nil {
			t.Fatal(err)
		}
		got := o.WMC(h)
		want := exact.MustPQE(q, h)
		if got.Cmp(want) != 0 {
			t.Errorf("trial %d: OBDD WMC %v != PQE %v", trial, got, want)
		}
	}
}

func TestCountModelsAgainstUR(t *testing.T) {
	q := cq.PathQuery("R", 2)
	d := pdb.FromFacts(
		pdb.NewFact("R1", "a", "b"),
		pdb.NewFact("R2", "b", "c"),
		pdb.NewFact("R2", "b", "d"),
	)
	_, o := compileFor(t, q, d)
	want := exact.MustUR(q, d)
	if got := o.CountModels(); got.Cmp(want) != 0 {
		t.Errorf("CountModels %v != UR %v", got, want)
	}
}

func TestNodeBudget(t *testing.T) {
	q := cq.PathQuery("R", 3)
	h := gen.LayeredPathInstance(q, 3, gen.ProbHalf, 1)
	f, err := lineage.Compute(q, h.DB(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileDNF(f, 1); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestCanonicalReduction(t *testing.T) {
	// (x0 ∧ x1) ∨ (x0 ∧ x1) compiles to the same diagram as one copy.
	f1 := &lineage.DNF{NumVars: 2, Clauses: [][]int{{0, 1}}}
	f2 := &lineage.DNF{NumVars: 2, Clauses: [][]int{{0, 1}, {0, 1}}}
	o1, err := CompileDNF(f1, 0)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := CompileDNF(f2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if o1.Size() != o2.Size() {
		t.Errorf("sizes differ: %d vs %d", o1.Size(), o2.Size())
	}
	if o1.Size() != 2 {
		t.Errorf("x0∧x1 diagram has %d nodes, want 2", o1.Size())
	}
}

func TestEmptyAndTautology(t *testing.T) {
	empty := &lineage.DNF{NumVars: 3}
	o, err := CompileDNF(empty, 0)
	if err != nil {
		t.Fatal(err)
	}
	if o.Root != False || o.Size() != 0 {
		t.Errorf("empty DNF: root %d size %d", o.Root, o.Size())
	}
	taut := &lineage.DNF{NumVars: 3, Clauses: [][]int{{}}}
	o, err = CompileDNF(taut, 0)
	if err != nil {
		t.Fatal(err)
	}
	if o.Root != True {
		t.Errorf("tautology root = %d", o.Root)
	}
}

// Property: OBDD model counts agree with brute-force UR on random path
// instances.
func TestQuickModelCount(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := cq.PathQuery("R", 2)
		h := gen.Instance(q, gen.Config{FactsPerRelation: 1 + rng.Intn(3), DomainSize: 3, Seed: seed})
		dnf, err := lineage.Compute(q, h.DB(), 0)
		if err != nil {
			return false
		}
		o, err := CompileDNF(dnf, 0)
		if err != nil {
			return false
		}
		return o.CountModels().Cmp(exact.MustUR(q, h.DB())) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
