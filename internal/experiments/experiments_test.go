package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// run executes an experiment in quick mode and sanity-checks its shape.
func run(t *testing.T, id string) *Table {
	t.Helper()
	f := ByID(id)
	if f == nil {
		t.Fatalf("unknown experiment %q", id)
	}
	tab := f(Opts{Quick: true, Epsilon: 0.15, Seed: 3})
	if tab.ID != strings.ToUpper(id) {
		t.Errorf("table ID = %q", tab.ID)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Errorf("%s: row %v has %d columns, header has %d", id, row, len(row), len(tab.Header))
		}
		for _, c := range row {
			if strings.Contains(c, "error:") || c == "MISMATCH" {
				t.Errorf("%s: row contains failure marker: %v", id, row)
			}
		}
	}
	var sb strings.Builder
	tab.Format(&sb)
	if !strings.Contains(sb.String(), tab.Title) {
		t.Errorf("%s: Format missing title", id)
	}
	var md strings.Builder
	tab.Markdown(&md)
	if !strings.Contains(md.String(), "| --- |") && !strings.Contains(md.String(), "--- | ---") {
		t.Errorf("%s: Markdown missing separator: %q", id, md.String()[:80])
	}
	return tab
}

func TestAllExperimentIDsResolve(t *testing.T) {
	for _, id := range IDs() {
		if ByID(id) == nil {
			t.Errorf("IDs() lists %s but ByID fails", id)
		}
	}
	if ByID("nope") != nil {
		t.Error("unknown ID resolved")
	}
}

func TestTable1(t *testing.T) {
	tab := run(t, "T1")
	okRows := 0
	for _, row := range tab.Rows {
		status := row[len(row)-1]
		if strings.HasPrefix(status, "ok") {
			okRows++
		}
	}
	if okRows != len(tab.Rows) {
		t.Errorf("only %d/%d rows ok:\n%v", okRows, len(tab.Rows), tab.Rows)
	}
}

func TestE2WithinEnvelope(t *testing.T) {
	tab := run(t, "E2")
	for _, row := range tab.Rows {
		re, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("bad rel.err %q", row[4])
		}
		if re > 0.3 || re < -0.3 {
			t.Errorf("rel.err %v outside envelope: %v", re, row)
		}
	}
}

func TestE3WithinEnvelope(t *testing.T) {
	tab := run(t, "E3")
	for _, row := range tab.Rows {
		re, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			t.Fatalf("bad rel.err %q", row[5])
		}
		if re > 0.3 || re < -0.3 {
			t.Errorf("rel.err %v outside envelope: %v", re, row)
		}
	}
}

func TestE4WithinEnvelope(t *testing.T) {
	tab := run(t, "E4")
	for _, row := range tab.Rows {
		re := row[5]
		if re == "0" {
			continue
		}
		v, err := strconv.ParseFloat(re, 64)
		if err != nil {
			t.Fatalf("bad rel.err %q", re)
		}
		if v > 0.3 || v < -0.3 {
			t.Errorf("rel.err %v outside envelope: %v", v, row)
		}
	}
}

func TestE5LineageGrowsFasterThanAutomaton(t *testing.T) {
	tab := run(t, "E5")
	// The clauses/transitions ratio must increase monotonically with i.
	var prev float64 = -1
	for _, row := range tab.Rows {
		r, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatalf("bad ratio %q", row[len(row)-1])
		}
		if r < prev {
			t.Errorf("ratio not increasing: %v after %v", r, prev)
		}
		prev = r
	}
}

func TestE6Runs(t *testing.T) { run(t, "E6") }

func TestE7ErrorWithinEnvelope(t *testing.T) {
	tab := run(t, "E7")
	for _, row := range tab.Rows {
		if row[len(row)-1] == "false" {
			t.Errorf("estimate left the ±ε envelope: %v", row)
		}
	}
}

func TestE8Runs(t *testing.T) { run(t, "E8") }

func TestE9SafePlanExact(t *testing.T) {
	tab := run(t, "E9")
	for _, row := range tab.Rows {
		if row[5] != "true" {
			t.Errorf("safe plan disagreed with brute force: %v", row)
		}
	}
}

func TestA1BinaryBeatsUnary(t *testing.T) {
	tab := run(t, "A1")
	for _, row := range tab.Rows {
		n, _ := strconv.Atoi(row[0])
		binStates, _ := strconv.Atoi(row[2])
		unaStates, _ := strconv.Atoi(row[4])
		if n >= 10 && binStates >= unaStates {
			t.Errorf("binary gadget (%d states) not smaller than unary (%d) at n=%d", binStates, unaStates, n)
		}
		// Both must accept exactly n trees, verified on every row.
		want := row[0] + " / " + row[0]
		if row[5] != want {
			t.Errorf("accepted counts %q, want %q", row[5], want)
		}
	}
}

func TestA2Linear(t *testing.T) {
	tab := run(t, "A2")
	for _, row := range tab.Rows {
		ratio, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatalf("bad ratio %q", row[len(row)-1])
		}
		if ratio > 3 {
			t.Errorf("translation super-linear: states/length = %v", ratio)
		}
	}
}

func TestAllQuick(t *testing.T) {
	tables := All(Opts{Quick: true, Epsilon: 0.2, Seed: 9})
	if len(tables) != len(IDs()) {
		t.Errorf("All returned %d tables, want %d", len(tables), len(IDs()))
	}
}

func TestE10BothPipelinesWithinEnvelope(t *testing.T) {
	tab := run(t, "E10")
	for _, row := range tab.Rows {
		for _, col := range []int{7, 8} {
			re := row[col]
			if re == "0" {
				continue
			}
			v, err := strconv.ParseFloat(re, 64)
			if err != nil {
				t.Fatalf("bad rel.err %q", re)
			}
			if v > 0.3 || v < -0.3 {
				t.Errorf("rel.err %v outside envelope: %v", v, row)
			}
		}
	}
}

func TestE11FPRASBeatsMCOnSmallProbabilities(t *testing.T) {
	tab := run(t, "E11")
	// On the smallest probability row, MC must have collapsed (rel.err
	// −1.000, i.e. estimate 0) while the FPRAS stays accurate.
	last := tab.Rows[len(tab.Rows)-1]
	if last[2] != "-1.000" {
		t.Errorf("expected MC collapse on the smallest probability, got rel.err %q", last[2])
	}
	v, err := strconv.ParseFloat(last[5], 64)
	if err != nil {
		t.Fatalf("bad FPRAS rel.err %q", last[5])
	}
	if v > 0.3 || v < -0.3 {
		t.Errorf("FPRAS rel.err %v on small probability", v)
	}
}
