package experiments

import (
	"errors"
	"fmt"
	"time"

	"pqe/internal/cq"
	"pqe/internal/gen"
	"pqe/internal/hypertree"
	"pqe/internal/lineage"
	"pqe/internal/obdd"
	"pqe/internal/reduction"
)

// E12OBDD measures the practical intensional pipeline — compile the
// lineage to an OBDD, after which weighted model counting is linear in
// the diagram — against the paper's reduction automaton as the database
// grows under a fixed 3-path query. On layered instances the final
// diagram can stay modest, but the DNF→OBDD Shannon compilation visits
// a number of residual clause sets that grows exponentially with the
// layer width, so compilation time (and, with worse orders, size)
// explodes while the Proposition 1 automaton is built in polynomial
// time. A work budget detects blow-up without melting the machine.
func E12OBDD(o Opts) *Table {
	o = o.withDefaults()
	t := &Table{
		ID:     "E12",
		Title:  "Knowledge compilation (lineage → OBDD) vs reduction automaton",
		Anchor: "Section 1 (intensional approach in practice)",
		Header: []string{"layer width", "|D|", "lineage clauses", "OBDD nodes", "OBDD time", "NFTA transitions", "NFTA time"},
	}
	widths := []int{2, 3, 4}
	if o.Quick {
		widths = []int{2, 3}
	}
	const budget = 200_000
	q := cq.PathQuery("R", 3)
	dec, err := hypertree.Decompose(q)
	if err != nil {
		t.Note("decompose failed: %v", err)
		return t
	}
	for _, w := range widths {
		h := gen.LayeredPathInstance(q, w, gen.ProbHalf, o.Seed)
		d := h.DB()
		dnf, err := lineage.Compute(q, d, 0)
		if err != nil {
			t.Add(fmt.Sprint(w), fmt.Sprint(d.Size()), "error: "+err.Error(), "—", "—", "—", "—")
			continue
		}
		start := time.Now()
		bdd, err := obdd.CompileDNF(dnf, budget)
		obddTime := time.Since(start)
		nodes := "over budget"
		if err == nil {
			nodes = fmt.Sprint(bdd.Size())
		} else if !errors.Is(err, obdd.ErrTooLarge) {
			nodes = "error: " + err.Error()
		}
		start = time.Now()
		red, err := reduction.BuildUR(q, d, dec)
		nftaTime := time.Since(start)
		trans := "—"
		if err == nil {
			trans = fmt.Sprint(red.Auto.NumTransitions())
		}
		t.Add(fmt.Sprint(w), fmt.Sprint(d.Size()), fmt.Sprint(dnf.NumClauses()),
			nodes, ms(obddTime), trans, ms(nftaTime))
	}
	t.Note("shape to hold: DNF→OBDD compilation effort explodes with the layer width (the Shannon recursion visits exponentially many residual clause sets; 'over budget' = aborted), while the reduction automaton is built in milliseconds at polynomial size — the intensional pipeline's cost is witness-structure-bound, the reduction's is not")
	return t
}
