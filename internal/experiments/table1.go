package experiments

import (
	"errors"
	"fmt"

	"pqe/internal/core"
	"pqe/internal/cq"
	"pqe/internal/exact"
	"pqe/internal/gen"
)

// Table1 regenerates the paper's Table 1 (the PQE tractability
// landscape) operationally: one representative query per row, each
// classified along the Bounded-HW / Self-Join-Free / Safe axes and
// evaluated with the algorithm the landscape prescribes. The two bold
// cells of the paper (bounded HW + SJF, safe or not ⇒ FPRAS in combined
// complexity) must run and agree with ground truth; the open cells must
// be detected and refused.
func Table1(o Opts) *Table {
	o = o.withDefaults()
	t := &Table{
		ID:     "T1",
		Title:  "Tractability landscape for PQE (paper Table 1)",
		Anchor: "Table 1",
		Header: []string{"query", "bounded-HW", "SJF", "safe", "prior (data)", "this work (combined)", "measured", "exact", "status"},
	}

	type row struct {
		name     string
		q        *cq.Query
		prior    string
		maxWidth int // 0 = unlimited; a cap simulates "outside the bounded-HW class"
	}
	rows := []row{
		{"star S1(x,y1),S2(x,y2)", cq.StarQuery("S", 2), "FP [10]", 0},
		{"3-path R1..R3", cq.PathQuery("R", 3), "#P-hard [10]", 0},
		{"triangle C1..C3 (width 2 allowed)", cq.CycleQuery("C", 3), "#P-hard [10]", 0},
		{"triangle C1..C3 (width capped at 1)", cq.CycleQuery("C", 3), "FP if safe [10]", 1},
		{"self-join R(x,y),R(y,z)", cq.MustParse("R(x,y), R(y,z)"), "depends [11]", 0},
	}

	for _, r := range rows {
		class := core.Classify(r.q, r.maxWidth)
		// Domain size 2 keeps random instances dense enough that joins
		// actually occur and the probabilities are non-degenerate.
		h := gen.Instance(r.q, gen.Config{
			FactsPerRelation: 3, DomainSize: 2,
			Model: gen.ProbRandomRational, Seed: o.Seed,
		})
		var measured, status, ours string
		res, err := core.Evaluate(r.q, h, core.Options{Epsilon: o.Epsilon, Seed: o.Seed, Workers: o.Workers, MaxWidth: r.maxWidth})
		switch {
		case err == nil && res.Exact:
			ours = "exact (safe plan)"
			measured = fmt.Sprintf("%.6f", res.Probability)
		case err == nil:
			ours = "FPRAS (Thm 1)"
			measured = fmt.Sprintf("%.6f", res.Probability)
		case errors.Is(err, core.ErrUnsupported):
			ours = "open"
			measured = "—"
		default:
			ours = "error"
			measured = err.Error()
		}
		exactStr := "—"
		if err == nil && h.Size() <= 18 {
			want, _ := exact.MustPQE(r.q, h).Float64()
			exactStr = fmt.Sprintf("%.6f", want)
			switch {
			case res.Exact && closeTo(res.Probability, want, 1e-9):
				status = "ok (exact)"
			case !res.Exact && withinFactor(res.Probability, want, 0.3):
				status = "ok (within ε-envelope)"
			default:
				status = "MISMATCH"
			}
		} else if errors.Is(err, core.ErrUnsupported) {
			status = "ok (correctly refused)"
		}
		t.Add(r.name,
			fmt.Sprintf("%v (w=%d)", class.BoundedHW, class.Width),
			fmt.Sprintf("%v", class.SelfJoinFree),
			fmt.Sprintf("%v", class.Safe),
			r.prior, ours, measured, exactStr, status)
	}
	t.Note("rows 1–3 realize the paper's bold cells (safe ⇒ exact safe plan; unsafe bounded-HW SJF " +
		"⇒ FPRAS, combined complexity); rows 4–5 exercise the open cells (width above the cap, self-joins), " +
		"which must be detected and refused")
	return t
}

func closeTo(a, b, tol float64) bool {
	d := a - b
	return d < tol && d > -tol
}

func withinFactor(a, b, f float64) bool {
	if b == 0 {
		return a == 0
	}
	r := a/b - 1
	return r < f && r > -f
}
