package experiments

import (
	"fmt"
	"time"

	"pqe/internal/core"
	"pqe/internal/cq"
	"pqe/internal/exact"
	"pqe/internal/gen"
	"pqe/internal/hypertree"
	"pqe/internal/lineage"
	"pqe/internal/reduction"
)

// E5Lineage measures the Section 1.1 claim head-on: over layered
// databases the DNF lineage of the path query Q_i has width^(i+1)
// clauses (Θ(|D|^i) in general), while the automaton of Proposition 1
// stays polynomial. This is the crossover that makes the intensional
// approach collapse and the paper's reduction survive.
func E5Lineage(o Opts) *Table {
	o = o.withDefaults()
	t := &Table{
		ID:     "E5",
		Title:  "Lineage blow-up vs automaton size on 3Path (Corollary 1)",
		Anchor: "Section 1.1; Corollary 1",
		Header: []string{"i (query len)", "|D|", "lineage clauses", "lineage literals", "NFTA states", "NFTA transitions", "clauses/transitions"},
	}
	width := 3
	lens := []int{2, 3, 4, 5, 6, 7}
	if o.Quick {
		lens = []int{2, 3, 4}
	}
	for _, i := range lens {
		q := cq.PathQuery("R", i)
		h := gen.LayeredPathInstance(q, width, gen.ProbHalf, o.Seed)
		d := h.DB()
		dnf, err := lineage.Compute(q, d, 5_000_000)
		clauses, literals := "overflow", "overflow"
		clausesN := -1
		if err == nil {
			clauses = fmt.Sprint(dnf.NumClauses())
			literals = fmt.Sprint(dnf.Size())
			clausesN = dnf.NumClauses()
		}
		dec, err := hypertree.Decompose(q)
		if err != nil {
			t.Add(fmt.Sprint(i), fmt.Sprint(d.Size()), clauses, literals, "—", "—", "—")
			continue
		}
		red, err := reduction.BuildUR(q, d, dec)
		if err != nil {
			t.Add(fmt.Sprint(i), fmt.Sprint(d.Size()), clauses, literals, "—", "—", "—")
			continue
		}
		ratio := "—"
		if clausesN > 0 {
			ratio = fmt.Sprintf("%.2f", float64(clausesN)/float64(red.Auto.NumTransitions()))
		}
		t.Add(fmt.Sprint(i), fmt.Sprint(d.Size()), clauses, literals,
			fmt.Sprint(red.Auto.NumStates()), fmt.Sprint(red.Auto.NumTransitions()), ratio)
	}
	t.Note("shape to hold: clauses grow as %d^(i+1) (exponential in i); automaton size grows polynomially, so the ratio diverges", width)
	return t
}

// E6ScaleDB sweeps the database size for a fixed query and records the
// end-to-end FPRAS runtime, which Theorem 1 bounds polynomially in |D|.
func E6ScaleDB(o Opts) *Table {
	o = o.withDefaults()
	t := &Table{
		ID:     "E6",
		Title:  "FPRAS runtime scaling in database size (fixed Q = 3-path)",
		Anchor: "Theorem 1 runtime: poly(|Q|, |H|, 1/ε)",
		Header: []string{"|D|", "build time", "count time", "total", "estimate"},
	}
	q := cq.PathQuery("R", 3)
	chains := []int{2, 4, 8, 12, 16}
	if o.Quick {
		chains = []int{2, 4}
	}
	dec, err := hypertree.Decompose(q)
	if err != nil {
		t.Note("decompose failed: %v", err)
		return t
	}
	for _, c := range chains {
		h := gen.SparsePathInstance(q, c, 2, gen.ProbHalf, o.Seed)
		d := h.DB()
		start := time.Now()
		red, err := reduction.BuildUR(q, d, dec)
		buildTime := time.Since(start)
		if err != nil {
			t.Add(fmt.Sprint(d.Size()), "error: "+err.Error(), "—", "—", "—")
			continue
		}
		start = time.Now()
		got, err := core.UREstimate(q, d, core.Options{Epsilon: o.Epsilon, Seed: o.Seed, Workers: o.Workers})
		countTime := time.Since(start)
		if err != nil {
			t.Add(fmt.Sprint(d.Size()), ms(buildTime), "error: "+err.Error(), "—", "—")
			continue
		}
		t.Add(fmt.Sprint(d.Size()), ms(buildTime), ms(countTime), ms(buildTime+countTime), got.String())
		_ = red
	}
	t.Note("shape to hold: runtime grows polynomially (no exponential wall) as |D| grows")
	return t
}

// E7ScaleEps sweeps ε for a fixed instance and records runtime and the
// measured error against the exact oracle: runtime must grow
// polynomially as ε shrinks, and the measured error must stay inside
// the shrinking envelope.
func E7ScaleEps(o Opts) *Table {
	o = o.withDefaults()
	t := &Table{
		ID:     "E7",
		Title:  "FPRAS runtime and error vs ε (fixed Q, D)",
		Anchor: "Theorem 1 runtime: poly(1/ε); FPRAS guarantee (1±ε)",
		Header: []string{"ε", "time", "Pr estimate", "Pr exact", "rel.err", "within ±ε"},
	}
	// A layered instance has many witnesses per relation, so the
	// counting unions genuinely overlap and the ε-dependent sampling
	// effort is exercised (on overlap-free instances the estimator's
	// unions are exact and ε barely affects runtime).
	q := cq.PathQuery("R", 3)
	h := gen.LayeredPathInstance(q, 2, gen.ProbRandomRational, o.Seed)
	want, _ := exact.MustPQE(q, h).Float64()
	epss := []float64{0.5, 0.3, 0.2, 0.1, 0.05}
	if o.Quick {
		epss = []float64{0.3, 0.1}
	}
	for _, eps := range epss {
		start := time.Now()
		got, err := core.PQEEstimate(q, h, core.Options{Epsilon: eps, Seed: o.Seed, Workers: o.Workers})
		elapsed := time.Since(start)
		if err != nil {
			t.Add(fmt.Sprint(eps), "error: "+err.Error(), "—", "—", "—", "—")
			continue
		}
		within := "—"
		if want > 0 {
			r := got/want - 1
			within = fmt.Sprintf("%v", r <= eps && r >= -eps)
		}
		t.Add(fmt.Sprintf("%.2f", eps), ms(elapsed),
			fmt.Sprintf("%.6f", got), fmt.Sprintf("%.6f", want),
			relErr(got, want), within)
	}
	t.Note("shape to hold: time grows as ε shrinks (poly in 1/ε); measured error within the envelope")
	return t
}

// E8KarpLuby compares the intensional baseline (Karp–Luby over the DNF
// lineage) with the combined-complexity FPRAS as the query grows. The
// baseline's per-sample cost is linear in the lineage, which explodes
// with i; the FPRAS cost tracks the polynomial automaton size.
func E8KarpLuby(o Opts) *Table {
	o = o.withDefaults()
	t := &Table{
		ID:     "E8",
		Title:  "Intensional baseline (Karp–Luby on lineage) vs combined FPRAS",
		Anchor: "Section 1 (intensional approach); Corollary 1",
		Header: []string{"i", "|D|", "lineage clauses", "KL time", "KL est", "FPRAS time", "FPRAS est", "exact"},
	}
	width := 2
	lens := []int{2, 3, 4, 5}
	if o.Quick {
		lens = []int{2, 3}
	}
	for _, i := range lens {
		q := cq.PathQuery("R", i)
		h := gen.LayeredPathInstance(q, width, gen.ProbRandomRational, o.Seed+int64(i))
		d := h.DB()

		exactStr := "—"
		var want float64
		if d.Size() <= 20 {
			want, _ = exact.MustPQE(q, h).Float64()
			exactStr = fmt.Sprintf("%.6f", want)
		}

		start := time.Now()
		dnf, err := lineage.Compute(q, d, 5_000_000)
		klTime := time.Since(start)
		klStr, clausesStr := "—", "overflow"
		if err == nil {
			clausesStr = fmt.Sprint(dnf.NumClauses())
			start = time.Now()
			kl := dnf.KarpLuby(h, lineage.KarpLubyOptions{Samples: 4000, Seed: o.Seed})
			klTime += time.Since(start)
			klStr = fmt.Sprintf("%.6f", kl)
		}

		start = time.Now()
		fpras, err := core.PQEEstimate(q, h, core.Options{Epsilon: o.Epsilon, Seed: o.Seed, Workers: o.Workers})
		fprasTime := time.Since(start)
		fprasStr := "—"
		if err == nil {
			fprasStr = fmt.Sprintf("%.6f", fpras)
		}

		t.Add(fmt.Sprint(i), fmt.Sprint(d.Size()), clausesStr,
			ms(klTime), klStr, ms(fprasTime), fprasStr, exactStr)
	}
	t.Note("shape to hold: Karp–Luby cost is driven by the lineage (exponential in i); the FPRAS stays polynomial — the crossover favours the FPRAS as i grows")
	return t
}
