package experiments

import (
	"fmt"
	"math/big"
	"time"

	"pqe/internal/core"
	"pqe/internal/cq"
	"pqe/internal/exact"
	"pqe/internal/gen"
	"pqe/internal/hypertree"
	"pqe/internal/pdb"
	"pqe/internal/reduction"
	"pqe/internal/safeplan"
)

// E2Path validates Theorem 2: PathEstimate approximates UR(Q, D) for
// self-join-free path queries within (1±ε), with runtime recorded per
// (query length, database size).
func E2Path(o Opts) *Table {
	o = o.withDefaults()
	t := &Table{
		ID:     "E2",
		Title:  "PathEstimate accuracy on uniform reliability (Theorem 2)",
		Anchor: "Theorem 2, Section 3",
		Header: []string{"|Q|", "|D|", "UR exact", "UR estimate", "rel.err", "time"},
	}
	lens := []int{2, 3, 4, 5}
	if o.Quick {
		lens = []int{2, 3}
	}
	for i, n := range lens {
		q := cq.PathQuery("R", n)
		h := gen.SparsePathInstance(q, 2, 1, gen.ProbHalf, o.Seed+int64(i))
		d := h.DB()
		want, _ := new(big.Float).SetInt(exact.MustUR(q, d)).Float64()
		start := time.Now()
		got, err := core.PathEstimate(q, d, core.Options{Epsilon: o.Epsilon, Seed: o.Seed, Workers: o.Workers})
		elapsed := time.Since(start)
		if err != nil {
			t.Add(fmt.Sprint(n), fmt.Sprint(d.Size()), "—", "error: "+err.Error(), "—", "—")
			continue
		}
		t.Add(fmt.Sprint(n), fmt.Sprint(d.Size()),
			fmt.Sprintf("%.0f", want), fmt.Sprintf("%.2f", got.Float()),
			relErr(got.Float(), want), ms(elapsed))
	}
	t.Note("shape to hold: rel.err within ±ε = ±%.2f for every row", o.Epsilon)
	return t
}

// E3UR validates Theorem 3: UREstimate via the augmented-NFTA pipeline,
// on acyclic and width-2 cyclic queries.
func E3UR(o Opts) *Table {
	o = o.withDefaults()
	t := &Table{
		ID:     "E3",
		Title:  "UREstimate accuracy (Theorem 3, Proposition 1 pipeline)",
		Anchor: "Theorem 3, Section 4",
		Header: []string{"query", "width", "|D|", "UR exact", "UR estimate", "rel.err", "time"},
	}
	queries := []*cq.Query{
		cq.PathQuery("R", 3),
		cq.StarQuery("S", 3),
		cq.MustParse("R1(x,y), R2(y,z), R3(y,w)"),
		cq.CycleQuery("C", 3),
		cq.SnowflakeQuery("F", 2, 1),
	}
	if o.Quick {
		queries = queries[:2]
	}
	for i, q := range queries {
		class := core.Classify(q, 0)
		var h *pdb.Probabilistic
		if i == 4 {
			h = gen.SnowflakeInstance(q, 2, 1, gen.ProbHalf, o.Seed)
		} else {
			h = gen.Instance(q, gen.Config{FactsPerRelation: 3, DomainSize: 3, Seed: o.Seed + int64(i)})
		}
		d := h.DB()
		want, _ := new(big.Float).SetInt(exact.MustUR(q, d)).Float64()
		start := time.Now()
		got, err := core.UREstimate(q, d, core.Options{Epsilon: o.Epsilon, Seed: o.Seed, Workers: o.Workers})
		elapsed := time.Since(start)
		if err != nil {
			t.Add(q.String(), fmt.Sprint(class.Width), fmt.Sprint(d.Size()), "—", "error: "+err.Error(), "—", "—")
			continue
		}
		t.Add(q.String(), fmt.Sprint(class.Width), fmt.Sprint(d.Size()),
			fmt.Sprintf("%.0f", want), fmt.Sprintf("%.2f", got.Float()),
			relErr(got.Float(), want), ms(elapsed))
	}
	t.Note("covers width-1 (acyclic), width-2 (triangle) and snowflake-shaped queries; rel.err within ±%.2f", o.Epsilon)
	return t
}

// E4PQE validates Theorem 1: PQEEstimate with general rational
// probabilities (the multiplier construction) against the exact oracle.
func E4PQE(o Opts) *Table {
	o = o.withDefaults()
	t := &Table{
		ID:     "E4",
		Title:  "PQEEstimate accuracy with rational probabilities (Theorem 1)",
		Anchor: "Theorem 1, Section 5",
		Header: []string{"query", "|D|", "tree size", "Pr exact", "Pr estimate", "rel.err", "time"},
	}
	queries := []*cq.Query{
		cq.PathQuery("R", 2),
		cq.PathQuery("R", 3),
		cq.StarQuery("S", 2),
		cq.CycleQuery("C", 3),
	}
	if o.Quick {
		queries = queries[:2]
	}
	for i, q := range queries {
		h := gen.Instance(q, gen.Config{
			FactsPerRelation: 3, DomainSize: 2,
			Model: gen.ProbRandomRational, Seed: o.Seed + int64(i),
		})
		want, _ := exact.MustPQE(q, h).Float64()
		treeSize := "—"
		if dec, err := hypertree.Decompose(q); err == nil {
			if red, err := reduction.BuildPQE(q, h, dec); err == nil {
				treeSize = fmt.Sprint(red.TreeSize)
			}
		}
		start := time.Now()
		got, err := core.PQEEstimate(q, h, core.Options{Epsilon: o.Epsilon, Seed: o.Seed, Workers: o.Workers})
		elapsed := time.Since(start)
		if err != nil {
			t.Add(q.String(), fmt.Sprint(h.Size()), treeSize, "—", "error: "+err.Error(), "—", "—")
			continue
		}
		t.Add(q.String(), fmt.Sprint(h.Size()), treeSize,
			fmt.Sprintf("%.6f", want), fmt.Sprintf("%.6f", got),
			relErr(got, want), ms(elapsed))
	}
	t.Note("multiplier gadgets make accepted-tree counts proportional to subinstance weights; rel.err within ±%.2f", o.Epsilon)
	return t
}

// E9Safe validates Table 1 row 1: the Dalvi–Suciu safe plan is exact on
// hierarchical queries, and the FPRAS agrees within ε when forced.
func E9Safe(o Opts) *Table {
	o = o.withDefaults()
	t := &Table{
		ID:     "E9",
		Title:  "Safe queries: exact safe plan vs forced FPRAS",
		Anchor: "Table 1 row 1; Dalvi–Suciu [10]",
		Header: []string{"query", "|D|", "safe plan", "brute force", "FPRAS", "plan==bf", "fpras rel.err"},
	}
	sizes := []int{2, 3, 4}
	if o.Quick {
		sizes = []int{2}
	}
	for i, n := range sizes {
		q := cq.StarQuery("S", n)
		h := gen.Instance(q, gen.Config{
			FactsPerRelation: 3, DomainSize: 3,
			Model: gen.ProbRandomRational, Seed: o.Seed + int64(i),
		})
		plan, err := safeplan.Evaluate(q, h)
		if err != nil {
			t.Add(q.String(), fmt.Sprint(h.Size()), "error: "+err.Error(), "—", "—", "—", "—")
			continue
		}
		planF, _ := plan.Float64()
		bf, _ := exact.MustPQE(q, h).Float64()
		fpras, err := core.PQEEstimate(q, h, core.Options{Epsilon: o.Epsilon, Seed: o.Seed, Workers: o.Workers})
		fprasStr := "—"
		fprasErr := "—"
		if err == nil {
			fprasStr = fmt.Sprintf("%.6f", fpras)
			fprasErr = relErr(fpras, bf)
		}
		t.Add(q.String(), fmt.Sprint(h.Size()),
			fmt.Sprintf("%.6f", planF), fmt.Sprintf("%.6f", bf), fprasStr,
			fmt.Sprintf("%v", closeTo(planF, bf, 1e-12)), fprasErr)
	}
	t.Note("the safe plan must match brute force to machine precision (it is exact over rationals)")
	return t
}
