package experiments

import (
	"fmt"
	"math/big"
	"time"

	"pqe/internal/alphabet"
	"pqe/internal/nfta"
)

// A1Mult ablates the Section 5.1 multiplier gadget: the paper's binary
// comparator uses Θ(log n) states and digit nodes per transition, while
// the naive unary alternative needs Θ(n). Since n is a probability
// numerator (exponential in its bit width), the binary design is what
// keeps Theorem 1 polynomial in |H|.
func A1Mult(o Opts) *Table {
	o = o.withDefaults()
	t := &Table{
		ID:     "A1",
		Title:  "Multiplier gadget ablation: binary comparator vs unary chain",
		Anchor: "Section 5.1, Definition 2",
		Header: []string{"multiplier n", "binary digits", "binary states", "unary digits", "unary states", "trees accepted (both)"},
	}
	mults := []int64{2, 5, 10, 50, 200, 1000}
	if o.Quick {
		mults = []int64{2, 10, 50}
	}
	for _, n := range mults {
		in := alphabet.New()
		ma := nfta.NewMult(in)
		root := ma.AddState()
		ma.SetInitial(root)
		m := big.NewInt(n)
		if err := ma.AddTransition(root, in.Intern("x"), m, nfta.DigitsFor(m)); err != nil {
			t.Add(fmt.Sprint(n), "error: "+err.Error(), "—", "—", "—", "—")
			continue
		}
		bin, err := ma.Translate()
		if err != nil {
			t.Add(fmt.Sprint(n), "error: "+err.Error(), "—", "—", "—", "—")
			continue
		}
		una, err := ma.TranslateUnary()
		if err != nil {
			t.Add(fmt.Sprint(n), "—", fmt.Sprint(bin.NumStates()), "error: "+err.Error(), "—", "—")
			continue
		}
		// The determinization-based oracle verifies every row exactly,
		// even at the unary gadget's Θ(n) tree sizes.
		binCount := nfta.ExactCountDet(bin, 1+nfta.DigitsFor(m))
		unaCount := nfta.ExactCountDet(una, 1+nfta.UnaryDigits(n))
		accepted := fmt.Sprintf("%v / %v", binCount, unaCount)
		t.Add(fmt.Sprint(n),
			fmt.Sprint(nfta.DigitsFor(m)), fmt.Sprint(bin.NumStates()),
			fmt.Sprint(nfta.UnaryDigits(n)), fmt.Sprint(una.NumStates()),
			accepted)
	}
	t.Note("shape to hold: binary columns grow logarithmically in n, unary columns linearly; both accept exactly n trees")
	return t
}

// A2Aug measures Remark 1: translating an augmented NFTA (string
// annotations + ? symbols) into an ordinary NFTA is linear in the
// annotation length — no material blow-up.
func A2Aug(o Opts) *Table {
	o = o.withDefaults()
	t := &Table{
		ID:     "A2",
		Title:  "Augmented-NFTA translation cost vs annotation length (Remark 1)",
		Anchor: "Section 4.1, Remark 1",
		Header: []string{"annotation length", "aug size", "translated states", "translated transitions", "translate time", "states/length"},
	}
	lens := []int{4, 16, 64, 256, 1024}
	if o.Quick {
		lens = []int{4, 32}
	}
	for _, n := range lens {
		in := alphabet.New()
		aug := nfta.NewAugmented(in)
		root := aug.AddState()
		aug.SetInitial(root)
		label := make([]nfta.AugSymbol, n)
		for i := range label {
			sym := in.Intern(fmt.Sprintf("s%d", i))
			if i%2 == 0 {
				label[i] = nfta.Opt(sym)
			} else {
				label[i] = nfta.Plain(sym)
			}
		}
		aug.AddTransition(root, label)
		start := time.Now()
		out, err := aug.Translate()
		elapsed := time.Since(start)
		if err != nil {
			t.Add(fmt.Sprint(n), "—", "error: "+err.Error(), "—", "—", "—")
			continue
		}
		t.Add(fmt.Sprint(n), fmt.Sprint(aug.Size()),
			fmt.Sprint(out.NumStates()), fmt.Sprint(out.NumTransitions()),
			ms(elapsed), fmt.Sprintf("%.2f", float64(out.NumStates())/float64(n)))
	}
	t.Note("shape to hold: states/length stays ≈ 1 (constant), confirming the translation is linear")
	return t
}
