// Package experiments regenerates every table and figure of the paper's
// evaluation, plus one derived experiment per quantitative claim. The
// paper is pure theory: its only table is Table 1 (the tractability
// landscape), so the suite materializes each theorem's guarantee as a
// measurable experiment, per the experiment index in DESIGN.md:
//
//	T1  Table 1 landscape (classification + routing)
//	E2  Theorem 2: PathEstimate accuracy and runtime
//	E3  Theorem 3: UREstimate accuracy
//	E4  Theorem 1: PQEEstimate accuracy
//	E5  §1.1: lineage Θ(|D|^i) blow-up vs polynomial automaton size
//	E6  Theorem 1: runtime scaling in |D|
//	E7  Theorem 1: runtime scaling in 1/ε and measured error envelope
//	E8  §1: Karp–Luby on lineage vs the combined FPRAS
//	E9  Table 1 row 1: safe plans are exact, FPRAS agrees
//	E10 path queries: tree pipeline (Thm 1) vs string pipeline (§3)
//	E11 small probabilities: naive Monte Carlo vs the FPRAS
//	E12 knowledge compilation (lineage → OBDD) vs the automaton
//	A1  §5.1 ablation: binary vs unary multiplier gadget
//	A2  §4.1 ablation: augmented-NFTA translation is linear (Remark 1)
//
// Each experiment returns a Table that cmd/pqebench prints and
// EXPERIMENTS.md records.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Anchor string // where in the paper this comes from
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row.
func (t *Table) Add(cols ...string) {
	t.Rows = append(t.Rows, cols)
}

// Note appends a free-form note line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Format renders the table as aligned text.
func (t *Table) Format(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	if t.Anchor != "" {
		fmt.Fprintf(w, "paper anchor: %s\n", t.Anchor)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cols []string) {
		parts := make([]string, len(cols))
		for i, c := range cols {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title)
	if t.Anchor != "" {
		fmt.Fprintf(w, "*Paper anchor: %s*\n\n", t.Anchor)
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | "))
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n*Note: %s*\n", n)
	}
	fmt.Fprintln(w)
}

// Opts configures the suite.
type Opts struct {
	// Epsilon is the FPRAS target error. Default 0.1.
	Epsilon float64
	// Seed drives all randomized components. Default 1.
	Seed int64
	// Quick shrinks sweeps for use inside testing.B benchmarks.
	Quick bool
	// Workers bounds the goroutines used inside each counting trial
	// (0 or 1 = sequential). Results are Workers-independent for a
	// fixed Seed.
	Workers int
}

func (o Opts) withDefaults() Opts {
	if o.Epsilon <= 0 || o.Epsilon >= 1 {
		o.Epsilon = 0.1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// All runs the complete suite in order.
func All(o Opts) []*Table {
	return []*Table{
		Table1(o),
		E2Path(o),
		E3UR(o),
		E4PQE(o),
		E5Lineage(o),
		E6ScaleDB(o),
		E7ScaleEps(o),
		E8KarpLuby(o),
		E9Safe(o),
		E10Pipeline(o),
		E11SmallProb(o),
		E12OBDD(o),
		A1Mult(o),
		A2Aug(o),
	}
}

// ByID returns the experiment runner for an ID, or nil.
func ByID(id string) func(Opts) *Table {
	switch strings.ToUpper(id) {
	case "T1", "TABLE1":
		return Table1
	case "E2":
		return E2Path
	case "E3":
		return E3UR
	case "E4":
		return E4PQE
	case "E5":
		return E5Lineage
	case "E6":
		return E6ScaleDB
	case "E7":
		return E7ScaleEps
	case "E8":
		return E8KarpLuby
	case "E9":
		return E9Safe
	case "E10":
		return E10Pipeline
	case "E11":
		return E11SmallProb
	case "E12":
		return E12OBDD
	case "A1":
		return A1Mult
	case "A2":
		return A2Aug
	}
	return nil
}

// IDs lists the experiment identifiers in order.
func IDs() []string {
	return []string{"T1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "A1", "A2"}
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}

func relErr(est, exact float64) string {
	if exact == 0 {
		if est == 0 {
			return "0"
		}
		return "inf"
	}
	return fmt.Sprintf("%.3f", est/exact-1)
}
