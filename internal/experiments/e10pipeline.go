package experiments

import (
	"fmt"
	"time"

	"pqe/internal/core"
	"pqe/internal/cq"
	"pqe/internal/exact"
	"pqe/internal/gen"
)

// E10Pipeline compares the two FPRAS pipelines on path queries: the
// general tree pipeline of Theorem 1 (hypertree decomposition →
// augmented NFTA → multipliers → CountNFTA) against the specialized
// string pipeline (Section 3 NFA → string multipliers → CountNFA,
// following footnote 2 of §5.1). Both must agree with the exact oracle;
// the string pipeline skips all tree machinery.
func E10Pipeline(o Opts) *Table {
	o = o.withDefaults()
	t := &Table{
		ID:     "E10",
		Title:  "Path queries: tree pipeline (Thm 1) vs string pipeline (§3 + §5.1 footnote 2)",
		Anchor: "Section 3; Section 5.1 footnote 2",
		Header: []string{"|Q|", "|D|", "Pr exact", "tree est", "tree time", "string est", "string time", "tree rel.err", "string rel.err"},
	}
	lens := []int{2, 3, 4}
	if o.Quick {
		lens = []int{2, 3}
	}
	for i, n := range lens {
		q := cq.PathQuery("R", n)
		h := gen.SparsePathInstance(q, 2, 1, gen.ProbRandomRational, o.Seed+int64(i))
		want, _ := exact.MustPQE(q, h).Float64()

		start := time.Now()
		tree, errTree := core.PQEEstimate(q, h, core.Options{Epsilon: o.Epsilon, Seed: o.Seed, Workers: o.Workers})
		treeTime := time.Since(start)

		start = time.Now()
		str, errStr := core.PathPQEEstimate(q, h, core.Options{Epsilon: o.Epsilon, Seed: o.Seed, Workers: o.Workers})
		strTime := time.Since(start)

		treeEst, treeErr := "—", "—"
		if errTree == nil {
			treeEst = fmt.Sprintf("%.6f", tree)
			treeErr = relErr(tree, want)
		}
		strEst, strErr := "—", "—"
		if errStr == nil {
			strEst = fmt.Sprintf("%.6f", str)
			strErr = relErr(str, want)
		}
		t.Add(fmt.Sprint(n), fmt.Sprint(h.Size()), fmt.Sprintf("%.6f", want),
			treeEst, ms(treeTime), strEst, ms(strTime), treeErr, strErr)
	}
	t.Note("shape to hold: both pipelines stay within ±%.2f of the oracle; the string pipeline avoids tree machinery on this query class", o.Epsilon)
	return t
}
