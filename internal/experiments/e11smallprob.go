package experiments

import (
	"fmt"
	"time"

	"pqe/internal/core"
	"pqe/internal/cq"
	"pqe/internal/exact"
	"pqe/internal/montecarlo"
	"pqe/internal/pdb"
)

// E11SmallProb contrasts the FPRAS's *relative* (1±ε) guarantee with
// naive Monte Carlo's *additive* one on queries of shrinking
// probability: with a fixed sample budget MC collapses to estimating 0
// once Pr(Q) drops below ≈ 1/samples, while the FPRAS keeps its
// relative accuracy — the reason approximation *schemes* (not plain
// sampling) are the right target for PQE.
func E11SmallProb(o Opts) *Table {
	o = o.withDefaults()
	t := &Table{
		ID:     "E11",
		Title:  "Small probabilities: naive Monte Carlo vs the FPRAS",
		Anchor: "FPRAS definition (relative guarantee), Theorem 1",
		Header: []string{"Pr exact", "MC estimate", "MC rel.err", "MC time", "FPRAS estimate", "FPRAS rel.err", "FPRAS time"},
	}
	// Chain of two facts, each with probability 1/den: Pr = 1/den².
	dens := []int64{4, 16, 64, 256}
	if o.Quick {
		dens = []int64{4, 64}
	}
	const mcSamples = 2000
	for _, den := range dens {
		q := cq.PathQuery("R", 2)
		h := pdb.Empty()
		h.Add(pdb.NewFact("R1", "a", "b"), pdb.NewProb(1, den))
		h.Add(pdb.NewFact("R2", "b", "c"), pdb.NewProb(1, den))
		want, _ := exact.MustPQE(q, h).Float64()

		start := time.Now()
		mc := montecarlo.Estimate(q, h, montecarlo.Options{Samples: mcSamples, Seed: o.Seed})
		mcTime := time.Since(start)

		start = time.Now()
		fpras, err := core.PQEEstimate(q, h, core.Options{Epsilon: o.Epsilon, Seed: o.Seed, Workers: o.Workers})
		fprasTime := time.Since(start)
		fprasStr, fprasErr := "—", "—"
		if err == nil {
			fprasStr = fmt.Sprintf("%.3e", fpras)
			fprasErr = relErr(fpras, want)
		}
		t.Add(fmt.Sprintf("%.3e", want),
			fmt.Sprintf("%.3e", mc), relErr(mc, want), ms(mcTime),
			fprasStr, fprasErr, ms(fprasTime))
	}
	t.Note("MC uses a fixed budget of %d samples: once Pr < 1/samples its estimate is usually 0 (rel.err −1); the FPRAS keeps rel.err within ±%.2f at every scale", mcSamples, o.Epsilon)
	return t
}
