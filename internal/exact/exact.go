// Package exact provides brute-force oracles for uniform reliability and
// probabilistic query evaluation, by enumerating all 2^|D| subinstances.
// They are the ground truth for the test suite and the accuracy
// experiments; their exponential cost is the baseline the paper's FPRAS
// escapes.
package exact

import (
	"math/big"

	"pqe/internal/cq"
	"pqe/internal/pdb"
)

// MaxBruteForceSize bounds the database size the oracles accept; 2^30
// subinstance evaluations is already far beyond patience.
const MaxBruteForceSize = 30

// UR returns UR(Q, D): the number of subinstances D' ⊆ D with D' ⊨ Q.
func UR(q *cq.Query, d *pdb.Database) *big.Int {
	n := d.Size()
	if n > MaxBruteForceSize {
		panic("exact: database too large for brute force")
	}
	count := big.NewInt(0)
	one := big.NewInt(1)
	mask := make([]bool, n)
	for m := 0; m < 1<<uint(n); m++ {
		for i := range mask {
			mask[i] = m&(1<<uint(i)) != 0
		}
		if cq.Satisfies(d.Subinstance(mask), q) {
			count.Add(count, one)
		}
	}
	return count
}

// PQE returns Pr_H(Q) exactly as a rational, by summing the product
// weights of the satisfying subinstances.
func PQE(q *cq.Query, h *pdb.Probabilistic) *big.Rat {
	n := h.Size()
	if n > MaxBruteForceSize {
		panic("exact: database too large for brute force")
	}
	total := new(big.Rat)
	mask := make([]bool, n)
	for m := 0; m < 1<<uint(n); m++ {
		for i := range mask {
			mask[i] = m&(1<<uint(i)) != 0
		}
		if cq.Satisfies(h.DB().Subinstance(mask), q) {
			total.Add(total, h.SubinstanceProb(mask))
		}
	}
	return total
}

// SatisfyingMasks returns the presence bitmasks of all satisfying
// subinstances, for bijection tests.
func SatisfyingMasks(q *cq.Query, d *pdb.Database) [][]bool {
	n := d.Size()
	if n > MaxBruteForceSize {
		panic("exact: database too large for brute force")
	}
	var out [][]bool
	for m := 0; m < 1<<uint(n); m++ {
		mask := make([]bool, n)
		for i := range mask {
			mask[i] = m&(1<<uint(i)) != 0
		}
		if cq.Satisfies(d.Subinstance(mask), q) {
			out = append(out, mask)
		}
	}
	return out
}

// PQEUnion returns Pr_H(Q₁ ∨ … ∨ Q_k) exactly by enumeration.
func PQEUnion(qs []*cq.Query, h *pdb.Probabilistic) *big.Rat {
	n := h.Size()
	if n > MaxBruteForceSize {
		panic("exact: database too large for brute force")
	}
	total := new(big.Rat)
	mask := make([]bool, n)
	for m := 0; m < 1<<uint(n); m++ {
		for i := range mask {
			mask[i] = m&(1<<uint(i)) != 0
		}
		world := h.DB().Subinstance(mask)
		for _, q := range qs {
			if cq.Satisfies(world, q) {
				total.Add(total, h.SubinstanceProb(mask))
				break
			}
		}
	}
	return total
}
