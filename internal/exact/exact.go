// Package exact provides brute-force oracles for uniform reliability and
// probabilistic query evaluation, by enumerating all 2^|D| subinstances.
// They are the ground truth for the test suite and the accuracy
// experiments; their exponential cost is the baseline the paper's FPRAS
// escapes.
package exact

import (
	"errors"
	"fmt"
	"math/big"

	"pqe/internal/cq"
	"pqe/internal/pdb"
)

// MaxBruteForceSize bounds the database size the oracles accept; 2^30
// subinstance evaluations is already far beyond patience.
const MaxBruteForceSize = 30

// ErrTooLarge is the sentinel matched by errors.Is when an oracle is
// asked to enumerate a database beyond MaxBruteForceSize.
var ErrTooLarge = errors.New("exact: database too large for brute force")

// SizeError is the typed error returned when |D| > MaxBruteForceSize.
// It unwraps to ErrTooLarge.
type SizeError struct {
	Size int // |D| of the rejected database
	Max  int // the MaxBruteForceSize in force
}

func (e *SizeError) Error() string {
	return fmt.Sprintf("exact: database has %d facts, brute force is capped at %d", e.Size, e.Max)
}

func (e *SizeError) Unwrap() error { return ErrTooLarge }

func checkSize(n int) error {
	if n > MaxBruteForceSize {
		return &SizeError{Size: n, Max: MaxBruteForceSize}
	}
	return nil
}

// UR returns UR(Q, D): the number of subinstances D' ⊆ D with D' ⊨ Q.
// It returns a *SizeError when |D| > MaxBruteForceSize.
func UR(q *cq.Query, d *pdb.Database) (*big.Int, error) {
	n := d.Size()
	if err := checkSize(n); err != nil {
		return nil, err
	}
	count := big.NewInt(0)
	one := big.NewInt(1)
	mask := make([]bool, n)
	for m := 0; m < 1<<uint(n); m++ {
		for i := range mask {
			mask[i] = m&(1<<uint(i)) != 0
		}
		if cq.Satisfies(d.Subinstance(mask), q) {
			count.Add(count, one)
		}
	}
	return count, nil
}

// MustUR is UR that panics on error, for tests and harnesses working
// with instances known to be small.
func MustUR(q *cq.Query, d *pdb.Database) *big.Int {
	v, err := UR(q, d)
	if err != nil {
		panic(err)
	}
	return v
}

// PQE returns Pr_H(Q) exactly as a rational, by summing the product
// weights of the satisfying subinstances. It returns a *SizeError when
// |D| > MaxBruteForceSize.
func PQE(q *cq.Query, h *pdb.Probabilistic) (*big.Rat, error) {
	n := h.Size()
	if err := checkSize(n); err != nil {
		return nil, err
	}
	total := new(big.Rat)
	mask := make([]bool, n)
	for m := 0; m < 1<<uint(n); m++ {
		for i := range mask {
			mask[i] = m&(1<<uint(i)) != 0
		}
		if cq.Satisfies(h.DB().Subinstance(mask), q) {
			total.Add(total, h.SubinstanceProb(mask))
		}
	}
	return total, nil
}

// MustPQE is PQE that panics on error.
func MustPQE(q *cq.Query, h *pdb.Probabilistic) *big.Rat {
	v, err := PQE(q, h)
	if err != nil {
		panic(err)
	}
	return v
}

// SatisfyingMasks returns the presence bitmasks of all satisfying
// subinstances, for bijection tests. It returns a *SizeError when
// |D| > MaxBruteForceSize.
func SatisfyingMasks(q *cq.Query, d *pdb.Database) ([][]bool, error) {
	n := d.Size()
	if err := checkSize(n); err != nil {
		return nil, err
	}
	var out [][]bool
	for m := 0; m < 1<<uint(n); m++ {
		mask := make([]bool, n)
		for i := range mask {
			mask[i] = m&(1<<uint(i)) != 0
		}
		if cq.Satisfies(d.Subinstance(mask), q) {
			out = append(out, mask)
		}
	}
	return out, nil
}

// MustSatisfyingMasks is SatisfyingMasks that panics on error.
func MustSatisfyingMasks(q *cq.Query, d *pdb.Database) [][]bool {
	v, err := SatisfyingMasks(q, d)
	if err != nil {
		panic(err)
	}
	return v
}

// PQEUnion returns Pr_H(Q₁ ∨ … ∨ Q_k) exactly by enumeration. It
// returns a *SizeError when |D| > MaxBruteForceSize.
func PQEUnion(qs []*cq.Query, h *pdb.Probabilistic) (*big.Rat, error) {
	n := h.Size()
	if err := checkSize(n); err != nil {
		return nil, err
	}
	total := new(big.Rat)
	mask := make([]bool, n)
	for m := 0; m < 1<<uint(n); m++ {
		for i := range mask {
			mask[i] = m&(1<<uint(i)) != 0
		}
		world := h.DB().Subinstance(mask)
		for _, q := range qs {
			if cq.Satisfies(world, q) {
				total.Add(total, h.SubinstanceProb(mask))
				break
			}
		}
	}
	return total, nil
}

// MustPQEUnion is PQEUnion that panics on error.
func MustPQEUnion(qs []*cq.Query, h *pdb.Probabilistic) *big.Rat {
	v, err := PQEUnion(qs, h)
	if err != nil {
		panic(err)
	}
	return v
}
