package exact

import (
	"math/big"
	"testing"

	"pqe/internal/cq"
	"pqe/internal/pdb"
)

func TestURSingleFact(t *testing.T) {
	d := pdb.FromFacts(pdb.NewFact("R", "a", "b"))
	q := cq.MustParse("R(x,y)")
	// Subinstances: {} (no), {R(a,b)} (yes) → 1.
	if got := UR(q, d); got.Int64() != 1 {
		t.Errorf("UR = %v", got)
	}
}

func TestURPath(t *testing.T) {
	// R1(a,b), R2(b,c): satisfying subinstances must contain both facts;
	// with an extra unrelated R1(z,z) fact, each satisfying core can
	// include or exclude it.
	d := pdb.FromFacts(
		pdb.NewFact("R1", "a", "b"),
		pdb.NewFact("R2", "b", "c"),
		pdb.NewFact("R1", "z", "z"),
	)
	q := cq.PathQuery("R", 2)
	// Satisfying: {12}, {123} → plus {R1(z,z),R2}? R1(z,z) does not join
	// R2(b,c). So exactly 2.
	if got := UR(q, d); got.Int64() != 2 {
		t.Errorf("UR = %v", got)
	}
}

func TestPQEMatchesHandComputation(t *testing.T) {
	h := pdb.Empty()
	h.Add(pdb.NewFact("R", "a"), pdb.NewProb(1, 2))
	h.Add(pdb.NewFact("S", "a"), pdb.NewProb(1, 3))
	q := cq.MustParse("R(x), S(x)")
	// Pr = 1/2 · 1/3 = 1/6.
	if got := PQE(q, h); got.Cmp(big.NewRat(1, 6)) != 0 {
		t.Errorf("PQE = %v", got)
	}
}

func TestPQEUniformHalfEqualsURScaled(t *testing.T) {
	d := pdb.FromFacts(
		pdb.NewFact("R1", "a", "b"),
		pdb.NewFact("R2", "b", "c"),
		pdb.NewFact("R2", "b", "d"),
	)
	q := cq.PathQuery("R", 2)
	h := pdb.Uniform(d)
	ur := UR(q, d)
	pqe := PQE(q, h)
	// Pr = UR / 2^|D|.
	want := new(big.Rat).SetFrac(ur, big.NewInt(8))
	if pqe.Cmp(want) != 0 {
		t.Errorf("PQE = %v, want %v", pqe, want)
	}
}

func TestSatisfyingMasks(t *testing.T) {
	d := pdb.FromFacts(pdb.NewFact("R", "a"), pdb.NewFact("R", "b"))
	q := cq.MustParse("R(x)")
	masks := SatisfyingMasks(q, d)
	if len(masks) != 3 { // {a}, {b}, {a,b}
		t.Errorf("got %d masks", len(masks))
	}
	if int64(len(masks)) != UR(q, d).Int64() {
		t.Error("mask count disagrees with UR")
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}

func TestOraclesRejectOversizedInputs(t *testing.T) {
	d := pdb.NewDatabase()
	for i := 0; i < MaxBruteForceSize+1; i++ {
		d.Add(pdb.NewFact("R", "a", string(rune('a'+i%26))+string(rune('0'+i/26))))
	}
	h := pdb.Uniform(d)
	q := cq.MustParse("R(x,y)")
	mustPanic(t, "UR", func() { UR(q, d) })
	mustPanic(t, "PQE", func() { PQE(q, h) })
	mustPanic(t, "SatisfyingMasks", func() { SatisfyingMasks(q, d) })
	mustPanic(t, "PQEUnion", func() { PQEUnion([]*cq.Query{q}, h) })
}

func TestPQEUnionSmall(t *testing.T) {
	h := pdb.Empty()
	h.Add(pdb.NewFact("A", "x"), pdb.NewProb(1, 2))
	h.Add(pdb.NewFact("B", "y"), pdb.NewProb(1, 2))
	got := PQEUnion([]*cq.Query{cq.MustParse("A(v)"), cq.MustParse("B(w)")}, h)
	// 1 − (1/2)(1/2) = 3/4.
	if got.Cmp(big.NewRat(3, 4)) != 0 {
		t.Errorf("PQEUnion = %v, want 3/4", got)
	}
}
