package exact

import (
	"errors"
	"math/big"
	"testing"

	"pqe/internal/cq"
	"pqe/internal/pdb"
)

func TestURSingleFact(t *testing.T) {
	d := pdb.FromFacts(pdb.NewFact("R", "a", "b"))
	q := cq.MustParse("R(x,y)")
	// Subinstances: {} (no), {R(a,b)} (yes) → 1.
	if got := MustUR(q, d); got.Int64() != 1 {
		t.Errorf("UR = %v", got)
	}
}

func TestURPath(t *testing.T) {
	// R1(a,b), R2(b,c): satisfying subinstances must contain both facts;
	// with an extra unrelated R1(z,z) fact, each satisfying core can
	// include or exclude it.
	d := pdb.FromFacts(
		pdb.NewFact("R1", "a", "b"),
		pdb.NewFact("R2", "b", "c"),
		pdb.NewFact("R1", "z", "z"),
	)
	q := cq.PathQuery("R", 2)
	// Satisfying: {12}, {123} → plus {R1(z,z),R2}? R1(z,z) does not join
	// R2(b,c). So exactly 2.
	if got := MustUR(q, d); got.Int64() != 2 {
		t.Errorf("UR = %v", got)
	}
}

func TestPQEMatchesHandComputation(t *testing.T) {
	h := pdb.Empty()
	h.Add(pdb.NewFact("R", "a"), pdb.NewProb(1, 2))
	h.Add(pdb.NewFact("S", "a"), pdb.NewProb(1, 3))
	q := cq.MustParse("R(x), S(x)")
	// Pr = 1/2 · 1/3 = 1/6.
	if got := MustPQE(q, h); got.Cmp(big.NewRat(1, 6)) != 0 {
		t.Errorf("PQE = %v", got)
	}
}

func TestPQEUniformHalfEqualsURScaled(t *testing.T) {
	d := pdb.FromFacts(
		pdb.NewFact("R1", "a", "b"),
		pdb.NewFact("R2", "b", "c"),
		pdb.NewFact("R2", "b", "d"),
	)
	q := cq.PathQuery("R", 2)
	h := pdb.Uniform(d)
	ur := MustUR(q, d)
	pqe := MustPQE(q, h)
	// Pr = UR / 2^|D|.
	want := new(big.Rat).SetFrac(ur, big.NewInt(8))
	if pqe.Cmp(want) != 0 {
		t.Errorf("PQE = %v, want %v", pqe, want)
	}
}

func TestSatisfyingMasks(t *testing.T) {
	d := pdb.FromFacts(pdb.NewFact("R", "a"), pdb.NewFact("R", "b"))
	q := cq.MustParse("R(x)")
	masks := MustSatisfyingMasks(q, d)
	if len(masks) != 3 { // {a}, {b}, {a,b}
		t.Errorf("got %d masks", len(masks))
	}
	if int64(len(masks)) != MustUR(q, d).Int64() {
		t.Error("mask count disagrees with UR")
	}
}

// oversized returns a database one fact past the brute-force cap.
func oversized() *pdb.Database {
	d := pdb.NewDatabase()
	for i := 0; i < MaxBruteForceSize+1; i++ {
		d.Add(pdb.NewFact("R", "a", string(rune('a'+i%26))+string(rune('0'+i/26))))
	}
	return d
}

func TestOraclesReturnTypedSizeError(t *testing.T) {
	d := oversized()
	h := pdb.Uniform(d)
	q := cq.MustParse("R(x,y)")

	calls := map[string]func() error{
		"UR":              func() error { _, err := UR(q, d); return err },
		"PQE":             func() error { _, err := PQE(q, h); return err },
		"SatisfyingMasks": func() error { _, err := SatisfyingMasks(q, d); return err },
		"PQEUnion":        func() error { _, err := PQEUnion([]*cq.Query{q}, h); return err },
	}
	for name, call := range calls {
		err := call()
		if err == nil {
			t.Errorf("%s accepted an oversized database", name)
			continue
		}
		if !errors.Is(err, ErrTooLarge) {
			t.Errorf("%s error %v does not match ErrTooLarge", name, err)
		}
		var se *SizeError
		if !errors.As(err, &se) {
			t.Errorf("%s error %v is not a *SizeError", name, err)
			continue
		}
		if se.Size != MaxBruteForceSize+1 || se.Max != MaxBruteForceSize {
			t.Errorf("%s SizeError = %+v, want Size=%d Max=%d", name, se, MaxBruteForceSize+1, MaxBruteForceSize)
		}
	}
}

// The boundary itself: a database of exactly MaxBruteForceSize facts is
// accepted (size check only — enumerating 2^30 worlds is infeasible, so
// the boundary is exercised with the check factored out).
func TestSizeCheckBoundary(t *testing.T) {
	if err := checkSize(MaxBruteForceSize); err != nil {
		t.Errorf("checkSize(%d) = %v, want nil", MaxBruteForceSize, err)
	}
	if err := checkSize(MaxBruteForceSize + 1); err == nil {
		t.Errorf("checkSize(%d) = nil, want error", MaxBruteForceSize+1)
	}
}

func TestMustVariantsPanicOnOversized(t *testing.T) {
	d := oversized()
	h := pdb.Uniform(d)
	q := cq.MustParse("R(x,y)")
	for name, f := range map[string]func(){
		"MustUR":              func() { MustUR(q, d) },
		"MustPQE":             func() { MustPQE(q, h) },
		"MustSatisfyingMasks": func() { MustSatisfyingMasks(q, d) },
		"MustPQEUnion":        func() { MustPQEUnion([]*cq.Query{q}, h) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPQEUnionSmall(t *testing.T) {
	h := pdb.Empty()
	h.Add(pdb.NewFact("A", "x"), pdb.NewProb(1, 2))
	h.Add(pdb.NewFact("B", "y"), pdb.NewProb(1, 2))
	got := MustPQEUnion([]*cq.Query{cq.MustParse("A(v)"), cq.MustParse("B(w)")}, h)
	// 1 − (1/2)(1/2) = 3/4.
	if got.Cmp(big.NewRat(3, 4)) != 0 {
		t.Errorf("PQEUnion = %v, want 3/4", got)
	}
}
