package nfta

import "fmt"

// EliminateLambda returns an equivalent λ-free NFTA, using the standard
// procedures the paper alludes to (Section 2). Two closure rules apply
// until fixpoint:
//
//   - unary λ-transitions (s, λ, (r)) are ε-moves: every transition out
//     of r is copied to s;
//   - non-unary λ-transitions (s, λ, (s₁,…,s_l)) mean s contributes no
//     tree node and stands for the forest (s₁,…,s_l): each occurrence of
//     s in the children tuple of another transition is spliced, i.e.
//     replaced by the tuple. (In the Proposition 1 construction these
//     arise at decomposition vertices that cover no atom, which the
//     bijection proof contracts away.)
//
// An error is returned if the initial state can λ-expand into a forest
// of length ≠ 1 (the language would contain non-trees) or if a λ-cycle
// prevents the fixpoint from converging within a generous bound.
func EliminateLambda(a *NFTA) (*NFTA, error) {
	if a.Initial() < 0 {
		return nil, fmt.Errorf("nfta: initial state unset")
	}
	// Work on a mutable transition set, deduplicated by key.
	work := NewWithSymbols(a.Symbols)
	for i := 0; i < a.NumStates(); i++ {
		work.AddState()
	}
	work.SetInitial(a.Initial())
	for _, tr := range a.Transitions() {
		work.AddTransitionSym(tr.From, tr.Sym, tr.Children...)
	}

	// The number of distinct transitions over fixed states, symbols and
	// bounded tuple lengths is finite; cap iterations defensively. Tuple
	// lengths can grow through splicing, so the cap below is heuristic:
	// constructions in this codebase converge in a handful of rounds.
	const maxRounds = 10000
	for round := 0; ; round++ {
		if round == maxRounds {
			return nil, fmt.Errorf("nfta: λ-elimination did not converge (λ-cycle?)")
		}
		before := work.NumTransitions()
		trs := append([]Transition(nil), work.Transitions()...)
		for _, lam := range trs {
			if lam.Sym != Lambda {
				continue
			}
			if len(lam.Children) == 1 {
				// ε-move: copy r's transitions to s.
				for _, tr := range work.From(lam.Children[0]) {
					work.AddTransitionSym(lam.From, tr.Sym, tr.Children...)
				}
				continue
			}
			// Forest splice: replace one occurrence of s at a time in
			// every children tuple; the fixpoint covers multiple
			// occurrences and cascades.
			for _, tr := range trs {
				for pos, c := range tr.Children {
					if c != lam.From {
						continue
					}
					spliced := make([]int, 0, len(tr.Children)+len(lam.Children)-1)
					spliced = append(spliced, tr.Children[:pos]...)
					spliced = append(spliced, lam.Children...)
					spliced = append(spliced, tr.Children[pos+1:]...)
					work.AddTransitionSym(tr.From, tr.Sym, spliced...)
				}
			}
		}
		if work.NumTransitions() == before {
			break
		}
	}

	// λ-expansion of the initial state into a non-unary forest has no
	// tree semantics.
	for _, tr := range work.From(work.Initial()) {
		if tr.Sym == Lambda && len(tr.Children) != 1 {
			return nil, fmt.Errorf("nfta: initial state λ-expands to a forest of length %d", len(tr.Children))
		}
	}

	// Copy over everything except λ-transitions.
	out := NewWithSymbols(a.Symbols)
	for i := 0; i < a.NumStates(); i++ {
		out.AddState()
	}
	out.SetInitial(a.Initial())
	for _, tr := range work.Transitions() {
		if tr.Sym == Lambda {
			continue
		}
		out.AddTransitionSym(tr.From, tr.Sym, tr.Children...)
	}
	return out, nil
}
