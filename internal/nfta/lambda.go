package nfta

import "fmt"

// EliminateLambda returns an equivalent λ-free NFTA, using the standard
// procedures the paper alludes to (Section 2). Two closure rules apply
// until fixpoint:
//
//   - unary λ-transitions (s, λ, (r)) are ε-moves: every transition out
//     of r is copied to s;
//   - non-unary λ-transitions (s, λ, (s₁,…,s_l)) mean s contributes no
//     tree node and stands for the forest (s₁,…,s_l): each occurrence of
//     s in the children tuple of another transition is spliced, i.e.
//     replaced by the tuple. (In the Proposition 1 construction these
//     arise at decomposition vertices that cover no atom, which the
//     bijection proof contracts away.)
//
// An error is returned if the initial state can λ-expand into a forest
// of length ≠ 1 (the language would contain non-trees) or if a λ-cycle
// prevents the fixpoint from converging within a generous bound.
//
// Duplicate (from, sym, children) triples — in the input or produced by
// the closure — collapse at their first occurrence. Duplicates share a
// From state by definition, so deduplication runs per source state over
// its (typically tiny) out-transition group, instead of routing every
// transition of the automaton through a string-keyed map: on the
// reduction pipeline, where this runs on every build over tens of
// thousands of chain transitions of which only a handful are λ, the
// global map dominated the whole translation.
//
// The result may share children tuples with a; treat a as immutable for
// the result's lifetime.
func EliminateLambda(a *NFTA) (*NFTA, error) {
	if a.Initial() < 0 {
		return nil, fmt.Errorf("nfta: initial state unset")
	}
	// Mutable transition list, seeded with the source's transitions in
	// order; closure-derived transitions append. drop marks input
	// duplicates, which are skipped everywhere below — the output then
	// lists first occurrences and derived transitions in exactly the
	// order the deduplicating work-automaton formulation produced.
	src := a.Transitions()
	trans := append(make([]Transition, 0, len(src)+len(src)/16+64), src...)
	drop := make([]bool, len(trans), cap(trans))

	// CSR index of the input by From; extra collects appended
	// transitions per state (only λ-sources and splice targets grow).
	numStates := a.NumStates()
	off := make([]int32, numStates+1)
	for _, tr := range src {
		off[tr.From+1]++
	}
	for q := 0; q < numStates; q++ {
		off[q+1] += off[q]
	}
	csr := make([]int32, len(src))
	cur := append([]int32(nil), off[:numStates]...)
	for j, tr := range src {
		csr[cur[tr.From]] = int32(j)
		cur[tr.From]++
	}
	var extra map[int][]int32

	equalTr := func(x Transition, sym int, children []int) bool {
		if x.Sym != sym || len(x.Children) != len(children) {
			return false
		}
		for i, c := range x.Children {
			if c != children[i] {
				return false
			}
		}
		return true
	}

	// Input dedup, per From group.
	for q := 0; q < numStates; q++ {
		group := csr[off[q]:off[q+1]]
		for i := 1; i < len(group); i++ {
			ti := trans[group[i]]
			for _, j := range group[:i] {
				if !drop[j] && equalTr(trans[j], ti.Sym, ti.Children) {
					drop[group[i]] = true
					break
				}
			}
		}
	}

	var lambdas []int32
	for j, tr := range trans {
		if tr.Sym == Lambda && !drop[j] {
			lambdas = append(lambdas, int32(j))
		}
	}

	// add appends (from, sym, children) unless the state already has an
	// identical transition, mirroring the dedup of AddTransitionSym but
	// scoped to the one state that can hold a duplicate.
	add := func(from, sym int, children []int) {
		for _, j := range csr[off[from]:off[from+1]] {
			if !drop[j] && equalTr(trans[j], sym, children) {
				return
			}
		}
		for _, j := range extra[from] {
			if equalTr(trans[j], sym, children) {
				return
			}
		}
		j := int32(len(trans))
		trans = append(trans, Transition{From: from, Sym: sym, Children: children})
		drop = append(drop, false)
		if extra == nil {
			extra = make(map[int][]int32)
		}
		extra[from] = append(extra[from], j)
		if sym == Lambda {
			lambdas = append(lambdas, j)
		}
	}

	// liveFrom materializes the current out-transition indices of q into
	// buf (CSR entries first, then appends — insertion order), snapshot
	// semantics for the copy loops below.
	var srcBuf []int32
	liveFrom := func(q int) []int32 {
		srcBuf = srcBuf[:0]
		for _, j := range csr[off[q]:off[q+1]] {
			if !drop[j] {
				srcBuf = append(srcBuf, j)
			}
		}
		return append(srcBuf, extra[q]...)
	}

	// The number of distinct transitions over fixed states, symbols and
	// bounded tuple lengths is finite; cap iterations defensively. Tuple
	// lengths can grow through splicing, so the cap below is heuristic:
	// constructions in this codebase converge in a handful of rounds.
	const maxRounds = 10000
	for round := 0; ; round++ {
		if round == maxRounds {
			return nil, fmt.Errorf("nfta: λ-elimination did not converge (λ-cycle?)")
		}
		before := len(trans)
		snapLam := len(lambdas)
		for li := 0; li < snapLam; li++ {
			lam := trans[lambdas[li]]
			if len(lam.Children) == 1 {
				// ε-move: copy r's transitions to s.
				for _, j := range liveFrom(lam.Children[0]) {
					tr := trans[j]
					add(lam.From, tr.Sym, tr.Children)
				}
				continue
			}
			// Forest splice: replace one occurrence of s at a time in
			// every children tuple known at round start; the fixpoint
			// covers multiple occurrences and cascades.
			for ti := 0; ti < before; ti++ {
				if drop[ti] {
					continue
				}
				tr := trans[ti]
				for pos, c := range tr.Children {
					if c != lam.From {
						continue
					}
					spliced := make([]int, 0, len(tr.Children)+len(lam.Children)-1)
					spliced = append(spliced, tr.Children[:pos]...)
					spliced = append(spliced, lam.Children...)
					spliced = append(spliced, tr.Children[pos+1:]...)
					add(tr.From, tr.Sym, spliced)
				}
			}
		}
		if len(trans) == before {
			break
		}
	}

	// λ-expansion of the initial state into a non-unary forest has no
	// tree semantics.
	for _, j := range liveFrom(a.Initial()) {
		if tr := trans[j]; tr.Sym == Lambda && len(tr.Children) != 1 {
			return nil, fmt.Errorf("nfta: initial state λ-expands to a forest of length %d", len(tr.Children))
		}
	}

	// Copy over everything except λ-transitions and dropped duplicates.
	// The survivors are duplicate-free, so the copy skips its own dedup
	// and shares the children tuples (immutable by contract).
	out := newNoDedup(a.Symbols)
	for i := 0; i < numStates; i++ {
		out.AddState()
	}
	out.SetInitial(a.Initial())
	live := 0
	for j, tr := range trans {
		if !drop[j] && tr.Sym != Lambda {
			live++
		}
	}
	out.grow(live)
	for j, tr := range trans {
		if drop[j] || tr.Sym == Lambda {
			continue
		}
		out.AddTransitionShared(tr.From, tr.Sym, tr.Children)
	}
	return out, nil
}
