package nfta

import "fmt"

// TranslateUnary converts the NFTA with multipliers into an ordinary
// NFTA using a *unary* multiplier gadget instead of the paper's binary
// comparator: a transition with multiplier n > 1 is followed by a path
// of n−1 digit nodes carrying the strings 0^j 1^(n−1−j) for
// j = 0, …, n−1 — exactly n distinct paths, at the cost of Θ(n) states
// and path length n−1 per transition.
//
// This exists as the ablation baseline for the Section 5.1 design: the
// binary comparator needs only Θ(log n) states and digits, which is the
// difference between pseudo-polynomial and polynomial dependence on the
// probability bit-width. Multiplier values must fit in an int for the
// unary gadget (the binary gadget has no such restriction — itself part
// of the point).
//
// Unlike Translate, per-transition digit budgets are n−1 and thus not
// uniform across positive/negated fact pairs unless the caller arranges
// equal multipliers; use UnaryDigits to compute sizes.
func (a *MultNFTA) TranslateUnary() (*NFTA, error) {
	if a.initial < 0 {
		return nil, fmt.Errorf("nfta: NFTA with multipliers has no initial state")
	}
	out := NewWithSymbols(a.Symbols)
	for i := 0; i < a.numStates; i++ {
		out.AddState()
	}
	out.SetInitial(a.initial)
	d0 := a.Symbols.Intern(Digit0)
	d1 := a.Symbols.Intern(Digit1)

	for _, tr := range a.trans {
		if tr.Mult.Sign() == 0 {
			continue
		}
		if !tr.Mult.IsInt64() {
			return nil, fmt.Errorf("nfta: multiplier %v too large for the unary gadget", tr.Mult)
		}
		n := tr.Mult.Int64()
		if n == 1 {
			out.AddTransitionSym(tr.From, tr.Sym, tr.Children...)
			continue
		}
		k := int(n - 1) // digit path length
		// zeros[i]: read digit i while still in the zero prefix;
		// ones[i]: read digit i after switching to ones.
		zeros := make([]int, k)
		ones := make([]int, k)
		for i := 0; i < k; i++ {
			zeros[i] = out.AddState()
			ones[i] = out.AddState()
		}
		out.AddTransitionSym(tr.From, tr.Sym, zeros[0])
		for i := 0; i < k; i++ {
			last := i == k-1
			zNext, oNext := 0, 0
			if !last {
				zNext, oNext = zeros[i+1], ones[i+1]
			}
			childrenOf := func(next int) []int {
				if last {
					return tr.Children
				}
				return []int{next}
			}
			out.AddTransitionSym(zeros[i], d0, childrenOf(zNext)...)
			out.AddTransitionSym(zeros[i], d1, childrenOf(oNext)...)
			out.AddTransitionSym(ones[i], d1, childrenOf(oNext)...)
		}
	}
	return out, nil
}

// UnaryDigits returns the digit-path length of the unary gadget for a
// multiplier value: n−1 for n > 1, else 0.
func UnaryDigits(mult int64) int {
	if mult <= 1 {
		return 0
	}
	return int(mult - 1)
}
