package nfta

import "testing"

// TestEnginePlanInvalidatedBySetInitial is the regression test for the
// old (len(trans), numStates) plan key: SetInitial changes the language
// without changing either count, so the old key would have returned the
// stale plan. The version key must miss.
func TestEnginePlanInvalidatedBySetInitial(t *testing.T) {
	a := New()
	q0 := a.AddState()
	q1 := a.AddState()
	a.AddTransition(q0, "a")
	a.AddTransition(q1, "b")
	a.SetInitial(q0)

	a.SetEnginePlan("plan-for-q0")
	if v, ok := a.EnginePlan(); !ok || v != "plan-for-q0" {
		t.Fatalf("EnginePlan after store = %v, %v", v, ok)
	}

	// Same transition count, same state count, different automaton.
	a.SetInitial(q1)
	if v, ok := a.EnginePlan(); ok {
		t.Fatalf("stale engine plan %v survived SetInitial", v)
	}
}

func TestEnginePlanInvalidatedByMutations(t *testing.T) {
	a := New()
	q0 := a.AddState()
	a.AddTransition(q0, "a")
	a.SetInitial(q0)
	a.SetEnginePlan(42)

	a.AddTransitionSym(q0, a.Symbols.Intern("b"))
	if _, ok := a.EnginePlan(); ok {
		t.Fatal("stale engine plan survived AddTransitionSym")
	}
	a.SetEnginePlan(43)
	// A deduplicated re-add is not a mutation: the plan must survive.
	a.AddTransitionSym(q0, a.Symbols.Intern("b"))
	if v, ok := a.EnginePlan(); !ok || v != 43 {
		t.Fatalf("plan dropped by a no-op duplicate add: %v, %v", v, ok)
	}
	a.AddState()
	if _, ok := a.EnginePlan(); ok {
		t.Fatal("stale engine plan survived AddState")
	}
}

func TestVersionMonotone(t *testing.T) {
	a := New()
	v := a.Version()
	q0 := a.AddState()
	if a.Version() <= v {
		t.Fatal("AddState did not bump version")
	}
	v = a.Version()
	a.SetInitial(q0)
	if a.Version() <= v {
		t.Fatal("SetInitial did not bump version")
	}
	v = a.Version()
	a.AddTransition(q0, "x")
	if a.Version() <= v {
		t.Fatal("AddTransition did not bump version")
	}
}

// hasDuplicateTransitions scans a transition list for duplicate
// (from, sym, children) triples — the invariant the no-dedup outputs
// rely on.
func hasDuplicateTransitions(a *NFTA) bool {
	seen := make(map[string]bool, len(a.trans))
	for _, tr := range a.trans {
		k := tr.key()
		if seen[k] {
			return true
		}
		seen[k] = true
	}
	return false
}

// TestNoDedupOutputsAreDuplicateFree pins the duplicate-freedom of the
// construction outputs that skip the dedup map, driving them through an
// augmented NFTA that itself contains a duplicate transition.
func TestNoDedupOutputsAreDuplicateFree(t *testing.T) {
	aug := NewAugmented(New().Symbols)
	root := aug.AddState()
	leafA := aug.AddState()
	leafB := aug.AddState()
	symA := aug.Symbols.Intern("A(x)")
	symB := aug.Symbols.Intern("B(x)")
	label := []AugSymbol{Opt(symA), Plain(symB)}
	aug.AddTransition(root, label, leafA, leafB)
	aug.AddTransition(root, label, leafA, leafB) // duplicate source transition
	aug.AddTransition(leafA, []AugSymbol{Plain(symA)})
	aug.AddTransition(leafA, []AugSymbol{Plain(symA)}) // duplicate single-element label
	aug.AddTransition(leafB, []AugSymbol{Plain(symB)})
	aug.SetInitial(root)

	auto, err := aug.Translate()
	if err != nil {
		t.Fatal(err)
	}
	if hasDuplicateTransitions(auto) {
		t.Fatalf("Translate emitted duplicate transitions:\n%s", auto)
	}
	trimmed := auto.Trim()
	if hasDuplicateTransitions(trimmed) {
		t.Fatalf("Trim emitted duplicate transitions:\n%s", trimmed)
	}
}
