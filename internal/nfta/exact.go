package nfta

import "math/big"

// EnumerateTrees calls yield for every distinct labelled tree of size n
// accepted by the (λ-free) automaton, stopping early if yield returns
// false. It enumerates candidate trees over the automaton's alphabet
// and realized (symbol, arity) pairs and filters by acceptance, so it is
// exponential in n: strictly a test oracle.
func EnumerateTrees(a *NFTA, n int, yield func(*Tree) bool) {
	seen := make(map[string]bool)
	stop := false
	enumAll(a, n, func(t *Tree) {
		if stop {
			return
		}
		k := t.Key()
		if seen[k] {
			return
		}
		seen[k] = true
		if a.Accepts(t) {
			if !yield(t) {
				stop = true
			}
		}
	})
}

// ExactCount returns |L_n(T)| exactly by enumeration. Test oracle only.
func ExactCount(a *NFTA, n int) *big.Int {
	count := big.NewInt(0)
	EnumerateTrees(a, n, func(*Tree) bool {
		count.Add(count, big.NewInt(1))
		return true
	})
	return count
}

// enumAll enumerates all trees of size n whose node labels and arities
// appear in the automaton's transition relation (any tree outside this
// family is trivially rejected).
func enumAll(a *NFTA, n int, visit func(*Tree)) {
	// Collect realized (symbol, arity) pairs.
	type sa struct{ sym, arity int }
	pairs := make(map[sa]bool)
	for _, tr := range a.Transitions() {
		if tr.Sym == Lambda {
			continue
		}
		pairs[sa{tr.Sym, len(tr.Children)}] = true
	}
	var symArities []sa
	for p := range pairs {
		symArities = append(symArities, p)
	}

	// trees(n) yields all trees of exactly n nodes.
	var trees func(n int, visit func(*Tree))
	var forests func(count, total int, visit func([]*Tree))
	trees = func(n int, visit func(*Tree)) {
		if n <= 0 {
			return
		}
		for _, p := range symArities {
			if p.arity == 0 {
				if n == 1 {
					visit(Leaf(p.sym))
				}
				continue
			}
			if n-1 < p.arity {
				continue
			}
			sym := p.sym
			forests(p.arity, n-1, func(children []*Tree) {
				visit(&Tree{Sym: sym, Children: append([]*Tree(nil), children...)})
			})
		}
	}
	forests = func(count, total int, visit func([]*Tree)) {
		if count == 0 {
			if total == 0 {
				visit(nil)
			}
			return
		}
		for first := 1; first <= total-(count-1); first++ {
			trees(first, func(t *Tree) {
				forests(count-1, total-first, func(rest []*Tree) {
					visit(append([]*Tree{t}, rest...))
				})
			})
		}
	}
	trees(n, visit)
}
