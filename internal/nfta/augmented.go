package nfta

import (
	"fmt"
	"strings"

	"pqe/internal/alphabet"
)

// NegName returns the name of the negated symbol ¬α used when expanding
// "?" annotations (Definition 1, stage 2: Σ' = {α, ¬α | α ∈ Σ}).
func NegName(name string) string { return "¬" + name }

// IsNegName reports whether the symbol name is a negation, and returns
// the base name.
func IsNegName(name string) (string, bool) {
	base, ok := strings.CutPrefix(name, "¬")
	return base, ok
}

// AugSymbol is one position of a transition's string annotation: a
// symbol, optionally marked with ? (accept either the symbol or its
// negation).
type AugSymbol struct {
	Sym      int
	Optional bool
}

// AugTransition is a transition of an augmented NFTA: the label is a
// string of (possibly ?-annotated) symbols; an empty label is the λ
// annotation.
type AugTransition struct {
	From     int
	Label    []AugSymbol
	Children []int
}

// AugNFTA is an augmented NFTA T⁺ = (S, Σ, Δ, s_init) per Definition 1.
type AugNFTA struct {
	Symbols   *alphabet.Interner
	numStates int
	initial   int
	trans     []AugTransition
}

// NewAugmented returns an empty augmented NFTA over the interner.
func NewAugmented(sym *alphabet.Interner) *AugNFTA {
	return &AugNFTA{Symbols: sym, initial: -1}
}

// AddState allocates a new state.
func (a *AugNFTA) AddState() int {
	a.numStates++
	return a.numStates - 1
}

// NumStates returns |S|.
func (a *AugNFTA) NumStates() int { return a.numStates }

// SetInitial sets s_init.
func (a *AugNFTA) SetInitial(q int) {
	if q < 0 || q >= a.numStates {
		panic(fmt.Sprintf("nfta: state %d out of range", q))
	}
	a.initial = q
}

// Initial returns s_init.
func (a *AugNFTA) Initial() int { return a.initial }

// AddTransition adds (from, label, children). An empty label is λ. Both
// the label and the children slices are copied.
func (a *AugNFTA) AddTransition(from int, label []AugSymbol, children ...int) {
	a.addTransition(from, append([]AugSymbol(nil), label...), append([]int(nil), children...))
}

// AddTransitionShared is AddTransition without the defensive copies:
// the automaton takes ownership of label and children, which the caller
// must keep immutable for the automaton's lifetime. For builders whose
// labels and tuples live in caches or arenas outliving the automaton.
func (a *AugNFTA) AddTransitionShared(from int, label []AugSymbol, children []int) {
	a.addTransition(from, label, children)
}

func (a *AugNFTA) addTransition(from int, label []AugSymbol, children []int) {
	if from < 0 || from >= a.numStates {
		panic(fmt.Sprintf("nfta: state %d out of range", from))
	}
	for _, c := range children {
		if c < 0 || c >= a.numStates {
			panic(fmt.Sprintf("nfta: state %d out of range", c))
		}
	}
	a.trans = append(a.trans, AugTransition{From: from, Label: label, Children: children})
}

// Transitions returns the transition list.
func (a *AugNFTA) Transitions() []AugTransition { return a.trans }

// Size returns the encoding size of the transition relation: labels
// count with their full length.
func (a *AugNFTA) Size() int {
	n := 0
	for _, tr := range a.trans {
		n += 2 + len(tr.Label) + len(tr.Children)
	}
	return n
}

// Translate converts the augmented NFTA into an equivalent ordinary
// λ-free NFTA, per the two-stage semantics of Definition 1:
//
//  1. a transition annotated with a string γ₁…γ_j (j > 1) becomes a
//     chain of j transitions through j−1 fresh intermediate states;
//  2. every ?-annotated symbol α? becomes two parallel transitions, on
//     α and on ¬α.
//
// Transitions with empty (λ) annotations are added as λ-transitions and
// then removed with EliminateLambda. Per Remark 1 the whole translation
// is polynomial in |T⁺|.
func (a *AugNFTA) Translate() (*NFTA, error) {
	if a.initial < 0 {
		return nil, fmt.Errorf("nfta: augmented NFTA has no initial state")
	}
	// The intermediate is fed straight into EliminateLambda, whose work
	// automaton deduplicates, so skipping dedup here is safe even for
	// sources with duplicate transitions.
	out := newNoDedup(a.Symbols)
	for i := 0; i < a.numStates; i++ {
		out.AddState()
	}
	out.SetInitial(a.initial)
	need := 0
	for _, tr := range a.trans {
		if len(tr.Label) == 0 {
			need++
			continue
		}
		for _, g := range tr.Label {
			need++
			if g.Optional {
				need++
			}
		}
	}
	out.grow(need)

	// negOf memoizes the interned negation per symbol: the per-element
	// "¬" + name string build dominates translation allocations
	// otherwise. (In the reductions the negations are pre-interned and
	// this is a pure array lookup.)
	var negOf []int
	negSym := func(sym int) int {
		for sym >= len(negOf) {
			negOf = append(negOf, -1)
		}
		if negOf[sym] < 0 {
			negOf[sym] = a.Symbols.Intern(NegName(a.Symbols.Name(sym)))
		}
		return negOf[sym]
	}

	for _, tr := range a.trans {
		if len(tr.Label) == 0 {
			// λ annotation: out is transient, so sharing the source's
			// children tuple is safe (EliminateLambda copies).
			out.AddTransitionShared(tr.From, Lambda, tr.Children)
			continue
		}
		// Stage 1: chain through fresh states; stage 2: expand ? on the
		// fly. One chain buffer serves all intermediate singleton
		// children tuples of this transition.
		var chain []int
		if len(tr.Label) > 1 {
			chain = make([]int, len(tr.Label)-1)
		}
		cur := tr.From
		for i, g := range tr.Label {
			lastPos := i == len(tr.Label)-1
			var children []int
			if lastPos {
				children = tr.Children
			} else {
				chain[i] = out.AddState()
				children = chain[i : i+1 : i+1]
			}
			out.AddTransitionShared(cur, g.Sym, children)
			if g.Optional {
				out.AddTransitionShared(cur, negSym(g.Sym), children)
			}
			if !lastPos {
				cur = chain[i]
			}
		}
	}
	return EliminateLambda(out)
}

// Opt marks a symbol as ?-annotated; Plain marks it plain. Convenience
// constructors for building annotation strings.
func Opt(sym int) AugSymbol   { return AugSymbol{Sym: sym, Optional: true} }
func Plain(sym int) AugSymbol { return AugSymbol{Sym: sym} }
