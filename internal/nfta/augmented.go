package nfta

import (
	"fmt"
	"strings"

	"pqe/internal/alphabet"
)

// NegName returns the name of the negated symbol ¬α used when expanding
// "?" annotations (Definition 1, stage 2: Σ' = {α, ¬α | α ∈ Σ}).
func NegName(name string) string { return "¬" + name }

// IsNegName reports whether the symbol name is a negation, and returns
// the base name.
func IsNegName(name string) (string, bool) {
	base, ok := strings.CutPrefix(name, "¬")
	return base, ok
}

// AugSymbol is one position of a transition's string annotation: a
// symbol, optionally marked with ? (accept either the symbol or its
// negation).
type AugSymbol struct {
	Sym      int
	Optional bool
}

// AugTransition is a transition of an augmented NFTA: the label is a
// string of (possibly ?-annotated) symbols; an empty label is the λ
// annotation.
type AugTransition struct {
	From     int
	Label    []AugSymbol
	Children []int
}

// AugNFTA is an augmented NFTA T⁺ = (S, Σ, Δ, s_init) per Definition 1.
type AugNFTA struct {
	Symbols   *alphabet.Interner
	numStates int
	initial   int
	trans     []AugTransition
}

// NewAugmented returns an empty augmented NFTA over the interner.
func NewAugmented(sym *alphabet.Interner) *AugNFTA {
	return &AugNFTA{Symbols: sym, initial: -1}
}

// AddState allocates a new state.
func (a *AugNFTA) AddState() int {
	a.numStates++
	return a.numStates - 1
}

// NumStates returns |S|.
func (a *AugNFTA) NumStates() int { return a.numStates }

// SetInitial sets s_init.
func (a *AugNFTA) SetInitial(q int) {
	if q < 0 || q >= a.numStates {
		panic(fmt.Sprintf("nfta: state %d out of range", q))
	}
	a.initial = q
}

// Initial returns s_init.
func (a *AugNFTA) Initial() int { return a.initial }

// AddTransition adds (from, label, children). An empty label is λ.
func (a *AugNFTA) AddTransition(from int, label []AugSymbol, children ...int) {
	if from < 0 || from >= a.numStates {
		panic(fmt.Sprintf("nfta: state %d out of range", from))
	}
	for _, c := range children {
		if c < 0 || c >= a.numStates {
			panic(fmt.Sprintf("nfta: state %d out of range", c))
		}
	}
	a.trans = append(a.trans, AugTransition{
		From:     from,
		Label:    append([]AugSymbol(nil), label...),
		Children: append([]int(nil), children...),
	})
}

// Transitions returns the transition list.
func (a *AugNFTA) Transitions() []AugTransition { return a.trans }

// Size returns the encoding size of the transition relation: labels
// count with their full length.
func (a *AugNFTA) Size() int {
	n := 0
	for _, tr := range a.trans {
		n += 2 + len(tr.Label) + len(tr.Children)
	}
	return n
}

// Translate converts the augmented NFTA into an equivalent ordinary
// λ-free NFTA, per the two-stage semantics of Definition 1:
//
//  1. a transition annotated with a string γ₁…γ_j (j > 1) becomes a
//     chain of j transitions through j−1 fresh intermediate states;
//  2. every ?-annotated symbol α? becomes two parallel transitions, on
//     α and on ¬α.
//
// Transitions with empty (λ) annotations are added as λ-transitions and
// then removed with EliminateLambda. Per Remark 1 the whole translation
// is polynomial in |T⁺|.
func (a *AugNFTA) Translate() (*NFTA, error) {
	if a.initial < 0 {
		return nil, fmt.Errorf("nfta: augmented NFTA has no initial state")
	}
	out := NewWithSymbols(a.Symbols)
	for i := 0; i < a.numStates; i++ {
		out.AddState()
	}
	out.SetInitial(a.initial)

	for _, tr := range a.trans {
		if len(tr.Label) == 0 {
			out.AddLambda(tr.From, tr.Children...)
			continue
		}
		// Stage 1: chain through fresh states; stage 2: expand ? on the
		// fly.
		cur := tr.From
		for i, g := range tr.Label {
			lastPos := i == len(tr.Label)-1
			var next int
			var children []int
			if lastPos {
				children = tr.Children
			} else {
				next = out.AddState()
				children = []int{next}
			}
			name := a.Symbols.Name(g.Sym)
			out.AddTransition(cur, name, children...)
			if g.Optional {
				out.AddTransition(cur, NegName(name), children...)
			}
			cur = next
		}
	}
	return EliminateLambda(out)
}

// Opt marks a symbol as ?-annotated; Plain marks it plain. Convenience
// constructors for building annotation strings.
func Opt(sym int) AugSymbol   { return AugSymbol{Sym: sym, Optional: true} }
func Plain(sym int) AugSymbol { return AugSymbol{Sym: sym} }
