package nfta

import (
	"fmt"
	"math/big"

	"pqe/internal/alphabet"
)

// Digit symbol names for the multiplier gadget. The paper assumes
// Σ ∩ {0, 1} = ∅; fact-literal symbol names always contain parentheses,
// so the assumption holds in every reduction here.
const (
	Digit0 = "0"
	Digit1 = "1"
)

// MultTransition is a transition of an NFTA with multipliers
// (Definition 2): (From, Sym, Mult, Children), extended with an explicit
// digit budget.
//
// The budget generalizes the paper's gadget: Section 5.2 attaches
// multiplier wᵢ to the positive fact transition and dᵢ−wᵢ to the negated
// one, and the counting happens at a single fixed tree size, so both
// gadgets must contribute the same number of digit nodes. Digits pads
// the comparator to a fixed width (accepting exactly Mult of the 2^Digits
// digit strings); choosing Digits = max(u(wᵢ), u(dᵢ−wᵢ)) keeps every
// accepted tree for fact i the same size. With Digits = u(Mult) the
// construction coincides with the paper's.
type MultTransition struct {
	From     int
	Sym      int
	Mult     *big.Int
	Digits   int
	Children []int
}

// MultNFTA is a (top-down) NFTA with multipliers Tᶜ = (S, Σ, Δ, s_init).
type MultNFTA struct {
	Symbols   *alphabet.Interner
	numStates int
	initial   int
	trans     []MultTransition
}

// NewMult returns an empty NFTA with multipliers over the interner.
func NewMult(sym *alphabet.Interner) *MultNFTA {
	return &MultNFTA{Symbols: sym, initial: -1}
}

// AddState allocates a new state.
func (a *MultNFTA) AddState() int {
	a.numStates++
	return a.numStates - 1
}

// NumStates returns |S|.
func (a *MultNFTA) NumStates() int { return a.numStates }

// SetInitial sets s_init.
func (a *MultNFTA) SetInitial(q int) {
	if q < 0 || q >= a.numStates {
		panic(fmt.Sprintf("nfta: state %d out of range", q))
	}
	a.initial = q
}

// Initial returns s_init.
func (a *MultNFTA) Initial() int { return a.initial }

// AddTransition adds (from, sym, mult, children) with the given digit
// budget. Mult may be zero, meaning the transition contributes no trees
// (probability-0 or probability-1 facts induce such transitions).
func (a *MultNFTA) AddTransition(from, sym int, mult *big.Int, digits int, children ...int) error {
	if from < 0 || from >= a.numStates {
		return fmt.Errorf("nfta: state %d out of range", from)
	}
	if mult.Sign() < 0 {
		return fmt.Errorf("nfta: negative multiplier %v", mult)
	}
	if digits < 0 {
		return fmt.Errorf("nfta: negative digit budget %d", digits)
	}
	if digits == 0 && mult.Cmp(big.NewInt(1)) > 0 {
		return fmt.Errorf("nfta: multiplier %v needs a positive digit budget", mult)
	}
	if digits > 0 {
		max := new(big.Int).Lsh(big.NewInt(1), uint(digits))
		if mult.Cmp(max) > 0 {
			return fmt.Errorf("nfta: multiplier %v exceeds 2^%d", mult, digits)
		}
	}
	a.trans = append(a.trans, MultTransition{
		From:     from,
		Sym:      sym,
		Mult:     new(big.Int).Set(mult),
		Digits:   digits,
		Children: append([]int(nil), children...),
	})
	return nil
}

// Transitions returns the transition list.
func (a *MultNFTA) Transitions() []MultTransition { return a.trans }

// Size returns the encoding size of the transition relation; multiplier
// values count with their bit length, per the paper's size measure.
func (a *MultNFTA) Size() int {
	n := 0
	for _, tr := range a.trans {
		n += 2 + len(tr.Children) + tr.Mult.BitLen() + 1
	}
	return n
}

// DigitsFor returns u(n): the number of digit nodes the paper's gadget
// appends for multiplier n — 0 when n ≤ 1, otherwise ⌊log₂(n−1)⌋ + 1,
// which equals the bit length of n−1.
func DigitsFor(mult *big.Int) int {
	if mult.Cmp(big.NewInt(1)) <= 0 {
		return 0
	}
	return new(big.Int).Sub(mult, big.NewInt(1)).BitLen()
}

// Translate converts the NFTA with multipliers into an ordinary NFTA
// (the Section 5.1 translation): a transition with multiplier n and
// digit budget K is replaced by the symbol transition followed by a
// K-digit binary ≤-comparator path accepting exactly the n digit strings
// 0…0 through the binary representation of n−1. Each accepted tree is
// thereby replicated exactly n times (once per digit string), with
// 2K−1 ≤ O(log n + padding) fresh states per transition (Remark 2).
// The source transition list must be duplicate-free (the weighting
// constructions guarantee it: they add one weighted transition per
// distinct source transition); the translation then emits no duplicate
// transitions and skips per-transition deduplication entirely.
func (a *MultNFTA) Translate() (*NFTA, error) {
	if a.initial < 0 {
		return nil, fmt.Errorf("nfta: NFTA with multipliers has no initial state")
	}
	out := newNoDedup(a.Symbols)
	for i := 0; i < a.numStates; i++ {
		out.AddState()
	}
	out.SetInitial(a.initial)
	d0 := a.Symbols.Intern(Digit0)
	d1 := a.Symbols.Intern(Digit1)

	for _, tr := range a.trans {
		if tr.Mult.Sign() == 0 {
			continue // contributes no trees
		}
		if tr.Digits == 0 {
			// The result may share tuples with the source automaton,
			// whose lifetime contains the translation's.
			out.AddTransitionShared(tr.From, tr.Sym, tr.Children)
			continue
		}
		k := tr.Digits
		// bound = n−1, padded to k bits MSB-first.
		bound := new(big.Int).Sub(tr.Mult, big.NewInt(1))
		bits := make([]uint, k)
		for i := 0; i < k; i++ {
			bits[i] = bound.Bit(k - 1 - i)
		}
		// eq[i] = "digits so far equal the bound's prefix", about to
		// read digit i; free[i] = "already strictly below", about to
		// read digit i.
		eq := make([]int, k)
		free := make([]int, k)
		for i := 0; i < k; i++ {
			eq[i] = out.AddState()
			free[i] = out.AddState()
		}
		// One buffer serves every singleton children tuple of this
		// transition's comparator (≤ 4 per digit plus the head).
		buf := make([]int, 0, 4*k+1)
		singleton := func(v int) []int {
			buf = append(buf, v)
			return buf[len(buf)-1 : len(buf) : len(buf)]
		}
		childrenOf := func(next int, last bool) []int {
			if last {
				return tr.Children
			}
			return singleton(next)
		}
		out.AddTransitionShared(tr.From, tr.Sym, singleton(eq[0]))
		for i := 0; i < k; i++ {
			last := i == k-1
			var eqNext, freeNext int
			if !last {
				eqNext, freeNext = eq[i+1], free[i+1]
			}
			if bits[i] == 1 {
				out.AddTransitionShared(eq[i], d0, childrenOf(freeNext, last))
				out.AddTransitionShared(eq[i], d1, childrenOf(eqNext, last))
			} else {
				out.AddTransitionShared(eq[i], d0, childrenOf(eqNext, last))
			}
			// The free track accepts both digits.
			out.AddTransitionShared(free[i], d0, childrenOf(freeNext, last))
			out.AddTransitionShared(free[i], d1, childrenOf(freeNext, last))
		}
	}
	return out, nil
}
