package nfta

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"pqe/internal/alphabet"
	"pqe/internal/bitset"
)

// Lambda is the pseudo-symbol of λ-transitions (s, λ, R). Automata must
// be λ-free (see EliminateLambda) before acceptance testing or counting.
const Lambda = -1

// Transition is a tuple (From, Sym, Children) ∈ S × Σ × (∪ᵢ Sⁱ). A leaf
// transition has an empty Children tuple.
type Transition struct {
	From     int
	Sym      int // symbol ID, or Lambda
	Children []int
}

// key returns a canonical identity for deduplication.
func (tr Transition) key() string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(tr.From))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(tr.Sym))
	b.WriteByte('|')
	for _, c := range tr.Children {
		b.WriteString(strconv.Itoa(c))
		b.WriteByte(',')
	}
	return b.String()
}

// NFTA is a top-down non-deterministic finite tree automaton
// T = (S, Σ, Δ, s_init).
type NFTA struct {
	Symbols   *alphabet.Interner
	numStates int
	initial   int
	trans     []Transition
	numLambda int
	// seen deduplicates transitions; nil disables deduplication for
	// constructions whose output is duplicate-free by construction
	// (translations, λ-elimination, trim), where the key-string build
	// and map insert per transition are pure overhead.
	seen map[string]bool
	// version counts structural mutations (states, transitions, initial
	// state). The lazily built caches below — and the counting engine's
	// plan — are keyed to it, so a mutation can never alias a stale
	// cache, even when it leaves the transition and state counts
	// unchanged (e.g. SetInitial).
	version uint64
	acc     atomic.Pointer[accIndex]
	from    atomic.Pointer[fromIndex]
	plan    atomic.Pointer[enginePlanBox]
}

// enginePlanBox pairs a counting engine's cached per-automaton plan
// with the structural version it was built at, the same lazy keying as
// accIndex. The value is opaque to this package: the engine
// (internal/count) defines the plan type, and keeping the slot here
// lets every session over one automaton share one plan without an
// import cycle.
type enginePlanBox struct {
	version uint64
	v       any
}

// EnginePlan returns the value stored by SetEnginePlan, if the
// automaton's structural version is unchanged since it was stored.
// (An earlier revision keyed the cache by (len(trans), numStates),
// which collides for structurally different automata of equal sizes —
// SetInitial, in particular, changes the language without changing
// either count.)
func (a *NFTA) EnginePlan() (any, bool) {
	if b := a.plan.Load(); b != nil && b.version == a.version {
		return b.v, true
	}
	return nil, false
}

// SetEnginePlan caches an engine plan on the automaton, keyed to its
// current structural version. Concurrent builders may race to store;
// each keeps a fully usable plan either way, and the last store wins.
func (a *NFTA) SetEnginePlan(v any) {
	a.plan.Store(&enginePlanBox{version: a.version, v: v})
}

// Version returns the monotone structural mutation counter.
func (a *NFTA) Version() uint64 { return a.version }

// accIndex is a dense (symbol, arity) → transitions lookup for the
// acceptance hot path: one slice indexing instead of a map hash per
// tree node. It is rebuilt lazily whenever transitions were added since
// the last build; concurrent readers may race to rebuild, which is
// idempotent (mutating an automaton while testing acceptance on it is
// not supported).
type accIndex struct {
	nsyms, maxAr int
	cells        [][]int32 // sym*(maxAr+1)+arity -> transition indices
	built        uint64    // automaton version at build time
}

func (a *NFTA) accIdx() *accIndex {
	if idx := a.acc.Load(); idx != nil && idx.built == a.version {
		return idx
	}
	idx := &accIndex{nsyms: a.Symbols.Size(), maxAr: a.MaxArity(), built: a.version}
	idx.cells = make([][]int32, idx.nsyms*(idx.maxAr+1))
	for j, tr := range a.trans {
		if tr.Sym == Lambda {
			continue
		}
		c := tr.Sym*(idx.maxAr+1) + len(tr.Children)
		idx.cells[c] = append(idx.cells[c], int32(j))
	}
	a.acc.Store(idx)
	return idx
}

// lookup returns the transitions with the given root symbol and arity.
func (x *accIndex) lookup(sym, arity int) []int32 {
	if sym < 0 || sym >= x.nsyms || arity > x.maxAr {
		return nil
	}
	return x.cells[sym*(x.maxAr+1)+arity]
}

// fromIndex is a CSR state → transition-indices lookup, rebuilt lazily
// on version change exactly like accIndex. Keeping it out of insert
// matters: the reduction pipeline materializes the same construction
// several times (translation, λ-elimination, trim), and an eager
// per-insert index pays two map appends per transition on automata
// whose index is consulted once, if ever.
type fromIndex struct {
	off   []int32 // off[q]..off[q+1]: slots of state q in idx
	idx   []int32 // transition indices grouped by From, insertion order
	built uint64  // automaton version at build time
}

func (a *NFTA) fromIdx() *fromIndex {
	if ix := a.from.Load(); ix != nil && ix.built == a.version {
		return ix
	}
	ix := &fromIndex{built: a.version}
	ix.off = make([]int32, a.numStates+1)
	for _, tr := range a.trans {
		ix.off[tr.From+1]++
	}
	for q := 0; q < a.numStates; q++ {
		ix.off[q+1] += ix.off[q]
	}
	ix.idx = make([]int32, len(a.trans))
	cur := append([]int32(nil), ix.off[:a.numStates]...)
	for j, tr := range a.trans {
		ix.idx[cur[tr.From]] = int32(j)
		cur[tr.From]++
	}
	a.from.Store(ix)
	return ix
}

// of returns the indices of the transitions out of state q.
func (x *fromIndex) of(q int) []int32 { return x.idx[x.off[q]:x.off[q+1]] }

type symArity struct{ sym, arity int }

// New returns an empty NFTA over a fresh alphabet. The initial state
// must be set with SetInitial.
func New() *NFTA {
	return NewWithSymbols(alphabet.New())
}

// NewWithSymbols returns an empty NFTA sharing an existing interner.
func NewWithSymbols(sym *alphabet.Interner) *NFTA {
	return &NFTA{
		Symbols: sym,
		initial: -1,
		seen:    make(map[string]bool),
	}
}

// newNoDedup returns an empty NFTA that skips transition deduplication.
// Only for constructions that never feed it a duplicate (from, sym,
// children) triple: a duplicate would be stored twice and double-count
// in the engines. Callers in this package: translations over
// duplicate-free sources, λ-elimination's final copy, Trim.
func newNoDedup(sym *alphabet.Interner) *NFTA {
	return &NFTA{
		Symbols: sym,
		initial: -1,
	}
}

// AddState allocates a new state.
func (a *NFTA) AddState() int {
	a.numStates++
	a.version++
	return a.numStates - 1
}

// NumStates returns |S|.
func (a *NFTA) NumStates() int { return a.numStates }

// SetInitial sets s_init.
func (a *NFTA) SetInitial(q int) {
	a.checkState(q)
	a.initial = q
	a.version++
}

// Initial returns s_init (-1 if unset).
func (a *NFTA) Initial() int { return a.initial }

func (a *NFTA) checkState(q int) {
	if q < 0 || q >= a.numStates {
		panic(fmt.Sprintf("nfta: state %d out of range [0,%d)", q, a.numStates))
	}
}

// AddTransition adds (from, sym, children) to Δ, interning the symbol
// name. Duplicates are ignored.
func (a *NFTA) AddTransition(from int, symbol string, children ...int) {
	a.AddTransitionSym(from, a.Symbols.Intern(symbol), children...)
}

// AddLambda adds a λ-transition (from, λ, children).
func (a *NFTA) AddLambda(from int, children ...int) {
	a.AddTransitionSym(from, Lambda, children...)
}

// AddTransitionSym adds a transition with an interned symbol ID (or
// Lambda). The children slice is copied.
func (a *NFTA) AddTransitionSym(from, sym int, children ...int) {
	a.insert(from, sym, children, true)
}

// AddTransitionShared is AddTransitionSym without the defensive copy:
// the automaton takes ownership of children, which the caller must not
// modify afterwards. For builders whose tuples come from an arena with
// the same lifetime as the automaton.
func (a *NFTA) AddTransitionShared(from, sym int, children []int) {
	a.insert(from, sym, children, false)
}

// grow reserves capacity for n more transitions. The construction
// pipeline materializes transition lists whose exact sizes are known
// (or tightly bounded) up front; reserving once avoids the append
// doubling that otherwise dominates allocation volume.
func (a *NFTA) grow(n int) {
	if cap(a.trans)-len(a.trans) < n {
		nt := make([]Transition, len(a.trans), len(a.trans)+n)
		copy(nt, a.trans)
		a.trans = nt
	}
}

func (a *NFTA) insert(from, sym int, children []int, copyChildren bool) {
	a.checkState(from)
	for _, c := range children {
		a.checkState(c)
	}
	if copyChildren {
		children = append([]int(nil), children...)
	}
	tr := Transition{From: from, Sym: sym, Children: children}
	if a.seen != nil {
		k := tr.key()
		if a.seen[k] {
			return
		}
		a.seen[k] = true
	}
	if sym == Lambda {
		a.numLambda++
	}
	a.trans = append(a.trans, tr)
	a.version++
}

// Transitions returns all transitions. The slice must not be modified.
func (a *NFTA) Transitions() []Transition { return a.trans }

// From returns the transitions out of state q.
func (a *NFTA) From(q int) []Transition {
	idx := a.fromIdx().of(q)
	out := make([]Transition, len(idx))
	for i, j := range idx {
		out[i] = a.trans[j]
	}
	return out
}

// NumTransitions returns |Δ|.
func (a *NFTA) NumTransitions() int { return len(a.trans) }

// Size returns the encoding size of the transition relation (the paper's
// |T|): one unit per tuple element.
func (a *NFTA) Size() int {
	n := 0
	for _, tr := range a.trans {
		n += 2 + len(tr.Children)
	}
	return n
}

// HasLambda reports whether any λ-transitions remain.
func (a *NFTA) HasLambda() bool { return a.numLambda > 0 }

// MaxArity returns the largest children-tuple length in Δ.
func (a *NFTA) MaxArity() int {
	k := 0
	for _, tr := range a.trans {
		if len(tr.Children) > k {
			k = len(tr.Children)
		}
	}
	return k
}

// AcceptingStates returns the set of states q such that the tree is
// accepted starting from q, computed by the standard bottom-up product
// check. The automaton must be λ-free.
func (a *NFTA) AcceptingStates(t *Tree) map[int]bool {
	if a.HasLambda() {
		panic("nfta: AcceptingStates on automaton with λ-transitions")
	}
	return a.acceptingStates(t)
}

func (a *NFTA) acceptingStates(t *Tree) map[int]bool {
	childAcc := make([]map[int]bool, len(t.Children))
	for i, c := range t.Children {
		childAcc[i] = a.acceptingStates(c)
	}
	acc := make(map[int]bool)
	for _, j := range a.accIdx().lookup(t.Sym, len(t.Children)) {
		tr := a.trans[j]
		if acc[tr.From] {
			continue
		}
		ok := true
		for i, q := range tr.Children {
			if !childAcc[i][q] {
				ok = false
				break
			}
		}
		if ok {
			acc[tr.From] = true
		}
	}
	return acc
}

// AcceptingStatesInto computes the accepting-state set of the tree as a
// bit set: bit q is set iff the tree is accepted starting from q. dst
// must have capacity for NumStates bits and is cleared first; pool
// supplies same-capacity scratch sets for the recursion (one live set
// per tree level), so a steady-state caller allocates nothing. The
// automaton must be λ-free.
func (a *NFTA) AcceptingStatesInto(t *Tree, dst bitset.Set, pool *bitset.Pool) {
	if a.HasLambda() {
		panic("nfta: AcceptingStatesInto on automaton with λ-transitions")
	}
	a.acceptingInto(t, dst, pool)
}

func (a *NFTA) acceptingInto(t *Tree, dst bitset.Set, pool *bitset.Pool) {
	a.acceptingIntoIdx(a.accIdx(), t, dst, pool)
}

func (a *NFTA) acceptingIntoIdx(idx *accIndex, t *Tree, dst bitset.Set, pool *bitset.Pool) {
	dst.Clear()
	k := len(t.Children)
	var stack [4]bitset.Set
	childAcc := stack[:0]
	if k > len(stack) {
		childAcc = make([]bitset.Set, 0, k)
	}
	for _, c := range t.Children {
		s := pool.Get()
		a.acceptingIntoIdx(idx, c, s, pool)
		childAcc = append(childAcc, s)
	}
	for _, j := range idx.lookup(t.Sym, k) {
		tr := a.trans[j]
		if dst.Has(tr.From) {
			continue
		}
		ok := true
		for i, q := range tr.Children {
			if !childAcc[i].Has(q) {
				ok = false
				break
			}
		}
		if ok {
			dst.Add(tr.From)
		}
	}
	for _, s := range childAcc {
		pool.Put(s)
	}
}

// Accepts reports whether the tree is in L(T).
func (a *NFTA) Accepts(t *Tree) bool {
	if a.initial < 0 {
		panic("nfta: initial state unset")
	}
	return a.AcceptingStates(t)[a.initial]
}

// AcceptsFrom reports whether the tree is accepted starting from q.
func (a *NFTA) AcceptsFrom(q int, t *Tree) bool {
	return a.AcceptingStates(t)[q]
}

// AcceptsForestFrom reports whether the forest (an ordered list of
// trees) is accepted by the state tuple: tree i from states[i].
func (a *NFTA) AcceptsForestFrom(states []int, forest []*Tree) bool {
	if len(states) != len(forest) {
		return false
	}
	for i, t := range forest {
		if !a.AcceptsFrom(states[i], t) {
			return false
		}
	}
	return true
}

// String renders the automaton for debugging.
func (a *NFTA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "NFTA states=%d init=%d\n", a.numStates, a.initial)
	for _, tr := range a.trans {
		sym := "λ"
		if tr.Sym != Lambda {
			sym = a.Symbols.Name(tr.Sym)
		}
		children := make([]string, len(tr.Children))
		for i, c := range tr.Children {
			children[i] = strconv.Itoa(c)
		}
		fmt.Fprintf(&b, "  %d --%s--> (%s)\n", tr.From, sym, strings.Join(children, ","))
	}
	return b.String()
}
