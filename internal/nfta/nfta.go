package nfta

import (
	"fmt"
	"strconv"
	"strings"

	"pqe/internal/alphabet"
)

// Lambda is the pseudo-symbol of λ-transitions (s, λ, R). Automata must
// be λ-free (see EliminateLambda) before acceptance testing or counting.
const Lambda = -1

// Transition is a tuple (From, Sym, Children) ∈ S × Σ × (∪ᵢ Sⁱ). A leaf
// transition has an empty Children tuple.
type Transition struct {
	From     int
	Sym      int // symbol ID, or Lambda
	Children []int
}

// key returns a canonical identity for deduplication.
func (tr Transition) key() string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(tr.From))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(tr.Sym))
	b.WriteByte('|')
	for _, c := range tr.Children {
		b.WriteString(strconv.Itoa(c))
		b.WriteByte(',')
	}
	return b.String()
}

// NFTA is a top-down non-deterministic finite tree automaton
// T = (S, Σ, Δ, s_init).
type NFTA struct {
	Symbols   *alphabet.Interner
	numStates int
	initial   int
	trans     []Transition
	byFrom    map[int][]int      // state -> transition indices
	bySymAr   map[symArity][]int // (symbol, arity) -> transition indices
	seen      map[string]bool
}

type symArity struct{ sym, arity int }

// New returns an empty NFTA over a fresh alphabet. The initial state
// must be set with SetInitial.
func New() *NFTA {
	return NewWithSymbols(alphabet.New())
}

// NewWithSymbols returns an empty NFTA sharing an existing interner.
func NewWithSymbols(sym *alphabet.Interner) *NFTA {
	return &NFTA{
		Symbols: sym,
		initial: -1,
		byFrom:  make(map[int][]int),
		bySymAr: make(map[symArity][]int),
		seen:    make(map[string]bool),
	}
}

// AddState allocates a new state.
func (a *NFTA) AddState() int {
	a.numStates++
	return a.numStates - 1
}

// NumStates returns |S|.
func (a *NFTA) NumStates() int { return a.numStates }

// SetInitial sets s_init.
func (a *NFTA) SetInitial(q int) {
	a.checkState(q)
	a.initial = q
}

// Initial returns s_init (-1 if unset).
func (a *NFTA) Initial() int { return a.initial }

func (a *NFTA) checkState(q int) {
	if q < 0 || q >= a.numStates {
		panic(fmt.Sprintf("nfta: state %d out of range [0,%d)", q, a.numStates))
	}
}

// AddTransition adds (from, sym, children) to Δ, interning the symbol
// name. Duplicates are ignored.
func (a *NFTA) AddTransition(from int, symbol string, children ...int) {
	a.AddTransitionSym(from, a.Symbols.Intern(symbol), children...)
}

// AddLambda adds a λ-transition (from, λ, children).
func (a *NFTA) AddLambda(from int, children ...int) {
	a.AddTransitionSym(from, Lambda, children...)
}

// AddTransitionSym adds a transition with an interned symbol ID (or
// Lambda).
func (a *NFTA) AddTransitionSym(from, sym int, children ...int) {
	a.checkState(from)
	for _, c := range children {
		a.checkState(c)
	}
	tr := Transition{From: from, Sym: sym, Children: append([]int(nil), children...)}
	k := tr.key()
	if a.seen[k] {
		return
	}
	a.seen[k] = true
	a.byFrom[from] = append(a.byFrom[from], len(a.trans))
	sa := symArity{sym, len(children)}
	a.bySymAr[sa] = append(a.bySymAr[sa], len(a.trans))
	a.trans = append(a.trans, tr)
}

// Transitions returns all transitions. The slice must not be modified.
func (a *NFTA) Transitions() []Transition { return a.trans }

// From returns the transitions out of state q.
func (a *NFTA) From(q int) []Transition {
	idx := a.byFrom[q]
	out := make([]Transition, len(idx))
	for i, j := range idx {
		out[i] = a.trans[j]
	}
	return out
}

// NumTransitions returns |Δ|.
func (a *NFTA) NumTransitions() int { return len(a.trans) }

// Size returns the encoding size of the transition relation (the paper's
// |T|): one unit per tuple element.
func (a *NFTA) Size() int {
	n := 0
	for _, tr := range a.trans {
		n += 2 + len(tr.Children)
	}
	return n
}

// HasLambda reports whether any λ-transitions remain.
func (a *NFTA) HasLambda() bool {
	for _, tr := range a.trans {
		if tr.Sym == Lambda {
			return true
		}
	}
	return false
}

// MaxArity returns the largest children-tuple length in Δ.
func (a *NFTA) MaxArity() int {
	k := 0
	for _, tr := range a.trans {
		if len(tr.Children) > k {
			k = len(tr.Children)
		}
	}
	return k
}

// AcceptingStates returns the set of states q such that the tree is
// accepted starting from q, computed by the standard bottom-up product
// check. The automaton must be λ-free.
func (a *NFTA) AcceptingStates(t *Tree) map[int]bool {
	if a.HasLambda() {
		panic("nfta: AcceptingStates on automaton with λ-transitions")
	}
	return a.acceptingStates(t)
}

func (a *NFTA) acceptingStates(t *Tree) map[int]bool {
	childAcc := make([]map[int]bool, len(t.Children))
	for i, c := range t.Children {
		childAcc[i] = a.acceptingStates(c)
	}
	acc := make(map[int]bool)
	for _, j := range a.bySymAr[symArity{t.Sym, len(t.Children)}] {
		tr := a.trans[j]
		if acc[tr.From] {
			continue
		}
		ok := true
		for i, q := range tr.Children {
			if !childAcc[i][q] {
				ok = false
				break
			}
		}
		if ok {
			acc[tr.From] = true
		}
	}
	return acc
}

// Accepts reports whether the tree is in L(T).
func (a *NFTA) Accepts(t *Tree) bool {
	if a.initial < 0 {
		panic("nfta: initial state unset")
	}
	return a.AcceptingStates(t)[a.initial]
}

// AcceptsFrom reports whether the tree is accepted starting from q.
func (a *NFTA) AcceptsFrom(q int, t *Tree) bool {
	return a.AcceptingStates(t)[q]
}

// AcceptsForestFrom reports whether the forest (an ordered list of
// trees) is accepted by the state tuple: tree i from states[i].
func (a *NFTA) AcceptsForestFrom(states []int, forest []*Tree) bool {
	if len(states) != len(forest) {
		return false
	}
	for i, t := range forest {
		if !a.AcceptsFrom(states[i], t) {
			return false
		}
	}
	return true
}

// String renders the automaton for debugging.
func (a *NFTA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "NFTA states=%d init=%d\n", a.numStates, a.initial)
	for _, tr := range a.trans {
		sym := "λ"
		if tr.Sym != Lambda {
			sym = a.Symbols.Name(tr.Sym)
		}
		children := make([]string, len(tr.Children))
		for i, c := range tr.Children {
			children[i] = strconv.Itoa(c)
		}
		fmt.Fprintf(&b, "  %d --%s--> (%s)\n", tr.From, sym, strings.Join(children, ","))
	}
	return b.String()
}
