// Package nfta implements (top-down) non-deterministic finite tree
// automata over labelled k-trees (Section 2 of the paper), plus the two
// syntactic extensions the reductions use: augmented NFTAs (Section 4.1:
// string-annotated transitions and optional "?" symbols) and NFTAs with
// multipliers (Section 5.1: binary-comparator gadgets that scale the
// number of accepted trees). Both extensions translate to ordinary
// NFTAs in polynomial time (Remarks 1 and 2).
package nfta

import (
	"fmt"
	"strconv"
	"strings"

	"pqe/internal/alphabet"
)

// Tree is a labelled ordered tree: a node with an interned symbol label
// and a (possibly empty) sequence of children. This is the materialized
// form of the paper's prefix-closed subsets of [k]* with labels.
type Tree struct {
	Sym      int
	Children []*Tree
}

// Leaf returns a leaf node.
func Leaf(sym int) *Tree { return &Tree{Sym: sym} }

// Node returns an internal node.
func Node(sym int, children ...*Tree) *Tree {
	return &Tree{Sym: sym, Children: children}
}

// Size returns |t|, the number of nodes.
func (t *Tree) Size() int {
	n := 1
	for _, c := range t.Children {
		n += c.Size()
	}
	return n
}

// Key returns a canonical serialization, usable as a map key; two trees
// are equal iff their keys are equal.
func (t *Tree) Key() string {
	var b strings.Builder
	t.appendKey(&b)
	return b.String()
}

func (t *Tree) appendKey(b *strings.Builder) {
	b.WriteString(strconv.Itoa(t.Sym))
	if len(t.Children) > 0 {
		b.WriteByte('(')
		for i, c := range t.Children {
			if i > 0 {
				b.WriteByte(',')
			}
			c.appendKey(b)
		}
		b.WriteByte(')')
	}
}

// Pretty renders the tree with symbol names from the interner.
func (t *Tree) Pretty(sym *alphabet.Interner) string {
	var b strings.Builder
	t.appendPretty(sym, &b)
	return b.String()
}

func (t *Tree) appendPretty(sym *alphabet.Interner, b *strings.Builder) {
	b.WriteString(sym.Name(t.Sym))
	if len(t.Children) > 0 {
		b.WriteByte('(')
		for i, c := range t.Children {
			if i > 0 {
				b.WriteByte(',')
			}
			c.appendPretty(sym, b)
		}
		b.WriteByte(')')
	}
}

// Path builds a unary chain labelled syms[0] / syms[1] / … with the last
// node carrying the given children (used by annotation and multiplier
// gadgets, which splice paths into trees).
func Path(syms []int, children ...*Tree) *Tree {
	if len(syms) == 0 {
		panic("nfta: empty path")
	}
	if len(syms) == 1 {
		return &Tree{Sym: syms[0], Children: children}
	}
	return &Tree{Sym: syms[0], Children: []*Tree{Path(syms[1:], children...)}}
}

// Labels returns the labels of the tree in preorder.
func (t *Tree) Labels() []int {
	var out []int
	var walk func(*Tree)
	walk = func(n *Tree) {
		out = append(out, n.Sym)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t)
	return out
}

// Equal reports whether two trees are identical.
func (t *Tree) Equal(u *Tree) bool {
	if t.Sym != u.Sym || len(t.Children) != len(u.Children) {
		return false
	}
	for i := range t.Children {
		if !t.Children[i].Equal(u.Children[i]) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (t *Tree) Clone() *Tree {
	out := &Tree{Sym: t.Sym}
	for _, c := range t.Children {
		out.Children = append(out.Children, c.Clone())
	}
	return out
}

// String renders the tree with raw symbol IDs.
func (t *Tree) String() string {
	return fmt.Sprintf("tree%s", t.Key())
}
