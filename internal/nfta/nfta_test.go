package nfta

import (
	"math/big"
	"math/rand"
	"testing"

	"pqe/internal/alphabet"
	"pqe/internal/bitset"
)

// buildChainAuto accepts unary chains a-a-…-a-b (k ≥ 0 a's then a b
// leaf).
func buildChainAuto() *NFTA {
	a := New()
	q := a.AddState()
	a.AddTransition(q, "a", q)
	a.AddTransition(q, "b")
	a.SetInitial(q)
	return a
}

func TestTreeBasics(t *testing.T) {
	in := alphabet.New()
	sa, sb := in.Intern("a"), in.Intern("b")
	tr := Node(sa, Leaf(sb), Node(sa, Leaf(sb)))
	if tr.Size() != 4 {
		t.Errorf("Size = %d", tr.Size())
	}
	if tr.Pretty(in) != "a(b,a(b))" {
		t.Errorf("Pretty = %q", tr.Pretty(in))
	}
	if !tr.Equal(tr.Clone()) {
		t.Error("clone not equal")
	}
	if tr.Key() == Leaf(sa).Key() {
		t.Error("distinct trees share a key")
	}
	p := Path([]int{sa, sa}, Leaf(sb))
	if p.Pretty(in) != "a(a(b))" {
		t.Errorf("Path = %q", p.Pretty(in))
	}
	want := []int{sa, sb, sa, sb}
	got := tr.Labels()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Labels = %v", got)
			break
		}
	}
}

func TestAcceptsChain(t *testing.T) {
	a := buildChainAuto()
	sa, _ := a.Symbols.Lookup("a")
	sb, _ := a.Symbols.Lookup("b")
	if !a.Accepts(Leaf(sb)) {
		t.Error("b leaf rejected")
	}
	if !a.Accepts(Path([]int{sa, sa}, Leaf(sb))) {
		t.Error("a(a(b)) rejected")
	}
	if a.Accepts(Leaf(sa)) {
		t.Error("a leaf accepted")
	}
	if a.Accepts(Node(sb, Leaf(sb))) {
		t.Error("b with child accepted")
	}
}

func TestAcceptsBinary(t *testing.T) {
	// Full binary trees: internal "f" nodes with two children, "x"
	// leaves.
	a := New()
	q := a.AddState()
	a.AddTransition(q, "f", q, q)
	a.AddTransition(q, "x")
	a.SetInitial(q)
	f, _ := a.Symbols.Lookup("f")
	x, _ := a.Symbols.Lookup("x")
	good := Node(f, Leaf(x), Node(f, Leaf(x), Leaf(x)))
	if !a.Accepts(good) {
		t.Error("valid full binary tree rejected")
	}
	bad := Node(f, Leaf(x))
	if a.Accepts(bad) {
		t.Error("unary f node accepted")
	}
	// Sizes of full binary trees are odd: 1, 3, 5, …
	if got := ExactCount(a, 2); got.Sign() != 0 {
		t.Errorf("count at even size = %v", got)
	}
	// Number of full binary trees with n leaves is the Catalan number;
	// size 7 = 4 leaves + 3 internal → C₃ = 5.
	if got := ExactCount(a, 7); got.Int64() != 5 {
		t.Errorf("ExactCount(7) = %v, want 5 (Catalan)", got)
	}
}

func TestAcceptingStatesMultiple(t *testing.T) {
	a := New()
	q0 := a.AddState()
	q1 := a.AddState()
	a.AddTransition(q0, "x")
	a.AddTransition(q1, "x")
	a.SetInitial(q0)
	x, _ := a.Symbols.Lookup("x")
	acc := a.AcceptingStates(Leaf(x))
	if !acc[q0] || !acc[q1] {
		t.Errorf("AcceptingStates = %v", acc)
	}
	if !a.AcceptsFrom(q1, Leaf(x)) {
		t.Error("AcceptsFrom(q1) = false")
	}
	if !a.AcceptsForestFrom([]int{q0, q1}, []*Tree{Leaf(x), Leaf(x)}) {
		t.Error("forest acceptance failed")
	}
	if a.AcceptsForestFrom([]int{q0}, []*Tree{Leaf(x), Leaf(x)}) {
		t.Error("length-mismatched forest accepted")
	}
}

func TestEliminateLambdaUnary(t *testing.T) {
	// q0 --λ--> q1, q1 accepts leaf "x". After elimination q0 accepts it.
	a := New()
	q0 := a.AddState()
	q1 := a.AddState()
	a.AddLambda(q0, q1)
	a.AddTransition(q1, "x")
	a.SetInitial(q0)
	out, err := EliminateLambda(a)
	if err != nil {
		t.Fatal(err)
	}
	if out.HasLambda() {
		t.Error("λ-transitions remain")
	}
	x, _ := out.Symbols.Lookup("x")
	if !out.Accepts(Leaf(x)) {
		t.Error("leaf rejected after λ-elimination")
	}
}

func TestEliminateLambdaChain(t *testing.T) {
	// λ-chain q0 → q1 → q2 with the real transition at the end.
	a := New()
	q0 := a.AddState()
	q1 := a.AddState()
	q2 := a.AddState()
	a.AddLambda(q0, q1)
	a.AddLambda(q1, q2)
	a.AddTransition(q2, "x")
	a.SetInitial(q0)
	out, err := EliminateLambda(a)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := out.Symbols.Lookup("x")
	if !out.Accepts(Leaf(x)) {
		t.Error("leaf rejected after chained λ-elimination")
	}
}

func TestEliminateLambdaForestSplice(t *testing.T) {
	// root --f--> (m); m --λ--> (l, l); l accepts leaf x.
	// Language after elimination: f(x, x).
	a := New()
	root := a.AddState()
	m := a.AddState()
	l := a.AddState()
	a.AddTransition(root, "f", m)
	a.AddLambda(m, l, l)
	a.AddTransition(l, "x")
	a.SetInitial(root)
	out, err := EliminateLambda(a)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := out.Symbols.Lookup("f")
	x, _ := out.Symbols.Lookup("x")
	if !out.Accepts(Node(f, Leaf(x), Leaf(x))) {
		t.Errorf("f(x,x) rejected:\n%s", out)
	}
	if out.Accepts(Node(f, Leaf(x))) {
		t.Error("f(x) accepted")
	}
}

func TestEliminateLambdaEmptyForest(t *testing.T) {
	// root --f--> (m, l); m --λ--> (); l accepts x. Language: f(x) with
	// the m child vanishing.
	a := New()
	root := a.AddState()
	m := a.AddState()
	l := a.AddState()
	a.AddTransition(root, "f", m, l)
	a.AddLambda(m)
	a.AddTransition(l, "x")
	a.SetInitial(root)
	out, err := EliminateLambda(a)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := out.Symbols.Lookup("f")
	x, _ := out.Symbols.Lookup("x")
	if !out.Accepts(Node(f, Leaf(x))) {
		t.Errorf("f(x) rejected:\n%s", out)
	}
}

func TestEliminateLambdaInitialForestError(t *testing.T) {
	a := New()
	q0 := a.AddState()
	q1 := a.AddState()
	a.AddLambda(q0, q1, q1)
	a.AddTransition(q1, "x")
	a.SetInitial(q0)
	if _, err := EliminateLambda(a); err == nil {
		t.Error("initial-state forest λ not rejected")
	}
}

func TestAugmentedTranslationChain(t *testing.T) {
	// One transition annotated "a b c" from root to a leaf tuple:
	// language = the chain a(b(c)).
	in := alphabet.New()
	aug := NewAugmented(in)
	root := aug.AddState()
	aug.SetInitial(root)
	label := []AugSymbol{Plain(in.Intern("a")), Plain(in.Intern("b")), Plain(in.Intern("c"))}
	aug.AddTransition(root, label)
	out, err := aug.Translate()
	if err != nil {
		t.Fatal(err)
	}
	sa, _ := out.Symbols.Lookup("a")
	sb, _ := out.Symbols.Lookup("b")
	sc, _ := out.Symbols.Lookup("c")
	want := Path([]int{sa, sb, sc})
	if !out.Accepts(want) {
		t.Errorf("a(b(c)) rejected:\n%s", out)
	}
	if got := ExactCount(out, 3); got.Int64() != 1 {
		t.Errorf("language size = %v, want 1", got)
	}
}

func TestAugmentedTranslationOptional(t *testing.T) {
	// Annotation "a? b?": 4 chains of length 2 over {a,¬a}×{b,¬b}.
	in := alphabet.New()
	aug := NewAugmented(in)
	root := aug.AddState()
	aug.SetInitial(root)
	label := []AugSymbol{Opt(in.Intern("a")), Opt(in.Intern("b"))}
	aug.AddTransition(root, label)
	out, err := aug.Translate()
	if err != nil {
		t.Fatal(err)
	}
	if got := ExactCount(out, 2); got.Int64() != 4 {
		t.Errorf("language size = %v, want 4", got)
	}
	na, ok := out.Symbols.Lookup(NegName("a"))
	if !ok {
		t.Fatal("negated symbol not interned")
	}
	sb, _ := out.Symbols.Lookup("b")
	if !out.Accepts(Path([]int{na, sb})) {
		t.Error("¬a(b) rejected")
	}
}

func TestAugmentedLambdaAnnotation(t *testing.T) {
	// root --"r"--> (m); m --λ--> (l1, l2); leaves annotated "x" and "y".
	in := alphabet.New()
	aug := NewAugmented(in)
	root := aug.AddState()
	m := aug.AddState()
	l1 := aug.AddState()
	l2 := aug.AddState()
	aug.SetInitial(root)
	aug.AddTransition(root, []AugSymbol{Plain(in.Intern("r"))}, m)
	aug.AddTransition(m, nil, l1, l2) // λ annotation
	aug.AddTransition(l1, []AugSymbol{Plain(in.Intern("x"))})
	aug.AddTransition(l2, []AugSymbol{Plain(in.Intern("y"))})
	out, err := aug.Translate()
	if err != nil {
		t.Fatal(err)
	}
	r, _ := out.Symbols.Lookup("r")
	x, _ := out.Symbols.Lookup("x")
	y, _ := out.Symbols.Lookup("y")
	if !out.Accepts(Node(r, Leaf(x), Leaf(y))) {
		t.Errorf("r(x,y) rejected:\n%s", out)
	}
	if got := ExactCount(out, 3); got.Int64() != 1 {
		t.Errorf("language size = %v, want 1", got)
	}
}

func TestIsNegName(t *testing.T) {
	if base, ok := IsNegName(NegName("R(a,b)")); !ok || base != "R(a,b)" {
		t.Errorf("IsNegName round trip = %q, %v", base, ok)
	}
	if _, ok := IsNegName("R(a,b)"); ok {
		t.Error("plain name reported negated")
	}
}

func TestDigitsFor(t *testing.T) {
	cases := []struct {
		n    int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := DigitsFor(big.NewInt(c.n)); got != c.want {
			t.Errorf("DigitsFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

// multChainCount builds a single-transition multiplier automaton
// (root --x,mult,digits--> leaf tuple) and counts the accepted trees of
// size 1+digits.
func multChainCount(t *testing.T, mult int64, digits int) int64 {
	t.Helper()
	in := alphabet.New()
	ma := NewMult(in)
	root := ma.AddState()
	ma.SetInitial(root)
	if err := ma.AddTransition(root, in.Intern("x"), big.NewInt(mult), digits); err != nil {
		t.Fatal(err)
	}
	out, err := ma.Translate()
	if err != nil {
		t.Fatal(err)
	}
	return ExactCount(out, 1+digits).Int64()
}

func TestMultiplierCounts(t *testing.T) {
	for mult := int64(1); mult <= 16; mult++ {
		minDigits := DigitsFor(big.NewInt(mult))
		for digits := minDigits; digits <= minDigits+2; digits++ {
			if got := multChainCount(t, mult, digits); got != mult {
				t.Errorf("mult=%d digits=%d: %d trees accepted", mult, digits, got)
			}
		}
	}
}

func TestMultiplierZeroDropsTransition(t *testing.T) {
	if got := multChainCount(t, 0, 2); got != 0 {
		t.Errorf("mult=0: %d trees accepted", got)
	}
}

func TestMultiplierValidation(t *testing.T) {
	in := alphabet.New()
	ma := NewMult(in)
	root := ma.AddState()
	ma.SetInitial(root)
	if err := ma.AddTransition(root, in.Intern("x"), big.NewInt(5), 2); err == nil {
		t.Error("5 > 2^2 accepted")
	}
	if err := ma.AddTransition(root, in.Intern("x"), big.NewInt(2), 0); err == nil {
		t.Error("mult 2 with 0 digits accepted")
	}
	if err := ma.AddTransition(root, in.Intern("x"), big.NewInt(-1), 1); err == nil {
		t.Error("negative multiplier accepted")
	}
}

func TestMultiplierPreservesStructure(t *testing.T) {
	// Automaton accepting f(x,x) with multiplier 3 (2 digits) on the
	// root transition: 3 trees of size 3 + 2 = 5, each of the form
	// f(d₁(d₂(x,x)))? No — the digit path hangs below f, then the
	// children. Verify the count and that every accepted tree contains
	// both leaves.
	in := alphabet.New()
	ma := NewMult(in)
	root := ma.AddState()
	leaf := ma.AddState()
	ma.SetInitial(root)
	if err := ma.AddTransition(root, in.Intern("f"), big.NewInt(3), 2, leaf, leaf); err != nil {
		t.Fatal(err)
	}
	if err := ma.AddTransition(leaf, in.Intern("x"), big.NewInt(1), 0); err != nil {
		t.Fatal(err)
	}
	out, err := ma.Translate()
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	EnumerateTrees(out, 5, func(tr *Tree) bool {
		count++
		xs := 0
		x, _ := out.Symbols.Lookup("x")
		for _, l := range tr.Labels() {
			if l == x {
				xs++
			}
		}
		if xs != 2 {
			t.Errorf("accepted tree %s has %d x-leaves", tr.Pretty(in), xs)
		}
		return true
	})
	if count != 3 {
		t.Errorf("accepted %d trees, want 3", count)
	}
}

func TestSizeMeasures(t *testing.T) {
	a := buildChainAuto()
	if a.Size() != 5 { // (q,a,(q)): 3 + (q,b,()): 2
		t.Errorf("Size = %d", a.Size())
	}
	if a.NumTransitions() != 2 {
		t.Errorf("NumTransitions = %d", a.NumTransitions())
	}
	if a.MaxArity() != 1 {
		t.Errorf("MaxArity = %d", a.MaxArity())
	}
}

// multChainCountUnary mirrors multChainCount with the unary gadget.
func multChainCountUnary(t *testing.T, mult int64) int64 {
	t.Helper()
	in := alphabet.New()
	ma := NewMult(in)
	root := ma.AddState()
	ma.SetInitial(root)
	if err := ma.AddTransition(root, in.Intern("x"), big.NewInt(mult), DigitsFor(big.NewInt(mult))); err != nil {
		t.Fatal(err)
	}
	out, err := ma.TranslateUnary()
	if err != nil {
		t.Fatal(err)
	}
	return ExactCount(out, 1+UnaryDigits(mult)).Int64()
}

func TestUnaryMultiplierCounts(t *testing.T) {
	for mult := int64(1); mult <= 12; mult++ {
		if got := multChainCountUnary(t, mult); got != mult {
			t.Errorf("unary mult=%d: %d trees accepted", mult, got)
		}
	}
}

func TestUnaryVsBinaryStateCounts(t *testing.T) {
	// The ablation's point: unary states grow linearly, binary
	// logarithmically.
	in := alphabet.New()
	ma := NewMult(in)
	root := ma.AddState()
	ma.SetInitial(root)
	mult := big.NewInt(1000)
	if err := ma.AddTransition(root, in.Intern("x"), mult, DigitsFor(mult)); err != nil {
		t.Fatal(err)
	}
	bin, err := ma.Translate()
	if err != nil {
		t.Fatal(err)
	}
	una, err := ma.TranslateUnary()
	if err != nil {
		t.Fatal(err)
	}
	if bin.NumStates() >= 1+2*11 {
		t.Errorf("binary gadget used %d states", bin.NumStates())
	}
	if una.NumStates() < 1000 {
		t.Errorf("unary gadget used only %d states", una.NumStates())
	}
}

func TestUnaryDigits(t *testing.T) {
	for _, c := range []struct {
		n    int64
		want int
	}{{0, 0}, {1, 0}, {2, 1}, {5, 4}} {
		if got := UnaryDigits(c.n); got != c.want {
			t.Errorf("UnaryDigits(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestTrimPreservesLanguage(t *testing.T) {
	// Automaton with a dead branch: state d is reachable but
	// unproductive (no leaf transitions).
	a := New()
	q := a.AddState()
	d := a.AddState()
	a.AddTransition(q, "a", q)
	a.AddTransition(q, "a", d)
	a.AddTransition(d, "a", d) // never bottoms out
	a.AddTransition(q, "b")
	a.SetInitial(q)
	trimmed := a.Trim()
	if trimmed.NumStates() >= a.NumStates() {
		t.Errorf("Trim kept %d of %d states", trimmed.NumStates(), a.NumStates())
	}
	for n := 1; n <= 6; n++ {
		if got, want := ExactCount(trimmed, n), ExactCount(a, n); got.Cmp(want) != 0 {
			t.Errorf("size %d: trimmed count %v != %v", n, got, want)
		}
	}
}

func TestTrimRemovesMultiplierDeadStates(t *testing.T) {
	in := alphabet.New()
	ma := NewMult(in)
	root := ma.AddState()
	ma.SetInitial(root)
	mult := big.NewInt(7)
	if err := ma.AddTransition(root, in.Intern("x"), mult, DigitsFor(mult)); err != nil {
		t.Fatal(err)
	}
	out, err := ma.Translate()
	if err != nil {
		t.Fatal(err)
	}
	trimmed := out.Trim()
	if trimmed.NumStates() >= out.NumStates() {
		t.Errorf("Trim kept %d of %d states (comparator has a dead free-track head)",
			trimmed.NumStates(), out.NumStates())
	}
	size := 1 + DigitsFor(mult)
	if got, want := ExactCount(trimmed, size), ExactCount(out, size); got.Cmp(want) != 0 {
		t.Errorf("trimmed count %v != %v", got, want)
	}
}

func TestTrimEmptyLanguage(t *testing.T) {
	a := New()
	q := a.AddState()
	a.AddTransition(q, "f", q)
	a.SetInitial(q)
	trimmed := a.Trim()
	if trimmed.Initial() < 0 {
		t.Fatal("trimmed automaton lost its initial state")
	}
	if got := ExactCount(trimmed, 3); got.Sign() != 0 {
		t.Errorf("empty language count %v", got)
	}
}

func TestExactCountDetAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 60; trial++ {
		a := randomSmallNFTA(rng)
		for n := 1; n <= 5; n++ {
			want := ExactCount(a, n)
			got := ExactCountDet(a, n)
			if got.Cmp(want) != 0 {
				t.Fatalf("trial %d size %d: det %v != enum %v\n%s", trial, n, got, want, a)
			}
		}
	}
}

// randomSmallNFTA builds a random λ-free automaton for oracle
// cross-validation.
func randomSmallNFTA(rng *rand.Rand) *NFTA {
	a := New()
	numStates := 2 + rng.Intn(3)
	for i := 0; i < numStates; i++ {
		a.AddState()
	}
	syms := []string{"f", "g", "x"}
	for i := 0; i < 2+rng.Intn(7); i++ {
		arity := rng.Intn(3)
		children := make([]int, arity)
		for j := range children {
			children[j] = rng.Intn(numStates)
		}
		a.AddTransition(rng.Intn(numStates), syms[rng.Intn(len(syms))], children...)
	}
	a.AddTransition(rng.Intn(numStates), "x")
	a.SetInitial(0)
	return a
}

func TestExactCountDetLargeGadgets(t *testing.T) {
	// Verify the unary multiplier gadget count at sizes the
	// enumeration oracle cannot reach.
	for _, mult := range []int64{50, 200} {
		in := alphabet.New()
		ma := NewMult(in)
		root := ma.AddState()
		ma.SetInitial(root)
		if err := ma.AddTransition(root, in.Intern("x"), big.NewInt(mult), DigitsFor(big.NewInt(mult))); err != nil {
			t.Fatal(err)
		}
		una, err := ma.TranslateUnary()
		if err != nil {
			t.Fatal(err)
		}
		if got := ExactCountDet(una, 1+UnaryDigits(mult)); got.Int64() != mult {
			t.Errorf("unary mult=%d: det count %v", mult, got)
		}
		bin, err := ma.Translate()
		if err != nil {
			t.Fatal(err)
		}
		if got := ExactCountDet(bin, 1+DigitsFor(big.NewInt(mult))); got.Int64() != mult {
			t.Errorf("binary mult=%d: det count %v", mult, got)
		}
	}
}

// randomLabelledTree draws a random tree over f/2, g/1, x/0 with the
// given interner, bounded in depth.
func randomLabelledTree(rng *rand.Rand, in *alphabet.Interner, depth int) *Tree {
	f, g, x := in.Intern("f"), in.Intern("g"), in.Intern("x")
	if depth == 0 {
		return Leaf(x)
	}
	switch rng.Intn(3) {
	case 0:
		return Node(f, randomLabelledTree(rng, in, depth-1), randomLabelledTree(rng, in, depth-1))
	case 1:
		return Node(g, randomLabelledTree(rng, in, depth-1))
	default:
		return Leaf(x)
	}
}

func TestAcceptingStatesIntoMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		a := randomSmallNFTA(rng)
		pool := bitset.NewPool(a.NumStates())
		dst := bitset.New(a.NumStates())
		for i := 0; i < 10; i++ {
			tree := randomLabelledTree(rng, a.Symbols, 1+rng.Intn(4))
			want := a.AcceptingStates(tree)
			a.AcceptingStatesInto(tree, dst, pool)
			for q := 0; q < a.NumStates(); q++ {
				if dst.Has(q) != want[q] {
					t.Fatalf("trial %d: state %d bitset %v map %v\ntree %s\n%s",
						trial, q, dst.Has(q), want[q], tree, a)
				}
			}
			if dst.Count() != len(want) {
				t.Fatalf("trial %d: bitset count %d, map size %d", trial, dst.Count(), len(want))
			}
		}
	}
}

func TestAcceptingStatesIntoPanicsOnLambda(t *testing.T) {
	a := New()
	q := a.AddState()
	r := a.AddState()
	a.AddLambda(q, r)
	a.AddTransition(r, "x")
	a.SetInitial(q)
	defer func() {
		if recover() == nil {
			t.Error("no panic on λ-transitions")
		}
	}()
	x, _ := a.Symbols.Lookup("x")
	a.AcceptingStatesInto(Leaf(x), bitset.New(a.NumStates()), bitset.NewPool(a.NumStates()))
}
