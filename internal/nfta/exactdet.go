package nfta

import (
	"math/big"
	"sort"
	"strconv"
	"strings"
)

// ExactCountDet returns |L_n(T)| exactly via bottom-up determinization:
// the "type" of a tree is the set of states from which it is accepted,
// and two trees of the same type are interchangeable, so counting
// (type, size) multiplicities with a dynamic program counts distinct
// trees without enumerating them. Exponential in |S| in the worst case
// (types are subsets) but far more scalable than EnumerateTrees when
// few types are realized — e.g. gadget chains realize a handful of
// types at each size, so sizes in the hundreds are fine.
//
// The automaton must be λ-free.
func ExactCountDet(a *NFTA, n int) *big.Int {
	if a.HasLambda() {
		panic("nfta: ExactCountDet on automaton with λ-transitions")
	}
	if n <= 0 {
		return big.NewInt(0)
	}

	// Group transitions by (symbol, arity).
	type sa struct{ sym, arity int }
	bySA := make(map[sa][]Transition)
	for _, tr := range a.Transitions() {
		k := sa{tr.Sym, len(tr.Children)}
		bySA[k] = append(bySA[k], tr)
	}
	sas := make([]sa, 0, len(bySA))
	for k := range bySA {
		sas = append(sas, k)
	}
	sort.Slice(sas, func(i, j int) bool {
		if sas[i].sym != sas[j].sym {
			return sas[i].sym < sas[j].sym
		}
		return sas[i].arity < sas[j].arity
	})

	// counts[size] maps type-key -> (type, count).
	counts := make([]map[string]*detEntry, n+1)
	for i := range counts {
		counts[i] = make(map[string]*detEntry)
	}
	add := func(size int, typ []int, c *big.Int) {
		if len(typ) == 0 || c.Sign() == 0 {
			return
		}
		k := typeKey(typ)
		if e, ok := counts[size][k]; ok {
			e.count.Add(e.count, c)
		} else {
			counts[size][k] = &detEntry{typ: typ, count: new(big.Int).Set(c)}
		}
	}

	// resultType computes δ̂(a, σ₁…σ_k): the states q with a transition
	// (q, a, c) whose every child state lies in the corresponding type.
	resultType := func(trs []Transition, childTypes [][]int) []int {
		sets := make([]map[int]bool, len(childTypes))
		for i, t := range childTypes {
			sets[i] = make(map[int]bool, len(t))
			for _, q := range t {
				sets[i][q] = true
			}
		}
		var out []int
		seen := make(map[int]bool)
		for _, tr := range trs {
			if seen[tr.From] {
				continue
			}
			ok := true
			for i, c := range tr.Children {
				if !sets[i][c] {
					ok = false
					break
				}
			}
			if ok {
				seen[tr.From] = true
				out = append(out, tr.From)
			}
		}
		sort.Ints(out)
		return out
	}

	for size := 1; size <= n; size++ {
		for _, k := range sas {
			trs := bySA[k]
			if k.arity == 0 {
				if size == 1 {
					var typ []int
					for _, tr := range trs {
						typ = append(typ, tr.From)
					}
					sort.Ints(typ)
					typ = dedupSortedInts(typ)
					add(1, typ, big.NewInt(1))
				}
				continue
			}
			// Distribute size−1 nodes over k ordered children, picking a
			// realized (type, size) entry for each.
			childTypes := make([][]int, k.arity)
			prod := big.NewInt(1)
			var rec func(pos, remaining int, prod *big.Int)
			rec = func(pos, remaining int, prod *big.Int) {
				if pos == k.arity {
					if remaining != 0 {
						return
					}
					typ := resultType(trs, childTypes)
					add(size, typ, prod)
					return
				}
				minRest := k.arity - pos - 1 // each later child needs ≥1 node
				for csize := 1; csize <= remaining-minRest; csize++ {
					for _, e := range sortedEntries(counts[csize]) {
						childTypes[pos] = e.typ
						next := new(big.Int).Mul(prod, e.count)
						rec(pos+1, remaining-csize, next)
					}
				}
			}
			rec(0, size-1, prod)
		}
	}

	total := big.NewInt(0)
	for _, e := range counts[n] {
		for _, q := range e.typ {
			if q == a.Initial() {
				total.Add(total, e.count)
				break
			}
		}
	}
	return total
}

// detEntry is one (type, multiplicity) cell of the determinization DP.
type detEntry struct {
	typ   []int
	count *big.Int
}

// sortedEntries returns the entries in deterministic key order.
func sortedEntries(m map[string]*detEntry) []*detEntry {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*detEntry, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

func typeKey(typ []int) string {
	var b strings.Builder
	for _, q := range typ {
		b.WriteString(strconv.Itoa(q))
		b.WriteByte(',')
	}
	return b.String()
}

func dedupSortedInts(xs []int) []int {
	if len(xs) == 0 {
		return xs
	}
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
