package nfta

// Trim returns an equivalent automaton restricted to useful states:
// those reachable from the initial state *and* productive (able to
// accept at least one finite tree). The reductions and gadget
// translations naturally create dead states — e.g. the binary
// comparator's unreachable free-track head, or bag states whose
// children can never be completed — and every dead state the counting
// estimator never has to consider shrinks its memo tables and
// membership checks. L(Trim(T)) = L(T) at every size.
//
// The automaton must be λ-free. Its transition list must not contain
// duplicates — guaranteed for automata built through the deduplicating
// AddTransitionSym path and for the translations in this package.
func (a *NFTA) Trim() *NFTA {
	if a.HasLambda() {
		panic("nfta: Trim on automaton with λ-transitions")
	}
	// Productive: least fixpoint over transitions. The scan runs in
	// reverse list order: the translations emit chains parent-first, so
	// a forward pass propagates productivity one link per round (rounds
	// proportional to the longest chain), while a reverse pass walks
	// each chain end-to-start and converges in a couple of rounds. The
	// fixpoint is the same either way.
	productive := make([]bool, a.numStates)
	for changed := true; changed; {
		changed = false
		for i := len(a.trans) - 1; i >= 0; i-- {
			tr := a.trans[i]
			if productive[tr.From] {
				continue
			}
			ok := true
			for _, c := range tr.Children {
				if !productive[c] {
					ok = false
					break
				}
			}
			if ok {
				productive[tr.From] = true
				changed = true
			}
		}
	}
	// Reachable: forward closure through transitions whose children are
	// all productive (unproductive children kill the branch anyway).
	reachable := make([]bool, a.numStates)
	if a.initial >= 0 {
		ix := a.fromIdx()
		queue := []int{a.initial}
		reachable[a.initial] = true
		for len(queue) > 0 {
			q := queue[0]
			queue = queue[1:]
			for _, j := range ix.of(q) {
				tr := a.trans[j]
				usable := true
				for _, c := range tr.Children {
					if !productive[c] {
						usable = false
						break
					}
				}
				if !usable {
					continue
				}
				for _, c := range tr.Children {
					if !reachable[c] {
						reachable[c] = true
						queue = append(queue, c)
					}
				}
			}
		}
	}

	keep := make([]int, a.numStates) // old -> new, -1 dropped
	// The source transition list is deduplicated (or duplicate-free by
	// construction), and renumbering is injective, so the output needs
	// no dedup of its own; kept children tuples are carved out of one
	// backing buffer.
	out := newNoDedup(a.Symbols)
	for q := 0; q < a.numStates; q++ {
		if reachable[q] && productive[q] {
			keep[q] = out.AddState()
		} else {
			keep[q] = -1
		}
	}
	// The initial state survives even if unproductive (empty language):
	// an automaton needs an initial state.
	if a.initial >= 0 && keep[a.initial] < 0 {
		keep[a.initial] = out.AddState()
	}
	if a.initial >= 0 {
		out.SetInitial(keep[a.initial])
	}
	total, kept := 0, 0
	for _, tr := range a.trans {
		if keep[tr.From] >= 0 {
			total += len(tr.Children)
			kept++
		}
	}
	out.grow(kept)
	buf := make([]int, 0, total)
	for _, tr := range a.trans {
		if keep[tr.From] < 0 {
			continue
		}
		ok := true
		start := len(buf)
		for _, c := range tr.Children {
			if keep[c] < 0 {
				ok = false
				break
			}
			buf = append(buf, keep[c])
		}
		if ok {
			out.AddTransitionShared(keep[tr.From], tr.Sym, buf[start:len(buf):len(buf)])
		} else {
			buf = buf[:start]
		}
	}
	return out
}
