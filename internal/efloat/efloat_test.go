package efloat

import (
	"math"
	"math/big"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-12*scale
}

func TestFromFloatRoundTrip(t *testing.T) {
	for _, f := range []float64{0, 1, 2, 0.5, 3.25, 1e300, 1e-300, 123456789.123} {
		if got := FromFloat(f).Float(); !almostEqual(got, f) {
			t.Errorf("FromFloat(%v).Float() = %v", f, got)
		}
	}
}

func TestZeroBehaviour(t *testing.T) {
	if !Zero.IsZero() {
		t.Fatal("Zero.IsZero() = false")
	}
	if got := Zero.Add(One); got.Cmp(One) != 0 {
		t.Errorf("0+1 = %v", got)
	}
	if got := One.Sub(One); !got.IsZero() {
		t.Errorf("1-1 = %v", got)
	}
	if got := Zero.Mul(FromFloat(5)); !got.IsZero() {
		t.Errorf("0*5 = %v", got)
	}
	if got := Zero.Float(); got != 0 {
		t.Errorf("Zero.Float() = %v", got)
	}
}

func TestArithmetic(t *testing.T) {
	a := FromFloat(3)
	b := FromFloat(4)
	if got := a.Add(b).Float(); !almostEqual(got, 7) {
		t.Errorf("3+4 = %v", got)
	}
	if got := a.Mul(b).Float(); !almostEqual(got, 12) {
		t.Errorf("3*4 = %v", got)
	}
	if got := b.Div(a).Float(); !almostEqual(got, 4.0/3.0) {
		t.Errorf("4/3 = %v", got)
	}
	if got := b.Sub(a).Float(); !almostEqual(got, 1) {
		t.Errorf("4-3 = %v", got)
	}
	if got := a.Sub(b); !got.IsZero() {
		t.Errorf("3-4 clamps to zero, got %v", got)
	}
	if got := a.MulFloat(2.5).Float(); !almostEqual(got, 7.5) {
		t.Errorf("3*2.5 = %v", got)
	}
}

func TestHugeValues(t *testing.T) {
	// 2^5000 is far beyond float64 range but must be exactly representable.
	x := Pow2(5000)
	if got := x.Log2(); got != 5000 {
		t.Errorf("log2(2^5000) = %v", got)
	}
	y := x.Mul(x) // 2^10000
	if got := y.Log2(); got != 10000 {
		t.Errorf("log2(2^10000) = %v", got)
	}
	if got := y.Div(x); got.Cmp(x) != 0 {
		t.Errorf("2^10000 / 2^5000 = %v", got)
	}
	// Adding a tiny value to a huge one leaves it unchanged.
	if got := x.Add(One); got.Cmp(x) != 0 {
		t.Errorf("2^5000 + 1 = %v", got)
	}
	if got := x.Float(); !math.IsInf(got, 1) {
		t.Errorf("overflowing Float() = %v, want +Inf", got)
	}
	if got := Pow2(-5000).Float(); got != 0 {
		t.Errorf("underflowing Float() = %v, want 0", got)
	}
}

func TestFromBigInt(t *testing.T) {
	n := new(big.Int).Lsh(big.NewInt(1), 1000) // 2^1000
	n.Add(n, big.NewInt(12345))
	x := FromBigInt(n)
	want := 1000.0
	if got := x.Log2(); math.Abs(got-want) > 1e-9 {
		t.Errorf("log2 = %v, want ≈ %v", got, want)
	}
	small := FromBigInt(big.NewInt(42))
	if got := small.Float(); got != 42 {
		t.Errorf("FromBigInt(42) = %v", got)
	}
	if got := FromBigInt(big.NewInt(0)); !got.IsZero() {
		t.Errorf("FromBigInt(0) = %v", got)
	}
}

func TestFromBigRat(t *testing.T) {
	r := big.NewRat(3, 7)
	if got := FromBigRat(r).Float(); !almostEqual(got, 3.0/7.0) {
		t.Errorf("FromBigRat(3/7) = %v", got)
	}
	if got := FromBigRat(new(big.Rat)); !got.IsZero() {
		t.Errorf("FromBigRat(0) = %v", got)
	}
}

func TestCmp(t *testing.T) {
	cases := []struct {
		a, b E
		want int
	}{
		{Zero, Zero, 0},
		{Zero, One, -1},
		{One, Zero, 1},
		{One, One, 0},
		{FromFloat(2), FromFloat(3), -1},
		{Pow2(100), Pow2(99), 1},
		{Pow2(100), Pow2(100).MulFloat(1.5), -1},
	}
	for _, c := range cases {
		if got := c.a.Cmp(c.b); got != c.want {
			t.Errorf("Cmp(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRatio(t *testing.T) {
	if got := FromFloat(6).Ratio(FromFloat(3)); !almostEqual(got, 2) {
		t.Errorf("6/3 ratio = %v", got)
	}
	if got := Zero.Ratio(FromFloat(3)); got != 0 {
		t.Errorf("0/3 ratio = %v", got)
	}
	if got := One.Ratio(Zero); !math.IsInf(got, 1) {
		t.Errorf("1/0 ratio = %v", got)
	}
	// Ratios of equal astronomically large values are exactly 1.
	if got := Pow2(100000).Ratio(Pow2(100000)); got != 1 {
		t.Errorf("huge/huge ratio = %v", got)
	}
}

func TestSumAndMax(t *testing.T) {
	got := Sum(One, FromFloat(2), FromFloat(3)).Float()
	if !almostEqual(got, 6) {
		t.Errorf("Sum = %v", got)
	}
	if got := Max(FromFloat(2), FromFloat(5)); !almostEqual(got.Float(), 5) {
		t.Errorf("Max = %v", got)
	}
	if got := Sum(); !got.IsZero() {
		t.Errorf("empty Sum = %v", got)
	}
}

func TestString(t *testing.T) {
	for _, c := range []struct {
		x    E
		want string
	}{
		{Zero, "0"},
		{One, "1e+00"},
	} {
		if got := c.x.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.x, got, c.want)
		}
	}
	// Huge values must format without panicking and include an exponent.
	s := Pow2(10000).String()
	if len(s) == 0 {
		t.Error("empty string for huge value")
	}
}

func TestBigFloat(t *testing.T) {
	x := FromFloat(1.5).Mul(Pow2(100))
	want := new(big.Float).SetMantExp(big.NewFloat(1.5), 100)
	if x.BigFloat().Cmp(want) != 0 {
		t.Errorf("BigFloat = %v, want %v", x.BigFloat(), want)
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("FromFloat(-1)", func() { FromFloat(-1) })
	mustPanic("FromInt(-1)", func() { FromInt(-1) })
	mustPanic("FromBigInt(-1)", func() { FromBigInt(big.NewInt(-1)) })
	mustPanic("Div by zero", func() { One.Div(Zero) })
	mustPanic("Log2 of zero", func() { Zero.Log2() })
	mustPanic("NaN", func() { FromFloat(math.NaN()) })
	mustPanic("Inf", func() { FromFloat(math.Inf(1)) })
}

// Property: arithmetic on E agrees with float64 arithmetic inside the
// float64 range.
func TestQuickAgainstFloat64(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(r.Float64() * 1e6)
			}
		},
	}
	add := func(a, b float64) bool {
		return almostEqual(FromFloat(a).Add(FromFloat(b)).Float(), a+b)
	}
	mul := func(a, b float64) bool {
		return almostEqual(FromFloat(a).Mul(FromFloat(b)).Float(), a*b)
	}
	sub := func(a, b float64) bool {
		want := a - b
		if want < 0 {
			want = 0
		}
		got := FromFloat(a).Sub(FromFloat(b)).Float()
		// Sub clamps; near-cancellation loses relative precision, so use an
		// absolute tolerance scaled by the inputs.
		return math.Abs(got-want) <= 1e-9*math.Max(a, b)
	}
	for name, f := range map[string]any{"add": add, "mul": mul, "sub": sub} {
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Property: Cmp defines a total order consistent with Log2.
func TestQuickCmpOrder(t *testing.T) {
	f := func(aMant, bMant float64, aExp, bExp int16) bool {
		a := norm(math.Abs(aMant)+0.1, int64(aExp))
		b := norm(math.Abs(bMant)+0.1, int64(bExp))
		cmp := a.Cmp(b)
		la, lb := a.Log2(), b.Log2()
		switch {
		case la < lb:
			return cmp == -1
		case la > lb:
			return cmp == 1
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Mul and Div are inverse at extreme exponents.
func TestQuickMulDivInverse(t *testing.T) {
	f := func(mantA, mantB float64, expA, expB int16) bool {
		a := norm(math.Abs(mantA)+0.5, int64(expA)*37)
		b := norm(math.Abs(mantB)+0.5, int64(expB)*37)
		back := a.Mul(b).Div(b)
		// Compare within one ULP-ish relative tolerance via Log2.
		return math.Abs(back.Log2()-a.Log2()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBitsRoundTrip(t *testing.T) {
	vals := []E{Zero, One, FromFloat(0.5), FromFloat(3.25), FromFloat(1e300).Mul(FromFloat(1e300)), Pow2(-5000)}
	for _, v := range vals {
		mant, exp := v.Bits()
		got, err := FromBits(mant, exp)
		if err != nil {
			t.Fatalf("FromBits(Bits(%v)): %v", v, err)
		}
		gm, ge := got.Bits()
		if gm != mant || ge != exp {
			t.Errorf("Bits round trip for %v: got {%#x,%d}, want {%#x,%d}", v, gm, ge, mant, exp)
		}
	}
}

func TestFromBitsRejectsDenormal(t *testing.T) {
	bad := []struct {
		mant uint64
		exp  int64
	}{
		{math.Float64bits(0.5), 3},  // mantissa below [1,2)
		{math.Float64bits(2.0), 0},  // mantissa at 2
		{math.Float64bits(-1.5), 0}, // negative mantissa
		{math.Float64bits(math.NaN()), 0},
		{0, 7},                   // zero mantissa with nonzero exponent
		{math.Float64bits(1), 1}, // {1,1} is fine — sanity-check below
	}
	for i, b := range bad[:len(bad)-1] {
		if _, err := FromBits(b.mant, b.exp); err == nil {
			t.Errorf("case %d: FromBits(%#x, %d) accepted a denormalized encoding", i, b.mant, b.exp)
		}
	}
	if _, err := FromBits(math.Float64bits(1), 1); err != nil {
		t.Errorf("FromBits rejected a valid encoding: %v", err)
	}
}

func TestUpperMedian(t *testing.T) {
	mk := func(fs ...float64) []E {
		out := make([]E, len(fs))
		for i, f := range fs {
			out[i] = FromFloat(f)
		}
		return out
	}
	cases := []struct {
		in   []E
		want float64
	}{
		{mk(3), 3},
		{mk(3, 1), 3},
		{mk(5, 1, 3), 3},
		{mk(4, 2, 1, 3), 3},
		{mk(2, 2, 9, 1, 2), 2},
	}
	for _, c := range cases {
		n := len(c.in)
		if got := UpperMedian(c.in).Float(); !almostEqual(got, c.want) {
			t.Errorf("UpperMedian of %d values = %v, want %v", n, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("UpperMedian(nil) did not panic")
		}
	}()
	UpperMedian(nil)
}
