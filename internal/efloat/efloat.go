// Package efloat implements non-negative floating-point numbers with an
// extended exponent range.
//
// The counting estimators in this module manipulate cardinalities as large
// as 2^|D| · ∏ dᵢ, where |D| is the database size and dᵢ are probability
// denominators. Such values overflow float64 (whose exponent is capped at
// 1023) long before the algorithms reach interesting instance sizes. An
// E value stores a float64 mantissa in [1, 2) together with a separate
// int64 binary exponent, giving ~15 significant decimal digits over an
// effectively unbounded magnitude range, which is exactly what approximate
// counting needs.
//
// E values are immutable and safe to copy. The zero value is the number 0.
package efloat

import (
	"fmt"
	"math"
	"math/big"
	"sort"
)

// E is a non-negative extended-range float: mant × 2^exp with
// mant ∈ [1, 2) for nonzero values, and mant == 0, exp == 0 for zero.
type E struct {
	mant float64
	exp  int64
}

// Zero is the E representation of 0.
var Zero = E{}

// One is the E representation of 1.
var One = E{mant: 1, exp: 0}

// norm renormalizes an arbitrary non-negative mantissa/exponent pair so the
// mantissa lies in [1, 2).
func norm(mant float64, exp int64) E {
	if mant == 0 {
		return Zero
	}
	if mant < 0 || math.IsNaN(mant) || math.IsInf(mant, 0) {
		panic(fmt.Sprintf("efloat: invalid mantissa %v", mant))
	}
	frac, e := math.Frexp(mant) // frac ∈ [0.5, 1)
	return E{mant: frac * 2, exp: exp + int64(e) - 1}
}

// FromFloat converts a non-negative float64 to an E. It panics if f is
// negative, NaN or infinite.
func FromFloat(f float64) E {
	return norm(f, 0)
}

// FromInt converts a non-negative integer to an E.
func FromInt(n int64) E {
	if n < 0 {
		panic("efloat: negative integer")
	}
	return norm(float64(n), 0)
}

// FromBigInt converts a non-negative big.Int to an E without overflow.
func FromBigInt(n *big.Int) E {
	if n.Sign() < 0 {
		panic("efloat: negative big integer")
	}
	if n.Sign() == 0 {
		return Zero
	}
	bits := n.BitLen()
	// Take the top 53 bits as the mantissa and remember the shift.
	shift := 0
	if bits > 53 {
		shift = bits - 53
		n = new(big.Int).Rsh(n, uint(shift))
	}
	f, _ := new(big.Float).SetInt(n).Float64()
	return norm(f, int64(shift))
}

// FromBigRat converts a non-negative big.Rat to an E.
func FromBigRat(r *big.Rat) E {
	if r.Sign() < 0 {
		panic("efloat: negative rational")
	}
	if r.Sign() == 0 {
		return Zero
	}
	return FromBigInt(r.Num()).Div(FromBigInt(r.Denom()))
}

// Pow2 returns 2^k as an E, for any k (including negative).
func Pow2(k int64) E { return E{mant: 1, exp: k} }

// IsZero reports whether x is 0.
func (x E) IsZero() bool { return x.mant == 0 }

// Mul returns x · y.
func (x E) Mul(y E) E {
	if x.IsZero() || y.IsZero() {
		return Zero
	}
	return norm(x.mant*y.mant, x.exp+y.exp)
}

// Div returns x / y. It panics if y is 0.
func (x E) Div(y E) E {
	if y.IsZero() {
		panic("efloat: division by zero")
	}
	if x.IsZero() {
		return Zero
	}
	return norm(x.mant/y.mant, x.exp-y.exp)
}

// Add returns x + y.
func (x E) Add(y E) E {
	if x.IsZero() {
		return y
	}
	if y.IsZero() {
		return x
	}
	// Align exponents; if they differ by more than the float64 precision
	// the smaller term vanishes.
	if x.exp < y.exp {
		x, y = y, x
	}
	d := x.exp - y.exp
	if d > 64 {
		return x
	}
	return norm(x.mant+math.Ldexp(y.mant, -int(d)), x.exp)
}

// Sub returns x − y clamped at 0: approximate counts occasionally produce
// slightly negative differences, which the estimators treat as empty.
func (x E) Sub(y E) E {
	if y.IsZero() {
		return x
	}
	if x.IsZero() {
		return Zero
	}
	if x.exp < y.exp {
		return Zero
	}
	d := x.exp - y.exp
	if d > 64 {
		return x
	}
	m := x.mant - math.Ldexp(y.mant, -int(d))
	if m <= 0 {
		return Zero
	}
	return norm(m, x.exp)
}

// MulFloat returns x · f for a non-negative float64 f.
func (x E) MulFloat(f float64) E {
	if f == 0 || x.IsZero() {
		return Zero
	}
	if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
		panic(fmt.Sprintf("efloat: invalid factor %v", f))
	}
	return norm(x.mant*f, x.exp)
}

// Cmp compares x and y, returning -1, 0 or +1.
func (x E) Cmp(y E) int {
	switch {
	case x.IsZero() && y.IsZero():
		return 0
	case x.IsZero():
		return -1
	case y.IsZero():
		return 1
	case x.exp != y.exp:
		if x.exp < y.exp {
			return -1
		}
		return 1
	case x.mant < y.mant:
		return -1
	case x.mant > y.mant:
		return 1
	}
	return 0
}

// Less reports whether x < y.
func (x E) Less(y E) bool { return x.Cmp(y) < 0 }

// Float returns x as a float64. Values outside the float64 range saturate
// to 0 or +Inf.
func (x E) Float() float64 {
	if x.IsZero() {
		return 0
	}
	if x.exp > 1023 {
		return math.Inf(1)
	}
	if x.exp < -1073 {
		return 0
	}
	return math.Ldexp(x.mant, int(x.exp))
}

// Log2 returns log₂(x). It panics if x is 0.
func (x E) Log2() float64 {
	if x.IsZero() {
		panic("efloat: log of zero")
	}
	return float64(x.exp) + math.Log2(x.mant)
}

// Ratio returns x/y as a float64, saturating at +Inf; Ratio of two zeros
// is defined as 0. This is the primitive used to derive sampling
// probabilities from paired cardinality estimates.
func (x E) Ratio(y E) float64 {
	if x.IsZero() {
		return 0
	}
	if y.IsZero() {
		return math.Inf(1)
	}
	return x.Div(y).Float()
}

// BigFloat returns x as a big.Float with 128 bits of precision.
func (x E) BigFloat() *big.Float {
	f := big.NewFloat(x.mant).SetPrec(128)
	return f.SetMantExp(f, int(x.exp))
}

// String formats x in scientific base-10 notation, e.g. "3.21e+100".
func (x E) String() string {
	if x.IsZero() {
		return "0"
	}
	log10 := x.Log2() * math.Ln2 / math.Ln10
	e10 := math.Floor(log10)
	m10 := math.Pow(10, log10-e10)
	// Guard against rounding pushing the mantissa to 10.
	if m10 >= 10 {
		m10 /= 10
		e10++
	}
	return fmt.Sprintf("%.6ge%+03d", m10, int64(e10))
}

// Bits returns the exact wire representation of x: the IEEE-754 bit
// pattern of the mantissa and the binary exponent. Together with
// FromBits it round-trips every E losslessly, which JSON float
// encoding does not guarantee.
func (x E) Bits() (mant uint64, exp int64) {
	return math.Float64bits(x.mant), x.exp
}

// FromBits reconstructs an E from the representation returned by Bits.
// It rejects encodings that violate the normalization invariant (zero
// is {0, 0}; any other mantissa must lie in [1, 2)) so a corrupted or
// hostile wire value can never produce an E that compares or multiplies
// incorrectly.
func FromBits(mant uint64, exp int64) (E, error) {
	m := math.Float64frombits(mant)
	if m == 0 {
		if mant != 0 || exp != 0 {
			return Zero, fmt.Errorf("efloat: denormalized zero encoding {%#x, %d}", mant, exp)
		}
		return Zero, nil
	}
	if math.IsNaN(m) || m < 1 || m >= 2 {
		return Zero, fmt.Errorf("efloat: mantissa %v out of [1, 2)", m)
	}
	return E{mant: m, exp: exp}, nil
}

// Sum returns the sum of the given values.
func Sum(xs ...E) E {
	total := Zero
	for _, x := range xs {
		total = total.Add(x)
	}
	return total
}

// Max returns the larger of x and y.
func Max(x, y E) E {
	if x.Less(y) {
		return y
	}
	return x
}

// UpperMedian sorts xs in place and returns the upper median
// xs[len(xs)/2]. Every estimator merge — in-process and sharded — goes
// through this one function, so a trial multiset always reduces to the
// same E no matter where its trials ran. It panics on an empty slice.
func UpperMedian(xs []E) E {
	if len(xs) == 0 {
		panic("efloat: upper median of no values")
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i].Less(xs[j]) })
	return xs[len(xs)/2]
}
