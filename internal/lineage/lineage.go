// Package lineage implements the intensional approach to PQE that the
// paper's introduction contrasts against: compute the lineage of the
// query over the database as a propositional DNF formula (one clause per
// witness, one Boolean variable per fact) and compute its weighted model
// count, exactly via Shannon expansion or approximately via the
// classical Karp–Luby FPRAS for DNF counting.
//
// The lineage of a conjunctive query of length i over a database D can
// have Θ(|D|^i) clauses (Section 1.1) — the exponential dependence on
// query length that the paper's automaton-based FPRAS eliminates. The
// experiment harness measures exactly this blow-up.
package lineage

import (
	"fmt"
	"math/big"
	"sort"

	"pqe/internal/cq"
	"pqe/internal/pdb"
)

// DNF is a monotone propositional formula in disjunctive normal form
// over fact variables: variable i is the presence of the i-th fact of
// the database's fact ordering. Clauses are sorted, duplicate-free
// variable lists.
type DNF struct {
	NumVars int
	Clauses [][]int
}

// Compute builds the lineage of Q over D: one clause per witness
// (homomorphism), whose variables are the facts the witness uses. The
// number of clauses is the number of witnesses — up to ∏ᵢ |Rᵢ-facts|.
// Limit > 0 aborts with an error once that many clauses have been
// produced, as a guard against the very blow-up this package exists to
// measure.
func Compute(q *cq.Query, d *pdb.Database, limit int) (*DNF, error) {
	dnf := &DNF{NumVars: d.Size()}
	var overflow bool
	cq.EnumerateWitnesses(d, q, func(a cq.Assignment) bool {
		clause := make([]int, 0, q.Len())
		seen := make(map[int]bool, q.Len())
		for _, f := range cq.WitnessFacts(q, a) {
			idx := d.IndexOf(f)
			if idx < 0 {
				panic(fmt.Sprintf("lineage: witness fact %v not in database", f))
			}
			if !seen[idx] {
				seen[idx] = true
				clause = append(clause, idx)
			}
		}
		sort.Ints(clause)
		dnf.Clauses = append(dnf.Clauses, clause)
		if limit > 0 && len(dnf.Clauses) > limit {
			overflow = true
			return false
		}
		return true
	})
	if overflow {
		return nil, fmt.Errorf("lineage: clause limit %d exceeded", limit)
	}
	return dnf, nil
}

// Size returns the total number of literals, the standard measure of
// lineage size.
func (f *DNF) Size() int {
	n := 0
	for _, c := range f.Clauses {
		n += len(c)
	}
	return n
}

// NumClauses returns the number of clauses.
func (f *DNF) NumClauses() int { return len(f.Clauses) }

// Eval reports whether the assignment (presence mask over fact
// variables) satisfies the formula.
func (f *DNF) Eval(mask []bool) bool {
	for _, clause := range f.Clauses {
		ok := true
		for _, v := range clause {
			if !mask[v] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// WMCExact computes the weighted model count of the lineage under the
// fact probabilities of H — i.e. Pr_H(Q) — by Shannon expansion on the
// most frequent variable with memoization on the residual clause set.
// Worst-case exponential, but with memoization it handles the moderate
// lineages of the test suite; it is the exact variant of the intensional
// baseline.
func (f *DNF) WMCExact(h *pdb.Probabilistic) *big.Rat {
	if h.Size() != f.NumVars {
		panic("lineage: variable/database size mismatch")
	}
	memo := make(map[string]*big.Rat)
	return wmc(f.Clauses, h, memo)
}

func wmc(clauses [][]int, h *pdb.Probabilistic, memo map[string]*big.Rat) *big.Rat {
	if len(clauses) == 0 {
		return new(big.Rat)
	}
	for _, c := range clauses {
		if len(c) == 0 {
			return big.NewRat(1, 1) // empty clause: formula is true
		}
	}
	key := clausesKey(clauses)
	if v, ok := memo[key]; ok {
		return new(big.Rat).Set(v)
	}
	// Branch on the most frequent variable.
	freq := make(map[int]int)
	for _, c := range clauses {
		for _, v := range c {
			freq[v]++
		}
	}
	best, bestN := -1, -1
	for v, n := range freq {
		if n > bestN || (n == bestN && v < best) {
			best, bestN = v, n
		}
	}
	p := h.ProbAt(best).Rat()
	q := new(big.Rat).Sub(big.NewRat(1, 1), p)

	// Positive branch: clauses with best removed from them; negative
	// branch: clauses containing best are dropped.
	var pos, neg [][]int
	for _, c := range clauses {
		has := false
		for _, v := range c {
			if v == best {
				has = true
				break
			}
		}
		if has {
			rest := make([]int, 0, len(c)-1)
			for _, v := range c {
				if v != best {
					rest = append(rest, v)
				}
			}
			pos = append(pos, rest)
		} else {
			pos = append(pos, c)
			neg = append(neg, c)
		}
	}
	total := new(big.Rat).Mul(p, wmc(normalize(pos), h, memo))
	total.Add(total, new(big.Rat).Mul(q, wmc(normalize(neg), h, memo)))
	memo[key] = new(big.Rat).Set(total)
	return total
}

// normalize sorts clauses, removes duplicates and removes clauses
// subsumed by an empty clause shortcut handled in wmc.
func normalize(clauses [][]int) [][]int {
	seen := make(map[string]bool, len(clauses))
	out := make([][]int, 0, len(clauses))
	for _, c := range clauses {
		k := fmt.Sprint(c)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return fmt.Sprint(out[i]) < fmt.Sprint(out[j]) })
	return out
}

func clausesKey(clauses [][]int) string {
	return fmt.Sprint(clauses)
}
