package lineage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pqe/internal/cq"
	"pqe/internal/exact"
	"pqe/internal/pdb"
)

func pathDB() *pdb.Database {
	return pdb.FromFacts(
		pdb.NewFact("R1", "a", "b"),
		pdb.NewFact("R1", "a", "c"),
		pdb.NewFact("R2", "b", "d"),
		pdb.NewFact("R2", "c", "d"),
	)
}

func TestComputeClausesAreWitnesses(t *testing.T) {
	d := pathDB()
	q := cq.PathQuery("R", 2)
	f, err := Compute(q, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumClauses() != 2 {
		t.Fatalf("clauses = %d, want 2", f.NumClauses())
	}
	if f.Size() != 4 {
		t.Errorf("Size = %d, want 4", f.Size())
	}
	// Each clause: one R1 fact and its joining R2 fact.
	for _, c := range f.Clauses {
		if len(c) != 2 {
			t.Errorf("clause %v has %d literals", c, len(c))
		}
	}
}

func TestComputeLimit(t *testing.T) {
	d := pathDB()
	q := cq.PathQuery("R", 2)
	if _, err := Compute(q, d, 1); err == nil {
		t.Error("limit not enforced")
	}
}

func TestEvalAgainstSatisfies(t *testing.T) {
	d := pathDB()
	q := cq.PathQuery("R", 2)
	f, err := Compute(q, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	mask := make([]bool, d.Size())
	for m := 0; m < 1<<uint(d.Size()); m++ {
		for i := range mask {
			mask[i] = m&(1<<uint(i)) != 0
		}
		want := cq.Satisfies(d.Subinstance(mask), q)
		if got := f.Eval(mask); got != want {
			t.Errorf("mask %v: Eval=%v Satisfies=%v", mask, got, want)
		}
	}
}

func TestWMCExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	queries := []*cq.Query{
		cq.PathQuery("R", 2),
		cq.PathQuery("R", 3),
		cq.StarQuery("R", 2),
	}
	for trial := 0; trial < 20; trial++ {
		q := queries[rng.Intn(len(queries))]
		h := randomInstance(rng, q)
		f, err := Compute(q, h.DB(), 0)
		if err != nil {
			t.Fatal(err)
		}
		got := f.WMCExact(h)
		want := exact.MustPQE(q, h)
		if got.Cmp(want) != 0 {
			t.Errorf("trial %d: WMC %v != PQE %v\nQ=%s\nH=%s", trial, got, want, q, h)
		}
	}
}

func randomInstance(rng *rand.Rand, q *cq.Query) *pdb.Probabilistic {
	h := pdb.Empty()
	consts := []string{"a", "b", "c"}
	for _, rel := range q.Relations() {
		for i := 0; i < 1+rng.Intn(3); i++ {
			den := int64(1 + rng.Intn(4))
			num := int64(rng.Intn(int(den) + 1))
			h.Add(pdb.NewFact(rel, consts[rng.Intn(3)], consts[rng.Intn(3)]), pdb.NewProb(num, den))
		}
	}
	return h
}

func TestKarpLubyApproximatesWMC(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 15; trial++ {
		q := cq.PathQuery("R", 2)
		h := randomInstance(rng, q)
		f, err := Compute(q, h.DB(), 0)
		if err != nil {
			t.Fatal(err)
		}
		want := f.WMCFloat(h)
		got := f.KarpLuby(h, KarpLubyOptions{Samples: 20000, Seed: int64(trial + 1)})
		if want == 0 {
			if got != 0 {
				t.Errorf("trial %d: exact 0, estimate %v", trial, got)
			}
			continue
		}
		ratio := got / want
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("trial %d: KL %v vs exact %v (ratio %.3f)", trial, got, want, ratio)
		}
	}
}

func TestKarpLubyEmptyLineage(t *testing.T) {
	f := &DNF{NumVars: 3}
	h := pdb.Uniform(pdb.FromFacts(
		pdb.NewFact("R", "a"), pdb.NewFact("R", "b"), pdb.NewFact("R", "c")))
	if got := f.KarpLuby(h, KarpLubyOptions{Seed: 1}); got != 0 {
		t.Errorf("empty lineage estimate = %v", got)
	}
	if got := f.WMCFloat(h); got != 0 {
		t.Errorf("empty lineage WMC = %v", got)
	}
}

func TestLineageBlowUpIsExponentialInQueryLength(t *testing.T) {
	// Layered complete bipartite graph: layer l has k nodes, every node
	// of layer l connects to every node of layer l+1 via relation Rₗ₊₁.
	// A witness picks one node per layer, so the lineage has k^(i+1)
	// clauses while the database has only k²·i facts — the Θ(|D|^i)
	// growth of Section 1.1.
	k := 2
	for _, i := range []int{2, 3, 4} {
		q := cq.PathQuery("R", i)
		d := pdb.NewDatabase()
		node := func(l, j int) string { return "n" + string(rune('0'+l)) + string(rune('0'+j)) }
		for l := 0; l < i; l++ {
			for a := 0; a < k; a++ {
				for b := 0; b < k; b++ {
					d.Add(pdb.NewFact(q.Atoms[l].Relation, node(l, a), node(l+1, b)))
				}
			}
		}
		f, err := Compute(q, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		wantClauses := 1
		for l := 0; l <= i; l++ {
			wantClauses *= k
		}
		if f.NumClauses() != wantClauses {
			t.Errorf("i=%d: clauses = %d, want %d", i, f.NumClauses(), wantClauses)
		}
	}
}

// Property: WMC of the lineage equals brute-force PQE on random small
// instances.
func TestQuickWMCAgainstBruteForce(t *testing.T) {
	q := cq.PathQuery("R", 2)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomInstance(rng, q)
		dnf, err := Compute(q, h.DB(), 0)
		if err != nil {
			return false
		}
		return dnf.WMCExact(h).Cmp(exact.MustPQE(q, h)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
