package lineage

import (
	"math/big"
	"math/rand"

	"pqe/internal/pdb"
)

// KarpLubyOptions configures the Karp–Luby estimator.
type KarpLubyOptions struct {
	// Samples is the number of Monte-Carlo samples. The classical
	// analysis needs O(m/ε²·log(1/δ)) for m clauses; the caller picks.
	Samples int
	// Seed seeds the deterministic PRNG (ignored when Rng is set).
	Seed int64
	// Rng supplies randomness when non-nil.
	Rng *rand.Rand
}

// KarpLuby approximates the weighted model count of the monotone DNF
// under the fact probabilities of H, using the classical Karp–Luby
// union-of-sets estimator: sample a clause proportional to its
// satisfaction weight, sample an assignment from that clause's
// satisfying distribution, and count the fraction for which the chosen
// clause is the minimal satisfied one. This is the textbook FPRAS for
// the *intensional* approach; its per-sample cost is linear in the
// lineage size, which is what makes it exponential in query length end
// to end.
func (f *DNF) KarpLuby(h *pdb.Probabilistic, opts KarpLubyOptions) float64 {
	if len(f.Clauses) == 0 {
		return 0
	}
	rng := opts.Rng
	if rng == nil {
		seed := opts.Seed
		if seed == 0 {
			seed = 1
		}
		rng = rand.New(rand.NewSource(seed))
	}
	samples := opts.Samples
	if samples <= 0 {
		samples = 1000
	}

	probs := make([]float64, f.NumVars)
	for i := 0; i < f.NumVars; i++ {
		probs[i] = h.ProbAt(i).Float()
	}

	// Clause weights w_j = ∏_{v ∈ clause} π(v).
	weights := make([]float64, len(f.Clauses))
	totalWeight := 0.0
	for j, c := range f.Clauses {
		w := 1.0
		for _, v := range c {
			w *= probs[v]
		}
		weights[j] = w
		totalWeight += w
	}
	if totalWeight == 0 {
		return 0
	}
	// Cumulative weights for clause sampling.
	cum := make([]float64, len(weights))
	acc := 0.0
	for j, w := range weights {
		acc += w
		cum[j] = acc
	}

	mask := make([]bool, f.NumVars)
	hits := 0
	for s := 0; s < samples; s++ {
		// Sample clause j ∝ w_j.
		r := rng.Float64() * totalWeight
		j := 0
		for j < len(cum)-1 && cum[j] < r {
			j++
		}
		// Sample an assignment conditioned on clause j being satisfied.
		for v := range mask {
			mask[v] = rng.Float64() < probs[v]
		}
		for _, v := range f.Clauses[j] {
			mask[v] = true
		}
		// Count iff j is the first satisfied clause (Karp–Luby
		// canonical-clause trick).
		first := -1
		for i, c := range f.Clauses {
			ok := true
			for _, v := range c {
				if !mask[v] {
					ok = false
					break
				}
			}
			if ok {
				first = i
				break
			}
		}
		if first == j {
			hits++
		}
	}
	return totalWeight * float64(hits) / float64(samples)
}

// WMCFloat returns the exact weighted model count as a float64 via
// WMCExact; convenience for comparisons.
func (f *DNF) WMCFloat(h *pdb.Probabilistic) float64 {
	v, _ := f.WMCExact(h).Float64()
	return v
}

// TheoreticalClauseBound returns ∏ᵢ |Rᵢ-facts| for a self-join-free
// query: the worst-case number of lineage clauses, Θ(|D|^|Q|) for
// balanced relations (the Section 1.1 blow-up).
func TheoreticalClauseBound(relSizes []int) *big.Int {
	out := big.NewInt(1)
	for _, n := range relSizes {
		out.Mul(out, big.NewInt(int64(n)))
	}
	return out
}
