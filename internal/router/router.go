// Package router implements the cost-based strategy selection of the
// evaluation pipeline: given a query's Table 1 classification and cheap
// database statistics, it picks the cheapest algorithm whose guarantee
// meets the request — exact when exact is polynomial (or the instance
// is small enough to afford it), the combined-complexity FPRAS
// otherwise.
//
// The decision procedure mirrors the landscape of van Bremen and Meel's
// Table 1:
//
//   - hierarchical (safe) queries have an exact polynomial Dalvi–Suciu
//     safe plan — approximation would be strictly worse;
//   - queries whose lineage is provably small (the witness bound
//     ∏ᵢ |facts(Rᵢ)| over the query's atoms) are answered exactly by
//     weighted model counting over the lineage — OBDD compilation
//     first, Shannon expansion as fallback — sidestepping sampling
//     error entirely;
//   - everything else in the tractable cells (self-join-free, bounded
//     hypertree width) goes to the FPRAS: the string engine for path
//     queries over binary facts (no tree machinery needed), the tree
//     engine otherwise;
//   - the open cells (self-joins with large lineage, unbounded width)
//     remain unsupported, exactly as the paper leaves them open.
//
// Decisions are pure functions of the inputs: the same query,
// classification and database statistics always produce the same
// strategy, so routed runs stay reproducible. Ties never arise — the
// rules are ordered and the first match wins.
package router

import (
	"fmt"

	"pqe/internal/cq"
	"pqe/internal/pdb"
)

// Strategy names one evaluation algorithm (or the auto decision).
type Strategy string

const (
	// Auto lets Decide pick.
	Auto Strategy = "auto"
	// SafePlan is the exact Dalvi–Suciu safe plan (safe queries only).
	SafePlan Strategy = "safeplan"
	// OBDD is exact weighted model counting over an OBDD compiled from
	// the query's DNF lineage (falls back to Lineage when compilation
	// exceeds its node budget).
	OBDD Strategy = "obdd"
	// Lineage is exact weighted model counting by Shannon expansion
	// over the DNF lineage.
	Lineage Strategy = "lineage"
	// NFTA is the Theorem 1 FPRAS over the tree automaton.
	NFTA Strategy = "nfta"
	// PathNFA is the Theorem 2 / footnote 2 FPRAS over the string
	// automaton (self-join-free path queries over binary facts).
	PathNFA Strategy = "nfa"
	// MonteCarlo is the naive additive-error sampling baseline. Never
	// chosen automatically (its guarantee is weaker than every other
	// route); available forced, for comparison runs.
	MonteCarlo Strategy = "montecarlo"
	// Unsupported marks the open cells of Table 1.
	Unsupported Strategy = "unsupported"
)

// Parse resolves a strategy knob string: "" and "auto" mean Auto,
// "force-<engine>" forces one engine unconditionally.
func Parse(s string) (Strategy, error) {
	switch s {
	case "", "auto":
		return Auto, nil
	case "force-safeplan":
		return SafePlan, nil
	case "force-obdd":
		return OBDD, nil
	case "force-lineage":
		return Lineage, nil
	case "force-nfta":
		return NFTA, nil
	case "force-nfa":
		return PathNFA, nil
	case "force-montecarlo":
		return MonteCarlo, nil
	default:
		return "", fmt.Errorf("router: unknown strategy %q (want auto or force-{safeplan,obdd,lineage,nfta,nfa,montecarlo})", s)
	}
}

// Class is the query's Table 1 classification, mirrored from the core
// package (which imports this one).
type Class struct {
	SelfJoinFree bool
	BoundedHW    bool
	Safe         bool
	Path         bool
	Width        int
}

// Config tunes the decision thresholds. The zero value uses defaults.
type Config struct {
	// MaxLineageClauses is the small-lineage threshold: when the
	// witness bound is at most this many clauses, exact WMC over the
	// lineage is considered cheap enough to beat sampling. ≤ 0 uses
	// DefaultMaxLineageClauses.
	MaxLineageClauses int64
}

// DefaultMaxLineageClauses bounds the lineage size the exact WMC route
// will take on: Shannon expansion is worst-case exponential in the
// clause count, and OBDD compilation can blow up similarly, so the
// threshold stays small enough that even the worst case is fast.
const DefaultMaxLineageClauses = 512

func (c Config) maxLineage() int64 {
	if c.MaxLineageClauses <= 0 {
		return DefaultMaxLineageClauses
	}
	return c.MaxLineageClauses
}

// Decision is the routing outcome.
type Decision struct {
	Strategy Strategy
	// Exact reports whether the strategy computes the probability
	// exactly (no sampling error).
	Exact bool
	// Reason is the first matching rule, for telemetry and Explain.
	Reason string
	// WitnessBound is ∏ᵢ |facts(Rᵢ)| (−1 when it overflows the
	// threshold), the lineage-size bound the small-lineage rule tested.
	WitnessBound int64
}

// WitnessBound returns ∏ over the query's atoms of the fact count of
// the atom's relation — an upper bound on the number of lineage clauses
// (every clause picks one fact per atom). Returns −1 as soon as the
// product exceeds limit, so the bound costs O(|Q|) regardless of the
// database size.
func WitnessBound(q *cq.Query, d *pdb.Database, limit int64) int64 {
	bound := int64(1)
	for _, a := range q.Atoms {
		n := int64(len(d.FactsOf(a.Relation)))
		if n == 0 {
			return 0 // some relation is empty: the lineage is empty
		}
		if bound > limit/n {
			return -1
		}
		bound *= n
	}
	return bound
}

// binaryFacts reports whether every fact over the query's relations is
// binary — the precondition of the string-automaton pipeline.
func binaryFacts(q *cq.Query, d *pdb.Database) bool {
	for _, a := range q.Atoms {
		for _, f := range d.FactsOf(a.Relation) {
			if f.Arity() != 2 {
				return false
			}
		}
	}
	return true
}

// Decide picks the strategy for evaluating q over d given its
// classification. A pure function of its inputs: rules are tried in a
// fixed order and the first match wins, so the same (query, database
// statistics, classification) always routes identically.
func Decide(q *cq.Query, d *pdb.Database, class Class, cfg Config) Decision {
	if class.Safe {
		return Decision{
			Strategy: SafePlan,
			Exact:    true,
			Reason:   "hierarchical (safe) query: exact safe plan is polynomial",
		}
	}
	wb := WitnessBound(q, d, cfg.maxLineage())
	if wb >= 0 {
		return Decision{
			Strategy:     OBDD,
			Exact:        true,
			Reason:       fmt.Sprintf("small lineage (witness bound %d ≤ %d): exact WMC beats sampling", wb, cfg.maxLineage()),
			WitnessBound: wb,
		}
	}
	if class.SelfJoinFree && class.Path && binaryFacts(q, d) {
		return Decision{
			Strategy:     PathNFA,
			Reason:       "self-join-free path query over binary facts: string-automaton FPRAS",
			WitnessBound: -1,
		}
	}
	if class.SelfJoinFree && class.BoundedHW {
		return Decision{
			Strategy:     NFTA,
			Reason:       fmt.Sprintf("self-join-free, width %d: tree-automaton FPRAS", class.Width),
			WitnessBound: -1,
		}
	}
	return Decision{
		Strategy:     Unsupported,
		Reason:       "open cell of Table 1 (self-joins with large lineage, or unbounded width)",
		WitnessBound: -1,
	}
}
