package router

import (
	"fmt"
	"testing"

	"pqe/internal/cq"
	"pqe/internal/pdb"
)

// pathDB builds a database with n binary facts per relation of a
// k-atom path query R0(x0,x1), …, and returns both.
func pathDB(k, n int) (*cq.Query, *pdb.Database) {
	q := cq.PathQuery("R", k)
	d := pdb.NewDatabase()
	for i := 1; i <= k; i++ {
		for j := 0; j < n; j++ {
			d.Add(pdb.NewFact(fmt.Sprintf("R%d", i), fmt.Sprintf("a%d", j), fmt.Sprintf("b%d", j)))
		}
	}
	return q, d
}

func TestParse(t *testing.T) {
	for s, want := range map[string]Strategy{
		"":                 Auto,
		"auto":             Auto,
		"force-safeplan":   SafePlan,
		"force-obdd":       OBDD,
		"force-lineage":    Lineage,
		"force-nfta":       NFTA,
		"force-nfa":        PathNFA,
		"force-montecarlo": MonteCarlo,
	} {
		got, err := Parse(s)
		if err != nil || got != want {
			t.Errorf("Parse(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := Parse("force-quantum"); err == nil {
		t.Error("Parse accepted an unknown strategy")
	}
}

func TestWitnessBound(t *testing.T) {
	q, d := pathDB(3, 4)
	if wb := WitnessBound(q, d, 1000); wb != 64 {
		t.Errorf("witness bound %d, want 4³ = 64", wb)
	}
	if wb := WitnessBound(q, d, 63); wb != -1 {
		t.Errorf("witness bound %d, want -1 (over limit)", wb)
	}
	// An empty relation empties the lineage.
	empty := pdb.NewDatabase()
	empty.Add(pdb.NewFact("R1", "a", "b"))
	if wb := WitnessBound(q, empty, 1000); wb != 0 {
		t.Errorf("witness bound %d over empty relations, want 0", wb)
	}
}

func TestDecideSafe(t *testing.T) {
	q := cq.StarQuery("R", 2)
	d := pdb.NewDatabase()
	dec := Decide(q, d, Class{SelfJoinFree: true, Safe: true, BoundedHW: true, Width: 1}, Config{})
	if dec.Strategy != SafePlan || !dec.Exact {
		t.Errorf("safe query routed to %v (exact=%v), want safeplan exact", dec.Strategy, dec.Exact)
	}
}

func TestDecideSmallLineage(t *testing.T) {
	q, d := pathDB(3, 4) // witness bound 64
	dec := Decide(q, d, Class{SelfJoinFree: true, Path: true, BoundedHW: true, Width: 1}, Config{})
	if dec.Strategy != OBDD || !dec.Exact {
		t.Errorf("small-lineage query routed to %v (exact=%v), want obdd exact", dec.Strategy, dec.Exact)
	}
	if dec.WitnessBound != 64 {
		t.Errorf("witness bound %d, want 64", dec.WitnessBound)
	}
}

func TestDecidePathFPRAS(t *testing.T) {
	q, d := pathDB(3, 9) // witness bound 729 > default 512
	dec := Decide(q, d, Class{SelfJoinFree: true, Path: true, BoundedHW: true, Width: 1}, Config{})
	if dec.Strategy != PathNFA || dec.Exact {
		t.Errorf("wide path query routed to %v (exact=%v), want nfa approximate", dec.Strategy, dec.Exact)
	}
	// A non-binary fact on a query relation disables the string engine.
	d.Add(pdb.NewFact("R1", "a", "b", "c"))
	dec = Decide(q, d, Class{SelfJoinFree: true, Path: true, BoundedHW: true, Width: 1}, Config{})
	if dec.Strategy != NFTA {
		t.Errorf("ternary-fact path query routed to %v, want nfta", dec.Strategy)
	}
}

func TestDecideTreeFPRAS(t *testing.T) {
	q, d := pathDB(3, 9)
	dec := Decide(q, d, Class{SelfJoinFree: true, BoundedHW: true, Width: 2}, Config{})
	if dec.Strategy != NFTA || dec.Exact {
		t.Errorf("non-path query routed to %v, want nfta", dec.Strategy)
	}
}

func TestDecideOpenCells(t *testing.T) {
	q, d := pathDB(3, 9)
	for _, class := range []Class{
		{SelfJoinFree: false, BoundedHW: true},
		{SelfJoinFree: true, BoundedHW: false},
	} {
		if dec := Decide(q, d, class, Config{}); dec.Strategy != Unsupported {
			t.Errorf("class %+v routed to %v, want unsupported", class, dec.Strategy)
		}
	}
	// ... but self-joins with small lineage are still exactly solvable.
	qsj := cq.New(cq.NewAtom("R0", "x", "y"), cq.NewAtom("R0", "y", "z"))
	small := pdb.NewDatabase()
	small.Add(pdb.NewFact("R0", "a", "b"))
	small.Add(pdb.NewFact("R0", "b", "c"))
	if dec := Decide(qsj, small, Class{SelfJoinFree: false}, Config{}); dec.Strategy != OBDD {
		t.Errorf("small self-join routed to %v, want obdd", dec.Strategy)
	}
}

func TestDecideDeterministic(t *testing.T) {
	q, d := pathDB(4, 7)
	class := Class{SelfJoinFree: true, Path: true, BoundedHW: true, Width: 1}
	base := Decide(q, d, class, Config{})
	for i := 0; i < 100; i++ {
		if got := Decide(q, d, class, Config{}); got != base {
			t.Fatalf("decision changed across calls: %+v vs %+v", got, base)
		}
	}
}

func TestConfigThreshold(t *testing.T) {
	q, d := pathDB(3, 9) // witness bound 729
	dec := Decide(q, d, Class{SelfJoinFree: true, Path: true, BoundedHW: true, Width: 1}, Config{MaxLineageClauses: 1000})
	if dec.Strategy != OBDD {
		t.Errorf("raised threshold: routed to %v, want obdd", dec.Strategy)
	}
}
