package core

import (
	"errors"
	"testing"

	"pqe/internal/cq"
	"pqe/internal/exact"
	"pqe/internal/gen"
	"pqe/internal/pdb"
)

func TestEvaluateUnionAgainstBruteForce(t *testing.T) {
	// One safe star disjunct + one unsafe path disjunct over disjoint
	// vocabularies.
	q1 := cq.StarQuery("S", 2)
	q2 := cq.PathQuery("R", 3)
	h := pdb.Empty()
	add := func(g *pdb.Probabilistic) {
		for i, f := range g.DB().Facts() {
			h.Add(f, g.ProbAt(i))
		}
	}
	add(gen.Instance(q1, gen.Config{FactsPerRelation: 2, DomainSize: 2, Model: gen.ProbRandomRational, Seed: 3}))
	add(gen.SparsePathInstance(q2, 1, 1, gen.ProbRandomRational, 4))

	want, _ := exact.MustPQEUnion([]*cq.Query{q1, q2}, h).Float64()
	got, err := EvaluateUnion([]*cq.Query{q1, q2}, h, Options{Epsilon: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want == 0 {
		t.Fatal("degenerate union instance")
	}
	if r := got / want; r < 0.85 || r > 1.15 {
		t.Errorf("union estimate %v vs exact %v", got, want)
	}
}

func TestEvaluateUnionRejectsSharedRelations(t *testing.T) {
	q1 := cq.MustParse("R(x,y)")
	q2 := cq.MustParse("R(x,y), S(y)")
	h := pdb.Empty()
	h.Add(pdb.NewFact("R", "a", "b"), pdb.ProbHalf)
	h.Add(pdb.NewFact("S", "b"), pdb.ProbHalf)
	if _, err := EvaluateUnion([]*cq.Query{q1, q2}, h, Options{}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("err = %v, want ErrUnsupported", err)
	}
}

func TestEvaluateUnionEmpty(t *testing.T) {
	if _, err := EvaluateUnion(nil, pdb.Empty(), Options{}); err == nil {
		t.Error("empty union accepted")
	}
}

func TestEvaluateUnionSingleDisjunctMatchesEvaluate(t *testing.T) {
	q := cq.StarQuery("S", 2)
	h := gen.Instance(q, gen.Config{FactsPerRelation: 2, DomainSize: 2, Model: gen.ProbRandomRational, Seed: 5})
	u, err := EvaluateUnion([]*cq.Query{q}, h, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	single, err := Evaluate(q, h, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d := u - single.Probability; d > 1e-12 || d < -1e-12 {
		t.Errorf("union %v != single %v", u, single.Probability)
	}
}
