package core

import (
	"fmt"

	"pqe/internal/count"
	"pqe/internal/efloat"
	"pqe/internal/nfa"
	"pqe/internal/obs"
	"pqe/internal/pdb"
)

// Shard modes name the four FPRAS counting phases a coordinator can
// distribute. The mode tells a worker which reduction to build and
// which engine range function to run; everything else about the trial
// schedule travels in the ShardSpec.
const (
	ShardModeUR      = "ur"      // count.Trees over the Proposition 1 automaton
	ShardModePQE     = "pqe"     // count.Trees over the Theorem 1 weighted automaton
	ShardModePath    = "path"    // nfa.Count over the Section 3 string automaton
	ShardModePathPQE = "pathpqe" // nfa.Count over the weighted string automaton
)

// ShardSpec is the self-contained description of one distributed
// counting call: the instance (as public text formats, so any process
// can rebuild the session), the counting mode, and the fully resolved
// trial schedule. Every field is resolved by the coordinator before
// dispatch — workers apply no defaults of their own — so coordinator
// and workers agree on (epsilon, trials, samples, seed) byte for byte.
//
// Determinism contract: a worker executing trials [lo, hi) of a spec
// derives trial t's PRNG from (Seed, site, index) exactly as the local
// engines do, so the per-trial estimates are independent of how the
// range [0, Trials) is partitioned and of which worker runs which part.
type ShardSpec struct {
	// Query and DB are the instance in the public text formats
	// (cq.Parse / pdb.ParseString). UR-only sessions wrap their plain
	// database with all-one probabilities.
	Query string
	DB    string
	// MaxWidth is the session's construction knob (0 = |Q|).
	MaxWidth int
	// Mode selects the counting phase (ShardMode*).
	Mode string
	// N is the counted object size (tree size or word length); States
	// the automaton's state count. Workers rebuild the reduction from
	// (Query, DB, MaxWidth) and cross-check both against the spec, so a
	// construction divergence between processes fails loudly instead of
	// silently merging estimates of different automata.
	N      int
	States int
	// Epsilon, Trials, Samples and Seed are the resolved trial
	// schedule.
	Epsilon float64
	Trials  int
	Samples int
	Seed    int64
	// Anytime enables the seqstop sequential-stopping loop on the
	// coordinator, with failure target Delta (≤ 0 = default). Workers
	// never stop early themselves: batch boundaries live with the
	// coordinator, which is what keeps them deterministic.
	Anytime bool
	Delta   float64
}

// Engine returns the obs engine label of the spec's counting phase, so
// coordinator-side convergence records match what a local run of the
// same phase would emit.
func (s ShardSpec) Engine() string {
	switch s.Mode {
	case ShardModePath, ShardModePathPQE:
		return "countnfa"
	}
	return "countnfta"
}

// ShardResult is a merged distributed counting call.
type ShardResult struct {
	// Value is the upper median of the executed trials' estimates —
	// bit-identical to what the local engine would return.
	Value efloat.E
	// Executed is how many trials ran (< Trials only when the anytime
	// certificate stopped the schedule early).
	Executed int
}

// Sharder distributes one counting call across worker processes. The
// implementation (internal/shard.Pool) owns range partitioning, worker
// failover and the median merge; core owns building the spec and the
// post-counting scaling, which stays on the coordinator.
type Sharder interface {
	CountSharded(sc *obs.Scope, spec ShardSpec) (ShardResult, error)
}

// instanceText renders the session's instance in the public text
// format a worker can reload. UR-only sessions (no probabilities) wrap
// the plain database with all-one probabilities; the UR pipelines never
// read them.
func (e *Estimator) instanceText() string {
	if e.h != nil {
		return pdb.FormatString(e.h)
	}
	return pdb.FormatString(pdb.NewProbabilistic(e.d, pdb.ProbOne))
}

// shardSpec assembles the dispatchable description of one counting
// phase, resolving the trial schedule exactly as the local engine
// would.
func (e *Estimator) shardSpec(opts Options, mode string, n, states int) ShardSpec {
	spec := ShardSpec{
		Query:    e.q.String(),
		DB:       e.instanceText(),
		MaxWidth: e.opts.MaxWidth,
		Mode:     mode,
		N:        n,
		States:   states,
		Seed:     opts.seed(),
		Anytime:  opts.anytime(),
		Delta:    opts.Delta,
	}
	switch mode {
	case ShardModePath, ShardModePathPQE:
		spec.Epsilon, spec.Trials, spec.Samples = opts.nfaOptions(nil).ResolveSchedule()
	default:
		spec.Epsilon, spec.Trials, spec.Samples = opts.countOptions(nil).ResolveSchedule()
	}
	return spec
}

// shardCount routes one counting phase through the call's Sharder and
// returns the merged estimate.
func (e *Estimator) shardCount(sc *obs.Scope, opts Options, mode string, n, states int) (efloat.E, error) {
	res, err := opts.Shard.CountSharded(sc, e.shardSpec(opts, mode, n, states))
	if err != nil {
		return efloat.Zero, fmt.Errorf("core: sharded %s count: %w", mode, err)
	}
	return res.Value, nil
}

// CountTrials is the worker half of the shard protocol: execute trials
// [lo, hi) of the spec's schedule on this process's session and return
// their estimates in trial order. The session is rebuilt from the
// spec's text instance (the shard worker caches Estimators per spec),
// and the reduction geometry is cross-checked against the spec before
// any sampling runs.
func (e *Estimator) CountTrials(spec ShardSpec, lo, hi, maxProcs int, sc *obs.Scope) ([]efloat.E, error) {
	e.syncVersion()
	check := func(n, states int) error {
		if n != spec.N || states != spec.States {
			return fmt.Errorf("core: shard geometry mismatch for mode %s: built (n=%d, states=%d), spec (n=%d, states=%d)",
				spec.Mode, n, states, spec.N, spec.States)
		}
		return nil
	}
	switch spec.Mode {
	case ShardModeUR:
		red, err := e.urReduction()
		if err != nil {
			return nil, err
		}
		if err := check(red.TreeSize, red.Auto.NumStates()); err != nil {
			return nil, err
		}
		return count.TreesRange(red.Auto, spec.N, e.shardCountOptions(spec, maxProcs, sc), lo, hi)
	case ShardModePQE:
		weighted, err := e.pqeReduction()
		if err != nil {
			return nil, err
		}
		if err := check(weighted.TreeSize, weighted.Auto.NumStates()); err != nil {
			return nil, err
		}
		return count.TreesRange(weighted.Auto, spec.N, e.shardCountOptions(spec, maxProcs, sc), lo, hi)
	case ShardModePath:
		m, err := e.pathAutomaton()
		if err != nil {
			return nil, err
		}
		if err := check(e.proj().Size(), m.NumStates()); err != nil {
			return nil, err
		}
		return nfa.CountRange(m, spec.N, e.shardNFAOptions(spec, maxProcs, sc), lo, hi)
	case ShardModePathPQE:
		red, err := e.pathPQEReduction()
		if err != nil {
			return nil, err
		}
		if err := check(red.WordSize, red.Auto.NumStates()); err != nil {
			return nil, err
		}
		return nfa.CountRange(red.Auto, spec.N, e.shardNFAOptions(spec, maxProcs, sc), lo, hi)
	}
	return nil, fmt.Errorf("core: unknown shard mode %q", spec.Mode)
}

func (e *Estimator) shardCountOptions(spec ShardSpec, maxProcs int, sc *obs.Scope) count.Options {
	return count.Options{
		Epsilon:  spec.Epsilon,
		Trials:   spec.Trials,
		Samples:  spec.Samples,
		Seed:     spec.Seed,
		MaxProcs: maxProcs,
		Obs:      sc,
	}
}

func (e *Estimator) shardNFAOptions(spec ShardSpec, maxProcs int, sc *obs.Scope) nfa.CountOptions {
	return nfa.CountOptions{
		Epsilon:  spec.Epsilon,
		Trials:   spec.Trials,
		Samples:  spec.Samples,
		Seed:     spec.Seed,
		MaxProcs: maxProcs,
		Obs:      sc,
	}
}
