package core

import (
	"fmt"
	"math/big"
	"os"
	"strconv"
	"testing"
	"time"

	"pqe/internal/cq"
	"pqe/internal/gen"
	"pqe/internal/obs"
	"pqe/internal/pdb"
)

// Tracing must be a pure observer: a fully instrumented run returns the
// same bits as a bare run with the same seed, on both pipelines.
func TestObsDoesNotPerturbResults(t *testing.T) {
	q, h := pathInstance(t)
	d := h.DB()
	opts := Options{Epsilon: 0.3, Seed: 11, Workers: 2}
	withObs := opts
	// The instrumented run carries every observational facet at once:
	// sinks, a request ID, a phase accumulator, and a live runtime
	// collector polling the same registry — none may perturb the bits.
	reg := obs.NewRegistry()
	rc := obs.NewRuntimeCollector(reg, time.Millisecond)
	rc.Start()
	defer rc.Stop()
	withObs.Obs = obs.NewScope(obs.NewTracer(), reg, obs.NewConvergence()).
		WithRequestID("determinism-check").
		WithPhases(obs.NewPhases())

	bareUR, err := UREstimate(q, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	tracedUR, err := UREstimate(q, d, withObs)
	if err != nil {
		t.Fatal(err)
	}
	if bareUR != tracedUR {
		t.Errorf("UREstimate drifted under tracing: %v vs %v", bareUR, tracedUR)
	}

	barePath, err := PathEstimate(q, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	tracedPath, err := PathEstimate(q, d, withObs)
	if err != nil {
		t.Fatal(err)
	}
	if barePath != tracedPath {
		t.Errorf("PathEstimate drifted under tracing: %v vs %v", barePath, tracedPath)
	}

	bareP, err := PQEEstimate(q, h, opts)
	if err != nil {
		t.Fatal(err)
	}
	tracedP, err := PQEEstimate(q, h, withObs)
	if err != nil {
		t.Fatal(err)
	}
	if bareP != tracedP {
		t.Errorf("PQEEstimate drifted under tracing: %v vs %v", bareP, tracedP)
	}

	// The phase accumulator actually accrued the builds (the instrumented
	// runs above constructed automata), and the sum of phases never
	// exceeds what was observed — sanity that attribution is live in the
	// very configuration whose determinism was just pinned.
	if withObs.Obs.PhasesSink().Duration(obs.PhaseBuild) <= 0 {
		t.Error("instrumented run accrued no build-phase time")
	}
}

// TestObsDisabledOverhead is the CI bench-smoke lane: with no scope
// attached, the instrumented pipeline must run at the speed of the
// uninstrumented seed. It measures interleaved min-of-K medians of
// disabled-path UREstimate and PathEstimate against a fully
// instrumented run and fails when the *disabled* path is slower than
// the instrumented one by more than the threshold — the disabled path
// costs only nil checks, so any systematic gap is a regression.
//
// Timing comparisons are noisy on shared CI machines, so the lane is
// opt-in: set PQE_OBS_SMOKE=1 (the ci.yml bench-smoke job does). The
// threshold is PQE_OBS_SMOKE_PCT (default 2, in percent) and the check
// retries a few times before failing.
func TestObsDisabledOverhead(t *testing.T) {
	if os.Getenv("PQE_OBS_SMOKE") == "" {
		t.Skip("set PQE_OBS_SMOKE=1 to run the obs overhead smoke lane")
	}
	threshold := 2.0
	if s := os.Getenv("PQE_OBS_SMOKE_PCT"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("PQE_OBS_SMOKE_PCT: %v", err)
		}
		threshold = v
	}

	q := cq.PathQuery("R", 3)
	h := gen.SparsePathInstance(q, 3, 2, gen.ProbHalf, 1)
	d := h.DB()

	workloads := []struct {
		name string
		run  func(sc *obs.Scope, seed int64)
	}{
		{"UREstimate", func(sc *obs.Scope, seed int64) {
			if _, err := UREstimate(q, d, Options{Epsilon: 0.3, Seed: seed, Obs: sc}); err != nil {
				t.Fatal(err)
			}
		}},
		{"PathEstimate", func(sc *obs.Scope, seed int64) {
			if _, err := PathEstimate(q, d, Options{Epsilon: 0.3, Seed: seed, Obs: sc}); err != nil {
				t.Fatal(err)
			}
		}},
	}

	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			const retries = 5
			var last string
			for attempt := 0; attempt < retries; attempt++ {
				disabled := minDuration(w.run, nil, 15)
				instr := obs.NewScope(obs.NewTracer(), obs.NewRegistry(), obs.NewConvergence())
				enabled := minDuration(w.run, instr, 15)
				overheadPct := 100 * (float64(disabled) - float64(enabled)) / float64(enabled)
				last = fmt.Sprintf("disabled %v vs instrumented %v (disabled slower by %.2f%%, threshold %.2f%%)",
					disabled, enabled, overheadPct, threshold)
				t.Log(last)
				if overheadPct <= threshold {
					return
				}
			}
			t.Errorf("disabled-instrumentation path regressed: %s", last)
		})
	}
}

// minDuration runs fn k times under each condition interleaved and
// returns the minimum wall time — the least-noise estimate of the
// workload's true cost.
func minDuration(fn func(sc *obs.Scope, seed int64), sc *obs.Scope, k int) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < k; i++ {
		start := time.Now()
		fn(sc, int64(i+1))
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// Attaching a registry flips the engines' timed path (worker busy-time
// accounting); that too must not change results.
func TestObsTimedWorkersDeterministic(t *testing.T) {
	q := cq.PathQuery("R", 3)
	h := pdb.Empty()
	add := func(rel, a, b string, num, den int64) {
		h.Add(pdb.NewFact(rel, a, b), pdb.ProbFromRat(big.NewRat(num, den)))
	}
	add("R1", "a", "b", 1, 2)
	add("R1", "a", "c", 1, 2)
	add("R2", "b", "d", 1, 2)
	add("R2", "c", "d", 1, 2)
	add("R3", "d", "e", 1, 2)
	d := h.DB()

	for _, workers := range []int{1, 4} {
		bare, err := UREstimate(q, d, Options{Epsilon: 0.3, Seed: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		sc := obs.NewScope(nil, obs.NewRegistry(), nil)
		timed, err := UREstimate(q, d, Options{Epsilon: 0.3, Seed: 3, Workers: workers, Obs: sc})
		if err != nil {
			t.Fatal(err)
		}
		if bare != timed {
			t.Errorf("workers=%d: registry-timed run drifted: %v vs %v", workers, bare, timed)
		}
	}
}
