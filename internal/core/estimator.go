package core

import (
	"fmt"
	"time"

	"pqe/internal/count"
	"pqe/internal/cq"
	"pqe/internal/efloat"
	"pqe/internal/hypertree"
	"pqe/internal/nfa"
	"pqe/internal/obs"
	"pqe/internal/pdb"
	"pqe/internal/reduction"
	"pqe/internal/router"
	"pqe/internal/safeplan"
)

// BuildStats counts how many times each construction stage actually
// ran. On a fresh Estimator everything starts at zero; repeated
// evaluations on the same Estimator must not grow the
// probability-independent counters, and a SetProbabilities call grows
// only Weightings — the cache-hit contract the tests assert.
//
// Deprecated thin accessor: the counters live in the session's obs
// registry (pqe_build_* names) and this struct is reconstructed from it
// on demand; new call sites should read the registry.
type BuildStats struct {
	// Decompositions counts hypertree decomposition searches.
	Decompositions int
	// URReductions counts Proposition 1 automaton constructions.
	URReductions int
	// PathAutomata counts Section 3 string automaton constructions
	// (including the one trim shared by all counting calls).
	PathAutomata int
	// Weightings counts multiplier-gadget expansions (tree or string),
	// the only stage that reruns when probabilities change.
	Weightings int
	// IncrementalUR counts UR constructions served by an incremental
	// builder rebuild (a subset of URReductions): after an ApplyDelta,
	// only vertices over mutated relations re-enumerate.
	IncrementalUR int
	// IncrementalPath counts path-automaton constructions served by an
	// incremental builder rebuild (a subset of PathAutomata).
	IncrementalPath int
}

// Estimator is a reusable evaluation session for one (query, database)
// pair. It memoizes every probability-independent construction stage —
// the classification, the hypertree decomposition, the Proposition 1
// uniform-reliability automaton, and the Section 3 path automaton
// (trimmed, with its dense transition index warm) — plus the
// probability-dependent multiplier weightings. Repeated estimates, an
// ε- or seed-sweep, or a SampleWorld after a Probability all reuse the
// same artifacts; SetProbabilities invalidates only the weightings, so
// re-evaluating after a probability change skips decomposition and
// automaton construction entirely.
//
// An Estimator is not safe for concurrent use.
type Estimator struct {
	q    *cq.Query
	h    *pdb.Probabilistic // nil for a UR-only session over d
	d    *pdb.Database
	opts Options // construction knobs (MaxWidth); counting knobs come per call

	// sc is the session's telemetry scope. It always has a registry (a
	// private one when opts.Obs is nil) so the pqe_build_* stage counters
	// — the source of truth behind BuildStats — exist unconditionally;
	// tracer and convergence are attached only when the caller provided
	// them.
	sc *obs.Scope

	// phases is the phase sink of the call currently executing (bound by
	// bindPhases at every public entry point, nil when the caller's
	// scope carries none). Construction stages triggered lazily inside a
	// call accrue their wall time here as PhaseBuild, so a service can
	// attribute build cost to the request that paid for it. An Estimator
	// is not concurrency-safe, so a plain field suffices.
	phases *obs.Phases

	class     Classification
	classDone bool

	// routeDec memoizes the auto-routing decision of internal/router.
	// It reads fact counts, so structural invalidation drops it.
	routeDec *router.Decision

	dec     *hypertree.Decomposition
	decErr  error
	decDone bool

	// srcVersion is the database/instance version the caches were last
	// synchronized to. Public entry points compare it against the live
	// version and drop every database-keyed cache on drift, so mutating
	// the instance behind the session's back degrades to a full rebuild
	// instead of silently stale estimates. ApplyDelta is the fast path
	// that keeps the caches and advances the version.
	srcVersion uint64

	// Probability-independent, keyed to the fact set of d. The builders
	// carry the incremental construction caches across ApplyDelta calls;
	// they are bound to the projDB value and dropped with it.
	projDB   *pdb.Database // d projected to the query's relations
	urb      *reduction.URBuilder
	pathb    *reduction.PathBuilder
	urRed    *reduction.URReduction
	urErr    error
	urDone   bool
	pathAuto *nfa.NFA // trimmed PathNFA over projDB
	pathErr  error
	pathDone bool

	// Probability-dependent, dropped by SetProbabilities.
	projH       *pdb.Probabilistic
	pqeRed      *reduction.PQEReduction
	pqeErr      error
	pqeDone     bool
	pathPQERed  *reduction.PathPQEReduction
	pathPQEErr  error
	pathPQEDone bool
}

// NewEstimator prepares an evaluation session for Q over the
// probabilistic database H. Nothing is built until the first call that
// needs it.
func NewEstimator(q *cq.Query, h *pdb.Probabilistic, opts Options) *Estimator {
	return &Estimator{q: q, h: h, d: h.DB(), opts: opts, sc: sessionScope(opts.Obs), srcVersion: h.Version()}
}

// NewUREstimator prepares a uniform-reliability-only session over a
// plain database (no probabilities; the probability methods error).
func NewUREstimator(q *cq.Query, d *pdb.Database, opts Options) *Estimator {
	return &Estimator{q: q, d: d, opts: opts, sc: sessionScope(opts.Obs), srcVersion: d.Version()}
}

// sessionScope guarantees the estimator a registry: a caller-supplied
// scope is used as-is when it has one; otherwise a private registry is
// bundled with whatever sinks the caller did attach.
func sessionScope(s *obs.Scope) *obs.Scope {
	if s.Registry() != nil {
		return s
	}
	return obs.NewScope(s.Tracer(), obs.NewRegistry(), s.Convergence())
}

// BuildStats returns the construction counters accumulated so far,
// reconstructed from the session registry's pqe_build_* counters.
func (e *Estimator) BuildStats() BuildStats {
	reg := e.sc.Registry()
	return BuildStats{
		Decompositions:  int(reg.Counter("pqe_build_decompositions_total").Value()),
		URReductions:    int(reg.Counter("pqe_build_ur_reductions_total").Value()),
		PathAutomata:    int(reg.Counter("pqe_build_path_automata_total").Value()),
		Weightings:      int(reg.Counter("pqe_build_weightings_total").Value()),
		IncrementalUR:   int(reg.Counter("pqe_build_ur_incremental_total").Value()),
		IncrementalPath: int(reg.Counter("pqe_build_path_incremental_total").Value()),
	}
}

// invalidateWeighted drops the probability-dependent caches: the
// projected instance and both weighted reductions.
func (e *Estimator) invalidateWeighted() {
	e.projH = nil
	e.pqeRed, e.pqeErr, e.pqeDone = nil, nil, false
	e.pathPQERed, e.pathPQEErr, e.pathPQEDone = nil, nil, false
}

// invalidateStructural drops the built automata but keeps the
// incremental builders: the next construction re-derives only the parts
// over relations reported dirty.
func (e *Estimator) invalidateStructural() {
	e.urRed, e.urErr, e.urDone = nil, nil, false
	e.pathAuto, e.pathErr, e.pathDone = nil, nil, false
	e.routeDec = nil
	e.invalidateWeighted()
}

// invalidateAll additionally drops the projection and the builders —
// the full-rebuild path for fact sets the session has no delta trail
// for.
func (e *Estimator) invalidateAll() {
	e.projDB = nil
	e.urb, e.pathb = nil, nil
	e.invalidateStructural()
}

// version returns the live mutation counter of the session's source
// instance.
func (e *Estimator) version() uint64 {
	if e.h != nil {
		return e.h.Version()
	}
	return e.d.Version()
}

// syncVersion degrades gracefully when the instance was mutated behind
// the session's back (not through ApplyDelta or SetProbabilities): any
// version drift drops every database-keyed cache, builders included, so
// the next use rebuilds from scratch rather than serving estimates for
// a database that no longer exists.
func (e *Estimator) syncVersion() {
	if v := e.version(); v != e.srcVersion {
		e.invalidateAll()
		e.sc.Counter("pqe_estimator_rebuilds_total").Inc()
		e.srcVersion = v
	}
}

// ApplyDelta applies a fact-level delta to the session's database and
// incrementally maintains every cache that can survive it, routing by
// what the delta touches:
//
//   - reweight-only deltas over query relations keep all automata and
//     invalidate just the multiplier weightings (the rebind path);
//   - structural ops (insert/delete) over query relations update the
//     projected database in place, mark the touched relations dirty in
//     the incremental builders, and drop only the built automata — the
//     next estimate re-enumerates only the dirty parts;
//   - ops entirely outside the query's relations invalidate nothing
//     (the |D|-dependent rescaling reads the live size).
//
// The delta is validated against the full instance first and applied
// atomically: on error the database and the session are unchanged.
// Estimates after ApplyDelta are bit-identical to those of a fresh
// session on the same database state with the same options and seed.
func (e *Estimator) ApplyDelta(delta pdb.Delta) (pdb.DeltaSummary, error) {
	e.syncVersion()
	var sum pdb.DeltaSummary
	var err error
	if e.h != nil {
		sum, err = e.h.ApplyDelta(delta)
	} else {
		sum, err = e.d.ApplyDelta(delta)
	}
	if err != nil {
		return sum, err
	}
	rels := e.q.RelationSet()
	structural, reweighted := false, false
	for _, op := range delta {
		if !rels[op.Fact.Relation] {
			continue // invisible to the projected pipelines
		}
		switch op.Kind {
		case pdb.DeltaInsert:
			structural = true
			if e.projDB != nil {
				e.projDB.Add(op.Fact)
			}
			e.noteMutation(op.Fact.Relation, false)
		case pdb.DeltaDelete:
			structural = true
			if e.projDB != nil {
				e.projDB.Remove(op.Fact)
			}
			e.noteMutation(op.Fact.Relation, true)
		case pdb.DeltaReweight:
			reweighted = true
		}
	}
	switch {
	case structural:
		e.invalidateStructural()
		e.sc.Counter("pqe_estimator_delta_structural_total").Inc()
	case reweighted:
		e.invalidateWeighted()
		e.sc.Counter("pqe_estimator_rebinds_total").Inc()
	default:
		e.sc.Counter("pqe_estimator_delta_foreign_total").Inc()
	}
	e.srcVersion = e.version()
	return sum, nil
}

// noteMutation forwards a dirty-relation mark to whichever incremental
// builders exist.
func (e *Estimator) noteMutation(rel string, withDelete bool) {
	if e.urb != nil {
		e.urb.NoteMutation(rel, withDelete)
	}
	if e.pathb != nil {
		e.pathb.NoteMutation(rel, withDelete)
	}
}

// SetProbabilities rebinds the session to a new probabilistic database.
// When the new instance has exactly the same facts in the same fact
// ordering, only the multiplier weightings are invalidated (a rebind):
// the decomposition and the base automata are keyed to the fact ordering
// and survive. When the fact set — or its ordering, which the automaton
// constructions encode — differs, every database-keyed cache is dropped
// too (a full rebuild); only the query-keyed stages (classification,
// hypertree decomposition) survive. BuildStats distinguishes the two:
// a rebind grows only Weightings, a rebuild also re-runs URReductions /
// PathAutomata on next use.
func (e *Estimator) SetProbabilities(h *pdb.Probabilistic) error {
	if e.h == nil {
		return fmt.Errorf("core: estimator was built without probabilities")
	}
	if !sameFactOrdering(e.d, h.DB()) {
		e.invalidateAll()
		e.sc.Counter("pqe_estimator_rebuilds_total").Inc()
	} else {
		e.invalidateWeighted()
		e.sc.Counter("pqe_estimator_rebinds_total").Inc()
	}
	e.h = h
	e.d = h.DB()
	e.srcVersion = h.Version()
	return nil
}

// sameFactOrdering reports whether two databases hold the same facts in
// the same insertion order — the condition under which automata built
// over one remain valid for the other.
func sameFactOrdering(a, b *pdb.Database) bool {
	if a.Size() != b.Size() {
		return false
	}
	for i, f := range a.Facts() {
		if !f.Equal(b.Fact(i)) {
			return false
		}
	}
	return true
}

// Class returns the query's Table 1 classification, reusing the cached
// decomposition.
func (e *Estimator) Class() Classification {
	if e.classDone {
		return e.class
	}
	c := Classification{
		SelfJoinFree: e.q.SelfJoinFree(),
		Safe:         safeplan.IsSafe(e.q),
		Path:         e.q.IsPath(),
	}
	if dec, err := e.decomposition(); err == nil && dec.Width() <= e.maxWidth() {
		c.Width = dec.Width()
		c.BoundedHW = true
	}
	e.class, e.classDone = c, true
	return c
}

// scope picks the telemetry scope of one call: a per-call override from
// opts when given, the session scope otherwise.
func (e *Estimator) scope(opts Options) *obs.Scope {
	if opts.Obs != nil {
		return opts.Obs
	}
	return e.sc
}

// bindPhases points build-time attribution at the calling request's
// phase sink for the duration of this call.
func (e *Estimator) bindPhases(opts Options) {
	e.phases = e.scope(opts).PhasesSink()
}

// buildStart/buildEnd bracket one construction stage for phase
// attribution. With no sink bound they cost a pointer test and no
// clock read, preserving the disabled-path contract.
func buildStart(ph *obs.Phases) time.Time {
	if ph == nil {
		return time.Time{}
	}
	return time.Now()
}

func buildEnd(ph *obs.Phases, start time.Time) {
	if ph == nil || start.IsZero() {
		return
	}
	ph.Add(obs.PhaseBuild, time.Since(start))
}

func (e *Estimator) maxWidth() int {
	if e.opts.MaxWidth > 0 {
		return e.opts.MaxWidth
	}
	return e.q.Len()
}

func (e *Estimator) decomposition() (*hypertree.Decomposition, error) {
	if !e.decDone {
		e.sc.Counter("pqe_build_decompositions_total").Inc()
		t0 := buildStart(e.phases)
		_, span := e.sc.Span("pqe.decompose")
		e.dec, e.decErr = hypertree.Decompose(e.q)
		span.End()
		buildEnd(e.phases, t0)
		e.decDone = true
	}
	return e.dec, e.decErr
}

// proj returns the database projected to the query's relations, cached.
// The projection is probability-independent (a fact subset), so it is
// computed once and shared by every pipeline.
func (e *Estimator) proj() *pdb.Database {
	if e.projDB == nil {
		e.projDB = e.d.Project(e.q.RelationSet())
	}
	return e.projDB
}

// projProb returns the probabilistic projection, recomputed after
// SetProbabilities.
func (e *Estimator) projProb() *pdb.Probabilistic {
	if e.projH == nil {
		e.projH = e.h.Project(e.q.RelationSet())
	}
	return e.projH
}

// urReduction returns the cached Proposition 1 automaton over the
// projected database.
func (e *Estimator) urReduction() (*reduction.URReduction, error) {
	if e.urDone {
		return e.urRed, e.urErr
	}
	e.urDone = true
	if !e.q.SelfJoinFree() {
		e.urErr = fmt.Errorf("%w: query %q has self-joins", ErrUnsupported, e.q)
		return nil, e.urErr
	}
	dec, err := e.decomposition()
	if err != nil || dec.Width() > e.maxWidth() {
		e.urErr = fmt.Errorf("%w: no decomposition of width ≤ %d for %q", ErrUnsupported, e.maxWidth(), e.q)
		return nil, e.urErr
	}
	e.sc.Counter("pqe_build_ur_reductions_total").Inc()
	t0 := buildStart(e.phases)
	defer func() { buildEnd(e.phases, t0) }()
	sc, span := e.sc.Span("pqe.build_ur")
	if e.urb == nil {
		var berr error
		e.urb, berr = reduction.NewURBuilder(e.q, e.proj(), dec)
		if berr != nil {
			span.End()
			e.urErr = berr
			return nil, berr
		}
	} else {
		// The builder carries enumeration caches from the previous build;
		// only vertices over relations dirtied by ApplyDelta re-derive.
		e.sc.Counter("pqe_build_ur_incremental_total").Inc()
	}
	e.urRed, e.urErr = e.urb.Build(sc)
	if span != nil && e.urRed != nil {
		span.SetAttr("states", e.urRed.Auto.NumStates())
		span.SetAttr("tree_size", e.urRed.TreeSize)
	}
	span.End()
	return e.urRed, e.urErr
}

// pathAutomaton returns the cached, trimmed Section 3 string automaton
// over the projected database. Trimming here means every counting call
// shares one automaton instance — and with it the dense transition
// index the string engine caches on it.
func (e *Estimator) pathAutomaton() (*nfa.NFA, error) {
	if e.pathDone {
		return e.pathAuto, e.pathErr
	}
	e.pathDone = true
	if !e.q.IsPath() || !e.q.SelfJoinFree() {
		e.pathErr = fmt.Errorf("core: PathEstimate needs a self-join-free path query, got %q", e.q)
		return nil, e.pathErr
	}
	e.sc.Counter("pqe_build_path_automata_total").Inc()
	t0 := buildStart(e.phases)
	defer func() { buildEnd(e.phases, t0) }()
	sc, span := e.sc.Span("pqe.build_path_nfa")
	if e.pathb == nil {
		var berr error
		e.pathb, berr = reduction.NewPathBuilder(e.q, e.proj())
		if berr != nil {
			span.End()
			e.pathErr = berr
			return nil, berr
		}
	} else {
		e.sc.Counter("pqe_build_path_incremental_total").Inc()
	}
	m, err := e.pathb.Build()
	if err != nil {
		span.End()
		e.pathErr = err
		return nil, err
	}
	_, tspan := sc.Span("pqe.trim_path")
	e.pathAuto = m.Trim()
	tspan.End()
	span.End()
	return e.pathAuto, nil
}

// pqeReduction returns the cached Theorem 1 weighted automaton,
// re-weighting the cached UR reduction on first use after construction
// or SetProbabilities.
func (e *Estimator) pqeReduction() (*reduction.PQEReduction, error) {
	if e.pqeDone {
		return e.pqeRed, e.pqeErr
	}
	e.pqeDone = true
	ur, err := e.urReduction()
	if err != nil {
		e.pqeErr = err
		return nil, err
	}
	e.sc.Counter("pqe_build_weightings_total").Inc()
	t0 := buildStart(e.phases)
	_, span := e.sc.Span("pqe.weight_ur")
	e.pqeRed, e.pqeErr = reduction.WeightUR(ur, e.projProb())
	span.End()
	buildEnd(e.phases, t0)
	return e.pqeRed, e.pqeErr
}

// pathPQEReduction returns the cached weighted string automaton,
// re-weighting the cached base on first use after construction or
// SetProbabilities. Note the weighted automaton uses the untrimmed
// base: the gadget expansion re-trims after inserting comparators.
func (e *Estimator) pathPQEReduction() (*reduction.PathPQEReduction, error) {
	if e.pathPQEDone {
		return e.pathPQERed, e.pathPQEErr
	}
	e.pathPQEDone = true
	base, err := e.pathAutomaton()
	if err != nil {
		e.pathPQEErr = err
		return nil, err
	}
	e.sc.Counter("pqe_build_weightings_total").Inc()
	t0 := buildStart(e.phases)
	_, span := e.sc.Span("pqe.weight_path")
	e.pathPQERed, e.pathPQEErr = reduction.WeightPathNFA(e.q, e.projProb(), base)
	span.End()
	buildEnd(e.phases, t0)
	return e.pathPQERed, e.pathPQEErr
}

// PathEstimate approximates UR(Q, D) through the Theorem 2 string
// pipeline, reusing the cached automaton. opts supplies the counting
// knobs for this call.
func (e *Estimator) PathEstimate(opts Options) (efloat.E, error) {
	if err := opts.ctxErr(); err != nil {
		return efloat.Zero, err
	}
	e.syncVersion()
	e.bindPhases(opts)
	sc, span := e.scope(opts).Span("pqe.path_estimate")
	defer span.End()
	m, err := e.pathAutomaton()
	if err != nil {
		return efloat.Zero, err
	}
	proj := e.proj()
	var c efloat.E
	if opts.Shard != nil {
		if c, err = e.shardCount(sc, opts, ShardModePath, proj.Size(), m.NumStates()); err != nil {
			return efloat.Zero, err
		}
	} else {
		c = nfa.Count(m, proj.Size(), opts.nfaOptions(sc))
	}
	if err := opts.ctxErr(); err != nil {
		return efloat.Zero, err // the counting loop bailed early; its value is garbage
	}
	// UR(Q, D) = UR(Q, D') · 2^(|D|−|D'|): facts over relations outside
	// the query are free to be present or absent.
	return c.Mul(efloat.Pow2(int64(e.d.Size() - proj.Size()))), nil
}

// UREstimate approximates UR(Q, D) through the Theorem 3 tree pipeline,
// reusing the cached reduction.
func (e *Estimator) UREstimate(opts Options) (efloat.E, error) {
	if err := opts.ctxErr(); err != nil {
		return efloat.Zero, err
	}
	e.syncVersion()
	e.bindPhases(opts)
	sc, span := e.scope(opts).Span("pqe.ur_estimate")
	defer span.End()
	red, err := e.urReduction()
	if err != nil {
		return efloat.Zero, err
	}
	var c efloat.E
	if opts.Shard != nil {
		if c, err = e.shardCount(sc, opts, ShardModeUR, red.TreeSize, red.Auto.NumStates()); err != nil {
			return efloat.Zero, err
		}
	} else {
		c = count.Trees(red.Auto, red.TreeSize, opts.countOptions(sc))
	}
	if err := opts.ctxErr(); err != nil {
		return efloat.Zero, err // the counting loop bailed early; its value is garbage
	}
	return c.Mul(efloat.Pow2(int64(e.d.Size() - e.proj().Size()))), nil
}

// PQEEstimate approximates Pr_H(Q) (Theorem 1), reusing every cached
// stage.
func (e *Estimator) PQEEstimate(opts Options) (float64, error) {
	if e.h == nil {
		return 0, fmt.Errorf("core: estimator was built without probabilities")
	}
	if err := opts.ctxErr(); err != nil {
		return 0, err
	}
	e.syncVersion()
	e.bindPhases(opts)
	sc, span := e.scope(opts).Span("pqe.pqe_estimate")
	defer span.End()
	weighted, err := e.pqeReduction()
	if err != nil {
		return 0, err
	}
	var c efloat.E
	if opts.Shard != nil {
		if c, err = e.shardCount(sc, opts, ShardModePQE, weighted.TreeSize, weighted.Auto.NumStates()); err != nil {
			return 0, err
		}
	} else {
		c = count.Trees(weighted.Auto, weighted.TreeSize, opts.countOptions(sc))
	}
	if err := opts.ctxErr(); err != nil {
		return 0, err // the counting loop bailed early; its value is garbage
	}
	return c.Ratio(efloat.FromBigInt(weighted.DenProduct)), nil
}

// PathPQEEstimate approximates Pr_H(Q) through the string pipeline
// (footnote 2 of §5.1), reusing the cached base automaton.
func (e *Estimator) PathPQEEstimate(opts Options) (float64, error) {
	if e.h == nil {
		return 0, fmt.Errorf("core: estimator was built without probabilities")
	}
	if err := opts.ctxErr(); err != nil {
		return 0, err
	}
	e.syncVersion()
	e.bindPhases(opts)
	sc, span := e.scope(opts).Span("pqe.path_pqe_estimate")
	defer span.End()
	red, err := e.pathPQEReduction()
	if err != nil {
		return 0, err
	}
	var c efloat.E
	if opts.Shard != nil {
		if c, err = e.shardCount(sc, opts, ShardModePathPQE, red.WordSize, red.Auto.NumStates()); err != nil {
			return 0, err
		}
	} else {
		c = nfa.Count(red.Auto, red.WordSize, opts.nfaOptions(sc))
	}
	if err := opts.ctxErr(); err != nil {
		return 0, err // the counting loop bailed early; its value is garbage
	}
	return c.Ratio(efloat.FromBigInt(red.DenProduct)), nil
}

// Evaluate routes to the best applicable algorithm (the Table 1
// landscape), like the package-level Evaluate but over the session's
// caches. With a Strategy set (per call or on the session) the full
// cost-based router decides — or a forced engine runs unconditionally;
// otherwise the legacy two-way routing below applies.
func (e *Estimator) Evaluate(opts Options) (Result, error) {
	if e.h == nil {
		return Result{}, fmt.Errorf("core: estimator was built without probabilities")
	}
	if err := opts.ctxErr(); err != nil {
		return Result{}, err
	}
	e.syncVersion()
	e.bindPhases(opts)
	strategy := opts.Strategy
	if strategy == "" {
		strategy = e.opts.Strategy
	}
	if strategy != "" {
		return e.evaluateRouted(strategy, opts)
	}
	class := e.Class()
	if class.Safe && !opts.ForceFPRAS && !e.opts.ForceFPRAS {
		p, err := safeplan.Evaluate(e.q, e.h)
		if err != nil {
			return Result{}, err
		}
		f, _ := p.Float64()
		return Result{Probability: f, Exact: true, Method: MethodSafePlan, Class: class}, nil
	}
	if !class.SelfJoinFree || !class.BoundedHW {
		return Result{Class: class}, fmt.Errorf("%w: %q (self-join-free=%v, bounded-width=%v)",
			ErrUnsupported, e.q, class.SelfJoinFree, class.BoundedHW)
	}
	p, err := e.PQEEstimate(opts)
	if err != nil {
		return Result{Class: class}, err
	}
	return Result{Probability: p, Method: MethodFPRASTree, Class: class}, nil
}

// SampleSatisfying draws a near-uniform satisfying subinstance through
// the cached UR reduction (see the package-level SampleSatisfying).
func (e *Estimator) SampleSatisfying(opts Options) ([]bool, error) {
	e.syncVersion()
	e.bindPhases(opts)
	red, err := e.urReduction()
	if err != nil {
		return nil, err
	}
	tree := count.SampleTree(red.Auto, red.TreeSize, opts.countOptions(e.scope(opts)))
	if tree == nil {
		return nil, nil
	}
	projMask, err := red.DecodeTree(tree)
	if err != nil {
		return nil, fmt.Errorf("core: sampled tree failed to decode: %w", err)
	}
	rng := opts.rng()
	return liftMask(e.d, e.proj(), projMask, func(pdb.Fact) bool {
		return rng.Intn(2) == 0
	}), nil
}

// SampleWorld draws a possible world conditioned on Q through the
// cached weighted reduction (see the package-level SampleWorld).
func (e *Estimator) SampleWorld(opts Options) ([]bool, error) {
	if e.h == nil {
		return nil, fmt.Errorf("core: estimator was built without probabilities")
	}
	e.syncVersion()
	e.bindPhases(opts)
	red, err := e.urReduction()
	if err != nil {
		return nil, err
	}
	weighted, err := e.pqeReduction()
	if err != nil {
		return nil, err
	}
	tree := count.SampleTree(weighted.Auto, weighted.TreeSize, opts.countOptions(e.scope(opts)))
	if tree == nil {
		return nil, nil
	}
	projMask, err := red.DecodeTree(tree)
	if err != nil {
		return nil, fmt.Errorf("core: sampled tree failed to decode: %w", err)
	}
	rng := opts.rng()
	return liftMask(e.d, e.proj(), projMask, func(f pdb.Fact) bool {
		return rng.Float64() < e.h.Prob(f).Float()
	}), nil
}
