package core

import (
	"math/big"
	"testing"

	"pqe/internal/cq"
	"pqe/internal/efloat"
	"pqe/internal/pdb"
)

// freshPQE evaluates both probabilistic pipelines with a from-scratch
// estimator at the database's current state.
func freshPQE(t *testing.T, q *cq.Query, h *pdb.Probabilistic, opts Options) (float64, float64) {
	t.Helper()
	tree, err := PQEEstimate(q, h, opts)
	if err != nil {
		t.Fatal(err)
	}
	path, err := PathPQEEstimate(q, h, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tree, path
}

// A reweight-only delta must take the rebind path: the automata and
// their incremental builders stay untouched, only the multiplier
// weightings rerun, and the re-weighted estimates are bit-identical to
// a fresh session at the new state. This pins the cheap path via
// BuildStats, the satellite-3 contract.
func TestEstimatorDeltaReweightRebinds(t *testing.T) {
	q, h := pathInstance(t)
	opts := Options{Epsilon: 0.2, Trials: 3, Seed: 7}
	est := NewEstimator(q, h, opts)
	if _, err := est.PQEEstimate(opts); err != nil {
		t.Fatal(err)
	}
	if _, err := est.PathPQEEstimate(opts); err != nil {
		t.Fatal(err)
	}
	base := est.BuildStats()

	sum, err := est.ApplyDelta(pdb.Delta{
		pdb.Reweight(pdb.NewFact("R1", "a", "b"), pdb.ProbFromRat(big.NewRat(9, 10))),
		pdb.Reweight(pdb.NewFact("R3", "d", "e"), pdb.ProbFromRat(big.NewRat(1, 7))),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Reweights != 2 || sum.Structural() {
		t.Fatalf("summary = %+v, want 2 non-structural reweights", sum)
	}

	gotTree, err := est.PQEEstimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	gotPath, err := est.PathPQEEstimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	freshTree, freshPath := freshPQE(t, q, h, opts)
	if gotTree != freshTree {
		t.Errorf("re-weighted tree estimate %v != fresh %v", gotTree, freshTree)
	}
	if gotPath != freshPath {
		t.Errorf("re-weighted path estimate %v != fresh %v", gotPath, freshPath)
	}

	st := est.BuildStats()
	want := base
	want.Weightings += 2 // one per pipeline; nothing else reruns
	if st != want {
		t.Errorf("BuildStats after reweight delta = %+v, want %+v", st, want)
	}
	if st.IncrementalUR != 0 || st.IncrementalPath != 0 {
		t.Errorf("reweight delta took the structural path: %+v", st)
	}
}

// A structural delta must take the incremental path — the next
// constructions are served by the cached builders (IncrementalUR /
// IncrementalPath grow) — and the estimates must be bit-identical to a
// from-scratch session at the same database version and seed.
func TestEstimatorDeltaStructuralIncremental(t *testing.T) {
	q, h := pathInstance(t)
	opts := Options{Epsilon: 0.2, Trials: 3, Seed: 11}
	est := NewEstimator(q, h, opts)
	if _, err := est.PQEEstimate(opts); err != nil {
		t.Fatal(err)
	}
	if _, err := est.PathPQEEstimate(opts); err != nil {
		t.Fatal(err)
	}

	deltas := []pdb.Delta{
		{pdb.Insert(pdb.NewFact("R2", "b", "e"), pdb.ProbFromRat(big.NewRat(2, 5)))},
		{pdb.Delete(pdb.NewFact("R1", "a", "c"))},
		{
			pdb.Delete(pdb.NewFact("R2", "b", "e")),
			pdb.Insert(pdb.NewFact("R3", "e", "g"), pdb.ProbFromRat(big.NewRat(1, 4))),
			pdb.Reweight(pdb.NewFact("R2", "b", "d"), pdb.ProbFromRat(big.NewRat(5, 6))),
		},
	}
	for i, delta := range deltas {
		if _, err := est.ApplyDelta(delta); err != nil {
			t.Fatalf("delta %d (%s): %v", i, delta, err)
		}
		gotTree, err := est.PQEEstimate(opts)
		if err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
		gotPath, err := est.PathPQEEstimate(opts)
		if err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
		freshTree, freshPath := freshPQE(t, q, h, opts)
		if gotTree != freshTree {
			t.Errorf("delta %d (%s): tree estimate %v != fresh %v", i, delta, gotTree, freshTree)
		}
		if gotPath != freshPath {
			t.Errorf("delta %d (%s): path estimate %v != fresh %v", i, delta, gotPath, freshPath)
		}
	}

	st := est.BuildStats()
	if st.IncrementalUR != len(deltas) || st.IncrementalPath != len(deltas) {
		t.Errorf("incremental counters = UR %d, path %d; want %d each (stats %+v)",
			st.IncrementalUR, st.IncrementalPath, len(deltas), st)
	}
	if st.Decompositions != 1 {
		t.Errorf("deltas re-ran the decomposition: %+v", st)
	}
	if want := 1 + len(deltas); st.URReductions != want || st.PathAutomata != want {
		t.Errorf("constructions = UR %d, path %d; want %d each", st.URReductions, st.PathAutomata, want)
	}
}

// Deleting the final fact and re-inserting it with its old probability
// restores the exact fact ordering, so the session's estimates must
// round-trip bit-identically to the pre-delta values — and take the
// incremental path both ways.
func TestEstimatorDeltaDeleteReinsertRoundTrip(t *testing.T) {
	q, h := pathInstance(t)
	opts := Options{Epsilon: 0.2, Trials: 3, Seed: 13}
	est := NewEstimator(q, h, opts)
	beforeTree, err := est.PQEEstimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	beforePath, err := est.PathPQEEstimate(opts)
	if err != nil {
		t.Fatal(err)
	}

	last := pdb.NewFact("R3", "d", "f") // last fact of pathInstance
	p := h.Prob(last)
	if _, err := est.ApplyDelta(pdb.Delta{pdb.Delete(last)}); err != nil {
		t.Fatal(err)
	}
	midTree, err := est.PQEEstimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if midTree == beforeTree {
		t.Fatalf("deleting %v did not change the estimate %v", last, beforeTree)
	}
	if _, err := est.ApplyDelta(pdb.Delta{pdb.Insert(last, p)}); err != nil {
		t.Fatal(err)
	}

	afterTree, err := est.PQEEstimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	afterPath, err := est.PathPQEEstimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if afterTree != beforeTree {
		t.Errorf("tree estimate did not round-trip: %v -> %v", beforeTree, afterTree)
	}
	if afterPath != beforePath {
		t.Errorf("path estimate did not round-trip: %v -> %v", beforePath, afterPath)
	}
	if st := est.BuildStats(); st.IncrementalUR != 2 {
		t.Errorf("round-trip did not stay on the incremental path: %+v", st)
	}
}

// Deltas entirely over relations the query does not mention invalidate
// nothing: the automata survive and only the 2^(|D|−|D'|) rescaling —
// which reads the live database size — changes the UR estimate.
func TestEstimatorDeltaForeignRelation(t *testing.T) {
	q := cq.PathQuery("R", 2)
	d := pdb.FromFacts(
		pdb.NewFact("R1", "a", "b"),
		pdb.NewFact("R2", "b", "c"),
		pdb.NewFact("S", "x", "y"),
	)
	opts := Options{Epsilon: 0.2, Trials: 3, Seed: 17}
	est := NewUREstimator(q, d, opts)
	before, err := est.UREstimate(opts)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := est.ApplyDelta(pdb.Delta{pdb.Insert(pdb.NewFact("S", "x", "z"), pdb.Prob{})}); err != nil {
		t.Fatal(err)
	}
	after, err := est.UREstimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := before.Mul(efloat.Pow2(1)); after != want {
		t.Errorf("foreign insert: estimate %v, want doubled %v", after, want)
	}
	fresh, err := NewUREstimator(q, d, opts).UREstimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if after != fresh {
		t.Errorf("estimate after foreign delta %v != fresh session %v", after, fresh)
	}
	st := est.BuildStats()
	if st.URReductions != 1 || st.IncrementalUR != 0 {
		t.Errorf("foreign delta rebuilt the automaton: %+v", st)
	}
}

// A delta that fails validation must leave the database and every
// session cache untouched: the instance still answers with the old
// estimate and no construction stage reruns.
func TestEstimatorDeltaErrorLeavesSessionIntact(t *testing.T) {
	q, h := pathInstance(t)
	opts := Options{Epsilon: 0.2, Trials: 3, Seed: 19}
	est := NewEstimator(q, h, opts)
	before, err := est.PQEEstimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	base := est.BuildStats()

	_, err = est.ApplyDelta(pdb.Delta{
		pdb.Insert(pdb.NewFact("R1", "z", "z"), pdb.ProbFromRat(big.NewRat(1, 2))),
		pdb.Delete(pdb.NewFact("R1", "no", "such")),
	})
	if err == nil {
		t.Fatal("invalid delta was accepted")
	}
	after, err := est.PQEEstimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Errorf("estimate drifted across a rejected delta: %v -> %v", before, after)
	}
	if st := est.BuildStats(); st != base {
		t.Errorf("rejected delta reran construction: %+v -> %+v", base, st)
	}
}

// Mutating the instance behind the session's back (not through
// ApplyDelta) must be detected by the version guard: the next estimate
// drops every cache, rebuilds from scratch, and matches a fresh
// session — never serves the stale automaton.
func TestEstimatorOutOfBandMutationRebuilds(t *testing.T) {
	q, h := pathInstance(t)
	opts := Options{Epsilon: 0.2, Trials: 3, Seed: 23}
	est := NewEstimator(q, h, opts)
	if _, err := est.PQEEstimate(opts); err != nil {
		t.Fatal(err)
	}

	h.Add(pdb.NewFact("R2", "c", "e"), pdb.ProbFromRat(big.NewRat(1, 3)))

	got, err := est.PQEEstimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := PQEEstimate(q, h, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got != fresh {
		t.Errorf("estimate after out-of-band mutation %v != fresh %v", got, fresh)
	}
	st := est.BuildStats()
	if st.URReductions != 2 || st.IncrementalUR != 0 {
		t.Errorf("out-of-band mutation was not a full rebuild: %+v", st)
	}
	if v := est.sc.Registry().Counter("pqe_estimator_rebuilds_total").Value(); v != 1 {
		t.Errorf("pqe_estimator_rebuilds_total = %d, want 1", v)
	}
}
