package core

import (
	"math/rand"

	"pqe/internal/cq"
	"pqe/internal/pdb"
)

// SampleSatisfying draws a near-uniform satisfying subinstance of D for
// Q (a "possible world" conditioned on the query holding), using the
// uniform-generation facet of the CountNFTA machinery: a near-uniform
// accepted tree of the Proposition 1 automaton is sampled and decoded
// back through the bijection. Facts over relations outside the query
// are included independently with probability ½ (they are free in the
// uniform-reliability distribution).
//
// It returns nil with no error when no satisfying subinstance exists.
// One-shot wrapper over Estimator.SampleSatisfying; reuse an Estimator
// to amortize the automaton construction over many draws.
func SampleSatisfying(q *cq.Query, d *pdb.Database, opts Options) ([]bool, error) {
	return NewUREstimator(q, d, opts).SampleSatisfying(opts)
}

// SampleWorld draws a possible world of the probabilistic database
// conditioned on Q being satisfied, approximately according to the
// conditional distribution Pr_H(· | Q): an accepted tree of the
// weighted (Theorem 1) automaton is sampled near-uniformly — the
// multiplier gadgets replicate each subinstance's trees proportionally
// to its weight, so a near-uniform tree is a near-conditionally-
// distributed world — and decoded. Facts over relations outside the
// query are included independently with their own probabilities (they
// are independent of the conditioning event).
//
// It returns nil with no error when Pr_H(Q) = 0.
func SampleWorld(q *cq.Query, h *pdb.Probabilistic, opts Options) ([]bool, error) {
	return NewEstimator(q, h, opts).SampleWorld(opts)
}

// liftMask expands a mask over the projected database to a mask over
// the full database, drawing each free (projected-away) fact with the
// supplied coin.
func liftMask(full, proj *pdb.Database, projMask []bool, coin func(pdb.Fact) bool) []bool {
	mask := make([]bool, full.Size())
	for i, f := range full.Facts() {
		if j := proj.IndexOf(f); j >= 0 {
			mask[i] = projMask[j]
		} else {
			mask[i] = coin(f)
		}
	}
	return mask
}

func (o Options) rng() *rand.Rand {
	return rand.New(rand.NewSource(o.seed() + 0x9e3779b9))
}
