package core

import (
	"fmt"
	"math/rand"

	"pqe/internal/count"
	"pqe/internal/cq"
	"pqe/internal/pdb"
	"pqe/internal/reduction"
)

// SampleSatisfying draws a near-uniform satisfying subinstance of D for
// Q (a "possible world" conditioned on the query holding), using the
// uniform-generation facet of the CountNFTA machinery: a near-uniform
// accepted tree of the Proposition 1 automaton is sampled and decoded
// back through the bijection. Facts over relations outside the query
// are included independently with probability ½ (they are free in the
// uniform-reliability distribution).
//
// It returns nil with no error when no satisfying subinstance exists.
func SampleSatisfying(q *cq.Query, d *pdb.Database, opts Options) ([]bool, error) {
	red, proj, err := buildUR(q, d, opts)
	if err != nil {
		return nil, err
	}
	tree := count.SampleTree(red.Auto, red.TreeSize, opts.countOptions())
	if tree == nil {
		return nil, nil
	}
	projMask, err := red.DecodeTree(tree)
	if err != nil {
		return nil, fmt.Errorf("core: sampled tree failed to decode: %w", err)
	}
	rng := opts.rng()
	return liftMask(d, proj, projMask, func(pdb.Fact) bool {
		return rng.Intn(2) == 0
	}), nil
}

// SampleWorld draws a possible world of the probabilistic database
// conditioned on Q being satisfied, approximately according to the
// conditional distribution Pr_H(· | Q): an accepted tree of the
// weighted (Theorem 1) automaton is sampled near-uniformly — the
// multiplier gadgets replicate each subinstance's trees proportionally
// to its weight, so a near-uniform tree is a near-conditionally-
// distributed world — and decoded. Facts over relations outside the
// query are included independently with their own probabilities (they
// are independent of the conditioning event).
//
// It returns nil with no error when Pr_H(Q) = 0.
func SampleWorld(q *cq.Query, h *pdb.Probabilistic, opts Options) ([]bool, error) {
	proj := h.Project(q.RelationSet())
	red, _, err := buildUR(q, proj.DB(), opts)
	if err != nil {
		return nil, err
	}
	weighted, err := reduction.WeightUR(red, proj)
	if err != nil {
		return nil, err
	}
	tree := count.SampleTree(weighted.Auto, weighted.TreeSize, opts.countOptions())
	if tree == nil {
		return nil, nil
	}
	projMask, err := red.DecodeTree(tree)
	if err != nil {
		return nil, fmt.Errorf("core: sampled tree failed to decode: %w", err)
	}
	rng := opts.rng()
	return liftMask(h.DB(), proj.DB(), projMask, func(f pdb.Fact) bool {
		return rng.Float64() < h.Prob(f).Float()
	}), nil
}

// liftMask expands a mask over the projected database to a mask over
// the full database, drawing each free (projected-away) fact with the
// supplied coin.
func liftMask(full, proj *pdb.Database, projMask []bool, coin func(pdb.Fact) bool) []bool {
	mask := make([]bool, full.Size())
	for i, f := range full.Facts() {
		if j := proj.IndexOf(f); j >= 0 {
			mask[i] = projMask[j]
		} else {
			mask[i] = coin(f)
		}
	}
	return mask
}

func (o Options) rng() *rand.Rand {
	return rand.New(rand.NewSource(o.seed() + 0x9e3779b9))
}
