package core

import (
	"errors"
	"math"
	"testing"

	"pqe/internal/cq"
	"pqe/internal/exact"
	"pqe/internal/gen"
	"pqe/internal/obs"
	"pqe/internal/pdb"
)

func TestRoutedSafeQuery(t *testing.T) {
	q := cq.StarQuery("R", 2)
	h := gen.Instance(q, gen.Config{FactsPerRelation: 3, DomainSize: 3, Model: gen.ProbRandomRational, Seed: 2})
	res, err := Evaluate(q, h, Options{Seed: 1, Strategy: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.Method != MethodSafePlan {
		t.Errorf("safe query routed to %v (exact=%v)", res.Method, res.Exact)
	}
	if res.Reason == "" {
		t.Error("routed result missing reason")
	}
}

func TestRoutedSmallLineageMatchesBruteForce(t *testing.T) {
	q := cq.PathQuery("R", 3)
	h := gen.Instance(q, gen.Config{FactsPerRelation: 2, DomainSize: 3, Seed: 3})
	res, err := Evaluate(q, h, Options{Epsilon: 0.1, Seed: 1, Strategy: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.Method != MethodOBDD {
		t.Errorf("small instance routed to %v (exact=%v), want obdd exact", res.Method, res.Exact)
	}
	want, _ := exact.MustPQE(q, h).Float64()
	if math.Abs(res.Probability-want) > 1e-12 {
		t.Errorf("probability %v, want exactly %v", res.Probability, want)
	}
}

func TestRoutedLargePathGoesToStringEngine(t *testing.T) {
	q := cq.PathQuery("R", 3)
	// 10 facts per relation → witness bound 1000 > 512: FPRAS territory.
	h := gen.Instance(q, gen.Config{FactsPerRelation: 10, DomainSize: 4, Seed: 5})
	res, err := Evaluate(q, h, Options{Epsilon: 0.1, Seed: 1, Strategy: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact || res.Method != MethodFPRASPath {
		t.Errorf("large path instance routed to %v, want path-NFA FPRAS", res.Method)
	}
	// 30 facts rule out the 2^|D| brute force; the exact lineage WMC is
	// the oracle instead (witness count is small even though the witness
	// bound exceeds the routing threshold).
	oracle, err := Evaluate(q, h, Options{Seed: 1, Strategy: "force-lineage"})
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Probability > 0 {
		ratio := res.Probability / oracle.Probability
		if ratio < 0.75 || ratio > 1.25 {
			t.Errorf("probability %v, want ≈ %v", res.Probability, oracle.Probability)
		}
	}
}

func TestRoutedForcedStrategies(t *testing.T) {
	q := cq.PathQuery("R", 3)
	h := gen.Instance(q, gen.Config{FactsPerRelation: 2, DomainSize: 3, Seed: 3})
	want, _ := exact.MustPQE(q, h).Float64()
	cases := []struct {
		strategy string
		method   Method
		exact    bool
	}{
		{"force-obdd", MethodOBDD, true},
		{"force-lineage", MethodLineage, true},
		{"force-nfta", MethodFPRASTree, false},
		{"force-nfa", MethodFPRASPath, false},
		{"force-montecarlo", MethodMonteCarlo, false},
	}
	for _, c := range cases {
		res, err := Evaluate(q, h, Options{Epsilon: 0.1, Seed: 1, Strategy: c.strategy})
		if err != nil {
			t.Fatalf("%s: %v", c.strategy, err)
		}
		if res.Method != c.method || res.Exact != c.exact {
			t.Errorf("%s routed to %v (exact=%v)", c.strategy, res.Method, res.Exact)
		}
		if c.exact {
			if math.Abs(res.Probability-want) > 1e-12 {
				t.Errorf("%s: probability %v, want exactly %v", c.strategy, res.Probability, want)
			}
		} else if want > 0 {
			ratio := res.Probability / want
			if ratio < 0.6 || ratio > 1.7 {
				t.Errorf("%s: probability %v, want ≈ %v", c.strategy, res.Probability, want)
			}
		}
	}
	if _, err := Evaluate(q, h, Options{Strategy: "force-warp"}); err == nil {
		t.Error("unknown strategy accepted")
	}
	// Forcing the safe plan on an unsafe query must error, not silently
	// fall back.
	if _, err := Evaluate(q, h, Options{Strategy: "force-safeplan"}); err == nil {
		t.Error("force-safeplan on an unsafe query succeeded")
	}
}

func TestRoutedRejectsOpenCells(t *testing.T) {
	// A self-join over a database too large for the lineage route.
	q := cq.MustParse("R(x,y), R(y,z)")
	h := pdb.Empty()
	for i := 0; i < 40; i++ {
		h.Add(pdb.NewFact("R", string(rune('a'+i)), string(rune('b'+i))), pdb.ProbHalf)
	}
	_, err := Evaluate(q, h, Options{Strategy: "auto"})
	if !errors.Is(err, ErrUnsupported) {
		t.Errorf("err = %v, want ErrUnsupported", err)
	}
}

func TestRoutedSelfJoinSmallLineageIsExact(t *testing.T) {
	// Self-joins are an open cell for the FPRAS, but a small instance is
	// still exactly solvable through the lineage — the router recovers
	// what the legacy routing rejected.
	q := cq.MustParse("R(x,y), R(y,z)")
	h := pdb.Empty()
	h.Add(pdb.NewFact("R", "a", "b"), pdb.ProbHalf)
	h.Add(pdb.NewFact("R", "b", "c"), pdb.ProbHalf)
	res, err := Evaluate(q, h, Options{Strategy: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatalf("small self-join not exact: %+v", res)
	}
	want, _ := exact.MustPQE(q, h).Float64()
	if math.Abs(res.Probability-want) > 1e-12 {
		t.Errorf("probability %v, want exactly %v", res.Probability, want)
	}
}

func TestRoutedDeterministicAcrossMaxProcs(t *testing.T) {
	q := cq.PathQuery("R", 3)
	h := gen.Instance(q, gen.Config{FactsPerRelation: 10, DomainSize: 4, Seed: 5})
	base, err := Evaluate(q, h, Options{Epsilon: 0.1, Seed: 9, Strategy: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 4, 8} {
		got, err := Evaluate(q, h, Options{Epsilon: 0.1, Seed: 9, Strategy: "auto", MaxProcs: procs})
		if err != nil {
			t.Fatal(err)
		}
		if got.Probability != base.Probability || got.Method != base.Method {
			t.Errorf("MaxProcs=%d: %v via %v, want %v via %v",
				procs, got.Probability, got.Method, base.Probability, base.Method)
		}
	}
}

func TestRoutedDispatchCounters(t *testing.T) {
	q := cq.PathQuery("R", 3)
	h := gen.Instance(q, gen.Config{FactsPerRelation: 10, DomainSize: 4, Seed: 5})
	reg := obs.NewRegistry()
	sc := obs.NewScope(nil, reg, nil)
	if _, err := Evaluate(q, h, Options{Epsilon: 0.1, Seed: 1, Strategy: "auto", Obs: sc}); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("router_dispatch_total").Value(); v != 1 {
		t.Errorf("router_dispatch_total = %d, want 1", v)
	}
	if v := reg.Counter("router_dispatch_nfa_total").Value(); v != 1 {
		t.Errorf("router_dispatch_nfa_total = %d, want 1", v)
	}
	// Sequential stopping is on under strategy routing; the saved-trial
	// attribution must agree with the engine's own counter.
	saved := reg.Counter("router_trials_saved_total").Value()
	engineSaved := reg.Counter("countnfa_trials_saved_total").Value() +
		reg.Counter("countnfta_trials_saved_total").Value()
	if saved != engineSaved {
		t.Errorf("router_trials_saved_total = %d, engines saved %d", saved, engineSaved)
	}
}

func TestRoutedDecisionMemoizedAndInvalidated(t *testing.T) {
	q := cq.PathQuery("R", 3)
	h := pdb.Empty()
	h.Add(pdb.NewFact("R1", "a", "b"), pdb.ProbHalf)
	h.Add(pdb.NewFact("R2", "b", "c"), pdb.ProbHalf)
	h.Add(pdb.NewFact("R3", "c", "d"), pdb.ProbHalf)
	e := NewEstimator(q, h, Options{Strategy: "auto"})
	res, err := e.Evaluate(Options{Strategy: "auto", Epsilon: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodOBDD {
		t.Fatalf("tiny instance routed to %v, want obdd", res.Method)
	}
	if e.routeDec == nil {
		t.Fatal("decision not memoized")
	}
	// Growing the instance past the lineage threshold must re-route: the
	// structural delta drops the memoized decision.
	var delta pdb.Delta
	for i := 0; i < 30; i++ {
		a := "x" + string(rune('a'+i))
		b := "y" + string(rune('a'+i))
		delta = append(delta,
			pdb.DeltaOp{Kind: pdb.DeltaInsert, Fact: pdb.NewFact("R1", a, b), Prob: pdb.ProbHalf},
			pdb.DeltaOp{Kind: pdb.DeltaInsert, Fact: pdb.NewFact("R2", b, a), Prob: pdb.ProbHalf},
		)
	}
	if _, err := e.ApplyDelta(delta); err != nil {
		t.Fatal(err)
	}
	if e.routeDec != nil {
		t.Fatal("structural delta did not drop the memoized decision")
	}
	res, err = e.Evaluate(Options{Strategy: "auto", Epsilon: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodFPRASPath {
		t.Errorf("grown instance routed to %v, want path-NFA FPRAS", res.Method)
	}
}

func TestLegacyDefaultUnchangedByRouter(t *testing.T) {
	// The zero Options keep the legacy two-way routing — the back-compat
	// contract of the Strategy knob.
	q := cq.PathQuery("R", 3)
	h := gen.Instance(q, gen.Config{FactsPerRelation: 2, DomainSize: 3, Seed: 3})
	res, err := Evaluate(q, h, Options{Epsilon: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodFPRASTree {
		t.Errorf("legacy default routed to %v, want tree FPRAS", res.Method)
	}
}
