// Package core realizes the paper's three algorithms end to end:
//
//	PathEstimate (Theorem 2): uniform reliability of self-join-free path
//	    queries via the Section 3 NFA construction and CountNFA;
//	UREstimate (Theorem 3): uniform reliability of self-join-free
//	    bounded-hypertree-width queries via the Proposition 1 augmented
//	    NFTA and CountNFTA;
//	PQEEstimate (Theorem 1): probabilistic query evaluation via the
//	    Section 5 multiplier construction.
//
// It also classifies queries along the axes of Table 1 (bounded
// hypertree width, self-join-freeness, safety) and routes evaluation
// accordingly: safe queries go to the exact Dalvi–Suciu safe plan,
// unsafe bounded-width SJF queries to the FPRAS, and everything else is
// reported as open (exactly the open cells of Table 1).
package core

import (
	"context"
	"errors"

	"pqe/internal/count"
	"pqe/internal/cq"
	"pqe/internal/efloat"
	"pqe/internal/hypertree"
	"pqe/internal/nfa"
	"pqe/internal/obs"
	"pqe/internal/pdb"
	"pqe/internal/safeplan"
)

// Options configures the estimators.
type Options struct {
	// Epsilon is the target relative error, in (0,1). Default 0.1.
	Epsilon float64
	// Trials is the number of independent estimates whose median is
	// taken. Default 5.
	Trials int
	// Samples overrides the per-overlap sample count (0 = derived from
	// Epsilon).
	Samples int
	// Seed makes the estimators deterministic. Default 1.
	Seed int64
	// MaxWidth caps the hypertree width searched for. 0 means |Q|.
	MaxWidth int
	// ForceFPRAS disables safe-plan routing in Evaluate, forcing the
	// automaton pipeline even for safe queries.
	ForceFPRAS bool
	// Strategy selects how Evaluate routes. "" keeps the legacy routing
	// (safe → safe plan, else tree FPRAS). "auto" enables the full
	// cost-based router of internal/router — Table 1 classification plus
	// a small-lineage exact route — and anytime sequential stopping in
	// the FPRAS engines. "force-<engine>" (safeplan, obdd, lineage,
	// nfta, nfa, montecarlo) pins one strategy unconditionally.
	Strategy string
	// Delta is the anytime stopping certificate's failure-probability
	// target in (0,1); ≤ 0 uses the engines' default. Setting it > 0
	// also enables sequential stopping under the legacy ("" Strategy)
	// routing.
	Delta float64
	// MaxProcs bounds the workers of the counters' unified scheduler,
	// which dispatches whole trials and chunks of their overlap-sampling
	// loops (0 derives the count from the deprecated Parallel/Workers
	// pair). Results are identical across MaxProcs settings for a fixed
	// Seed.
	MaxProcs int
	// Parallel runs the counters' independent trials concurrently.
	//
	// Deprecated: set MaxProcs.
	Parallel bool
	// Workers bounds the goroutines drawing overlap samples inside each
	// counting trial (0 or 1 = sequential).
	//
	// Deprecated: set MaxProcs.
	Workers int
	// CountStats, when non-nil, accumulates CountNFTA effort counters
	// (memo sizes, samples, wall time, allocations) across estimator
	// invocations.
	CountStats *count.Stats
	// NFAStats is the string-engine counterpart of CountStats: CountNFA
	// effort counters accumulated across PathEstimate / PathPQEEstimate
	// invocations.
	NFAStats *nfa.Stats
	// Obs, when non-nil, attaches the unified telemetry sinks to the
	// pipeline: stage spans for every construction and counting phase,
	// registry counters (pqe_build_* plus the engines' countnfta_* /
	// countnfa_* families), and per-trial convergence records. When nil,
	// an Estimator still keeps a private registry so BuildStats works;
	// tracing and convergence stay off.
	Obs *obs.Scope
	// Ctx, when non-nil, bounds the call: the FPRAS sampling loops
	// observe cancellation at every trial-batch boundary (plus queued
	// trials and overlap dispatches) and the estimate entry points return
	// Ctx.Err() instead of a value. Construction stages are not
	// interruptible — a deadline that expires mid-build is reported at
	// the next check. Nil means no deadline (the previous behaviour).
	Ctx context.Context
	// Shard, when non-nil, distributes the FPRAS counting phases across
	// worker processes (internal/shard.Pool). Construction, routing and
	// post-counting scaling stay on the coordinator; the trial schedule
	// is partitioned into contiguous ranges whose merged upper median is
	// bit-identical to the local run at any worker count.
	Shard Sharder
}

// ctxErr surfaces a cancelled call's context error (nil Ctx never
// cancels).
func (o Options) ctxErr() error {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Err()
}

// anytime reports whether the FPRAS counting calls use sequential
// stopping: always under strategy routing, opt-in via Delta under the
// legacy routing (so default-options runs keep their fixed schedule and
// stay bit-identical to previous releases).
func (o Options) anytime() bool { return o.Strategy != "" || o.Delta > 0 }

func (o Options) countOptions(sc *obs.Scope) count.Options {
	return count.Options{
		Epsilon:  o.Epsilon,
		Trials:   o.Trials,
		Samples:  o.Samples,
		Seed:     o.seed(),
		Anytime:  o.anytime(),
		Delta:    o.Delta,
		MaxProcs: o.MaxProcs,
		Parallel: o.Parallel,
		Workers:  o.Workers,
		Stats:    o.CountStats,
		Obs:      sc,
		Ctx:      o.Ctx,
	}
}

func (o Options) nfaOptions(sc *obs.Scope) nfa.CountOptions {
	return nfa.CountOptions{
		Epsilon:  o.Epsilon,
		Trials:   o.Trials,
		Samples:  o.Samples,
		Seed:     o.seed(),
		Anytime:  o.anytime(),
		Delta:    o.Delta,
		MaxProcs: o.MaxProcs,
		Parallel: o.Parallel,
		Workers:  o.Workers,
		Stats:    o.NFAStats,
		Obs:      sc,
		Ctx:      o.Ctx,
	}
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// ErrUnsupported is returned for queries outside the paper's FPRAS
// class (self-joins, or no decomposition within the width cap) — the
// open cells of Table 1.
var ErrUnsupported = errors.New("core: query outside the supported class (Table 1 open cell)")

// Classification places a query in the Table 1 landscape.
type Classification struct {
	SelfJoinFree bool
	Width        int  // minimal (generalized) hypertree width found, 0 if not decomposed
	BoundedHW    bool // decomposition found within the width cap
	Safe         bool // hierarchical (for SJF queries ⇔ safe)
	Path         bool
}

// Classify computes the Table 1 coordinates of a query.
func Classify(q *cq.Query, maxWidth int) Classification {
	c := Classification{
		SelfJoinFree: q.SelfJoinFree(),
		Safe:         safeplan.IsSafe(q),
		Path:         q.IsPath(),
	}
	if maxWidth <= 0 {
		maxWidth = q.Len()
	}
	if dec, err := hypertree.Decompose(q); err == nil && dec.Width() <= maxWidth {
		c.Width = dec.Width()
		c.BoundedHW = true
	}
	return c
}

// PathEstimate approximates UR(Q, D) for a self-join-free path query
// over a database of binary facts (Theorem 2), within (1±ε) with high
// probability, in time poly(|Q|, |D|, 1/ε). One-shot wrapper over
// Estimator; reuse an Estimator for repeated evaluations.
func PathEstimate(q *cq.Query, d *pdb.Database, opts Options) (efloat.E, error) {
	return NewUREstimator(q, d, opts).PathEstimate(opts)
}

// UREstimate approximates UR(Q, D) for a self-join-free conjunctive
// query of bounded hypertree width (Theorem 3).
func UREstimate(q *cq.Query, d *pdb.Database, opts Options) (efloat.E, error) {
	return NewUREstimator(q, d, opts).UREstimate(opts)
}

// PQEEstimate approximates Pr_H(Q) for a self-join-free conjunctive
// query of bounded hypertree width over a probabilistic database with
// rational probabilities (Theorem 1), within (1±ε) with high
// probability, in time poly(|Q|, |H|, 1/ε).
func PQEEstimate(q *cq.Query, h *pdb.Probabilistic, opts Options) (float64, error) {
	return NewEstimator(q, h, opts).PQEEstimate(opts)
}

// PathPQEEstimate approximates Pr_H(Q) for a self-join-free path query
// over binary relations using the string-automaton pipeline: the
// Section 3 NFA with string multiplier gadgets (footnote 2 of §5.1) and
// CountNFA. Functionally equivalent to PQEEstimate on path queries; it
// exists because paths need no tree machinery at all, and serves as the
// E10 ablation.
func PathPQEEstimate(q *cq.Query, h *pdb.Probabilistic, opts Options) (float64, error) {
	return NewEstimator(q, h, opts).PathPQEEstimate(opts)
}

// Method identifies how Evaluate computed its answer.
type Method string

const (
	MethodSafePlan   Method = "safe-plan (exact, Dalvi–Suciu)"
	MethodFPRASTree  Method = "fpras (NFTA, Theorem 1)"
	MethodFPRASPath  Method = "fpras (path NFA, Theorem 2)"
	MethodOBDD       Method = "obdd-wmc (exact, lineage OBDD)"
	MethodLineage    Method = "lineage-wmc (exact, Shannon expansion)"
	MethodMonteCarlo Method = "monte-carlo (additive sampling baseline)"
)

// Result is the outcome of Evaluate.
type Result struct {
	Probability float64
	Exact       bool
	Method      Method
	Class       Classification
	// Reason explains the routing decision (strategy routing only).
	Reason string
}

// Evaluate routes a query to the best applicable algorithm, mirroring
// Table 1: safe SJF queries get the exact safe plan; unsafe SJF queries
// of bounded width get the combined-complexity FPRAS; the rest is
// unsupported (open).
func Evaluate(q *cq.Query, h *pdb.Probabilistic, opts Options) (Result, error) {
	return NewEstimator(q, h, opts).Evaluate(opts)
}
