package core

import (
	"fmt"
	"strings"

	"pqe/internal/cq"
	"pqe/internal/pdb"
	"pqe/internal/router"
)

// Report describes how a query would be evaluated, without running the
// (potentially expensive) counting stage: the Table 1 classification,
// the chosen route, and — for the FPRAS route — the decomposition and
// the sizes of every constructed automaton. It is the "query plan" of
// this system.
type Report struct {
	Query         string
	Class         Classification
	Route         Method
	Reason        string // routing rationale (strategy routing only)
	Decomposition string // pretty-printed, FPRAS route only
	// Automaton sizes (FPRAS route only).
	AugSize          int // augmented NFTA encoding size
	AutoStates       int // λ-free NFTA states (trimmed)
	AutoTransitions  int
	FinalStates      int // after multiplier expansion (trimmed)
	FinalTransitions int
	TreeSize         int // the counted tree size |D| + Σ Kᵢ
	DigitNodes       int // Σ Kᵢ
	DenominatorBits  int // bit length of ∏ dᵢ
}

// Explain builds the evaluation plan for the query over the instance.
// One-shot wrapper over Estimator.Explain.
func Explain(q *cq.Query, h *pdb.Probabilistic, opts Options) (*Report, error) {
	return NewEstimator(q, h, opts).Explain(opts)
}

// Explain builds the evaluation plan over the session's caches: the
// same automata it constructs here are the ones a following Evaluate
// or PQEEstimate call counts over.
func (e *Estimator) Explain(opts Options) (*Report, error) {
	class := e.Class()
	r := &Report{Query: e.q.String(), Class: class}
	strategy := opts.Strategy
	if strategy == "" {
		strategy = e.opts.Strategy
	}
	if strategy != "" {
		dec, err := e.decideStrategy(strategy)
		if err != nil {
			return r, err
		}
		r.Reason = dec.Reason
		switch dec.Strategy {
		case router.SafePlan:
			r.Route = MethodSafePlan
			return r, nil
		case router.OBDD:
			r.Route = MethodOBDD
			return r, nil
		case router.Lineage:
			r.Route = MethodLineage
			return r, nil
		case router.MonteCarlo:
			r.Route = MethodMonteCarlo
			return r, nil
		case router.PathNFA:
			r.Route = MethodFPRASPath
			return r, nil
		case router.NFTA:
			// Fall through to the FPRAS plan details below.
		default:
			return r, fmt.Errorf("%w: %q (%s)", ErrUnsupported, e.q, dec.Reason)
		}
	} else {
		if class.Safe && !opts.ForceFPRAS && !e.opts.ForceFPRAS {
			r.Route = MethodSafePlan
			return r, nil
		}
		if !class.SelfJoinFree || !class.BoundedHW {
			return r, fmt.Errorf("%w: %q", ErrUnsupported, e.q)
		}
	}
	r.Route = MethodFPRASTree

	red, err := e.urReduction()
	if err != nil {
		return r, err
	}
	r.Decomposition = red.Dec.String()
	r.AugSize = red.Aug.Size()
	r.AutoStates = red.Auto.NumStates()
	r.AutoTransitions = red.Auto.NumTransitions()

	weighted, err := e.pqeReduction()
	if err != nil {
		return r, err
	}
	r.FinalStates = weighted.Auto.NumStates()
	r.FinalTransitions = weighted.Auto.NumTransitions()
	r.TreeSize = weighted.TreeSize
	r.DigitNodes = weighted.TreeSize - e.proj().Size()
	r.DenominatorBits = weighted.DenProduct.BitLen()
	return r, nil
}

// String renders the report for humans.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query:   %s\n", r.Query)
	fmt.Fprintf(&b, "class:   self-join-free=%v  width=%d (bounded=%v)  safe=%v  path=%v\n",
		r.Class.SelfJoinFree, r.Class.Width, r.Class.BoundedHW, r.Class.Safe, r.Class.Path)
	fmt.Fprintf(&b, "route:   %s\n", r.Route)
	if r.Reason != "" {
		fmt.Fprintf(&b, "reason:  %s\n", r.Reason)
	}
	if r.Route == MethodSafePlan {
		fmt.Fprintf(&b, "         (exact: independent project/join rules; no automaton is built)\n")
		return b.String()
	}
	if r.Route != MethodFPRASTree && r.Route != MethodFPRASPath {
		return b.String()
	}
	if r.Route == MethodFPRASPath {
		fmt.Fprintf(&b, "         (string automaton; Theorem 2 pipeline, no tree machinery)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "decomposition:\n")
	for _, line := range strings.Split(strings.TrimRight(r.Decomposition, "\n"), "\n") {
		fmt.Fprintf(&b, "  %s\n", line)
	}
	fmt.Fprintf(&b, "augmented NFTA size:      %d\n", r.AugSize)
	fmt.Fprintf(&b, "λ-free NFTA (trimmed):    %d states, %d transitions\n", r.AutoStates, r.AutoTransitions)
	fmt.Fprintf(&b, "weighted NFTA (trimmed):  %d states, %d transitions\n", r.FinalStates, r.FinalTransitions)
	fmt.Fprintf(&b, "counted tree size:        %d (= |D| + %d digit nodes)\n", r.TreeSize, r.DigitNodes)
	fmt.Fprintf(&b, "denominator ∏dᵢ:          %d bits\n", r.DenominatorBits)
	return b.String()
}
