package core

import (
	"fmt"

	"pqe/internal/cq"
	"pqe/internal/pdb"
)

// PosteriorInclusion approximates Pr(f ∈ W | W ⊨ Q), the probability
// that a fact is present given that the query holds — the quantity
// behind "why did this query fire?" explanations. It uses the identity
//
//	Pr(f ∧ Q) = π(f) · Pr_{H[π(f):=1]}(Q)
//
// and two FPRAS invocations, so a single call carries roughly a
// (1±2ε) guarantee. The fact must be in the database; facts over
// relations outside the query are independent of the event and their
// posterior equals their prior.
//
// Both invocations share one Estimator: the hypertree decomposition and
// the uniform-reliability automaton are built once, and the conditioned
// instance only re-runs the multiplier weighting (a SetProbabilities
// re-weight, since conditioning changes one probability, not the facts).
func PosteriorInclusion(q *cq.Query, h *pdb.Probabilistic, f pdb.Fact, opts Options) (float64, error) {
	if h.DB().IndexOf(f) < 0 {
		return 0, fmt.Errorf("core: fact %v not in database", f)
	}
	prior := h.Prob(f).Float()
	if !q.RelationSet()[f.Relation] {
		return prior, nil
	}
	est := NewEstimator(q, h, opts)
	denom, err := est.PQEEstimate(opts)
	if err != nil {
		return 0, err
	}
	if denom == 0 {
		return 0, fmt.Errorf("core: Pr(Q) = 0; posterior undefined")
	}
	if prior == 0 {
		return 0, nil
	}
	if err := est.SetProbabilities(h.WithProb(f, pdb.ProbOne)); err != nil {
		return 0, err
	}
	numer, err := est.PQEEstimate(opts)
	if err != nil {
		return 0, err
	}
	post := prior * numer / denom
	// Estimation noise can push the ratio slightly past 1.
	if post > 1 {
		post = 1
	}
	return post, nil
}
