package core

import (
	"fmt"

	"pqe/internal/cq"
	"pqe/internal/pdb"
)

// PosteriorInclusion approximates Pr(f ∈ W | W ⊨ Q), the probability
// that a fact is present given that the query holds — the quantity
// behind "why did this query fire?" explanations. It uses the identity
//
//	Pr(f ∧ Q) = π(f) · Pr_{H[π(f):=1]}(Q)
//
// and two FPRAS invocations, so a single call carries roughly a
// (1±2ε) guarantee. The fact must be in the database; facts over
// relations outside the query are independent of the event and their
// posterior equals their prior.
func PosteriorInclusion(q *cq.Query, h *pdb.Probabilistic, f pdb.Fact, opts Options) (float64, error) {
	if h.DB().IndexOf(f) < 0 {
		return 0, fmt.Errorf("core: fact %v not in database", f)
	}
	prior := h.Prob(f).Float()
	if !q.RelationSet()[f.Relation] {
		return prior, nil
	}
	denom, err := PQEEstimate(q, h, opts)
	if err != nil {
		return 0, err
	}
	if denom == 0 {
		return 0, fmt.Errorf("core: Pr(Q) = 0; posterior undefined")
	}
	if prior == 0 {
		return 0, nil
	}
	conditioned := h.WithProb(f, pdb.ProbOne)
	numer, err := PQEEstimate(q, conditioned, opts)
	if err != nil {
		return 0, err
	}
	post := prior * numer / denom
	// Estimation noise can push the ratio slightly past 1.
	if post > 1 {
		post = 1
	}
	return post, nil
}
