package core

import (
	"math/big"
	"testing"

	"pqe/internal/cq"
	"pqe/internal/exact"
	"pqe/internal/pdb"
)

func TestSampleSatisfyingAlwaysSatisfies(t *testing.T) {
	q := cq.PathQuery("R", 2)
	d := pdb.FromFacts(
		pdb.NewFact("R1", "a", "b"),
		pdb.NewFact("R1", "a", "c"),
		pdb.NewFact("R2", "b", "d"),
		pdb.NewFact("R2", "c", "d"),
		pdb.NewFact("Zed", "z", "z"), // free fact outside the query
	)
	for i := 0; i < 40; i++ {
		mask, err := SampleSatisfying(q, d, Options{Epsilon: 0.2, Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if mask == nil {
			t.Fatal("nil sample from satisfiable instance")
		}
		if !cq.Satisfies(d.Subinstance(mask), q) {
			t.Errorf("sample %v does not satisfy the query", mask)
		}
	}
}

func TestSampleSatisfyingApproxUniform(t *testing.T) {
	// R1(a,b) with two R2 successors: satisfying subinstances are
	// {1,2}, {1,3}, {1,2,3} — each should appear ≈ 1/3 of the time.
	q := cq.PathQuery("R", 2)
	d := pdb.FromFacts(
		pdb.NewFact("R1", "a", "b"),
		pdb.NewFact("R2", "b", "c"),
		pdb.NewFact("R2", "b", "d"),
	)
	if got := exact.MustUR(q, d).Int64(); got != 3 {
		t.Fatalf("UR = %d, want 3", got)
	}
	counts := make(map[string]int)
	draws := 900
	for i := 0; i < draws; i++ {
		mask, err := SampleSatisfying(q, d, Options{Epsilon: 0.2, Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		key := ""
		for _, b := range mask {
			if b {
				key += "1"
			} else {
				key += "0"
			}
		}
		counts[key]++
	}
	if len(counts) != 3 {
		t.Fatalf("support = %v, want 3 subinstances", counts)
	}
	for k, c := range counts {
		frac := float64(c) / float64(draws)
		if frac < 0.20 || frac > 0.47 {
			t.Errorf("subinstance %s frequency %.3f, want ≈ 1/3", k, frac)
		}
	}
}

func TestSampleSatisfyingEmpty(t *testing.T) {
	q := cq.PathQuery("R", 2)
	d := pdb.FromFacts(pdb.NewFact("R1", "a", "b")) // R2 empty: unsatisfiable
	mask, err := SampleSatisfying(q, d, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mask != nil {
		t.Errorf("sample from unsatisfiable instance: %v", mask)
	}
}

func TestSampleWorldSatisfiesAndTracksConditional(t *testing.T) {
	// One forced chain with asymmetric probabilities: conditional
	// distribution concentrates on worlds containing the chain.
	q := cq.PathQuery("R", 2)
	h := pdb.Empty()
	h.Add(pdb.NewFact("R1", "a", "b"), pdb.NewProb(1, 2))
	h.Add(pdb.NewFact("R2", "b", "c"), pdb.NewProb(1, 4))
	h.Add(pdb.NewFact("R2", "b", "d"), pdb.NewProb(3, 4))
	counts := make(map[string]int)
	draws := 1200
	for i := 0; i < draws; i++ {
		mask, err := SampleWorld(q, h, Options{Epsilon: 0.2, Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if mask == nil {
			t.Fatal("nil sample")
		}
		if !cq.Satisfies(h.DB().Subinstance(mask), q) {
			t.Fatalf("sampled world does not satisfy the query")
		}
		key := ""
		for _, b := range mask {
			if b {
				key += "1"
			} else {
				key += "0"
			}
		}
		counts[key]++
	}
	// Compare empirical frequencies to the exact conditional
	// distribution Pr(world)/Pr(Q).
	prQ := exact.MustPQE(q, h)
	n := h.Size()
	mask := make([]bool, n)
	for m := 0; m < 1<<uint(n); m++ {
		key := ""
		for i := range mask {
			mask[i] = m&(1<<uint(i)) != 0
			if mask[i] {
				key += "1"
			} else {
				key += "0"
			}
		}
		if !cq.Satisfies(h.DB().Subinstance(mask), q) {
			if counts[key] > 0 {
				t.Errorf("non-satisfying world %s sampled %d times", key, counts[key])
			}
			continue
		}
		cond := new(big.Rat).Quo(h.SubinstanceProb(mask), prQ)
		want, _ := cond.Float64()
		got := float64(counts[key]) / float64(draws)
		if got < want-0.12 || got > want+0.12 {
			t.Errorf("world %s frequency %.3f, conditional probability %.3f", key, got, want)
		}
	}
}

func TestSampleWorldZeroProbabilityQuery(t *testing.T) {
	q := cq.PathQuery("R", 2)
	h := pdb.Empty()
	h.Add(pdb.NewFact("R1", "a", "b"), pdb.NewProb(0, 1)) // forced absent
	h.Add(pdb.NewFact("R2", "b", "c"), pdb.ProbHalf)
	mask, err := SampleWorld(q, h, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mask != nil {
		t.Errorf("sampled a world although Pr(Q) = 0: %v", mask)
	}
}

func TestSampleWorldFreeFactsFollowProbabilities(t *testing.T) {
	// A free fact with probability 9/10 must appear ≈ 90% of the time.
	q := cq.MustParse("R(x)")
	h := pdb.Empty()
	h.Add(pdb.NewFact("R", "a"), pdb.ProbOne)
	h.Add(pdb.NewFact("Free", "z"), pdb.NewProb(9, 10))
	present := 0
	draws := 800
	for i := 0; i < draws; i++ {
		mask, err := SampleWorld(q, h, Options{Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if mask[1] {
			present++
		}
	}
	frac := float64(present) / float64(draws)
	if frac < 0.82 || frac > 0.97 {
		t.Errorf("free fact present with frequency %.3f, want ≈ 0.9", frac)
	}
}
