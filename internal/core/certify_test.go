package core

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"pqe/internal/cq"
	"pqe/internal/exact"
	"pqe/internal/gen"
)

// TestCertificationSweep is the broad end-to-end accuracy certification:
// across query shapes (paths, stars, branches, cycles, snowflakes, H₀)
// and random instances, both UREstimate and PQEEstimate must stay inside
// a generous envelope of the brute-force oracle. Gated behind -short
// because it runs the full pipeline ~dozens of times.
func TestCertificationSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping certification sweep in -short mode")
	}
	shapes := []struct {
		name string
		q    *cq.Query
	}{
		{"path2", cq.PathQuery("R", 2)},
		{"path3", cq.PathQuery("R", 3)},
		{"path4", cq.PathQuery("R", 4)},
		{"star3", cq.StarQuery("S", 3)},
		{"branch", cq.MustParse("R1(x,y), R2(y,z), R3(y,w)")},
		{"triangle", cq.CycleQuery("C", 3)},
		{"square", cq.CycleQuery("C", 4)},
		{"snowflake", cq.SnowflakeQuery("F", 2, 1)},
		{"h0", cq.MustParse("A(x), B(x,y), Cc(y)")},
	}
	rng := rand.New(rand.NewSource(99))
	for _, shape := range shapes {
		shape := shape
		t.Run(shape.name, func(t *testing.T) {
			for trial := 0; trial < 4; trial++ {
				seed := rng.Int63()
				h := gen.Instance(shape.q, gen.Config{
					FactsPerRelation: 2, DomainSize: 2 + trial%2,
					Model: gen.ProbRandomRational, Seed: seed,
				})
				d := h.DB()
				if d.Size() > 16 {
					continue
				}
				label := fmt.Sprintf("trial %d seed %d", trial, seed)

				wantUR := exact.MustUR(shape.q, d)
				gotUR, err := UREstimate(shape.q, d, Options{Epsilon: 0.1, Seed: seed})
				if err != nil {
					t.Fatalf("%s: UREstimate: %v", label, err)
				}
				if wantUR.Sign() == 0 {
					if !gotUR.IsZero() {
						t.Errorf("%s: UR 0, estimate %v", label, gotUR)
					}
				} else {
					wantF, _ := new(big.Float).SetInt(wantUR).Float64()
					if r := gotUR.Float() / wantF; r < 0.7 || r > 1.3 {
						t.Errorf("%s: UR estimate %v vs %v", label, gotUR, wantUR)
					}
				}

				wantP, _ := exact.MustPQE(shape.q, h).Float64()
				gotP, err := PQEEstimate(shape.q, h, Options{Epsilon: 0.1, Seed: seed + 1})
				if err != nil {
					t.Fatalf("%s: PQEEstimate: %v", label, err)
				}
				if wantP == 0 {
					if gotP != 0 {
						t.Errorf("%s: Pr 0, estimate %v", label, gotP)
					}
				} else if r := gotP / wantP; r < 0.7 || r > 1.3 {
					t.Errorf("%s: Pr estimate %v vs %v", label, gotP, wantP)
				}
			}
		})
	}
}
