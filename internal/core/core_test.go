package core

import (
	"errors"
	"math/big"
	"math/rand"
	"strings"
	"testing"

	"pqe/internal/cq"
	"pqe/internal/exact"
	"pqe/internal/gen"
	"pqe/internal/pdb"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		q    string
		sjf  bool
		safe bool
		path bool
	}{
		{"R(x,y), S(x,z)", true, true, false},
		{"R1(x1,x2), R2(x2,x3), R3(x3,x4)", true, false, true},
		// A self-join chain is still a path query syntactically; the
		// self-join-freeness condition is tracked separately.
		{"R(x,y), R(y,z)", false, false, true},
		{"R(x), S(x,y), T(y)", true, false, false},
	}
	for _, c := range cases {
		got := Classify(cq.MustParse(c.q), 0)
		if got.SelfJoinFree != c.sjf || got.Safe != c.safe || got.Path != c.path {
			t.Errorf("Classify(%s) = %+v", c.q, got)
		}
		if !got.BoundedHW || got.Width < 1 {
			t.Errorf("Classify(%s): expected a decomposition, got %+v", c.q, got)
		}
	}
}

func TestPathEstimateAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(2)
		q := cq.PathQuery("R", n)
		h := gen.SparsePathInstance(q, 1+rng.Intn(2), 1, gen.ProbHalf, int64(trial+1))
		d := h.DB()
		want := exact.MustUR(q, d)
		got, err := PathEstimate(q, d, Options{Epsilon: 0.1, Seed: int64(trial + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if want.Sign() == 0 {
			if !got.IsZero() {
				t.Errorf("trial %d: UR 0, estimate %v", trial, got)
			}
			continue
		}
		wantF, _ := new(big.Float).SetInt(want).Float64()
		ratio := got.Float() / wantF
		if ratio < 0.75 || ratio > 1.25 {
			t.Errorf("trial %d: estimate %v vs UR %v", trial, got, want)
		}
	}
}

func TestPathEstimateScalesForeignFacts(t *testing.T) {
	q := cq.PathQuery("R", 2)
	d := pdb.FromFacts(
		pdb.NewFact("R1", "a", "b"),
		pdb.NewFact("R2", "b", "c"),
		pdb.NewFact("Zed", "q", "r"), // outside the query
	)
	got, err := PathEstimate(q, d, Options{Epsilon: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := exact.MustUR(q, d) // = 2: core chain, Zed free
	wantF, _ := new(big.Float).SetInt(want).Float64()
	ratio := got.Float() / wantF
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("estimate %v vs UR %v", got, want)
	}
}

func TestUREstimateAgainstBruteForce(t *testing.T) {
	queries := []*cq.Query{
		cq.PathQuery("R", 3),
		cq.StarQuery("R", 2),
		cq.CycleQuery("C", 3),
	}
	for trial, q := range queries {
		h := gen.Instance(q, gen.Config{FactsPerRelation: 2, DomainSize: 3, Seed: int64(trial + 7)})
		d := h.DB()
		want := exact.MustUR(q, d)
		got, err := UREstimate(q, d, Options{Epsilon: 0.1, Seed: int64(trial + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if want.Sign() == 0 {
			if !got.IsZero() {
				t.Errorf("%s: UR 0, estimate %v", q, got)
			}
			continue
		}
		wantF, _ := new(big.Float).SetInt(want).Float64()
		ratio := got.Float() / wantF
		if ratio < 0.75 || ratio > 1.25 {
			t.Errorf("%s: estimate %v vs UR %v (ratio %.3f)", q, got, want, ratio)
		}
	}
}

func TestPQEEstimateAgainstBruteForce(t *testing.T) {
	queries := []*cq.Query{
		cq.PathQuery("R", 2),
		cq.PathQuery("R", 3),
	}
	for trial, q := range queries {
		h := gen.Instance(q, gen.Config{
			FactsPerRelation: 2, DomainSize: 3,
			Model: gen.ProbRandomRational, Seed: int64(trial + 13),
		})
		want, _ := exact.MustPQE(q, h).Float64()
		got, err := PQEEstimate(q, h, Options{Epsilon: 0.1, Seed: int64(trial + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if want == 0 {
			if got != 0 {
				t.Errorf("%s: exact 0, estimate %v", q, got)
			}
			continue
		}
		ratio := got / want
		if ratio < 0.75 || ratio > 1.25 {
			t.Errorf("%s: estimate %v vs exact %v (ratio %.3f)", q, got, want, ratio)
		}
	}
}

func TestEvaluateRoutesSafeToExact(t *testing.T) {
	q := cq.StarQuery("R", 2)
	h := gen.Instance(q, gen.Config{FactsPerRelation: 3, DomainSize: 3, Model: gen.ProbRandomRational, Seed: 2})
	res, err := Evaluate(q, h, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.Method != MethodSafePlan {
		t.Errorf("safe query routed to %v (exact=%v)", res.Method, res.Exact)
	}
	want, _ := exact.MustPQE(q, h).Float64()
	if diff := res.Probability - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("probability %v, want %v", res.Probability, want)
	}
}

func TestEvaluateRoutesUnsafeToFPRAS(t *testing.T) {
	q := cq.PathQuery("R", 3) // non-hierarchical: #P-hard, FPRAS applies
	h := gen.Instance(q, gen.Config{FactsPerRelation: 2, DomainSize: 3, Seed: 3})
	res, err := Evaluate(q, h, Options{Epsilon: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact || res.Method != MethodFPRASTree {
		t.Errorf("unsafe query routed to %v", res.Method)
	}
	want, _ := exact.MustPQE(q, h).Float64()
	if want > 0 {
		ratio := res.Probability / want
		if ratio < 0.75 || ratio > 1.25 {
			t.Errorf("probability %v, want ≈ %v", res.Probability, want)
		}
	}
}

func TestEvaluateForceFPRAS(t *testing.T) {
	q := cq.StarQuery("R", 2)
	h := gen.Instance(q, gen.Config{FactsPerRelation: 2, DomainSize: 3, Seed: 4})
	res, err := Evaluate(q, h, Options{Epsilon: 0.1, Seed: 1, ForceFPRAS: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodFPRASTree {
		t.Errorf("ForceFPRAS routed to %v", res.Method)
	}
}

func TestEvaluateRejectsSelfJoins(t *testing.T) {
	q := cq.MustParse("R(x,y), R(y,z)")
	h := pdb.Empty()
	h.Add(pdb.NewFact("R", "a", "b"), pdb.ProbHalf)
	_, err := Evaluate(q, h, Options{})
	if !errors.Is(err, ErrUnsupported) {
		t.Errorf("err = %v, want ErrUnsupported", err)
	}
}

func TestPathEstimateRejectsNonPath(t *testing.T) {
	if _, err := PathEstimate(cq.StarQuery("R", 2), pdb.NewDatabase(), Options{}); err == nil {
		t.Error("non-path accepted")
	}
}

func TestPathPQEEstimateAgainstBruteForce(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		n := 2 + trial%2
		q := cq.PathQuery("R", n)
		h := gen.SparsePathInstance(q, 2, 1, gen.ProbRandomRational, int64(trial+21))
		want, _ := exact.MustPQE(q, h).Float64()
		got, err := PathPQEEstimate(q, h, Options{Epsilon: 0.1, Seed: int64(trial + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if want == 0 {
			if got != 0 {
				t.Errorf("trial %d: exact 0, estimate %v", trial, got)
			}
			continue
		}
		ratio := got / want
		if ratio < 0.75 || ratio > 1.25 {
			t.Errorf("trial %d: estimate %v vs exact %v (ratio %.3f)", trial, got, want, ratio)
		}
	}
}

func TestPathPQEMatchesTreePipeline(t *testing.T) {
	q := cq.PathQuery("R", 3)
	h := gen.SparsePathInstance(q, 2, 1, gen.ProbRandomRational, 31)
	tree, err := PQEEstimate(q, h, Options{Epsilon: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	str, err := PathPQEEstimate(q, h, Options{Epsilon: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tree == 0 || str == 0 {
		t.Fatalf("degenerate instance: tree=%v string=%v", tree, str)
	}
	if r := str / tree; r < 0.75 || r > 1.25 {
		t.Errorf("pipelines disagree: tree=%v string=%v", tree, str)
	}
}

func TestPathPQEEstimateRejectsNonPath(t *testing.T) {
	h := gen.Instance(cq.StarQuery("R", 2), gen.Config{Seed: 1})
	if _, err := PathPQEEstimate(cq.StarQuery("R", 2), h, Options{}); err == nil {
		t.Error("non-path accepted")
	}
}

func TestPQEEstimateH0Query(t *testing.T) {
	// H₀ = R(x), S(x,y), T(y): the canonical #P-hard query of the
	// Dalvi–Suciu dichotomy, with mixed arities (unary + binary).
	q := cq.MustParse("R(x), S(x,y), T(y)")
	h := pdb.Empty()
	h.Add(pdb.NewFact("R", "a"), pdb.NewProb(1, 2))
	h.Add(pdb.NewFact("R", "b"), pdb.NewProb(2, 3))
	h.Add(pdb.NewFact("S", "a", "u"), pdb.NewProb(3, 4))
	h.Add(pdb.NewFact("S", "b", "v"), pdb.NewProb(1, 3))
	h.Add(pdb.NewFact("S", "a", "v"), pdb.NewProb(1, 2))
	h.Add(pdb.NewFact("T", "u"), pdb.NewProb(4, 5))
	h.Add(pdb.NewFact("T", "v"), pdb.NewProb(1, 5))
	want, _ := exact.MustPQE(q, h).Float64()
	got, err := PQEEstimate(q, h, Options{Epsilon: 0.1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if want == 0 {
		t.Fatal("degenerate H0 instance")
	}
	if r := got / want; r < 0.8 || r > 1.2 {
		t.Errorf("H0 estimate %v vs exact %v", got, want)
	}
}

func TestUREstimateZeroAryAtom(t *testing.T) {
	// 0-ary atoms are degenerate but legal: Flag() either holds or not.
	q := cq.MustParse("Flag(), R(x)")
	d := pdb.FromFacts(
		pdb.NewFact("Flag"),
		pdb.NewFact("R", "a"),
		pdb.NewFact("R", "b"),
	)
	want := exact.MustUR(q, d) // Flag present AND ≥1 R fact: 1 × 3 = 3
	got, err := UREstimate(q, d, Options{Epsilon: 0.1, Seed: 2})
	if err != nil {
		t.Fatalf("0-ary atom rejected: %v", err)
	}
	wantF, _ := new(big.Float).SetInt(want).Float64()
	if r := got.Float() / wantF; r < 0.8 || r > 1.2 {
		t.Errorf("estimate %v vs UR %v", got, want)
	}
}

func TestPQEEstimateWideAtom(t *testing.T) {
	// Ternary atoms exercise non-binary schema support end to end.
	q := cq.MustParse("R(x,y,z), S(z)")
	h := pdb.Empty()
	h.Add(pdb.NewFact("R", "a", "b", "c"), pdb.NewProb(1, 2))
	h.Add(pdb.NewFact("R", "a", "a", "d"), pdb.NewProb(1, 3))
	h.Add(pdb.NewFact("S", "c"), pdb.NewProb(2, 3))
	h.Add(pdb.NewFact("S", "d"), pdb.NewProb(1, 4))
	want, _ := exact.MustPQE(q, h).Float64()
	got, err := PQEEstimate(q, h, Options{Epsilon: 0.1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if r := got / want; r < 0.8 || r > 1.2 {
		t.Errorf("estimate %v vs exact %v", got, want)
	}
}

func TestUREstimateRepeatedVariableAtom(t *testing.T) {
	// R(x,x) forces loop facts only.
	q := cq.MustParse("R(x,x), S(x)")
	d := pdb.FromFacts(
		pdb.NewFact("R", "a", "a"),
		pdb.NewFact("R", "a", "b"), // not a loop: cannot witness
		pdb.NewFact("S", "a"),
	)
	want := exact.MustUR(q, d) // R(a,a) and S(a) present, R(a,b) free: 2
	got, err := UREstimate(q, d, Options{Epsilon: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	wantF, _ := new(big.Float).SetInt(want).Float64()
	if r := got.Float() / wantF; r < 0.8 || r > 1.2 {
		t.Errorf("estimate %v vs UR %v", got, want)
	}
}

func TestUREstimateFourCycleWidthTwo(t *testing.T) {
	q := cq.CycleQuery("C", 4)
	h := gen.Instance(q, gen.Config{FactsPerRelation: 2, DomainSize: 2, Seed: 11})
	d := h.DB()
	want := exact.MustUR(q, d)
	got, err := UREstimate(q, d, Options{Epsilon: 0.1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if want.Sign() == 0 {
		if !got.IsZero() {
			t.Errorf("UR 0, estimate %v", got)
		}
		return
	}
	wantF, _ := new(big.Float).SetInt(want).Float64()
	if r := got.Float() / wantF; r < 0.75 || r > 1.25 {
		t.Errorf("estimate %v vs UR %v", got, want)
	}
}

func TestExplainSafeRoute(t *testing.T) {
	q := cq.StarQuery("S", 2)
	h := gen.Instance(q, gen.Config{FactsPerRelation: 2, DomainSize: 2, Seed: 1})
	r, err := Explain(q, h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Route != MethodSafePlan {
		t.Errorf("route = %v", r.Route)
	}
	if s := r.String(); !strings.Contains(s, "safe=true") || !strings.Contains(s, "no automaton") {
		t.Errorf("report: %s", s)
	}
}

func TestExplainFPRASRoute(t *testing.T) {
	q := cq.PathQuery("R", 3)
	h := gen.SparsePathInstance(q, 2, 1, gen.ProbRandomRational, 2)
	r, err := Explain(q, h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Route != MethodFPRASTree {
		t.Errorf("route = %v", r.Route)
	}
	if r.AutoStates == 0 || r.FinalTransitions == 0 || r.TreeSize < h.Size() {
		t.Errorf("report incomplete: %+v", r)
	}
	if r.DigitNodes != r.TreeSize-h.Size() {
		t.Errorf("digit accounting wrong: %+v", r)
	}
	s := r.String()
	for _, want := range []string{"decomposition:", "weighted NFTA", "counted tree size"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestExplainUnsupported(t *testing.T) {
	q := cq.MustParse("R(x,y), R(y,z)")
	h := pdb.Empty()
	h.Add(pdb.NewFact("R", "a", "b"), pdb.ProbHalf)
	if _, err := Explain(q, h, Options{}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("err = %v", err)
	}
}

func TestUREstimateGridQueryWidthTwo(t *testing.T) {
	// A 2×3 grid of variables with one relation per edge (7 atoms):
	// cyclic, ghw 2 — a heavier det-k-decomp + Proposition 1 stress
	// test than the triangle.
	//
	//  a - b - c
	//  |   |   |
	//  d - e - f
	q := cq.MustParse("H1(a,b), H2(b,c), H3(d,e), H4(e,f), V1(a,d), V2(b,e), V3(c,f)")
	class := Classify(q, 0)
	if !class.BoundedHW || class.Width > 2 {
		t.Fatalf("grid classified %+v", class)
	}
	// A database containing one grid plus a distractor edge.
	h := pdb.Empty()
	for _, f := range []struct {
		rel  string
		a, b string
	}{
		{"H1", "1", "2"}, {"H2", "2", "3"}, {"H3", "4", "5"}, {"H4", "5", "6"},
		{"V1", "1", "4"}, {"V2", "2", "5"}, {"V3", "3", "6"},
		{"H1", "9", "8"},
	} {
		h.Add(pdb.NewFact(f.rel, f.a, f.b), pdb.ProbHalf)
	}
	d := h.DB()
	want := exact.MustUR(q, d)
	got, err := UREstimate(q, d, Options{Epsilon: 0.1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	wantF, _ := new(big.Float).SetInt(want).Float64()
	if r := got.Float() / wantF; r < 0.8 || r > 1.2 {
		t.Errorf("grid estimate %v vs UR %v", got, want)
	}
}

func TestPQEEstimateSnowflake(t *testing.T) {
	// A 2-arm depth-1 snowflake: the smallest analytics-shaped query.
	q := cq.SnowflakeQuery("S", 2, 1)
	h := pdb.Empty()
	h.Add(pdb.NewFact("SC", "a", "b"), pdb.NewProb(3, 4))
	h.Add(pdb.NewFact("SC", "a", "c"), pdb.NewProb(1, 2))
	h.Add(pdb.NewFact("SD1_1", "a", "d1"), pdb.NewProb(2, 3))
	h.Add(pdb.NewFact("SD2_1", "b", "d2"), pdb.NewProb(1, 2))
	h.Add(pdb.NewFact("SD2_1", "c", "d2"), pdb.NewProb(1, 3))
	want, _ := exact.MustPQE(q, h).Float64()
	got, err := PQEEstimate(q, h, Options{Epsilon: 0.1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if want == 0 {
		t.Fatal("degenerate snowflake instance")
	}
	if r := got / want; r < 0.8 || r > 1.2 {
		t.Errorf("snowflake estimate %v vs exact %v", got, want)
	}
}

func TestUREstimateTwoTrianglesSharedVertex(t *testing.T) {
	// Width-2 decomposition with genuine branching: two triangles glued
	// at x exercise multi-child consistency in the Proposition 1
	// construction.
	q := cq.MustParse("A1(x,y), A2(y,z), A3(z,x), B1(x,u), B2(u,v), B3(v,x)")
	h := pdb.Empty()
	for _, f := range []struct {
		rel  string
		a, b string
	}{
		{"A1", "p", "q"}, {"A2", "q", "r"}, {"A3", "r", "p"},
		{"B1", "p", "s"}, {"B2", "s", "t"}, {"B3", "t", "p"},
		{"A1", "p", "w"}, // distractor
	} {
		h.Add(pdb.NewFact(f.rel, f.a, f.b), pdb.ProbHalf)
	}
	d := h.DB()
	want := exact.MustUR(q, d)
	got, err := UREstimate(q, d, Options{Epsilon: 0.1, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	wantF, _ := new(big.Float).SetInt(want).Float64()
	if r := got.Float() / wantF; r < 0.8 || r > 1.2 {
		t.Errorf("estimate %v vs UR %v", got, want)
	}
}

func TestUREstimateForeignFactScaling(t *testing.T) {
	// Tree-pipeline analogue of the PathEstimate foreign-fact test:
	// UR(Q, D ⊎ {k foreign facts}) = UR(Q, D) · 2^k.
	q := cq.StarQuery("S", 2)
	base := pdb.FromFacts(
		pdb.NewFact("S1", "h", "a"),
		pdb.NewFact("S2", "h", "b"),
	)
	withForeign := base.Clone()
	withForeign.Add(pdb.NewFact("Zed", "1"))
	withForeign.Add(pdb.NewFact("Zed", "2"))
	withForeign.Add(pdb.NewFact("Zed", "3"))

	got, err := UREstimate(q, withForeign, Options{Epsilon: 0.05, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := exact.MustUR(q, withForeign) // = 1 · 2^3 = 8
	wantF, _ := new(big.Float).SetInt(want).Float64()
	if r := got.Float() / wantF; r < 0.85 || r > 1.15 {
		t.Errorf("estimate %v vs UR %v", got, want)
	}
}
