package core

import (
	"fmt"
	"math/big"

	"pqe/internal/lineage"
	"pqe/internal/montecarlo"
	"pqe/internal/obdd"
	"pqe/internal/router"
	"pqe/internal/safeplan"
)

// forcedLineageLimit caps lineage enumeration when the lineage route is
// forced (under auto routing the witness bound already guarantees a
// small lineage). Well above the auto threshold, as a hard stop against
// runaway enumeration rather than a cost decision.
const forcedLineageLimit = 1 << 20

// maxOBDDNodes bounds OBDD compilation; past it the dispatch falls back
// to Shannon-expansion WMC (still exact).
const maxOBDDNodes = 1 << 17

// routerClass mirrors the classification into the router's input type.
func routerClass(c Classification) router.Class {
	return router.Class{
		SelfJoinFree: c.SelfJoinFree,
		BoundedHW:    c.BoundedHW,
		Safe:         c.Safe,
		Path:         c.Path,
		Width:        c.Width,
	}
}

// routeDecision returns the session's memoized auto-routing decision,
// recomputed after any structural invalidation (the decision reads fact
// counts, which deltas change).
func (e *Estimator) routeDecision() router.Decision {
	if e.routeDec == nil {
		d := router.Decide(e.q, e.proj(), routerClass(e.Class()), router.Config{})
		e.routeDec = &d
	}
	return *e.routeDec
}

// decideStrategy resolves the Strategy knob of one Evaluate call into a
// routing decision: the memoized auto decision, or a forced strategy.
func (e *Estimator) decideStrategy(strategy string) (router.Decision, error) {
	st, err := router.Parse(strategy)
	if err != nil {
		return router.Decision{}, err
	}
	if st == router.Auto {
		return e.routeDecision(), nil
	}
	return router.Decision{
		Strategy:     st,
		Exact:        st == router.SafePlan || st == router.OBDD || st == router.Lineage,
		Reason:       "forced by Strategy option",
		WitnessBound: -1,
	}, nil
}

// evaluateRouted is the strategy-routing arm of Evaluate: resolve the
// decision, emit the dispatch telemetry, run the chosen engine, and
// attribute the trials the anytime certificate saved.
func (e *Estimator) evaluateRouted(strategy string, opts Options) (Result, error) {
	dec, err := e.decideStrategy(strategy)
	if err != nil {
		return Result{}, err
	}
	sc := e.scope(opts)
	_, span := sc.Span("router.dispatch")
	if span != nil {
		span.SetAttr("strategy", string(dec.Strategy))
		span.SetAttr("reason", dec.Reason)
		span.SetAttr("exact", dec.Exact)
	}
	defer span.End()
	reg := sc.Registry()
	var savedBefore int64
	if reg != nil {
		reg.Counter("router_dispatch_total").Inc()
		reg.Counter("router_dispatch_" + string(dec.Strategy) + "_total").Inc()
		savedBefore = reg.Counter("countnfta_trials_saved_total").Value() +
			reg.Counter("countnfa_trials_saved_total").Value()
	}
	res, err := e.runStrategy(dec, opts)
	if reg != nil {
		savedAfter := reg.Counter("countnfta_trials_saved_total").Value() +
			reg.Counter("countnfa_trials_saved_total").Value()
		reg.Counter("router_trials_saved_total").Add(savedAfter - savedBefore)
	}
	res.Reason = dec.Reason
	return res, err
}

// runStrategy executes one routing decision over the session's caches.
func (e *Estimator) runStrategy(dec router.Decision, opts Options) (Result, error) {
	class := e.Class()
	switch dec.Strategy {
	case router.SafePlan:
		p, err := safeplan.Evaluate(e.q, e.h)
		if err != nil {
			return Result{Class: class}, err
		}
		f, _ := p.Float64()
		return Result{Probability: f, Exact: true, Method: MethodSafePlan, Class: class}, nil
	case router.OBDD, router.Lineage:
		return e.lineageWMC(dec, class, opts)
	case router.NFTA:
		if !class.SelfJoinFree || !class.BoundedHW {
			return Result{Class: class}, fmt.Errorf("%w: %q (self-join-free=%v, bounded-width=%v)",
				ErrUnsupported, e.q, class.SelfJoinFree, class.BoundedHW)
		}
		p, err := e.PQEEstimate(opts)
		if err != nil {
			return Result{Class: class}, err
		}
		return Result{Probability: p, Method: MethodFPRASTree, Class: class}, nil
	case router.PathNFA:
		p, err := e.PathPQEEstimate(opts)
		if err != nil {
			return Result{Class: class}, err
		}
		return Result{Probability: p, Method: MethodFPRASPath, Class: class}, nil
	case router.MonteCarlo:
		p := montecarlo.Estimate(e.q, e.h, montecarlo.Options{
			Samples: opts.Samples,
			Seed:    opts.seed(),
		})
		return Result{Probability: p, Method: MethodMonteCarlo, Class: class}, nil
	default:
		return Result{Class: class}, fmt.Errorf("%w: %q (%s)", ErrUnsupported, e.q, dec.Reason)
	}
}

// lineageWMC answers exactly by weighted model counting over the DNF
// lineage: OBDD compilation when the decision asked for it (falling
// back to Shannon expansion — still exact — past the node budget),
// Shannon expansion directly otherwise.
func (e *Estimator) lineageWMC(dec router.Decision, class Classification, opts Options) (Result, error) {
	sc := e.scope(opts)
	_, span := sc.Span("router.lineage_wmc")
	defer span.End()
	limit := forcedLineageLimit
	if dec.WitnessBound > 0 {
		limit = int(dec.WitnessBound)
	}
	f, err := lineage.Compute(e.q, e.proj(), limit)
	if err != nil {
		return Result{Class: class}, err
	}
	if span != nil {
		span.SetAttr("clauses", f.NumClauses())
	}
	var p *big.Rat
	method := MethodLineage
	if dec.Strategy == router.OBDD {
		if o, oerr := obdd.CompileDNF(f, maxOBDDNodes); oerr == nil {
			p = o.WMC(e.projProb())
			method = MethodOBDD
		} else if reg := sc.Registry(); reg != nil {
			reg.Counter("router_obdd_fallbacks_total").Inc()
		}
	}
	if p == nil {
		p = f.WMCExact(e.projProb())
	}
	pf, _ := p.Float64()
	return Result{Probability: pf, Exact: true, Method: method, Class: class}, nil
}
