package core

import (
	"math"
	"math/big"
	"testing"

	"pqe/internal/cq"
	"pqe/internal/pdb"
)

// pathInstance builds a 3-path query and a small probabilistic database
// on which it is unsafe (so the FPRAS route is exercised).
func pathInstance(t *testing.T) (*cq.Query, *pdb.Probabilistic) {
	t.Helper()
	q := cq.PathQuery("R", 3)
	h := pdb.Empty()
	add := func(rel, a, b string, num, den int64) {
		h.Add(pdb.NewFact(rel, a, b), pdb.ProbFromRat(big.NewRat(num, den)))
	}
	add("R1", "a", "b", 1, 2)
	add("R1", "a", "c", 2, 3)
	add("R2", "b", "d", 3, 4)
	add("R2", "c", "d", 1, 3)
	add("R3", "d", "e", 4, 5)
	add("R3", "d", "f", 1, 2)
	return q, h
}

// The cache-hit contract: repeated evaluations on one Estimator run
// every construction stage exactly once.
func TestEstimatorCachesConstruction(t *testing.T) {
	q, h := pathInstance(t)
	opts := Options{Epsilon: 0.2, Trials: 3, Seed: 5}
	est := NewEstimator(q, h, opts)

	first, err := est.PQEEstimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := est.PQEEstimate(opts)
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Errorf("re-evaluation drifted: %v vs %v", again, first)
		}
	}
	if _, err := est.PathPQEEstimate(opts); err != nil {
		t.Fatal(err)
	}
	if _, err := est.PathPQEEstimate(opts); err != nil {
		t.Fatal(err)
	}
	if _, err := est.PathEstimate(opts); err != nil {
		t.Fatal(err)
	}
	if _, err := est.Evaluate(Options{Epsilon: 0.2, Trials: 3, Seed: 5, ForceFPRAS: true}); err != nil {
		t.Fatal(err)
	}

	st := est.BuildStats()
	want := BuildStats{Decompositions: 1, URReductions: 1, PathAutomata: 1, Weightings: 2}
	if st != want {
		t.Errorf("BuildStats = %+v, want %+v", st, want)
	}
}

// SetProbabilities must invalidate only the weightings: the cached
// decomposition and base automata survive, and the re-weighted estimate
// matches a from-scratch estimator on the new instance.
func TestEstimatorSetProbabilitiesReweightsOnly(t *testing.T) {
	q, h := pathInstance(t)
	opts := Options{Epsilon: 0.2, Trials: 3, Seed: 5}
	est := NewEstimator(q, h, opts)
	if _, err := est.PQEEstimate(opts); err != nil {
		t.Fatal(err)
	}
	if _, err := est.PathPQEEstimate(opts); err != nil {
		t.Fatal(err)
	}

	h2 := h.WithProb(pdb.NewFact("R1", "a", "b"), pdb.ProbFromRat(big.NewRat(9, 10)))
	if err := est.SetProbabilities(h2); err != nil {
		t.Fatal(err)
	}
	got, err := est.PQEEstimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := PQEEstimate(q, h2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got != fresh {
		t.Errorf("re-weighted estimate %v != fresh estimator %v", got, fresh)
	}
	gotPath, err := est.PathPQEEstimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	freshPath, err := PathPQEEstimate(q, h2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotPath-freshPath) > 1e-12 {
		t.Errorf("re-weighted path estimate %v != fresh %v", gotPath, freshPath)
	}

	st := est.BuildStats()
	want := BuildStats{Decompositions: 1, URReductions: 1, PathAutomata: 1, Weightings: 4}
	if st != want {
		t.Errorf("BuildStats after SetProbabilities = %+v, want %+v", st, want)
	}
}

// SetProbabilities with a changed fact set must rebuild the
// database-keyed caches, not rebind probabilities onto stale automata.
// BuildStats is the witness: URReductions and PathAutomata run again,
// while the query-keyed decomposition survives.
func TestEstimatorSetProbabilitiesRebuildsOnChangedFacts(t *testing.T) {
	q, h := pathInstance(t)
	opts := Options{Epsilon: 0.2, Trials: 3, Seed: 5}
	est := NewEstimator(q, h, opts)
	if _, err := est.PQEEstimate(opts); err != nil {
		t.Fatal(err)
	}
	if _, err := est.PathPQEEstimate(opts); err != nil {
		t.Fatal(err)
	}

	// Grow the fact set: one extra R3 edge changes the automata.
	h2 := h.WithProb(pdb.NewFact("R1", "a", "b"), pdb.ProbHalf)
	h2.Add(pdb.NewFact("R3", "d", "g"), pdb.ProbFromRat(big.NewRat(1, 4)))
	if err := est.SetProbabilities(h2); err != nil {
		t.Fatal(err)
	}
	got, err := est.PQEEstimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := PQEEstimate(q, h2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got != fresh {
		t.Errorf("rebuilt estimate %v != fresh estimator %v", got, fresh)
	}
	gotPath, err := est.PathPQEEstimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	freshPath, err := PathPQEEstimate(q, h2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if gotPath != freshPath {
		t.Errorf("rebuilt path estimate %v != fresh %v", gotPath, freshPath)
	}

	st := est.BuildStats()
	want := BuildStats{Decompositions: 1, URReductions: 2, PathAutomata: 2, Weightings: 4}
	if st != want {
		t.Errorf("BuildStats after changed-fact rebuild = %+v, want %+v", st, want)
	}
}

// A permutation of the same fact set must also rebuild: the automaton
// constructions encode the fact ordering (the paper's ≺ᵢ), so automata
// built over one ordering are invalid for another.
func TestEstimatorSetProbabilitiesRebuildsOnReorderedFacts(t *testing.T) {
	q, h := pathInstance(t)
	opts := Options{Epsilon: 0.2, Trials: 3, Seed: 5}
	est := NewEstimator(q, h, opts)
	if _, err := est.PQEEstimate(opts); err != nil {
		t.Fatal(err)
	}

	// Same facts and probabilities, reversed insertion order.
	facts := h.DB().Facts()
	rev := pdb.Empty()
	for i := len(facts) - 1; i >= 0; i-- {
		rev.Add(facts[i], h.ProbAt(i))
	}
	if err := est.SetProbabilities(rev); err != nil {
		t.Fatal(err)
	}
	got, err := est.PQEEstimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := PQEEstimate(q, rev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got != fresh {
		t.Errorf("reordered estimate %v != fresh estimator %v", got, fresh)
	}
	st := est.BuildStats()
	if st.URReductions != 2 {
		t.Errorf("URReductions = %d after reorder, want 2 (rebuild)", st.URReductions)
	}
	if st.Decompositions != 1 {
		t.Errorf("Decompositions = %d after reorder, want 1 (query-keyed cache survives)", st.Decompositions)
	}
}

// An identical fact set in the identical order stays a rebind even when
// passed through a fresh pdb value: no probability-independent stage
// reruns.
func TestEstimatorSetProbabilitiesSameFactsStaysRebind(t *testing.T) {
	q, h := pathInstance(t)
	opts := Options{Epsilon: 0.2, Trials: 3, Seed: 5}
	est := NewEstimator(q, h, opts)
	if _, err := est.PQEEstimate(opts); err != nil {
		t.Fatal(err)
	}
	copyH := pdb.Empty()
	for i, f := range h.DB().Facts() {
		copyH.Add(f, h.ProbAt(i))
	}
	if err := est.SetProbabilities(copyH); err != nil {
		t.Fatal(err)
	}
	if _, err := est.PQEEstimate(opts); err != nil {
		t.Fatal(err)
	}
	st := est.BuildStats()
	want := BuildStats{Decompositions: 1, URReductions: 1, Weightings: 2}
	if st != want {
		t.Errorf("BuildStats after same-fact rebind = %+v, want %+v", st, want)
	}
}

// The one-shot wrappers must agree with a session estimator given the
// same options (they are the same code path).
func TestEstimatorMatchesOneShot(t *testing.T) {
	q, h := pathInstance(t)
	opts := Options{Epsilon: 0.2, Trials: 3, Seed: 11}
	est := NewEstimator(q, h, opts)
	a, err := est.PQEEstimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PQEEstimate(q, h, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("session %v != one-shot %v", a, b)
	}
	ur1, err := est.UREstimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	ur2, err := UREstimate(q, h.DB(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if ur1.Cmp(ur2) != 0 {
		t.Errorf("session UR %v != one-shot %v", ur1, ur2)
	}
	p1, err := est.PathEstimate(opts)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := PathEstimate(q, h.DB(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Cmp(p2) != 0 {
		t.Errorf("session path UR %v != one-shot %v", p1, p2)
	}
}

func TestUREstimatorRejectsProbabilityMethods(t *testing.T) {
	q, h := pathInstance(t)
	est := NewUREstimator(q, h.DB(), Options{})
	if _, err := est.PQEEstimate(Options{}); err == nil {
		t.Error("PQEEstimate on a UR-only estimator did not error")
	}
	if err := est.SetProbabilities(h); err == nil {
		t.Error("SetProbabilities on a UR-only estimator did not error")
	}
}
