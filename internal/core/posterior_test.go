package core

import (
	"math/big"
	"testing"

	"pqe/internal/cq"
	"pqe/internal/exact"
	"pqe/internal/pdb"
)

// exactPosterior computes Pr(f | Q) by brute force.
func exactPosterior(q *cq.Query, h *pdb.Probabilistic, f pdb.Fact) float64 {
	idx := h.DB().IndexOf(f)
	prQ := exact.MustPQE(q, h)
	joint := new(big.Rat)
	n := h.Size()
	mask := make([]bool, n)
	for m := 0; m < 1<<uint(n); m++ {
		for i := range mask {
			mask[i] = m&(1<<uint(i)) != 0
		}
		if mask[idx] && cq.Satisfies(h.DB().Subinstance(mask), q) {
			joint.Add(joint, h.SubinstanceProb(mask))
		}
	}
	post := new(big.Rat).Quo(joint, prQ)
	v, _ := post.Float64()
	return v
}

func TestPosteriorInclusionAgainstBruteForce(t *testing.T) {
	q := cq.PathQuery("R", 2)
	h := pdb.Empty()
	h.Add(pdb.NewFact("R1", "a", "b"), pdb.NewProb(1, 2))
	h.Add(pdb.NewFact("R2", "b", "c"), pdb.NewProb(1, 4))
	h.Add(pdb.NewFact("R2", "b", "d"), pdb.NewProb(3, 4))
	for _, f := range h.DB().Facts() {
		want := exactPosterior(q, h, f)
		got, err := PosteriorInclusion(q, h, f, Options{Epsilon: 0.05, Seed: 7})
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if r := got / want; r < 0.85 || r > 1.15 {
			t.Errorf("posterior(%v) = %v, want %v", f, got, want)
		}
	}
}

func TestPosteriorInclusionForcedFact(t *testing.T) {
	// The only R1 fact must be present whenever Q holds: posterior 1.
	q := cq.PathQuery("R", 2)
	h := pdb.Empty()
	h.Add(pdb.NewFact("R1", "a", "b"), pdb.NewProb(1, 3))
	h.Add(pdb.NewFact("R2", "b", "c"), pdb.NewProb(1, 2))
	got, err := PosteriorInclusion(q, h, pdb.NewFact("R1", "a", "b"), Options{Epsilon: 0.05, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.9 || got > 1.0 {
		t.Errorf("posterior of a forced fact = %v, want ≈ 1", got)
	}
}

func TestPosteriorInclusionFreeFact(t *testing.T) {
	// Facts outside the query keep their prior.
	q := cq.MustParse("R(x)")
	h := pdb.Empty()
	h.Add(pdb.NewFact("R", "a"), pdb.ProbHalf)
	h.Add(pdb.NewFact("Z", "q"), pdb.NewProb(2, 7))
	got, err := PosteriorInclusion(q, h, pdb.NewFact("Z", "q"), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 / 7.0
	if got < want-1e-9 || got > want+1e-9 {
		t.Errorf("free-fact posterior = %v, want prior %v", got, want)
	}
}

func TestPosteriorInclusionErrors(t *testing.T) {
	q := cq.MustParse("R(x)")
	h := pdb.Empty()
	h.Add(pdb.NewFact("R", "a"), pdb.NewProb(0, 1))
	if _, err := PosteriorInclusion(q, h, pdb.NewFact("R", "missing"), Options{Seed: 1}); err == nil {
		t.Error("unknown fact accepted")
	}
	// Pr(Q) = 0: posterior undefined.
	if _, err := PosteriorInclusion(q, h, pdb.NewFact("R", "a"), Options{Seed: 1}); err == nil {
		t.Error("undefined posterior accepted")
	}
}

func TestPosteriorZeroProbabilityFact(t *testing.T) {
	q := cq.MustParse("R(x)")
	h := pdb.Empty()
	h.Add(pdb.NewFact("R", "a"), pdb.ProbHalf)
	h.Add(pdb.NewFact("R", "z"), pdb.NewProb(0, 1))
	got, err := PosteriorInclusion(q, h, pdb.NewFact("R", "z"), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("posterior of impossible fact = %v", got)
	}
}
