package core

import (
	"fmt"

	"pqe/internal/cq"
	"pqe/internal/pdb"
)

// EvaluateUnion computes the probability of a union of conjunctive
// queries Q₁ ∨ … ∨ Q_k whose disjuncts use pairwise-disjoint relation
// sets. Under tuple independence, disjoint vocabularies make the
// disjunct events independent, so
//
//	Pr(∨ᵢ Qᵢ) = 1 − ∏ᵢ (1 − Pr(Qᵢ))
//
// with each Pr(Qᵢ) computed by Evaluate (exact safe plan or FPRAS).
//
// This is a deliberately restricted UCQ layer: the Dalvi–Suciu
// dichotomy [11] covers arbitrary UCQs, but disjuncts sharing
// relations correlate through shared facts — evaluating those is
// effectively the self-join problem, an open cell of Table 1 — so
// overlapping vocabularies are rejected.
func EvaluateUnion(qs []*cq.Query, h *pdb.Probabilistic, opts Options) (float64, error) {
	if len(qs) == 0 {
		return 0, fmt.Errorf("core: empty union")
	}
	seen := make(map[string]int)
	for i, q := range qs {
		if err := q.Validate(); err != nil {
			return 0, err
		}
		for r := range q.RelationSet() {
			if j, ok := seen[r]; ok {
				return 0, fmt.Errorf("%w: disjuncts %d and %d share relation %s (correlated disjuncts are the self-join problem)",
					ErrUnsupported, j, i, r)
			}
			seen[r] = i
		}
	}
	miss := 1.0
	for _, q := range qs {
		res, err := Evaluate(q, h, opts)
		if err != nil {
			return 0, err
		}
		miss *= 1 - res.Probability
	}
	return 1 - miss, nil
}
