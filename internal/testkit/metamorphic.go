package testkit

import (
	"errors"
	"fmt"
	"math/big"
	"strings"

	"pqe/internal/core"
	"pqe/internal/cq"
	"pqe/internal/exact"
	"pqe/internal/obs"
	"pqe/internal/pdb"
	"pqe/internal/splitmix"
)

// Metamorphic derivation sites (disjoint from the differential sites in
// runner.go).
const (
	siteMonotone uint64 = 0x40 + iota
	siteRebind
	siteWorkers
	siteRelabel
	siteUnion
	siteDelta
	siteRouteDet
	siteAnytime
)

// unionMaxFacts gates the union-bound property: it enumerates the
// combined database of two instances exactly, so 2^(2·unionMaxFacts)
// worlds must stay cheap.
const unionMaxFacts = 8

// RunMetamorphic checks the case against properties that relate runs to
// each other rather than to an oracle — the contracts a differential
// check cannot see. Statistical properties charge b; bit-identity and
// exact properties do not.
func RunMetamorphic(c *Case, cfg Config, b *Budget) error {
	if err := checkMonotone(c); err != nil {
		return fmt.Errorf("monotone: %w", err)
	}
	if err := checkRebind(c, cfg); err != nil {
		return fmt.Errorf("rebind: %w", err)
	}
	if err := checkWorkersIdentity(c, cfg); err != nil {
		return fmt.Errorf("workers: %w", err)
	}
	if err := checkRelabel(c, cfg); err != nil {
		return fmt.Errorf("relabel: %w", err)
	}
	if err := checkUnionBound(c, cfg, b); err != nil {
		return fmt.Errorf("union: %w", err)
	}
	if err := checkDeltaIncremental(c, cfg); err != nil {
		return fmt.Errorf("delta: %w", err)
	}
	if err := checkRouteDeterministic(c, cfg); err != nil {
		return fmt.Errorf("route-deterministic: %w", err)
	}
	if err := checkAnytime(c, cfg, b); err != nil {
		return fmt.Errorf("anytime: %w", err)
	}
	return nil
}

// checkMonotone: raising one fact's probability must not lower the
// exact query probability (PQE is monotone in every fact probability).
// Checked on the oracle — it guards the oracle and the generators, and
// it is the property the shrinker relies on to keep failures failing.
func checkMonotone(c *Case) error {
	if c.H.Size() == 0 {
		return nil
	}
	base, err := exact.PQE(c.Query, c.H)
	if err != nil {
		return err
	}
	s := splitmix.Derive(c.Seed, siteMonotone, c.Index)
	i := int(s.Uint64() % uint64(c.H.Size()))
	p := c.H.ProbAt(i).Rat()
	// Raise halfway toward 1: (1+p)/2 ≥ p.
	raised := new(big.Rat).Add(p, big.NewRat(1, 1))
	raised.Mul(raised, big.NewRat(1, 2))
	h2 := c.H.WithProb(c.H.DB().Fact(i), pdb.ProbFromRat(raised))
	bumped, err := exact.PQE(c.Query, h2)
	if err != nil {
		return err
	}
	if bumped.Cmp(base) < 0 {
		return fmt.Errorf("raising fact %d's probability %v→%v dropped Pr(Q) %v→%v",
			i, p, raised, base, bumped)
	}
	return nil
}

// checkRebind: an estimator session rebound to new probabilities via
// SetProbabilities must produce bit-identical results to a fresh
// estimator built on the new instance — the session cache must be
// invisible to outputs.
func checkRebind(c *Case, cfg Config) error {
	if c.H.Size() == 0 {
		return nil
	}
	opts := core.Options{Epsilon: cfg.Epsilon, Trials: cfg.Trials, Seed: evalSeed(c, siteRebind, 0), Obs: cfg.Obs}
	est := core.NewEstimator(c.Query, c.H, opts)
	if _, err := est.PQEEstimate(opts); err != nil {
		return skipUnsupported(err)
	}
	s := splitmix.Derive(c.Seed, siteRebind, c.Index)
	i := int(s.Uint64() % uint64(c.H.Size()))
	h2 := c.H.WithProb(c.H.DB().Fact(i), pdb.ProbFromRat(big.NewRat(1, 3)))
	if err := est.SetProbabilities(h2); err != nil {
		return err
	}
	rebound, err := est.PQEEstimate(opts)
	if err != nil {
		return err
	}
	fresh, err := core.PQEEstimate(c.Query, h2, opts)
	if err != nil {
		return err
	}
	if rebound != fresh {
		return fmt.Errorf("rebound session %g != fresh estimator %g", rebound, fresh)
	}
	return nil
}

// checkWorkersIdentity: for a fixed seed, results must be bit-identical
// across every MaxProcs setting and every deprecated Workers×Parallel
// combination — the documented contract of the unified scheduler over
// deterministic per-sample splitmix streams.
func checkWorkersIdentity(c *Case, cfg Config) error {
	base := core.Options{Epsilon: cfg.Epsilon, Trials: cfg.Trials, Seed: evalSeed(c, siteWorkers, 0), Obs: cfg.Obs}
	ref, err := core.PQEEstimate(c.Query, c.H, base)
	if err != nil {
		return skipUnsupported(err)
	}
	for _, v := range []struct {
		parallel bool
		workers  int
		maxProcs int
	}{{false, 4, 0}, {true, 1, 0}, {true, 4, 0}, {false, 0, 2}, {false, 0, 8}, {true, 4, 3}} {
		opts := base
		opts.Parallel = v.parallel
		opts.Workers = v.workers
		opts.MaxProcs = v.maxProcs
		got, err := core.PQEEstimate(c.Query, c.H, opts)
		if err != nil {
			return err
		}
		if got != ref {
			return fmt.Errorf("Parallel=%v Workers=%d MaxProcs=%d gives %g, sequential gives %g",
				v.parallel, v.workers, v.maxProcs, got, ref)
		}
	}
	return nil
}

// checkRelabel: consistently renaming every constant must not change
// the estimate at all. Constants never enter an ordering the engines
// depend on — fact order is insertion order, and the renaming is
// order-preserving — so the runs are bit-identical, not just close.
func checkRelabel(c *Case, cfg Config) error {
	relabeled := pdb.Empty()
	rename := func(s string) string { return "k_" + strings.ToUpper(s) }
	for i, f := range c.H.DB().Facts() {
		args := make([]string, len(f.Args))
		for j, a := range f.Args {
			args[j] = rename(a)
		}
		relabeled.Add(pdb.Fact{Relation: f.Relation, Args: args}, c.H.ProbAt(i))
	}
	opts := core.Options{Epsilon: cfg.Epsilon, Trials: cfg.Trials, Seed: evalSeed(c, siteRelabel, 0), Obs: cfg.Obs}
	ref, err := core.PQEEstimate(c.Query, c.H, opts)
	if err != nil {
		return skipUnsupported(err)
	}
	got, err := core.PQEEstimate(c.Query, relabeled, opts)
	if err != nil {
		return err
	}
	if got != ref {
		return fmt.Errorf("constant relabeling changed the estimate: %g vs %g", got, ref)
	}
	return nil
}

// checkUnionBound: for the case query Q1 and a derived second query Q2
// over disjoint relations, exact probabilities must satisfy both
// max(p1,p2) ≤ Pr(Q1∨Q2) and inclusion–exclusion's upper bound
// p1+p2 ≥ Pr(Q1∨Q2), and EvaluateUnion's estimate must agree with the
// exact union probability within tolerance. Gated to tiny instances:
// the union oracle enumerates the combined database.
func checkUnionBound(c *Case, cfg Config, b *Budget) error {
	if c.H.Size() > unionMaxFacts {
		return nil
	}
	// Q2: a one-atom query over a fresh relation, with its own facts.
	q2 := cq.New(cq.NewAtom("Zu", "x"))
	s := splitmix.Derive(c.Seed, siteUnion, c.Index)
	combined := pdb.Empty()
	for i, f := range c.H.DB().Facts() {
		combined.Add(f, c.H.ProbAt(i))
	}
	h2 := pdb.Empty()
	for i := 0; i < 2; i++ {
		f := pdb.NewFact("Zu", fmt.Sprintf("w%d", i))
		p := pdb.ProbFromRat(big.NewRat(int64(1+s.Uint64()%3), 4))
		h2.Add(f, p)
		combined.Add(f, p)
	}
	p1, err := exact.PQE(c.Query, c.H)
	if err != nil {
		return err
	}
	p2, err := exact.PQE(q2, h2)
	if err != nil {
		return err
	}
	pu, err := exact.PQEUnion([]*cq.Query{c.Query, q2}, combined)
	if err != nil {
		return err
	}
	lo := new(big.Rat).Set(p1)
	if p2.Cmp(lo) > 0 {
		lo.Set(p2)
	}
	hi := new(big.Rat).Add(p1, p2)
	if pu.Cmp(lo) < 0 || pu.Cmp(hi) > 0 {
		return fmt.Errorf("exact union %v outside [max=%v, sum=%v]", pu, lo, hi)
	}

	var lastErr error
	for a := 0; a <= cfg.Retries; a++ {
		opts := core.Options{Epsilon: cfg.Epsilon, Trials: cfg.Trials, Seed: evalSeed(c, siteUnion, a), Obs: cfg.Obs}
		est, err := core.EvaluateUnion([]*cq.Query{c.Query, q2}, combined, opts)
		if err != nil {
			lastErr = err
			break
		}
		lastErr = CheckRel(pu, est, cfg.Tolerance())
		if lastErr == nil {
			break
		}
	}
	if lastErr != nil && skipUnsupported(lastErr) == nil {
		return nil
	}
	b.Charge(cfg.checkDelta())
	if lastErr != nil {
		return lastErr
	}
	return nil
}

// checkRouteDeterministic: under Strategy auto the routing decision is
// a pure function of (query, database) — a repeat run through a fresh
// session picks the same strategy for the same reason and returns the
// bit-identical probability, and so does every MaxProcs setting,
// extending the workers-identity contract through the dispatch layer.
func checkRouteDeterministic(c *Case, cfg Config) error {
	opts := core.Options{Epsilon: cfg.Epsilon, Trials: cfg.Trials,
		Seed: evalSeed(c, siteRouteDet, 0), Strategy: "auto", Obs: cfg.Obs}
	ref, err := core.Evaluate(c.Query, c.H, opts)
	if err != nil {
		return skipUnsupported(err)
	}
	again, err := core.Evaluate(c.Query, c.H, opts)
	if err != nil {
		return err
	}
	if again.Method != ref.Method || again.Reason != ref.Reason {
		return fmt.Errorf("routing changed between runs: %v (%q) vs %v (%q)",
			again.Method, again.Reason, ref.Method, ref.Reason)
	}
	if again.Probability != ref.Probability {
		return fmt.Errorf("repeat run gives %g, first gave %g", again.Probability, ref.Probability)
	}
	for _, procs := range []int{2, 8} {
		o := opts
		o.MaxProcs = procs
		got, err := core.Evaluate(c.Query, c.H, o)
		if err != nil {
			return err
		}
		if got.Probability != ref.Probability || got.Method != ref.Method {
			return fmt.Errorf("MaxProcs=%d gives %g via %v, base %g via %v",
				procs, got.Probability, got.Method, ref.Probability, ref.Method)
		}
	}
	return nil
}

// Anytime check knobs: a trial cap high enough that the δ-derived
// floor (≈13 trials at δ=1e-7) leaves the certificate room to stop
// early while still being capped by the fixed schedule.
const (
	anytimeDelta  = 1e-7
	anytimeTrials = 15
)

// anytimeTolerance is the relative error an early-stopped run
// guarantees with failure probability ≤ δ: every kept trial sits
// within the stopping band of a (1±ε)-good one, so the median is off
// by at most (1+ε)²/(1−ε) − 1.
func anytimeTolerance(eps float64) float64 {
	return (1+eps)*(1+eps)/(1-eps) - 1
}

// checkAnytime: a sequentially-stopped estimate must stay inside the
// (ε, δ) envelope its certificate promises — charged to the budget at
// exactly δ — and must never execute more trials than the fixed
// schedule it is capped by; the trials it skips must be accounted as
// saved.
func checkAnytime(c *Case, cfg Config, b *Budget) error {
	exactP, err := exact.PQE(c.Query, c.H)
	if err != nil {
		return err
	}
	seed := evalSeed(c, siteAnytime, 0)
	regA := obs.NewRegistry()
	vA, err := core.PQEEstimate(c.Query, c.H, core.Options{Epsilon: cfg.Epsilon, Trials: anytimeTrials,
		Delta: anytimeDelta, Seed: seed, Obs: obs.NewScope(nil, regA, nil)})
	if err != nil {
		return skipUnsupported(err)
	}
	regF := obs.NewRegistry()
	if _, err := core.PQEEstimate(c.Query, c.H, core.Options{Epsilon: cfg.Epsilon, Trials: anytimeTrials,
		Seed: seed, Obs: obs.NewScope(nil, regF, nil)}); err != nil {
		return err
	}
	ran := regA.Counter("countnfta_trials_total").Value()
	fixed := regF.Counter("countnfta_trials_total").Value()
	if ran > fixed {
		return fmt.Errorf("anytime executed %d trials, fixed schedule %d", ran, fixed)
	}
	if saved := regA.Counter("countnfta_trials_saved_total").Value(); ran+saved != fixed {
		return fmt.Errorf("executed %d + saved %d trials ≠ fixed schedule %d", ran, saved, fixed)
	}
	b.Charge(anytimeDelta)
	if err := CheckRel(exactP, vA, anytimeTolerance(cfg.Epsilon)); err != nil {
		return fmt.Errorf("early-stopped estimate outside its (ε, δ) envelope: %w", err)
	}
	return nil
}

// skipUnsupported maps core.ErrUnsupported to nil (the engine declined
// the instance; nothing to check) and passes real errors through.
func skipUnsupported(err error) error {
	if errors.Is(err, core.ErrUnsupported) {
		return nil
	}
	return err
}
