package testkit

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"

	"pqe"
	"pqe/internal/pdb"
	"pqe/internal/serve"
)

// serviceSalt separates the service suite's evaluation-seed stream from
// the other suites'.
const serviceSalt = 0x5e41ce

// ServiceHarness is an in-process pqe HTTP service for differential
// testing: generated cases are loaded through the public text formats
// and queried over real HTTP, then cross-checked against direct
// library calls.
type ServiceHarness struct {
	Srv  *serve.Server
	Base string
	ts   *httptest.Server
}

// NewServiceHarness starts a loopback service sized so the suite's
// sequential cases never queue or shed. Close releases the listener.
func NewServiceHarness() *ServiceHarness {
	srv := serve.NewServer(serve.Config{Budget: 4})
	ts := httptest.NewServer(srv.Handler())
	return &ServiceHarness{Srv: srv, Base: ts.URL, ts: ts}
}

func (h *ServiceHarness) Close() { h.ts.Close() }

// serviceResponse mirrors the serve package's estimate response (the
// wire contract, duplicated here so the test fails if the contract
// drifts).
type serviceResponse struct {
	Probability float64 `json:"probability"`
	Exact       bool    `json:"exact"`
	Method      string  `json:"method"`
	Reason      string  `json:"reason"`
	Trials      int64   `json:"trials"`
	Version     uint64  `json:"version"`
}

// RunServiceDifferential drives one generated case through the service
// and cross-checks it against the direct pqe.Estimator byte for byte:
// the same seed must produce the bit-identical probability, the same
// routing method and reason, and the same trial count — one-shot and
// SSE-streamed alike. Both sides read the case through the public text
// formats, so they evaluate provably identical instances.
func RunServiceDifferential(c *Case, cfg Config, h *ServiceHarness) error {
	queryText := c.Query.String()
	dbText := pdb.FormatString(c.H)
	q, err := pqe.ParseQuery(queryText)
	if err != nil {
		return fmt.Errorf("query %q does not round-trip: %w", queryText, err)
	}
	serveDB, err := pqe.ParseDatabase(strings.NewReader(dbText))
	if err != nil {
		return fmt.Errorf("instance does not round-trip: %w", err)
	}
	directDB, err := pqe.ParseDatabase(strings.NewReader(dbText))
	if err != nil {
		return fmt.Errorf("instance does not round-trip: %w", err)
	}
	h.Srv.AddDatabase("case", serveDB)

	seed := evalSeed(c, serviceSalt, 0)

	// Direct reference run, counting trials through the telemetry feed
	// (attaching it never perturbs seeded results).
	var directTrials atomic.Int64
	tel := pqe.NewTelemetry()
	tel.OnTrial(func(pqe.TrialUpdate) { directTrials.Add(1) })
	direct, directErr := pqe.Probability(q, directDB, &pqe.Options{
		Epsilon:   cfg.Epsilon,
		Trials:    cfg.Trials,
		Seed:      seed,
		Telemetry: tel,
	})

	body := fmt.Sprintf(`{"query":%q,"database":"case","options":{"epsilon":%s,"trials":%d,"seed":%d}}`,
		queryText, strconv.FormatFloat(cfg.Epsilon, 'g', -1, 64), cfg.Trials, seed)

	status, data, err := servicePost(h.Base+"/v1/estimate", body)
	if err != nil {
		return fmt.Errorf("service estimate: %w", err)
	}
	if directErr != nil {
		// The library refused (unsupported class, …): the service must
		// refuse too, not fabricate a number.
		if status == http.StatusOK {
			return fmt.Errorf("direct call failed (%v) but service returned 200: %s", directErr, data)
		}
		return nil
	}
	if status != http.StatusOK {
		return fmt.Errorf("service estimate: status %d: %s (direct succeeded with %v)", status, data, direct.Probability)
	}
	var got serviceResponse
	if err := json.Unmarshal(data, &got); err != nil {
		return fmt.Errorf("service estimate: %v in %s", err, data)
	}
	if math.Float64bits(got.Probability) != math.Float64bits(direct.Probability) {
		return fmt.Errorf("service probability %v != direct %v (seed %d): not bit-identical",
			got.Probability, direct.Probability, seed)
	}
	if got.Method != direct.Method {
		return fmt.Errorf("service method %q != direct %q", got.Method, direct.Method)
	}
	if got.Reason != direct.Reason {
		return fmt.Errorf("service reason %q != direct %q", got.Reason, direct.Reason)
	}
	if got.Exact != direct.Exact {
		return fmt.Errorf("service exact %v != direct %v", got.Exact, direct.Exact)
	}
	if got.Trials != directTrials.Load() {
		return fmt.Errorf("service ran %d trials, direct ran %d", got.Trials, directTrials.Load())
	}

	// Streamed: same request over SSE must converge to the same bits
	// and emit exactly one trial event per trial.
	streamed, events, err := serviceStream(h.Base+"/v1/estimate/stream", body)
	if err != nil {
		return fmt.Errorf("service stream: %w", err)
	}
	if math.Float64bits(streamed.Probability) != math.Float64bits(direct.Probability) {
		return fmt.Errorf("streamed probability %v != direct %v: not bit-identical",
			streamed.Probability, direct.Probability)
	}
	if streamed.Trials != directTrials.Load() || int64(events) != directTrials.Load() {
		return fmt.Errorf("streamed trials %d (events %d) != direct %d",
			streamed.Trials, events, directTrials.Load())
	}
	return nil
}

func servicePost(url, body string) (int, []byte, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

func serviceStream(url, body string) (serviceResponse, int, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return serviceResponse{}, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return serviceResponse{}, 0, fmt.Errorf("status %d: %s", resp.StatusCode, data)
	}
	sc := bufio.NewScanner(resp.Body)
	event, trials := "", 0
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "trial":
				trials++
			case "error":
				return serviceResponse{}, trials, fmt.Errorf("stream error: %s", data)
			case "result":
				var r serviceResponse
				if err := json.Unmarshal([]byte(data), &r); err != nil {
					return serviceResponse{}, trials, err
				}
				return r, trials, nil
			}
		}
	}
	return serviceResponse{}, trials, fmt.Errorf("stream ended without result (%v)", sc.Err())
}
