package testkit

import (
	"fmt"
	"math/big"
	"math/rand"
	"sort"
	"strings"

	"pqe/internal/core"
	"pqe/internal/cq"
	"pqe/internal/pdb"
	"pqe/internal/splitmix"
)

// checkDeltaIncremental: an estimator session maintained through
// ApplyDelta must be bit-identical — same seed, every MaxProcs — to a
// from-scratch estimator at the same database version. This is the
// property that makes the incremental automaton construction safe to
// trust: the memoized rebuild may not perturb state numbering, symbol
// interning or transition order, because any of those shifts the
// per-site RNG streams and the estimate with them. Failures carry the
// replayable delta trace.
func checkDeltaIncremental(c *Case, cfg Config) error {
	return runDeltaSession(c, cfg, 3, deltaChecksPerStep)
}

// deltaChecksPerStep compares the session against fresh estimators at
// MaxProcs 1 and 3 after each applied delta.
var deltaChecksPerStep = []int{1, 3}

// DeltaSoak drives one long randomized delta session for the case:
// steps delta batches, each followed by the bit-identity comparison of
// checkDeltaIncremental. It is the nightly endurance variant; the
// returned error includes the full replayable delta trace.
func DeltaSoak(c *Case, cfg Config, steps int) error {
	return runDeltaSession(c, cfg, steps, deltaChecksPerStep)
}

// runDeltaSession is the shared engine: clone the case instance, run a
// session over it, interleave seeded random deltas with estimates, and
// after every delta compare against a from-scratch estimator on a
// clone, at every MaxProcs in procs.
func runDeltaSession(c *Case, cfg Config, steps int, procs []int) error {
	if c.H.Size() == 0 {
		return nil
	}
	opts := core.Options{Epsilon: cfg.Epsilon, Trials: cfg.Trials, Seed: evalSeed(c, siteDelta, 0), Obs: cfg.Obs}
	h := c.H.Clone()
	est := core.NewEstimator(c.Query, h, opts)
	if _, err := est.PQEEstimate(opts); err != nil {
		return skipUnsupported(err)
	}
	s := splitmix.Derive(c.Seed, siteDelta, c.Index)
	rng := rand.New(rand.NewSource(int64(s.Uint64() >> 1)))
	var trace []string
	for step := 0; step < steps; step++ {
		delta := randomDelta(rng, c.Query, h)
		if len(delta) == 0 {
			continue
		}
		trace = append(trace, delta.String())
		if _, err := est.ApplyDelta(delta); err != nil {
			return fmt.Errorf("step %d: ApplyDelta: %v\ntrace: %s", step, err, renderTrace(trace))
		}
		for _, mp := range procs {
			copts := opts
			copts.MaxProcs = mp
			got, err := est.PQEEstimate(copts)
			if err != nil {
				return fmt.Errorf("step %d (MaxProcs=%d): session: %v\ntrace: %s", step, mp, err, renderTrace(trace))
			}
			fresh, err := core.NewEstimator(c.Query, h.Clone(), copts).PQEEstimate(copts)
			if err != nil {
				return fmt.Errorf("step %d (MaxProcs=%d): fresh: %v\ntrace: %s", step, mp, err, renderTrace(trace))
			}
			if got != fresh {
				return fmt.Errorf("step %d (MaxProcs=%d): incremental session %g != from-scratch estimator %g\ntrace: %s",
					step, mp, got, fresh, renderTrace(trace))
			}
		}
	}
	return nil
}

// renderTrace renders the applied delta batches as a replayable
// sequence, one batch per line.
func renderTrace(trace []string) string {
	return "\n  " + strings.Join(trace, "\n  ")
}

// deltaMaxGrowth bounds how far a delta session may grow the instance
// beyond the generator's cap, so soak sessions stay small.
const deltaMaxGrowth = 4

// randomDelta draws a small valid delta batch (1–2 ops) over the
// query's relations: inserts of fresh facts, deletes and reweights of
// present ones. Validity is tracked against the instance with the
// batch's earlier ops virtually applied, mirroring pdb's own overlay
// validation, so generated batches always apply.
func randomDelta(rng *rand.Rand, q *cq.Query, h *pdb.Probabilistic) pdb.Delta {
	rels := make([]string, 0, q.Len())
	arity := make(map[string]int)
	for _, a := range q.Atoms {
		if _, ok := arity[a.Relation]; !ok {
			arity[a.Relation] = a.Arity()
			rels = append(rels, a.Relation)
		}
	}
	sort.Strings(rels)
	consts := []string{"a", "b", "c", "d0", "d1"}

	overlay := make(map[string]bool)
	present := func(f pdb.Fact) bool {
		if p, ok := overlay[f.Key()]; ok {
			return p
		}
		return h.DB().Contains(f)
	}
	// candidates lists the query-relation facts present under the overlay.
	candidates := func() []pdb.Fact {
		var out []pdb.Fact
		for _, r := range rels {
			for _, f := range h.DB().FactsOf(r) {
				if present(f) {
					out = append(out, f)
				}
			}
		}
		return out
	}

	var delta pdb.Delta
	n := 1 + rng.Intn(2)
	for attempt := 0; len(delta) < n && attempt < 8; attempt++ {
		switch rng.Intn(3) {
		case 0: // insert
			if h.Size()+len(delta) >= MaxFacts+deltaMaxGrowth {
				continue
			}
			r := rels[rng.Intn(len(rels))]
			args := make([]string, arity[r])
			for i := range args {
				args[i] = consts[rng.Intn(len(consts))]
			}
			f := pdb.NewFact(r, args...)
			if present(f) {
				continue
			}
			p := pdb.ProbFromRat(big.NewRat(int64(1+rng.Intn(3)), 4))
			delta = append(delta, pdb.Insert(f, p))
			overlay[f.Key()] = true
		case 1: // delete
			cand := candidates()
			if len(cand) == 0 {
				continue
			}
			f := cand[rng.Intn(len(cand))]
			delta = append(delta, pdb.Delete(f))
			overlay[f.Key()] = false
		default: // reweight
			cand := candidates()
			if len(cand) == 0 {
				continue
			}
			f := cand[rng.Intn(len(cand))]
			p := pdb.ProbFromRat(big.NewRat(int64(1+rng.Intn(3)), 4))
			delta = append(delta, pdb.Reweight(f, p))
		}
	}
	return delta
}
