package testkit

import (
	"errors"
	"fmt"
	"math"
	"net"
	"time"

	"pqe/internal/core"
	"pqe/internal/efloat"
	"pqe/internal/shard"
)

func sameBits(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// Derivation sites for the shard differential's evaluation seeds,
// disjoint from the runner's 0x10 block.
const (
	siteShardPQE uint64 = 0x20 + iota
	siteShardUR
	siteShardPath
	siteShardPathPQE
	siteShardAnytime
)

// ShardHarness runs N in-process shard workers on loopback plus a
// coordinator pool, for differential tests of distributed vs local
// evaluation. KillWorker simulates a mid-suite crash; the pool must
// reassign that worker's ranges without changing any result bit.
type ShardHarness struct {
	Pool      *shard.Pool
	servers   []*shard.Server
	listeners []net.Listener
}

// NewShardHarness starts n workers and connects a pool to them. The
// call timeout is short so a killed worker is detected quickly.
func NewShardHarness(n int) (*ShardHarness, error) {
	h := &ShardHarness{}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			h.Close()
			return nil, err
		}
		addrs[i] = l.Addr().String()
		s := shard.NewServer(shard.ServerConfig{MaxProcs: 2})
		go s.Serve(l)
		h.servers = append(h.servers, s)
		h.listeners = append(h.listeners, l)
	}
	pool, err := shard.Dial(addrs, shard.PoolConfig{
		DialTimeout: 2 * time.Second,
		CallTimeout: 30 * time.Second,
	})
	if err != nil {
		h.Close()
		return nil, err
	}
	h.Pool = pool
	return h, nil
}

// KillWorker shuts worker i down hard: live connections drop and
// redials are refused. Subsequent ranges assigned to it must be
// reassigned by the pool.
func (h *ShardHarness) KillWorker(i int) {
	h.servers[i].Close()
	h.listeners[i].Close()
}

// Stats exposes the pool's dispatch counters.
func (h *ShardHarness) Stats() shard.Stats { return h.Pool.Stats() }

// Close tears down the pool and every worker.
func (h *ShardHarness) Close() {
	if h.Pool != nil {
		h.Pool.Close()
	}
	for _, s := range h.servers {
		s.Close()
	}
	for _, l := range h.listeners {
		l.Close()
	}
}

// RunShardDifferential cross-checks every applicable engine of one
// generated case sharded vs local, byte for byte: same seed, same
// schedule, the only difference being Options.Shard. Error paths must
// agree too — the distributed run may not succeed where the local one
// refuses, or vice versa.
func RunShardDifferential(c *Case, cfg Config, h *ShardHarness) error {
	prob := func(name string, site uint64, extra func(*core.Options),
		eval func(opts core.Options) (float64, error)) error {
		opts := core.Options{Epsilon: cfg.Epsilon, Trials: cfg.Trials, Seed: evalSeed(c, site, 0), Obs: cfg.Obs}
		if extra != nil {
			extra(&opts)
		}
		local, localErr := eval(opts)
		opts.Shard = h.Pool
		sharded, shardErr := eval(opts)
		if (localErr == nil) != (shardErr == nil) {
			return fmt.Errorf("%s: error-path asymmetry: local=%v sharded=%v", name, localErr, shardErr)
		}
		if localErr != nil {
			if errors.Is(localErr, core.ErrUnsupported) && errors.Is(shardErr, core.ErrUnsupported) {
				return nil
			}
			return fmt.Errorf("%s: both failed: local=%v sharded=%v", name, localErr, shardErr)
		}
		if !sameBits(local, sharded) {
			return fmt.Errorf("%s: sharded %v != local %v (seed %d): not bit-identical",
				name, sharded, local, opts.Seed)
		}
		return nil
	}
	count := func(name string, site uint64, eval func(opts core.Options) (efloat.E, error)) error {
		opts := core.Options{Epsilon: cfg.Epsilon, Trials: cfg.Trials, Seed: evalSeed(c, site, 0), Obs: cfg.Obs}
		local, localErr := eval(opts)
		opts.Shard = h.Pool
		sharded, shardErr := eval(opts)
		if (localErr == nil) != (shardErr == nil) {
			return fmt.Errorf("%s: error-path asymmetry: local=%v sharded=%v", name, localErr, shardErr)
		}
		if localErr != nil {
			if errors.Is(localErr, core.ErrUnsupported) && errors.Is(shardErr, core.ErrUnsupported) {
				return nil
			}
			return fmt.Errorf("%s: both failed: local=%v sharded=%v", name, localErr, shardErr)
		}
		lm, le := local.Bits()
		sm, se := sharded.Bits()
		if lm != sm || le != se {
			return fmt.Errorf("%s: sharded %v != local %v (seed %d): not bit-identical",
				name, sharded, local, opts.Seed)
		}
		return nil
	}

	if err := prob("shard/pqe", siteShardPQE, nil, func(opts core.Options) (float64, error) {
		return core.PQEEstimate(c.Query, c.H, opts)
	}); err != nil {
		return err
	}
	if err := count("shard/ur", siteShardUR, func(opts core.Options) (efloat.E, error) {
		return core.UREstimate(c.Query, c.H.DB(), opts)
	}); err != nil {
		return err
	}
	if c.Query.IsPath() {
		if err := prob("shard/pathpqe", siteShardPathPQE, nil, func(opts core.Options) (float64, error) {
			return core.PathPQEEstimate(c.Query, c.H, opts)
		}); err != nil {
			return err
		}
		if err := count("shard/path", siteShardPath, func(opts core.Options) (efloat.E, error) {
			return core.PathEstimate(c.Query, c.H.DB(), opts)
		}); err != nil {
			return err
		}
	}
	// Anytime: the coordinator owns the seqstop batch boundaries, so the
	// executed-trial sequence — and the merged bits — must match local.
	return prob("shard/anytime", siteShardAnytime, func(o *core.Options) { o.Delta = 0.25 },
		func(opts core.Options) (float64, error) {
			return core.PQEEstimate(c.Query, c.H, opts)
		})
}
