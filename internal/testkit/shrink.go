package testkit

import (
	"fmt"
	"strings"

	"pqe/internal/cq"
	"pqe/internal/pdb"
)

// Shrink greedily minimizes a failing case: it tries deleting each fact
// and then each query atom, keeping any deletion under which the case
// still fails the given predicate, and repeats until a fixed point. The
// returned case has Shrunk set — it is no longer derivable from
// (Seed, Index), so Repro prints the instance inline.
//
// fails must be a pure function of the case (the runner is: every
// random draw derives from the case seed), or the shrink is unsound.
// Passes are bounded, so Shrink terminates even on a flaky predicate.
func Shrink(c *Case, fails func(*Case) bool) *Case {
	cur := c
	for pass := 0; pass < 8; pass++ {
		shrunk := false
		// Fact deletions, one at a time, re-scanning after each success
		// (indices shift under deletion).
		for i := 0; i < cur.H.Size(); {
			cand := cloneCase(cur)
			cand.H = deleteFact(cur.H, i)
			if fails(cand) {
				cur = cand
				shrunk = true
				continue // same index now names the next fact
			}
			i++
		}
		// Atom deletions (keep at least one atom; a 0-atom CQ is
		// degenerate). Facts of the dropped relation become dead weight
		// the next fact pass removes.
		for len(cur.Query.Atoms) > 1 {
			dropped := false
			for i := range cur.Query.Atoms {
				cand := cloneCase(cur)
				atoms := make([]cq.Atom, 0, len(cur.Query.Atoms)-1)
				atoms = append(atoms, cur.Query.Atoms[:i]...)
				atoms = append(atoms, cur.Query.Atoms[i+1:]...)
				cand.Query = cq.New(atoms...)
				if fails(cand) {
					cur = cand
					shrunk = true
					dropped = true
					break
				}
			}
			if !dropped {
				break
			}
		}
		if !shrunk {
			break
		}
	}
	if cur != c {
		cur.Shrunk = true
	}
	return cur
}

func cloneCase(c *Case) *Case {
	cp := *c
	return &cp
}

func deleteFact(h *pdb.Probabilistic, idx int) *pdb.Probabilistic {
	out := pdb.Empty()
	for i, f := range h.DB().Facts() {
		if i == idx {
			continue
		}
		out.Add(f, h.ProbAt(i))
	}
	return out
}

// Repro renders the failure report every testkit assertion ends with: a
// copy-pasteable command replaying exactly this case, plus the query
// and instance in pqegen's text format. For a shrunk case the seed no
// longer regenerates the instance, so the inline text is authoritative
// and the printed command replays the unshrunk ancestor.
func (c *Case) Repro() string {
	var b strings.Builder
	fmt.Fprintf(&b, "case %d (shape %s, model %s, seed %d)\n", c.Index, c.Shape, c.Model, c.Seed)
	if c.Shrunk {
		b.WriteString("shrunk from the seeded case; replay the original with:\n")
	} else {
		b.WriteString("replay with:\n")
	}
	fmt.Fprintf(&b, "  go test ./internal/testkit -run 'TestDifferential|TestMetamorphic' -testkit.seed=%d -testkit.case=%d\n", c.Seed, c.Index)
	fmt.Fprintf(&b, "  go run ./cmd/pqegen -family testkit -seed %d -case %d\n", c.Seed, c.Index)
	fmt.Fprintf(&b, "query: %s\n", c.Query)
	fmt.Fprintf(&b, "instance (%d facts):\n%s", c.H.Size(), pdb.FormatString(c.H))
	return b.String()
}
