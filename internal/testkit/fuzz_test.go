package testkit

import (
	"testing"

	"pqe/internal/cq"
	"pqe/internal/exact"
	"pqe/internal/gen"
	"pqe/internal/hypertree"
	"pqe/internal/lineage"
	"pqe/internal/nfa"
	"pqe/internal/nfta"
	"pqe/internal/pdb"
	"pqe/internal/reduction"
	"pqe/internal/safeplan"
)

// The fuzz targets deliberately assert only deterministic invariants —
// exact pipelines against exact oracles — so any crash or mismatch the
// fuzzer reports is a real bug, never statistical noise.

// fuzzMaxFacts keeps fuzz instances far below MaxFacts: the oracles run
// once per fuzz execution, and the fuzzer runs millions.
const fuzzMaxFacts = 8

// fuzzInstance builds a small deterministic instance for a parsed query.
func fuzzInstance(q *cq.Query, seed int64) *pdb.Probabilistic {
	h := gen.Instance(q, gen.Config{
		FactsPerRelation: 2,
		DomainSize:       3,
		Model:            gen.ProbModel(uint64(seed) % 3),
		Seed:             seed,
	})
	return capFacts(h, fuzzMaxFacts)
}

// FuzzQueryToPipeline drives arbitrary strings through cq.Parse and, on
// the queries that survive, checks that the deterministic evaluation
// routes agree on a generated instance: lineage WMC is the reference,
// safe-plan must match on safe queries, and the exact oracle on all.
func FuzzQueryToPipeline(f *testing.F) {
	f.Add("R1(x,y), R2(y,z)", int64(1))
	f.Add("S0(x), S1(x,y), S2(y)", int64(2))
	f.Add("A(x,x)", int64(3))
	f.Add("C1(x,y), C2(y,x)", int64(4))
	f.Fuzz(func(t *testing.T, s string, seed int64) {
		q, err := cq.Parse(s)
		if err != nil {
			t.Skip()
		}
		if q.Len() == 0 || q.Len() > 4 {
			t.Skip()
		}
		for _, a := range q.Atoms {
			if a.Arity() > 3 {
				t.Skip()
			}
		}
		h := fuzzInstance(q, seed)
		want, err := exact.PQE(q, h)
		if err != nil {
			t.Fatalf("oracle rejected a %d-fact instance: %v", h.Size(), err)
		}
		dnf, err := lineage.Compute(q, h.DB(), lineageLimit)
		if err != nil {
			t.Fatalf("lineage: %v", err)
		}
		if got := dnf.WMCExact(h); got.Cmp(want) != 0 {
			t.Errorf("lineage WMC %v != oracle %v\nquery %s\n%s", got, want, q, pdb.FormatString(h))
		}
		if safeplan.IsSafe(q) {
			got, err := safeplan.Evaluate(q, h)
			if err != nil {
				t.Fatalf("safeplan on a safe query: %v", err)
			}
			if got.Cmp(want) != 0 {
				t.Errorf("safeplan %v != oracle %v\nquery %s\n%s", got, want, q, pdb.FormatString(h))
			}
		}
	})
}

// FuzzPathNFAConstruction checks the Section 3 bijection on random path
// instances: the NFA built for (Q, D) accepts exactly UR(Q, D) words of
// length |D|.
func FuzzPathNFAConstruction(f *testing.F) {
	f.Add(uint8(2), uint8(2), uint8(1), int64(1))
	f.Add(uint8(3), uint8(1), uint8(2), int64(7))
	f.Fuzz(func(t *testing.T, length, chains, noise uint8, seed int64) {
		n := 1 + int(length)%3
		q := cq.PathQuery("R", n)
		h := gen.SparsePathInstance(q, 1+int(chains)%2, int(noise)%2, gen.ProbHalf, seed)
		h = capFacts(h, fuzzMaxFacts)
		d := h.DB()
		m, err := reduction.PathNFA(q, d)
		if err != nil {
			t.Fatalf("PathNFA: %v", err)
		}
		got := nfa.ExactCount(m, d.Size())
		want := exact.MustUR(q, d)
		if got.Cmp(want) != 0 {
			t.Errorf("NFA accepts %v words, UR(Q,D) = %v\nquery %s\n%s", got, want, q, d)
		}
	})
}

// FuzzNFTAConstruction checks the Theorem 3 reduction the same way: the
// NFTA built from a decomposition accepts exactly UR(Q, D) trees of the
// reduction's size.
func FuzzNFTAConstruction(f *testing.F) {
	f.Add(uint8(0), int64(1))
	f.Add(uint8(1), int64(5))
	f.Add(uint8(2), int64(9))
	f.Fuzz(func(t *testing.T, shape uint8, seed int64) {
		var q *cq.Query
		switch shape % 3 {
		case 0:
			q = cq.StarQuery("S", 2)
		case 1:
			q = cq.PathQuery("R", 2)
		default:
			q = cq.CycleQuery("C", 3)
		}
		h := gen.Instance(q, gen.Config{FactsPerRelation: 2, DomainSize: 2, Model: gen.ProbHalf, Seed: seed})
		h = capFacts(h, fuzzMaxFacts)
		d := h.DB()
		dec, err := hypertree.Decompose(q)
		if err != nil {
			t.Fatalf("decompose %s: %v", q, err)
		}
		ur, err := reduction.BuildUR(q, d, dec)
		if err != nil {
			t.Fatalf("BuildUR: %v", err)
		}
		got := nfta.ExactCount(ur.Auto, ur.TreeSize)
		want := exact.MustUR(q, d)
		if got.Cmp(want) != 0 {
			t.Errorf("NFTA accepts %v trees, UR(Q,D) = %v\nquery %s\n%s", got, want, q, d)
		}
	})
}

// Seed-corpus smoke check: each fuzz body must pass on its own seeds in
// a plain test run (go test executes fuzz targets on the corpus only).
func TestFuzzSeedsSmoke(t *testing.T) {
	for i := int64(0); i < 4; i++ {
		q := cq.PathQuery("R", 2)
		h := fuzzInstance(q, i)
		if h.Size() > fuzzMaxFacts {
			t.Fatalf("fuzz instance seed %d has %d facts", i, h.Size())
		}
		if _, err := exact.PQE(q, h); err != nil {
			t.Fatal(err)
		}
	}
}
