package testkit

import (
	"errors"
	"fmt"
	"math"
	"math/big"

	"pqe/internal/core"
	"pqe/internal/exact"
	"pqe/internal/lineage"
	"pqe/internal/montecarlo"
	"pqe/internal/obdd"
	"pqe/internal/safeplan"
	"pqe/internal/splitmix"
)

// Derivation sites for per-check evaluation seeds: each statistical
// check of each case draws from its own splitmix stream, so no two
// checks (or retries) ever share randomness.
const (
	sitePQE uint64 = 0x10 + iota
	sitePathPQE
	siteUR
	sitePathUR
	siteMC
	siteRouted
	siteForcedFPRAS
	siteForcedPath
	siteForcedMC
)

// lineageLimit bounds witness enumeration; with |D| ≤ MaxFacts the true
// clause count is far below it, so hitting the limit is itself a bug.
const lineageLimit = 1 << 16

// obddNodes caps OBDD compilation; an oversized diagram skips the OBDD
// checks rather than failing the case.
const obddNodes = 1 << 15

// evalSeed derives the engine seed for one attempt of one check.
func evalSeed(c *Case, site uint64, attempt int) int64 {
	s := splitmix.Derive(c.Seed, site, c.Index*(maxRetries+1)+attempt)
	return int64(s.Uint64() >> 1)
}

// maxRetries bounds the attempt-index space carved out per case in
// evalSeed; Config.Retries beyond this would reuse streams.
const maxRetries = 7

// RunDifferential evaluates every engine applicable to the case and
// checks each against the brute-force oracles, charging b for every
// statistical assertion. It returns nil if all engines agree, or an
// error naming the first failing check. Engines that decline the
// instance (core.ErrUnsupported, obdd.ErrTooLarge) are skipped — being
// out of class is not a bug — but oracle failures are.
func RunDifferential(c *Case, cfg Config, b *Budget) error {
	if cfg.Retries > maxRetries {
		return fmt.Errorf("testkit: Retries %d exceeds the seed-stream bound %d", cfg.Retries, maxRetries)
	}
	exactP, err := exact.PQE(c.Query, c.H)
	if err != nil {
		return fmt.Errorf("exact.PQE oracle: %w", err)
	}
	exactN, err := exact.UR(c.Query, c.H.DB())
	if err != nil {
		return fmt.Errorf("exact.UR oracle: %w", err)
	}

	// Statistical engines: retried with independent derived seeds, each
	// full check charging checkDelta to the budget.
	statistical := func(name string, site uint64, eval func(opts core.Options) error) error {
		var lastErr error
		for a := 0; a <= cfg.Retries; a++ {
			opts := core.Options{Epsilon: cfg.Epsilon, Trials: cfg.Trials, Seed: evalSeed(c, site, a), Obs: cfg.Obs}
			lastErr = eval(opts)
			if lastErr == nil || errors.Is(lastErr, core.ErrUnsupported) {
				break
			}
		}
		if errors.Is(lastErr, core.ErrUnsupported) {
			return nil
		}
		b.Charge(cfg.checkDelta())
		if lastErr != nil {
			return fmt.Errorf("%s: %w", name, lastErr)
		}
		return nil
	}

	if err := statistical("pqe/nfta", sitePQE, func(opts core.Options) error {
		v, err := core.PQEEstimate(c.Query, c.H, opts)
		if err != nil {
			return err
		}
		return CheckRel(exactP, v, cfg.Tolerance())
	}); err != nil {
		return err
	}
	if err := statistical("ur/nfta", siteUR, func(opts core.Options) error {
		v, err := core.UREstimate(c.Query, c.H.DB(), opts)
		if err != nil {
			return err
		}
		return CheckRelCount(exactN, v, cfg.Tolerance())
	}); err != nil {
		return err
	}
	if c.Query.IsPath() {
		if err := statistical("pqe/path-nfa", sitePathPQE, func(opts core.Options) error {
			v, err := core.PathPQEEstimate(c.Query, c.H, opts)
			if err != nil {
				return err
			}
			return CheckRel(exactP, v, cfg.Tolerance())
		}); err != nil {
			return err
		}
		if err := statistical("ur/path-nfa", sitePathUR, func(opts core.Options) error {
			v, err := core.PathEstimate(c.Query, c.H.DB(), opts)
			if err != nil {
				return err
			}
			return CheckRelCount(exactN, v, cfg.Tolerance())
		}); err != nil {
			return err
		}
	}

	// Monte Carlo baseline: one attempt, additive Hoeffding tolerance.
	mc := montecarlo.Estimate(c.Query, c.H, montecarlo.Options{
		Samples: cfg.MCSamples,
		Seed:    evalSeed(c, siteMC, 0),
	})
	b.Charge(cfg.MCDelta)
	if err := CheckAbs(exactP, mc, cfg.MCTolerance()); err != nil {
		return fmt.Errorf("montecarlo: %w", err)
	}

	// Deterministic engines: exact rational agreement, no budget charge.
	if safeplan.IsSafe(c.Query) {
		v, err := safeplan.Evaluate(c.Query, c.H)
		if err != nil {
			return fmt.Errorf("safeplan: %w", err)
		}
		if err := CheckExact(exactP, v); err != nil {
			return fmt.Errorf("safeplan: %w", err)
		}
	}
	dnf, err := lineage.Compute(c.Query, c.H.DB(), lineageLimit)
	if err != nil {
		return fmt.Errorf("lineage: %w", err)
	}
	if err := CheckExact(exactP, dnf.WMCExact(c.H)); err != nil {
		return fmt.Errorf("lineage/wmc: %w", err)
	}
	if o, err := obdd.CompileDNF(dnf, obddNodes); err == nil {
		if err := CheckExact(exactP, o.WMC(c.H)); err != nil {
			return fmt.Errorf("obdd/wmc: %w", err)
		}
		if got := o.CountModels(); got.Cmp(exactN) != 0 {
			return fmt.Errorf("obdd/countmodels: got %v, want %v", got, exactN)
		}
	} else if !errors.Is(err, obdd.ErrTooLarge) {
		return fmt.Errorf("obdd: %w", err)
	}

	// Routing layer: the auto router and every forced strategy must all
	// reproduce the oracle through core.Evaluate, and pinning the
	// strategy the router picked must reproduce the routed answer bit
	// for bit.
	if err := checkRouted(c, cfg, b, exactP); err != nil {
		return fmt.Errorf("routed: %w", err)
	}
	return nil
}

// routedDelta keeps the sequential-stopping floor at the trial cap, so
// a routed FPRAS run degenerates to the fixed median schedule and the
// median-of-trials certificate (checkDelta) prices its check. The
// genuinely early-stopped regime is priced separately by the anytime
// metamorphic check.
const routedDelta = 1e-9

// floatTol allows only float64 rounding between an exact route's float
// output and the rational oracle.
const floatTol = 1e-12

// forceOf maps a routed method to the Strategy value that pins it.
var forceOf = map[core.Method]string{
	core.MethodSafePlan:  "force-safeplan",
	core.MethodOBDD:      "force-obdd",
	core.MethodLineage:   "force-lineage",
	core.MethodFPRASTree: "force-nfta",
	core.MethodFPRASPath: "force-nfa",
}

// checkRouted cross-checks the strategy-routing layer: the auto route
// against the oracle (exactly for exact routes, statistically for
// FPRAS routes), the routed answer against the same strategy forced
// with identical options (bit-identity: routing must only select,
// never perturb), and every forced strategy against the oracle.
// Strategies that decline the instance are skipped, as elsewhere.
func checkRouted(c *Case, cfg Config, b *Budget, exactP *big.Rat) error {
	want, _ := exactP.Float64()
	routedOpts := func(a int) core.Options {
		return core.Options{Epsilon: cfg.Epsilon, Trials: cfg.Trials, Delta: routedDelta,
			Seed: evalSeed(c, siteRouted, a), Strategy: "auto", Obs: cfg.Obs}
	}
	res, err := core.Evaluate(c.Query, c.H, routedOpts(0))
	if errors.Is(err, core.ErrUnsupported) {
		return nil // the router may legitimately decline (open cells)
	}
	if err != nil {
		return err
	}
	if res.Exact {
		if math.Abs(res.Probability-want) > floatTol {
			return fmt.Errorf("exact route %v: got %g, oracle %g", res.Method, res.Probability, want)
		}
	} else {
		lastErr := CheckRel(exactP, res.Probability, cfg.Tolerance())
		for a := 1; a <= cfg.Retries && lastErr != nil; a++ {
			r, err := core.Evaluate(c.Query, c.H, routedOpts(a))
			if err != nil {
				return err
			}
			lastErr = CheckRel(exactP, r.Probability, cfg.Tolerance())
		}
		b.Charge(cfg.checkDelta())
		if lastErr != nil {
			return fmt.Errorf("auto via %v: %w", res.Method, lastErr)
		}
	}

	force, ok := forceOf[res.Method]
	if !ok {
		return fmt.Errorf("auto picked unexpected method %v", res.Method)
	}
	fopts := routedOpts(0)
	fopts.Strategy = force
	fres, err := core.Evaluate(c.Query, c.H, fopts)
	if err != nil {
		return fmt.Errorf("%s: %w", force, err)
	}
	if fres.Probability != res.Probability {
		return fmt.Errorf("%s gives %g, auto routing gave %g", force, fres.Probability, res.Probability)
	}

	// Forced exact strategies: rational agreement with the oracle up to
	// one float rounding, no budget charge.
	forcedExact := []string{"force-obdd", "force-lineage"}
	if safeplan.IsSafe(c.Query) {
		forcedExact = append(forcedExact, "force-safeplan")
	}
	for _, f := range forcedExact {
		r, err := core.Evaluate(c.Query, c.H, core.Options{Epsilon: cfg.Epsilon,
			Seed: evalSeed(c, siteRouted, 0), Strategy: f, Obs: cfg.Obs})
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		if !r.Exact || math.Abs(r.Probability-want) > floatTol {
			return fmt.Errorf("%s: got %g (exact=%v), oracle %g", f, r.Probability, r.Exact, want)
		}
	}

	// Forced FPRAS strategies: statistical checks with retries, like
	// the direct engine checks above.
	statForced := func(f string, site uint64) error {
		var lastErr error
		for a := 0; a <= cfg.Retries; a++ {
			r, err := core.Evaluate(c.Query, c.H, core.Options{Epsilon: cfg.Epsilon, Trials: cfg.Trials,
				Delta: routedDelta, Seed: evalSeed(c, site, a), Strategy: f, Obs: cfg.Obs})
			if err != nil {
				lastErr = err
				break
			}
			lastErr = CheckRel(exactP, r.Probability, cfg.Tolerance())
			if lastErr == nil {
				break
			}
		}
		if errors.Is(lastErr, core.ErrUnsupported) {
			return nil
		}
		b.Charge(cfg.checkDelta())
		if lastErr != nil {
			return fmt.Errorf("%s: %w", f, lastErr)
		}
		return nil
	}
	if err := statForced("force-nfta", siteForcedFPRAS); err != nil {
		return err
	}
	if c.Query.IsPath() {
		if err := statForced("force-nfa", siteForcedPath); err != nil {
			return err
		}
	}

	// Forced Monte Carlo: additive Hoeffding tolerance, one attempt.
	mcr, err := core.Evaluate(c.Query, c.H, core.Options{Samples: cfg.MCSamples,
		Seed: evalSeed(c, siteForcedMC, 0), Strategy: "force-montecarlo", Obs: cfg.Obs})
	if err != nil {
		return fmt.Errorf("force-montecarlo: %w", err)
	}
	b.Charge(cfg.MCDelta)
	if err := CheckAbs(exactP, mcr.Probability, cfg.MCTolerance()); err != nil {
		return fmt.Errorf("force-montecarlo: %w", err)
	}
	return nil
}
