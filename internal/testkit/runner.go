package testkit

import (
	"errors"
	"fmt"

	"pqe/internal/core"
	"pqe/internal/exact"
	"pqe/internal/lineage"
	"pqe/internal/montecarlo"
	"pqe/internal/obdd"
	"pqe/internal/safeplan"
	"pqe/internal/splitmix"
)

// Derivation sites for per-check evaluation seeds: each statistical
// check of each case draws from its own splitmix stream, so no two
// checks (or retries) ever share randomness.
const (
	sitePQE uint64 = 0x10 + iota
	sitePathPQE
	siteUR
	sitePathUR
	siteMC
)

// lineageLimit bounds witness enumeration; with |D| ≤ MaxFacts the true
// clause count is far below it, so hitting the limit is itself a bug.
const lineageLimit = 1 << 16

// obddNodes caps OBDD compilation; an oversized diagram skips the OBDD
// checks rather than failing the case.
const obddNodes = 1 << 15

// evalSeed derives the engine seed for one attempt of one check.
func evalSeed(c *Case, site uint64, attempt int) int64 {
	s := splitmix.Derive(c.Seed, site, c.Index*(maxRetries+1)+attempt)
	return int64(s.Uint64() >> 1)
}

// maxRetries bounds the attempt-index space carved out per case in
// evalSeed; Config.Retries beyond this would reuse streams.
const maxRetries = 7

// RunDifferential evaluates every engine applicable to the case and
// checks each against the brute-force oracles, charging b for every
// statistical assertion. It returns nil if all engines agree, or an
// error naming the first failing check. Engines that decline the
// instance (core.ErrUnsupported, obdd.ErrTooLarge) are skipped — being
// out of class is not a bug — but oracle failures are.
func RunDifferential(c *Case, cfg Config, b *Budget) error {
	if cfg.Retries > maxRetries {
		return fmt.Errorf("testkit: Retries %d exceeds the seed-stream bound %d", cfg.Retries, maxRetries)
	}
	exactP, err := exact.PQE(c.Query, c.H)
	if err != nil {
		return fmt.Errorf("exact.PQE oracle: %w", err)
	}
	exactN, err := exact.UR(c.Query, c.H.DB())
	if err != nil {
		return fmt.Errorf("exact.UR oracle: %w", err)
	}

	// Statistical engines: retried with independent derived seeds, each
	// full check charging checkDelta to the budget.
	statistical := func(name string, site uint64, eval func(opts core.Options) error) error {
		var lastErr error
		for a := 0; a <= cfg.Retries; a++ {
			opts := core.Options{Epsilon: cfg.Epsilon, Trials: cfg.Trials, Seed: evalSeed(c, site, a), Obs: cfg.Obs}
			lastErr = eval(opts)
			if lastErr == nil || errors.Is(lastErr, core.ErrUnsupported) {
				break
			}
		}
		if errors.Is(lastErr, core.ErrUnsupported) {
			return nil
		}
		b.Charge(cfg.checkDelta())
		if lastErr != nil {
			return fmt.Errorf("%s: %w", name, lastErr)
		}
		return nil
	}

	if err := statistical("pqe/nfta", sitePQE, func(opts core.Options) error {
		v, err := core.PQEEstimate(c.Query, c.H, opts)
		if err != nil {
			return err
		}
		return CheckRel(exactP, v, cfg.Tolerance())
	}); err != nil {
		return err
	}
	if err := statistical("ur/nfta", siteUR, func(opts core.Options) error {
		v, err := core.UREstimate(c.Query, c.H.DB(), opts)
		if err != nil {
			return err
		}
		return CheckRelCount(exactN, v, cfg.Tolerance())
	}); err != nil {
		return err
	}
	if c.Query.IsPath() {
		if err := statistical("pqe/path-nfa", sitePathPQE, func(opts core.Options) error {
			v, err := core.PathPQEEstimate(c.Query, c.H, opts)
			if err != nil {
				return err
			}
			return CheckRel(exactP, v, cfg.Tolerance())
		}); err != nil {
			return err
		}
		if err := statistical("ur/path-nfa", sitePathUR, func(opts core.Options) error {
			v, err := core.PathEstimate(c.Query, c.H.DB(), opts)
			if err != nil {
				return err
			}
			return CheckRelCount(exactN, v, cfg.Tolerance())
		}); err != nil {
			return err
		}
	}

	// Monte Carlo baseline: one attempt, additive Hoeffding tolerance.
	mc := montecarlo.Estimate(c.Query, c.H, montecarlo.Options{
		Samples: cfg.MCSamples,
		Seed:    evalSeed(c, siteMC, 0),
	})
	b.Charge(cfg.MCDelta)
	if err := CheckAbs(exactP, mc, cfg.MCTolerance()); err != nil {
		return fmt.Errorf("montecarlo: %w", err)
	}

	// Deterministic engines: exact rational agreement, no budget charge.
	if safeplan.IsSafe(c.Query) {
		v, err := safeplan.Evaluate(c.Query, c.H)
		if err != nil {
			return fmt.Errorf("safeplan: %w", err)
		}
		if err := CheckExact(exactP, v); err != nil {
			return fmt.Errorf("safeplan: %w", err)
		}
	}
	dnf, err := lineage.Compute(c.Query, c.H.DB(), lineageLimit)
	if err != nil {
		return fmt.Errorf("lineage: %w", err)
	}
	if err := CheckExact(exactP, dnf.WMCExact(c.H)); err != nil {
		return fmt.Errorf("lineage/wmc: %w", err)
	}
	if o, err := obdd.CompileDNF(dnf, obddNodes); err == nil {
		if err := CheckExact(exactP, o.WMC(c.H)); err != nil {
			return fmt.Errorf("obdd/wmc: %w", err)
		}
		if got := o.CountModels(); got.Cmp(exactN) != 0 {
			return fmt.Errorf("obdd/countmodels: got %v, want %v", got, exactN)
		}
	} else if !errors.Is(err, obdd.ErrTooLarge) {
		return fmt.Errorf("obdd: %w", err)
	}
	return nil
}
