package testkit

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"pqe/internal/obs"
)

var (
	flagSeed  = flag.Int64("testkit.seed", 1, "master seed for the randomized suites")
	flagCases = flag.Int("testkit.cases", 0, "number of cases per suite (0 = 24 short / 96 long, PQE_TESTKIT_CASES overrides)")
	flagCase  = flag.Int("testkit.case", -1, "replay only this case index (-1 = all)")
)

// budgetCap bounds the whole suite's false-failure probability: with it
// holding, a red run is a real bug except one time in 10⁴ suite
// executions — and the defaults leave orders of magnitude of headroom.
const budgetCap = 1e-4

func suiteCases(t *testing.T) []int {
	t.Helper()
	if *flagCase >= 0 {
		return []int{*flagCase}
	}
	n := *flagCases
	if n == 0 {
		if env := os.Getenv("PQE_TESTKIT_CASES"); env != "" {
			v, err := strconv.Atoi(env)
			if err != nil {
				t.Fatalf("PQE_TESTKIT_CASES=%q: %v", env, err)
			}
			n = v
		} else if testing.Short() {
			n = 24
		} else {
			n = 96
		}
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// caseScope builds the per-case telemetry scope the suites thread into
// every engine call: when a case fails, its report carries the stage
// timings and effort counters of the failing run.
func caseScope() *obs.Scope {
	return obs.NewScope(obs.NewTracer(), obs.NewRegistry(), obs.NewConvergence())
}

// fail reports a testkit failure: capture the failing run's telemetry,
// shrink the case, write the repro artifacts if a directory is
// configured, and stop the test with the replayable report.
func fail(t *testing.T, c *Case, err error, sc *obs.Scope, rerun func(*Case) bool) {
	t.Helper()
	// Render telemetry before shrinking: the shrinker's reruns would
	// append their spans to the same scope and bury the failing run's.
	var telemetry strings.Builder
	if sc.Enabled() {
		if werr := obs.WriteReport(&telemetry, sc.Tracer(), sc.Registry()); werr != nil {
			telemetry.Reset()
		}
	}
	min := Shrink(c, rerun)
	report := fmt.Sprintf("%v\n%s", err, min.Repro())
	if telemetry.Len() > 0 {
		report += "\n--- telemetry of the failing run ---\n" + telemetry.String()
	}
	if dir := os.Getenv("PQE_TESTKIT_REPRO_DIR"); dir != "" {
		name := filepath.Join(dir, fmt.Sprintf("repro-seed%d-case%d.txt", c.Seed, c.Index))
		if werr := os.WriteFile(name, []byte(report), 0o644); werr == nil {
			report += "\nrepro written to " + name
		}
		if sc.Enabled() {
			var trace strings.Builder
			if werr := obs.WriteTrace(&trace, sc.Tracer(), sc.Convergence(), sc.Registry()); werr == nil {
				obsName := filepath.Join(dir, fmt.Sprintf("repro-seed%d-case%d-obs.json", c.Seed, c.Index))
				if werr := os.WriteFile(obsName, []byte(trace.String()), 0o644); werr == nil {
					report += "\ntelemetry written to " + obsName
				}
			}
		}
	}
	t.Fatal(report)
}

// TestDifferential is the tentpole: every engine against the exact
// oracles over the randomized case stream.
func TestDifferential(t *testing.T) {
	cfg := Defaults()
	b := &Budget{Cap: budgetCap}
	for _, i := range suiteCases(t) {
		c := NewCase(*flagSeed, i)
		cfg.Obs = caseScope()
		if err := RunDifferential(c, cfg, b); err != nil {
			fail(t, c, err, cfg.Obs, func(cand *Case) bool {
				return RunDifferential(cand, cfg, &Budget{Cap: budgetCap}) != nil
			})
		}
	}
	if !b.Ok() {
		t.Errorf("false-failure budget exceeded: spent %.3g > cap %.3g", b.Spent, b.Cap)
	}
	t.Logf("budget spent %.3g of %.3g", b.Spent, b.Cap)
}

// TestMetamorphic checks the cross-run properties on the same stream.
func TestMetamorphic(t *testing.T) {
	cfg := Defaults()
	b := &Budget{Cap: budgetCap}
	for _, i := range suiteCases(t) {
		c := NewCase(*flagSeed, i)
		cfg.Obs = caseScope()
		if err := RunMetamorphic(c, cfg, b); err != nil {
			fail(t, c, err, cfg.Obs, func(cand *Case) bool {
				return RunMetamorphic(cand, cfg, &Budget{Cap: budgetCap}) != nil
			})
		}
	}
	if !b.Ok() {
		t.Errorf("false-failure budget exceeded: spent %.3g > cap %.3g", b.Spent, b.Cap)
	}
}

// TestDifferentialService cross-checks the HTTP service against direct
// library calls on the same randomized case stream: every case is
// loaded through the public text formats, queried over a real loopback
// listener (one-shot and SSE-streamed), and must agree with the direct
// pqe.Estimator byte for byte — probability bits, routing method and
// reason, and trial count. The name keeps it on the CI and nightly
// -run 'TestDifferential|TestMetamorphic' lanes.
func TestDifferentialService(t *testing.T) {
	cfg := Defaults()
	h := NewServiceHarness()
	defer h.Close()
	for _, i := range suiteCases(t) {
		c := NewCase(*flagSeed, i)
		cfg.Obs = caseScope()
		if err := RunServiceDifferential(c, cfg, h); err != nil {
			fail(t, c, err, cfg.Obs, func(cand *Case) bool {
				return RunServiceDifferential(cand, cfg, h) != nil
			})
		}
	}
}

// TestDeltaSoak is the endurance variant of the delta bit-identity
// property: long sessions of interleaved random deltas and estimates,
// each estimate compared against a from-scratch estimator. The short
// default keeps CI fast; the nightly lane raises the step count with
// PQE_TESTKIT_DELTA_STEPS. Failures go through fail(), so the repro —
// including the replayable delta trace in the error — lands in
// PQE_TESTKIT_REPRO_DIR when configured.
func TestDeltaSoak(t *testing.T) {
	steps := 8
	if env := os.Getenv("PQE_TESTKIT_DELTA_STEPS"); env != "" {
		v, err := strconv.Atoi(env)
		if err != nil {
			t.Fatalf("PQE_TESTKIT_DELTA_STEPS=%q: %v", env, err)
		}
		steps = v
	} else if testing.Short() {
		steps = 3
	}
	cfg := Defaults()
	for _, i := range suiteCases(t) {
		c := NewCase(*flagSeed, i)
		cfg.Obs = caseScope()
		if err := DeltaSoak(c, cfg, steps); err != nil {
			fail(t, c, err, cfg.Obs, func(cand *Case) bool {
				return DeltaSoak(cand, cfg, steps) != nil
			})
		}
	}
}

// TestConfigObsThreading pins the failure-report contract: a scope in
// Config reaches the engines, so when fail() renders it the trace and
// counters are actually there.
func TestConfigObsThreading(t *testing.T) {
	cfg := Defaults()
	cfg.Obs = caseScope()
	c := NewCase(*flagSeed, 0)
	if err := RunDifferential(c, cfg, &Budget{Cap: budgetCap}); err != nil {
		t.Fatal(err)
	}
	if len(cfg.Obs.Tracer().Roots()) == 0 {
		t.Error("engines recorded no spans through Config.Obs")
	}
	snap := cfg.Obs.Registry().Snapshot()
	if len(snap.Counters) == 0 {
		t.Error("engines recorded no counters through Config.Obs")
	}
	var report strings.Builder
	if err := obs.WriteReport(&report, cfg.Obs.Tracer(), cfg.Obs.Registry()); err != nil {
		t.Fatal(err)
	}
	if report.Len() == 0 {
		t.Error("telemetry report for a completed case is empty")
	}
}

// TestCaseGenerationIsDeterministic pins the replayability contract:
// NewCase is a pure function of (seed, index), including the rendered
// instance a repro report prints.
func TestCaseGenerationIsDeterministic(t *testing.T) {
	for i := 0; i < 16; i++ {
		a, b := NewCase(*flagSeed, i), NewCase(*flagSeed, i)
		if a.Repro() != b.Repro() {
			t.Fatalf("case %d is not deterministic:\n%s\nvs\n%s", i, a.Repro(), b.Repro())
		}
		if a.H.Size() > MaxFacts {
			t.Fatalf("case %d has %d facts > MaxFacts %d", i, a.H.Size(), MaxFacts)
		}
	}
	// Different seeds must actually change the stream (guards against a
	// dropped seed parameter).
	x, y := NewCase(1, 0), NewCase(2, 0)
	if x.Repro() == y.Repro() {
		t.Error("seeds 1 and 2 generate identical case 0")
	}
}

// TestShrinkMinimizes exercises the shrinker on a synthetic predicate:
// "the instance has a fact of relation R1" shrinks to exactly one fact
// and one atom.
func TestShrinkMinimizes(t *testing.T) {
	var c *Case
	for i := 0; ; i++ {
		c = NewCase(*flagSeed, i)
		if len(c.Query.Atoms) > 1 && c.H.Size() > 2 {
			break
		}
	}
	hasFact := func(cand *Case) bool { return cand.H.Size() > 0 && len(cand.Query.Atoms) > 0 }
	min := Shrink(c, hasFact)
	if !min.Shrunk {
		t.Fatal("shrinker did not mark the case shrunk")
	}
	if min.H.Size() != 1 || len(min.Query.Atoms) != 1 {
		t.Errorf("shrunk to %d facts, %d atoms; want 1 and 1", min.H.Size(), len(min.Query.Atoms))
	}
}

// TestConfigDeltaAccounting pins the statistical arithmetic the budget
// rests on (a silent change here weakens every assertion).
func TestConfigDeltaAccounting(t *testing.T) {
	cfg := Defaults()
	d := cfg.checkDelta()
	if d <= 0 || d > 1e-10 {
		t.Errorf("default per-check delta = %g, want (0, 1e-10]", d)
	}
	if tol := cfg.Tolerance(); tol < 0.599 || tol > 0.601 {
		t.Errorf("default tolerance = %v, want ≈0.6", tol)
	}
	if a := cfg.MCTolerance(); a < 0.02 || a > 0.03 {
		t.Errorf("default MC tolerance = %v, want ≈0.023", a)
	}
	if binomial(5, 3) != 10 {
		t.Errorf("binomial(5,3) = %d", binomial(5, 3))
	}
}

// TestDifferentialShard cross-checks distributed evaluation against
// local on the same randomized case stream: each applicable engine is
// run with and without a shard pool at worker counts 1, 2 and 4, and
// must produce bit-identical results. The 4-worker pass kills a worker
// halfway through the suite, so the second half additionally proves
// range reassignment does not perturb a single bit. The name keeps it
// on the CI and nightly -run 'TestDifferential|TestMetamorphic' lanes.
func TestDifferentialShard(t *testing.T) {
	cases := suiteCases(t)
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := Defaults()
			h, err := NewShardHarness(workers)
			if err != nil {
				t.Fatal(err)
			}
			defer h.Close()
			for n, i := range cases {
				if workers == 4 && n == len(cases)/2 {
					h.KillWorker(0)
				}
				c := NewCase(*flagSeed, i)
				cfg.Obs = caseScope()
				if err := RunShardDifferential(c, cfg, h); err != nil {
					fail(t, c, err, cfg.Obs, func(cand *Case) bool {
						return RunShardDifferential(cand, cfg, h) != nil
					})
				}
			}
			if workers == 4 {
				if st := h.Stats(); st.Reassigned == 0 {
					t.Errorf("killed a worker but no range was reassigned: %+v", st)
				}
			}
		})
	}
}
