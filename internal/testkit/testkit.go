// Package testkit is the randomized differential-verification subsystem
// of the repository: it generates small seeded (query, probabilistic
// database) instances across the paper's query families and all three
// probability models, evaluates every applicable engine on each — the
// Theorem 3 NFTA pipeline, the Theorem 2 string pipeline, the Theorem 1
// weighted variants, the Monte Carlo and intensional (lineage/OBDD)
// baselines, the Dalvi–Suciu safe plan — and checks them against the
// brute-force oracles of internal/exact with statistically sound
// assertions (see compare.go for the failure-probability accounting).
// Metamorphic properties (metamorphic.go) cover contracts no single
// engine run can witness: probability monotonicity, session rebinding,
// Workers×Parallel bit-identity, relabeling invariance and union-bound
// consistency. A failing instance is minimized by the shrinker
// (shrink.go) and reported with a replayable seed.
//
// The suite exists because the counting engines are rewritten for
// performance PR after PR: a silently biased estimator passes every
// hand-written unit test, but not a few hundred randomized instances
// compared against ground truth. DESIGN.md §9 documents the
// architecture, the assertion methodology, and the mutations the suite
// demonstrably catches.
package testkit

import (
	"fmt"
	"math/rand"

	"pqe/internal/cq"
	"pqe/internal/gen"
	"pqe/internal/pdb"
	"pqe/internal/splitmix"
)

// MaxFacts bounds generated instance sizes so the 2^|D| exact oracles
// stay feasible (2^14 worlds per oracle call).
const MaxFacts = 14

// Case is one replayable differential-test instance. NewCase(seed, index)
// regenerates it exactly; a shrunk case (Shrunk true) is no longer
// derivable from the seed and is reported inline instead.
type Case struct {
	Seed   int64
	Index  int
	Shape  string
	Model  gen.ProbModel
	Query  *cq.Query
	H      *pdb.Probabilistic
	Shrunk bool
}

// caseSalt separates case-generation streams from the evaluation-seed
// streams derived in runner.go.
const caseSalt = 0x7e57c0de

// NewCase deterministically derives the index-th case of the suite with
// the given master seed: a shape from the paper's query families (paths,
// stars, snowflakes, cycles, random SJF queries), a probability model,
// and a matching random instance small enough for the exact oracles.
func NewCase(seed int64, index int) *Case {
	s := splitmix.Derive(seed, caseSalt, index)
	rng := rand.New(rand.NewSource(int64(s.Uint64() >> 1)))
	shapes := []string{"path2", "path3", "path4", "star2", "star3", "snowflake", "cycle3", "random"}
	shape := shapes[rng.Intn(len(shapes))]
	model := gen.ProbModel(rng.Intn(3))
	sub := rng.Int63()

	var q *cq.Query
	var h *pdb.Probabilistic
	switch shape {
	case "path2", "path3", "path4":
		n := int(shape[4] - '0')
		q = cq.PathQuery("R", n)
		h = gen.SparsePathInstance(q, 1+rng.Intn(2), rng.Intn(2), model, sub)
	case "star2", "star3":
		n := int(shape[4] - '0')
		q = cq.StarQuery("S", n)
		h = gen.Instance(q, gen.Config{
			FactsPerRelation: 2 + rng.Intn(2),
			DomainSize:       2 + rng.Intn(3),
			Model:            model,
			Seed:             sub,
		})
	case "snowflake":
		q = cq.SnowflakeQuery("F", 2, 1)
		h = gen.SnowflakeInstance(q, 1+rng.Intn(2), 1, model, sub)
	case "cycle3":
		q = cq.CycleQuery("C", 3)
		h = gen.Instance(q, gen.Config{
			FactsPerRelation: 2 + rng.Intn(2),
			DomainSize:       2 + rng.Intn(2),
			Model:            model,
			Seed:             sub,
		})
	default: // random SJF conjunctive query
		q = randomSJFQuery(rng)
		h = gen.Instance(q, gen.Config{
			FactsPerRelation: 2 + rng.Intn(2),
			DomainSize:       2 + rng.Intn(2),
			Model:            model,
			Seed:             sub,
		})
	}
	h = capFacts(h, MaxFacts)
	return &Case{Seed: seed, Index: index, Shape: shape, Model: model, Query: q, H: h}
}

// randomSJFQuery draws a small self-join-free CQ of 1–3 atoms with
// arities 1–2 over a shared variable pool, so atoms connect (or stay
// disconnected) at random. Repeated variables within an atom are
// allowed — R(x,x) is a legal CQ atom and has bitten engines before.
func randomSJFQuery(rng *rand.Rand) *cq.Query {
	pool := []string{"x", "y", "z", "u"}
	n := 1 + rng.Intn(3)
	atoms := make([]cq.Atom, n)
	for i := range atoms {
		vars := make([]string, 1+rng.Intn(2))
		for j := range vars {
			vars[j] = pool[rng.Intn(len(pool))]
		}
		atoms[i] = cq.NewAtom(fmt.Sprintf("Q%d", i), vars...)
	}
	return cq.New(atoms...)
}

// capFacts truncates the instance to its first max facts (in fact
// ordering) — a safety net keeping every generated case within reach of
// the brute-force oracles.
func capFacts(h *pdb.Probabilistic, max int) *pdb.Probabilistic {
	if h.Size() <= max {
		return h
	}
	out := pdb.Empty()
	for i, f := range h.DB().Facts() {
		if i == max {
			break
		}
		out.Add(f, h.ProbAt(i))
	}
	return out
}
