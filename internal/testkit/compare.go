package testkit

import (
	"fmt"
	"math"
	"math/big"

	"pqe/internal/efloat"
	"pqe/internal/obs"
)

// Config tunes the statistical strength of the differential checks. The
// zero value is unusable; start from Defaults().
type Config struct {
	// Epsilon is the relative-error target handed to the FPRAS engines.
	Epsilon float64
	// Trials is the median-of-trials boosting factor handed to the
	// engines (odd, so the median is a single trial's value).
	Trials int
	// Slack widens the assertion tolerance to Slack·Epsilon. The engines
	// guarantee each trial lands within (1±ε) with probability ≥ 3/4; by
	// the same Chebyshev argument a trial misses Slack·ε with
	// probability ≤ 1/(4·Slack²), which is what makes the per-check
	// failure probability computable below.
	Slack float64
	// Retries re-runs a failed statistical check with fresh independent
	// seeds before declaring failure; each retry exponentiates the
	// false-failure probability.
	Retries int
	// MCSamples is the Monte Carlo baseline's sample count; MCDelta the
	// false-failure probability budgeted per Monte Carlo check. Hoeffding
	// turns the pair into an additive tolerance.
	MCSamples int
	MCDelta   float64
	// Obs, when non-nil, is threaded into every engine call so a failing
	// case's report can attach the stage timings and effort counters next
	// to the replayable seed. Telemetry never perturbs the engines'
	// seeded randomness, so attaching it does not change what the suite
	// tests.
	Obs *obs.Scope
}

// Defaults returns the suite configuration: per statistical check the
// false-failure probability works out to ≈1e-11 (see Check), so even
// thousands of checks stay far below the suite budget.
func Defaults() Config {
	return Config{
		Epsilon:   0.2,
		Trials:    5,
		Slack:     3,
		Retries:   2,
		MCSamples: 20000,
		MCDelta:   1e-9,
	}
}

// Tolerance is the relative deviation the statistical checks allow.
func (c Config) Tolerance() float64 { return c.Slack * c.Epsilon }

// MCTolerance is the additive deviation allowed for the Monte Carlo
// baseline: Hoeffding gives P(|p̂−p| ≥ a) ≤ 2·exp(−2·n·a²), solved for
// a at failure probability MCDelta.
func (c Config) MCTolerance() float64 {
	return math.Sqrt(math.Log(2/c.MCDelta) / (2 * float64(c.MCSamples)))
}

// checkDelta is the false-failure probability of one fully retried
// statistical check: a single trial misses Slack·ε with probability
// p1 ≤ 1/(4·Slack²); the median of t trials misses only if ≥⌈t/2⌉
// trials do, so p_med ≤ C(t,⌈t/2⌉)·p1^⌈t/2⌉; each retry uses an
// independent derived seed, so failures multiply.
func (c Config) checkDelta() float64 {
	p1 := 1 / (4 * c.Slack * c.Slack)
	k := (c.Trials + 1) / 2
	pmed := float64(binomial(c.Trials, k)) * math.Pow(p1, float64(k))
	if pmed > 1 {
		pmed = 1
	}
	return math.Pow(pmed, float64(c.Retries+1))
}

func binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	r := int64(1)
	for i := 0; i < k; i++ {
		r = r * int64(n-i) / int64(i+1)
	}
	return r
}

// Budget accumulates the false-failure probability spent by a suite: a
// union bound over every statistical assertion issued. A suite asserts
// Spent ≤ Cap at the end, so "this suite flakes less than once in 1/Cap
// runs" is a checked property, not folklore.
type Budget struct {
	Cap   float64
	Spent float64
}

// Charge records one statistical check's failure probability.
func (b *Budget) Charge(delta float64) { b.Spent += delta }

// Ok reports whether the suite stayed within its budget.
func (b *Budget) Ok() bool { return b.Spent <= b.Cap }

// CheckRel asserts a randomized relative-error estimate against an
// exact rational value, charging the budget. It reports whether the
// estimate is within Tolerance; callers retry with fresh seeds before
// failing (Check in runner.go drives the loop). An exact value of zero
// demands an estimate of exactly zero: the engines are unbiased and a
// query with empty lineage has no sampling path to a nonzero estimate.
func CheckRel(exact *big.Rat, estimate, tolerance float64) error {
	want, _ := exact.Float64()
	if exact.Sign() == 0 {
		if estimate != 0 {
			return fmt.Errorf("exact probability is 0 but estimate is %g", estimate)
		}
		return nil
	}
	if rel := math.Abs(estimate-want) / want; rel > tolerance {
		return fmt.Errorf("estimate %g vs exact %g: relative error %.3f > %.3f", estimate, want, rel, tolerance)
	}
	return nil
}

// CheckRelCount is CheckRel for the UR side: an efloat count estimate
// against the exact *big.Int model count.
func CheckRelCount(exact *big.Int, estimate efloat.E, tolerance float64) error {
	if exact.Sign() == 0 {
		if !estimate.IsZero() {
			return fmt.Errorf("exact count is 0 but estimate is %v", estimate)
		}
		return nil
	}
	if estimate.IsZero() {
		return fmt.Errorf("exact count is %v but estimate is 0", exact)
	}
	ratio := estimate.Ratio(efloat.FromBigInt(exact))
	if math.Abs(ratio-1) > tolerance {
		return fmt.Errorf("count estimate off by factor %.4f (exact %v): beyond ±%.3f", ratio, exact, tolerance)
	}
	return nil
}

// CheckAbs asserts an additive-error estimate (the Monte Carlo
// baseline) against the exact value.
func CheckAbs(exact *big.Rat, estimate, tolerance float64) error {
	want, _ := exact.Float64()
	if diff := math.Abs(estimate - want); diff > tolerance {
		return fmt.Errorf("MC estimate %g vs exact %g: |Δ| %.4f > %.4f", estimate, want, diff, tolerance)
	}
	return nil
}

// CheckExact asserts a deterministic engine's rational output equals
// the oracle exactly. Deterministic engines get no tolerance and charge
// nothing to the budget.
func CheckExact(exact, got *big.Rat) error {
	if exact.Cmp(got) != 0 {
		return fmt.Errorf("exact-engine mismatch: got %v, want %v", got, exact)
	}
	return nil
}
