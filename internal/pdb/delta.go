package pdb

import (
	"fmt"
	"strings"
)

// DeltaKind distinguishes the three fact-level mutations a delta can
// carry.
type DeltaKind int

const (
	// DeltaInsert adds a new fact (with its probability label on a
	// probabilistic instance). The fact must be absent.
	DeltaInsert DeltaKind = iota
	// DeltaDelete removes an existing fact. The fact must be present.
	DeltaDelete
	// DeltaReweight replaces the probability label of an existing fact
	// without touching the fact ordering. Probabilistic instances only.
	DeltaReweight
)

// String names the kind with the sigil used in rendered traces.
func (k DeltaKind) String() string {
	switch k {
	case DeltaInsert:
		return "+"
	case DeltaDelete:
		return "-"
	case DeltaReweight:
		return "~"
	}
	return fmt.Sprintf("DeltaKind(%d)", int(k))
}

// DeltaOp is one fact-level mutation. Prob is used by inserts and
// reweights and ignored by deletes.
type DeltaOp struct {
	Kind DeltaKind
	Fact Fact
	Prob Prob
}

// Insert, Delete and Reweight build the three op kinds.
func Insert(f Fact, p Prob) DeltaOp   { return DeltaOp{Kind: DeltaInsert, Fact: f, Prob: p} }
func Delete(f Fact) DeltaOp           { return DeltaOp{Kind: DeltaDelete, Fact: f} }
func Reweight(f Fact, p Prob) DeltaOp { return DeltaOp{Kind: DeltaReweight, Fact: f, Prob: p} }

// String renders the op, e.g. "+R(a,b):1/2", "-S(x,y)", "~R(a,b):1/3".
func (op DeltaOp) String() string {
	switch op.Kind {
	case DeltaDelete:
		return "-" + op.Fact.Key()
	default:
		return op.Kind.String() + op.Fact.Key() + ":" + op.Prob.String()
	}
}

// Delta is an ordered batch of fact-level mutations, applied atomically:
// either every op validates (against the sequentially evolving instance,
// so a delta may delete and then re-insert one fact) and all are
// applied, or none are and the instance is untouched.
type Delta []DeltaOp

// Structural reports whether the delta contains inserts or deletes —
// ops that change the fact ordering, as opposed to reweight-only deltas
// that leave every ordering-keyed artifact valid.
func (d Delta) Structural() bool {
	for _, op := range d {
		if op.Kind != DeltaReweight {
			return true
		}
	}
	return false
}

// String renders the delta as a replayable space-separated op trace.
func (d Delta) String() string {
	parts := make([]string, len(d))
	for i, op := range d {
		parts[i] = op.String()
	}
	return strings.Join(parts, " ")
}

// DeltaSummary reports what an applied delta did.
type DeltaSummary struct {
	Inserts   int
	Deletes   int
	Reweights int
	// Version is the instance version after the delta.
	Version uint64
}

// Structural reports whether the applied delta changed the fact
// ordering.
func (s DeltaSummary) Structural() bool { return s.Inserts > 0 || s.Deletes > 0 }

// validateDelta checks every op against the instance with the preceding
// ops virtually applied (an overlay of presence changes), without
// mutating anything. allowReweight gates DeltaReweight (plain Database
// instances carry no labels).
func validateDelta(db *Database, delta Delta, allowReweight bool) error {
	var overlay map[string]bool // key -> present after preceding ops
	present := func(f Fact) bool {
		if p, ok := overlay[f.Key()]; ok {
			return p
		}
		return db.Contains(f)
	}
	mark := func(f Fact, p bool) {
		if overlay == nil {
			overlay = make(map[string]bool, len(delta))
		}
		overlay[f.Key()] = p
	}
	for i, op := range delta {
		switch op.Kind {
		case DeltaInsert:
			if present(op.Fact) {
				return fmt.Errorf("pdb: delta op %d inserts existing fact %v", i, op.Fact)
			}
			mark(op.Fact, true)
		case DeltaDelete:
			if !present(op.Fact) {
				return fmt.Errorf("pdb: delta op %d deletes nonexistent fact %v", i, op.Fact)
			}
			mark(op.Fact, false)
		case DeltaReweight:
			if !allowReweight {
				return fmt.Errorf("pdb: delta op %d reweights fact %v on an unweighted database", i, op.Fact)
			}
			if !present(op.Fact) {
				return fmt.Errorf("pdb: delta op %d reweights nonexistent fact %v", i, op.Fact)
			}
		default:
			return fmt.Errorf("pdb: delta op %d has unknown kind %d", i, int(op.Kind))
		}
	}
	return nil
}

// ApplyDelta applies the batch to the probabilistic instance. On error
// the instance is unchanged; on success every op was applied in order
// and the summary carries the new version.
func (h *Probabilistic) ApplyDelta(delta Delta) (DeltaSummary, error) {
	if err := validateDelta(h.db, delta, true); err != nil {
		return DeltaSummary{}, err
	}
	var s DeltaSummary
	for _, op := range delta {
		switch op.Kind {
		case DeltaInsert:
			h.Add(op.Fact, op.Prob)
			s.Inserts++
		case DeltaDelete:
			h.Remove(op.Fact)
			s.Deletes++
		case DeltaReweight:
			h.Reweight(op.Fact, op.Prob)
			s.Reweights++
		}
	}
	s.Version = h.Version()
	return s, nil
}

// ApplyDelta applies the batch to the plain instance. Reweight ops are
// rejected (there are no labels to reweight). On error the instance is
// unchanged.
func (d *Database) ApplyDelta(delta Delta) (DeltaSummary, error) {
	if err := validateDelta(d, delta, false); err != nil {
		return DeltaSummary{}, err
	}
	var s DeltaSummary
	for _, op := range delta {
		switch op.Kind {
		case DeltaInsert:
			d.Add(op.Fact)
			s.Inserts++
		case DeltaDelete:
			d.Remove(op.Fact)
			s.Deletes++
		}
	}
	s.Version = d.Version()
	return s, nil
}
