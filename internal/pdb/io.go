package pdb

import (
	"bufio"
	"fmt"
	"io"
	"math/big"
	"strings"
)

// Parse reads a probabilistic database in the textual format
//
//	# comment
//	R(a, b) : 3/4
//	S(b)    : 0.25
//	T(a, c)             // probability defaults to 1
//
// Probabilities may be fractions ("3/4") or exact decimals ("0.25"); both
// are rational per the paper's model. Blank lines and lines starting with
// '#' are ignored.
func Parse(r io.Reader) (*Probabilistic, error) {
	h := Empty()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fact, prob, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("pdb: line %d: %w", lineNo, err)
		}
		h.Add(fact, prob)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pdb: %w", err)
	}
	return h, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Probabilistic, error) {
	return Parse(strings.NewReader(s))
}

func parseLine(line string) (Fact, Prob, error) {
	factPart := line
	probPart := ""
	if i := strings.LastIndexByte(line, ':'); i >= 0 {
		factPart = strings.TrimSpace(line[:i])
		probPart = strings.TrimSpace(line[i+1:])
	}
	fact, err := ParseFact(factPart)
	if err != nil {
		return Fact{}, Prob{}, err
	}
	prob := ProbOne
	if probPart != "" {
		r, ok := new(big.Rat).SetString(probPart)
		if !ok {
			return Fact{}, Prob{}, fmt.Errorf("invalid probability %q", probPart)
		}
		if r.Sign() < 0 || r.Cmp(big.NewRat(1, 1)) > 0 {
			return Fact{}, Prob{}, fmt.Errorf("probability %q outside [0,1]", probPart)
		}
		prob = ProbFromRat(r)
	}
	return fact, prob, nil
}

// ParseFact parses a single ground atom such as "R(a, b)". A 0-ary fact
// may be written "R()" or just "R".
func ParseFact(s string) (Fact, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 {
		if !validIdent(s) {
			return Fact{}, fmt.Errorf("invalid fact %q", s)
		}
		return Fact{Relation: s}, nil
	}
	if !strings.HasSuffix(s, ")") {
		return Fact{}, fmt.Errorf("invalid fact %q: missing ')'", s)
	}
	rel := strings.TrimSpace(s[:open])
	if !validIdent(rel) {
		return Fact{}, fmt.Errorf("invalid relation name %q", rel)
	}
	inner := strings.TrimSpace(s[open+1 : len(s)-1])
	if inner == "" {
		return Fact{Relation: rel}, nil
	}
	parts := strings.Split(inner, ",")
	args := make([]string, len(parts))
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return Fact{}, fmt.Errorf("invalid fact %q: empty argument", s)
		}
		args[i] = p
	}
	return Fact{Relation: rel, Args: args}, nil
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Format writes the probabilistic database in the textual format accepted
// by Parse, in fact-ordering order.
func Format(w io.Writer, h *Probabilistic) error {
	for i, f := range h.DB().Facts() {
		if _, err := fmt.Fprintf(w, "%s : %s\n", f.Key(), h.ProbAt(i)); err != nil {
			return err
		}
	}
	return nil
}

// FormatString renders the database via Format.
func FormatString(h *Probabilistic) string {
	var b strings.Builder
	_ = Format(&b, h)
	return b.String()
}
