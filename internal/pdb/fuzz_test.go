package pdb

import "testing"

// FuzzParse checks that the database parser never panics and that
// accepted databases round-trip through Format.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"R(a,b) : 1/2\n",
		"R(a) : 0.25\nS(b)\n",
		"# comment\n\nT(a, c) : 1\n",
		"R(a : 1/2",
		"R(a) : 5/4",
		"R(a,b):3/7\nR(a,b):1/7\n",
		": 1/2",
		"R() : 0\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		h, err := ParseString(s)
		if err != nil {
			return
		}
		h2, err := ParseString(FormatString(h))
		if err != nil {
			t.Fatalf("formatted database does not re-parse: %v", err)
		}
		if h.String() != h2.String() {
			t.Fatalf("round trip changed database:\n%s\n%s", h, h2)
		}
	})
}

// FuzzParseFact checks the single-fact parser.
func FuzzParseFact(f *testing.F) {
	for _, seed := range []string{"R(a,b)", "R", "R()", "¬R(a)", "R(a,", "1R(a)"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		fact, err := ParseFact(s)
		if err != nil {
			return
		}
		again, err := ParseFact(fact.Key())
		if err != nil {
			t.Fatalf("fact key %q does not re-parse: %v", fact.Key(), err)
		}
		if !fact.Equal(again) {
			t.Fatalf("round trip changed fact: %v -> %v", fact, again)
		}
	})
}
