// Package pdb implements the probabilistic database model of the paper
// (Section 2): a database instance is a finite set of facts Rᵢ(c₁,…,c_k)
// over a relational schema, and a probabilistic database instance
// H = (D, π) equips each fact with an independent rational probability
// label π(f) ∈ [0, 1] ∩ ℚ. The labelling induces a product distribution
// over the subinstances D' ⊆ D, and the probability of a Boolean query is
// the total mass of the satisfying subinstances.
package pdb

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
)

// Fact is a ground atom R(c₁,…,c_k). Args are constants from the universe,
// represented as strings. Facts are compared by value.
type Fact struct {
	Relation string
	Args     []string
}

// NewFact constructs a fact.
func NewFact(relation string, args ...string) Fact {
	return Fact{Relation: relation, Args: args}
}

// Arity returns the number of arguments of the fact.
func (f Fact) Arity() int { return len(f.Args) }

// Key returns a canonical string identity for the fact, usable as a map
// key. Two facts are the same fact iff their keys are equal.
func (f Fact) Key() string {
	var b strings.Builder
	b.WriteString(f.Relation)
	b.WriteByte('(')
	for i, a := range f.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(a)
	}
	b.WriteByte(')')
	return b.String()
}

// String renders the fact as R(a,b).
func (f Fact) String() string { return f.Key() }

// Equal reports whether two facts are identical.
func (f Fact) Equal(g Fact) bool {
	if f.Relation != g.Relation || len(f.Args) != len(g.Args) {
		return false
	}
	for i := range f.Args {
		if f.Args[i] != g.Args[i] {
			return false
		}
	}
	return true
}

// Database is a deterministic database instance: an ordered set of facts.
// The order is the insertion order; it is stable and serves as the fixed
// total ordering ≺ᵢ on the facts of each relation that the automaton
// constructions require.
//
// The instance is a continuously updatable value: every structural
// mutation (an actual insert or removal) bumps a monotone version
// counter, so caches built over a snapshot of the fact ordering can be
// keyed to Version instead of comparing fact lists.
type Database struct {
	facts   []Fact
	index   map[string]int // fact key -> position in facts
	version uint64
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{index: make(map[string]int)}
}

// FromFacts builds a database from the given facts, ignoring duplicates.
func FromFacts(facts ...Fact) *Database {
	d := NewDatabase()
	for _, f := range facts {
		d.Add(f)
	}
	return d
}

// Add inserts a fact. Adding a fact that is already present is a no-op.
// It returns the position of the fact in the database's fact ordering.
func (d *Database) Add(f Fact) int {
	if i, ok := d.index[f.Key()]; ok {
		return i
	}
	i := len(d.facts)
	d.facts = append(d.facts, f)
	d.index[f.Key()] = i
	d.version++
	return i
}

// Remove deletes a fact, preserving the relative order of the remaining
// facts (deletion keeps every per-relation ≺ᵢ ordering intact). It
// reports whether the fact was present.
func (d *Database) Remove(f Fact) bool {
	k := f.Key()
	i, ok := d.index[k]
	if !ok {
		return false
	}
	delete(d.index, k)
	copy(d.facts[i:], d.facts[i+1:])
	d.facts = d.facts[:len(d.facts)-1]
	for j := i; j < len(d.facts); j++ {
		d.index[d.facts[j].Key()] = j
	}
	d.version++
	return true
}

// Version returns the monotone mutation counter: it grows on every
// actual insert or removal and never decreases. Equal versions of one
// Database value imply an unchanged fact ordering.
func (d *Database) Version() uint64 { return d.version }

// Size returns |D|, the number of facts.
func (d *Database) Size() int { return len(d.facts) }

// Facts returns the facts in insertion order. The returned slice must not
// be modified.
func (d *Database) Facts() []Fact { return d.facts }

// Fact returns the i-th fact in insertion order.
func (d *Database) Fact(i int) Fact { return d.facts[i] }

// Contains reports whether the database contains the fact.
func (d *Database) Contains(f Fact) bool {
	_, ok := d.index[f.Key()]
	return ok
}

// IndexOf returns the position of the fact in insertion order, or -1 if
// absent.
func (d *Database) IndexOf(f Fact) int {
	if i, ok := d.index[f.Key()]; ok {
		return i
	}
	return -1
}

// IndexOfKey is IndexOf addressed by the fact's canonical Key() string,
// avoiding the key rebuild when the caller already holds one (symbol
// names in the automata are fact keys).
func (d *Database) IndexOfKey(k string) int {
	if i, ok := d.index[k]; ok {
		return i
	}
	return -1
}

// Relations returns the set of relation names appearing in the database,
// sorted lexicographically.
func (d *Database) Relations() []string {
	seen := make(map[string]bool)
	for _, f := range d.facts {
		seen[f.Relation] = true
	}
	names := make([]string, 0, len(seen))
	for r := range seen {
		names = append(names, r)
	}
	sort.Strings(names)
	return names
}

// FactsOf returns the facts of the given relation, in the database's
// fact ordering (the paper's ≺ᵢ).
func (d *Database) FactsOf(relation string) []Fact {
	var out []Fact
	for _, f := range d.facts {
		if f.Relation == relation {
			out = append(out, f)
		}
	}
	return out
}

// Project returns the subinstance of d containing only facts over the
// given relations (the "projection" used in the proofs of Theorems 1
// and 3 to drop relations not occurring in the query).
func (d *Database) Project(relations map[string]bool) *Database {
	out := NewDatabase()
	for _, f := range d.facts {
		if relations[f.Relation] {
			out.Add(f)
		}
	}
	return out
}

// Subinstance materializes the subinstance selected by the given
// presence bitmask over the fact ordering. Bit i of mask selects fact i.
// It panics if mask has the wrong length.
func (d *Database) Subinstance(mask []bool) *Database {
	if len(mask) != len(d.facts) {
		panic(fmt.Sprintf("pdb: mask length %d != database size %d", len(mask), len(d.facts)))
	}
	out := NewDatabase()
	for i, present := range mask {
		if present {
			out.Add(d.facts[i])
		}
	}
	return out
}

// Clone returns a deep copy of the database. The copy starts at the
// source's version, so version-keyed artifacts remain comparable across
// a snapshot ("a fresh build at the same database version").
func (d *Database) Clone() *Database {
	out := NewDatabase()
	for _, f := range d.facts {
		args := make([]string, len(f.Args))
		copy(args, f.Args)
		out.Add(Fact{Relation: f.Relation, Args: args})
	}
	out.version = d.version
	return out
}

// String renders the database as a sorted, comma-separated fact list.
func (d *Database) String() string {
	keys := make([]string, len(d.facts))
	for i, f := range d.facts {
		keys[i] = f.Key()
	}
	sort.Strings(keys)
	return "{" + strings.Join(keys, ", ") + "}"
}

// Prob is a rational probability in [0, 1]. The zero value is probability
// 0. Probabilities are immutable once created.
type Prob struct {
	r *big.Rat
}

// NewProb returns the probability num/den. It panics unless
// 0 ≤ num/den ≤ 1 and den > 0.
func NewProb(num, den int64) Prob {
	if den <= 0 {
		panic("pdb: probability denominator must be positive")
	}
	r := big.NewRat(num, den)
	return probFromRat(r)
}

// ProbFromRat returns the probability given by r, which must lie in [0,1].
func ProbFromRat(r *big.Rat) Prob {
	return probFromRat(new(big.Rat).Set(r))
}

func probFromRat(r *big.Rat) Prob {
	if r.Sign() < 0 || r.Cmp(big.NewRat(1, 1)) > 0 {
		panic(fmt.Sprintf("pdb: probability %v outside [0,1]", r))
	}
	return Prob{r: r}
}

// ProbOne is probability 1; ProbHalf is probability 1/2.
var (
	ProbOne  = NewProb(1, 1)
	ProbHalf = NewProb(1, 2)
)

// Rat returns the probability as a new big.Rat.
func (p Prob) Rat() *big.Rat {
	if p.r == nil {
		return new(big.Rat)
	}
	return new(big.Rat).Set(p.r)
}

// Num returns the numerator wᵢ of the reduced fraction.
func (p Prob) Num() *big.Int {
	if p.r == nil {
		return big.NewInt(0)
	}
	return new(big.Int).Set(p.r.Num())
}

// Den returns the denominator dᵢ of the reduced fraction.
func (p Prob) Den() *big.Int {
	if p.r == nil {
		return big.NewInt(1)
	}
	return new(big.Int).Set(p.r.Denom())
}

// Complement returns 1 − p.
func (p Prob) Complement() Prob {
	one := big.NewRat(1, 1)
	return probFromRat(one.Sub(one, p.ratRef()))
}

func (p Prob) ratRef() *big.Rat {
	if p.r == nil {
		return new(big.Rat)
	}
	return p.r
}

// Float returns the probability as a float64.
func (p Prob) Float() float64 {
	f, _ := p.ratRef().Float64()
	return f
}

// IsZero and IsOne report the extreme probabilities.
func (p Prob) IsZero() bool { return p.ratRef().Sign() == 0 }
func (p Prob) IsOne() bool  { return p.ratRef().Cmp(big.NewRat(1, 1)) == 0 }

// Cmp compares p and q.
func (p Prob) Cmp(q Prob) int { return p.ratRef().Cmp(q.ratRef()) }

// String renders the probability as a fraction.
func (p Prob) String() string { return p.ratRef().RatString() }

// BitSize returns the aggregate bit length of the numerator and
// denominator; the paper's |H| includes this encoding size.
func (p Prob) BitSize() int {
	r := p.ratRef()
	return r.Num().BitLen() + r.Denom().BitLen()
}

// Probabilistic is a probabilistic database instance H = (D, π). Like
// Database it is versioned: structural mutations bump the underlying
// database counter and probability relabelings bump a separate one, and
// Version exposes their monotone sum.
type Probabilistic struct {
	db    *Database
	probs []Prob // parallel to db.Facts()
	pver  uint64 // probability-relabel counter
}

// NewProbabilistic wraps a database with the uniform probability p on
// every fact.
func NewProbabilistic(db *Database, p Prob) *Probabilistic {
	probs := make([]Prob, db.Size())
	for i := range probs {
		probs[i] = p
	}
	return &Probabilistic{db: db, probs: probs}
}

// Uniform returns H = (D, π) with π ≡ 1/2, the uniform-reliability
// instance (Section 2).
func Uniform(db *Database) *Probabilistic {
	return NewProbabilistic(db, ProbHalf)
}

// Empty returns an empty probabilistic database.
func Empty() *Probabilistic {
	return &Probabilistic{db: NewDatabase()}
}

// Add inserts a fact with its probability. Re-adding an existing fact
// overwrites its probability (a relabel, bumping the version).
func (h *Probabilistic) Add(f Fact, p Prob) {
	i := h.db.Add(f)
	if i == len(h.probs) {
		h.probs = append(h.probs, p)
	} else {
		h.probs[i] = p
		h.pver++
	}
}

// Remove deletes a fact and its probability label, preserving the order
// of the remaining facts. It reports whether the fact was present.
func (h *Probabilistic) Remove(f Fact) bool {
	i := h.db.IndexOf(f)
	if i < 0 {
		return false
	}
	h.db.Remove(f)
	copy(h.probs[i:], h.probs[i+1:])
	h.probs = h.probs[:len(h.probs)-1]
	return true
}

// Reweight replaces π(f) in place, bumping the version. It reports
// whether the fact was present; an absent fact leaves H unchanged.
func (h *Probabilistic) Reweight(f Fact, p Prob) bool {
	i := h.db.IndexOf(f)
	if i < 0 {
		return false
	}
	h.probs[i] = p
	h.pver++
	return true
}

// Version returns a monotone counter combining the structural version
// of the underlying database and the probability-relabel count. Equal
// versions of one Probabilistic value imply identical fact ordering and
// labels.
func (h *Probabilistic) Version() uint64 { return h.db.version + h.pver }

// Clone returns a deep copy of the instance, starting at the source's
// version.
func (h *Probabilistic) Clone() *Probabilistic {
	return &Probabilistic{
		db:    h.db.Clone(),
		probs: append([]Prob(nil), h.probs...),
		pver:  h.pver,
	}
}

// DB returns the underlying deterministic database instance.
func (h *Probabilistic) DB() *Database { return h.db }

// Size returns |D|.
func (h *Probabilistic) Size() int { return h.db.Size() }

// Prob returns π(f). It panics if f ∉ D.
func (h *Probabilistic) Prob(f Fact) Prob {
	i := h.db.IndexOf(f)
	if i < 0 {
		panic(fmt.Sprintf("pdb: fact %v not in database", f))
	}
	return h.probs[i]
}

// ProbAt returns the probability of the i-th fact in the fact ordering.
func (h *Probabilistic) ProbAt(i int) Prob { return h.probs[i] }

// EncodingSize returns |H| = |D| plus the aggregate bit size of all
// probability labels, per the paper's definition.
func (h *Probabilistic) EncodingSize() int {
	n := h.db.Size()
	for _, p := range h.probs {
		n += p.BitSize()
	}
	return n
}

// Project returns the probabilistic subinstance over the given relations,
// preserving the probability labels.
func (h *Probabilistic) Project(relations map[string]bool) *Probabilistic {
	out := Empty()
	for i, f := range h.db.Facts() {
		if relations[f.Relation] {
			out.Add(f, h.probs[i])
		}
	}
	return out
}

// WithProb returns a copy of the instance with the probability of one
// fact replaced. It panics if the fact is absent.
func (h *Probabilistic) WithProb(f Fact, p Prob) *Probabilistic {
	i := h.db.IndexOf(f)
	if i < 0 {
		panic(fmt.Sprintf("pdb: fact %v not in database", f))
	}
	out := Empty()
	for j, g := range h.db.Facts() {
		if j == i {
			out.Add(g, p)
		} else {
			out.Add(g, h.probs[j])
		}
	}
	return out
}

// SubinstanceProb returns Pr_H(D') for the subinstance selected by mask:
// the product of π(f) over the present facts and 1−π(f) over the absent
// ones, computed exactly as a rational.
func (h *Probabilistic) SubinstanceProb(mask []bool) *big.Rat {
	if len(mask) != h.db.Size() {
		panic("pdb: mask length mismatch")
	}
	prob := big.NewRat(1, 1)
	one := big.NewRat(1, 1)
	for i, present := range mask {
		p := h.probs[i].ratRef()
		if present {
			prob.Mul(prob, p)
		} else {
			prob.Mul(prob, new(big.Rat).Sub(one, p))
		}
	}
	return prob
}

// DenominatorProduct returns d = ∏ᵢ dᵢ, the product of all probability
// denominators, used to rescale the multiplier-automaton count in
// Theorem 1.
func (h *Probabilistic) DenominatorProduct() *big.Int {
	d := big.NewInt(1)
	for _, p := range h.probs {
		d.Mul(d, p.ratRef().Denom())
	}
	return d
}

// String renders the instance with probabilities.
func (h *Probabilistic) String() string {
	parts := make([]string, h.db.Size())
	for i, f := range h.db.Facts() {
		parts[i] = fmt.Sprintf("%s : %s", f.Key(), h.probs[i])
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ", ") + "}"
}
