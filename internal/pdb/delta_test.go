package pdb

import (
	"strings"
	"testing"
)

func factList(d *Database) string {
	keys := make([]string, d.Size())
	for i, f := range d.Facts() {
		keys[i] = f.Key()
	}
	return strings.Join(keys, " ")
}

func TestRemovePreservesOrder(t *testing.T) {
	d := FromFacts(NewFact("R", "a"), NewFact("S", "b"), NewFact("R", "c"), NewFact("S", "d"))
	v0 := d.Version()
	if !d.Remove(NewFact("S", "b")) {
		t.Fatal("Remove of present fact reported absent")
	}
	if got, want := factList(d), "R(a) R(c) S(d)"; got != want {
		t.Fatalf("order after Remove = %q, want %q", got, want)
	}
	if d.Version() <= v0 {
		t.Fatalf("version did not grow: %d -> %d", v0, d.Version())
	}
	if d.IndexOf(NewFact("S", "d")) != 2 || d.IndexOf(NewFact("R", "c")) != 1 {
		t.Fatal("index not recompacted after Remove")
	}
	if d.Remove(NewFact("S", "b")) {
		t.Fatal("Remove of absent fact reported present")
	}
}

func TestDeltaDeleteNonexistentIsAtomic(t *testing.T) {
	h := Empty()
	h.Add(NewFact("R", "a", "b"), ProbHalf)
	h.Add(NewFact("R", "b", "c"), ProbHalf)
	v0 := h.Version()
	before := h.String()

	// Op 0 would apply; op 1 must fail validation and leave H untouched.
	_, err := h.ApplyDelta(Delta{
		Reweight(NewFact("R", "a", "b"), NewProb(1, 3)),
		Delete(NewFact("R", "z", "z")),
	})
	if err == nil {
		t.Fatal("delete of nonexistent fact did not error")
	}
	if h.Version() != v0 {
		t.Fatalf("failed delta bumped version %d -> %d", v0, h.Version())
	}
	if h.String() != before {
		t.Fatalf("failed delta mutated instance: %s -> %s", before, h.String())
	}
}

func TestDeltaInsertExistingErrors(t *testing.T) {
	h := Empty()
	h.Add(NewFact("R", "a"), ProbHalf)
	if _, err := h.ApplyDelta(Delta{Insert(NewFact("R", "a"), ProbHalf)}); err == nil {
		t.Fatal("insert of existing fact did not error")
	}
	if _, err := h.ApplyDelta(Delta{Reweight(NewFact("S", "x"), ProbHalf)}); err == nil {
		t.Fatal("reweight of nonexistent fact did not error")
	}
}

func TestDeltaSequentialOverlay(t *testing.T) {
	h := Empty()
	h.Add(NewFact("R", "a"), ProbHalf)
	// Delete then re-insert the same fact within one delta: legal, and
	// the fact moves to the end of the ordering.
	h.Add(NewFact("R", "b"), ProbHalf)
	sum, err := h.ApplyDelta(Delta{
		Delete(NewFact("R", "a")),
		Insert(NewFact("R", "a"), NewProb(1, 4)),
	})
	if err != nil {
		t.Fatalf("delete-then-reinsert delta: %v", err)
	}
	if sum.Inserts != 1 || sum.Deletes != 1 || sum.Reweights != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if !sum.Structural() {
		t.Fatal("summary not structural")
	}
	if got, want := factList(h.DB()), "R(b) R(a)"; got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}
	if h.Prob(NewFact("R", "a")).String() != "1/4" {
		t.Fatalf("reinserted prob = %v", h.Prob(NewFact("R", "a")))
	}
	// Inserting a fact twice within one delta must fail even though it
	// is absent from the base instance.
	if _, err := h.ApplyDelta(Delta{
		Insert(NewFact("S", "s"), ProbHalf),
		Insert(NewFact("S", "s"), ProbHalf),
	}); err == nil {
		t.Fatal("double insert within one delta did not error")
	}
	if h.DB().Contains(NewFact("S", "s")) {
		t.Fatal("failed delta left a partial insert behind")
	}
}

func TestDeltaDeleteThenReinsertLastRestoresOrdering(t *testing.T) {
	// Deleting the last fact and re-inserting it restores the exact fact
	// ordering — the pdb-level half of the round-trip property (the
	// estimator-level half, bit-identical estimates, lives in core).
	h := Empty()
	h.Add(NewFact("R", "a", "b"), ProbHalf)
	h.Add(NewFact("R", "b", "c"), NewProb(1, 3))
	before := factList(h.DB())
	last := NewFact("R", "b", "c")

	if _, err := h.ApplyDelta(Delta{Delete(last)}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.ApplyDelta(Delta{Insert(last, NewProb(1, 3))}); err != nil {
		t.Fatal(err)
	}
	if got := factList(h.DB()); got != before {
		t.Fatalf("ordering after round trip = %q, want %q", got, before)
	}
	if h.Prob(last).String() != "1/3" {
		t.Fatalf("prob after round trip = %v", h.Prob(last))
	}
}

func TestDeltaReweightOnlyIsNonStructural(t *testing.T) {
	h := Empty()
	h.Add(NewFact("R", "a"), ProbHalf)
	v0 := h.Version()
	d := Delta{Reweight(NewFact("R", "a"), NewProb(2, 3))}
	if d.Structural() {
		t.Fatal("reweight-only delta claims structural")
	}
	sum, err := h.ApplyDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Structural() || sum.Reweights != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	if h.DB().Version() != v0 {
		t.Fatalf("reweight bumped the structural version %d -> %d", v0, h.DB().Version())
	}
	if h.Version() <= v0 {
		t.Fatalf("reweight did not bump the instance version")
	}
	if h.ProbAt(0).String() != "2/3" {
		t.Fatalf("prob = %v", h.ProbAt(0))
	}
}

func TestDatabaseApplyDeltaRejectsReweight(t *testing.T) {
	d := FromFacts(NewFact("R", "a"))
	if _, err := d.ApplyDelta(Delta{Reweight(NewFact("R", "a"), ProbHalf)}); err == nil {
		t.Fatal("reweight on plain Database did not error")
	}
	sum, err := d.ApplyDelta(Delta{Insert(NewFact("R", "b"), Prob{}), Delete(NewFact("R", "a"))})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Inserts != 1 || sum.Deletes != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	if got, want := factList(d), "R(b)"; got != want {
		t.Fatalf("facts = %q, want %q", got, want)
	}
}

func TestDeltaString(t *testing.T) {
	d := Delta{
		Insert(NewFact("R", "a", "b"), ProbHalf),
		Delete(NewFact("S", "x")),
		Reweight(NewFact("R", "a", "b"), NewProb(1, 3)),
	}
	if got, want := d.String(), "+R(a,b):1/2 -S(x) ~R(a,b):1/3"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestCloneVersionsAndIndependence(t *testing.T) {
	h := Empty()
	h.Add(NewFact("R", "a"), ProbHalf)
	h.Reweight(NewFact("R", "a"), NewProb(1, 3))
	c := h.Clone()
	if c.Version() != h.Version() {
		t.Fatalf("clone version %d != source %d", c.Version(), h.Version())
	}
	c.Add(NewFact("R", "z"), ProbHalf)
	if h.DB().Contains(NewFact("R", "z")) {
		t.Fatal("clone shares storage with source")
	}
	if c.Version() <= h.Version() {
		t.Fatal("clone mutation did not advance its version")
	}
}
