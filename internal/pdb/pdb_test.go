package pdb

import (
	"math/big"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestFactKeyAndEqual(t *testing.T) {
	f := NewFact("R", "a", "b")
	g := NewFact("R", "a", "b")
	h := NewFact("R", "b", "a")
	if f.Key() != "R(a,b)" {
		t.Errorf("Key = %q", f.Key())
	}
	if !f.Equal(g) {
		t.Error("equal facts reported unequal")
	}
	if f.Equal(h) {
		t.Error("distinct facts reported equal")
	}
	if f.Equal(NewFact("S", "a", "b")) {
		t.Error("facts over different relations reported equal")
	}
	if f.Arity() != 2 {
		t.Errorf("Arity = %d", f.Arity())
	}
	zero := NewFact("P")
	if zero.Key() != "P()" {
		t.Errorf("0-ary Key = %q", zero.Key())
	}
}

func TestDatabaseAddAndOrder(t *testing.T) {
	d := NewDatabase()
	i := d.Add(NewFact("R", "a", "b"))
	j := d.Add(NewFact("S", "b"))
	k := d.Add(NewFact("R", "a", "b")) // duplicate
	if i != 0 || j != 1 || k != 0 {
		t.Errorf("positions = %d,%d,%d", i, j, k)
	}
	if d.Size() != 2 {
		t.Errorf("Size = %d", d.Size())
	}
	if !d.Contains(NewFact("S", "b")) || d.Contains(NewFact("S", "c")) {
		t.Error("Contains wrong")
	}
	if d.IndexOf(NewFact("S", "b")) != 1 || d.IndexOf(NewFact("T")) != -1 {
		t.Error("IndexOf wrong")
	}
	if got := d.Relations(); !reflect.DeepEqual(got, []string{"R", "S"}) {
		t.Errorf("Relations = %v", got)
	}
}

func TestFactsOfPreservesOrdering(t *testing.T) {
	d := FromFacts(
		NewFact("R", "3"),
		NewFact("S", "x"),
		NewFact("R", "1"),
		NewFact("R", "2"),
	)
	got := d.FactsOf("R")
	want := []string{"R(3)", "R(1)", "R(2)"}
	if len(got) != len(want) {
		t.Fatalf("FactsOf returned %d facts", len(got))
	}
	for i := range got {
		if got[i].Key() != want[i] {
			t.Errorf("FactsOf[%d] = %s, want %s", i, got[i].Key(), want[i])
		}
	}
}

func TestProject(t *testing.T) {
	d := FromFacts(NewFact("R", "a"), NewFact("S", "b"), NewFact("T", "c"))
	p := d.Project(map[string]bool{"R": true, "T": true})
	if p.Size() != 2 || !p.Contains(NewFact("R", "a")) || !p.Contains(NewFact("T", "c")) {
		t.Errorf("Project = %v", p)
	}
}

func TestSubinstance(t *testing.T) {
	d := FromFacts(NewFact("R", "a"), NewFact("R", "b"), NewFact("S", "c"))
	sub := d.Subinstance([]bool{true, false, true})
	if sub.Size() != 2 || sub.Contains(NewFact("R", "b")) {
		t.Errorf("Subinstance = %v", sub)
	}
	defer func() {
		if recover() == nil {
			t.Error("bad mask did not panic")
		}
	}()
	d.Subinstance([]bool{true})
}

func TestProbBasics(t *testing.T) {
	p := NewProb(3, 4)
	if p.String() != "3/4" {
		t.Errorf("String = %q", p.String())
	}
	if got := p.Complement().String(); got != "1/4" {
		t.Errorf("Complement = %q", got)
	}
	if p.Num().Int64() != 3 || p.Den().Int64() != 4 {
		t.Errorf("Num/Den = %v/%v", p.Num(), p.Den())
	}
	if !NewProb(0, 5).IsZero() || !NewProb(5, 5).IsOne() {
		t.Error("IsZero/IsOne wrong")
	}
	if NewProb(1, 2).Cmp(NewProb(2, 3)) != -1 {
		t.Error("Cmp wrong")
	}
	var zero Prob
	if !zero.IsZero() || zero.Float() != 0 {
		t.Error("zero-value Prob should be 0")
	}
	if zero.Den().Int64() != 1 {
		t.Error("zero-value denominator should be 1")
	}
}

func TestProbReduction(t *testing.T) {
	// 2/4 reduces to 1/2, so the numerator/denominator used in the
	// multiplier construction are those of the reduced fraction.
	p := NewProb(2, 4)
	if p.Num().Int64() != 1 || p.Den().Int64() != 2 {
		t.Errorf("2/4 reduced to %v/%v", p.Num(), p.Den())
	}
}

func TestProbPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"negative":       func() { NewProb(-1, 2) },
		"greater than 1": func() { NewProb(3, 2) },
		"zero den":       func() { NewProb(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSubinstanceProb(t *testing.T) {
	h := Empty()
	h.Add(NewFact("R", "a"), NewProb(1, 2))
	h.Add(NewFact("R", "b"), NewProb(1, 3))
	// Pr({R(a)}) = 1/2 · 2/3 = 1/3.
	got := h.SubinstanceProb([]bool{true, false})
	if got.Cmp(big.NewRat(1, 3)) != 0 {
		t.Errorf("SubinstanceProb = %v", got)
	}
	// All four subinstances sum to 1.
	total := new(big.Rat)
	for m := 0; m < 4; m++ {
		total.Add(total, h.SubinstanceProb([]bool{m&1 != 0, m&2 != 0}))
	}
	if total.Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("subinstance probabilities sum to %v", total)
	}
}

func TestDenominatorProduct(t *testing.T) {
	h := Empty()
	h.Add(NewFact("R", "a"), NewProb(1, 2))
	h.Add(NewFact("R", "b"), NewProb(2, 3))
	h.Add(NewFact("R", "c"), ProbOne)
	if got := h.DenominatorProduct(); got.Int64() != 6 {
		t.Errorf("DenominatorProduct = %v", got)
	}
}

func TestUniform(t *testing.T) {
	d := FromFacts(NewFact("R", "a"), NewFact("R", "b"))
	h := Uniform(d)
	for i := 0; i < d.Size(); i++ {
		if h.ProbAt(i).Cmp(ProbHalf) != 0 {
			t.Errorf("fact %d probability = %v", i, h.ProbAt(i))
		}
	}
}

func TestProbabilisticProjectKeepsLabels(t *testing.T) {
	h := Empty()
	h.Add(NewFact("R", "a"), NewProb(1, 4))
	h.Add(NewFact("S", "b"), NewProb(3, 4))
	p := h.Project(map[string]bool{"S": true})
	if p.Size() != 1 {
		t.Fatalf("Size = %d", p.Size())
	}
	if got := p.Prob(NewFact("S", "b")); got.Cmp(NewProb(3, 4)) != 0 {
		t.Errorf("projected probability = %v", got)
	}
}

func TestEncodingSize(t *testing.T) {
	h := Empty()
	h.Add(NewFact("R", "a"), NewProb(3, 4)) // 2 + 3 bits
	if got := h.EncodingSize(); got != 1+2+3 {
		t.Errorf("EncodingSize = %d", got)
	}
}

func TestParseAndFormatRoundTrip(t *testing.T) {
	in := `
# a comment
R(a, b) : 3/4
S(b) : 0.25
T(a, c)
U() : 1/3
`
	h, err := ParseString(in)
	if err != nil {
		t.Fatal(err)
	}
	if h.Size() != 4 {
		t.Fatalf("Size = %d", h.Size())
	}
	if got := h.Prob(NewFact("R", "a", "b")); got.String() != "3/4" {
		t.Errorf("R prob = %v", got)
	}
	if got := h.Prob(NewFact("S", "b")); got.String() != "1/4" {
		t.Errorf("S prob = %v (decimal must parse exactly)", got)
	}
	if got := h.Prob(NewFact("T", "a", "c")); !got.IsOne() {
		t.Errorf("T prob = %v, want 1", got)
	}
	if got := h.Prob(NewFact("U")); got.String() != "1/3" {
		t.Errorf("U prob = %v", got)
	}

	h2, err := ParseString(FormatString(h))
	if err != nil {
		t.Fatal(err)
	}
	if h2.String() != h.String() {
		t.Errorf("round trip mismatch:\n%v\n%v", h, h2)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"R(a : 1/2",
		"R(a) : 5/4",
		"R(a) : -1/2",
		"R(a) : x",
		"(a,b) : 1/2",
		"R(a,,b)",
		"1R(a)",
	} {
		if _, err := ParseString(bad); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", bad)
		}
	}
}

func TestParseFact(t *testing.T) {
	f, err := ParseFact(" Edge ( a , b ) ")
	if err != nil {
		t.Fatal(err)
	}
	if f.Key() != "Edge(a,b)" {
		t.Errorf("Key = %q", f.Key())
	}
	g, err := ParseFact("Flag")
	if err != nil {
		t.Fatal(err)
	}
	if g.Key() != "Flag()" {
		t.Errorf("bare relation Key = %q", g.Key())
	}
}

// Property: for random small instances, the subinstance distribution is a
// probability distribution (masses sum to exactly 1).
func TestQuickDistributionSumsToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := Empty()
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			den := int64(1 + rng.Intn(8))
			num := int64(rng.Intn(int(den) + 1))
			h.Add(NewFact("R", string(rune('a'+i))), NewProb(num, den))
		}
		total := new(big.Rat)
		mask := make([]bool, n)
		for m := 0; m < 1<<n; m++ {
			for i := range mask {
				mask[i] = m&(1<<i) != 0
			}
			total.Add(total, h.SubinstanceProb(mask))
		}
		return total.Cmp(big.NewRat(1, 1)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Parse(Format(h)) is the identity on the canonical rendering.
func TestQuickIORoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := Empty()
		rels := []string{"R", "S", "T"}
		for i := 0; i < 1+rng.Intn(10); i++ {
			den := int64(1 + rng.Intn(16))
			num := int64(rng.Intn(int(den) + 1))
			nargs := rng.Intn(3)
			args := make([]string, nargs)
			for j := range args {
				args[j] = string(rune('a' + rng.Intn(5)))
			}
			h.Add(Fact{Relation: rels[rng.Intn(len(rels))], Args: args}, NewProb(num, den))
		}
		h2, err := Parse(strings.NewReader(FormatString(h)))
		return err == nil && h2.String() == h.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
