package serve

import (
	"encoding/json"
	"math/big"
	"net/http"
	"time"

	"pqe"
	"pqe/internal/obs"
)

// deltaRequest is the body of POST /v1/delta.
type deltaRequest struct {
	Database string `json:"database"`
	// BaseVersion, when present, is an optimistic concurrency check:
	// the delta applies only if the database is still at this version,
	// otherwise the request fails with 409 and the current version.
	BaseVersion *uint64       `json:"base_version"`
	Ops         []deltaOpJSON `json:"ops"`
}

type deltaOpJSON struct {
	Op       string   `json:"op"` // "insert", "delete" or "reweight"
	Relation string   `json:"relation"`
	Args     []string `json:"args"`
	// Prob is a rational ("2/3") or decimal ("0.5") probability;
	// required for insert and reweight, ignored for delete.
	Prob string `json:"prob"`
}

type deltaResponse struct {
	Database  string `json:"database"`
	Version   uint64 `json:"version"`
	Inserts   int    `json:"inserts"`
	Deletes   int    `json:"deletes"`
	Reweights int    `json:"reweights"`
}

// handleDelta applies a fact-level delta under the database write lock:
// it waits for in-flight estimates over this database to finish, checks
// the optimistic version, applies atomically, and retires every cached
// session of the database (their keys embed the old version).
func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	tk := s.track(w, r, "delta")
	tk.ensureID(0) // deltas carry no seed; ID from the zero stream
	s.reg.Counter("pqed_deltas_total").Inc()
	if s.draining.Load() {
		tk.fail(http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req deltaRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		tk.fail(http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Database == "" {
		req.Database = "default"
	}
	tk.db = req.Database
	if len(req.Ops) == 0 {
		tk.fail(http.StatusBadRequest, "empty delta")
		return
	}
	delta := pqe.NewDelta()
	for i, op := range req.Ops {
		var prob *big.Rat
		if op.Op == "insert" || op.Op == "reweight" {
			if op.Prob == "" {
				tk.fail(http.StatusBadRequest, "op %d: %s needs a prob", i, op.Op)
				return
			}
			prob = new(big.Rat)
			if _, ok := prob.SetString(op.Prob); !ok {
				tk.fail(http.StatusBadRequest, "op %d: bad prob %q", i, op.Prob)
				return
			}
		}
		switch op.Op {
		case "insert":
			delta.Insert(op.Relation, prob, op.Args...)
		case "delete":
			delta.Delete(op.Relation, op.Args...)
		case "reweight":
			delta.Reweight(op.Relation, prob, op.Args...)
		default:
			tk.fail(http.StatusBadRequest, "op %d: unknown op %q", i, op.Op)
			return
		}
	}

	s.mu.Lock()
	ent := s.dbs[req.Database]
	s.mu.Unlock()
	if ent == nil {
		tk.fail(http.StatusNotFound, "unknown database %q", req.Database)
		return
	}

	// Waiting for in-flight estimates (readers) to release the database
	// is this route's queue phase.
	lockT0 := time.Now()
	ent.mu.Lock()
	tk.phases.Add(obs.PhaseQueue, time.Since(lockT0))
	if req.BaseVersion != nil && *req.BaseVersion != ent.db.Version() {
		cur := ent.db.Version()
		ent.mu.Unlock()
		s.reg.Counter("pqed_delta_conflicts_total").Inc()
		tk.version = cur
		tk.errMsg = "stale base_version"
		t0 := time.Now()
		writeJSON(w, http.StatusConflict, errorResponse{
			Error:   "stale base_version",
			Version: cur,
		})
		tk.phases.Add(obs.PhaseSerialize, time.Since(t0))
		tk.finish(http.StatusConflict)
		return
	}
	applyT0 := time.Now()
	sum, err := ent.db.ApplyDelta(delta)
	version := ent.db.Version()
	// Applying the delta rebuilds automaton parts incrementally — the
	// write-side analogue of the build phase.
	tk.phases.Add(obs.PhaseBuild, time.Since(applyT0))
	ent.mu.Unlock()
	tk.version = version
	if err != nil {
		tk.fail(http.StatusBadRequest, "delta rejected: %v", err)
		return
	}
	// Sessions for the pre-delta version can never be hit again (the
	// key embeds the version); drop them now so their automata free.
	s.mu.Lock()
	s.sessions.evictDatabase(req.Database, s.reg)
	s.mu.Unlock()
	t0 := time.Now()
	writeJSON(w, http.StatusOK, deltaResponse{
		Database:  req.Database,
		Version:   version,
		Inserts:   sum.Inserts,
		Deletes:   sum.Deletes,
		Reweights: sum.Reweights,
	})
	tk.phases.Add(obs.PhaseSerialize, time.Since(t0))
	tk.finish(http.StatusOK)
}
