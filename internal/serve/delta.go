package serve

import (
	"encoding/json"
	"math/big"
	"net/http"

	"pqe"
)

// deltaRequest is the body of POST /v1/delta.
type deltaRequest struct {
	Database string `json:"database"`
	// BaseVersion, when present, is an optimistic concurrency check:
	// the delta applies only if the database is still at this version,
	// otherwise the request fails with 409 and the current version.
	BaseVersion *uint64       `json:"base_version"`
	Ops         []deltaOpJSON `json:"ops"`
}

type deltaOpJSON struct {
	Op       string   `json:"op"` // "insert", "delete" or "reweight"
	Relation string   `json:"relation"`
	Args     []string `json:"args"`
	// Prob is a rational ("2/3") or decimal ("0.5") probability;
	// required for insert and reweight, ignored for delete.
	Prob string `json:"prob"`
}

type deltaResponse struct {
	Database  string `json:"database"`
	Version   uint64 `json:"version"`
	Inserts   int    `json:"inserts"`
	Deletes   int    `json:"deletes"`
	Reweights int    `json:"reweights"`
}

// handleDelta applies a fact-level delta under the database write lock:
// it waits for in-flight estimates over this database to finish, checks
// the optimistic version, applies atomically, and retires every cached
// session of the database (their keys embed the old version).
func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("pqed_deltas_total").Inc()
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req deltaRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Database == "" {
		req.Database = "default"
	}
	if len(req.Ops) == 0 {
		writeError(w, http.StatusBadRequest, "empty delta")
		return
	}
	delta := pqe.NewDelta()
	for i, op := range req.Ops {
		var prob *big.Rat
		if op.Op == "insert" || op.Op == "reweight" {
			if op.Prob == "" {
				writeError(w, http.StatusBadRequest, "op %d: %s needs a prob", i, op.Op)
				return
			}
			prob = new(big.Rat)
			if _, ok := prob.SetString(op.Prob); !ok {
				writeError(w, http.StatusBadRequest, "op %d: bad prob %q", i, op.Prob)
				return
			}
		}
		switch op.Op {
		case "insert":
			delta.Insert(op.Relation, prob, op.Args...)
		case "delete":
			delta.Delete(op.Relation, op.Args...)
		case "reweight":
			delta.Reweight(op.Relation, prob, op.Args...)
		default:
			writeError(w, http.StatusBadRequest, "op %d: unknown op %q", i, op.Op)
			return
		}
	}

	s.mu.Lock()
	ent := s.dbs[req.Database]
	s.mu.Unlock()
	if ent == nil {
		writeError(w, http.StatusNotFound, "unknown database %q", req.Database)
		return
	}

	ent.mu.Lock()
	if req.BaseVersion != nil && *req.BaseVersion != ent.db.Version() {
		cur := ent.db.Version()
		ent.mu.Unlock()
		s.reg.Counter("pqed_delta_conflicts_total").Inc()
		writeJSON(w, http.StatusConflict, errorResponse{
			Error:   "stale base_version",
			Version: cur,
		})
		return
	}
	sum, err := ent.db.ApplyDelta(delta)
	version := ent.db.Version()
	ent.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, "delta rejected: %v", err)
		return
	}
	// Sessions for the pre-delta version can never be hit again (the
	// key embeds the version); drop them now so their automata free.
	s.mu.Lock()
	s.sessions.evictDatabase(req.Database, s.reg)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, deltaResponse{
		Database:  req.Database,
		Version:   version,
		Inserts:   sum.Inserts,
		Deletes:   sum.Deletes,
		Reweights: sum.Reweights,
	})
}
