package serve

import (
	"container/list"
	"strconv"
	"sync"

	"pqe"
	"pqe/internal/obs"
)

// session is one cached Estimator plus the mutex that serializes its
// users (an Estimator is not safe for concurrent use). A session keeps
// working after eviction — in-flight holders own a direct pointer —
// the LRU only bounds how many are retained for reuse.
type session struct {
	mu  sync.Mutex
	est *pqe.Estimator
	db  string // database name, for bulk eviction on delta
	key string
}

// sessionLRU is a bounded map of sessions with least-recently-used
// eviction. Callers must hold the server mutex (Server.mu) — the LRU
// itself is not synchronized; the per-session mutex protects the
// estimator inside.
type sessionLRU struct {
	max   int
	items map[string]*list.Element // key -> element holding *session
	order *list.List               // front = most recently used
}

func newSessionLRU(max int) *sessionLRU {
	return &sessionLRU{max: max, items: make(map[string]*list.Element), order: list.New()}
}

// sessionKey identifies an estimator session: the query text, the
// database name, the database version (so a delta retires every prior
// session of that database), and the construction-relevant option.
func sessionKey(query, db string, version uint64, maxWidth int) string {
	return query + "\x00" + db + "\x00" + strconv.FormatUint(version, 10) + "\x00" + strconv.Itoa(maxWidth)
}

// get returns the cached session for key and marks it most recently
// used.
func (l *sessionLRU) get(key string) *session {
	if el, ok := l.items[key]; ok {
		l.order.MoveToFront(el)
		return el.Value.(*session)
	}
	return nil
}

// put inserts a session and evicts from the tail past capacity.
func (l *sessionLRU) put(sess *session, reg *obs.Registry) {
	l.items[sess.key] = l.order.PushFront(sess)
	for len(l.items) > l.max {
		tail := l.order.Back()
		if tail == nil {
			break
		}
		evicted := tail.Value.(*session)
		l.order.Remove(tail)
		delete(l.items, evicted.key)
		reg.Counter("pqed_session_evictions_total").Inc()
	}
}

// evictDatabase drops every session over the named database (any
// version) — deltas call this so stale sessions free their automata
// immediately instead of aging out of the LRU.
func (l *sessionLRU) evictDatabase(db string, reg *obs.Registry) {
	for el := l.order.Front(); el != nil; {
		next := el.Next()
		if sess := el.Value.(*session); sess.db == db {
			l.order.Remove(el)
			delete(l.items, sess.key)
			reg.Counter("pqed_session_evictions_total").Inc()
		}
		el = next
	}
}

// len reports the live session count.
func (l *sessionLRU) len() int { return len(l.items) }

// sessionFor returns the session for the request (most-recently-used
// on hit, freshly constructed and inserted on miss). The caller must
// hold the database entry's read lock so the version cannot move
// between key computation and use.
func (s *Server) sessionFor(req estimateRequest, q *pqe.Query, ent *dbEntry, version uint64) (*session, bool) {
	key := sessionKey(req.Query, ent.name, version, req.Options.MaxWidth)
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess := s.sessions.get(key); sess != nil {
		return sess, true
	}
	// The constructor's options carry the construction knobs and the
	// server-wide telemetry, so build-stage metrics (pqe_build_*)
	// accumulate in the service /metrics across requests.
	sess := &session{
		est: pqe.NewEstimator(q, ent.db, &pqe.Options{MaxWidth: req.Options.MaxWidth, Telemetry: s.tel}),
		db:  ent.name,
		key: key,
	}
	s.sessions.put(sess, s.reg)
	return sess, false
}

// SessionCount reports the live session-cache size (for tests).
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions.len()
}
