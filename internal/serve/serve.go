// Package serve exposes the pqe engines as a long-lived HTTP/JSON
// service. A Server owns named probabilistic databases and a bounded
// LRU of Estimator sessions keyed by (query, database, version), so
// repeated estimates of the same query reuse the cached decomposition
// and automata across requests. Concurrent requests are admitted
// against a shared scheduler budget (sched.Budget): each request holds
// MaxProcs worker tokens for the duration of its counting call, and a
// request that cannot be admitted within the configured queue wait is
// shed with 429 and a Retry-After hint. Per-request deadlines thread a
// context into the sampling loops, so an expired deadline stops work
// within one trial batch and surfaces as 504.
//
// Endpoints:
//
//	POST /v1/estimate          one-shot estimate (JSON in, JSON out)
//	POST /v1/estimate/stream   same request, SSE: per-trial convergence
//	                           events, then a final "result" event
//	POST /v1/delta             fact-level delta with optimistic version
//	                           check (409 on stale base_version)
//	GET  /v1/databases         the served databases and their versions
//	GET  /metrics              pqed_* service metrics + engine metrics
//	GET  /debug/requests       flight recorder: in-flight and recent
//	                           requests (JSON, or ?format=text)
//	GET  /snapshot.json, /trace.json, /debug/pprof/*  (obs debug)
//
// Observability: every request carries a correlation ID (the client's
// X-Request-Id, or one derived deterministically from the request seed),
// echoed in the response header, stamped on every access-log line and
// recorded in the flight recorder together with the chosen strategy,
// database version, outcome and a per-phase time breakdown
// (queue/build/sample/serialize, exported as pqed_phase_seconds).
//
// Determinism: the service inherits the engines' invariant that a
// seeded estimate is a pure function of (query, database, seed) — the
// same request body returns the bit-identical estimate whether issued
// one-shot or streamed, sequentially or concurrently with itself.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"math/big"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pqe"
	"pqe/internal/obs"
	"pqe/internal/sched"
)

// Config sizes the server. Zero values pick sane defaults.
type Config struct {
	// Budget is the shared worker-token pool: the sum of admitted
	// requests' MaxProcs never exceeds it. Default 4.
	Budget int
	// MaxSessions bounds the Estimator session LRU. Default 64.
	MaxSessions int
	// QueueWait is how long a request may wait for budget admission
	// before being shed with 429. Default 2s.
	QueueWait time.Duration
	// DefaultTimeout bounds a request that does not set timeout_ms.
	// Default 30s.
	DefaultTimeout time.Duration
	// Logger receives structured access-log and scheduler events. Nil
	// discards them (a no-op handler; instrumentation never nil-checks).
	Logger *slog.Logger
	// FlightRecorderSize bounds the flight recorder's ring of retained
	// completed requests. Default 256.
	FlightRecorderSize int
	// RuntimeInterval is the runtime-health poll period (goroutines, GC,
	// heap, scheduler latency → /metrics). Default 10s; negative
	// disables the collector.
	RuntimeInterval time.Duration
	// Shards, when non-nil, distributes every request's FPRAS counting
	// phases across the pool's worker processes. Results stay
	// bit-identical to local evaluation.
	Shards *pqe.ShardPool
}

func (c Config) withDefaults() Config {
	if c.Budget <= 0 {
		c.Budget = 4
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 2 * time.Second
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(nopLogHandler{})
	}
	if c.FlightRecorderSize <= 0 {
		c.FlightRecorderSize = 256
	}
	if c.RuntimeInterval == 0 {
		c.RuntimeInterval = 10 * time.Second
	}
	return c
}

// Server is the HTTP service state. Create one with NewServer, mount
// Handler on a listener, and Drain before exit.
type Server struct {
	cfg    Config
	budget *sched.Budget
	reg    *obs.Registry  // pqed_* service metrics
	tel    *pqe.Telemetry // engine-side telemetry (construction stages)
	log    *slog.Logger
	fr     *obs.FlightRecorder
	rc     *obs.RuntimeCollector
	mux    *http.ServeMux

	// Outcome-labeled request accounting, written once per request by
	// track.finish.
	reqTotal  *obs.CounterVec   // pqed_requests_total{route,outcome}
	phaseHist *obs.HistogramVec // pqed_phase_seconds{phase,route,outcome}
	reqSeq    atomic.Uint64     // request-ID derivation index

	mu       sync.Mutex
	dbs      map[string]*dbEntry
	sessions *sessionLRU

	inflight sync.WaitGroup
	draining atomic.Bool
}

// dbEntry is one served database. The RWMutex serializes deltas
// (writers) against in-flight estimates (readers): an estimate holds
// the read lock for its whole counting call, so a delta never mutates
// fact storage under a running sampler.
type dbEntry struct {
	name string
	mu   sync.RWMutex
	db   *pqe.Database
}

// NewServer builds a server from cfg with no databases; register them
// with AddDatabase before serving.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		budget:   sched.NewBudget(cfg.Budget),
		reg:      obs.NewRegistry(),
		tel:      pqe.NewTelemetry(),
		log:      cfg.Logger,
		fr:       obs.NewFlightRecorder(cfg.FlightRecorderSize),
		dbs:      make(map[string]*dbEntry),
		sessions: newSessionLRU(cfg.MaxSessions),
	}
	// Touch every pqed_* family now so the full set appears in /metrics
	// from the first scrape (a counter that never fires still exports 0).
	for _, name := range []string{
		"pqed_requests_shed_total", "pqed_deadlines_total",
		"pqed_session_hits_total", "pqed_session_misses_total", "pqed_session_evictions_total",
		"pqed_deltas_total", "pqed_delta_conflicts_total",
	} {
		s.reg.Counter(name)
	}
	s.reg.Gauge("pqed_inflight")
	s.reg.Gauge("pqed_budget_in_use")
	s.reg.Gauge("pqed_budget_waiting")
	s.reg.Histogram("pqed_queue_wait_seconds")
	s.reg.Histogram("pqed_request_seconds")
	s.reqTotal = s.reg.CounterVec("pqed_requests_total", "route", "outcome")
	s.phaseHist = s.reg.HistogramVec("pqed_phase_seconds", []string{"phase", "route", "outcome"})
	s.reg.SetHelp("pqed_requests_total", "Completed requests by route and HTTP outcome.")
	s.reg.SetHelp("pqed_phase_seconds", "Per-request time by phase (queue, build, sample, serialize).")
	s.reg.SetHelp("pqed_requests_shed_total", "Requests shed with 429 because the worker budget stayed saturated past the queue wait.")
	s.reg.SetHelp("pqed_deadlines_total", "Requests that exceeded their deadline mid-computation (504).")

	// Scheduler admission events feed the budget gauges and the debug
	// log, keyed by the waiting request's correlation ID.
	s.budget.SetObserver(func(ev sched.BudgetEvent) {
		s.reg.Gauge("pqed_budget_in_use").Set(float64(ev.InUse))
		s.reg.Gauge("pqed_budget_waiting").Set(float64(ev.Waiting))
		s.log.LogAttrs(context.Background(), slog.LevelDebug, "budget",
			slog.String("event", ev.Kind),
			slog.String("request_id", ev.Tag),
			slog.Int("tokens", ev.Tokens),
			slog.Int("in_use", ev.InUse),
			slog.Int("capacity", ev.Capacity),
			slog.Int("waiting", ev.Waiting),
			slog.Float64("waited_ms", float64(ev.Waited)/float64(time.Millisecond)),
		)
	})

	if cfg.RuntimeInterval > 0 {
		s.rc = obs.NewRuntimeCollector(s.reg, cfg.RuntimeInterval)
		s.rc.Start()
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	s.mux.HandleFunc("POST /v1/estimate/stream", s.handleEstimateStream)
	s.mux.HandleFunc("POST /v1/delta", s.handleDelta)
	s.mux.HandleFunc("GET /v1/databases", s.handleDatabases)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	s.mux.Handle("/", s.tel.DebugHandler()) // snapshot.json, trace.json, pprof
	return s
}

// AddDatabase registers db under name (replacing any previous
// registration) and drops sessions keyed to the replaced database.
func (s *Server) AddDatabase(name string, db *pqe.Database) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dbs[name] = &dbEntry{name: name, db: db}
	s.sessions.evictDatabase(name, s.reg)
}

// Handler returns the root handler (the API plus the obs debug
// endpoints) for mounting on an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops admitting new work (503), stops the runtime-health
// collector, and waits until every in-flight request has finished or
// ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.rc.Stop() // nil-safe; idempotent
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Budget exposes the admission semaphore (tests saturate it directly
// to exercise the shed path deterministically).
func (s *Server) Budget() *sched.Budget { return s.budget }

// Registry exposes the pqed_* metrics registry for tests.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Recorder exposes the flight recorder for tests.
func (s *Server) Recorder() *obs.FlightRecorder { return s.fr }

// estimateRequest is the body of /v1/estimate and /v1/estimate/stream.
type estimateRequest struct {
	Query    string          `json:"query"`
	Database string          `json:"database"`
	Options  estimateOptions `json:"options"`
}

type estimateOptions struct {
	// Mode selects the computation: "probability" (routed; default),
	// "estimate" (FPRAS always) or "ur" (uniform reliability).
	Mode       string  `json:"mode"`
	Epsilon    float64 `json:"epsilon"`
	Trials     int     `json:"trials"`
	Delta      float64 `json:"delta"`
	Seed       int64   `json:"seed"`
	MaxWidth   int     `json:"max_width"`
	MaxProcs   int     `json:"max_procs"`
	Strategy   string  `json:"strategy"`
	ForceFPRAS bool    `json:"force_fpras"`
	TimeoutMS  int64   `json:"timeout_ms"`
}

// estimateResponse is the one-shot response body and the streamed
// "result" event payload.
type estimateResponse struct {
	Probability float64 `json:"probability,omitempty"`
	UR          string  `json:"ur,omitempty"` // mode "ur" only
	Exact       bool    `json:"exact"`
	Method      string  `json:"method,omitempty"`
	Reason      string  `json:"reason,omitempty"`
	Trials      int64   `json:"trials"`
	Database    string  `json:"database"`
	Version     uint64  `json:"version"`
	Cache       string  `json:"cache"` // session LRU: "hit" or "miss"
	ElapsedMS   float64 `json:"elapsed_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
	// Version carries the current database version on 409 responses.
	Version uint64 `json:"version,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// admit performs the shared request prologue: drain check, body decode,
// query parse, database lookup, budget admission, deadline setup. On
// success it returns a prepared call; the caller must invoke
// call.release() when done. On failure it has already written the
// response — and finished tk with the failure outcome — and returns
// nil.
func (s *Server) admit(tk *track, r *http.Request) *call {
	if s.draining.Load() {
		tk.ensureID(0)
		tk.fail(http.StatusServiceUnavailable, "server is draining")
		return nil
	}
	var req estimateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		tk.ensureID(0)
		tk.fail(http.StatusBadRequest, "bad request body: %v", err)
		return nil
	}
	// The correlation ID derives from the request seed once the body is
	// known; earlier failures above fall back to the zero stream.
	tk.ensureID(req.Options.Seed)
	tk.qhash = queryHash(req.Query)
	q, err := pqe.ParseQuery(req.Query)
	if err != nil {
		tk.fail(http.StatusBadRequest, "bad query: %v", err)
		return nil
	}
	if req.Database == "" {
		req.Database = "default"
	}
	tk.db = req.Database
	s.mu.Lock()
	ent := s.dbs[req.Database]
	s.mu.Unlock()
	if ent == nil {
		tk.fail(http.StatusNotFound, "unknown database %q", req.Database)
		return nil
	}
	switch req.Options.Mode {
	case "", "probability", "estimate", "ur":
	default:
		tk.fail(http.StatusBadRequest, "unknown mode %q", req.Options.Mode)
		return nil
	}

	// Admission: hold MaxProcs tokens of the shared budget for the
	// duration of the counting call, waiting at most QueueWait.
	s.inflight.Add(1)
	s.reg.Gauge("pqed_inflight").Add(1)
	waitCtx, cancelWait := context.WithTimeout(r.Context(), s.cfg.QueueWait)
	t0 := time.Now()
	tokens, err := s.budget.AcquireTagged(waitCtx, req.Options.MaxProcs, tk.id)
	cancelWait()
	wait := time.Since(t0)
	s.reg.Histogram("pqed_queue_wait_seconds").Observe(wait.Seconds())
	tk.phases.Add(obs.PhaseQueue, wait)
	if err != nil {
		s.reg.Gauge("pqed_inflight").Add(-1)
		s.inflight.Done()
		if r.Context().Err() != nil {
			// Client went away while queued; nothing to say to it.
			tk.fail(http.StatusRequestTimeout, "client cancelled while queued")
			return nil
		}
		s.reg.Counter("pqed_requests_shed_total").Inc()
		tk.w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.QueueWait)))
		tk.fail(http.StatusTooManyRequests,
			"budget saturated: %d/%d workers in use, %d queued",
			s.budget.InUse(), s.budget.Capacity(), s.budget.Waiting())
		return nil
	}

	timeout := s.cfg.DefaultTimeout
	if req.Options.TimeoutMS > 0 {
		timeout = time.Duration(req.Options.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	return &call{s: s, tk: tk, req: req, q: q, ent: ent, tokens: tokens, ctx: ctx, cancel: cancel, start: t0}
}

func retryAfterSeconds(wait time.Duration) int {
	secs := int(wait / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// call is one admitted estimate request.
type call struct {
	s      *Server
	tk     *track
	req    estimateRequest
	q      *pqe.Query
	ent    *dbEntry
	tokens int
	ctx    context.Context
	cancel context.CancelFunc
	start  time.Time
}

func (c *call) release() {
	c.cancel()
	c.s.budget.Release(c.tokens)
	c.s.reg.Gauge("pqed_inflight").Add(-1)
	c.s.reg.Histogram("pqed_request_seconds").Observe(time.Since(c.start).Seconds())
	c.s.inflight.Done()
}

// options builds the per-call pqe.Options: the request knobs, the
// deadline context, and a per-request telemetry whose OnTrial feed
// counts trials (and, when streaming, emits SSE events). Attaching
// telemetry never perturbs seeded results, so one-shot and streamed
// runs of the same request are bit-identical.
func (c *call) options(tel *pqe.Telemetry) *pqe.Options {
	o := c.req.Options
	return &pqe.Options{
		Epsilon:    o.Epsilon,
		Trials:     o.Trials,
		Delta:      o.Delta,
		Seed:       o.Seed,
		MaxWidth:   o.MaxWidth,
		MaxProcs:   o.MaxProcs,
		Strategy:   o.Strategy,
		ForceFPRAS: o.ForceFPRAS,
		Ctx:        c.ctx,
		Telemetry:  tel,
		RequestID:  c.tk.id,
		Shards:     c.s.cfg.Shards,
	}
}

// run executes the admitted request against its session, counting
// trials through a per-request telemetry (onTrial, when non-nil, also
// observes each update — the streaming endpoint's SSE feed). The
// returned response is ready to serialize; a non-nil error carries the
// HTTP status in the int.
func (c *call) run(onTrial func(pqe.TrialUpdate)) (estimateResponse, int, error) {
	s := c.s
	tk := c.tk
	// The read lock spans session lookup and the counting call: a delta
	// (writer) can neither mutate fact storage under a running sampler
	// nor bump the version between lookup and estimate. Waiting for it
	// (behind an in-flight delta) is queue time.
	lockT0 := time.Now()
	c.ent.mu.RLock()
	tk.phases.Add(obs.PhaseQueue, time.Since(lockT0))
	defer c.ent.mu.RUnlock()
	version := c.ent.db.Version()
	sess, hit := s.sessionFor(c.req, c.q, c.ent, version)
	if hit {
		s.reg.Counter("pqed_session_hits_total").Inc()
	} else {
		s.reg.Counter("pqed_session_misses_total").Inc()
	}
	tk.version = version
	tk.cache = cacheLabel(hit)

	var trials atomic.Int64
	tel := pqe.NewTelemetry()
	tel.OnTrial(func(u pqe.TrialUpdate) {
		trials.Add(1)
		if onTrial != nil {
			onTrial(u)
		}
	})
	opts := c.options(tel)

	// The per-session mutex serializes concurrent identical requests —
	// an Estimator is not safe for concurrent use. Each request then
	// runs the same seeded, deterministic call, so concurrent identical
	// requests return bit-identical estimates. Waiting behind an
	// identical in-flight request is queue time too.
	lockT0 = time.Now()
	sess.mu.Lock()
	tk.phases.Add(obs.PhaseQueue, time.Since(lockT0))
	statsBefore := sess.est.BuildStats()
	callT0 := time.Now()
	resp := estimateResponse{Database: c.ent.name, Version: version, Cache: cacheLabel(hit)}
	var err error
	switch c.req.Options.Mode {
	case "ur":
		var ur *big.Float
		ur, err = sess.est.UniformReliability(opts)
		if err == nil {
			resp.UR = ur.Text('g', 17)
			resp.Method = "uniform-reliability"
		}
	case "estimate":
		resp.Probability, err = sess.est.Estimate(opts)
		resp.Method = "fpras (forced)"
	default: // "", "probability"
		var res pqe.Result
		res, err = sess.est.Probability(opts)
		if err == nil {
			resp.Probability = res.Probability
			resp.Exact = res.Exact
			resp.Method = res.Method
			resp.Reason = res.Reason
		}
	}
	callDur := time.Since(callT0)
	statsAfter := sess.est.BuildStats()
	sess.mu.Unlock()

	// Split the engine call into build (automaton construction, accrued
	// into the per-request telemetry by the engine) and sample
	// (everything else: trials, exact plans, serial scans).
	build := time.Duration(tel.PhaseSeconds()["build"] * float64(time.Second))
	if build > callDur {
		build = callDur
	}
	tk.phases.Add(obs.PhaseBuild, build)
	tk.phases.Add(obs.PhaseSample, callDur-build)
	tk.build = classifyBuild(statsBefore, statsAfter)
	tk.method = resp.Method
	tk.reason = resp.Reason
	tk.trials = trials.Load()
	tk.saved = tel.CounterValue("router_trials_saved_total")

	resp.Trials = trials.Load()
	resp.ElapsedMS = float64(time.Since(c.start)) / float64(time.Millisecond)
	if err != nil {
		return resp, errStatus(c, err), err
	}
	return resp, http.StatusOK, nil
}

// classifyBuild labels what session construction this call paid for,
// from the BuildStats delta around it: nothing ran ("cached"), an
// ApplyDelta-maintained automaton was patched ("incremental"), or a
// stage was built from scratch ("full"). The counters are per-session
// but the session registry is shared, so under concurrent load on
// other sessions the label is best-effort.
func classifyBuild(before, after pqe.BuildStats) string {
	switch {
	case after.IncrementalUR > before.IncrementalUR ||
		after.IncrementalPath > before.IncrementalPath:
		return "incremental"
	case after.Decompositions > before.Decompositions ||
		after.URReductions > before.URReductions ||
		after.PathAutomata > before.PathAutomata ||
		after.Weightings > before.Weightings:
		return "full"
	default:
		return "cached"
	}
}

func cacheLabel(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// errStatus maps an estimate error to an HTTP status.
func errStatus(c *call, err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		c.s.reg.Counter("pqed_deadlines_total").Inc()
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// Client disconnect; the status is never seen.
		return http.StatusRequestTimeout
	case errors.Is(err, pqe.ErrUnsupported):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	tk := s.track(w, r, "estimate")
	c := s.admit(tk, r)
	if c == nil {
		return
	}
	defer c.release()
	resp, status, err := c.run(nil)
	if err != nil {
		tk.fail(status, "%v", err)
		return
	}
	t0 := time.Now()
	writeJSON(w, status, resp)
	tk.phases.Add(obs.PhaseSerialize, time.Since(t0))
	tk.finish(status)
}

func (s *Server) handleDatabases(w http.ResponseWriter, r *http.Request) {
	tk := s.track(w, r, "databases")
	tk.ensureID(0)
	type dbInfo struct {
		Name    string `json:"name"`
		Version uint64 `json:"version"`
		Facts   int    `json:"facts"`
	}
	s.mu.Lock()
	infos := make([]dbInfo, 0, len(s.dbs))
	for _, ent := range s.dbs {
		ent.mu.RLock()
		infos = append(infos, dbInfo{Name: ent.name, Version: ent.db.Version(), Facts: ent.db.Size()})
		ent.mu.RUnlock()
	}
	s.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	t0 := time.Now()
	writeJSON(w, http.StatusOK, map[string]any{"databases": infos})
	tk.phases.Add(obs.PhaseSerialize, time.Since(t0))
	tk.finish(http.StatusOK)
}

// handleMetrics writes the combined exposition: the pqed_* service
// registry followed by the engine telemetry's families (pqe_build_*,
// countnfta_*, countnfa_*). Both are plain Prometheus text, so
// concatenation is a valid exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.Snapshot().WritePrometheus(w)
	s.tel.WriteMetricsText(w)
}
