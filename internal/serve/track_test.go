package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"pqe/internal/obs"
)

// syncBuf is a goroutine-safe log sink for capturing slog output.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// accessLines parses the captured JSON log and returns the access-log
// records ("request" messages) as decoded maps.
func (b *syncBuf) accessLines(t *testing.T) []map[string]any {
	t.Helper()
	var out []map[string]any
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad log line %q: %v", sc.Text(), err)
		}
		if m["msg"] == "request" {
			out = append(out, m)
		}
	}
	return out
}

func newLoggedServer(t testing.TB, cfg Config, dbSize int) (*Server, string, *syncBuf) {
	t.Helper()
	buf := &syncBuf{}
	cfg.Logger = slog.New(slog.NewJSONHandler(buf, nil))
	s, ts := newTestServer(t, cfg, dbSize)
	return s, ts.URL, buf
}

// TestRequestIDEchoed: a client-supplied X-Request-Id is adopted — it
// comes back in the response header, stamps the access-log line, and
// identifies the request in the flight recorder.
func TestRequestIDEchoed(t *testing.T) {
	s, base, buf := newLoggedServer(t, Config{Budget: 2}, 4)
	req, err := http.NewRequest("POST", base+"/v1/estimate",
		strings.NewReader(estimateBody(7, 0.5, 3, "")))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "client-chosen-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "client-chosen-42" {
		t.Errorf("echoed X-Request-Id = %q, want client-chosen-42", got)
	}
	lines := buf.accessLines(t)
	if len(lines) != 1 {
		t.Fatalf("access log has %d lines, want 1: %s", len(lines), buf.String())
	}
	if lines[0]["request_id"] != "client-chosen-42" {
		t.Errorf("access log request_id = %v", lines[0]["request_id"])
	}
	if lines[0]["route"] != "estimate" || lines[0]["status"] != float64(200) {
		t.Errorf("access log route/status = %v/%v", lines[0]["route"], lines[0]["status"])
	}
	snap := s.Recorder().Snapshot(time.Now())
	if len(snap.Completed) != 1 || snap.Completed[0].ID != "client-chosen-42" {
		t.Errorf("recorder completed = %+v, want the client ID", snap.Completed)
	}
}

// TestRequestIDGenerated: without a client header the server derives a
// 16-hex-digit ID from the request's seed stream; concurrent-free
// repeats get distinct IDs (the derivation index advances).
func TestRequestIDGenerated(t *testing.T) {
	_, ts := newTestServer(t, Config{Budget: 2}, 4)
	hex16 := regexp.MustCompile(`^[0-9a-f]{16}$`)
	seen := map[string]bool{}
	for i := 0; i < 2; i++ {
		resp, _ := post(t, ts.URL+"/v1/estimate", estimateBody(7, 0.5, 3, ""))
		id := resp.Header.Get("X-Request-Id")
		if !hex16.MatchString(id) {
			t.Fatalf("generated ID %q, want 16 hex digits", id)
		}
		if seen[id] {
			t.Fatalf("duplicate generated ID %q", id)
		}
		seen[id] = true
	}
}

// TestAccessLogOutcomes: every terminal path — success and failure —
// produces exactly one access-log line and one outcome-labeled count.
func TestAccessLogOutcomes(t *testing.T) {
	s, base, buf := newLoggedServer(t, Config{Budget: 2}, 4)
	estimateOK(t, base, estimateBody(7, 0.5, 3, ""))
	if resp, _ := post(t, base+"/v1/estimate", `{"query":"R1(x,y)","database":"nope"}`); resp.StatusCode != 404 {
		t.Fatalf("unknown db: status %d, want 404", resp.StatusCode)
	}
	lines := buf.accessLines(t)
	if len(lines) != 2 {
		t.Fatalf("access log has %d lines, want 2: %s", len(lines), buf.String())
	}
	byStatus := map[float64]map[string]any{}
	for _, l := range lines {
		byStatus[l["status"].(float64)] = l
	}
	ok := byStatus[200]
	if ok == nil || ok["strategy"] == "" || ok["db"] != "default" || ok["request_id"] == "" {
		t.Errorf("200 line underpopulated: %v", ok)
	}
	bad := byStatus[404]
	if bad == nil || bad["error"] == "" {
		t.Errorf("404 line underpopulated: %v", bad)
	}
	if got := s.reqTotal.With("estimate", "200").Value(); got != 1 {
		t.Errorf(`requests_total{estimate,200} = %d, want 1`, got)
	}
	if got := s.reqTotal.With("estimate", "404").Value(); got != 1 {
		t.Errorf(`requests_total{estimate,404} = %d, want 1`, got)
	}
}

// TestPhaseSumWithinWall: the per-request phase breakdown recorded in
// the flight recorder accounts for real time — each request's phase
// sum is positive (build and sample both accrued on a cold session)
// and never exceeds its wall time.
func TestPhaseSumWithinWall(t *testing.T) {
	_, ts := newTestServer(t, Config{Budget: 2}, 4)
	estimateOK(t, ts.URL, estimateBody(7, 0.3, 5, ""))
	resp, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("Content-Type = %q", ct)
	}
	var snap obs.RecorderSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	var rec *obs.RequestRecord
	for i := range snap.Completed {
		if snap.Completed[i].Route == "estimate" {
			rec = &snap.Completed[i]
			break
		}
	}
	if rec == nil {
		t.Fatalf("no estimate record in %+v", snap.Completed)
	}
	var sum float64
	for _, v := range rec.Phases {
		if v < 0 {
			t.Errorf("negative phase time: %v", rec.Phases)
		}
		sum += v
	}
	if sum <= 0 {
		t.Errorf("phase sum %v, want > 0 (phases %v)", sum, rec.Phases)
	}
	// The phases partition work done inside the request, so their sum is
	// bounded by wall time (small slack for clock granularity).
	if sum > rec.Wall+0.005 {
		t.Errorf("phase sum %.6fs exceeds wall %.6fs (phases %v)", sum, rec.Wall, rec.Phases)
	}
	if rec.Phases["build"] <= 0 || rec.Phases["sample"] <= 0 {
		t.Errorf("cold estimate should accrue build and sample time: %v", rec.Phases)
	}
	if rec.Build != "full" {
		t.Errorf("cold estimate build = %q, want full", rec.Build)
	}
	if rec.Strategy == "" || rec.Version == 0 || rec.QueryHash == "" {
		t.Errorf("record underpopulated: %+v", rec)
	}
}

// TestDebugRequestsText: ?format=text renders the fixed-width table.
func TestDebugRequestsText(t *testing.T) {
	_, ts := newTestServer(t, Config{Budget: 2}, 4)
	estimateOK(t, ts.URL, estimateBody(7, 0.5, 3, ""))
	resp, err := http.Get(ts.URL + "/debug/requests?format=text")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(data)
	for _, needle := range []string{"ID", "ROUTE", "CODE", "WALL_MS", "total_completed 1"} {
		if !strings.Contains(text, needle) {
			t.Errorf("text table missing %q:\n%s", needle, text)
		}
	}
}

// TestStreamDisconnect408Once is the regression test for double-counted
// stream disconnects: a client dropping an SSE stream mid-computation
// records outcome 408 exactly once — one access-log line, one
// pqed_requests_total{route="stream",outcome="408"} increment, one
// flight-recorder completion.
func TestStreamDisconnect408Once(t *testing.T) {
	s, base, buf := newLoggedServer(t, Config{Budget: 4}, 8)
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", base+"/v1/estimate/stream",
		strings.NewReader(estimateBody(7, 0.2, 5, ""))) // ~1s+ workload
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read until the first trial event proves sampling started, then
	// drop the connection.
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: trial") {
			break
		}
	}
	cancel()
	resp.Body.Close()

	counter := s.reqTotal.With("stream", "408")
	deadline := time.Now().Add(10 * time.Second)
	for counter.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stream 408 never recorded; log:\n%s", buf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Give any erroneous second accounting path time to fire.
	time.Sleep(50 * time.Millisecond)
	if got := counter.Value(); got != 1 {
		t.Errorf(`requests_total{stream,408} = %d, want exactly 1`, got)
	}
	var streamLines int
	for _, l := range buf.accessLines(t) {
		if l["route"] == "stream" {
			streamLines++
			if l["status"] != float64(408) {
				t.Errorf("stream access line status = %v, want 408", l["status"])
			}
		}
	}
	if streamLines != 1 {
		t.Errorf("stream access-log lines = %d, want exactly 1", streamLines)
	}
	snap := s.Recorder().Snapshot(time.Now())
	var completions int
	for _, r := range snap.Completed {
		if r.Route == "stream" {
			completions++
			if r.Outcome != 408 {
				t.Errorf("recorder outcome = %d, want 408", r.Outcome)
			}
		}
	}
	if completions != 1 {
		t.Errorf("recorder stream completions = %d, want exactly 1", completions)
	}
	if len(snap.Inflight) != 0 {
		t.Errorf("recorder still shows in-flight: %+v", snap.Inflight)
	}
}

// TestObservabilityRaces hammers the observability surfaces from many
// goroutines at once — estimates, /metrics scrapes, /debug/requests
// scrapes (both formats), debug trace endpoints, and engine-telemetry
// Reset — and relies on the race detector for the verdict.
func TestObservabilityRaces(t *testing.T) {
	s, ts := newTestServer(t, Config{Budget: 4}, 4)
	get := func(path string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	var wg sync.WaitGroup
	const rounds = 8
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				post(t, ts.URL+"/v1/estimate", estimateBody(int64(i*rounds+j), 0.5, 3, ""))
			}
		}(i)
	}
	for _, path := range []string{"/metrics", "/debug/requests", "/debug/requests?format=text", "/snapshot.json"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				get(path)
			}
		}(path)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < rounds; j++ {
			s.tel.Reset()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	// Sanity beyond the race detector: every estimate completed and was
	// recorded with an outcome.
	if got := s.reqTotal.With("estimate", "200").Value(); got != 32 {
		t.Errorf(`requests_total{estimate,200} = %d, want 32`, got)
	}
	snap := s.Recorder().Snapshot(time.Now())
	if snap.TotalCompleted != 32 {
		t.Errorf("recorder TotalCompleted = %d, want 32", snap.TotalCompleted)
	}
}
