package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"pqe"
	"pqe/internal/obs"
)

// trialEvent is the payload of one SSE "trial" event: an anytime
// convergence update from the engines' per-trial feed. Log2Estimate is
// a pointer because a zero estimate has log₂ = -Inf, which JSON cannot
// represent; the event carries null instead of being dropped.
type trialEvent struct {
	Engine       string   `json:"engine"`
	Trial        int      `json:"trial"`
	Trials       int      `json:"trials"`
	Epsilon      float64  `json:"epsilon"`
	Log2Estimate *float64 `json:"log2_estimate"`
	UnionSamples int      `json:"union_samples"`
	ElapsedMS    float64  `json:"elapsed_ms"`
}

// finiteOrNil maps non-finite floats (±Inf, NaN) to nil so the JSON
// encoding never fails.
func finiteOrNil(v float64) *float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return nil
	}
	return &v
}

// sseWriter serializes Server-Sent Events onto a response. Trial
// callbacks fire concurrently from scheduler workers, so every emit is
// mutex-guarded; flushes happen per event so clients see estimates as
// they converge. When phases is non-nil, time spent marshaling and
// writing events accrues to the serialize phase.
type sseWriter struct {
	mu     sync.Mutex
	w      http.ResponseWriter
	fl     http.Flusher
	phases *obs.Phases
}

func (s *sseWriter) emit(event string, payload any) {
	t0 := time.Now()
	data, err := json.Marshal(payload)
	if err != nil {
		return
	}
	s.mu.Lock()
	fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", event, data)
	if s.fl != nil {
		s.fl.Flush()
	}
	s.mu.Unlock()
	s.phases.Add(obs.PhaseSerialize, time.Since(t0))
}

// handleEstimateStream runs the same computation as handleEstimate but
// streams the engines' per-trial convergence feed as SSE "trial"
// events, ending with a "result" event (or an "error" event). The
// final estimate is bit-identical to the one-shot endpoint's for the
// same request body: the telemetry feed observes the computation
// without perturbing it.
//
// A client that disconnects mid-stream cancels the request context;
// the engine stops within a trial batch, run returns context.Canceled,
// and the request finishes with outcome 408 — recorded exactly once
// (the access log, pqed_requests_total{route="stream",outcome="408"}
// and the flight recorder all go through track.finish's once-guard),
// even though the terminal "error" event can no longer be delivered.
func (s *Server) handleEstimateStream(w http.ResponseWriter, r *http.Request) {
	tk := s.track(w, r, "stream")
	c := s.admit(tk, r)
	if c == nil {
		return
	}
	defer c.release()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	out := &sseWriter{w: w, fl: fl, phases: tk.phases}
	if fl != nil {
		fl.Flush()
	}

	resp, status, err := c.run(func(u pqe.TrialUpdate) {
		out.emit("trial", trialEvent{
			Engine:       u.Engine,
			Trial:        u.Trial,
			Trials:       u.Trials,
			Epsilon:      u.Epsilon,
			Log2Estimate: finiteOrNil(u.Log2Estimate),
			UnionSamples: u.UnionSamples,
			ElapsedMS:    float64(u.Elapsed.Microseconds()) / 1000,
		})
	})
	if err != nil {
		// The SSE response is already committed as 200; the semantic
		// outcome (408 on disconnect, 504 on deadline, …) still reaches
		// the access log, the labeled counter and the flight recorder
		// through finish.
		out.emit("error", map[string]any{"error": err.Error(), "status": status})
		tk.errMsg = err.Error()
		tk.finish(status)
		return
	}
	out.emit("result", resp)
	tk.finish(status)
}
