package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"

	"pqe"
)

// trialEvent is the payload of one SSE "trial" event: an anytime
// convergence update from the engines' per-trial feed. Log2Estimate is
// a pointer because a zero estimate has log₂ = -Inf, which JSON cannot
// represent; the event carries null instead of being dropped.
type trialEvent struct {
	Engine       string   `json:"engine"`
	Trial        int      `json:"trial"`
	Trials       int      `json:"trials"`
	Epsilon      float64  `json:"epsilon"`
	Log2Estimate *float64 `json:"log2_estimate"`
	UnionSamples int      `json:"union_samples"`
	ElapsedMS    float64  `json:"elapsed_ms"`
}

// finiteOrNil maps non-finite floats (±Inf, NaN) to nil so the JSON
// encoding never fails.
func finiteOrNil(v float64) *float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return nil
	}
	return &v
}

// sseWriter serializes Server-Sent Events onto a response. Trial
// callbacks fire concurrently from scheduler workers, so every emit is
// mutex-guarded; flushes happen per event so clients see estimates as
// they converge.
type sseWriter struct {
	mu sync.Mutex
	w  http.ResponseWriter
	fl http.Flusher
}

func (s *sseWriter) emit(event string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", event, data)
	if s.fl != nil {
		s.fl.Flush()
	}
}

// handleEstimateStream runs the same computation as handleEstimate but
// streams the engines' per-trial convergence feed as SSE "trial"
// events, ending with a "result" event (or an "error" event). The
// final estimate is bit-identical to the one-shot endpoint's for the
// same request body: the telemetry feed observes the computation
// without perturbing it.
func (s *Server) handleEstimateStream(w http.ResponseWriter, r *http.Request) {
	c := s.admit(w, r)
	if c == nil {
		return
	}
	defer c.release()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	out := &sseWriter{w: w, fl: fl}
	if fl != nil {
		fl.Flush()
	}

	resp, status, err := c.run(func(u pqe.TrialUpdate) {
		out.emit("trial", trialEvent{
			Engine:       u.Engine,
			Trial:        u.Trial,
			Trials:       u.Trials,
			Epsilon:      u.Epsilon,
			Log2Estimate: finiteOrNil(u.Log2Estimate),
			UnionSamples: u.UnionSamples,
			ElapsedMS:    float64(u.Elapsed.Microseconds()) / 1000,
		})
	})
	if err != nil {
		out.emit("error", map[string]any{"error": err.Error(), "status": status})
		return
	}
	out.emit("result", resp)
}
