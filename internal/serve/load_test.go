package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLoadMixedTraffic hammers the server from many goroutine clients
// with a mix of easy estimates, streamed estimates, hard estimates and
// deltas, against a deliberately small worker budget. It asserts:
//
//   - no request is starved: with a generous queue wait every request
//     completes (FIFO admission — wide requests are not overtaken
//     forever by narrow ones);
//   - nothing is shed at this queue-wait (pqed_requests_shed_total 0);
//   - concurrent identical requests are bit-identical: every estimate
//     of the fixed-seed query against the static database returns the
//     same float64 bits, one-shot and streamed alike.
//
// Deltas run against a second database so they cannot perturb the
// bit-identity assertion. Run with -race: the point is exercising the
// admission, session-LRU and SSE paths concurrently.
func TestLoadMixedTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short")
	}
	s := NewServer(Config{Budget: 2, QueueWait: 60 * time.Second, MaxSessions: 8})
	s.AddDatabase("static", testDB(t, 4))
	s.AddDatabase("mutable", testDB(t, 4))
	ts := httptestServer(t, s)

	staticBody := fmt.Sprintf(`{"query":%q,"database":"static","options":{"epsilon":0.5,"trials":3,"seed":7,"max_procs":2}}`, pathQuery)
	hardBody := fmt.Sprintf(`{"query":%q,"database":"static","options":{"epsilon":0.35,"trials":3,"seed":7,"max_procs":2}}`, pathQuery)

	var (
		mu        sync.Mutex
		seenBits  = map[string]map[uint64]bool{} // body -> distinct result bits
		completed atomic.Int64
	)
	record := func(body string, p float64) {
		mu.Lock()
		defer mu.Unlock()
		m := seenBits[body]
		if m == nil {
			m = map[uint64]bool{}
			seenBits[body] = m
		}
		m[math.Float64bits(p)] = true
	}

	const clients = 12
	const iters = 3
	var wg sync.WaitGroup
	errs := make(chan error, clients*iters)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (c + i) % 4 {
				case 0: // easy one-shot
					resp, data := post(t, ts+"/v1/estimate", staticBody)
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("client %d: easy status %d: %s", c, resp.StatusCode, data)
						continue
					}
					var r estimateResponse
					if err := json.Unmarshal(data, &r); err != nil {
						errs <- err
						continue
					}
					record(staticBody, r.Probability)
					completed.Add(1)
				case 1: // streamed
					r, _, err := streamResult(t, ts, staticBody)
					if err != nil {
						errs <- fmt.Errorf("client %d: stream: %w", c, err)
						continue
					}
					record(staticBody, r.Probability)
					completed.Add(1)
				case 2: // harder estimate, still bounded
					resp, data := post(t, ts+"/v1/estimate", hardBody)
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("client %d: hard status %d: %s", c, resp.StatusCode, data)
						continue
					}
					var r estimateResponse
					if err := json.Unmarshal(data, &r); err != nil {
						errs <- err
						continue
					}
					record(hardBody, r.Probability)
					completed.Add(1)
				case 3: // delta traffic on the mutable database
					body := fmt.Sprintf(`{"database":"mutable","ops":[{"op":"insert","relation":"R1","args":["x%d_%d","b0"],"prob":"1/4"}]}`, c, i)
					resp, data := post(t, ts+"/v1/delta", body)
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("client %d: delta status %d: %s", c, resp.StatusCode, data)
						continue
					}
					completed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got, want := completed.Load(), int64(clients*iters); got != want {
		t.Errorf("completed %d/%d requests (starvation?)", got, want)
	}
	for body, bits := range seenBits {
		if len(bits) != 1 {
			t.Errorf("request %s returned %d distinct results, want 1 (bit-identity)", body, len(bits))
		}
	}
	if shed := s.Registry().Counter("pqed_requests_shed_total").Value(); shed != 0 {
		t.Errorf("pqed_requests_shed_total = %d under generous queue wait, want 0", shed)
	}
	if inflight := s.Registry().Gauge("pqed_inflight").Value(); inflight != 0 {
		t.Errorf("pqed_inflight = %v after drain, want 0", inflight)
	}
}

// TestLoadShedAccounting saturates a tiny budget with a short queue
// wait and checks the books: every 429 the clients saw is counted by
// pqed_requests_shed_total, every 429 carries Retry-After, and
// successful responses remain bit-identical.
func TestLoadShedAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short")
	}
	s := NewServer(Config{Budget: 1, QueueWait: 20 * time.Millisecond})
	s.AddDatabase("default", testDB(t, 4))
	ts := httptestServer(t, s)

	// Medium-weight requests so several overlap on the 1-token budget.
	body := estimateBody(7, 0.35, 3, `,"max_procs":1`)
	var shed429, ok200 atomic.Int64
	var mu sync.Mutex
	bits := map[uint64]bool{}
	var wg sync.WaitGroup
	for c := 0; c < 10; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, data := post(t, ts+"/v1/estimate", body)
			switch resp.StatusCode {
			case http.StatusOK:
				var r estimateResponse
				if err := json.Unmarshal(data, &r); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				bits[math.Float64bits(r.Probability)] = true
				mu.Unlock()
				ok200.Add(1)
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				shed429.Add(1)
			default:
				t.Errorf("unexpected status %d: %s", resp.StatusCode, data)
			}
		}()
	}
	wg.Wait()
	if got := s.Registry().Counter("pqed_requests_shed_total").Value(); got != shed429.Load() {
		t.Errorf("pqed_requests_shed_total = %d, clients saw %d 429s", got, shed429.Load())
	}
	if ok200.Load() == 0 {
		t.Error("every request was shed; at least the first should be admitted")
	}
	if len(bits) > 1 {
		t.Errorf("successful responses returned %d distinct results, want 1", len(bits))
	}
	t.Logf("load: %d ok, %d shed", ok200.Load(), shed429.Load())
}

// httptestServer mounts the handler and returns the base URL.
func httptestServer(t testing.TB, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}
