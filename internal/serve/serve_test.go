package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/big"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pqe"
)

// testDB builds an unsafe 3-step path instance: n fact triples, so the
// FPRAS workload scales with n (n=4 ≈ 10ms per cold estimate, n=6 ≈
// 200ms, n=8 ≈ 1s+ — see the calibrated epsilons in the tests).
func testDB(t testing.TB, n int) *pqe.Database {
	t.Helper()
	d := pqe.NewDatabase()
	add := func(rel string, p *big.Rat, args ...string) {
		if err := d.AddFact(rel, p, args...); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		add("R1", big.NewRat(1, 2), fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i%2))
		add("R2", big.NewRat(2, 3), fmt.Sprintf("b%d", i%2), fmt.Sprintf("c%d", i%3))
		add("R3", big.NewRat(3, 4), fmt.Sprintf("c%d", i%3), "t")
	}
	return d
}

const pathQuery = "R1(x,y), R2(y,z), R3(z,w)"

func newTestServer(t testing.TB, cfg Config, dbSize int) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(cfg)
	s.AddDatabase("default", testDB(t, dbSize))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func estimateBody(seed int64, eps float64, trials int, extra string) string {
	return fmt.Sprintf(`{"query":%q,"database":"default","options":{"epsilon":%g,"trials":%d,"seed":%d%s}}`,
		pathQuery, eps, trials, seed, extra)
}

func post(t testing.TB, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func estimateOK(t testing.TB, base, body string) estimateResponse {
	t.Helper()
	resp, data := post(t, base+"/v1/estimate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: status %d: %s", resp.StatusCode, data)
	}
	var r estimateResponse
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("estimate: %v in %s", err, data)
	}
	return r
}

// streamResult consumes the SSE endpooint and returns the final result
// plus the number of trial events seen.
func streamResult(t testing.TB, base, body string) (estimateResponse, int, error) {
	t.Helper()
	resp, err := http.Post(base+"/v1/estimate/stream", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return estimateResponse{}, 0, fmt.Errorf("status %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("stream Content-Type = %q, want text/event-stream", ct)
	}
	var trials int
	sc := bufio.NewScanner(resp.Body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "trial":
				trials++
			case "error":
				return estimateResponse{}, trials, fmt.Errorf("stream error: %s", data)
			case "result":
				var r estimateResponse
				if err := json.Unmarshal([]byte(data), &r); err != nil {
					t.Fatalf("result event: %v in %s", err, data)
				}
				return r, trials, nil
			}
		}
	}
	return estimateResponse{}, trials, fmt.Errorf("no result event (scan err %v)", sc.Err())
}

// TestOneShotVsStreamBitIdentical: the streamed endpoint's final
// estimate equals the one-shot endpoint's bit for bit at the same
// seed (float64 JSON round-trips exactly, so comparing parsed bits is
// exact).
func TestOneShotVsStreamBitIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{Budget: 4}, 4)
	body := estimateBody(7, 0.3, 5, "")
	one := estimateOK(t, ts.URL, body)
	streamed, trials, err := streamResult(t, ts.URL, body)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(one.Probability) != math.Float64bits(streamed.Probability) {
		t.Errorf("one-shot %v != streamed %v (bit-identity)", one.Probability, streamed.Probability)
	}
	if trials == 0 {
		t.Error("stream produced no trial events")
	}
	if streamed.Trials != int64(trials) {
		t.Errorf("result reports %d trials, stream emitted %d events", streamed.Trials, trials)
	}
	if one.Method == "" || one.Version == 0 {
		t.Errorf("one-shot response underpopulated: %+v", one)
	}
}

// TestDeadline504: a deadline expiring mid-sampling cancels the work
// within one batch and surfaces as 504; the deadline counter accounts
// for it.
func TestDeadline504(t *testing.T) {
	s, ts := newTestServer(t, Config{Budget: 4}, 8)
	// ~1s+ of sampling at ε=0.2 against a 50ms budget.
	body := estimateBody(7, 0.2, 5, `,"timeout_ms":50`)
	t0 := time.Now()
	resp, data := post(t, ts.URL+"/v1/estimate", body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, data)
	}
	// Cancellation is checked per batch and per sampling dispatch, so
	// the request ends close to its deadline, far below the full cost.
	if el := time.Since(t0); el > 2*time.Second {
		t.Errorf("504 took %v, cancellation should stop sampling promptly", el)
	}
	if n := s.Registry().Counter("pqed_deadlines_total").Value(); n != 1 {
		t.Errorf("pqed_deadlines_total = %d, want 1", n)
	}
}

// TestStaleDelta409: a delta whose base_version no longer matches is
// rejected with 409 and the current version; a fresh base applies.
func TestStaleDelta409(t *testing.T) {
	s, ts := newTestServer(t, Config{Budget: 4}, 4)
	list, err := http.Get(ts.URL + "/v1/databases")
	if err != nil {
		t.Fatal(err)
	}
	var dbs struct {
		Databases []struct {
			Name    string `json:"name"`
			Version uint64 `json:"version"`
			Facts   int    `json:"facts"`
		} `json:"databases"`
	}
	if err := json.NewDecoder(list.Body).Decode(&dbs); err != nil {
		t.Fatal(err)
	}
	list.Body.Close()
	if len(dbs.Databases) != 1 || dbs.Databases[0].Name != "default" {
		t.Fatalf("databases = %+v", dbs)
	}
	version := dbs.Databases[0].Version

	deltaBody := func(base uint64) string {
		return fmt.Sprintf(`{"database":"default","base_version":%d,"ops":[{"op":"insert","relation":"R1","args":["z1","b0"],"prob":"1/3"}]}`, base)
	}
	resp, data := post(t, ts.URL+"/v1/delta", deltaBody(version))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh delta: status %d: %s", resp.StatusCode, data)
	}
	var dres deltaResponse
	if err := json.Unmarshal(data, &dres); err != nil {
		t.Fatal(err)
	}
	if dres.Version <= version || dres.Inserts != 1 {
		t.Errorf("delta response %+v, want version > %d, 1 insert", dres, version)
	}

	// Same base again: stale now.
	resp, data = post(t, ts.URL+"/v1/delta", deltaBody(version))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale delta: status %d (%s), want 409", resp.StatusCode, data)
	}
	var eres errorResponse
	if err := json.Unmarshal(data, &eres); err != nil {
		t.Fatal(err)
	}
	if eres.Version != dres.Version {
		t.Errorf("409 reports version %d, want current %d", eres.Version, dres.Version)
	}
	if n := s.Registry().Counter("pqed_delta_conflicts_total").Value(); n != 1 {
		t.Errorf("pqed_delta_conflicts_total = %d, want 1", n)
	}

	// Estimates after the applied delta see the new version and are
	// deterministic against it.
	a := estimateOK(t, ts.URL, estimateBody(7, 0.5, 3, ""))
	b := estimateOK(t, ts.URL, estimateBody(7, 0.5, 3, ""))
	if a.Version != dres.Version {
		t.Errorf("estimate ran against version %d, want %d", a.Version, dres.Version)
	}
	if math.Float64bits(a.Probability) != math.Float64bits(b.Probability) {
		t.Errorf("post-delta estimates differ: %v vs %v", a.Probability, b.Probability)
	}
}

// TestSessionLRUEviction: the session cache is bounded; evicted
// sessions are rebuilt on re-admission with identical results.
func TestSessionLRUEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{Budget: 4, MaxSessions: 2}, 4)
	queries := []string{
		pathQuery,
		"R1(x,y), R2(y,z)",
		"R2(x,y), R3(y,z)",
	}
	body := func(q string) string {
		return fmt.Sprintf(`{"query":%q,"database":"default","options":{"epsilon":0.5,"trials":3,"seed":7}}`, q)
	}
	first := estimateOK(t, ts.URL, body(queries[0]))
	if first.Cache != "miss" {
		t.Errorf("first request cache = %q, want miss", first.Cache)
	}
	hit := estimateOK(t, ts.URL, body(queries[0]))
	if hit.Cache != "hit" {
		t.Errorf("repeat request cache = %q, want hit", hit.Cache)
	}
	// Two more distinct queries overflow MaxSessions=2 and evict the
	// oldest (queries[0]).
	estimateOK(t, ts.URL, body(queries[1]))
	estimateOK(t, ts.URL, body(queries[2]))
	if n := s.SessionCount(); n != 2 {
		t.Errorf("SessionCount = %d, want 2", n)
	}
	if n := s.Registry().Counter("pqed_session_evictions_total").Value(); n == 0 {
		t.Error("no evictions recorded")
	}
	// Re-admission: a fresh session, same deterministic estimate.
	again := estimateOK(t, ts.URL, body(queries[0]))
	if again.Cache != "miss" {
		t.Errorf("re-admitted request cache = %q, want miss (was evicted)", again.Cache)
	}
	if math.Float64bits(again.Probability) != math.Float64bits(first.Probability) {
		t.Errorf("re-admitted estimate %v != original %v", again.Probability, first.Probability)
	}
}

// TestShed429: with the budget fully held, a request that cannot be
// admitted within QueueWait is shed with 429, a Retry-After hint and
// the shed counter.
func TestShed429(t *testing.T) {
	s, ts := newTestServer(t, Config{Budget: 2, QueueWait: 50 * time.Millisecond}, 4)
	// Deterministic saturation: hold every token directly.
	n, err := s.Budget().Acquire(context.Background(), 2)
	if err != nil || n != 2 {
		t.Fatalf("Acquire = (%d, %v)", n, err)
	}
	defer s.Budget().Release(n)

	resp, data := post(t, ts.URL+"/v1/estimate", estimateBody(7, 0.5, 3, ""))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
	if got := s.Registry().Counter("pqed_requests_shed_total").Value(); got != 1 {
		t.Errorf("pqed_requests_shed_total = %d, want 1", got)
	}
	// After the tokens free up the same request succeeds.
	s.Budget().Release(n)
	defer func() { // re-acquire so the deferred Release stays balanced
		m, err := s.Budget().Acquire(context.Background(), 2)
		if err != nil || m != 2 {
			t.Fatalf("re-acquire = (%d, %v)", m, err)
		}
	}()
	if r := estimateOK(t, ts.URL, estimateBody(7, 0.5, 3, "")); r.Probability == 0 {
		t.Error("post-shed request returned probability 0")
	}
}

// TestGracefulDrain: Drain lets the in-flight request finish (its
// response arrives complete and correct) while new requests get 503.
func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Budget: 4}, 6)
	// Warm the session so the in-flight request below spends its time
	// sampling, not constructing.
	warm := estimateOK(t, ts.URL, estimateBody(7, 0.3, 5, ""))

	inflight := make(chan estimateResponse, 1)
	inflightErr := make(chan error, 1)
	go func() {
		resp, data := post(t, ts.URL+"/v1/estimate", estimateBody(7, 0.3, 5, ""))
		if resp.StatusCode != http.StatusOK {
			inflightErr <- fmt.Errorf("in-flight status %d: %s", resp.StatusCode, data)
			return
		}
		var r estimateResponse
		if err := json.Unmarshal(data, &r); err != nil {
			inflightErr <- err
			return
		}
		inflight <- r
	}()
	// Wait until the request is admitted, then drain.
	deadline := time.Now().Add(5 * time.Second)
	for s.Registry().Gauge("pqed_inflight").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// New work is rejected while draining.
	var rejected bool
	for i := 0; i < 100; i++ {
		resp, _ := post(t, ts.URL+"/v1/estimate", estimateBody(7, 0.5, 3, ""))
		if resp.StatusCode == http.StatusServiceUnavailable {
			rejected = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !rejected {
		t.Error("draining server kept admitting requests")
	}
	select {
	case err := <-inflightErr:
		t.Fatal(err)
	case r := <-inflight:
		if math.Float64bits(r.Probability) != math.Float64bits(warm.Probability) {
			t.Errorf("in-flight finished with %v, want %v", r.Probability, warm.Probability)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("in-flight request did not finish")
	}
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

// TestBadRequests: malformed inputs map to the right statuses.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Budget: 2}, 4)
	for _, tc := range []struct {
		name, path, body string
		want             int
	}{
		{"bad-json", "/v1/estimate", "{", http.StatusBadRequest},
		{"bad-query", "/v1/estimate", `{"query":"R(x,"}`, http.StatusBadRequest},
		{"unknown-db", "/v1/estimate", `{"query":"R1(x,y)","database":"nope"}`, http.StatusNotFound},
		{"bad-mode", "/v1/estimate", `{"query":"R1(x,y)","options":{"mode":"wat"}}`, http.StatusBadRequest},
		{"self-join", "/v1/estimate", `{"query":"R1(x,y), R1(y,z)","options":{"epsilon":0.5,"trials":3,"mode":"estimate"}}`, http.StatusUnprocessableEntity},
		{"empty-delta", "/v1/delta", `{"database":"default","ops":[]}`, http.StatusBadRequest},
		{"bad-op", "/v1/delta", `{"database":"default","ops":[{"op":"zap","relation":"R1"}]}`, http.StatusBadRequest},
		{"delta-unknown-db", "/v1/delta", `{"database":"nope","ops":[{"op":"delete","relation":"R1","args":["a0","b0"]}]}`, http.StatusNotFound},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := post(t, ts.URL+tc.path, tc.body)
			if resp.StatusCode != tc.want {
				t.Errorf("status %d (%s), want %d", resp.StatusCode, data, tc.want)
			}
		})
	}
}

// TestMetricsEndpoint: the combined exposition carries both the
// service's pqed_* families and the engines' families.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Budget: 2}, 4)
	estimateOK(t, ts.URL, estimateBody(7, 0.5, 3, ""))
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(data)
	for _, family := range []string{
		"pqed_requests_total", "pqed_inflight", "pqed_queue_wait_seconds",
		"pqed_request_seconds", "pqed_requests_shed_total",
		"pqed_session_hits_total", "pqed_session_misses_total",
		"pqe_build_decompositions_total", // engine side, via session telemetry
	} {
		if !strings.Contains(text, family) {
			t.Errorf("/metrics missing %s", family)
		}
	}
	// Debug endpoints ride on the same listener.
	for _, path := range []string{"/snapshot.json", "/trace.json"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, r.StatusCode)
		}
	}
}
