package serve

import (
	"context"
	"fmt"
	"hash/fnv"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"pqe/internal/obs"
	"pqe/internal/splitmix"
)

// nopLogHandler discards every record; it is the slog handler behind a
// nil Config.Logger so instrumentation code never nil-checks the
// logger.
type nopLogHandler struct{}

func (nopLogHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopLogHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopLogHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopLogHandler{} }
func (nopLogHandler) WithGroup(string) slog.Handler             { return nopLogHandler{} }

// reqIDSalt derives request-ID streams from request seeds — a fixed
// site constant like splitmix.TopSamplerSalt, disjoint from every
// engine sampling site.
const reqIDSalt = 0xa24baed4963ee407

// track is the per-request observability record: it owns the request's
// correlation ID, phase accumulator and flight-recorder handle, and
// funnels the terminal accounting — the outcome-labeled counter, the
// phase histogram, the access-log line, the recorder completion —
// through a CAS-guarded finish so every request is recorded exactly
// once no matter how many paths race to end it (the SSE disconnect
// fix).
type track struct {
	s      *Server
	w      http.ResponseWriter
	route  string
	start  time.Time
	phases *obs.Phases

	id string
	fl *obs.Inflight

	// Filled in as the request progresses; read by finish.
	db      string
	version uint64
	qhash   string
	method  string
	reason  string
	cache   string
	build   string
	trials  int64
	saved   int64
	errMsg  string

	done atomic.Bool
}

// track starts per-request observability for one handler invocation.
// When the client supplied X-Request-Id it is adopted (and echoed)
// immediately; otherwise the ID is bound later by ensureID, once the
// request seed is known.
func (s *Server) track(w http.ResponseWriter, r *http.Request, route string) *track {
	tk := &track{s: s, w: w, route: route, start: time.Now(), phases: obs.NewPhases()}
	if id := r.Header.Get("X-Request-Id"); id != "" {
		tk.id = sanitizeID(id)
		tk.bind()
	}
	return tk
}

// sanitizeID bounds a client-supplied correlation ID: printable, no
// whitespace beyond interior spaces, at most 128 bytes.
func sanitizeID(id string) string {
	if len(id) > 128 {
		id = id[:128]
	}
	return strings.Map(func(r rune) rune {
		if r < 0x20 || r == 0x7f {
			return '_'
		}
		return r
	}, id)
}

// ensureID binds a correlation ID when the client did not supply one:
// 16 hex digits drawn from a splitmix stream derived from the request
// seed and a process-local sequence number — never from wall-clock
// randomness, so ID generation cannot perturb any seeded computation.
func (tk *track) ensureID(seed int64) {
	if tk.id != "" {
		return
	}
	str := splitmix.Derive(seed, reqIDSalt, int(tk.s.reqSeq.Add(1)))
	tk.id = fmt.Sprintf("%016x", str.Uint64())
	tk.bind()
}

// bind publishes the ID: the response header (before any write) and
// the flight recorder's in-flight view.
func (tk *track) bind() {
	tk.w.Header().Set("X-Request-Id", tk.id)
	tk.fl = tk.s.fr.Begin(tk.id, tk.route, tk.start)
}

// fail writes an error response and finishes the request with that
// outcome. format/args build the client-visible (and logged) cause.
func (tk *track) fail(status int, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	tk.errMsg = msg
	t0 := time.Now()
	writeJSON(tk.w, status, errorResponse{Error: msg})
	tk.phases.Add(obs.PhaseSerialize, time.Since(t0))
	tk.finish(status)
}

// finish records the request's terminal accounting exactly once:
// outcome-labeled request counter, per-phase histogram observations,
// the flight-recorder completion, and the access-log line. Later calls
// are no-ops, so racing completion paths (one-shot write vs SSE
// disconnect vs deadline) cannot double count.
func (tk *track) finish(status int) {
	if !tk.done.CompareAndSwap(false, true) {
		return
	}
	s := tk.s
	wall := time.Since(tk.start)
	outcome := strconv.Itoa(status)
	s.reqTotal.With(tk.route, outcome).Inc()
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		if d := tk.phases.Duration(p); d > 0 {
			s.phaseHist.With(p.String(), tk.route, outcome).Observe(d.Seconds())
		}
	}
	tk.fl.Update(func(r *obs.RequestRecord) {
		r.Database = tk.db
		r.Version = tk.version
		r.QueryHash = tk.qhash
		r.Strategy = tk.method
		r.Reason = tk.reason
		r.Build = tk.build
		r.Trials = tk.trials
		r.TrialsSaved = tk.saved
		r.Err = tk.errMsg
		r.Phases = tk.phases.Seconds()
	})
	tk.fl.Complete(status, wall)
	s.log.LogAttrs(context.Background(), slog.LevelInfo, "request",
		slog.String("request_id", tk.id),
		slog.String("route", tk.route),
		slog.Int("status", status),
		slog.String("db", tk.db),
		slog.Uint64("version", tk.version),
		slog.String("query_hash", tk.qhash),
		slog.String("strategy", tk.method),
		slog.String("reason", tk.reason),
		slog.String("cache", tk.cache),
		slog.String("build", tk.build),
		slog.Int64("trials", tk.trials),
		slog.Int64("trials_saved", tk.saved),
		slog.Float64("wall_ms", float64(wall)/float64(time.Millisecond)),
		slog.Float64("queue_ms", phaseMS(tk.phases, obs.PhaseQueue)),
		slog.Float64("build_ms", phaseMS(tk.phases, obs.PhaseBuild)),
		slog.Float64("sample_ms", phaseMS(tk.phases, obs.PhaseSample)),
		slog.Float64("serialize_ms", phaseMS(tk.phases, obs.PhaseSerialize)),
		slog.String("error", tk.errMsg),
	)
}

func phaseMS(ph *obs.Phases, p obs.Phase) float64 {
	return float64(ph.Duration(p)) / float64(time.Millisecond)
}

// queryHash fingerprints the query text for logs and the flight
// recorder — stable across processes, short enough for a table column.
func queryHash(query string) string {
	h := fnv.New64a()
	h.Write([]byte(query))
	return fmt.Sprintf("%016x", h.Sum64())
}

// handleDebugRequests serves the flight recorder: in-flight requests
// plus the retained completions, as JSON by default or a fixed-width
// text table with ?format=text (or an Accept preferring text/plain).
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	snap := s.fr.Snapshot(time.Now())
	wantText := r.URL.Query().Get("format") == "text" ||
		strings.Contains(r.Header.Get("Accept"), "text/plain")
	if wantText {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		snap.WriteText(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	snap.WriteJSON(w)
}
