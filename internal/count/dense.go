package count

import "pqe/internal/efloat"

// table is a dense two-dimensional memo table indexed by (row, size):
// rows are states, union slots or tuple IDs — all small dense integer
// ranges fixed at estimator construction — and the size axis grows on
// demand up to the largest size queried. Compared to the map-based
// tables it replaces, a lookup is two slice indexings with no hashing,
// and the rows stay contiguous for the size sweeps the DP performs.
//
// done tracks computed cells separately because efloat.Zero is a
// legitimate memoized value.
type table struct {
	vals [][]efloat.E
	done [][]bool
	keys int // number of computed cells, for Stats
}

func newTable(rows int) table {
	return table{
		vals: make([][]efloat.E, rows),
		done: make([][]bool, rows),
	}
}

// get returns the memoized value at (r, c) and whether it was computed.
func (t *table) get(r, c int) (efloat.E, bool) {
	row := t.done[r]
	if c >= len(row) || !row[c] {
		return efloat.Zero, false
	}
	return t.vals[r][c], true
}

// put memoizes v at (r, c), growing the row as needed.
func (t *table) put(r, c int, v efloat.E) {
	if c >= len(t.done[r]) {
		t.done[r] = append(t.done[r], make([]bool, c+1-len(t.done[r]))...)
		t.vals[r] = append(t.vals[r], make([]efloat.E, c+1-len(t.vals[r]))...)
	}
	if !t.done[r][c] {
		t.done[r][c] = true
		t.keys++
	}
	t.vals[r][c] = v
}
