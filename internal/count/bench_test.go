package count

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

// BenchmarkCountTrees is the headline CountNFTA workload: the
// heavy-overlap automaton keeps the union estimator in its sampling
// loop (six redundant branches, each costing e.samples forest draws per
// size level), which is where the Workers pool pays off.
func BenchmarkCountTrees(b *testing.B) {
	a := heavyOverlap()
	const n = 24
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				v := Trees(a, n, Options{Epsilon: 0.1, Trials: 3, Seed: int64(i + 1), Workers: workers})
				if v.IsZero() {
					b.Fatal("estimate collapsed to zero")
				}
			}
		})
	}
}

// BenchmarkSampleTree exercises the sampler stack (canonical rejection,
// iterative forest construction, bitset acceptance checks).
func BenchmarkSampleTree(b *testing.B) {
	a := heavyOverlap()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr := SampleTree(a, 16, Options{Epsilon: 0.2, Seed: int64(i + 1)}); tr == nil {
			b.Fatal("nil sample")
		}
	}
}

// oldTupleKey is the pre-rewrite interner key (strings.Builder +
// strconv per element), kept for the encoding comparison below.
func oldTupleKey(children []int) string {
	var sb strings.Builder
	for _, c := range children {
		sb.WriteString(strconv.Itoa(c))
		sb.WriteByte(',')
	}
	return sb.String()
}

func BenchmarkInternTupleKey(b *testing.B) {
	tuples := make([][]int, 64)
	for i := range tuples {
		t := make([]int, 1+i%5)
		for j := range t {
			t[j] = (i*131 + j*29) % 2048
		}
		tuples[i] = t
	}
	b.Run("strconv", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchKeySink = oldTupleKey(tuples[i%len(tuples)])
		}
	})
	b.Run("varint", func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = appendTupleKey(buf[:0], tuples[i%len(tuples)])
			benchKeySink = string(buf)
		}
	})
}

var benchKeySink string
