package count

import (
	"encoding/binary"
	"sort"
	"sync"

	"pqe/internal/dense"
	"pqe/internal/nfta"
	"pqe/internal/splitmix"
)

// symTrans groups one state's outgoing transitions on one symbol: the
// interned children tuples in a fixed (canonical) order, plus the row
// of the unions memo table when there is more than one branch.
type symTrans struct {
	sym    int
	tuples []int
	slot   int // unions table row, -1 when len(tuples) == 1
}

// plan is the immutable, seed-independent half of a counting session:
// the interned transition structure (children tuples, their suffix
// chains, per-state symbol entries) and the dense-table geometry derived
// from it. It is built once per automaton and cached on the automaton
// itself (nfta.EnginePlan), so every trial, call and session over the
// same automaton shares one plan. The plan also pools the mutable
// per-trial runs and sampler sessions, so steady-state repeated
// estimation allocates near zero.
//
// Everything outside the pool free-lists is frozen after buildPlan and
// safe for unsynchronized concurrent reads.
type plan struct {
	a *nfta.NFTA

	// Per-state symbol entries (sorted by symbol), interned children
	// tuples, and each tuple's suffix tuple[1:] (interned eagerly so
	// sampling never mutates the interner).
	states [][]symTrans
	tuples [][]int
	restID []int
	slots  int // rows of the unions table (multi-branch entries)

	mu       sync.Mutex
	freeRuns []*run
	freeSmps []*sampler
}

// maxPooled caps each free list so a burst of concurrent sessions does
// not pin memory forever.
const maxPooled = 16

// planFor returns the automaton's cached plan, building and caching it
// on a miss. Concurrent builders may race; each result is equivalent
// and fully usable, and the last store wins.
func planFor(a *nfta.NFTA) (pl *plan, hit bool) {
	if v, ok := a.EnginePlan(); ok {
		if pl, ok := v.(*plan); ok {
			return pl, true
		}
	}
	pl = buildPlan(a)
	a.SetEnginePlan(pl)
	return pl, false
}

func buildPlan(a *nfta.NFTA) *plan {
	pl := &plan{a: a}
	tupleIDs := make(map[string]int)
	var keyBuf []byte
	var intern func(children []int) int
	intern = func(children []int) int {
		keyBuf = appendTupleKey(keyBuf[:0], children)
		k := string(keyBuf)
		if id, ok := tupleIDs[k]; ok {
			return id
		}
		id := len(pl.tuples)
		tupleIDs[k] = id
		pl.tuples = append(pl.tuples, append([]int(nil), children...))
		pl.restID = append(pl.restID, -1)
		if len(children) > 1 {
			rest := intern(children[1:])
			pl.restID[id] = rest
		}
		return id
	}
	pl.states = make([][]symTrans, a.NumStates())
	for q := 0; q < a.NumStates(); q++ {
		bySym := make(map[int]int) // symbol -> entry index
		var entries []symTrans
		for _, tr := range a.From(q) {
			id := intern(tr.Children)
			ei, ok := bySym[tr.Sym]
			if !ok {
				ei = len(entries)
				bySym[tr.Sym] = ei
				entries = append(entries, symTrans{sym: tr.Sym, slot: -1})
			}
			entries[ei].tuples = append(entries[ei].tuples, id)
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].sym < entries[j].sym })
		for i := range entries {
			if len(entries[i].tuples) > 1 {
				entries[i].slot = pl.slots
				pl.slots++
			}
		}
		pl.states[q] = entries
	}
	return pl
}

// appendTupleKey appends a varint encoding of the children tuple — the
// interner's identity key. States are small non-negative integers, so
// most tuples encode to one byte per element with no formatting.
func appendTupleKey(dst []byte, children []int) []byte {
	for _, c := range children {
		dst = binary.AppendUvarint(dst, uint64(c))
	}
	return dst
}

// getRun hands out a pooled (or fresh) run configured for one trial.
// Pooled runs are reset here, on reuse, not on release.
func (pl *plan) getRun(opts Options, seed int64) *run {
	pl.mu.Lock()
	var r *run
	if k := len(pl.freeRuns); k > 0 {
		r = pl.freeRuns[k-1]
		pl.freeRuns = pl.freeRuns[:k-1]
	}
	pl.mu.Unlock()
	if r == nil {
		r = &run{
			pl:      pl,
			trees:   dense.NewTable(len(pl.states)),
			unions:  dense.NewTable(pl.slots),
			forests: dense.NewTable(len(pl.tuples)),
			maxN:    -1,
		}
	} else {
		r.reset()
	}
	r.seed = seed
	r.samples = opts.Samples
	r.maxRetry = opts.MaxRetry
	r.ctx = opts.Ctx
	return r
}

// getSampler hands out a pooled (or fresh) sampler session. The caller
// binds it to a run and, for escaping draws, clears its arena.
func (pl *plan) getSampler() *sampler {
	pl.mu.Lock()
	if k := len(pl.freeSmps); k > 0 {
		s := pl.freeSmps[k-1]
		pl.freeSmps = pl.freeSmps[:k-1]
		pl.mu.Unlock()
		return s
	}
	pl.mu.Unlock()
	return newSampler(pl)
}

func (pl *plan) putSamplerLocked(s *sampler) {
	s.r = nil
	s.rejections, s.acceptChecks = 0, 0
	if len(pl.freeSmps) < maxPooled {
		pl.freeSmps = append(pl.freeSmps, s)
	}
}

// release returns a call's runs (with their top-level samplers) and
// worker samplers to the pool. Callers must be done reading counters.
func (pl *plan) release(runs []*run, call *callState) {
	pl.mu.Lock()
	for _, r := range runs {
		if r == nil {
			continue
		}
		if r.top != nil {
			pl.putSamplerLocked(r.top)
			r.top = nil
		}
		r.w, r.call = nil, nil
		if len(pl.freeRuns) < maxPooled {
			pl.freeRuns = append(pl.freeRuns, r)
		}
	}
	if call != nil {
		for _, s := range call.smps {
			if s != nil {
				pl.putSamplerLocked(s)
			}
		}
	}
	pl.mu.Unlock()
}

// callState is the per-call shared context of one Trees/Count call:
// the worker-local samplers, indexed by dense scheduler worker ID. Each
// slot is only ever touched by the worker owning that ID (and read by
// the caller after the scheduler drains), so no synchronization is
// needed.
type callState struct {
	pl   *plan
	smps []*sampler
}

func newCallState(pl *plan, procs int) *callState {
	return &callState{pl: pl, smps: make([]*sampler, procs)}
}

// sampler returns the calling worker's sampler, creating it on first
// use.
func (c *callState) sampler(id int) *sampler {
	if s := c.smps[id]; s != nil {
		return s
	}
	s := c.pl.getSampler()
	c.smps[id] = s
	return s
}

// totals sums the sampling effort counters across the call's worker
// samplers. Per-sample work is deterministic, so the totals match the
// sequential run regardless of which worker drew which sample.
func (c *callState) totals() (rejections, acceptChecks int) {
	for _, s := range c.smps {
		if s != nil {
			rejections += s.rejections
			acceptChecks += s.acceptChecks
		}
	}
	return rejections, acceptChecks
}

// topSampler lazily creates the run's persistent top-level sampling
// session (successive draws advance its stream). Top-level draws escape
// to callers, so the sampler must not arena-allocate.
func (r *run) topSampler() *sampler {
	if r.top == nil {
		r.top = r.pl.getSampler()
		r.top.rng = splitmix.New(uint64(r.seed) ^ splitmix.TopSamplerSalt)
		r.top.arena = nil
		r.top.bind(r)
	}
	return r.top
}
