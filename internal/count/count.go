// Package count implements CountNFTA: a randomized approximation scheme
// for |L_n(T)|, the number of distinct labelled trees of size n accepted
// by a non-deterministic finite tree automaton. It follows the
// structure of the FPRAS of Arenas, Croquevielle, Jayaram and Riveros
// ("When is approximate counting for conjunctive queries tractable?",
// STOC 2021), the black box that Theorems 1 and 3 of the paper invoke:
//
//   - for every (state q, size n), the set T(q, n) of accepted trees
//     decomposes by root symbol (disjoint) and then into a union over
//     transitions, whose overlap is estimated by drawing near-uniform
//     samples and testing membership in earlier branches (tree
//     acceptance is polynomial-time);
//   - forests F((q₁,…,q_k), m) decompose as a *disjoint* union over the
//     size of the first tree of products T(q₁, j) × F((q₂,…,q_k), m−j),
//     so their cardinalities combine exactly with no extra sampling
//     error;
//   - samplers mirror the estimates: symbol and split choices are drawn
//     proportionally to estimated cardinalities, and transition overlap
//     is resolved by canonical-first rejection, which makes the draw
//     uniform over the union when the component samplers are uniform.
//
// Sample sizes default to a practical polynomial in 1/ε rather than the
// constants of the theoretical analysis (which the paper itself calls
// impractical, §6); accuracy is validated against exact counters in the
// test suite and experiment harness.
package count

import (
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"

	"pqe/internal/efloat"
	"pqe/internal/nfta"
)

// Options configures the estimator. The zero value gets sensible
// defaults.
type Options struct {
	// Epsilon is the target relative error of a single trial, in (0,1).
	// Default 0.1.
	Epsilon float64
	// Trials is the number of independent estimates whose median is
	// returned. Default 5.
	Trials int
	// Samples is the number of samples per overlap term; 0 derives
	// max(24, ⌈6/ε²⌉).
	Samples int
	// MaxRetry bounds canonical-rejection retries; 0 derives a default.
	MaxRetry int
	// Seed seeds the deterministic PRNG (ignored when Rng is set).
	Seed int64
	// Rng supplies randomness when non-nil.
	Rng *rand.Rand
	// Parallel runs the independent trials on separate goroutines. The
	// result is identical to the sequential run with the same seed
	// (per-trial seeds are drawn up front).
	Parallel bool
	// Stats, when non-nil, accumulates estimator effort counters across
	// all trials (for observability and the experiment harness).
	Stats *Stats
}

// Stats reports how much work the estimator did.
type Stats struct {
	// TreeKeys and ForestKeys are memo-table sizes: distinct (state,
	// size) and (tuple, size) cells computed.
	TreeKeys, ForestKeys int
	// UnionSamples is the number of forests drawn for overlap
	// estimation.
	UnionSamples int
	// Rejections counts canonical-rejection retries during sampling.
	Rejections int
}

func (o Options) withDefaults() Options {
	if o.Epsilon <= 0 || o.Epsilon >= 1 {
		o.Epsilon = 0.1
	}
	if o.Trials <= 0 {
		o.Trials = 5
	}
	if o.Samples <= 0 {
		o.Samples = int(math.Max(24, math.Ceil(6/(o.Epsilon*o.Epsilon))))
	}
	if o.Rng == nil {
		seed := o.Seed
		if seed == 0 {
			seed = 1
		}
		o.Rng = rand.New(rand.NewSource(seed))
	}
	return o
}

// Trees approximates |L_n(T)| for a λ-free NFTA, within relative error ε
// with high probability (median of independent trials).
func Trees(a *nfta.NFTA, n int, opts Options) efloat.E {
	if a.HasLambda() {
		panic("count: automaton has λ-transitions; run EliminateLambda first")
	}
	opts = opts.withDefaults()
	results := make([]efloat.E, opts.Trials)
	seeds := make([]int64, opts.Trials)
	for t := range seeds {
		seeds[t] = opts.Rng.Int63()
	}
	stats := make([]*estimator, opts.Trials)
	runTrial := func(t int) {
		e := newEstimatorSeeded(a, opts, seeds[t])
		results[t] = e.treeEst(a.Initial(), n)
		stats[t] = e
	}
	if opts.Parallel {
		var wg sync.WaitGroup
		for t := range results {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				runTrial(t)
			}(t)
		}
		wg.Wait()
	} else {
		for t := range results {
			runTrial(t)
		}
	}
	if opts.Stats != nil {
		for _, e := range stats {
			opts.Stats.TreeKeys += len(e.trees)
			opts.Stats.ForestKeys += len(e.forests)
			opts.Stats.UnionSamples += e.unionSamples
			opts.Stats.Rejections += e.rejections
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Less(results[j]) })
	return results[len(results)/2]
}

// SampleTree draws one near-uniform tree from L_n(T), or nil if the
// language is (estimated) empty.
func SampleTree(a *nfta.NFTA, n int, opts Options) *nfta.Tree {
	if a.HasLambda() {
		panic("count: automaton has λ-transitions; run EliminateLambda first")
	}
	opts = opts.withDefaults()
	e := newEstimator(a, opts)
	if e.treeEst(a.Initial(), n).IsZero() {
		return nil
	}
	return e.sampleTree(a.Initial(), n)
}

type qnKey struct{ q, n int }
type qsnKey struct{ q, sym, n int }
type tupleKey struct {
	tuple int // interned children tuple
	m     int
}

type estimator struct {
	a        *nfta.NFTA
	rng      *rand.Rand
	samples  int
	maxRetry int

	trees   map[qnKey]efloat.E
	unions  map[qsnKey]efloat.E
	forests map[tupleKey]efloat.E

	unionSamples int
	rejections   int

	tupleIDs map[string]int
	tuples   [][]int

	// transBySym[q] groups q's outgoing transitions by symbol, each as a
	// list of interned children tuples, in a fixed (canonical) order.
	transBySym []map[int][]int
	symsOf     [][]int // sorted symbols with transitions out of q
}

func newEstimator(a *nfta.NFTA, opts Options) *estimator {
	return newEstimatorSeeded(a, opts, opts.Rng.Int63())
}

func newEstimatorSeeded(a *nfta.NFTA, opts Options, seed int64) *estimator {
	e := &estimator{
		a:        a,
		rng:      rand.New(rand.NewSource(seed)),
		samples:  opts.Samples,
		maxRetry: opts.MaxRetry,
		trees:    make(map[qnKey]efloat.E),
		unions:   make(map[qsnKey]efloat.E),
		forests:  make(map[tupleKey]efloat.E),
		tupleIDs: make(map[string]int),
	}
	e.transBySym = make([]map[int][]int, a.NumStates())
	e.symsOf = make([][]int, a.NumStates())
	for q := 0; q < a.NumStates(); q++ {
		e.transBySym[q] = make(map[int][]int)
		for _, tr := range a.From(q) {
			id := e.internTuple(tr.Children)
			e.transBySym[q][tr.Sym] = append(e.transBySym[q][tr.Sym], id)
		}
		for sym := range e.transBySym[q] {
			e.symsOf[q] = append(e.symsOf[q], sym)
		}
		sort.Ints(e.symsOf[q])
	}
	return e
}

func (e *estimator) internTuple(children []int) int {
	var b strings.Builder
	for _, c := range children {
		b.WriteString(strconv.Itoa(c))
		b.WriteByte(',')
	}
	k := b.String()
	if id, ok := e.tupleIDs[k]; ok {
		return id
	}
	id := len(e.tuples)
	e.tupleIDs[k] = id
	e.tuples = append(e.tuples, append([]int(nil), children...))
	return id
}

// treeEst returns the (memoized) estimate of |T(q, n)|.
func (e *estimator) treeEst(q, n int) efloat.E {
	if n <= 0 {
		return efloat.Zero
	}
	key := qnKey{q, n}
	if v, ok := e.trees[key]; ok {
		return v
	}
	// Guard against reentrancy: with n ≥ 1 the recursion strictly
	// decreases sizes (forests of n−1 < n), so plain memoization
	// suffices; pre-store zero to be safe against pathological input.
	e.trees[key] = efloat.Zero
	total := efloat.Zero
	for _, sym := range e.symsOf[q] {
		total = total.Add(e.symbolUnion(q, sym, n))
	}
	e.trees[key] = total
	return total
}

// symbolUnion estimates (and memoizes) the number of trees of size n,
// root label sym, accepted from q: the union over transitions (q, sym,
// c) of the sym-rooted trees with child forest in F(c, n−1).
// Memoization matters: the samplers consult these estimates at every
// recursion level, and re-estimating a union re-runs its sampling loop.
func (e *estimator) symbolUnion(q, sym, n int) efloat.E {
	tuples := e.transBySym[q][sym]
	switch len(tuples) {
	case 0:
		return efloat.Zero
	case 1:
		return e.forestEst(tuples[0], n-1)
	}
	key := qsnKey{q, sym, n}
	if v, ok := e.unions[key]; ok {
		return v
	}
	e.unions[key] = efloat.Zero
	total := efloat.Zero
	for j, tid := range tuples {
		cj := e.forestEst(tid, n-1)
		if cj.IsZero() {
			continue
		}
		if j == 0 {
			total = total.Add(cj)
			continue
		}
		fresh := 0
		for s := 0; s < e.samples; s++ {
			e.unionSamples++
			f := e.sampleForest(tid, n-1)
			if f == nil {
				continue
			}
			if e.firstAccepting(tuples[:j], f) < 0 {
				fresh++
			}
		}
		total = total.Add(cj.MulFloat(float64(fresh) / float64(e.samples)))
	}
	e.unions[key] = total
	return total
}

// firstAccepting returns the index of the first tuple accepting the
// forest, or -1. Acceptance sets per forest tree are computed once.
func (e *estimator) firstAccepting(tuples []int, forest []*nfta.Tree) int {
	sets := make([]map[int]bool, len(forest))
	for i, t := range forest {
		sets[i] = e.a.AcceptingStates(t)
	}
	for j, tid := range tuples {
		tuple := e.tuples[tid]
		if len(tuple) != len(forest) {
			continue
		}
		ok := true
		for i, q := range tuple {
			if !sets[i][q] {
				ok = false
				break
			}
		}
		if ok {
			return j
		}
	}
	return -1
}

// forestEst returns the (memoized) estimate of |F(tuple, m)|, combining
// first-tree-size splits exactly (disjoint union of products).
func (e *estimator) forestEst(tid, m int) efloat.E {
	tuple := e.tuples[tid]
	if len(tuple) == 0 {
		if m == 0 {
			return efloat.One
		}
		return efloat.Zero
	}
	if len(tuple) == 1 {
		return e.treeEst(tuple[0], m)
	}
	key := tupleKey{tid, m}
	if v, ok := e.forests[key]; ok {
		return v
	}
	restID := e.internTuple(tuple[1:])
	total := efloat.Zero
	for j := 1; j <= m-(len(tuple)-1); j++ {
		head := e.treeEst(tuple[0], j)
		if head.IsZero() {
			continue
		}
		total = total.Add(head.Mul(e.forestEst(restID, m-j)))
	}
	e.forests[key] = total
	return total
}

// sampleTree draws a near-uniform tree from T(q, n), or nil if empty.
func (e *estimator) sampleTree(q, n int) *nfta.Tree {
	if e.treeEst(q, n).IsZero() {
		return nil
	}
	syms := e.symsOf[q]
	weights := make([]efloat.E, len(syms))
	for i, sym := range syms {
		weights[i] = e.symbolUnion(q, sym, n)
	}
	i := e.pick(weights)
	if i < 0 {
		return nil
	}
	sym := syms[i]
	tuples := e.transBySym[q][sym]
	if len(tuples) == 1 {
		f := e.sampleForest(tuples[0], n-1)
		if f == nil {
			return nil
		}
		return &nfta.Tree{Sym: sym, Children: f}
	}
	tw := make([]efloat.E, len(tuples))
	for j, tid := range tuples {
		tw[j] = e.forestEst(tid, n-1)
	}
	maxRetry := e.maxRetry
	if maxRetry <= 0 {
		maxRetry = 32 * len(tuples)
	}
	var last *nfta.Tree
	for r := 0; r < maxRetry; r++ {
		j := e.pick(tw)
		if j < 0 {
			return nil
		}
		f := e.sampleForest(tuples[j], n-1)
		if f == nil {
			continue
		}
		last = &nfta.Tree{Sym: sym, Children: f}
		if j == 0 || e.firstAccepting(tuples[:j], f) < 0 {
			return last
		}
		e.rejections++
	}
	// Retry budget exhausted: return the latest draw (slightly biased
	// towards multiply-covered trees; the budget makes this path rare).
	return last
}

// sampleForest draws a near-uniform forest from F(tuple, m), or nil if
// empty. Splits are disjoint, so no rejection is needed.
func (e *estimator) sampleForest(tid, m int) []*nfta.Tree {
	tuple := e.tuples[tid]
	if len(tuple) == 0 {
		if m == 0 {
			return []*nfta.Tree{}
		}
		return nil
	}
	if len(tuple) == 1 {
		t := e.sampleTree(tuple[0], m)
		if t == nil {
			return nil
		}
		return []*nfta.Tree{t}
	}
	restID := e.internTuple(tuple[1:])
	maxHead := m - (len(tuple) - 1)
	if maxHead < 1 {
		return nil
	}
	weights := make([]efloat.E, maxHead)
	for j := 1; j <= maxHead; j++ {
		weights[j-1] = e.treeEst(tuple[0], j).Mul(e.forestEst(restID, m-j))
	}
	i := e.pick(weights)
	if i < 0 {
		return nil
	}
	j := i + 1
	head := e.sampleTree(tuple[0], j)
	if head == nil {
		return nil
	}
	rest := e.sampleForest(restID, m-j)
	if rest == nil {
		return nil
	}
	return append([]*nfta.Tree{head}, rest...)
}

// pick returns an index with probability proportional to the weights, or
// -1 if all are zero.
func (e *estimator) pick(weights []efloat.E) int {
	total := efloat.Sum(weights...)
	if total.IsZero() {
		return -1
	}
	target := total.MulFloat(e.rng.Float64())
	acc := efloat.Zero
	last := -1
	for i, w := range weights {
		if w.IsZero() {
			continue
		}
		last = i
		acc = acc.Add(w)
		if target.Less(acc) {
			return i
		}
	}
	return last
}
