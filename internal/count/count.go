// Package count implements CountNFTA: a randomized approximation scheme
// for |L_n(T)|, the number of distinct labelled trees of size n accepted
// by a non-deterministic finite tree automaton. It follows the
// structure of the FPRAS of Arenas, Croquevielle, Jayaram and Riveros
// ("When is approximate counting for conjunctive queries tractable?",
// STOC 2021), the black box that Theorems 1 and 3 of the paper invoke:
//
//   - for every (state q, size n), the set T(q, n) of accepted trees
//     decomposes by root symbol (disjoint) and then into a union over
//     transitions, whose overlap is estimated by drawing near-uniform
//     samples and testing membership in earlier branches (tree
//     acceptance is polynomial-time);
//   - forests F((q₁,…,q_k), m) decompose as a *disjoint* union over the
//     size of the first tree of products T(q₁, j) × F((q₂,…,q_k), m−j),
//     so their cardinalities combine exactly with no extra sampling
//     error;
//   - samplers mirror the estimates: symbol and split choices are drawn
//     proportionally to estimated cardinalities, and transition overlap
//     is resolved by canonical-first rejection, which makes the draw
//     uniform over the union when the component samplers are uniform.
//
// Sample sizes default to a practical polynomial in 1/ε rather than the
// constants of the theoretical analysis (which the paper itself calls
// impractical, §6); accuracy is validated against exact counters in the
// test suite and experiment harness.
//
// The engine is built for throughput: memo tables are dense
// [row][size] slices (internal/dense), acceptance checks use pooled bit
// sets (internal/bitset), and the overlap-sampling loop — where nearly
// all the time goes — fans out across a bounded worker pool with one
// deterministic sub-RNG per sample (internal/splitmix, sampler.go), so
// results are bit-identical for a fixed seed at every Workers setting.
// The string-side engine (internal/nfa) shares this architecture and
// these substrate packages.
package count

import (
	"context"
	"encoding/binary"
	"math"
	"math/rand"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"pqe/internal/dense"
	"pqe/internal/efloat"
	"pqe/internal/nfta"
	"pqe/internal/obs"
	"pqe/internal/splitmix"
)

// Options configures the estimator. The zero value gets sensible
// defaults.
type Options struct {
	// Epsilon is the target relative error of a single trial, in (0,1).
	// Default 0.1.
	Epsilon float64
	// Trials is the number of independent estimates whose median is
	// returned. Default 5.
	Trials int
	// Samples is the number of samples per overlap term; 0 derives
	// max(24, ⌈6/ε²⌉).
	Samples int
	// MaxRetry bounds canonical-rejection retries; 0 derives a default.
	MaxRetry int
	// Seed seeds the deterministic PRNG (ignored when Rng is set).
	Seed int64
	// Rng supplies randomness when non-nil.
	Rng *rand.Rand
	// Parallel runs the independent trials on separate goroutines. The
	// result is identical to the sequential run with the same seed
	// (per-trial seeds are drawn up front).
	Parallel bool
	// Workers bounds the goroutines drawing overlap samples *inside* a
	// trial. 0 or 1 means sequential. Every sample draws from its own
	// sub-RNG derived from (trial seed, site, sample index), so the
	// result is identical across all Workers settings for a fixed seed.
	Workers int
	// Stats, when non-nil, accumulates estimator effort counters across
	// all trials. Deprecated thin accessor: the same counters (and more)
	// flow into Obs's registry under countnfta_* names; new call sites
	// should read those.
	Stats *Stats
	// Obs, when non-nil, receives the unified telemetry of every call:
	// a count.trees span with per-trial child spans, countnfta_* registry
	// counters (memo hits/misses, interner sizes, acceptance checks,
	// worker utilization), and per-trial convergence records. A nil
	// Scope disables all of it at the cost of a pointer test.
	Obs *obs.Scope
}

// Stats reports how much work the estimator did.
type Stats struct {
	// TreeKeys and ForestKeys are memo-table sizes: distinct (state,
	// size) and (tuple, size) cells computed.
	TreeKeys, ForestKeys int
	// UnionSamples is the number of forests drawn for overlap
	// estimation.
	UnionSamples int
	// Rejections counts canonical-rejection retries during sampling.
	Rejections int
	// WallTime is the elapsed time of the Trees calls that recorded
	// into this Stats.
	WallTime time.Duration
	// Mallocs and AllocBytes are heap-allocation deltas over those
	// calls, read from runtime.MemStats. They are process-global, so
	// concurrent unrelated work inflates them; within the benchmark
	// harness they attribute cleanly.
	Mallocs    uint64
	AllocBytes uint64
}

func (o Options) withDefaults() Options {
	if o.Epsilon <= 0 || o.Epsilon >= 1 {
		o.Epsilon = 0.1
	}
	if o.Trials <= 0 {
		o.Trials = 5
	}
	if o.Samples <= 0 {
		o.Samples = int(math.Max(24, math.Ceil(6/(o.Epsilon*o.Epsilon))))
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Rng == nil {
		seed := o.Seed
		if seed == 0 {
			seed = 1
		}
		o.Rng = rand.New(rand.NewSource(seed))
	}
	return o
}

// Trees approximates |L_n(T)| for a λ-free NFTA, within relative error ε
// with high probability (median of independent trials).
func Trees(a *nfta.NFTA, n int, opts Options) efloat.E {
	if a.HasLambda() {
		panic("count: automaton has λ-transitions; run EliminateLambda first")
	}
	opts = opts.withDefaults()
	var t0 time.Time
	var m0 runtime.MemStats
	if opts.Stats != nil {
		t0 = time.Now()
		runtime.ReadMemStats(&m0)
	}
	sc, span := opts.Obs.Span("count.trees")
	if span != nil {
		span.SetAttr("n", n)
		span.SetAttr("states", a.NumStates())
		span.SetAttr("trials", opts.Trials)
		span.SetAttr("epsilon", opts.Epsilon)
		span.SetAttr("workers", opts.Workers)
	}
	conv := sc.Convergence()
	callID := conv.NextCall()
	callStart := time.Time{}
	if conv != nil || span != nil {
		callStart = time.Now()
	}
	results := make([]efloat.E, opts.Trials)
	seeds := make([]int64, opts.Trials)
	for t := range seeds {
		seeds[t] = opts.Rng.Int63()
	}
	ests := make([]*estimator, opts.Trials)
	runTrial := func(t int) {
		tspan := span.Start("trial")
		var tt0 time.Time
		if conv != nil || tspan != nil {
			tt0 = time.Now()
		}
		e := newEstimatorSeeded(a, opts, seeds[t])
		results[t] = e.treeEst(a.Initial(), n)
		ests[t] = e
		if tspan != nil {
			tspan.SetAttr("trial", t)
			tspan.SetAttr("union_samples", e.unionSamples)
			tspan.End()
		}
		if conv != nil {
			log2 := math.Inf(-1)
			if !results[t].IsZero() {
				log2 = results[t].Log2()
			}
			conv.Record(obs.TrialRecord{
				Engine:       "countnfta",
				Call:         callID,
				Trial:        t,
				Trials:       opts.Trials,
				Epsilon:      opts.Epsilon,
				Log2Estimate: log2,
				UnionSamples: e.unionSamples,
				Elapsed:      time.Since(tt0),
			})
		}
	}
	if opts.Parallel {
		var wg sync.WaitGroup
		for t := range results {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				pprof.Do(context.Background(), pprof.Labels("pqe_engine", "countnfta", "pqe_stage", "trial"), func(context.Context) {
					runTrial(t)
				})
			}(t)
		}
		wg.Wait()
	} else {
		for t := range results {
			runTrial(t)
		}
	}
	if opts.Stats != nil {
		for _, e := range ests {
			opts.Stats.TreeKeys += e.trees.Keys()
			opts.Stats.ForestKeys += e.forests.Keys()
			opts.Stats.UnionSamples += e.unionSamples
			opts.Stats.Rejections += e.rejections
		}
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		opts.Stats.WallTime += time.Since(t0)
		opts.Stats.Mallocs += m1.Mallocs - m0.Mallocs
		opts.Stats.AllocBytes += m1.TotalAlloc - m0.TotalAlloc
	}
	if reg := sc.Registry(); reg != nil {
		flushRegistry(reg, ests, time.Since(callStart))
	}
	span.End()
	sort.Slice(results, func(i, j int) bool { return results[i].Less(results[j]) })
	return results[len(results)/2]
}

// flushRegistry folds the per-trial effort counters into the unified
// metrics registry, once per Trees call — never inside the sampling
// loops, which only bump plain per-trial integers.
func flushRegistry(reg *obs.Registry, ests []*estimator, wall time.Duration) {
	var treeKeys, forestKeys, memoHits, unionSamples, rejections, acceptChecks int
	var spawns, busy int64
	interned := 0
	for _, e := range ests {
		if e == nil {
			continue
		}
		treeKeys += e.trees.Keys()
		forestKeys += e.forests.Keys()
		memoHits += e.memoHits
		unionSamples += e.unionSamples
		rejections += e.rejections
		acceptChecks += e.acceptChecks()
		spawns += e.workerSpawns
		busy += e.workerBusyNs
		if len(e.tuples) > interned {
			interned = len(e.tuples)
		}
	}
	reg.Counter("countnfta_calls_total").Inc()
	reg.Counter("countnfta_trials_total").Add(int64(len(ests)))
	reg.Counter("countnfta_tree_keys_total").Add(int64(treeKeys))
	reg.Counter("countnfta_forest_keys_total").Add(int64(forestKeys))
	reg.Counter("countnfta_memo_hits_total").Add(int64(memoHits))
	reg.Counter("countnfta_memo_misses_total").Add(int64(treeKeys + forestKeys))
	reg.Counter("countnfta_union_samples_total").Add(int64(unionSamples))
	reg.Counter("countnfta_rejections_total").Add(int64(rejections))
	reg.Counter("countnfta_accept_checks_total").Add(int64(acceptChecks))
	reg.Counter("countnfta_worker_spawns_total").Add(spawns)
	reg.Counter("countnfta_worker_busy_ns_total").Add(busy)
	reg.Counter("countnfta_wall_ns_total").Add(wall.Nanoseconds())
	reg.Gauge("countnfta_interned_tuples").Set(float64(interned))
	reg.Histogram("countnfta_call_seconds").Observe(wall.Seconds())
}

// SampleTree draws one near-uniform tree from L_n(T), or nil if the
// language is (estimated) empty.
func SampleTree(a *nfta.NFTA, n int, opts Options) *nfta.Tree {
	if a.HasLambda() {
		panic("count: automaton has λ-transitions; run EliminateLambda first")
	}
	opts = opts.withDefaults()
	e := newEstimator(a, opts)
	if e.treeEst(a.Initial(), n).IsZero() {
		return nil
	}
	return e.sampleTreeTop(a.Initial(), n)
}

// symTrans groups one state's outgoing transitions on one symbol: the
// interned children tuples in a fixed (canonical) order, plus the row
// of the unions memo table when there is more than one branch.
type symTrans struct {
	sym    int
	tuples []int
	slot   int // unions table row, -1 when len(tuples) == 1
}

// estimator holds one trial's memo tables and the frozen transition
// structure. Estimation (treeEst / symbolUnion / forestEst) runs
// sequentially and writes the tables; sampling runs on sampler sessions
// that only read them (see sampler.go).
type estimator struct {
	a        *nfta.NFTA
	seed     int64
	samples  int
	maxRetry int
	workers  int

	// Frozen after construction: per-state symbol entries (sorted by
	// symbol), interned children tuples, and each tuple's suffix
	// tuple[1:] (interned eagerly so sampling never mutates the
	// interner).
	states [][]symTrans
	tuples [][]int
	restID []int

	trees   dense.Table // rows: states
	unions  dense.Table // rows: multi-branch (state, symbol) slots
	forests dense.Table // rows: tuple IDs

	unionSamples int
	rejections   int
	memoHits     int    // estimation-path memo-table hits (misses = keys)
	acceptCount  int    // bitset acceptance computations (flushed from samplers)
	siteSeq      uint64 // sampling-site counter for sub-RNG derivation

	// Worker utilization, measured only when timed (obs attached):
	// goroutines spawned by countFreshParallel and their summed busy ns.
	timed        bool
	workerSpawns int64
	workerBusyNs int64

	top        *sampler   // lazily created top-level sampling session
	workerSmps []*sampler // reused intra-trial worker samplers
}

// acceptChecks totals the acceptance-bitset computations across the
// trial's samplers (worker counts are flushed eagerly; the top-level
// sampling session is read here).
func (e *estimator) acceptChecks() int {
	n := e.acceptCount
	if e.top != nil {
		n += e.top.acceptChecks
	}
	return n
}

func newEstimator(a *nfta.NFTA, opts Options) *estimator {
	return newEstimatorSeeded(a, opts, opts.Rng.Int63())
}

func newEstimatorSeeded(a *nfta.NFTA, opts Options, seed int64) *estimator {
	e := &estimator{
		a:        a,
		seed:     seed,
		samples:  opts.Samples,
		maxRetry: opts.MaxRetry,
		workers:  opts.Workers,
		timed:    opts.Obs.Registry() != nil,
	}
	tupleIDs := make(map[string]int)
	var keyBuf []byte
	var intern func(children []int) int
	intern = func(children []int) int {
		keyBuf = appendTupleKey(keyBuf[:0], children)
		k := string(keyBuf)
		if id, ok := tupleIDs[k]; ok {
			return id
		}
		id := len(e.tuples)
		tupleIDs[k] = id
		e.tuples = append(e.tuples, append([]int(nil), children...))
		e.restID = append(e.restID, -1)
		if len(children) > 1 {
			rest := intern(children[1:])
			e.restID[id] = rest
		}
		return id
	}
	e.states = make([][]symTrans, a.NumStates())
	slots := 0
	for q := 0; q < a.NumStates(); q++ {
		bySym := make(map[int]int) // symbol -> entry index
		var entries []symTrans
		for _, tr := range a.From(q) {
			id := intern(tr.Children)
			ei, ok := bySym[tr.Sym]
			if !ok {
				ei = len(entries)
				bySym[tr.Sym] = ei
				entries = append(entries, symTrans{sym: tr.Sym, slot: -1})
			}
			entries[ei].tuples = append(entries[ei].tuples, id)
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].sym < entries[j].sym })
		for i := range entries {
			if len(entries[i].tuples) > 1 {
				entries[i].slot = slots
				slots++
			}
		}
		e.states[q] = entries
	}
	e.trees = dense.NewTable(a.NumStates())
	e.unions = dense.NewTable(slots)
	e.forests = dense.NewTable(len(e.tuples))
	return e
}

// appendTupleKey appends a varint encoding of the children tuple — the
// interner's identity key. States are small non-negative integers, so
// most tuples encode to one byte per element with no formatting.
func appendTupleKey(dst []byte, children []int) []byte {
	for _, c := range children {
		dst = binary.AppendUvarint(dst, uint64(c))
	}
	return dst
}

// treeEst returns the (memoized) estimate of |T(q, n)|.
func (e *estimator) treeEst(q, n int) efloat.E {
	if n <= 0 {
		return efloat.Zero
	}
	if v, ok := e.trees.Get(q, n); ok {
		e.memoHits++
		return v
	}
	// Guard against reentrancy: with n ≥ 1 the recursion strictly
	// decreases sizes (forests of n−1 < n), so plain memoization
	// suffices; pre-store zero to be safe against pathological input.
	e.trees.Put(q, n, efloat.Zero)
	total := efloat.Zero
	for i := range e.states[q] {
		total = total.Add(e.symbolUnion(q, i, n))
	}
	e.trees.Put(q, n, total)
	return total
}

// treeLookup is the read-only view of treeEst for samplers.
func (e *estimator) treeLookup(q, n int) efloat.E {
	if n <= 0 {
		return efloat.Zero
	}
	v, _ := e.trees.Get(q, n)
	return v
}

// symbolUnion estimates (and memoizes) the number of trees of size n,
// root label states[q][ei].sym, accepted from q: the union over the
// entry's transitions of the sym-rooted trees with child forest in
// F(c, n−1). Memoization matters: the samplers consult these estimates
// at every recursion level, and re-estimating a union re-runs its
// sampling loop.
func (e *estimator) symbolUnion(q, ei, n int) efloat.E {
	en := &e.states[q][ei]
	tuples := en.tuples
	if len(tuples) == 1 {
		return e.forestEst(tuples[0], n-1)
	}
	if v, ok := e.unions.Get(en.slot, n); ok {
		e.memoHits++
		return v
	}
	e.unions.Put(en.slot, n, efloat.Zero)
	total := efloat.Zero
	for j, tid := range tuples {
		cj := e.forestEst(tid, n-1)
		if cj.IsZero() {
			continue
		}
		if j == 0 {
			total = total.Add(cj)
			continue
		}
		fresh := e.countFreshParallel(tuples, j, n)
		total = total.Add(cj.MulFloat(float64(fresh) / float64(e.samples)))
	}
	e.unions.Put(en.slot, n, total)
	return total
}

// unionLookup is the read-only view of symbolUnion for samplers.
func (e *estimator) unionLookup(en *symTrans, n int) efloat.E {
	if len(en.tuples) == 1 {
		return e.forestLookup(en.tuples[0], n-1)
	}
	v, _ := e.unions.Get(en.slot, n)
	return v
}

// countFreshParallel runs the overlap-sampling loop for union branch j
// at size n: e.samples forest draws, counting those not covered by an
// earlier branch. The draws are independent given the (already
// computed) memo tables, so they fan out across the trial's worker
// samplers; per-sample sub-RNGs keep the count identical for every
// worker count.
func (e *estimator) countFreshParallel(tuples []int, j, n int) int {
	site := e.siteSeq
	e.siteSeq++
	e.unionSamples += e.samples
	workers := e.workers
	if workers > e.samples {
		workers = e.samples
	}
	if len(e.workerSmps) < workers {
		for len(e.workerSmps) < workers {
			e.workerSmps = append(e.workerSmps, e.newSampler(0))
		}
	}
	if workers <= 1 {
		s := e.workerSmps[0]
		fresh := s.countFresh(tuples, j, n, site, 0, e.samples, 1)
		e.rejections += s.rejections
		e.acceptCount += s.acceptChecks
		s.rejections, s.acceptChecks = 0, 0
		return fresh
	}
	counts := make([]int, workers)
	var busy []int64
	if e.timed {
		busy = make([]int64, workers)
		e.workerSpawns += int64(workers)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pprof.Do(context.Background(), pprof.Labels("pqe_engine", "countnfta", "pqe_stage", "overlap"), func(context.Context) {
				var t0 time.Time
				if busy != nil {
					t0 = time.Now()
				}
				counts[w] = e.workerSmps[w].countFresh(tuples, j, n, site, w, e.samples, workers)
				if busy != nil {
					busy[w] = time.Since(t0).Nanoseconds()
				}
			})
		}(w)
	}
	wg.Wait()
	fresh := 0
	for w := 0; w < workers; w++ {
		fresh += counts[w]
		e.rejections += e.workerSmps[w].rejections
		e.acceptCount += e.workerSmps[w].acceptChecks
		e.workerSmps[w].rejections, e.workerSmps[w].acceptChecks = 0, 0
		if busy != nil {
			e.workerBusyNs += busy[w]
		}
	}
	return fresh
}

// forestEst returns the (memoized) estimate of |F(tuple, m)|, combining
// first-tree-size splits exactly (disjoint union of products).
func (e *estimator) forestEst(tid, m int) efloat.E {
	tuple := e.tuples[tid]
	switch len(tuple) {
	case 0:
		if m == 0 {
			return efloat.One
		}
		return efloat.Zero
	case 1:
		return e.treeEst(tuple[0], m)
	}
	if v, ok := e.forests.Get(tid, m); ok {
		e.memoHits++
		return v
	}
	rest := e.restID[tid]
	total := efloat.Zero
	for j := 1; j <= m-(len(tuple)-1); j++ {
		head := e.treeEst(tuple[0], j)
		if head.IsZero() {
			continue
		}
		total = total.Add(head.Mul(e.forestEst(rest, m-j)))
	}
	e.forests.Put(tid, m, total)
	return total
}

// forestLookup is the read-only view of forestEst for samplers.
func (e *estimator) forestLookup(tid, m int) efloat.E {
	tuple := e.tuples[tid]
	switch len(tuple) {
	case 0:
		if m == 0 {
			return efloat.One
		}
		return efloat.Zero
	case 1:
		return e.treeLookup(tuple[0], m)
	}
	v, _ := e.forests.Get(tid, m)
	return v
}

// sampleTreeTop draws from T(q, n) on the trial's persistent top-level
// sampling session (successive calls advance its stream). treeEst(q, n)
// must have been computed.
func (e *estimator) sampleTreeTop(q, n int) *nfta.Tree {
	if e.top == nil {
		e.top = e.newSampler(uint64(e.seed) ^ splitmix.TopSamplerSalt)
	}
	return e.top.sampleTree(q, n)
}
