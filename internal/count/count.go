// Package count implements CountNFTA: a randomized approximation scheme
// for |L_n(T)|, the number of distinct labelled trees of size n accepted
// by a non-deterministic finite tree automaton. It follows the
// structure of the FPRAS of Arenas, Croquevielle, Jayaram and Riveros
// ("When is approximate counting for conjunctive queries tractable?",
// STOC 2021), the black box that Theorems 1 and 3 of the paper invoke:
//
//   - for every (state q, size n), the set T(q, n) of accepted trees
//     decomposes by root symbol (disjoint) and then into a union over
//     transitions, whose overlap is estimated by drawing near-uniform
//     samples and testing membership in earlier branches (tree
//     acceptance is polynomial-time);
//   - forests F((q₁,…,q_k), m) decompose as a *disjoint* union over the
//     size of the first tree of products T(q₁, j) × F((q₂,…,q_k), m−j),
//     so their cardinalities combine exactly with no extra sampling
//     error;
//   - samplers mirror the estimates: symbol and split choices are drawn
//     proportionally to estimated cardinalities, and transition overlap
//     is resolved by canonical-first rejection, which makes the draw
//     uniform over the union when the component samplers are uniform.
//
// Sample sizes default to a practical polynomial in 1/ε rather than the
// constants of the theoretical analysis (which the paper itself calls
// impractical, §6); accuracy is validated against exact counters in the
// test suite and experiment harness.
//
// The engine is built for throughput and splits into three layers:
//
//   - an immutable plan (plan.go) — the interned transition structure
//     and dense-table geometry — built once per automaton and cached on
//     it, shared by every trial and session;
//   - a per-trial run (this file) — seed, dense memo tables
//     (internal/dense), effort counters and prefix-sum weight rows
//     (prefix.go) — pooled on the plan so repeated estimation allocates
//     near zero in steady state;
//   - sampler sessions (sampler.go) with pooled bitsets and tree
//     arenas, bound to a run per chunk of sampling work.
//
// Trials and overlap-sample chunks share one work-stealing scheduler
// (internal/sched); every sample draws from its own sub-RNG derived
// from (trial seed, site, sample index) (internal/splitmix), so results
// are bit-identical for a fixed seed at every worker count. The
// string-side engine (internal/nfa) shares this architecture and these
// substrate packages.
package count

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pqe/internal/dense"
	"pqe/internal/efloat"
	"pqe/internal/nfta"
	"pqe/internal/obs"
	"pqe/internal/sched"
	"pqe/internal/seqstop"
)

// Options configures the estimator. The zero value gets sensible
// defaults.
type Options struct {
	// Epsilon is the target relative error of a single trial, in (0,1).
	// Default 0.1.
	Epsilon float64
	// Trials is the number of independent estimates whose median is
	// returned. Default 5.
	Trials int
	// Samples is the number of samples per overlap term; 0 derives
	// max(24, ⌈6/ε²⌉).
	Samples int
	// MaxRetry bounds canonical-rejection retries; 0 derives a default.
	MaxRetry int
	// Seed seeds the deterministic PRNG (ignored when Rng is set).
	Seed int64
	// Rng supplies randomness when non-nil.
	Rng *rand.Rand
	// Anytime enables sequential stopping: trials run in deterministic
	// batches (a pure function of (Epsilon, Delta, Trials), never of
	// wall-clock time or MaxProcs) and the call stops at the earliest
	// batch whose per-trial log₂ estimates all agree within the ε-band,
	// provided a conservative δ-derived floor of trials has run. Trials
	// is the hard cap — an anytime call never runs more trials than the
	// fixed schedule would, and when the certificate never fires it runs
	// exactly the fixed schedule. See internal/seqstop for the
	// statistics.
	Anytime bool
	// Delta is the anytime certificate's failure-probability target in
	// (0,1); ≤ 0 uses seqstop.DefaultDelta. Ignored unless Anytime.
	Delta float64
	// MinTrials overrides the δ-derived trial floor (clamped to
	// [1, Trials]). Ignored unless Anytime.
	MinTrials int
	// MaxProcs bounds the workers of the call's unified scheduler, which
	// dispatches whole trials and, within them, chunks of the
	// overlap-sampling loops (work-stealing, so a straggler trial never
	// leaves workers idle). 0 derives the count from the deprecated
	// Parallel/Workers pair; every setting returns bit-identical results
	// for a fixed seed.
	MaxProcs int
	// Parallel requests trial-level parallelism.
	//
	// Deprecated: set MaxProcs. Parallel maps to MaxProcs = Trials.
	Parallel bool
	// Workers requests intra-trial sampling parallelism.
	//
	// Deprecated: set MaxProcs. Workers > 1 maps to MaxProcs = Workers.
	Workers int
	// Stats, when non-nil, accumulates estimator effort counters across
	// all trials. Deprecated thin accessor: the same counters (and more)
	// flow into Obs's registry under countnfta_* names; new call sites
	// should read those.
	Stats *Stats
	// Obs, when non-nil, receives the unified telemetry of every call:
	// a count.trees span with per-trial child spans, countnfta_* registry
	// counters (memo hits/misses, interner sizes, acceptance checks,
	// plan-cache hits, scheduler steal/queue gauges), and per-trial
	// convergence records. A nil Scope disables all of it at the cost of
	// a pointer test.
	Obs *obs.Scope
	// Ctx, when non-nil, lets callers cancel a call mid-sampling:
	// cancellation is observed at every trial-batch boundary, before each
	// queued trial starts, and before each overlap-sampling dispatch, so
	// a cancelled call abandons its remaining work within one batch. The
	// value Trees returns after a cancellation is meaningless — callers
	// must check Ctx.Err() and discard it (internal/core does). A nil Ctx
	// (the default) never cancels and adds no per-sample cost.
	Ctx context.Context

	// procs is the resolved scheduler width, filled by withDefaults.
	procs int
}

// cancelled reports whether the call's context has been cancelled.
func (o Options) cancelled() bool {
	return o.Ctx != nil && o.Ctx.Err() != nil
}

// Stats reports how much work the estimator did.
type Stats struct {
	// TreeKeys and ForestKeys are memo-table sizes: distinct (state,
	// size) and (tuple, size) cells computed.
	TreeKeys, ForestKeys int
	// UnionSamples is the number of forests drawn for overlap
	// estimation.
	UnionSamples int
	// Rejections counts canonical-rejection retries during sampling.
	Rejections int
	// WallTime is the elapsed time of the Trees calls that recorded
	// into this Stats.
	WallTime time.Duration
	// Mallocs and AllocBytes are heap-allocation deltas over those
	// calls, read from runtime.MemStats. They are process-global, so
	// concurrent unrelated work inflates them; within the benchmark
	// harness they attribute cleanly.
	Mallocs    uint64
	AllocBytes uint64
}

func (o Options) withDefaults() Options {
	if o.Epsilon <= 0 || o.Epsilon >= 1 {
		o.Epsilon = 0.1
	}
	if o.Trials <= 0 {
		o.Trials = 5
	}
	if o.Samples <= 0 {
		o.Samples = int(math.Max(24, math.Ceil(6/(o.Epsilon*o.Epsilon))))
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	o.procs = sched.Resolve(o.MaxProcs, o.Workers, o.Parallel, o.Trials)
	if o.Rng == nil {
		seed := o.Seed
		if seed == 0 {
			seed = 1
		}
		o.Rng = rand.New(rand.NewSource(seed))
	}
	return o
}

// schedLabels are the pprof labels applied to scheduler workers.
var schedLabels = []string{"pqe_engine", "countnfta", "pqe_stage", "trial"}

// Trees approximates |L_n(T)| for a λ-free NFTA, within relative error ε
// with high probability (median of independent trials).
func Trees(a *nfta.NFTA, n int, opts Options) efloat.E {
	if a.HasLambda() {
		panic("count: automaton has λ-transitions; run EliminateLambda first")
	}
	opts = opts.withDefaults()
	var t0 time.Time
	var m0 runtime.MemStats
	if opts.Stats != nil {
		t0 = time.Now()
		runtime.ReadMemStats(&m0)
	}
	pl, planHit := planFor(a)
	sc, span := opts.Obs.Span("count.trees")
	if span != nil {
		span.SetAttr("n", n)
		span.SetAttr("states", a.NumStates())
		span.SetAttr("trials", opts.Trials)
		span.SetAttr("epsilon", opts.Epsilon)
		span.SetAttr("workers", opts.procs)
	}
	conv := sc.Convergence()
	callID := conv.NextCall()
	timed := sc.Registry() != nil
	callStart := time.Time{}
	if conv != nil || span != nil || timed {
		callStart = time.Now()
	}
	results := make([]efloat.E, opts.Trials)
	log2s := make([]float64, opts.Trials)
	seeds := make([]int64, opts.Trials)
	for t := range seeds {
		seeds[t] = opts.Rng.Int63()
	}
	runs := make([]*run, opts.Trials)
	call := newCallState(pl, opts.procs)
	trial := func(w *sched.Worker, t int) {
		if opts.cancelled() {
			return // queued after cancellation; the caller discards the call
		}
		tspan := span.Start("trial")
		var tt0 time.Time
		if conv != nil || tspan != nil {
			tt0 = time.Now()
		}
		r := pl.getRun(opts, seeds[t])
		r.w, r.call = w, call
		r.ensurePfx(n)
		results[t] = r.treeEst(a.Initial(), n)
		runs[t] = r
		log2 := math.Inf(-1)
		if !results[t].IsZero() {
			log2 = results[t].Log2()
		}
		log2s[t] = log2
		if tspan != nil {
			tspan.SetAttr("trial", t)
			tspan.SetAttr("union_samples", r.unionSamples)
			tspan.End()
		}
		if conv != nil {
			conv.Record(obs.TrialRecord{
				Engine:       "countnfta",
				Call:         callID,
				Trial:        t,
				Trials:       opts.Trials,
				Epsilon:      opts.Epsilon,
				Log2Estimate: log2,
				UnionSamples: r.unionSamples,
				Elapsed:      time.Since(tt0),
			})
		}
	}
	// The anytime path runs the same trials (same per-trial seeds, so
	// every executed trial is bit-identical to the fixed schedule's) in
	// deterministic batches, stopping at the earliest batch whose
	// spread certificate meets (ε, δ); the fixed path is one batch of
	// all Trials. Batch boundaries and the stop decision depend only on
	// (ε, δ, Trials) and the per-trial estimates — never on MaxProcs or
	// wall-clock time — so both paths are deterministic at every worker
	// count.
	var st sched.Stats
	executed := opts.Trials
	if opts.Anytime {
		sp := seqstop.New(opts.Epsilon, opts.Delta, opts.Trials, opts.MinTrials)
		executed = 0
		for executed < opts.Trials {
			if opts.cancelled() {
				break // per-batch deadline check; result is discarded
			}
			base := executed
			next := sp.NextBatch(base)
			bst := sched.Run(sched.Config{
				Procs:  opts.procs,
				Trials: next - base,
				Timed:  timed,
				Labels: schedLabels,
			}, func(w *sched.Worker, t int) { trial(w, base+t) })
			st.Accumulate(bst)
			executed = next
			if sp.Stop(log2s[:executed]) {
				break
			}
		}
	} else {
		st = sched.Run(sched.Config{
			Procs:  opts.procs,
			Trials: opts.Trials,
			Timed:  timed,
			Labels: schedLabels,
		}, trial)
	}
	saved := opts.Trials - executed
	results = results[:executed]
	if span != nil {
		span.SetAttr("trials_executed", executed)
	}
	if opts.Stats != nil {
		for _, r := range runs {
			if r == nil {
				continue
			}
			opts.Stats.TreeKeys += r.trees.Keys()
			opts.Stats.ForestKeys += r.forests.Keys()
			opts.Stats.UnionSamples += r.unionSamples
		}
		rej, _ := call.totals()
		opts.Stats.Rejections += rej
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		opts.Stats.WallTime += time.Since(t0)
		opts.Stats.Mallocs += m1.Mallocs - m0.Mallocs
		opts.Stats.AllocBytes += m1.TotalAlloc - m0.TotalAlloc
	}
	if reg := sc.Registry(); reg != nil {
		flushRegistry(reg, pl, runs[:executed], call, st, planHit, time.Since(callStart))
		reg.Counter("countnfta_trials_saved_total").Add(int64(saved))
		if saved > 0 {
			reg.Counter("countnfta_anytime_stops_total").Inc()
		}
	}
	span.End()
	pl.release(runs, call)
	if len(results) == 0 {
		return efloat.Zero // cancelled before any batch ran; caller discards
	}
	return efloat.UpperMedian(results)
}

// flushRegistry folds the per-call effort counters into the unified
// metrics registry, once per Trees call — never inside the sampling
// loops, which only bump plain per-run and per-sampler integers.
func flushRegistry(reg *obs.Registry, pl *plan, runs []*run, call *callState, st sched.Stats, planHit bool, wall time.Duration) {
	var treeKeys, forestKeys, memoHits, unionSamples int
	for _, r := range runs {
		if r == nil {
			continue
		}
		treeKeys += r.trees.Keys()
		forestKeys += r.forests.Keys()
		memoHits += r.memoHits
		unionSamples += r.unionSamples
	}
	rejections, acceptChecks := call.totals()
	for _, r := range runs {
		if r != nil && r.top != nil {
			acceptChecks += r.top.acceptChecks
		}
	}
	reg.Counter("countnfta_calls_total").Inc()
	reg.Counter("countnfta_trials_total").Add(int64(len(runs)))
	reg.Counter("countnfta_tree_keys_total").Add(int64(treeKeys))
	reg.Counter("countnfta_forest_keys_total").Add(int64(forestKeys))
	reg.Counter("countnfta_memo_hits_total").Add(int64(memoHits))
	reg.Counter("countnfta_memo_misses_total").Add(int64(treeKeys + forestKeys))
	reg.Counter("countnfta_union_samples_total").Add(int64(unionSamples))
	reg.Counter("countnfta_rejections_total").Add(int64(rejections))
	reg.Counter("countnfta_accept_checks_total").Add(int64(acceptChecks))
	reg.Counter("countnfta_worker_spawns_total").Add(st.Spawns)
	reg.Counter("countnfta_worker_busy_ns_total").Add(st.BusyNs)
	reg.Counter("countnfta_wall_ns_total").Add(wall.Nanoseconds())
	if planHit {
		reg.Counter("countnfta_plan_cache_hits_total").Inc()
	} else {
		reg.Counter("countnfta_plan_cache_misses_total").Inc()
	}
	reg.Counter("countnfta_sched_batches_total").Add(st.Batches)
	reg.Counter("countnfta_sched_chunks_total").Add(st.Chunks)
	reg.Counter("countnfta_sched_steals_total").Add(st.Steals)
	reg.Gauge("countnfta_sched_queue_depth").Set(float64(st.MaxQueue))
	reg.Gauge("countnfta_interned_tuples").Set(float64(len(pl.tuples)))
	reg.Histogram("countnfta_call_seconds").Observe(wall.Seconds())
}

// SampleTree draws one near-uniform tree from L_n(T), or nil if the
// language is (estimated) empty.
func SampleTree(a *nfta.NFTA, n int, opts Options) *nfta.Tree {
	if a.HasLambda() {
		panic("count: automaton has λ-transitions; run EliminateLambda first")
	}
	opts = opts.withDefaults()
	pl, _ := planFor(a)
	call := newCallState(pl, opts.procs)
	var r *run
	var tree *nfta.Tree
	sched.Run(sched.Config{Procs: opts.procs, Trials: 1, Labels: schedLabels}, func(w *sched.Worker, _ int) {
		r = pl.getRun(opts, opts.Rng.Int63())
		r.w, r.call = w, call
		r.ensurePfx(n)
		if r.treeEst(a.Initial(), n).IsZero() {
			return
		}
		tree = r.topSampler().sampleTree(a.Initial(), n)
	})
	pl.release([]*run{r}, call)
	return tree
}

// run is the thin mutable half of a trial: the seed, the dense memo
// tables and prefix rows keyed to the plan's geometry, and the effort
// counters. Estimation (treeEst / symbolUnion / forestEst) runs
// sequentially on the trial's scheduler worker and writes the tables;
// sampling runs on sampler sessions that only read them (see
// sampler.go). Runs are pooled on the plan and reset on reuse.
type run struct {
	pl       *plan
	seed     int64
	samples  int
	maxRetry int

	trees   dense.Table // rows: states
	unions  dense.Table // rows: multi-branch (state, symbol) slots
	forests dense.Table // rows: tuple IDs

	// Prefix-sum weight rows (prefix.go), flat arrays indexed
	// row·(maxN+1)+size.
	maxN      int
	entryPfx  []atomic.Pointer[prefixRow]
	branchPfx []atomic.Pointer[prefixRow]
	splitPfx  []atomic.Pointer[prefixRow]
	pfxMu     sync.Mutex
	pfx       pfxArena

	unionSamples int
	memoHits     int    // estimation-path memo-table hits (misses = keys)
	siteSeq      uint64 // sampling-site counter for sub-RNG derivation

	// ctx cancels overlap-sampling dispatches mid-trial; the trial's
	// tables then hold garbage, which is fine because the whole call's
	// result is discarded by the caller (see Options.Ctx).
	ctx context.Context

	w    *sched.Worker // scheduler worker driving this trial
	call *callState    // per-call shared worker samplers

	top *sampler // lazily created top-level sampling session
}

// reset prepares a pooled run for a new trial, keeping every grown
// buffer (memo rows, prefix arrays, arena chunks) at capacity.
func (r *run) reset() {
	r.trees.Reset()
	r.unions.Reset()
	r.forests.Reset()
	clear(r.entryPfx)
	clear(r.branchPfx)
	clear(r.splitPfx)
	r.pfx.reset()
	r.unionSamples, r.memoHits, r.siteSeq = 0, 0, 0
	r.ctx = nil
	r.w, r.call, r.top = nil, nil, nil
}

// treeEst returns the (memoized) estimate of |T(q, n)|.
func (r *run) treeEst(q, n int) efloat.E {
	if n <= 0 {
		return efloat.Zero
	}
	if v, ok := r.trees.Get(q, n); ok {
		r.memoHits++
		return v
	}
	// Guard against reentrancy: with n ≥ 1 the recursion strictly
	// decreases sizes (forests of n−1 < n), so plain memoization
	// suffices; pre-store zero to be safe against pathological input.
	r.trees.Put(q, n, efloat.Zero)
	total := efloat.Zero
	for i := range r.pl.states[q] {
		total = total.Add(r.symbolUnion(q, i, n))
	}
	r.trees.Put(q, n, total)
	return total
}

// treeLookup is the read-only view of treeEst for samplers.
func (r *run) treeLookup(q, n int) efloat.E {
	if n <= 0 {
		return efloat.Zero
	}
	v, _ := r.trees.Get(q, n)
	return v
}

// symbolUnion estimates (and memoizes) the number of trees of size n,
// root label states[q][ei].sym, accepted from q: the union over the
// entry's transitions of the sym-rooted trees with child forest in
// F(c, n−1). Memoization matters: the samplers consult these estimates
// at every recursion level, and re-estimating a union re-runs its
// sampling loop.
func (r *run) symbolUnion(q, ei, n int) efloat.E {
	en := &r.pl.states[q][ei]
	tuples := en.tuples
	if len(tuples) == 1 {
		return r.forestEst(tuples[0], n-1)
	}
	if v, ok := r.unions.Get(en.slot, n); ok {
		r.memoHits++
		return v
	}
	r.unions.Put(en.slot, n, efloat.Zero)
	total := efloat.Zero
	for j, tid := range tuples {
		cj := r.forestEst(tid, n-1)
		if cj.IsZero() {
			continue
		}
		if j == 0 {
			total = total.Add(cj)
			continue
		}
		fresh := r.countFresh(tuples, j, n)
		total = total.Add(cj.MulFloat(float64(fresh) / float64(r.samples)))
	}
	r.unions.Put(en.slot, n, total)
	return total
}

// unionLookup is the read-only view of symbolUnion for samplers.
func (r *run) unionLookup(en *symTrans, n int) efloat.E {
	if len(en.tuples) == 1 {
		return r.forestLookup(en.tuples[0], n-1)
	}
	v, _ := r.unions.Get(en.slot, n)
	return v
}

// countFresh runs the overlap-sampling loop for union branch j at size
// n: r.samples forest draws, counting those not covered by an earlier
// branch. The draws are independent given the (already computed) memo
// tables, so they fan out as chunks on the call's scheduler, executed
// by whichever workers are idle; per-sample sub-RNGs keep the count
// identical for every worker count and partition.
func (r *run) countFresh(tuples []int, j, n int) int {
	site := r.siteSeq
	r.siteSeq++
	if r.ctx != nil && r.ctx.Err() != nil {
		return 0 // cancelled: skip the dispatch, the call is discarded
	}
	r.unionSamples += r.samples
	call := r.call
	return r.w.Sum(r.samples, func(w *sched.Worker, lo, hi int) int {
		s := call.sampler(w.ID())
		s.bind(r)
		return s.countFresh(tuples, j, n, site, lo, hi)
	})
}

// forestEst returns the (memoized) estimate of |F(tuple, m)|, combining
// first-tree-size splits exactly (disjoint union of products).
func (r *run) forestEst(tid, m int) efloat.E {
	tuple := r.pl.tuples[tid]
	switch len(tuple) {
	case 0:
		if m == 0 {
			return efloat.One
		}
		return efloat.Zero
	case 1:
		return r.treeEst(tuple[0], m)
	}
	if v, ok := r.forests.Get(tid, m); ok {
		r.memoHits++
		return v
	}
	rest := r.pl.restID[tid]
	total := efloat.Zero
	for j := 1; j <= m-(len(tuple)-1); j++ {
		head := r.treeEst(tuple[0], j)
		if head.IsZero() {
			continue
		}
		total = total.Add(head.Mul(r.forestEst(rest, m-j)))
	}
	r.forests.Put(tid, m, total)
	return total
}

// forestLookup is the read-only view of forestEst for samplers.
func (r *run) forestLookup(tid, m int) efloat.E {
	tuple := r.pl.tuples[tid]
	switch len(tuple) {
	case 0:
		if m == 0 {
			return efloat.One
		}
		return efloat.Zero
	case 1:
		return r.treeLookup(tuple[0], m)
	}
	v, _ := r.forests.Get(tid, m)
	return v
}
