package count

import (
	"sync/atomic"

	"pqe/internal/efloat"
)

// The samplers spend nearly all their time rebuilding the same weight
// vectors: every draw at a given (state, size), (union slot, size) or
// (tuple, size) recomputes the identical memo-table lookups and running
// sums that the previous draw at that cell already computed. The run
// therefore caches, per cell, the *prefix sums* of the weight vector:
// pick becomes one binary search over a frozen row instead of a linear
// rebuild, and the cached row is shared by every sampler of the trial.
//
// Bit-identity with the linear scan it replaces follows from two
// properties of efloat: Add returns its other operand exactly when one
// side is Zero (so the prefix sum at index i equals the scan's running
// accumulator after weight i — zero weights change nothing), and
// addition of non-negative values is monotone (so the prefix row is
// non-decreasing and the minimal index with target < cum[i] is exactly
// the index the scan stops at). The sampler draws the same single
// uniform variate either way, so downstream draws are unaffected.

// prefixRow is one frozen weight row: cum[i] is the sum of weights
// 0..i, and last is the largest index with a nonzero weight (-1 when
// all weights are zero), the scan's fallback when rounding pushes the
// target past the end.
type prefixRow struct {
	cum  []efloat.E
	last int
}

// pfxArena bump-allocates prefix rows in reusable chunks, so a pooled
// run's next trial rebuilds its rows without heap allocation.
type pfxArena struct {
	rows  []prefixRow
	rused int
	vals  []efloat.E
	vused int
}

func (ar *pfxArena) reset() { ar.rused, ar.vused = 0, 0 }

func (ar *pfxArena) row(k int) *prefixRow {
	if ar.rused == len(ar.rows) {
		ar.rows = make([]prefixRow, max(64, 2*len(ar.rows)))
		ar.rused = 0
	}
	p := &ar.rows[ar.rused]
	ar.rused++
	if ar.vused+k > len(ar.vals) {
		ar.vals = make([]efloat.E, max(1024, 2*len(ar.vals)+k))
		ar.vused = 0
	}
	p.cum = ar.vals[ar.vused : ar.vused+k : ar.vused+k]
	ar.vused += k
	p.last = -1
	return p
}

// ensurePfx sizes the flat row-pointer arrays for sizes 0..n, carrying
// cached rows over on growth (a Counter sweeping upward keeps its
// cache). Called sequentially before estimation; the arrays themselves
// are then read (and lazily filled) concurrently by samplers.
func (r *run) ensurePfx(n int) {
	if n <= r.maxN {
		return
	}
	r.entryPfx = regrowPfx(r.entryPfx, len(r.pl.states), r.maxN, n)
	r.branchPfx = regrowPfx(r.branchPfx, r.pl.slots, r.maxN, n)
	r.splitPfx = regrowPfx(r.splitPfx, len(r.pl.tuples), r.maxN, n)
	r.maxN = n
}

func regrowPfx(old []atomic.Pointer[prefixRow], rows, oldN, n int) []atomic.Pointer[prefixRow] {
	grown := make([]atomic.Pointer[prefixRow], rows*(n+1))
	for rr := 0; rr < rows && oldN >= 0; rr++ {
		for c := 0; c <= oldN; c++ {
			if p := old[rr*(oldN+1)+c].Load(); p != nil {
				grown[rr*(n+1)+c].Store(p)
			}
		}
	}
	return grown
}

// entryRow returns (building on first use) the prefix row over state
// q's symbol entries at size n: weight i is unionLookup(entries[i], n).
// Rows are built under the run mutex with double-checked publication;
// the atomic store/load pair orders the row contents for lock-free
// readers.
func (r *run) entryRow(q, n int) *prefixRow {
	slot := &r.entryPfx[q*(r.maxN+1)+n]
	if p := slot.Load(); p != nil {
		return p
	}
	r.pfxMu.Lock()
	defer r.pfxMu.Unlock()
	if p := slot.Load(); p != nil {
		return p
	}
	entries := r.pl.states[q]
	p := r.pfx.row(len(entries))
	acc := efloat.Zero
	for i := range entries {
		w := r.unionLookup(&entries[i], n)
		if !w.IsZero() {
			p.last = i
		}
		acc = acc.Add(w)
		p.cum[i] = acc
	}
	slot.Store(p)
	return p
}

// branchRow returns the prefix row over a multi-branch entry's
// transition tuples at size n: weight j is forestLookup(tuples[j], n−1).
func (r *run) branchRow(en *symTrans, n int) *prefixRow {
	slot := &r.branchPfx[en.slot*(r.maxN+1)+n]
	if p := slot.Load(); p != nil {
		return p
	}
	r.pfxMu.Lock()
	defer r.pfxMu.Unlock()
	if p := slot.Load(); p != nil {
		return p
	}
	p := r.pfx.row(len(en.tuples))
	acc := efloat.Zero
	for j, tid := range en.tuples {
		w := r.forestLookup(tid, n-1)
		if !w.IsZero() {
			p.last = j
		}
		acc = acc.Add(w)
		p.cum[j] = acc
	}
	slot.Store(p)
	return p
}

// splitRow returns the prefix row over first-tree sizes for forest
// tuple tid at total size m: weight j−1 (j = 1..maxHead) is
// treeLookup(tuple[0], j) · forestLookup(rest, m−j). maxHead is a
// function of (tid, m), so the cell key determines the row length.
func (r *run) splitRow(tid, m, maxHead int) *prefixRow {
	slot := &r.splitPfx[tid*(r.maxN+1)+m]
	if p := slot.Load(); p != nil {
		return p
	}
	r.pfxMu.Lock()
	defer r.pfxMu.Unlock()
	if p := slot.Load(); p != nil {
		return p
	}
	tuple := r.pl.tuples[tid]
	rest := r.pl.restID[tid]
	p := r.pfx.row(maxHead)
	acc := efloat.Zero
	for j := 1; j <= maxHead; j++ {
		w := r.treeLookup(tuple[0], j).Mul(r.forestLookup(rest, m-j))
		if !w.IsZero() {
			p.last = j - 1
		}
		acc = acc.Add(w)
		p.cum[j-1] = acc
	}
	slot.Store(p)
	return p
}
