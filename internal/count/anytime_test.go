package count

import (
	"testing"

	"pqe/internal/nfta"
	"pqe/internal/obs"
)

// Anytime runs must return bit-identical estimates at every worker
// count: batch boundaries are a pure function of (ε, δ, Trials) and the
// per-trial estimates, never of scheduling.
func TestTreesAnytimeDeterministicAcrossWorkers(t *testing.T) {
	for name, a := range map[string]*nfta.NFTA{
		"ambiguous":    ambiguous(),
		"heavyOverlap": heavyOverlap(),
		"fullBinary":   fullBinary(),
	} {
		n := 9
		base := Trees(a, n, Options{Epsilon: 0.1, Trials: 9, Seed: 42, Anytime: true})
		for _, procs := range []int{1, 4, 8} {
			got := Trees(a, n, Options{Epsilon: 0.1, Trials: 9, Seed: 42, Anytime: true, MaxProcs: procs})
			if base.Cmp(got) != 0 {
				t.Errorf("%s: MaxProcs=%d anytime gave %v, sequential %v", name, procs, got, base)
			}
		}
	}
}

// An anytime call never runs more trials than the fixed schedule
// (Trials is a hard cap), and an early stop is visible in the
// trials-saved counters.
func TestTreesAnytimeTrialBudget(t *testing.T) {
	a := chains() // deterministic language: every trial is exact, so trials agree immediately
	reg := obs.NewRegistry()
	sc := obs.NewScope(nil, reg, nil)
	Trees(a, 8, Options{Epsilon: 0.1, Trials: 15, Seed: 1, Anytime: true, Obs: sc})
	executed := reg.Counter("countnfta_trials_total").Value()
	saved := reg.Counter("countnfta_trials_saved_total").Value()
	if executed+saved != 15 {
		t.Fatalf("executed %d + saved %d != cap 15", executed, saved)
	}
	if executed > 15 {
		t.Fatalf("anytime ran %d trials, cap 15", executed)
	}
	// A deterministic language agrees after the floor: δ=0.1 → 3 trials.
	if executed != 3 {
		t.Errorf("deterministic language executed %d trials, want floor 3", executed)
	}
	if saved != 12 {
		t.Errorf("trials saved %d, want 12", saved)
	}
	if v := reg.Counter("countnfta_anytime_stops_total").Value(); v != 1 {
		t.Errorf("anytime stops %d, want 1", v)
	}
}

// When the certificate never fires, anytime matches the fixed schedule
// exactly — same trials, same seeds, same median.
func TestTreesAnytimeCapMatchesFixed(t *testing.T) {
	a := heavyOverlap()
	n := 9
	fixed := Trees(a, n, Options{Epsilon: 0.1, Trials: 5, Seed: 42})
	// MinTrials = Trials forces the full schedule even if trials agree.
	any := Trees(a, n, Options{Epsilon: 0.1, Trials: 5, Seed: 42, Anytime: true, MinTrials: 5})
	if fixed.Cmp(any) != 0 {
		t.Errorf("anytime-at-cap %v differs from fixed %v", any, fixed)
	}
}

// The anytime median is the upper median over executed trials, each of
// which is bit-identical to the corresponding fixed-schedule trial — so
// the estimate stays within the engine's accuracy envelope.
func TestTreesAnytimeWithinEnvelope(t *testing.T) {
	a := fullBinary()
	// Catalan(4) = 14 trees of size 9 (4 internal f-nodes).
	got := Trees(a, 9, Options{Epsilon: 0.1, Trials: 9, Seed: 7, Anytime: true}).Float()
	if got < 14*0.7 || got > 14/0.7 {
		t.Errorf("anytime estimate %v far from exact 14", got)
	}
}
