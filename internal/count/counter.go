package count

import (
	"sort"

	"pqe/internal/efloat"
	"pqe/internal/nfta"
)

// Counter is a reusable counting session over one automaton: repeated
// Count calls share the per-trial memo tables, so sweeping |L_n(T)|
// over many sizes costs little more than the largest size alone (the
// tables are indexed by (state, size) and smaller sizes are subproblems
// of larger ones).
type Counter struct {
	a      *nfta.NFTA
	trials []*estimator
}

// NewCounter prepares a counting session with opts.Trials independent
// trial estimators.
func NewCounter(a *nfta.NFTA, opts Options) *Counter {
	if a.HasLambda() {
		panic("count: automaton has λ-transitions; run EliminateLambda first")
	}
	opts = opts.withDefaults()
	c := &Counter{a: a}
	for t := 0; t < opts.Trials; t++ {
		c.trials = append(c.trials, newEstimatorSeeded(a, opts, opts.Rng.Int63()))
	}
	return c
}

// Count approximates |L_n(T)| (median across the session's trials).
func (c *Counter) Count(n int) efloat.E {
	results := make([]efloat.E, len(c.trials))
	for t, e := range c.trials {
		results[t] = e.treeEst(c.a.Initial(), n)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Less(results[j]) })
	return results[len(results)/2]
}

// Sample draws a near-uniform tree of size n using the first trial's
// tables, or nil if the language at that size is (estimated) empty.
func (c *Counter) Sample(n int) *nfta.Tree {
	e := c.trials[0]
	if e.treeEst(c.a.Initial(), n).IsZero() {
		return nil
	}
	return e.sampleTreeTop(c.a.Initial(), n)
}
