package count

import (
	"sort"

	"pqe/internal/efloat"
	"pqe/internal/nfta"
	"pqe/internal/sched"
)

// Counter is a reusable counting session over one automaton: repeated
// Count calls share the per-trial memo tables, so sweeping |L_n(T)|
// over many sizes costs little more than the largest size alone (the
// tables are indexed by (state, size) and smaller sizes are subproblems
// of larger ones). The session shares the automaton's cached plan with
// every other session and one-shot call, and keeps its runs and worker
// samplers for its whole lifetime (they are never returned to the
// plan's pool — the sweep cache is the point).
type Counter struct {
	a      *nfta.NFTA
	pl     *plan
	procs  int
	call   *callState
	trials []*run
}

// NewCounter prepares a counting session with opts.Trials independent
// trial runs.
func NewCounter(a *nfta.NFTA, opts Options) *Counter {
	if a.HasLambda() {
		panic("count: automaton has λ-transitions; run EliminateLambda first")
	}
	opts = opts.withDefaults()
	pl, _ := planFor(a)
	c := &Counter{a: a, pl: pl, procs: opts.procs, call: newCallState(pl, opts.procs)}
	for t := 0; t < opts.Trials; t++ {
		c.trials = append(c.trials, pl.getRun(opts, opts.Rng.Int63()))
	}
	return c
}

// Count approximates |L_n(T)| (median across the session's trials).
func (c *Counter) Count(n int) efloat.E {
	results := make([]efloat.E, len(c.trials))
	sched.Run(sched.Config{Procs: c.procs, Trials: len(c.trials), Labels: schedLabels}, func(w *sched.Worker, t int) {
		r := c.trials[t]
		r.w, r.call = w, c.call
		r.ensurePfx(n)
		results[t] = r.treeEst(c.a.Initial(), n)
	})
	sort.Slice(results, func(i, j int) bool { return results[i].Less(results[j]) })
	return results[len(results)/2]
}

// Sample draws a near-uniform tree of size n using the first trial's
// tables, or nil if the language at that size is (estimated) empty.
// Successive samples advance the trial's persistent sampling stream.
func (c *Counter) Sample(n int) *nfta.Tree {
	r := c.trials[0]
	var tree *nfta.Tree
	sched.Run(sched.Config{Procs: c.procs, Trials: 1, Labels: schedLabels}, func(w *sched.Worker, _ int) {
		r.w, r.call = w, c.call
		r.ensurePfx(n)
		if r.treeEst(c.a.Initial(), n).IsZero() {
			return
		}
		tree = r.topSampler().sampleTree(c.a.Initial(), n)
	})
	return tree
}
