package count

import (
	"pqe/internal/bitset"
	"pqe/internal/efloat"
	"pqe/internal/nfta"
	"pqe/internal/splitmix"
)

// sampler is a sampling session over a frozen run: it draws trees and
// forests reading the memo tables and the plan's transition structure
// but never writing them, so any number of samplers may run
// concurrently over one run. All scratch state (bitset pool, forest
// buffer, rejection counter) lives here; the scheduler binds one
// sampler per worker, rebinding it to the chunk's run at every chunk
// boundary (bind), so a sampler serves many trials within a call.
//
// The invariant the read-only lookups rely on: a sampler is only ever
// asked for (state, size) pairs whose estimates were computed — the
// estimation pass at a given size computes exactly the sub-estimates
// its sampling consults (all strictly smaller sizes), and the
// top-level APIs run treeEst before sampling.
type sampler struct {
	r          *run
	rng        splitmix.Stream
	pool       *bitset.Pool
	sets       []bitset.Set // scratch for firstAccepting
	forestBuf  []*nfta.Tree // transient forest for overlap testing
	arena      *treeArena   // nil when sampled trees escape to callers
	rejections int
	// acceptChecks counts acceptance-bitset computations (one per forest
	// tree membership-tested), summed per call like rejections.
	acceptChecks int
}

func newSampler(pl *plan) *sampler {
	return &sampler{
		pool: bitset.NewPool(pl.a.NumStates()),
	}
}

// bind points the sampler at a run. Samplers are plan-scoped (the
// bitset pool is sized to the automaton), so binding only swaps the
// memo tables it reads.
func (s *sampler) bind(r *run) { s.r = r }

// treeArena bump-allocates tree nodes and children slices in reusable
// chunks. Overlap sampling builds a forest only to membership-test and
// discard it; with the arena reset between samples, the steady-state
// loop performs no heap allocation for trees at all.
type treeArena struct {
	nodes []nfta.Tree
	nused int
	refs  []*nfta.Tree
	rused int
}

const arenaChunk = 512

func (ar *treeArena) reset() { ar.nused, ar.rused = 0, 0 }

func (ar *treeArena) node(sym int, children []*nfta.Tree) *nfta.Tree {
	if ar.nused == len(ar.nodes) {
		// A fresh, larger chunk; nodes of the current sample in the old
		// chunk stay reachable through their parents.
		ar.nodes = make([]nfta.Tree, max(arenaChunk, 2*len(ar.nodes)))
		ar.nused = 0
	}
	t := &ar.nodes[ar.nused]
	ar.nused++
	t.Sym, t.Children = sym, children
	return t
}

func (ar *treeArena) slice(n int) []*nfta.Tree {
	if n == 0 {
		return nil
	}
	if ar.rused+n > len(ar.refs) {
		ar.refs = make([]*nfta.Tree, max(arenaChunk, 2*len(ar.refs)+n))
		ar.rused = 0
	}
	s := ar.refs[ar.rused : ar.rused+n : ar.rused+n]
	ar.rused += n
	return s
}

// newTree and newForest allocate through the arena when the sampler has
// one (transient draws), or on the heap (escaping draws).
func (s *sampler) newTree(sym int, children []*nfta.Tree) *nfta.Tree {
	if s.arena != nil {
		return s.arena.node(sym, children)
	}
	return &nfta.Tree{Sym: sym, Children: children}
}

func (s *sampler) newForest(n int) []*nfta.Tree {
	if s.arena != nil {
		return s.arena.slice(n)
	}
	return make([]*nfta.Tree, n)
}

// pick returns an index with probability proportional to the weights,
// or -1 if all are zero. It is the reference implementation that
// pickRow's cached binary search must match draw-for-draw (pinned by
// TestPickRowMatchesPick); the hot paths all go through pickRow.
func (s *sampler) pick(weights []efloat.E) int {
	total := efloat.Sum(weights...)
	if total.IsZero() {
		return -1
	}
	target := total.MulFloat(s.rng.Float64())
	acc := efloat.Zero
	last := -1
	for i, w := range weights {
		if w.IsZero() {
			continue
		}
		last = i
		acc = acc.Add(w)
		if target.Less(acc) {
			return i
		}
	}
	return last
}

// pickRow is pick over a cached prefix row: one uniform variate, one
// binary search for the leftmost index whose prefix sum exceeds the
// target. Zero weights leave the prefix sum unchanged (efloat.Add
// returns the other operand exactly when one side is Zero), so the
// leftmost crossing index always carries nonzero weight and equals the
// index the reference scan stops at; the row's last field reproduces
// the scan's fallback when rounding pushes the target to the total.
func (s *sampler) pickRow(p *prefixRow) int {
	cum := p.cum
	n := len(cum)
	if n == 0 {
		return -1
	}
	total := cum[n-1]
	if total.IsZero() {
		return -1
	}
	target := total.MulFloat(s.rng.Float64())
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if target.Less(cum[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo < n {
		return lo
	}
	return p.last
}

// countFresh draws the overlap samples lo ≤ i < hi for union branch j
// at size n and counts those landing outside all earlier branches. Each
// sample runs on its own PRNG derived from (trial seed, site, i), so
// the count is independent of how samples are partitioned across
// workers and chunks.
func (s *sampler) countFresh(tuples []int, j, n int, site uint64, lo, hi int) int {
	if s.arena == nil {
		s.arena = &treeArena{}
	}
	fresh := 0
	for i := lo; i < hi; i++ {
		s.rng = splitmix.Derive(s.r.seed, site, i)
		s.arena.reset()
		f, ok := s.sampleForestScratch(tuples[j], n-1)
		if !ok {
			continue
		}
		if s.firstAccepting(tuples[:j], f) < 0 {
			fresh++
		}
	}
	return fresh
}

// sampleTree draws a near-uniform tree from T(q, n), or nil if empty.
func (s *sampler) sampleTree(q, n int) *nfta.Tree {
	r := s.r
	if r.treeLookup(q, n).IsZero() {
		return nil
	}
	entries := r.pl.states[q]
	i := s.pickRow(r.entryRow(q, n))
	if i < 0 {
		return nil
	}
	en := &entries[i]
	if len(en.tuples) == 1 {
		f, ok := s.sampleForestAlloc(en.tuples[0], n-1)
		if !ok {
			return nil
		}
		return s.newTree(en.sym, f)
	}
	brow := r.branchRow(en, n)
	maxRetry := r.maxRetry
	if maxRetry <= 0 {
		maxRetry = 32 * len(en.tuples)
	}
	// Canonical-first rejection: a draw from branch j is kept only if no
	// earlier branch accepts it, which makes the draw uniform over the
	// union.
	var last *nfta.Tree
	for retry := 0; retry < maxRetry; retry++ {
		j := s.pickRow(brow)
		if j < 0 {
			break
		}
		f, ok := s.sampleForestAlloc(en.tuples[j], n-1)
		if !ok {
			continue
		}
		last = s.newTree(en.sym, f)
		if j == 0 || s.firstAccepting(en.tuples[:j], f) < 0 {
			return last
		}
		s.rejections++
	}
	// Retry budget exhausted: return the latest draw (slightly biased
	// towards multiply-covered trees; the budget makes this path rare).
	return last
}

// sampleForestAlloc draws a near-uniform forest from F(tuple, m) into a
// fresh slice (retained as tree children).
func (s *sampler) sampleForestAlloc(tid, m int) ([]*nfta.Tree, bool) {
	out := s.newForest(len(s.r.pl.tuples[tid]))
	if !s.sampleForestInto(tid, m, out) {
		return nil, false
	}
	return out, true
}

// sampleForestScratch is sampleForestAlloc into a reused buffer, for
// forests that are only membership-tested and then discarded.
func (s *sampler) sampleForestScratch(tid, m int) ([]*nfta.Tree, bool) {
	k := len(s.r.pl.tuples[tid])
	if cap(s.forestBuf) < k {
		s.forestBuf = make([]*nfta.Tree, k)
	}
	buf := s.forestBuf[:k]
	if !s.sampleForestInto(tid, m, buf) {
		return nil, false
	}
	return buf, true
}

// sampleForestInto fills out (of length len(tuple)) with a near-uniform
// forest from F(tuple, m), reporting false if empty. Splits are
// disjoint, so no rejection is needed. The suffix chain is walked
// iteratively using the precomputed rest-tuple IDs — no per-level slice
// copying.
func (s *sampler) sampleForestInto(tid, m int, out []*nfta.Tree) bool {
	r := s.r
	for i := 0; ; i++ {
		tuple := r.pl.tuples[tid]
		switch len(tuple) {
		case 0:
			return m == 0
		case 1:
			t := s.sampleTree(tuple[0], m)
			if t == nil {
				return false
			}
			out[i] = t
			return true
		}
		maxHead := m - (len(tuple) - 1)
		if maxHead < 1 {
			return false
		}
		k := s.pickRow(r.splitRow(tid, m, maxHead))
		if k < 0 {
			return false
		}
		j := k + 1
		head := s.sampleTree(tuple[0], j)
		if head == nil {
			return false
		}
		out[i] = head
		tid, m = r.pl.restID[tid], m-j
	}
}

// firstAccepting returns the index of the first tuple accepting the
// forest, or -1. Acceptance bitsets per forest tree are computed once
// into pooled scratch; the membership test per tuple is then a few
// word probes.
func (s *sampler) firstAccepting(tuples []int, forest []*nfta.Tree) int {
	r := s.r
	sets := s.sets[:0]
	s.acceptChecks += len(forest)
	for _, t := range forest {
		b := s.pool.Get()
		r.pl.a.AcceptingStatesInto(t, b, s.pool)
		sets = append(sets, b)
	}
	res := -1
	for j, tid := range tuples {
		tuple := r.pl.tuples[tid]
		if len(tuple) != len(forest) {
			continue
		}
		ok := true
		for i, q := range tuple {
			if !sets[i].Has(q) {
				ok = false
				break
			}
		}
		if ok {
			res = j
			break
		}
	}
	for _, b := range sets {
		s.pool.Put(b)
	}
	s.sets = sets[:0]
	return res
}
