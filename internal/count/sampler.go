package count

import (
	"pqe/internal/bitset"
	"pqe/internal/efloat"
	"pqe/internal/nfta"
	"pqe/internal/splitmix"
)

// sampler is a sampling session over a frozen estimator: it draws
// trees and forests reading the memo tables and transition structure
// but never writing them, so any number of samplers may run
// concurrently over one estimator. All scratch state (bitset pool,
// weight buffers, rejection counter) lives here, one sampler per
// goroutine.
//
// The invariant the read-only lookups rely on: a sampler is only ever
// asked for (state, size) pairs whose estimates were computed — the
// estimation pass at a given size computes exactly the sub-estimates
// its sampling consults (all strictly smaller sizes), and the
// top-level APIs run treeEst before sampling.
type sampler struct {
	e          *estimator
	rng        splitmix.Stream
	pool       *bitset.Pool
	sets       []bitset.Set // scratch for firstAccepting
	wfree      [][]efloat.E // free list of weight buffers
	forestBuf  []*nfta.Tree // transient forest for overlap testing
	arena      *treeArena   // nil when sampled trees escape to callers
	rejections int
	// acceptChecks counts acceptance-bitset computations (one per forest
	// tree membership-tested), flushed to the estimator like rejections.
	acceptChecks int
}

func (e *estimator) newSampler(state uint64) *sampler {
	return &sampler{
		e:    e,
		rng:  splitmix.New(state),
		pool: bitset.NewPool(e.a.NumStates()),
	}
}

// treeArena bump-allocates tree nodes and children slices in reusable
// chunks. Overlap sampling builds a forest only to membership-test and
// discard it; with the arena reset between samples, the steady-state
// loop performs no heap allocation for trees at all.
type treeArena struct {
	nodes []nfta.Tree
	nused int
	refs  []*nfta.Tree
	rused int
}

const arenaChunk = 512

func (ar *treeArena) reset() { ar.nused, ar.rused = 0, 0 }

func (ar *treeArena) node(sym int, children []*nfta.Tree) *nfta.Tree {
	if ar.nused == len(ar.nodes) {
		// A fresh, larger chunk; nodes of the current sample in the old
		// chunk stay reachable through their parents.
		ar.nodes = make([]nfta.Tree, max(arenaChunk, 2*len(ar.nodes)))
		ar.nused = 0
	}
	t := &ar.nodes[ar.nused]
	ar.nused++
	t.Sym, t.Children = sym, children
	return t
}

func (ar *treeArena) slice(n int) []*nfta.Tree {
	if n == 0 {
		return nil
	}
	if ar.rused+n > len(ar.refs) {
		ar.refs = make([]*nfta.Tree, max(arenaChunk, 2*len(ar.refs)+n))
		ar.rused = 0
	}
	s := ar.refs[ar.rused : ar.rused+n : ar.rused+n]
	ar.rused += n
	return s
}

// newTree and newForest allocate through the arena when the sampler has
// one (transient draws), or on the heap (escaping draws).
func (s *sampler) newTree(sym int, children []*nfta.Tree) *nfta.Tree {
	if s.arena != nil {
		return s.arena.node(sym, children)
	}
	return &nfta.Tree{Sym: sym, Children: children}
}

func (s *sampler) newForest(n int) []*nfta.Tree {
	if s.arena != nil {
		return s.arena.slice(n)
	}
	return make([]*nfta.Tree, n)
}

// getW borrows a weight buffer of length n from the free list; putW
// returns it. A free list rather than a single scratch slice because
// the canonical-rejection retry loop holds its weights across nested
// sampling calls.
func (s *sampler) getW(n int) []efloat.E {
	if k := len(s.wfree); k > 0 {
		w := s.wfree[k-1]
		s.wfree = s.wfree[:k-1]
		if cap(w) >= n {
			return w[:n]
		}
	}
	return make([]efloat.E, n)
}

func (s *sampler) putW(w []efloat.E) {
	s.wfree = append(s.wfree, w)
}

// pick returns an index with probability proportional to the weights,
// or -1 if all are zero.
func (s *sampler) pick(weights []efloat.E) int {
	total := efloat.Sum(weights...)
	if total.IsZero() {
		return -1
	}
	target := total.MulFloat(s.rng.Float64())
	acc := efloat.Zero
	last := -1
	for i, w := range weights {
		if w.IsZero() {
			continue
		}
		last = i
		acc = acc.Add(w)
		if target.Less(acc) {
			return i
		}
	}
	return last
}

// countFresh draws the overlap samples start, start+stride, … < samples
// for union branch j at size n and counts those landing outside all
// earlier branches. Each sample runs on its own derived PRNG, so the
// count is independent of how samples are partitioned across workers.
func (s *sampler) countFresh(tuples []int, j, n int, site uint64, start, samples, stride int) int {
	if s.arena == nil {
		s.arena = &treeArena{}
	}
	fresh := 0
	for i := start; i < samples; i += stride {
		s.rng = splitmix.Derive(s.e.seed, site, i)
		s.arena.reset()
		f, ok := s.sampleForestScratch(tuples[j], n-1)
		if !ok {
			continue
		}
		if s.firstAccepting(tuples[:j], f) < 0 {
			fresh++
		}
	}
	return fresh
}

// sampleTree draws a near-uniform tree from T(q, n), or nil if empty.
func (s *sampler) sampleTree(q, n int) *nfta.Tree {
	e := s.e
	if e.treeLookup(q, n).IsZero() {
		return nil
	}
	entries := e.states[q]
	w := s.getW(len(entries))
	for i := range entries {
		w[i] = e.unionLookup(&entries[i], n)
	}
	i := s.pick(w)
	s.putW(w)
	if i < 0 {
		return nil
	}
	en := &entries[i]
	if len(en.tuples) == 1 {
		f, ok := s.sampleForestAlloc(en.tuples[0], n-1)
		if !ok {
			return nil
		}
		return s.newTree(en.sym, f)
	}
	tw := s.getW(len(en.tuples))
	for j, tid := range en.tuples {
		tw[j] = e.forestLookup(tid, n-1)
	}
	maxRetry := e.maxRetry
	if maxRetry <= 0 {
		maxRetry = 32 * len(en.tuples)
	}
	// Canonical-first rejection: a draw from branch j is kept only if no
	// earlier branch accepts it, which makes the draw uniform over the
	// union.
	var last *nfta.Tree
	for r := 0; r < maxRetry; r++ {
		j := s.pick(tw)
		if j < 0 {
			break
		}
		f, ok := s.sampleForestAlloc(en.tuples[j], n-1)
		if !ok {
			continue
		}
		last = s.newTree(en.sym, f)
		if j == 0 || s.firstAccepting(en.tuples[:j], f) < 0 {
			s.putW(tw)
			return last
		}
		s.rejections++
	}
	s.putW(tw)
	// Retry budget exhausted: return the latest draw (slightly biased
	// towards multiply-covered trees; the budget makes this path rare).
	return last
}

// sampleForestAlloc draws a near-uniform forest from F(tuple, m) into a
// fresh slice (retained as tree children).
func (s *sampler) sampleForestAlloc(tid, m int) ([]*nfta.Tree, bool) {
	out := s.newForest(len(s.e.tuples[tid]))
	if !s.sampleForestInto(tid, m, out) {
		return nil, false
	}
	return out, true
}

// sampleForestScratch is sampleForestAlloc into a reused buffer, for
// forests that are only membership-tested and then discarded.
func (s *sampler) sampleForestScratch(tid, m int) ([]*nfta.Tree, bool) {
	k := len(s.e.tuples[tid])
	if cap(s.forestBuf) < k {
		s.forestBuf = make([]*nfta.Tree, k)
	}
	buf := s.forestBuf[:k]
	if !s.sampleForestInto(tid, m, buf) {
		return nil, false
	}
	return buf, true
}

// sampleForestInto fills out (of length len(tuple)) with a near-uniform
// forest from F(tuple, m), reporting false if empty. Splits are
// disjoint, so no rejection is needed. The suffix chain is walked
// iteratively using the precomputed rest-tuple IDs — no per-level slice
// copying.
func (s *sampler) sampleForestInto(tid, m int, out []*nfta.Tree) bool {
	e := s.e
	for i := 0; ; i++ {
		tuple := e.tuples[tid]
		switch len(tuple) {
		case 0:
			return m == 0
		case 1:
			t := s.sampleTree(tuple[0], m)
			if t == nil {
				return false
			}
			out[i] = t
			return true
		}
		maxHead := m - (len(tuple) - 1)
		if maxHead < 1 {
			return false
		}
		rest := e.restID[tid]
		w := s.getW(maxHead)
		for j := 1; j <= maxHead; j++ {
			w[j-1] = e.treeLookup(tuple[0], j).Mul(e.forestLookup(rest, m-j))
		}
		k := s.pick(w)
		s.putW(w)
		if k < 0 {
			return false
		}
		j := k + 1
		head := s.sampleTree(tuple[0], j)
		if head == nil {
			return false
		}
		out[i] = head
		tid, m = rest, m-j
	}
}

// firstAccepting returns the index of the first tuple accepting the
// forest, or -1. Acceptance bitsets per forest tree are computed once
// into pooled scratch; the membership test per tuple is then a few
// word probes.
func (s *sampler) firstAccepting(tuples []int, forest []*nfta.Tree) int {
	e := s.e
	sets := s.sets[:0]
	s.acceptChecks += len(forest)
	for _, t := range forest {
		b := s.pool.Get()
		e.a.AcceptingStatesInto(t, b, s.pool)
		sets = append(sets, b)
	}
	res := -1
	for j, tid := range tuples {
		tuple := e.tuples[tid]
		if len(tuple) != len(forest) {
			continue
		}
		ok := true
		for i, q := range tuple {
			if !sets[i].Has(q) {
				ok = false
				break
			}
		}
		if ok {
			res = j
			break
		}
	}
	for _, b := range sets {
		s.pool.Put(b)
	}
	s.sets = sets[:0]
	return res
}
