package count

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"pqe/internal/nfta"
)

// fullBinary builds the automaton of full binary trees (f/2, x/0).
func fullBinary() *nfta.NFTA {
	a := nfta.New()
	q := a.AddState()
	a.AddTransition(q, "f", q, q)
	a.AddTransition(q, "x")
	a.SetInitial(q)
	return a
}

// chains builds the automaton of unary chains a*b.
func chains() *nfta.NFTA {
	a := nfta.New()
	q := a.AddState()
	a.AddTransition(q, "a", q)
	a.AddTransition(q, "b")
	a.SetInitial(q)
	return a
}

// ambiguous builds an automaton accepting each chain a*b via two
// distinct nondeterministic branches, so run-counting would overcount
// by 2^(length−1) while tree counting must not.
func ambiguous() *nfta.NFTA {
	a := nfta.New()
	q := a.AddState()
	r := a.AddState()
	a.AddTransition(q, "a", q)
	a.AddTransition(q, "a", r)
	a.AddTransition(r, "a", q)
	a.AddTransition(r, "a", r)
	a.AddTransition(q, "b")
	a.AddTransition(r, "b")
	a.SetInitial(q)
	return a
}

func TestTreesExactSingletons(t *testing.T) {
	a := chains()
	// Exactly one chain of each size.
	for n := 1; n <= 12; n++ {
		got := Trees(a, n, Options{Seed: 1})
		if got.Float() != 1 {
			t.Errorf("chains size %d: %v", n, got)
		}
	}
}

func TestTreesCatalan(t *testing.T) {
	a := fullBinary()
	// Full binary trees of size 2k+1: Catalan(k) = 1,1,2,5,14,42.
	want := []int64{1, 1, 2, 5, 14, 42}
	for k, w := range want {
		n := 2*k + 1
		got := Trees(a, n, Options{Epsilon: 0.1, Trials: 7, Seed: 5})
		ratio := got.Float() / float64(w)
		if ratio < 0.8 || ratio > 1.2 {
			t.Errorf("size %d: estimate %v, want ≈ %d", n, got, w)
		}
		// Even sizes are empty.
		if n+1 <= 11 {
			if got := Trees(a, n+1, Options{Seed: 2}); !got.IsZero() {
				t.Errorf("size %d: estimate %v, want 0", n+1, got)
			}
		}
	}
}

func TestTreesAmbiguousNotRuns(t *testing.T) {
	a := ambiguous()
	for n := 2; n <= 9; n++ {
		got := Trees(a, n, Options{Epsilon: 0.1, Trials: 7, Seed: 3})
		// Exactly one distinct tree per size, regardless of the 2^(n-1)
		// accepting runs.
		if got.Float() < 0.8 || got.Float() > 1.2 {
			t.Errorf("size %d: estimate %v, want ≈ 1", n, got)
		}
	}
}

func TestTreesMatchesExactOnRandomAutomata(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		a := randomNFTA(rng)
		n := 1 + rng.Intn(5)
		exact := nfta.ExactCount(a, n)
		got := Trees(a, n, Options{Epsilon: 0.15, Trials: 7, Seed: int64(trial + 1)})
		if exact.Sign() == 0 {
			if !got.IsZero() {
				t.Errorf("trial %d size %d: exact 0, estimate %v\n%s", trial, n, got, a)
			}
			continue
		}
		ratio := got.Float() / float64(exact.Int64())
		if ratio < 0.7 || ratio > 1.3 {
			t.Errorf("trial %d size %d: estimate %v vs exact %v (ratio %.3f)\n%s",
				trial, n, got, exact, ratio, a)
		}
	}
}

// randomNFTA builds a small random automaton with mixed arities and
// plenty of ambiguity.
func randomNFTA(rng *rand.Rand) *nfta.NFTA {
	a := nfta.New()
	numStates := 2 + rng.Intn(3)
	for i := 0; i < numStates; i++ {
		a.AddState()
	}
	syms := []string{"f", "g", "x", "y"}
	numTrans := 2 + rng.Intn(8)
	for i := 0; i < numTrans; i++ {
		arity := rng.Intn(3)
		children := make([]int, arity)
		for j := range children {
			children[j] = rng.Intn(numStates)
		}
		a.AddTransition(rng.Intn(numStates), syms[rng.Intn(len(syms))], children...)
	}
	// Ensure at least one leaf transition so the language can be
	// non-empty.
	a.AddTransition(rng.Intn(numStates), "x")
	a.SetInitial(0)
	return a
}

func TestSampleTreeInLanguage(t *testing.T) {
	a := fullBinary()
	for i := 0; i < 30; i++ {
		tr := SampleTree(a, 7, Options{Seed: int64(i + 1)})
		if tr == nil {
			t.Fatal("nil sample from non-empty language")
		}
		if tr.Size() != 7 {
			t.Fatalf("sample size %d", tr.Size())
		}
		if !a.Accepts(tr) {
			t.Errorf("sampled tree %s rejected", tr)
		}
	}
}

func TestSampleTreeApproxUniform(t *testing.T) {
	a := fullBinary()
	// Size 7 → 5 distinct trees (Catalan 3).
	counts := make(map[string]int)
	draws := 1000
	for i := 0; i < draws; i++ {
		tr := SampleTree(a, 7, Options{Epsilon: 0.1, Samples: 100, Seed: int64(i + 1)})
		if tr == nil {
			t.Fatal("nil sample")
		}
		counts[tr.Key()]++
	}
	if len(counts) != 5 {
		t.Fatalf("support size %d, want 5", len(counts))
	}
	for k, c := range counts {
		frac := float64(c) / float64(draws)
		if frac < 0.08 || frac > 0.35 {
			t.Errorf("tree %s frequency %.3f, want ≈ 0.2", k, frac)
		}
	}
}

func TestSampleTreeEmpty(t *testing.T) {
	a := nfta.New()
	q := a.AddState()
	a.AddTransition(q, "f", q) // no leaves: language empty
	a.SetInitial(q)
	if tr := SampleTree(a, 3, Options{Seed: 1}); tr != nil {
		t.Errorf("sample from empty language: %v", tr)
	}
	if got := Trees(a, 3, Options{Seed: 1}); !got.IsZero() {
		t.Errorf("count of empty language: %v", got)
	}
}

func TestTreesPanicsOnLambda(t *testing.T) {
	a := nfta.New()
	q := a.AddState()
	r := a.AddState()
	a.AddLambda(q, r)
	a.AddTransition(r, "x")
	a.SetInitial(q)
	defer func() {
		if recover() == nil {
			t.Error("no panic on λ-transitions")
		}
	}()
	Trees(a, 1, Options{Seed: 1})
}

func TestTreesLargeSizeNoOverflow(t *testing.T) {
	// Binary trees up to size 41: Catalan(20) ≈ 6.56e9; also exercises
	// deep recursion and efloat arithmetic.
	a := fullBinary()
	got := Trees(a, 41, Options{Epsilon: 0.2, Trials: 3, Seed: 1})
	want := catalan(20)
	ratio := got.Float() / want
	if ratio < 0.6 || ratio > 1.4 {
		t.Errorf("Catalan(20): estimate %v, want ≈ %.3g (ratio %.3f)", got, want, ratio)
	}
}

func catalan(k int) float64 {
	c := new(big.Int).Binomial(int64(2*k), int64(k))
	c.Div(c, big.NewInt(int64(k+1)))
	f, _ := new(big.Float).SetInt(c).Float64()
	return f
}

// Property: the estimator stays within a generous envelope of the exact
// count on random automata.
func TestQuickTreesEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping sampling-heavy property test in -short mode")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomNFTA(rng)
		n := 1 + rng.Intn(5)
		exact := nfta.ExactCount(a, n)
		got := Trees(a, n, Options{Epsilon: 0.2, Trials: 5, Seed: seed + 1})
		if exact.Sign() == 0 {
			return got.IsZero()
		}
		ratio := got.Float() / float64(exact.Int64())
		return ratio > 0.55 && ratio < 1.45
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: samples always lie in the language and have the right size.
func TestQuickSamplesValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomNFTA(rng)
		n := 1 + rng.Intn(5)
		tr := SampleTree(a, n, Options{Seed: seed + 1})
		if tr == nil {
			return nfta.ExactCount(a, n).Sign() == 0
		}
		return tr.Size() == n && a.Accepts(tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTreesParallelMatchesSequential(t *testing.T) {
	a := fullBinary()
	seq := Trees(a, 11, Options{Epsilon: 0.1, Trials: 5, Seed: 42})
	par := Trees(a, 11, Options{Epsilon: 0.1, Trials: 5, Seed: 42, Parallel: true})
	if seq.Cmp(par) != 0 {
		t.Errorf("parallel %v != sequential %v with the same seed", par, seq)
	}
}

func TestTreesHeavyOverlap(t *testing.T) {
	// One symbol, many transitions with *identical* languages: the
	// worst case for the union estimator (every non-first branch is
	// fully redundant) and for the canonical-rejection sampler (retry
	// probability ≈ 1/branches).
	a := nfta.New()
	states := make([]int, 6)
	top := a.AddState()
	for i := range states {
		states[i] = a.AddState()
		a.AddTransition(states[i], "a", states[i])
		a.AddTransition(states[i], "b")
		a.AddTransition(top, "f", states[i]) // 6 redundant branches
	}
	a.SetInitial(top)
	// Language at size n: f-rooted chains a^(n-2) b → exactly 1 tree.
	for n := 3; n <= 8; n++ {
		got := Trees(a, n, Options{Epsilon: 0.1, Trials: 7, Seed: int64(n)})
		if got.Float() < 0.7 || got.Float() > 1.3 {
			t.Errorf("size %d: estimate %v, want ≈ 1", n, got)
		}
		tr := SampleTree(a, n, Options{Seed: int64(n + 1)})
		if tr == nil || !a.Accepts(tr) {
			t.Errorf("size %d: bad sample %v", n, tr)
		}
	}
}

func TestTreesPartialOverlap(t *testing.T) {
	// Branch 1 accepts chains ending in b, branch 2 chains ending in b
	// or c: union = chains ending in b or c (2 per size), with branch 2
	// strictly covering branch 1.
	a := nfta.New()
	top := a.AddState()
	s1 := a.AddState()
	s2 := a.AddState()
	a.AddTransition(s1, "a", s1)
	a.AddTransition(s1, "b")
	a.AddTransition(s2, "a", s2)
	a.AddTransition(s2, "b")
	a.AddTransition(s2, "c")
	a.AddTransition(top, "f", s1)
	a.AddTransition(top, "f", s2)
	a.SetInitial(top)
	for n := 3; n <= 8; n++ {
		want := nfta.ExactCountDet(a, n).Int64() // = 2
		got := Trees(a, n, Options{Epsilon: 0.1, Trials: 7, Seed: int64(n)})
		ratio := got.Float() / float64(want)
		if ratio < 0.75 || ratio > 1.25 {
			t.Errorf("size %d: estimate %v, want %d", n, got, want)
		}
	}
}

func TestTreesMinimalOptions(t *testing.T) {
	// Trials=1 and Samples=1 are legal (if noisy); the estimator must
	// not crash or hang.
	a := fullBinary()
	got := Trees(a, 7, Options{Trials: 1, Samples: 1, Seed: 3})
	if got.IsZero() {
		t.Error("estimate collapsed to zero")
	}
}

func TestStatsCollected(t *testing.T) {
	a := ambiguous() // overlapping branches force union sampling
	var st Stats
	Trees(a, 7, Options{Epsilon: 0.2, Trials: 3, Seed: 5, Stats: &st})
	if st.TreeKeys == 0 {
		t.Error("no tree keys recorded")
	}
	if st.UnionSamples == 0 {
		t.Error("no union samples recorded despite overlapping branches")
	}
}

func TestCounterSweepMatchesPointQueries(t *testing.T) {
	a := fullBinary()
	c := NewCounter(a, Options{Epsilon: 0.1, Trials: 5, Seed: 21})
	for n := 1; n <= 13; n += 2 {
		sweep := c.Count(n)
		point := Trees(a, n, Options{Epsilon: 0.1, Trials: 5, Seed: 77})
		if sweep.IsZero() != point.IsZero() {
			t.Fatalf("size %d: sweep %v vs point %v", n, sweep, point)
		}
		if sweep.IsZero() {
			continue
		}
		if r := sweep.Ratio(point); r < 0.7 || r > 1.4 {
			t.Errorf("size %d: sweep %v vs point %v", n, sweep, point)
		}
	}
	// Samples from the session are valid.
	tr := c.Sample(9)
	if tr == nil || tr.Size() != 9 || !a.Accepts(tr) {
		t.Errorf("bad session sample %v", tr)
	}
}

func TestTreesMatchesDeterminizedOracleLarger(t *testing.T) {
	// Cross-validate against the determinization oracle at sizes the
	// enumeration oracle cannot reach.
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		a := randomNFTA(rng)
		n := 6 + rng.Intn(5)
		exact := nfta.ExactCountDet(a, n)
		got := Trees(a, n, Options{Epsilon: 0.15, Trials: 7, Seed: int64(trial + 1)})
		if exact.Sign() == 0 {
			if !got.IsZero() {
				t.Errorf("trial %d size %d: exact 0, estimate %v", trial, n, got)
			}
			continue
		}
		f, _ := new(big.Float).SetInt(exact).Float64()
		ratio := got.Float() / f
		if ratio < 0.65 || ratio > 1.35 {
			t.Errorf("trial %d size %d: estimate %v vs exact %v (ratio %.3f)\n%s",
				trial, n, got, exact, ratio, a)
		}
	}
}

// heavyOverlap builds the worst-case union automaton of
// TestTreesHeavyOverlap: six fully redundant branches under one symbol,
// so overlap sampling runs constantly.
func heavyOverlap() *nfta.NFTA {
	a := nfta.New()
	top := a.AddState()
	for i := 0; i < 6; i++ {
		s := a.AddState()
		a.AddTransition(s, "a", s)
		a.AddTransition(s, "b")
		a.AddTransition(top, "f", s)
	}
	a.SetInitial(top)
	return a
}

// The doc contract on Options.Parallel and Options.Workers: for a fixed
// seed, every combination of trial-level and intra-trial parallelism
// returns bit-identical results to the sequential run.
func TestTreesDeterministicAcrossWorkers(t *testing.T) {
	for name, a := range map[string]*nfta.NFTA{
		"ambiguous":    ambiguous(),
		"heavyOverlap": heavyOverlap(),
		"fullBinary":   fullBinary(),
	} {
		n := 9
		base := Trees(a, n, Options{Epsilon: 0.1, Trials: 5, Seed: 42})
		for _, workers := range []int{1, 4, 8} {
			got := Trees(a, n, Options{Epsilon: 0.1, Trials: 5, Seed: 42, Parallel: true, Workers: workers})
			if base.Cmp(got) != 0 {
				t.Errorf("%s: Workers=%d Parallel=true gave %v, sequential %v", name, workers, got, base)
			}
			got = Trees(a, n, Options{Epsilon: 0.1, Trials: 5, Seed: 42, Workers: workers})
			if base.Cmp(got) != 0 {
				t.Errorf("%s: Workers=%d Parallel=false gave %v, sequential %v", name, workers, got, base)
			}
		}
	}
}

func TestSampleTreeDeterministicAcrossWorkers(t *testing.T) {
	for name, a := range map[string]*nfta.NFTA{
		"ambiguous":    ambiguous(),
		"heavyOverlap": heavyOverlap(),
	} {
		n := 8
		ref := SampleTree(a, n, Options{Epsilon: 0.1, Seed: 7})
		if ref == nil {
			t.Fatalf("%s: nil reference sample", name)
		}
		for _, workers := range []int{1, 4, 8} {
			got := SampleTree(a, n, Options{Epsilon: 0.1, Seed: 7, Parallel: true, Workers: workers})
			if got == nil || !ref.Equal(got) {
				t.Errorf("%s: Workers=%d sample %v, sequential %v", name, workers, got, ref)
			}
		}
	}
}

func TestCounterDeterministicAcrossWorkers(t *testing.T) {
	a := heavyOverlap()
	base := NewCounter(a, Options{Epsilon: 0.1, Trials: 3, Seed: 11})
	par := NewCounter(a, Options{Epsilon: 0.1, Trials: 3, Seed: 11, Workers: 8})
	for n := 3; n <= 9; n++ {
		if b, p := base.Count(n), par.Count(n); b.Cmp(p) != 0 {
			t.Errorf("size %d: Workers=8 count %v, sequential %v", n, p, b)
		}
	}
	if b, p := base.Sample(9), par.Sample(9); !b.Equal(p) {
		t.Errorf("session samples diverge: %v vs %v", b, p)
	}
}
