// Package arena provides a reusable slab allocator for build scratch.
// The automaton constructions allocate many short tuples (children
// lists, annotation strings, target sets) whose lifetimes all end
// together — when the built automaton is replaced by the next build.
// A Slab hands out sub-slices of large chunks and recycles every chunk
// on Reset, so a steady-state rebuild loop stops paying per-tuple
// allocations (and the GC stops tracing them individually).
package arena

// Slab is a chunked bump allocator for []T scratch. The zero value is
// ready to use. Not safe for concurrent use.
//
// Two sharp edges, both accepted by every caller in this repo:
//
//   - Alloc returns memory that may contain stale values from before
//     the last Reset; callers must fully overwrite it.
//   - Reset recycles every slice handed out since the previous Reset.
//     Callers must not Reset while anything that escaped (e.g. a built
//     automaton sharing children tuples) is still live.
type Slab[T any] struct {
	chunks [][]T
	big    [][]T // oversize allocations, dropped on Reset
	ci     int   // current chunk
	off    int   // offset into chunks[ci]
	total  int   // elements handed out since Reset
}

// slabChunk is the default chunk length (in elements, not bytes).
const slabChunk = 4096

// Alloc returns a slice of length and capacity n. Contents are
// unspecified; the caller must overwrite every element. The capacity is
// clipped to n so an accidental append cannot bleed into a neighbor.
func (s *Slab[T]) Alloc(n int) []T {
	if n <= 0 {
		return nil
	}
	s.total += n
	if n > slabChunk {
		buf := make([]T, n)
		s.big = append(s.big, buf)
		return buf
	}
	if s.ci < len(s.chunks) && s.off+n > slabChunk {
		s.ci++
		s.off = 0
	}
	if s.ci >= len(s.chunks) {
		s.chunks = append(s.chunks, make([]T, slabChunk))
		s.ci = len(s.chunks) - 1
		s.off = 0
	}
	buf := s.chunks[s.ci][s.off : s.off+n : s.off+n]
	s.off += n
	return buf
}

// Append1 returns a 1-element slice holding v — the common case for
// singleton children tuples.
func (s *Slab[T]) Append1(v T) []T {
	buf := s.Alloc(1)
	buf[0] = v
	return buf
}

// Reset recycles all regular chunks for reuse and drops oversize
// allocations. Every slice previously returned by Alloc becomes
// invalid.
func (s *Slab[T]) Reset() {
	s.ci, s.off, s.total = 0, 0, 0
	s.big = nil
}

// Allocated returns the number of elements handed out since the last
// Reset (a cheap cross-check for tests and stats).
func (s *Slab[T]) Allocated() int { return s.total }
