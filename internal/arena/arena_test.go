package arena

import "testing"

func TestSlabAllocAndReset(t *testing.T) {
	var s Slab[int]
	a := s.Alloc(3)
	b := s.Alloc(2)
	for i := range a {
		a[i] = 10 + i
	}
	for i := range b {
		b[i] = 20 + i
	}
	if a[2] != 12 || b[0] != 20 || b[1] != 21 {
		t.Fatalf("slabs overlap: a=%v b=%v", a, b)
	}
	if got := s.Allocated(); got != 5 {
		t.Fatalf("Allocated = %d, want 5", got)
	}
	// Capacity is clipped: appending must not scribble on b.
	a = append(a, 99)
	if b[0] != 20 {
		t.Fatal("append to a bled into b")
	}
	s.Reset()
	if got := s.Allocated(); got != 0 {
		t.Fatalf("Allocated after Reset = %d", got)
	}
	c := s.Alloc(3)
	for i := range c {
		c[i] = 30 + i
	}
	if c[0] != 30 {
		t.Fatalf("post-Reset alloc broken: %v", c)
	}
}

func TestSlabOversize(t *testing.T) {
	var s Slab[byte]
	big := s.Alloc(3 * slabChunk)
	if len(big) != 3*slabChunk {
		t.Fatalf("oversize len = %d", len(big))
	}
	small := s.Alloc(8)
	if len(small) != 8 {
		t.Fatalf("small after oversize len = %d", len(small))
	}
	s.Reset()
	if s.Allocated() != 0 {
		t.Fatal("Reset did not clear Allocated")
	}
}

func TestSlabChunkRollover(t *testing.T) {
	var s Slab[int32]
	seen := make(map[*int32]bool)
	for i := 0; i < 10000; i++ {
		buf := s.Alloc(3)
		buf[0], buf[1], buf[2] = int32(i), int32(i), int32(i)
		if seen[&buf[0]] {
			t.Fatal("same backing address handed out twice before Reset")
		}
		seen[&buf[0]] = true
	}
	if s.Allocated() != 30000 {
		t.Fatalf("Allocated = %d", s.Allocated())
	}
	// After Reset the same chunks come back.
	s.Reset()
	buf := s.Alloc(3)
	if !seen[&buf[0]] {
		t.Fatal("Reset did not recycle chunks")
	}
	if s.Append1(7)[0] != 7 {
		t.Fatal("Append1 broken")
	}
}
