package gen

import (
	"testing"

	"pqe/internal/cq"
	"pqe/internal/pdb"
)

func TestInstanceMatchesQuerySchema(t *testing.T) {
	q := cq.MustParse("R(x,y), S(y), T(x,y,z)")
	h := Instance(q, Config{FactsPerRelation: 5, DomainSize: 4, Seed: 1})
	arity := map[string]int{"R": 2, "S": 1, "T": 3}
	for _, f := range h.DB().Facts() {
		want, ok := arity[f.Relation]
		if !ok {
			t.Errorf("foreign relation %s generated", f.Relation)
		}
		if f.Arity() != want {
			t.Errorf("fact %v has arity %d, want %d", f, f.Arity(), want)
		}
	}
	if h.Size() == 0 {
		t.Error("empty instance")
	}
}

func TestInstanceDeterministic(t *testing.T) {
	q := cq.PathQuery("R", 3)
	a := Instance(q, Config{FactsPerRelation: 4, Seed: 42, Model: ProbRandomRational})
	b := Instance(q, Config{FactsPerRelation: 4, Seed: 42, Model: ProbRandomRational})
	if a.String() != b.String() {
		t.Error("same seed produced different instances")
	}
	c := Instance(q, Config{FactsPerRelation: 4, Seed: 43, Model: ProbRandomRational})
	if a.String() == c.String() {
		t.Error("different seeds produced identical instances")
	}
}

func TestProbModels(t *testing.T) {
	q := cq.PathQuery("R", 2)
	h := Instance(q, Config{FactsPerRelation: 6, Seed: 3, Model: ProbHalf})
	for i := 0; i < h.Size(); i++ {
		if h.ProbAt(i).Cmp(pdb.ProbHalf) != 0 {
			t.Errorf("ProbHalf drew %v", h.ProbAt(i))
		}
	}
	h = Instance(q, Config{FactsPerRelation: 6, Seed: 3, Model: ProbHigh})
	for i := 0; i < h.Size(); i++ {
		if h.ProbAt(i).Cmp(pdb.NewProb(3, 4)) < 0 {
			t.Errorf("ProbHigh drew %v < 3/4", h.ProbAt(i))
		}
	}
}

func TestLayeredPathInstance(t *testing.T) {
	q := cq.PathQuery("R", 3)
	h := LayeredPathInstance(q, 2, ProbHalf, 1)
	// width² edges per layer, 3 layers.
	if h.Size() != 12 {
		t.Errorf("Size = %d, want 12", h.Size())
	}
	if !cq.Satisfies(h.DB(), q) {
		t.Error("layered instance does not satisfy the query")
	}
	// Witness count = width^(len+1).
	if got := cq.CountWitnesses(h.DB(), q, 0); got != 16 {
		t.Errorf("witnesses = %d, want 16", got)
	}
}

func TestSparsePathInstance(t *testing.T) {
	q := cq.PathQuery("R", 2)
	h := SparsePathInstance(q, 2, 1, ProbHalf, 5)
	if !cq.Satisfies(h.DB(), q) {
		t.Error("chain instance does not satisfy the query")
	}
	// 2 chains × 2 edges + up to 2 noise edges.
	if h.Size() < 4 {
		t.Errorf("Size = %d", h.Size())
	}
}

func TestLayeredPanicsOnNonPath(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for non-path query")
		}
	}()
	LayeredPathInstance(cq.StarQuery("R", 2), 2, ProbHalf, 1)
}

func TestSnowflakeInstance(t *testing.T) {
	q := cq.SnowflakeQuery("S", 2, 2)
	h := SnowflakeInstance(q, 2, 1, ProbHalf, 3)
	if !cq.Satisfies(h.DB(), q) {
		t.Error("snowflake instance does not satisfy its query")
	}
	// 2 hubs × (1 central + 4 chain facts) + up to 4 noise rows.
	if h.Size() < 10 {
		t.Errorf("Size = %d", h.Size())
	}
}
