// Package gen generates synthetic workloads for the experiment harness:
// the query families the paper names (the 3Path class of Corollary 1,
// hierarchical stars, cyclic queries of width 2) and random databases
// with configurable probability models. The paper has no accompanying
// dataset — it is a theory paper — so these generators realize the
// structures its results quantify over.
package gen

import (
	"fmt"
	"math/rand"

	"pqe/internal/cq"
	"pqe/internal/pdb"
)

// ProbModel selects how fact probabilities are drawn.
type ProbModel int

const (
	// ProbHalf labels every fact 1/2 (the uniform-reliability setting).
	ProbHalf ProbModel = iota
	// ProbRandomRational draws wᵢ/dᵢ with dᵢ ≤ 8 uniformly.
	ProbRandomRational
	// ProbHigh draws from {3/4, 7/8, 1}: near-certain facts, typical of
	// NLP-extraction confidences.
	ProbHigh
)

// String names the model the way the CLI flags spell it.
func (m ProbModel) String() string {
	switch m {
	case ProbHalf:
		return "half"
	case ProbRandomRational:
		return "rational"
	case ProbHigh:
		return "high"
	default:
		return fmt.Sprintf("ProbModel(%d)", int(m))
	}
}

// ParseModel inverts String; it accepts the CLI spellings.
func ParseModel(s string) (ProbModel, error) {
	switch s {
	case "half":
		return ProbHalf, nil
	case "rational":
		return ProbRandomRational, nil
	case "high":
		return ProbHigh, nil
	default:
		return 0, fmt.Errorf("gen: unknown probability model %q", s)
	}
}

// Config describes a synthetic probabilistic database for a query.
type Config struct {
	// FactsPerRelation is the number of facts generated per relation.
	FactsPerRelation int
	// DomainSize is the constant pool size per variable position.
	DomainSize int
	// Model selects the probability labelling.
	Model ProbModel
	// Seed makes generation deterministic.
	Seed int64
}

// Instance generates a probabilistic database matching the relations and
// arities of the query. Facts are drawn uniformly over the constant
// pool, without duplicates (retrying a bounded number of times).
func Instance(q *cq.Query, cfg Config) *pdb.Probabilistic {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.DomainSize <= 0 {
		cfg.DomainSize = 4
	}
	if cfg.FactsPerRelation <= 0 {
		cfg.FactsPerRelation = 4
	}
	consts := make([]string, cfg.DomainSize)
	for i := range consts {
		consts[i] = fmt.Sprintf("c%d", i)
	}
	h := pdb.Empty()
	for _, atom := range q.Atoms {
		for i := 0; i < cfg.FactsPerRelation; i++ {
			var f pdb.Fact
			for attempt := 0; attempt < 20; attempt++ {
				args := make([]string, atom.Arity())
				for j := range args {
					args[j] = consts[rng.Intn(len(consts))]
				}
				f = pdb.Fact{Relation: atom.Relation, Args: args}
				if !h.DB().Contains(f) {
					break
				}
			}
			if h.DB().Contains(f) {
				continue // pool exhausted
			}
			h.Add(f, drawProb(rng, cfg.Model))
		}
	}
	return h
}

func drawProb(rng *rand.Rand, model ProbModel) pdb.Prob {
	switch model {
	case ProbHalf:
		return pdb.ProbHalf
	case ProbRandomRational:
		// Strictly inside (0, 1) so workloads are never degenerate;
		// extreme probabilities are covered by dedicated tests.
		den := int64(2 + rng.Intn(7))
		num := int64(1 + rng.Intn(int(den)-1))
		return pdb.NewProb(num, den)
	case ProbHigh:
		switch rng.Intn(3) {
		case 0:
			return pdb.NewProb(3, 4)
		case 1:
			return pdb.NewProb(7, 8)
		default:
			return pdb.ProbOne
		}
	default:
		return pdb.ProbHalf
	}
}

// LayeredPathInstance builds the layered complete-bipartite database for
// a path query: layer l has width nodes, every node of layer l connects
// to every node of layer l+1 via the l-th relation. The lineage of the
// path query over this database has width^(len+1) clauses — the
// Section 1.1 blow-up — while |D| = width²·len.
func LayeredPathInstance(q *cq.Query, width int, model ProbModel, seed int64) *pdb.Probabilistic {
	if !q.IsPath() {
		panic("gen: LayeredPathInstance needs a path query")
	}
	rng := rand.New(rand.NewSource(seed))
	h := pdb.Empty()
	node := func(l, j int) string { return fmt.Sprintf("n%d_%d", l, j) }
	for l, atom := range q.Atoms {
		for a := 0; a < width; a++ {
			for b := 0; b < width; b++ {
				h.Add(pdb.NewFact(atom.Relation, node(l, a), node(l+1, b)), drawProb(rng, model))
			}
		}
	}
	return h
}

// SparsePathInstance builds a path-query database of chains: count
// disjoint full chains plus extra random edges per relation, giving a
// mix of satisfying structure and noise.
func SparsePathInstance(q *cq.Query, chains, noise int, model ProbModel, seed int64) *pdb.Probabilistic {
	if !q.IsPath() {
		panic("gen: SparsePathInstance needs a path query")
	}
	rng := rand.New(rand.NewSource(seed))
	h := pdb.Empty()
	for c := 0; c < chains; c++ {
		for l, atom := range q.Atoms {
			h.Add(pdb.NewFact(atom.Relation,
				fmt.Sprintf("v%d_%d", c, l), fmt.Sprintf("v%d_%d", c, l+1)),
				drawProb(rng, model))
		}
	}
	for _, atom := range q.Atoms {
		for i := 0; i < noise; i++ {
			h.Add(pdb.NewFact(atom.Relation,
				fmt.Sprintf("z%d", rng.Intn(4*chains+4)), fmt.Sprintf("z%d", rng.Intn(4*chains+4))),
				drawProb(rng, model))
		}
	}
	return h
}

// SnowflakeInstance builds a database for a SnowflakeQuery: hubs
// central facts, each with complete dimension chains, plus dangling
// noise rows per dimension relation. Analytics-shaped workloads like
// this are the paper's motivating "real-world benchmark" queries of
// low hypertree width.
func SnowflakeInstance(q *cq.Query, hubs, noise int, model ProbModel, seed int64) *pdb.Probabilistic {
	rng := rand.New(rand.NewSource(seed))
	h := pdb.Empty()
	central := q.Atoms[0]
	for u := 0; u < hubs; u++ {
		hubVals := make(map[string]string, central.Arity())
		args := make([]string, central.Arity())
		for i, v := range central.Vars {
			args[i] = fmt.Sprintf("h%d_%d", u, i)
			hubVals[v] = args[i]
		}
		h.Add(pdb.Fact{Relation: central.Relation, Args: args}, drawProb(rng, model))
		// Chain atoms: walk each dimension, binding variables greedily.
		vals := hubVals
		for _, atom := range q.Atoms[1:] {
			a := make([]string, 2)
			if c, ok := vals[atom.Vars[0]]; ok {
				a[0] = c
			} else {
				a[0] = fmt.Sprintf("%s_%d", atom.Vars[0], u)
				vals[atom.Vars[0]] = a[0]
			}
			a[1] = fmt.Sprintf("%s_%d", atom.Vars[1], u)
			vals[atom.Vars[1]] = a[1]
			h.Add(pdb.Fact{Relation: atom.Relation, Args: a}, drawProb(rng, model))
		}
	}
	for _, atom := range q.Atoms[1:] {
		for i := 0; i < noise; i++ {
			h.Add(pdb.Fact{Relation: atom.Relation, Args: []string{
				fmt.Sprintf("z%d", rng.Intn(8)), fmt.Sprintf("z%d", rng.Intn(8)),
			}}, drawProb(rng, model))
		}
	}
	return h
}
