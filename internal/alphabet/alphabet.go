// Package alphabet provides a string↔int symbol interner shared by the
// string- and tree-automaton packages. Automaton alphabets in the
// reductions are sets of fact literals ("R(a,b)", "¬R(a,b)") plus the
// binary digits of the multiplier gadgets; interning keeps transition
// tables compact and comparisons O(1).
package alphabet

import "fmt"

// Interner assigns dense non-negative IDs to symbol names.
type Interner struct {
	byName map[string]int
	names  []string
}

// New returns an empty interner.
func New() *Interner {
	return &Interner{byName: make(map[string]int)}
}

// Intern returns the ID for name, assigning a fresh one if needed.
func (in *Interner) Intern(name string) int {
	if id, ok := in.byName[name]; ok {
		return id
	}
	id := len(in.names)
	in.byName[name] = id
	in.names = append(in.names, name)
	return id
}

// Lookup returns the ID for name and whether it is known.
func (in *Interner) Lookup(name string) (int, bool) {
	id, ok := in.byName[name]
	return id, ok
}

// Name returns the name for an ID. It panics on an unknown ID.
func (in *Interner) Name(id int) string {
	if id < 0 || id >= len(in.names) {
		panic(fmt.Sprintf("alphabet: unknown symbol id %d", id))
	}
	return in.names[id]
}

// Size returns the number of interned symbols.
func (in *Interner) Size() int { return len(in.names) }

// Names returns all names indexed by ID. The caller must not modify the
// returned slice.
func (in *Interner) Names() []string { return in.names }
