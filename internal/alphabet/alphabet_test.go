package alphabet

import "testing"

func TestInternAndLookup(t *testing.T) {
	in := New()
	a := in.Intern("R(a,b)")
	b := in.Intern("¬R(a,b)")
	if a == b {
		t.Error("distinct names share an ID")
	}
	if again := in.Intern("R(a,b)"); again != a {
		t.Errorf("re-interning changed the ID: %d vs %d", again, a)
	}
	if id, ok := in.Lookup("R(a,b)"); !ok || id != a {
		t.Errorf("Lookup = %d, %v", id, ok)
	}
	if _, ok := in.Lookup("missing"); ok {
		t.Error("unknown name resolved")
	}
	if in.Name(a) != "R(a,b)" || in.Name(b) != "¬R(a,b)" {
		t.Error("Name round trip failed")
	}
	if in.Size() != 2 {
		t.Errorf("Size = %d", in.Size())
	}
	names := in.Names()
	if len(names) != 2 || names[0] != "R(a,b)" {
		t.Errorf("Names = %v", names)
	}
}

func TestNamePanicsOnUnknownID(t *testing.T) {
	in := New()
	defer func() {
		if recover() == nil {
			t.Error("no panic for unknown ID")
		}
	}()
	in.Name(3)
}

func TestDenseIDs(t *testing.T) {
	in := New()
	for i := 0; i < 100; i++ {
		if got := in.Intern(string(rune('a' + i%26))); got > 25 {
			t.Fatalf("IDs not dense: %d", got)
		}
	}
	if in.Size() != 26 {
		t.Errorf("Size = %d", in.Size())
	}
}
