package nfa

import (
	"sync"

	"pqe/internal/dense"
	"pqe/internal/splitmix"
)

// wordPlan is the immutable, seed-independent half of a counting
// session over one NFA: the frozen dense index (transition structure,
// interned target sets) plus the dense-table geometry derived from it.
// It is built once per automaton version and cached on the automaton,
// so every trial, call and session shares one plan; it also pools the
// mutable per-trial runs and sampler sessions, so steady-state repeated
// estimation allocates near zero. The tree-side engine (internal/count)
// mirrors this structure.
type wordPlan struct {
	m     *NFA
	ix    *denseIndex
	built uint64

	mu       sync.Mutex
	freeRuns []*wordRun
	freeSmps []*sampler
}

// maxPooled caps each free list so a burst of concurrent sessions does
// not pin memory forever.
const maxPooled = 16

// planFor returns the automaton's cached plan, building and caching it
// on a miss (or after a structural mutation). Concurrent builders may
// race; each result is equivalent and fully usable, and the last store
// wins.
func planFor(m *NFA) (pl *wordPlan, hit bool) {
	if pl := m.cplan.Load(); pl != nil && pl.built == m.version {
		return pl, true
	}
	pl = &wordPlan{m: m, ix: m.index(), built: m.version}
	m.cplan.Store(pl)
	return pl, false
}

// getRun hands out a pooled (or fresh) run configured for one trial.
// Pooled runs are reset here, on reuse, not on release.
func (pl *wordPlan) getRun(opts CountOptions, seed int64) *wordRun {
	pl.mu.Lock()
	var r *wordRun
	if k := len(pl.freeRuns); k > 0 {
		r = pl.freeRuns[k-1]
		pl.freeRuns = pl.freeRuns[:k-1]
	}
	pl.mu.Unlock()
	if r == nil {
		r = &wordRun{
			pl:     pl,
			finals: pl.m.final,
			words:  dense.NewTable(pl.m.numStates),
			unions: dense.NewTable(len(pl.ix.sets)),
			maxN:   -1,
		}
	} else {
		r.reset()
	}
	r.seed = seed
	r.samples = opts.Samples
	r.maxRetry = opts.MaxRetry
	r.ctx = opts.Ctx
	return r
}

// getSampler hands out a pooled (or fresh) sampler session. The caller
// binds it to a run.
func (pl *wordPlan) getSampler() *sampler {
	pl.mu.Lock()
	if k := len(pl.freeSmps); k > 0 {
		s := pl.freeSmps[k-1]
		pl.freeSmps = pl.freeSmps[:k-1]
		pl.mu.Unlock()
		return s
	}
	pl.mu.Unlock()
	return newSampler(pl)
}

func (pl *wordPlan) putSamplerLocked(s *sampler) {
	s.r = nil
	s.rejections, s.acceptChecks = 0, 0
	if len(pl.freeSmps) < maxPooled {
		pl.freeSmps = append(pl.freeSmps, s)
	}
}

// release returns a call's runs (with their top-level samplers) and
// worker samplers to the pool. Callers must be done reading counters.
func (pl *wordPlan) release(runs []*wordRun, call *callState) {
	pl.mu.Lock()
	for _, r := range runs {
		if r == nil {
			continue
		}
		if r.top != nil {
			pl.putSamplerLocked(r.top)
			r.top = nil
		}
		r.w, r.call = nil, nil
		if len(pl.freeRuns) < maxPooled {
			pl.freeRuns = append(pl.freeRuns, r)
		}
	}
	if call != nil {
		for _, s := range call.smps {
			if s != nil {
				pl.putSamplerLocked(s)
			}
		}
	}
	pl.mu.Unlock()
}

// callState is the per-call shared context of one Count call: the
// worker-local samplers, indexed by dense scheduler worker ID. Each
// slot is only ever touched by the worker owning that ID (and read by
// the caller after the scheduler drains), so no synchronization is
// needed.
type callState struct {
	pl   *wordPlan
	smps []*sampler
}

func newCallState(pl *wordPlan, procs int) *callState {
	return &callState{pl: pl, smps: make([]*sampler, procs)}
}

// sampler returns the calling worker's sampler, creating it on first
// use.
func (c *callState) sampler(id int) *sampler {
	if s := c.smps[id]; s != nil {
		return s
	}
	s := c.pl.getSampler()
	c.smps[id] = s
	return s
}

// totals sums the sampling effort counters across the call's worker
// samplers. Per-sample work is deterministic, so the totals match the
// sequential run regardless of which worker drew which sample.
func (c *callState) totals() (rejections, acceptChecks int) {
	for _, s := range c.smps {
		if s != nil {
			rejections += s.rejections
			acceptChecks += s.acceptChecks
		}
	}
	return rejections, acceptChecks
}

// topSampler lazily creates the run's persistent top-level sampling
// session (successive draws advance its stream).
func (r *wordRun) topSampler() *sampler {
	if r.top == nil {
		r.top = r.pl.getSampler()
		r.top.rng = splitmix.New(uint64(r.seed) ^ splitmix.TopSamplerSalt)
		r.top.bind(r)
	}
	return r.top
}
