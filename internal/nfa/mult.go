package nfa

import (
	"fmt"
	"math/big"

	"pqe/internal/alphabet"
	"pqe/internal/bitset"
)

// Digit symbol names shared with the tree-automaton gadget.
const (
	Digit0 = "0"
	Digit1 = "1"
)

// MultTransition is a transition of an NFA with multipliers: reading Sym
// from From leads to To, and the transition carries a multiplier and a
// digit budget exactly as in the tree case (Definition 2 of the paper,
// restricted to paths — footnote 2 observes the gadget is really a
// string-automaton construction).
type MultTransition struct {
	From   int
	Sym    int
	Mult   *big.Int
	Digits int
	To     int
}

// MultNFA is a non-deterministic finite string automaton with
// multipliers. Translating it inserts a binary ≤-comparator of the
// given digit width after each transition, multiplying the number of
// accepted words by Mult while keeping word lengths uniform across
// transitions with equal budgets.
type MultNFA struct {
	Symbols   *alphabet.Interner
	numStates int
	initial   []int
	final     bitset.Set
	trans     []MultTransition
}

// NewMultNFA returns an empty NFA with multipliers over the interner.
func NewMultNFA(sym *alphabet.Interner) *MultNFA {
	return &MultNFA{Symbols: sym}
}

// AddState allocates a new state.
func (m *MultNFA) AddState() int {
	m.numStates++
	return m.numStates - 1
}

// NumStates returns |S|.
func (m *MultNFA) NumStates() int { return m.numStates }

// SetInitial marks initial states.
func (m *MultNFA) SetInitial(states ...int) {
	m.initial = append(m.initial, states...)
}

// SetFinal marks accepting states.
func (m *MultNFA) SetFinal(states ...int) {
	for _, q := range states {
		for q/64 >= len(m.final) {
			m.final = append(m.final, 0)
		}
		m.final.Add(q)
	}
}

// AddTransition adds a weighted transition. Mult may be 0 (the
// transition contributes no words). The digit budget must satisfy
// Mult ≤ 2^Digits (with Digits = 0 requiring Mult ≤ 1).
func (m *MultNFA) AddTransition(from, sym int, mult *big.Int, digits int, to int) error {
	if from < 0 || from >= m.numStates || to < 0 || to >= m.numStates {
		return fmt.Errorf("nfa: state out of range")
	}
	if mult.Sign() < 0 {
		return fmt.Errorf("nfa: negative multiplier %v", mult)
	}
	if digits < 0 {
		return fmt.Errorf("nfa: negative digit budget")
	}
	if digits == 0 && mult.Cmp(big.NewInt(1)) > 0 {
		return fmt.Errorf("nfa: multiplier %v needs a positive digit budget", mult)
	}
	if digits > 0 {
		max := new(big.Int).Lsh(big.NewInt(1), uint(digits))
		if mult.Cmp(max) > 0 {
			return fmt.Errorf("nfa: multiplier %v exceeds 2^%d", mult, digits)
		}
	}
	m.trans = append(m.trans, MultTransition{
		From: from, Sym: sym,
		Mult: new(big.Int).Set(mult), Digits: digits, To: to,
	})
	return nil
}

// Translate expands every weighted transition into the symbol transition
// followed by a fixed-width binary ≤-comparator path that accepts
// exactly Mult digit strings — the string-automaton counterpart of the
// Section 5.1 tree gadget.
func (m *MultNFA) Translate() *NFA {
	out := NewWithSymbols(m.Symbols)
	for i := 0; i < m.numStates; i++ {
		out.AddState()
	}
	out.SetInitial(m.initial...)
	m.final.ForEach(func(q int) { out.SetFinal(q) })
	d0 := m.Symbols.Intern(Digit0)
	d1 := m.Symbols.Intern(Digit1)

	for _, tr := range m.trans {
		if tr.Mult.Sign() == 0 {
			continue
		}
		if tr.Digits == 0 {
			out.AddTransitionSym(tr.From, tr.Sym, tr.To)
			continue
		}
		k := tr.Digits
		bound := new(big.Int).Sub(tr.Mult, big.NewInt(1))
		bits := make([]uint, k)
		for i := 0; i < k; i++ {
			bits[i] = bound.Bit(k - 1 - i)
		}
		eq := make([]int, k)
		free := make([]int, k)
		for i := 0; i < k; i++ {
			eq[i] = out.AddState()
			free[i] = out.AddState()
		}
		out.AddTransitionSym(tr.From, tr.Sym, eq[0])
		next := func(states []int, i int) int {
			if i == k-1 {
				return tr.To
			}
			return states[i+1]
		}
		for i := 0; i < k; i++ {
			if bits[i] == 1 {
				out.AddTransitionSym(eq[i], d0, next(free, i))
				out.AddTransitionSym(eq[i], d1, next(eq, i))
			} else {
				out.AddTransitionSym(eq[i], d0, next(eq, i))
			}
			out.AddTransitionSym(free[i], d0, next(free, i))
			out.AddTransitionSym(free[i], d1, next(free, i))
		}
	}
	return out
}
