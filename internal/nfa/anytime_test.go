package nfa

import (
	"math/rand"
	"testing"

	"pqe/internal/obs"
)

// Anytime estimates must be bit-identical at every worker count: the
// batch boundaries and the stop decision depend only on (ε, δ, Trials)
// and the per-trial estimates, never on scheduling.
func TestCountAnytimeDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		m := randomNFA(rng)
		n := 2 + rng.Intn(6)
		base := Count(m, n, CountOptions{Epsilon: 0.15, Trials: 9, Seed: 7, Anytime: true})
		for _, procs := range []int{1, 2, 8} {
			got := Count(m, n, CountOptions{
				Epsilon: 0.15, Trials: 9, Seed: 7, Anytime: true, MaxProcs: procs,
			})
			if got.Cmp(base) != 0 {
				t.Fatalf("trial %d: MaxProcs=%d anytime gave %v, want %v",
					trial, procs, got, base)
			}
		}
	}
}

// Trials is a hard cap for an anytime call, and early stops show up in
// the trials-saved counters. buildAB's estimates are sampling-based but
// tightly concentrated, so with ε=0.2 the agreement certificate fires
// at the δ-derived floor.
func TestCountAnytimeTrialBudget(t *testing.T) {
	m := buildAB()
	reg := obs.NewRegistry()
	sc := obs.NewScope(nil, reg, nil)
	Count(m, 6, CountOptions{Epsilon: 0.2, Trials: 15, Seed: 1, Anytime: true, Obs: sc})
	executed := reg.Counter("countnfa_trials_total").Value()
	saved := reg.Counter("countnfa_trials_saved_total").Value()
	if executed+saved != 15 {
		t.Fatalf("executed %d + saved %d != cap 15", executed, saved)
	}
	if executed > 15 {
		t.Fatalf("anytime ran %d trials, cap 15", executed)
	}
	if saved > 0 {
		if v := reg.Counter("countnfa_anytime_stops_total").Value(); v != 1 {
			t.Errorf("saved %d trials but anytime stops = %d", saved, v)
		}
	}
}

// MinTrials = Trials pins the full fixed schedule: the anytime call
// must then reproduce the fixed call bit for bit (same seeds, same
// trials, same median).
func TestCountAnytimeCapMatchesFixed(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 6; trial++ {
		m := randomNFA(rng)
		n := 2 + rng.Intn(5)
		fixed := Count(m, n, CountOptions{Epsilon: 0.15, Trials: 5, Seed: 42})
		any := Count(m, n, CountOptions{Epsilon: 0.15, Trials: 5, Seed: 42, Anytime: true, MinTrials: 5})
		if fixed.Cmp(any) != 0 {
			t.Fatalf("trial %d: anytime-at-cap %v differs from fixed %v", trial, any, fixed)
		}
	}
}

// Anytime estimates stay inside the accuracy envelope checked for the
// fixed schedule: against brute-force counts on random automata.
func TestCountAnytimeMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		m := randomNFA(rng)
		n := 2 + rng.Intn(5)
		exact := bruteCount(m, n)
		got := Count(m, n, CountOptions{Epsilon: 0.1, Trials: 9, Seed: int64(trial + 1), Anytime: true}).Float()
		if exact == 0 {
			if got != 0 {
				t.Errorf("trial %d: exact 0, anytime %v", trial, got)
			}
			continue
		}
		lo, hi := float64(exact)*0.6, float64(exact)/0.6
		if got < lo || got > hi {
			t.Errorf("trial %d: anytime %v outside [%v, %v] (exact %d)", trial, got, lo, hi, exact)
		}
	}
}
