package nfa

import (
	"math"
	"math/rand"
	"sort"
	"sync"

	"pqe/internal/efloat"
)

// CountOptions configures the CountNFA approximation scheme.
type CountOptions struct {
	// Epsilon is the target relative error of a single trial. Must be in
	// (0, 1). Default 0.1.
	Epsilon float64
	// Trials is the number of independent estimates whose median is
	// returned (the standard confidence-boosting step of an FPRAS).
	// Default 5.
	Trials int
	// Samples is the number of samples drawn per overlap term when
	// estimating the size of a union of non-deterministic branches.
	// 0 derives a default of max(24, ⌈6/ε²⌉).
	//
	// The rigorous bound of Arenas et al. is polynomial but with large
	// constants the paper itself deems impractical (§6); this knob is
	// the practical stand-in, validated against exact counts in the
	// test suite.
	Samples int
	// MaxRetry bounds rejection-sampling retries per draw. 0 derives
	// a default proportional to the branch fan-out.
	MaxRetry int
	// Seed seeds the deterministic PRNG. Ignored if Rng is set.
	Seed int64
	// Rng, when non-nil, supplies randomness.
	Rng *rand.Rand
	// Parallel runs the independent trials on separate goroutines; the
	// result is identical to the sequential run with the same seed.
	Parallel bool
}

func (o CountOptions) withDefaults() CountOptions {
	if o.Epsilon <= 0 || o.Epsilon >= 1 {
		o.Epsilon = 0.1
	}
	if o.Trials <= 0 {
		o.Trials = 5
	}
	if o.Samples <= 0 {
		o.Samples = int(math.Max(24, math.Ceil(6/(o.Epsilon*o.Epsilon))))
	}
	if o.Rng == nil {
		seed := o.Seed
		if seed == 0 {
			seed = 1
		}
		o.Rng = rand.New(rand.NewSource(seed))
	}
	return o
}

// Count approximates |L_n(M)|, the number of distinct words of length n
// accepted by M, within relative error ε with high probability. It
// realizes the paper's CountNFA black box [5].
func Count(m *NFA, n int, opts CountOptions) efloat.E {
	opts = opts.withDefaults()
	results := make([]efloat.E, opts.Trials)
	seeds := make([]int64, opts.Trials)
	for t := range seeds {
		seeds[t] = opts.Rng.Int63()
	}
	runTrial := func(t int) {
		e := newWordEstimatorSeeded(m, opts, seeds[t])
		results[t] = e.topLevel(n)
	}
	if opts.Parallel {
		var wg sync.WaitGroup
		for t := range results {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				runTrial(t)
			}(t)
		}
		wg.Wait()
	} else {
		for t := range results {
			runTrial(t)
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Less(results[j]) })
	return results[len(results)/2]
}

// wordEstimator carries the per-trial memo tables.
type wordEstimator struct {
	m        *NFA
	rng      *rand.Rand
	samples  int
	maxRetry int
	// est[(q,l)] caches the cardinality estimate of L(q, l), the words
	// of length l accepted starting from q.
	est map[qlKey]efloat.E
	// unionEst[(q,a,l)] caches the estimate of |∪_{q'∈δ(q,a)} L(q',l−1)|.
	unionEst map[qalKey]efloat.E
}

type qlKey struct{ q, l int }
type qalKey struct{ q, a, l int }

func newWordEstimator(m *NFA, opts CountOptions) *wordEstimator {
	return newWordEstimatorSeeded(m, opts, opts.Rng.Int63())
}

func newWordEstimatorSeeded(m *NFA, opts CountOptions, seed int64) *wordEstimator {
	return &wordEstimator{
		m:        m,
		rng:      rand.New(rand.NewSource(seed)),
		samples:  opts.Samples,
		maxRetry: opts.MaxRetry,
		est:      make(map[qlKey]efloat.E),
		unionEst: make(map[qalKey]efloat.E),
	}
}

// topLevel estimates |∪_{q∈I} L(q, n)|.
func (e *wordEstimator) topLevel(n int) efloat.E {
	return e.unionSize(e.m.Initial(), n)
}

// estimate returns the (memoized) estimate of |L(q, l)|.
func (e *wordEstimator) estimate(q, l int) efloat.E {
	if l == 0 {
		if e.m.IsFinal(q) {
			return efloat.One
		}
		return efloat.Zero
	}
	key := qlKey{q, l}
	if v, ok := e.est[key]; ok {
		return v
	}
	// Words starting with different symbols are distinct, so the
	// per-symbol unions combine by exact summation.
	total := efloat.Zero
	for _, a := range e.m.OutSymbols(q) {
		total = total.Add(e.symbolUnion(q, a, l))
	}
	e.est[key] = total
	return total
}

// symbolUnion returns the (memoized) estimate of
// |∪_{q'∈δ(q,a)} L(q', l−1)|, the words of length l from q starting
// with a, not counting the leading symbol.
func (e *wordEstimator) symbolUnion(q, a, l int) efloat.E {
	key := qalKey{q, a, l}
	if v, ok := e.unionEst[key]; ok {
		return v
	}
	v := e.unionSize(e.m.Targets(q, a), l-1)
	e.unionEst[key] = v
	return v
}

// unionSize estimates |∪_j L(t_j, l)| via the sequential difference
// decomposition |∪ A_j| = Σ_j |A_j|·Pr_{x∼A_j}[x ∉ A_1 ∪ … ∪ A_{j−1}],
// with each probability estimated by sampling from A_j and testing
// membership in the earlier branches (NFA acceptance is polynomial).
// Singleton unions are exact.
func (e *wordEstimator) unionSize(targets []int, l int) efloat.E {
	switch len(targets) {
	case 0:
		return efloat.Zero
	case 1:
		return e.estimate(targets[0], l)
	}
	total := efloat.Zero
	for j, t := range targets {
		cj := e.estimate(t, l)
		if cj.IsZero() {
			continue
		}
		if j == 0 {
			total = total.Add(cj)
			continue
		}
		fresh := 0
		for s := 0; s < e.samples; s++ {
			x := e.sample(t, l)
			if x == nil {
				continue
			}
			isNew := true
			for _, earlier := range targets[:j] {
				if e.m.AcceptsFrom([]int{earlier}, x) {
					isNew = false
					break
				}
			}
			if isNew {
				fresh++
			}
		}
		total = total.Add(cj.MulFloat(float64(fresh) / float64(e.samples)))
	}
	return total
}

// sample draws a near-uniform word from L(q, l), or nil if the language
// is (estimated) empty.
func (e *wordEstimator) sample(q, l int) []int {
	if e.estimate(q, l).IsZero() {
		return nil
	}
	word := make([]int, 0, l)
	return e.sampleInto(q, l, word)
}

func (e *wordEstimator) sampleInto(q, l int, word []int) []int {
	if l == 0 {
		return word
	}
	// Pick the leading symbol proportional to the per-symbol estimates
	// (exactly correct: per-symbol languages are disjoint).
	syms := e.m.OutSymbols(q)
	weights := make([]efloat.E, len(syms))
	for i, a := range syms {
		weights[i] = e.symbolUnion(q, a, l)
	}
	i := e.pick(weights)
	if i < 0 {
		return nil
	}
	a := syms[i]
	word = append(word, a)
	// Sample the suffix from the union over δ(q, a) by rejection: draw a
	// branch proportional to its size, draw a word from it, and keep it
	// only if the branch is the canonical (first) accepter, which makes
	// the draw uniform over the union.
	targets := e.m.Targets(q, a)
	if len(targets) == 1 {
		return e.sampleInto(targets[0], l-1, word)
	}
	tw := make([]efloat.E, len(targets))
	for i, t := range targets {
		tw[i] = e.estimate(t, l-1)
	}
	maxRetry := e.maxRetry
	if maxRetry <= 0 {
		maxRetry = 32 * len(targets)
	}
	var last []int
	for r := 0; r < maxRetry; r++ {
		j := e.pick(tw)
		if j < 0 {
			return nil
		}
		suffix := e.sampleInto(targets[j], l-1, append([]int(nil), word...))
		if suffix == nil {
			continue
		}
		last = suffix
		canonical := true
		rest := suffix[len(word):]
		for _, earlier := range targets[:j] {
			if e.m.AcceptsFrom([]int{earlier}, rest) {
				canonical = false
				break
			}
		}
		if canonical {
			return suffix
		}
	}
	// Retry budget exhausted: return the most recent draw. This biases
	// towards multiply-covered words but keeps the sampler total; the
	// budget is generous enough that tests never hit this path.
	return last
}

// pick returns an index chosen with probability proportional to the
// weights, or -1 if all weights are zero.
func (e *wordEstimator) pick(weights []efloat.E) int {
	total := efloat.Sum(weights...)
	if total.IsZero() {
		return -1
	}
	target := total.MulFloat(e.rng.Float64())
	acc := efloat.Zero
	last := -1
	for i, w := range weights {
		if w.IsZero() {
			continue
		}
		last = i
		acc = acc.Add(w)
		if target.Less(acc) {
			return i
		}
	}
	return last
}

// SampleWord draws one near-uniform word of length n from L_n(M) using a
// fresh estimator, or nil if the language is empty. This mirrors the
// uniform-generation facet of [5].
func SampleWord(m *NFA, n int, opts CountOptions) []int {
	opts = opts.withDefaults()
	e := newWordEstimator(m, opts)
	if e.topLevel(n).IsZero() {
		return nil
	}
	// Sample from the union over initial states.
	targets := m.Initial()
	tw := make([]efloat.E, len(targets))
	for i, t := range targets {
		tw[i] = e.estimate(t, n)
	}
	maxRetry := 32 * (len(targets) + 1)
	var last []int
	for r := 0; r < maxRetry; r++ {
		j := e.pick(tw)
		if j < 0 {
			return nil
		}
		w := e.sample(targets[j], n)
		if w == nil {
			continue
		}
		last = w
		canonical := true
		for _, earlier := range targets[:j] {
			if m.AcceptsFrom([]int{earlier}, w) {
				canonical = false
				break
			}
		}
		if canonical {
			return w
		}
	}
	return last
}
