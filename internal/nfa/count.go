package nfa

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pqe/internal/bitset"
	"pqe/internal/dense"
	"pqe/internal/efloat"
	"pqe/internal/obs"
	"pqe/internal/sched"
	"pqe/internal/seqstop"
)

// CountOptions configures the CountNFA approximation scheme.
type CountOptions struct {
	// Epsilon is the target relative error of a single trial. Must be in
	// (0, 1). Default 0.1.
	Epsilon float64
	// Trials is the number of independent estimates whose median is
	// returned (the standard confidence-boosting step of an FPRAS).
	// Default 5.
	Trials int
	// Samples is the number of samples drawn per overlap term when
	// estimating the size of a union of non-deterministic branches.
	// 0 derives a default of max(24, ⌈6/ε²⌉).
	//
	// The rigorous bound of Arenas et al. is polynomial but with large
	// constants the paper itself deems impractical (§6); this knob is
	// the practical stand-in, validated against exact counts in the
	// test suite.
	Samples int
	// MaxRetry bounds rejection-sampling retries per draw. 0 derives
	// a default proportional to the branch fan-out.
	MaxRetry int
	// Seed seeds the deterministic PRNG. Ignored if Rng is set.
	Seed int64
	// Rng, when non-nil, supplies randomness.
	Rng *rand.Rand
	// Anytime enables sequential stopping: trials run in deterministic
	// batches (a pure function of (Epsilon, Delta, Trials), never of
	// wall-clock time or MaxProcs) and the call stops at the earliest
	// batch whose per-trial log₂ estimates all agree within the ε-band,
	// provided a conservative δ-derived floor of trials has run. Trials
	// is the hard cap — an anytime call never runs more trials than the
	// fixed schedule would, and when the certificate never fires it runs
	// exactly the fixed schedule. See internal/seqstop for the
	// statistics.
	Anytime bool
	// Delta is the anytime certificate's failure-probability target in
	// (0,1); ≤ 0 uses seqstop.DefaultDelta. Ignored unless Anytime.
	Delta float64
	// MinTrials overrides the δ-derived trial floor (clamped to
	// [1, Trials]). Ignored unless Anytime.
	MinTrials int
	// MaxProcs bounds the workers of the call's unified scheduler, which
	// dispatches whole trials and, within them, chunks of the
	// overlap-sampling loops (work-stealing, so a straggler trial never
	// leaves workers idle). 0 derives the count from the deprecated
	// Parallel/Workers pair; every setting returns bit-identical results
	// for a fixed seed.
	MaxProcs int
	// Parallel requests trial-level parallelism.
	//
	// Deprecated: set MaxProcs. Parallel maps to MaxProcs = Trials.
	Parallel bool
	// Workers requests intra-trial sampling parallelism.
	//
	// Deprecated: set MaxProcs. Workers > 1 maps to MaxProcs = Workers.
	Workers int
	// Stats, when non-nil, accumulates estimator effort counters across
	// all trials. Deprecated thin accessor: the same counters (and more)
	// flow into Obs's registry under countnfa_* names; new call sites
	// should read those.
	Stats *Stats
	// Obs, when non-nil, receives the unified telemetry of every call:
	// a count.nfa span with per-trial child spans, countnfa_* registry
	// counters (memo hits/misses, interner sizes, acceptance checks,
	// plan-cache hits, scheduler steal/queue gauges), and per-trial
	// convergence records. A nil Scope disables all of it at the cost of
	// a pointer test.
	Obs *obs.Scope
	// Ctx, when non-nil, lets callers cancel a call mid-sampling:
	// cancellation is observed at every trial-batch boundary, before each
	// queued trial starts, and before each overlap-sampling dispatch, so
	// a cancelled call abandons its remaining work within one batch. The
	// value Count returns after a cancellation is meaningless — callers
	// must check Ctx.Err() and discard it (internal/core does). A nil Ctx
	// (the default) never cancels and adds no per-sample cost.
	Ctx context.Context

	// procs is the resolved scheduler width, filled by withDefaults.
	procs int
}

// cancelled reports whether the call's context has been cancelled.
func (o CountOptions) cancelled() bool {
	return o.Ctx != nil && o.Ctx.Err() != nil
}

// Stats reports how much work the estimator did.
type Stats struct {
	// WordKeys and UnionKeys are memo-table sizes: distinct
	// (state, length) and (target set, length) cells computed.
	WordKeys, UnionKeys int
	// UnionSamples is the number of words drawn for overlap estimation.
	UnionSamples int
	// Rejections counts canonical-rejection retries during sampling.
	Rejections int
	// WallTime is the elapsed time of the Count calls that recorded into
	// this Stats.
	WallTime time.Duration
	// Mallocs and AllocBytes are heap-allocation deltas over those
	// calls, read from runtime.MemStats. They are process-global, so
	// concurrent unrelated work inflates them; within the benchmark
	// harness they attribute cleanly.
	Mallocs    uint64
	AllocBytes uint64
}

func (o CountOptions) withDefaults() CountOptions {
	if o.Epsilon <= 0 || o.Epsilon >= 1 {
		o.Epsilon = 0.1
	}
	if o.Trials <= 0 {
		o.Trials = 5
	}
	if o.Samples <= 0 {
		o.Samples = int(math.Max(24, math.Ceil(6/(o.Epsilon*o.Epsilon))))
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	o.procs = sched.Resolve(o.MaxProcs, o.Workers, o.Parallel, o.Trials)
	if o.Rng == nil {
		seed := o.Seed
		if seed == 0 {
			seed = 1
		}
		o.Rng = rand.New(rand.NewSource(seed))
	}
	return o
}

// schedLabels are the pprof labels applied to scheduler workers.
var schedLabels = []string{"pqe_engine", "countnfa", "pqe_stage", "trial"}

// Count approximates |L_n(M)|, the number of distinct words of length n
// accepted by M, within relative error ε with high probability. It
// realizes the paper's CountNFA black box [5].
func Count(m *NFA, n int, opts CountOptions) efloat.E {
	opts = opts.withDefaults()
	var t0 time.Time
	var m0 runtime.MemStats
	if opts.Stats != nil {
		t0 = time.Now()
		runtime.ReadMemStats(&m0)
	}
	pl, planHit := planFor(m)
	sc, span := opts.Obs.Span("count.nfa")
	if span != nil {
		span.SetAttr("n", n)
		span.SetAttr("states", m.numStates)
		span.SetAttr("trials", opts.Trials)
		span.SetAttr("epsilon", opts.Epsilon)
		span.SetAttr("workers", opts.procs)
	}
	conv := sc.Convergence()
	callID := conv.NextCall()
	timed := sc.Registry() != nil
	callStart := time.Time{}
	if conv != nil || span != nil || timed {
		callStart = time.Now()
	}
	results := make([]efloat.E, opts.Trials)
	log2s := make([]float64, opts.Trials)
	seeds := make([]int64, opts.Trials)
	for t := range seeds {
		seeds[t] = opts.Rng.Int63()
	}
	runs := make([]*wordRun, opts.Trials)
	call := newCallState(pl, opts.procs)
	trial := func(w *sched.Worker, t int) {
		if opts.cancelled() {
			return // queued after cancellation; the caller discards the call
		}
		tspan := span.Start("trial")
		var tt0 time.Time
		if conv != nil || tspan != nil {
			tt0 = time.Now()
		}
		r := pl.getRun(opts, seeds[t])
		r.w, r.call = w, call
		r.ensurePfx(n)
		results[t] = r.topLevel(n)
		runs[t] = r
		log2 := math.Inf(-1)
		if !results[t].IsZero() {
			log2 = results[t].Log2()
		}
		log2s[t] = log2
		if tspan != nil {
			tspan.SetAttr("trial", t)
			tspan.SetAttr("union_samples", r.unionSamples)
			tspan.End()
		}
		if conv != nil {
			conv.Record(obs.TrialRecord{
				Engine:       "countnfa",
				Call:         callID,
				Trial:        t,
				Trials:       opts.Trials,
				Epsilon:      opts.Epsilon,
				Log2Estimate: log2,
				UnionSamples: r.unionSamples,
				Elapsed:      time.Since(tt0),
			})
		}
	}
	// The anytime path runs the same trials (same per-trial seeds, so
	// every executed trial is bit-identical to the fixed schedule's) in
	// deterministic batches, stopping at the earliest batch whose
	// spread certificate meets (ε, δ); the fixed path is one batch of
	// all Trials. Batch boundaries and the stop decision depend only on
	// (ε, δ, Trials) and the per-trial estimates — never on MaxProcs or
	// wall-clock time — so both paths are deterministic at every worker
	// count.
	var st sched.Stats
	executed := opts.Trials
	if opts.Anytime {
		sp := seqstop.New(opts.Epsilon, opts.Delta, opts.Trials, opts.MinTrials)
		executed = 0
		for executed < opts.Trials {
			if opts.cancelled() {
				break // per-batch deadline check; result is discarded
			}
			base := executed
			next := sp.NextBatch(base)
			bst := sched.Run(sched.Config{
				Procs:  opts.procs,
				Trials: next - base,
				Timed:  timed,
				Labels: schedLabels,
			}, func(w *sched.Worker, t int) { trial(w, base+t) })
			st.Accumulate(bst)
			executed = next
			if sp.Stop(log2s[:executed]) {
				break
			}
		}
	} else {
		st = sched.Run(sched.Config{
			Procs:  opts.procs,
			Trials: opts.Trials,
			Timed:  timed,
			Labels: schedLabels,
		}, trial)
	}
	saved := opts.Trials - executed
	results = results[:executed]
	if span != nil {
		span.SetAttr("trials_executed", executed)
	}
	if opts.Stats != nil {
		for _, r := range runs {
			if r == nil {
				continue
			}
			opts.Stats.record(r)
		}
		rej, _ := call.totals()
		opts.Stats.Rejections += rej
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		opts.Stats.WallTime += time.Since(t0)
		opts.Stats.Mallocs += m1.Mallocs - m0.Mallocs
		opts.Stats.AllocBytes += m1.TotalAlloc - m0.TotalAlloc
	}
	if reg := sc.Registry(); reg != nil {
		flushRegistry(reg, pl, runs[:executed], call, st, planHit, time.Since(callStart))
		reg.Counter("countnfa_trials_saved_total").Add(int64(saved))
		if saved > 0 {
			reg.Counter("countnfa_anytime_stops_total").Inc()
		}
	}
	span.End()
	pl.release(runs, call)
	if len(results) == 0 {
		return efloat.Zero // cancelled before any batch ran; caller discards
	}
	return efloat.UpperMedian(results)
}

// flushRegistry folds the per-call effort counters into the unified
// metrics registry, once per Count call — never inside the sampling
// loops, which only bump plain per-run and per-sampler integers.
func flushRegistry(reg *obs.Registry, pl *wordPlan, runs []*wordRun, call *callState, st sched.Stats, planHit bool, wall time.Duration) {
	var wordKeys, unionKeys, memoHits, unionSamples int
	for _, r := range runs {
		if r == nil {
			continue
		}
		wordKeys += r.words.Keys()
		unionKeys += r.unions.Keys()
		memoHits += r.memoHits
		unionSamples += r.unionSamples
	}
	rejections, acceptChecks := call.totals()
	for _, r := range runs {
		if r != nil && r.top != nil {
			acceptChecks += r.top.acceptChecks
		}
	}
	reg.Counter("countnfa_calls_total").Inc()
	reg.Counter("countnfa_trials_total").Add(int64(len(runs)))
	reg.Counter("countnfa_word_keys_total").Add(int64(wordKeys))
	reg.Counter("countnfa_union_keys_total").Add(int64(unionKeys))
	reg.Counter("countnfa_memo_hits_total").Add(int64(memoHits))
	reg.Counter("countnfa_memo_misses_total").Add(int64(wordKeys + unionKeys))
	reg.Counter("countnfa_union_samples_total").Add(int64(unionSamples))
	reg.Counter("countnfa_rejections_total").Add(int64(rejections))
	reg.Counter("countnfa_accept_checks_total").Add(int64(acceptChecks))
	reg.Counter("countnfa_worker_spawns_total").Add(st.Spawns)
	reg.Counter("countnfa_worker_busy_ns_total").Add(st.BusyNs)
	reg.Counter("countnfa_wall_ns_total").Add(wall.Nanoseconds())
	if planHit {
		reg.Counter("countnfa_plan_cache_hits_total").Inc()
	} else {
		reg.Counter("countnfa_plan_cache_misses_total").Inc()
	}
	reg.Counter("countnfa_sched_batches_total").Add(st.Batches)
	reg.Counter("countnfa_sched_chunks_total").Add(st.Chunks)
	reg.Counter("countnfa_sched_steals_total").Add(st.Steals)
	reg.Gauge("countnfa_sched_queue_depth").Set(float64(st.MaxQueue))
	reg.Gauge("countnfa_interned_sets").Set(float64(len(pl.ix.sets)))
	reg.Histogram("countnfa_call_seconds").Observe(wall.Seconds())
}

func (s *Stats) record(r *wordRun) {
	s.WordKeys += r.words.Keys()
	s.UnionKeys += r.unions.Keys()
	s.UnionSamples += r.unionSamples
}

// wordRun is the thin mutable half of a trial: the seed, the dense memo
// tables over the plan's frozen index, the prefix-sum weight rows
// (prefix.go) and the effort counters. Estimation (estimate / unionEst)
// runs sequentially on the trial's scheduler worker and writes the
// tables; sampling runs on sampler sessions that only read them (see
// sampler.go). Runs are pooled on the plan and reset on reuse.
type wordRun struct {
	pl       *wordPlan
	finals   bitset.Set
	seed     int64
	samples  int
	maxRetry int

	words  dense.Table // rows: states; |L(q, l)| estimates
	unions dense.Table // rows: interned target sets; |∪ L(q', l)|

	// Prefix-sum weight rows, flat arrays indexed row·(maxN+1)+length.
	maxN      int
	entryPfx  []atomic.Pointer[prefixRow]
	targetPfx []atomic.Pointer[prefixRow]
	pfxMu     sync.Mutex
	pfx       pfxArena

	unionSamples int
	memoHits     int // estimation-path memo-table hits (misses = keys)

	// ctx cancels overlap-sampling dispatches mid-trial; the trial's
	// tables then hold garbage, which is fine because the whole call's
	// result is discarded by the caller (see CountOptions.Ctx).
	ctx context.Context

	w    *sched.Worker // scheduler worker driving this trial
	call *callState    // per-call shared worker samplers

	top *sampler // lazily created top-level sampling session
}

// reset prepares a pooled run for a new trial, keeping every grown
// buffer (memo rows, prefix arrays, arena chunks) at capacity.
func (r *wordRun) reset() {
	r.words.Reset()
	r.unions.Reset()
	clear(r.entryPfx)
	clear(r.targetPfx)
	r.pfx.reset()
	r.unionSamples, r.memoHits = 0, 0
	r.ctx = nil
	r.w, r.call, r.top = nil, nil, nil
}

// topLevel estimates |∪_{q∈I} L(q, n)|.
func (r *wordRun) topLevel(n int) efloat.E {
	if r.pl.ix.topSet >= 0 {
		return r.unionEst(r.pl.ix.topSet, n)
	}
	if len(r.pl.m.initial) == 1 {
		return r.estimate(r.pl.m.initial[0], n)
	}
	return efloat.Zero
}

// estimate returns the (memoized) estimate of |L(q, l)|.
func (r *wordRun) estimate(q, l int) efloat.E {
	if l == 0 {
		if r.finals.Has(q) {
			return efloat.One
		}
		return efloat.Zero
	}
	if v, ok := r.words.Get(q, l); ok {
		r.memoHits++
		return v
	}
	// Words starting with different symbols are distinct, so the
	// per-symbol unions combine by exact summation.
	r.words.Put(q, l, efloat.Zero)
	total := efloat.Zero
	for i := range r.pl.ix.states[q] {
		en := &r.pl.ix.states[q][i]
		if en.set < 0 {
			total = total.Add(r.estimate(en.targets[0], l-1))
		} else {
			total = total.Add(r.unionEst(en.set, l-1))
		}
	}
	r.words.Put(q, l, total)
	return total
}

// wordLookup is the read-only view of estimate for samplers.
func (r *wordRun) wordLookup(q, l int) efloat.E {
	if l == 0 {
		if r.finals.Has(q) {
			return efloat.One
		}
		return efloat.Zero
	}
	v, _ := r.words.Get(q, l)
	return v
}

// unionEst estimates (and memoizes) |∪_{q'∈set} L(q', l)| via the
// sequential difference decomposition
// |∪ A_j| = Σ_j |A_j|·Pr_{x∼A_j}[x ∉ A_1 ∪ … ∪ A_{j−1}], with each
// probability estimated by sampling from A_j and testing membership in
// the earlier branches (NFA acceptance is polynomial). Interning means
// every (state, symbol) pair with the same target set shares this cell.
func (r *wordRun) unionEst(set, l int) efloat.E {
	if v, ok := r.unions.Get(set, l); ok {
		r.memoHits++
		return v
	}
	r.unions.Put(set, l, efloat.Zero)
	targets := r.pl.ix.sets[set]
	total := efloat.Zero
	for j, t := range targets {
		cj := r.estimate(t, l)
		if cj.IsZero() {
			continue
		}
		if j == 0 {
			total = total.Add(cj)
			continue
		}
		fresh := r.countFresh(targets, j, l, cellSite(set, l, j))
		total = total.Add(cj.MulFloat(float64(fresh) / float64(r.samples)))
	}
	r.unions.Put(set, l, total)
	return total
}

// cellSite names the sampling site of union branch j at cell (set, l)
// for sub-RNG derivation. Unlike a per-call sequence counter, the site
// depends only on the cell identity, so the estimate of every memo cell
// is a pure function of (seed, automaton): Counter sweeps, one-shot
// calls, and any evaluation order produce byte-identical tables.
func cellSite(set, l, j int) uint64 {
	return uint64(set)*0x9e3779b97f4a7c15 + uint64(l)*0xbf58476d1ce4e5b9 + uint64(j)
}

// unionLookup is the read-only view of an index entry's union estimate
// for samplers.
func (r *wordRun) unionLookup(en *ixEntry, l int) efloat.E {
	if en.set < 0 {
		return r.wordLookup(en.targets[0], l)
	}
	v, _ := r.unions.Get(en.set, l)
	return v
}

// countFresh runs the overlap-sampling loop for union branch j at
// length l: r.samples word draws, counting those not covered by an
// earlier branch. The draws are independent given the (already
// computed) memo tables, so they fan out as chunks on the call's
// scheduler, executed by whichever workers are idle; per-sample
// sub-RNGs keep the count identical for every worker count and
// partition.
func (r *wordRun) countFresh(targets []int, j, l int, site uint64) int {
	if r.ctx != nil && r.ctx.Err() != nil {
		return 0 // cancelled: skip the dispatch, the call is discarded
	}
	r.unionSamples += r.samples
	call := r.call
	return r.w.Sum(r.samples, func(w *sched.Worker, lo, hi int) int {
		s := call.sampler(w.ID())
		s.bind(r)
		return s.countFresh(targets, j, l, site, lo, hi)
	})
}

// SampleWord draws one near-uniform word of length n from L_n(M), or
// nil if the language is empty. This mirrors the uniform-generation
// facet of [5].
func SampleWord(m *NFA, n int, opts CountOptions) []int {
	opts = opts.withDefaults()
	pl, _ := planFor(m)
	call := newCallState(pl, opts.procs)
	var r *wordRun
	var word []int
	sched.Run(sched.Config{Procs: opts.procs, Trials: 1, Labels: schedLabels}, func(w *sched.Worker, _ int) {
		r = pl.getRun(opts, opts.Rng.Int63())
		r.w, r.call = w, call
		r.ensurePfx(n)
		if r.topLevel(n).IsZero() {
			return
		}
		word = r.topSampler().sampleTop(n)
	})
	pl.release([]*wordRun{r}, call)
	return word
}
